// Command benchdiff compares a fresh `go test -bench` run (stdin) against a
// committed benchmark JSON document (see cmd/benchjson) and prints a
// per-benchmark ratio table. With -fail-over it exits non-zero when any
// benchmark matching -match regressed beyond the given ratio — the CI gate
// against accidental kernel slowdowns. Usage:
//
//	go test . -run xxx -bench 'BenchmarkSimulatedRun$' -benchtime 20x \
//	  | benchdiff -old BENCH_kernel.json -match 'BenchmarkSimulatedRun$' -fail-over 1.25
//
// Ratios are new/old ns/op: 1.00 = unchanged, above 1 = slower. Benchmarks
// present on only one side are reported but never gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/benchjson"
)

func key(r benchjson.Result) string {
	return r.Package + "/" + benchjson.BaseName(r.Name)
}

func main() {
	oldPath := flag.String("old", "BENCH_kernel.json", "committed baseline JSON document")
	failOver := flag.Float64("fail-over", 0, "exit 1 when a matched benchmark's new/old ns/op ratio exceeds this (0 = report only)")
	match := flag.String("match", ".", "regexp selecting which benchmarks the -fail-over gate applies to")
	flag.Parse()

	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -match:", err)
		os.Exit(2)
	}
	old, err := benchjson.Load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(fresh.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(2)
	}

	baseline := map[string]benchjson.Result{}
	for _, r := range old.Results {
		baseline[key(r)] = r
	}

	fmt.Printf("%-52s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	failed := false
	seen := map[string]bool{}
	for _, r := range fresh.Results {
		k := key(r)
		seen[k] = true
		name := benchjson.BaseName(r.Name)
		b, ok := baseline[k]
		if !ok || b.NsPerOp == 0 {
			fmt.Printf("%-52s %14s %14.0f %8s\n", name, "-", r.NsPerOp, "new")
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		mark := ""
		if *failOver > 0 && ratio > *failOver && re.MatchString(name) {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-52s %14.0f %14.0f %7.2fx%s\n", name, b.NsPerOp, r.NsPerOp, ratio, mark)
	}
	for _, r := range old.Results {
		if !seen[key(r)] {
			fmt.Printf("%-52s %14.0f %14s %8s\n", benchjson.BaseName(r.Name), r.NsPerOp, "-", "gone")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.2fx against %s\n", *failOver, *oldPath)
		os.Exit(1)
	}
}
