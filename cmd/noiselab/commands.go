package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro"
	"repro/internal/experiment"
	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// obsReg is the shared counter registry every observed run publishes into
// (lazily created; one per invocation so counters accumulate across cells).
var (
	obsRegOnce sync.Once
	obsReg     *obs.Registry
)

func obsRegistry() *obs.Registry {
	obsRegOnce.Do(func() { obsReg = obs.NewRegistry() })
	return obsReg
}

// timelineOnce guards -timeline-out: the first recorded timeline wins (one
// representative run; a study would otherwise overwrite the file per cell).
var timelineOnce sync.Once

// writeTimelineOut writes a recorder's timeline to the -timeline-out file.
func writeTimelineOut(rec *obs.Recorder) {
	timelineOnce.Do(func() {
		f, err := os.Create(gTimelineOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noiselab: -timeline-out: %v\n", err)
			return
		}
		defer f.Close()
		if err := rec.WriteChromeJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "noiselab: -timeline-out: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "timeline: %d events -> %s (open in Perfetto / chrome://tracing)\n",
			len(rec.Events()), gTimelineOut)
	})
}

// gWorlds is the process-wide warm-world pool: every study-running
// subcommand's executor shares it, so worlds built for one series are
// forked and reused by the next (lazily created like the obs registry).
var (
	gWorldsOnce sync.Once
	gWorlds     *repro.WorldPool
)

func worldPool() *repro.WorldPool {
	gWorldsOnce.Do(func() { gWorlds = repro.NewWorldPool() })
	return gWorlds
}

// newExec builds the executor every study-running subcommand shares,
// honoring the global -parallel, -batch, -v, -obs and -timeline-out flags.
func newExec() repro.Executor {
	// gBatch was validated at startup; the zero policy on error is BatchAuto.
	batch, _ := repro.ParseBatchPolicy(gBatch)
	e := repro.Executor{Parallelism: gParallel, Batch: batch, Worlds: worldPool()}
	if gVerbose {
		e.OnCell = func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "cell %d/%d %s\n", done, total, label)
		}
	}
	if gObs || gTimelineOut != "" {
		e.Obs = &experiment.ObsOptions{
			Timeline:   gTimelineOut != "",
			Reg:        obsRegistry(),
			OnTimeline: writeTimelineOut,
			FlightSink: os.Stderr,
		}
	}
	return e
}

// commonFlags bundles the run-configuration flags shared by several
// subcommands.
type commonFlags struct {
	fs        *flag.FlagSet
	platform  *string
	workload  *string
	model     *string
	strategy  *string
	seed      *uint64
	dlRuntime *int64
	dlPeriod  *int64
}

func newCommon(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &commonFlags{
		fs:       fs,
		platform: fs.String("platform", repro.Intel9700KF, "platform preset"),
		workload: fs.String("workload", "nbody", "workload name"),
		model:    fs.String("model", "omp", "programming model: omp or sycl"),
		strategy: fs.String("strategy", "Rm", "mitigation strategy (Rm, RmHK, RmHK2, TP, TPHK, TPHK2, with optional -SMT suffix)"),
		seed:     fs.Uint64("seed", 1, "random seed"),
		dlRuntime: fs.Int64("dl-runtime-ns", 0,
			"SCHED_DEADLINE per-thread CBS runtime in ns (0 = fair class; requires -dl-period-ns)"),
		dlPeriod: fs.Int64("dl-period-ns", 0,
			"SCHED_DEADLINE per-thread CBS period in ns (0 = fair class; requires -dl-runtime-ns)"),
	}
}

// applyDeadline copies the -dl-* flags onto a spec, validating the pair.
func (c *commonFlags) applyDeadline(spec *repro.Spec) error {
	if *c.dlRuntime == 0 && *c.dlPeriod == 0 {
		return nil
	}
	if *c.dlRuntime <= 0 || *c.dlPeriod <= 0 || *c.dlRuntime > *c.dlPeriod {
		return fmt.Errorf("-dl-runtime-ns %d and -dl-period-ns %d must both be positive with runtime <= period",
			*c.dlRuntime, *c.dlPeriod)
	}
	spec.DLRuntime = sim.Time(*c.dlRuntime)
	spec.DLPeriod = sim.Time(*c.dlPeriod)
	return nil
}

func (c *commonFlags) resolve() (*repro.Platform, repro.Workload, repro.Strategy, error) {
	p, err := repro.NewPlatform(*c.platform)
	if err != nil {
		return nil, nil, repro.Strategy{}, err
	}
	w, err := p.WorkloadSpec(*c.workload)
	if err != nil {
		return nil, nil, repro.Strategy{}, err
	}
	strat, err := mitigate.Parse(*c.strategy)
	if err != nil {
		return nil, nil, repro.Strategy{}, err
	}
	return p, w, strat, nil
}

func cmdPlatforms() error {
	for _, name := range repro.PlatformNames() {
		p, err := repro.NewPlatform(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %2d cores x %d threads @ %.1f GHz, %.0f GB/s, noise=%s\n",
			name, p.Topo.Cores, p.Topo.ThreadsPerCore, p.Topo.BaseGHz,
			p.Topo.MemBWGBps, p.Noise.Name)
	}
	return nil
}

func cmdWorkloads() error {
	for _, name := range repro.WorkloadNames() {
		fmt.Println(name)
	}
	return nil
}

func cmdRun(args []string) error {
	c := newCommon("run")
	traceOut := c.fs.String("trace", "", "write the osnoise-style trace to this file")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, w, strat, err := c.resolve()
	if err != nil {
		return err
	}
	spec := repro.Spec{
		Platform: p, Workload: w, Model: *c.model, Strategy: strat,
		Seed: *c.seed, Tracing: *traceOut != "",
	}
	if err := c.applyDeadline(&spec); err != nil {
		return err
	}
	if gObs || gTimelineOut != "" {
		spec.Obs = &obs.Options{Timeline: gTimelineOut != "", Reg: obsRegistry()}
	}
	res, err := repro.RunOnce(spec)
	if err != nil {
		return err
	}
	if res.Obs != nil && gTimelineOut != "" {
		writeTimelineOut(res.Obs)
	}
	fmt.Printf("exec time: %.6f s\n", res.ExecTime.Seconds())
	if gVerbose {
		fmt.Printf("kernel: ctxswitches=%d inline-dispatches=%d goroutine-handoffs=%d\n",
			res.ContextSwitches, res.InlineDispatches, res.GoroutineHandoffs)
		fmt.Printf("batch: snapshots/run=%d cow-copies/run=%d batched-reps/run=%d\n",
			res.Snapshots, res.CowCopies, res.BatchedReps)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := repro.WriteTraceText(f, res.Trace); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", len(res.Trace.Events), *traceOut)
	}
	return nil
}

func cmdBaseline(args []string) error {
	c := newCommon("baseline")
	reps := c.fs.Int("reps", 50, "repetitions")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, w, strat, err := c.resolve()
	if err != nil {
		return err
	}
	spec := repro.Spec{
		Platform: p, Workload: w, Model: *c.model, Strategy: strat,
		Seed: *c.seed, Tracing: true,
	}
	if err := c.applyDeadline(&spec); err != nil {
		return err
	}
	times, _, err := repro.RunSeriesExec(context.Background(), newExec(), spec, *reps)
	if err != nil {
		return err
	}
	var ms []float64
	for _, t := range times {
		ms = append(ms, t.Millis())
	}
	s := stats.Summarize(ms)
	fmt.Printf("%s %s %s %s: n=%d mean=%.2fms sd=%.2fms cv=%.3f min=%.2f p95=%.2f max=%.2f\n",
		*c.platform, *c.workload, *c.model, strat.Name(),
		s.N, s.Mean, s.SD, s.CV, s.Min, s.P95, s.Max)
	return nil
}

func cmdGenConfig(args []string) error {
	c := newCommon("gen-config")
	collect := c.fs.Int("collect", 150, "traced executions to collect (paper: 1000)")
	original := c.fs.Bool("original", false, "use the original pessimistic overlap merge instead of the improved one")
	out := c.fs.String("o", "config.json", "output config file")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, _, strat, err := c.resolve()
	if err != nil {
		return err
	}
	exec := newExec()
	if gVerbose {
		exec.OnRep = func(done, total int) {
			fmt.Fprintf(os.Stderr, "collect %d/%d\n", done, total)
		}
	}
	cfg, pr, err := repro.BuildConfigExec(context.Background(), exec, p, *c.workload,
		repro.ConfigSource{Model: *c.model, Strategy: strat, ID: 1},
		*collect, !*original, *c.seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := cfg.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("collected %d traces: baseline mean %.1f ms, worst case %.1f ms (run %d)\n",
		len(pr.Traces), pr.BaselineMean, pr.Worst.ExecTime.Millis(), pr.WorstIndex)
	fmt.Printf("refined %d -> %d events, total delta noise %.3f ms\n",
		len(pr.Worst.Events), len(pr.Refined.Events), float64(pr.Refined.TotalNoise())/1e6)
	fmt.Printf("config: %d events on %d cpus -> %s\n", cfg.NumEvents(), len(cfg.CPUs), *out)
	return nil
}

func cmdInject(args []string) error {
	c := newCommon("inject")
	cfgPath := c.fs.String("config", "", "noise configuration JSON (from gen-config)")
	reps := c.fs.Int("reps", 50, "repetitions (paper: 200)")
	verbose := c.fs.Bool("v", false, "log per-CPU injector setup")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("-config is required")
	}
	f, err := os.Open(*cfgPath)
	if err != nil {
		return err
	}
	cfg, err := readConfig(f)
	f.Close()
	if err != nil {
		return err
	}
	p, w, strat, err := c.resolve()
	if err != nil {
		return err
	}
	if *verbose {
		for _, ce := range cfg.CPUs {
			fmt.Printf("injector-%d: %d events\n", ce.CPU, len(ce.Events))
		}
	}
	spec := repro.Spec{
		Platform: p, Workload: w, Model: *c.model, Strategy: strat,
		Seed: *c.seed, Inject: cfg,
	}
	if err := c.applyDeadline(&spec); err != nil {
		return err
	}
	times, _, err := repro.RunSeriesExec(context.Background(), newExec(), spec, *reps)
	if err != nil {
		return err
	}
	var secs []float64
	for _, t := range times {
		secs = append(secs, t.Seconds())
	}
	s := stats.Summarize(secs)
	fmt.Printf("injected: n=%d mean=%.4fs sd=%.2fms\n", s.N, s.Mean, s.SD*1000)
	if cfg.AnomalyExec > 0 {
		abs, signed := experiment.Accuracy(s.Mean, cfg.AnomalyExec.Seconds())
		neg := ""
		if signed < 0 {
			neg = "(-)"
		}
		fmt.Printf("anomaly exec: %.4fs -> replication accuracy %s%.2f%%\n",
			cfg.AnomalyExec.Seconds(), neg, abs*100)
	}
	return nil
}

func scaleFlags(name string) (*flag.FlagSet, *float64, *uint64) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "multiply repetition counts (1.0 = CI scale; paper scale needs ~8-40x)")
	seed := fs.Uint64("seed", 20250706, "base seed")
	return fs, scale, seed
}

// emitTable prints the table and optionally writes it as CSV.
func emitTable(t *repro.RenderTable, csvPath string) error {
	fmt.Print(t.Text())
	if csvPath == "" {
		return nil
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("csv -> %s\n", csvPath)
	return nil
}

func cmdTable1(args []string) error {
	fs, scale, seed := scaleFlags("table1")
	csvPath := fs.String("csv", "", "also write the table as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := repro.NewPlatform(repro.Intel9700KF)
	if err != nil {
		return err
	}
	reps := repro.DefaultReps().Scale(*scale).Baseline
	rows, err := repro.TracingOverheadExec(context.Background(), newExec(), p,
		[]string{"nbody", "babelstream", "minife"}, reps, *seed)
	if err != nil {
		return err
	}
	return emitTable(repro.RenderTable1(rows), *csvPath)
}

func cmdTable2(args []string) error {
	fs, scale, seed := scaleFlags("table2")
	csvPath := fs.String("csv", "", "also write the table as CSV to this file")
	platformsFlag := fs.String("platforms", repro.Intel9700KF+","+repro.AMD9950X3D, "comma-separated platforms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reps := repro.DefaultReps().Scale(*scale).Baseline
	var results []*repro.BaselineResult
	for _, pname := range strings.Split(*platformsFlag, ",") {
		p, err := repro.NewPlatform(pname)
		if err != nil {
			return err
		}
		for _, w := range []string{"nbody", "babelstream", "minife"} {
			res, err := (experiment.BaselineStudy{
				Platform: p, Workload: w, Reps: reps, Seed: *seed,
				Exec: newExec(),
			}).Run()
			if err != nil {
				return err
			}
			results = append(results, res)
		}
	}
	return emitTable(repro.RenderTable2(results), *csvPath)
}

func runInjectionStudy(workload string, scale float64, seed uint64) (*repro.InjectionResult, error) {
	var plats []*repro.Platform
	for _, name := range []string{repro.Intel9700KF, repro.AMD9950X3D} {
		p, err := repro.NewPlatform(name)
		if err != nil {
			return nil, err
		}
		plats = append(plats, p)
	}
	cfgPer := map[string]int{repro.Intel9700KF: 2, repro.AMD9950X3D: 1}
	if workload == "minife" {
		cfgPer[repro.AMD9950X3D] = 2
	}
	st := experiment.InjectionStudy{
		Platforms:          plats,
		Workload:           workload,
		Reps:               repro.DefaultReps().Scale(scale),
		Seed:               seed,
		Improved:           true,
		ConfigsPerPlatform: cfgPer,
		Exec:               newExec(),
	}
	return st.Run()
}

func cmdTableN(args []string, num int, workload string) error {
	fs, scale, seed := scaleFlags(fmt.Sprintf("table%d", num))
	csvPath := fs.String("csv", "", "also write the table as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := runInjectionStudy(workload, *scale, *seed)
	if err != nil {
		return err
	}
	return emitTable(repro.RenderInjectionTable(num, res), *csvPath)
}

func cmdTable6(args []string) error {
	fs, scale, seed := scaleFlags("table6")
	csvPath := fs.String("csv", "", "also write the table as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var all []*repro.InjectionResult
	for _, w := range []string{"nbody", "babelstream", "minife"} {
		res, err := runInjectionStudy(w, *scale, *seed)
		if err != nil {
			return err
		}
		all = append(all, res)
	}
	agg := repro.AggregateChange(all)
	if err := emitTable(repro.RenderTable6(agg), *csvPath); err != nil {
		return err
	}
	return repro.WriteChecks(os.Stdout, repro.CheckInjectionShape(agg))
}

func cmdTable7(args []string) error {
	fs, scale, seed := scaleFlags("table7")
	csvPath := fs.String("csv", "", "also write the table as CSV to this file")
	original := fs.Bool("original", false, "use the original pessimistic merge (for comparison with §5.2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries, err := (repro.AccuracyStudy{
		Cases:    repro.PaperAccuracyCases(),
		Reps:     repro.DefaultReps().Scale(*scale),
		Seed:     *seed,
		Improved: !*original,
		Exec:     newExec(),
	}).Run()
	if err != nil {
		return err
	}
	return emitTable(repro.RenderTable7(entries), *csvPath)
}

func cmdFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	reps := fs.Int("reps", 20, "repetitions per box")
	seed := fs.Uint64("seed", 20250706, "base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	series, err := repro.Figure1Exec(context.Background(), newExec(), *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Print(repro.RenderFigure(1, "schedbench exec time (ms), A64FX reserved vs w/o", series).Text())
	fmt.Println()
	fmt.Print(repro.RenderBoxPlot("box plots (shared axis)", series, 64))
	return nil
}

func cmdFig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ExitOnError)
	reps := fs.Int("reps", 20, "repetitions per box")
	seed := fs.Uint64("seed", 20250706, "base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	series, err := repro.Figure2Exec(context.Background(), newExec(), *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Print(repro.RenderFigure(2, "Babelstream dot exec time (ms) vs threads", series).Text())
	fmt.Println()
	fmt.Print(repro.RenderBoxPlot("box plots (shared axis)", series, 64))
	return nil
}

func cmdShapeCheck(args []string) error {
	fs, scale, seed := scaleFlags("shapecheck")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var all []*repro.InjectionResult
	for _, w := range []string{"nbody", "babelstream", "minife"} {
		res, err := runInjectionStudy(w, *scale, *seed)
		if err != nil {
			return err
		}
		all = append(all, res)
	}
	checks := repro.CheckInjectionShape(repro.AggregateChange(all))
	if err := repro.WriteChecks(os.Stdout, checks); err != nil {
		return err
	}
	for _, c := range checks {
		if !c.Pass {
			return fmt.Errorf("shape check failed: %s", c.Name)
		}
	}
	return nil
}
