package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/cpusched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func readConfig(r io.Reader) (*core.Config, error) { return core.ReadConfigJSON(r) }

// cmdFig3 collects one traced run and prints the head of the trace in the
// paper's Figure-3 format.
func cmdFig3(args []string) error {
	c := newCommon("fig3")
	limit := c.fs.Int("n", 12, "number of events to print")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, w, strat, err := c.resolve()
	if err != nil {
		return err
	}
	res, err := repro.RunOnce(repro.Spec{
		Platform: p, Workload: w, Model: *c.model, Strategy: strat,
		Seed: *c.seed, Tracing: true,
	})
	if err != nil {
		return err
	}
	tr := res.Trace
	if len(tr.Events) > *limit {
		tr = &trace.Trace{
			Platform: tr.Platform, Workload: tr.Workload, Model: tr.Model,
			Strategy: tr.Strategy, Seed: tr.Seed, ExecTime: tr.ExecTime,
			Events: tr.Events[:*limit],
		}
	}
	fmt.Printf("Figure 3: sample entries from the osnoise-style trace (%d of %d events)\n\n",
		len(tr.Events), len(res.Trace.Events))
	return repro.WriteTraceText(os.Stdout, tr)
}

// cmdFig4 demonstrates the delta-refinement of §4.2 / Figure 4 on a small
// synthetic single-source example, printing the worst-case schedule before
// and after subtraction of the average noise.
func cmdFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mk := func(exec sim.Time, durs ...sim.Time) *trace.Trace {
		tr := &trace.Trace{ExecTime: exec, Workload: "demo"}
		for i, d := range durs {
			tr.Events = append(tr.Events, trace.Event{
				CPU: 0, Class: cpusched.ClassThread, Source: "kworker/0:1",
				Start: sim.Time(i+1) * 20 * sim.Millisecond, Duration: d,
			})
		}
		return tr
	}
	normals := []*trace.Trace{
		mk(100*sim.Millisecond, 2*sim.Millisecond, 2*sim.Millisecond),
		mk(100*sim.Millisecond, 2*sim.Millisecond, 2*sim.Millisecond),
		mk(100*sim.Millisecond, 2*sim.Millisecond, 2*sim.Millisecond),
	}
	worst := mk(140*sim.Millisecond,
		2*sim.Millisecond, 30*sim.Millisecond, 2*sim.Millisecond, 8*sim.Millisecond)
	all := append(normals, worst)
	profile := repro.BuildProfile(all)
	refined := repro.Refine(worst, profile)

	fmt.Println("Figure 4: worst-case trace minus average system noise")
	fmt.Println("\naverage profile (3 normal runs + worst case):")
	for _, s := range profile.SortedSources() {
		fmt.Printf("  %-28s %.2f occurrences/run, mean %.3f ms\n",
			s.Key.String(), s.MeanCountPerTrace(), float64(s.MeanDur())/1e6)
	}
	fmt.Println("\nworst-case trace:")
	for _, e := range worst.Events {
		fmt.Printf("  t=%6.1fms  %-13s %-14s %8.3f ms\n",
			e.Start.Millis(), e.Class, e.Source, float64(e.Duration)/1e6)
	}
	fmt.Println("\nrefined (delta) trace to inject:")
	if len(refined.Events) == 0 {
		fmt.Println("  (empty: worst case equals the average)")
	}
	for _, e := range refined.Events {
		fmt.Printf("  t=%6.1fms  %-13s %-14s %8.3f ms\n",
			e.Start.Millis(), e.Class, e.Source, float64(e.Duration)/1e6)
	}
	return nil
}

// cmdFig5 builds a small real config and prints its JSON structure (the
// paper's Figure 5).
func cmdFig5(args []string) error {
	c := newCommon("fig5")
	collect := c.fs.Int("collect", 30, "traced executions to collect")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, _, strat, err := c.resolve()
	if err != nil {
		return err
	}
	cfg, _, err := repro.BuildConfig(p, *c.workload,
		repro.ConfigSource{Model: *c.model, Strategy: strat, ID: 1},
		*collect, true, *c.seed)
	if err != nil {
		return err
	}
	// Keep the dump small: two CPUs, three events each.
	trimmed := *cfg
	if len(trimmed.CPUs) > 2 {
		trimmed.CPUs = trimmed.CPUs[:2]
	}
	for i := range trimmed.CPUs {
		if len(trimmed.CPUs[i].Events) > 3 {
			trimmed.CPUs[i].Events = trimmed.CPUs[i].Events[:3]
		}
	}
	fmt.Printf("Figure 5: generated configuration structure (%d events on %d CPUs total; trimmed view)\n\n",
		cfg.NumEvents(), len(cfg.CPUs))
	return trimmed.WriteJSON(os.Stdout)
}
