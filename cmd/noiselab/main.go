// Command noiselab is the CLI for the noise-injection laboratory: it runs
// single simulated executions, drives the three-stage injector pipeline
// (collect → refine → generate → inject), and regenerates every table and
// figure of the paper's evaluation.
//
// Usage:
//
//	noiselab <subcommand> [flags]
//
// Subcommands:
//
//	platforms            list platform presets
//	workloads            list workloads
//	run                  one simulated execution (optionally traced)
//	baseline             repeated executions + summary statistics
//	gen-config           injector stages 1+2: collect traces, refine, emit config JSON
//	inject               injector stage 3: replay a config during repeated executions
//	table1 .. table7     regenerate the paper's tables
//	fig1 fig2            regenerate the motivation figures (box series)
//	fig3 fig4 fig5       print design-figure artifacts (trace sample,
//	                     refinement demo, config structure)
//	shapecheck           quick run of Tables 3-5 + headline direction checks
//	native-inject        best-effort replay of a config on THIS machine
//	advise               benchmark all strategies and recommend one (§6)
//	analyze              differential bottleneck analysis: sweep each noise
//	                     source class across an intensity ladder and rank
//	                     which resource gates the workload
//	traces               analyze collected trace files (per-source stats)
//	report               regenerate every table and figure into a directory
//	timeline             export a run's full scheduling timeline (Chrome JSON)
//	runlevel             baseline variability at runlevel 5 vs 3 (§5.1)
//	cluster              simulated-datacenter straggler study: placement
//	                     policies on a multi-node topology
//	submit status get cancel
//	                     client mode against a running noiselabd (or, with
//	                     submit -fleet, a noisefleet coordinator)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
)

// Global flags (before the subcommand): worker-pool size, progress,
// observability, and profiling outputs.
var (
	gParallel    int
	gVerbose     bool
	gObs         bool
	gBatch       string
	gTimelineOut string
	gCPUProfile  string
	gMemProfile  string
)

func main() {
	os.Exit(run())
}

// run carries the real main body so profile-writing defers fire before the
// process exits.
func run() int {
	global := flag.NewFlagSet("noiselab", flag.ExitOnError)
	global.Usage = usage
	global.IntVar(&gParallel, "parallel", 0,
		"worker-pool size for repetitions (0 = REPRO_PARALLEL or GOMAXPROCS; 1 = sequential)")
	global.BoolVar(&gVerbose, "v", false, "report study progress (cell k/N) to stderr")
	global.BoolVar(&gObs, "obs", false,
		"attach the passive observability recorder and print its counter registry to stderr on exit")
	global.StringVar(&gBatch, "batch", "auto",
		"batched-rep snapshot/fork fast path: auto (batch series of >=4 reps), on, or off (rebuild every rep); results are byte-identical either way")
	global.StringVar(&gTimelineOut, "timeline-out", "",
		"record the first run's scheduling timeline and write it as Chrome trace-event JSON (open in Perfetto)")
	global.StringVar(&gCPUProfile, "cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	global.StringVar(&gMemProfile, "memprofile", "", "write a heap profile (after GC) to this file on exit")
	if err := global.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if _, err := repro.ParseBatchPolicy(gBatch); err != nil {
		fmt.Fprintf(os.Stderr, "noiselab: -batch: %v\n", err)
		return 2
	}
	if global.NArg() < 1 {
		usage()
		return 2
	}
	if gCPUProfile != "" {
		f, err := os.Create(gCPUProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noiselab: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "noiselab: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if gMemProfile != "" {
		defer func() {
			f, err := os.Create(gMemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "noiselab: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "noiselab: -memprofile: %v\n", err)
			}
		}()
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	var err error
	switch cmd {
	case "platforms":
		err = cmdPlatforms()
	case "workloads":
		err = cmdWorkloads()
	case "run":
		err = cmdRun(args)
	case "baseline":
		err = cmdBaseline(args)
	case "gen-config":
		err = cmdGenConfig(args)
	case "inject":
		err = cmdInject(args)
	case "table1":
		err = cmdTable1(args)
	case "table2":
		err = cmdTable2(args)
	case "table3":
		err = cmdTableN(args, 3, "nbody")
	case "table4":
		err = cmdTableN(args, 4, "babelstream")
	case "table5":
		err = cmdTableN(args, 5, "minife")
	case "table6":
		err = cmdTable6(args)
	case "table7":
		err = cmdTable7(args)
	case "fig1":
		err = cmdFig1(args)
	case "fig2":
		err = cmdFig2(args)
	case "fig3":
		err = cmdFig3(args)
	case "fig4":
		err = cmdFig4(args)
	case "fig5":
		err = cmdFig5(args)
	case "shapecheck":
		err = cmdShapeCheck(args)
	case "native-inject":
		err = cmdNativeInject(args)
	case "advise":
		err = cmdAdvise(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "traces":
		err = cmdTraces(args)
	case "report":
		err = cmdReport(args)
	case "timeline":
		err = cmdTimeline(args)
	case "runlevel":
		err = cmdRunlevel(args)
	case "cluster":
		err = cmdCluster(args)
	case "submit":
		err = cmdSubmit(args)
	case "status":
		err = cmdStatus(args)
	case "get":
		err = cmdGet(args)
	case "cancel":
		err = cmdCancel(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "noiselab: unknown subcommand %q\n\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "noiselab %s: %v\n", cmd, err)
		return 1
	}
	if gObs {
		fmt.Fprintln(os.Stderr, "--- observability registry ---")
		obsRegistry().WritePrometheus(os.Stderr)
	}
	return 0
}

func usage() {
	fmt.Fprint(os.Stderr, `noiselab — reproducible performance evaluation under noise injection

  noiselab [-parallel N] [-batch auto|on|off] [-v] <subcommand> [flags]

  noiselab platforms | workloads
  noiselab run        -platform P -workload W -model M -strategy S [-seed N] [-trace out.txt]
  noiselab baseline   -platform P -workload W -model M -strategy S [-reps N]
  noiselab gen-config -platform P -workload W [-model M -strategy S] [-collect N]
                      [-original] -o config.json
  noiselab inject     -platform P -workload W -model M -strategy S -config config.json [-reps N]
  noiselab table1 .. table7 [-scale F] [-seed N]
  noiselab fig1 | fig2 [-reps N]
  noiselab fig3 | fig4 | fig5
  noiselab shapecheck [-scale F]
  noiselab cluster    [-nodes N] [-straggler I -straggler-scale F] [-policies a,b]
                      [-tenants N] [-jobs N] [-width N] [-worker-ms F] [-arrival-ms F]
                      [-reps N] [-seed N] [-o study.json]
  noiselab analyze    -platform P -workload W -model M -strategy S [-seed N]
                      [-reps N] [-sources a,b] [-ladder 1,2,4,8] [-timeline]
                      [-o artifact.json] [-server URL | -fleet]
  noiselab submit     -server URL -platform P -workload W -model M -strategy S
                      [-seed N] [-reps N] [-size small] [-tracing] [-wait]
                      [-events] [-fleet]
  noiselab status     -server URL -job ID
  noiselab get        -server URL -job ID [-o result.json]
  noiselab cancel     -server URL -job ID

Global flags (before the subcommand):
  -parallel N   worker-pool size for repetitions; every study fans its reps
                over the pool with bit-identical results (0 = REPRO_PARALLEL
                env or GOMAXPROCS, 1 = sequential)
  -batch P      batched-rep fast path: build each world once and fork it
                back to its construction snapshot between reps. P is auto
                (default: batch series of >=4 reps), on, or off (rebuild
                every rep, the escape hatch). Results are byte-identical
                under every policy.
  -v            report study progress (cell k/N) to stderr; 'run' also
                prints the scheduler kernel counters (context switches,
                inline dispatches, goroutine handoffs) and the batch
                counters (snapshots/run, cow-copies/run, batched-reps/run)
  -obs          attach the passive observability recorder to every run and
                print the accumulated counter registry (Prometheus text) to
                stderr on exit; failed reps dump their flight ring to stderr
  -timeline-out F
                record the first run's full scheduling timeline (task spans,
                preemptions, IRQs, barrier waits, noise) and write Chrome
                trace-event JSON to F — open in Perfetto or chrome://tracing.
                Simulation results are byte-identical with or without it.
  -cpuprofile F write a CPU profile of the whole invocation to F
  -memprofile F write a heap profile (after GC) to F on exit

Run 'noiselab <subcommand> -h' for subcommand flags.
`)
}
