package main

// noiselab analyze — differential bottleneck analysis: sweep each noise
// source class independently across an intensity ladder, fit the
// sensitivity slope per (source, region), and rank which resource gates
// the workload. Runs locally by default; -server (or -fleet) submits the
// same spec to a noiselabd daemon or noisefleet coordinator and fetches
// the identical artifact bytes back.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/analyze"
	"repro/internal/noise"
	"repro/internal/service"
)

func cmdAnalyze(args []string) error {
	c := newCommon("analyze")
	reps := c.fs.Int("reps", 5, "repetitions per (source, factor) cell")
	size := c.fs.String("size", "", "problem size: default or small")
	sources := c.fs.String("sources", "",
		"comma-separated source classes to sweep (default: all of "+strings.Join(noise.SourceClasses(), ",")+")")
	ladder := c.fs.String("ladder", "",
		"comma-separated intensity factors (default 1,2,4,8)")
	runlevel3 := c.fs.Bool("runlevel3", false, "disable GUI noise during the sweep")
	timeline := c.fs.Bool("timeline", false,
		"export each source's top-rung scheduling timeline as evidence (Chrome trace-event JSON) next to the artifact")
	out := c.fs.String("o", "", "write the artifact JSON to this file (timelines land beside it)")
	server := c.fs.String("server", "",
		"submit to a noiselabd daemon (or noisefleet coordinator) at this base URL instead of running locally")
	fleetMode := c.fs.Bool("fleet", false,
		"client mode against the noisefleet coordinator default "+fleetDefault+" (unless -server overrides)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	spec := analyze.Spec{
		Platform: *c.platform, Workload: *c.workload, Size: *size,
		Model: *c.model, Strategy: *c.strategy,
		Seed: *c.seed, Reps: *reps,
		Runlevel3: *runlevel3, Timeline: *timeline,
	}
	if *sources != "" {
		spec.Sources = splitCSV(*sources)
	}
	if *ladder != "" {
		l, err := parseLadder(*ladder)
		if err != nil {
			return err
		}
		spec.Ladder = l
	}
	base := *server
	if base == "" && *fleetMode {
		base = fleetDefault
	}
	if base != "" {
		return analyzeRemote(base, spec, *out)
	}

	res, err := analyze.Run(context.Background(), newExec(), spec)
	if err != nil {
		return err
	}
	printAnalysis(res.Artifact)
	if *out != "" {
		enc, err := res.Artifact.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
		fmt.Printf("artifact -> %s (%d bytes)\n", *out, len(enc))
	}
	for _, ref := range res.Artifact.Timelines {
		path := timelinePath(*out, ref.File)
		if err := os.WriteFile(path, res.Timelines[ref.Source], 0o644); err != nil {
			return err
		}
		fmt.Printf("timeline %s x%s -> %s (%d events)\n",
			ref.Source, analyze.FormatFactor(ref.Factor), path, ref.Events)
	}
	return nil
}

// analyzeRemote submits the spec to a daemon or coordinator, polls to
// completion, and fetches the artifact — byte-identical to a local run of
// the same spec by construction.
func analyzeRemote(base string, spec analyze.Spec, out string) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/analyses", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return errBody(resp)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("analysis %s %s cached=%v spec=%s\n", st.ID, st.State, st.Cached, st.SpecHash[:12])
	for !st.State.Terminal() {
		time.Sleep(200 * time.Millisecond)
		code, err := apiGet(base, "/v1/analyses/"+st.ID, &st)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("status %s: HTTP %d", st.ID, code)
		}
	}
	if st.State != service.StateDone {
		return fmt.Errorf("analysis %s %s: %s", st.ID, st.State, st.Error)
	}
	res, err := http.Get(base + "/v1/analyses/" + st.ID + "/result")
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return errBody(res)
	}
	var enc bytes.Buffer
	if _, err := enc.ReadFrom(res.Body); err != nil {
		return err
	}
	art, err := analyze.Decode(enc.Bytes())
	if err != nil {
		return err
	}
	printAnalysis(art)
	if out != "" {
		if err := os.WriteFile(out, enc.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("artifact -> %s (%d bytes)\n", out, enc.Len())
	}
	for _, ref := range art.Timelines {
		tl, err := fetchBytes(base + "/v1/analyses/" + st.ID + "/timeline/" + ref.Source)
		if err != nil {
			fmt.Fprintf(os.Stderr, "timeline %s: %v\n", ref.Source, err)
			continue
		}
		path := timelinePath(out, ref.File)
		if err := os.WriteFile(path, tl, 0o644); err != nil {
			return err
		}
		fmt.Printf("timeline %s x%s -> %s (%d events)\n",
			ref.Source, analyze.FormatFactor(ref.Factor), path, ref.Events)
	}
	return nil
}

func fetchBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errBody(resp)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// timelinePath places an evidence file beside the artifact (or in the
// working directory when no -o was given).
func timelinePath(artifactPath, file string) string {
	if artifactPath == "" {
		return file
	}
	return filepath.Join(filepath.Dir(artifactPath), file)
}

// printAnalysis renders the ranking table the artifact carries.
func printAnalysis(art *analyze.Artifact) {
	s := art.Spec
	size := s.Size
	if size == "" {
		size = "default"
	}
	fmt.Printf("analysis %s %s/%s %s %s seed=%d: %d sources x %d factors x %d reps = %d runs\n",
		s.Platform, s.Workload, size, s.Model, s.Strategy, s.Seed,
		len(art.Sources), len(art.Ladder), art.RepsPerPoint, art.TotalReps)
	fmt.Printf("model %s  spec %s\n", art.ModelVersion, art.SpecHash[:12])
	fmt.Printf("%-4s %-10s %12s %22s %8s %6s  %s\n",
		"rank", "source", "slope ms/x", "95% CI", "%/x", "r2", "gated region")
	for _, e := range art.Ranking {
		ci := "-"
		if e.SlopeLoMs != 0 || e.SlopeHiMs != 0 {
			ci = fmt.Sprintf("[%.3f, %.3f]", e.SlopeLoMs, e.SlopeHiMs)
		}
		gated := e.GatedRegion
		if gated == "" {
			gated = "-"
		}
		fmt.Printf("%-4d %-10s %12.4f %22s %8.2f %6.3f  %s\n",
			e.Rank, e.Source, e.SlopeMs, ci, e.SlopePct, e.R2, gated)
	}
	fmt.Printf("bottleneck: %s", art.Bottleneck)
	if art.GatedRegion != "" {
		fmt.Printf(" (gates %s)", art.GatedRegion)
	}
	fmt.Println()
}

func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseLadder(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("-ladder: %q is not a number", p)
		}
		out = append(out, f)
	}
	return out, nil
}
