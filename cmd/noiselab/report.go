package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/experiment"
)

// cmdReport regenerates the complete evaluation — Tables 1-7 and Figures
// 1-2 — into a directory, as aligned text plus CSV. This is the one-shot
// artifact generator behind EXPERIMENTS.md.
func cmdReport(args []string) error {
	fs, scale, seed := scaleFlags("report")
	dir := fs.String("dir", "report", "output directory")
	figReps := fs.Int("fig-reps", 20, "repetitions per figure box")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	write := func(name string, t *repro.RenderTable) error {
		txt := filepath.Join(*dir, name+".txt")
		if err := os.WriteFile(txt, []byte(t.Text()), 0o644); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*dir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (+ .csv)\n", txt)
		return nil
	}

	reps := repro.DefaultReps().Scale(*scale)

	// Table 1.
	intel, err := repro.NewPlatform(repro.Intel9700KF)
	if err != nil {
		return err
	}
	rows, err := repro.TracingOverheadExec(context.Background(), newExec(), intel,
		[]string{"nbody", "babelstream", "minife"}, reps.Baseline, *seed)
	if err != nil {
		return err
	}
	if err := write("table1", repro.RenderTable1(rows)); err != nil {
		return err
	}

	// Table 2.
	var baseResults []*repro.BaselineResult
	for _, pname := range []string{repro.Intel9700KF, repro.AMD9950X3D} {
		p, err := repro.NewPlatform(pname)
		if err != nil {
			return err
		}
		for _, w := range []string{"nbody", "babelstream", "minife"} {
			res, err := (experiment.BaselineStudy{
				Platform: p, Workload: w, Reps: reps.Baseline, Seed: *seed,
				Exec: newExec(),
			}).Run()
			if err != nil {
				return err
			}
			baseResults = append(baseResults, res)
		}
	}
	if err := write("table2", repro.RenderTable2(baseResults)); err != nil {
		return err
	}

	// Tables 3-5 (+6 aggregate).
	var all []*repro.InjectionResult
	for i, w := range []string{"nbody", "babelstream", "minife"} {
		res, err := runInjectionStudy(w, *scale, *seed)
		if err != nil {
			return err
		}
		all = append(all, res)
		if err := write(fmt.Sprintf("table%d", 3+i), repro.RenderInjectionTable(3+i, res)); err != nil {
			return err
		}
	}
	agg := repro.AggregateChange(all)
	if err := write("table6", repro.RenderTable6(agg)); err != nil {
		return err
	}
	checksPath := filepath.Join(*dir, "shape-checks.txt")
	cf, err := os.Create(checksPath)
	if err != nil {
		return err
	}
	if err := repro.WriteChecks(cf, repro.CheckInjectionShape(agg)); err != nil {
		cf.Close()
		return err
	}
	cf.Close()
	fmt.Printf("wrote %s\n", checksPath)

	// Table 7.
	entries, err := (repro.AccuracyStudy{
		Cases: repro.PaperAccuracyCases(), Reps: reps, Seed: *seed, Improved: true,
		Exec: newExec(),
	}).Run()
	if err != nil {
		return err
	}
	if err := write("table7", repro.RenderTable7(entries)); err != nil {
		return err
	}

	// Figures.
	s1, err := repro.Figure1Exec(context.Background(), newExec(), *figReps, *seed)
	if err != nil {
		return err
	}
	if err := write("fig1", repro.RenderFigure(1, "schedbench exec time (ms), reserved vs w/o", s1)); err != nil {
		return err
	}
	s2, err := repro.Figure2Exec(context.Background(), newExec(), *figReps, *seed)
	if err != nil {
		return err
	}
	return write("fig2", repro.RenderFigure(2, "Babelstream dot exec time (ms) vs threads", s2))
}
