package main

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/experiment"
	"repro/internal/mitigate"
)

// cmdRunlevel reproduces the paper's §5.1 verification: baseline
// variability at runlevel 5 (desktop, GUI) vs runlevel 3 (GUI disabled).
func cmdRunlevel(args []string) error {
	c := newCommon("runlevel")
	reps := c.fs.Int("reps", 30, "repetitions per runlevel")
	workloadsFlag := c.fs.String("workloads", "nbody,babelstream,minife", "comma-separated workloads")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, err := repro.NewPlatform(*c.platform)
	if err != nil {
		return err
	}
	strat, err := mitigate.Parse(*c.strategy)
	if err != nil {
		return err
	}
	rows, err := (experiment.RunlevelStudy{
		Platform:   p,
		Workloads:  strings.Split(*workloadsFlag, ","),
		Model:      *c.model,
		Strategies: []mitigate.Strategy{strat},
		Reps:       *reps,
		Seed:       *c.seed,
		Exec:       newExec(),
	}).Run()
	if err != nil {
		return err
	}
	fmt.Printf("runlevel 5 (GUI) vs runlevel 3, %s %s %s, %d reps:\n",
		p.Name, *c.model, strat.Name(), *reps)
	fmt.Printf("%-14s %12s %10s %12s %10s %12s\n",
		"workload", "rl5 mean", "rl5 sd", "rl3 mean", "rl3 sd", "sd change")
	for _, r := range rows {
		fmt.Printf("%-14s %10.1fms %8.2fms %10.1fms %8.2fms %+10.1f%%\n",
			r.Workload, r.RL5.Mean, r.RL5.SD, r.RL3.Mean, r.RL3.SD, -r.SDReductionPct())
	}
	fmt.Println("\npaper (§5.1): disabling the GUI generally reduced variability;")
	fmt.Println("overall trends remain unchanged.")
	return nil
}
