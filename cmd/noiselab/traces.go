package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
)

// cmdTraces analyzes one or more osnoise-style trace files (from
// `noiselab run -trace`): per-source statistics, per-CPU noise totals, and
// — with two or more traces — the average profile and worst case, i.e. the
// inputs of injector stage 2.
func cmdTraces(args []string) error {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	top := fs.Int("top", 15, "show the top N sources by total duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("usage: noiselab traces [-top N] trace.txt [trace2.txt ...]")
	}
	var traces []*repro.Trace
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		tr, err := repro.ReadTraceText(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		traces = append(traces, tr)
		fmt.Printf("%s: exec %.6fs, %d events, %.3f ms total noise\n",
			path, tr.ExecTime.Seconds(), len(tr.Events), float64(tr.TotalNoise())/1e6)
	}

	profile := repro.BuildProfile(traces)
	fmt.Printf("\nper-source statistics across %d trace(s):\n", len(traces))
	fmt.Printf("%-14s %-24s %10s %12s %12s\n", "class", "source", "count", "mean-dur", "total")
	sources := profile.SortedSources()
	sort.SliceStable(sources, func(i, j int) bool { return sources[i].TotalDur > sources[j].TotalDur })
	if len(sources) > *top {
		sources = sources[:*top]
	}
	for _, s := range sources {
		fmt.Printf("%-14s %-24s %10d %11.2fus %11.3fms\n",
			s.Key.Class, s.Key.Source, s.Count,
			float64(s.MeanDur())/1e3, float64(s.TotalDur)/1e6)
	}

	// Per-CPU totals of the first trace (or the worst, if several).
	target := traces[0]
	if len(traces) > 1 {
		worst, wi, err := repro.WorstCase(traces)
		if err != nil {
			return err
		}
		target = worst
		fmt.Printf("\nworst case: %s (exec %.6fs)\n", paths[wi], worst.ExecTime.Seconds())
		refined := repro.Refine(worst, profile)
		fmt.Printf("after delta refinement: %d -> %d events, %.3f -> %.3f ms noise\n",
			len(worst.Events), len(refined.Events),
			float64(worst.TotalNoise())/1e6, float64(refined.TotalNoise())/1e6)
	}
	fmt.Println("\nper-CPU noise:")
	for _, c := range target.PerCPU() {
		fmt.Printf("  cpu %3d: %9.3f ms total over %d events; largest %s/%s %.3f ms\n",
			c.CPU, float64(c.Total)/1e6, c.Count,
			c.Largest.Class, c.Largest.Source, float64(c.Largest.Duration)/1e6)
	}
	if ov := target.Overlaps(); len(ov) > 0 {
		fmt.Printf("\n%d same-CPU overlapping event pairs (handled by the config merge step)\n", len(ov))
	}
	return nil
}
