package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

// cmdCluster runs the simulated-datacenter straggler study: N nodes (one
// optionally a straggler running its background noise at a multiple of the
// natural intensity), multi-tenant fork-join load, one run per placement
// policy per rep. Defaults reproduce the headline study committed under
// results/.
func cmdCluster(args []string) error {
	def := repro.StragglerStudySpec()
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", def.Nodes, "node count")
	preset := fs.String("preset", "tiny-test", "per-node machine preset")
	straggler := fs.Int("straggler", def.Straggler, "index of the straggler node")
	stragglerScale := fs.Float64("straggler-scale", def.StragglerScale,
		"straggler noise multiplier (0 or 1 = no straggler)")
	noiseScale := fs.Float64("noise-scale", 0, "noise multiplier applied to every node (0 or 1 = natural)")
	policies := fs.String("policies", "", "comma-separated placement policies (default: all of "+
		strings.Join(repro.PolicyNames(), ", ")+")")
	tenants := fs.Int("tenants", def.Tenants, "number of load-generating tenants")
	jobs := fs.Int("jobs", def.JobsPerTenant, "fork-join jobs per tenant")
	width := fs.Int("width", def.Width, "workers per job (0 = one node's cores)")
	workerMs := fs.Float64("worker-ms", def.WorkerMs, "mean per-worker compute time (simulated ms)")
	arrivalMs := fs.Float64("arrival-ms", def.ArrivalMs, "mean inter-arrival gap per tenant (simulated ms)")
	reps := fs.Int("reps", 5, "repetitions per policy")
	seed := fs.Uint64("seed", 42, "base seed (rep i uses a derived seed)")
	jsonOut := fs.String("o", "", "also write the full study result as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := repro.ClusterSpec{
		Nodes: *nodes, Preset: *preset,
		Straggler: *straggler, StragglerScale: *stragglerScale, NoiseScale: *noiseScale,
		Tenants: *tenants, JobsPerTenant: *jobs, Width: *width,
		WorkerMs: *workerMs, ArrivalMs: *arrivalMs,
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return err
	}
	var pols []string
	if *policies != "" {
		for _, p := range strings.Split(*policies, ",") {
			pols = append(pols, strings.ToLower(strings.TrimSpace(p)))
		}
	}

	study := repro.ClusterStudy{Spec: spec, Policies: pols, Reps: *reps, Seed: *seed, Exec: newExec()}
	res, err := study.Run(context.Background())
	if err != nil {
		return err
	}

	stragglerOn := *stragglerScale != 0 && *stragglerScale != 1
	fmt.Printf("cluster: %d x %s", spec.Nodes, *preset)
	if stragglerOn {
		fmt.Printf(", node %d straggling at x%g noise", spec.Straggler, *stragglerScale)
	}
	fmt.Printf("; %d tenants x %d jobs, width %d, worker %gms, arrival %gms, %d reps\n\n",
		spec.Tenants, spec.JobsPerTenant, spec.Width, spec.WorkerMs, spec.ArrivalMs, *reps)
	fmt.Printf("%-14s %10s %10s %10s %10s %9s %8s\n",
		"policy", "mean ms", "p95 ms", "max ms", "batch ms", "jobs/s", "on-strag")
	for _, cell := range res.Cells {
		fmt.Printf("%-14s %10.2f %10.2f %10.2f %10.2f %9.1f %7.0f%%\n",
			cell.Policy, cell.Makespan.Mean, cell.Makespan.P95, cell.Makespan.Max,
			cell.Batch.Mean, cell.ThroughputJobsPerSec, cell.StragglerShare*100)
	}
	if stragglerOn {
		fmt.Println()
		for _, cell := range res.Cells {
			if cell.StragglerRatio > 0 {
				fmt.Printf("%-14s straggler-placed jobs %.2fx slower than the rest\n",
					cell.Policy, cell.StragglerRatio)
			} else {
				fmt.Printf("%-14s placed no jobs on the straggler\n", cell.Policy)
			}
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cluster: study result -> %s\n", *jsonOut)
	}
	return nil
}
