package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/cpusched"
	"repro/internal/mitigate"
	"repro/internal/noise"
	"repro/internal/omprt"
	"repro/internal/sim"
	"repro/internal/syclrt"
	"repro/internal/trace"
)

// cmdTimeline runs one simulated execution with the full-timeline recorder
// (every task interval, not just noise) and writes a Chrome Trace Event
// Format file, viewable at chrome://tracing or ui.perfetto.dev. It drives
// the scheduler directly since the timeline recorder replaces the normal
// tracer hook.
func cmdTimeline(args []string) error {
	c := newCommon("timeline")
	out := c.fs.String("o", "timeline.json", "output Trace Event Format file")
	cfgPath := c.fs.String("config", "", "optionally replay this noise config during the run")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, w, strat, err := c.resolve()
	if err != nil {
		return err
	}
	plan, err := mitigate.Apply(strat, p.Topo)
	if err != nil {
		return err
	}

	eng := sim.NewEngine()
	sched := cpusched.New(eng, p.Topo, p.SchedOpt)
	defer sched.Shutdown()
	rec := trace.NewTimelineRecorder(0)
	sched.SetTracer(rec)
	rng := sim.NewRNG(*c.seed)
	noise.Attach(sched, p.Noise, rng.Stream("noise"), sim.Time(1)<<60)

	done, err := startModel(sched, plan, *c.model, w)
	if err != nil {
		return err
	}
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			return err
		}
		cfg, err := readConfig(f)
		f.Close()
		if err != nil {
			return err
		}
		r, err := newSimReplayer(sched, cfg)
		if err != nil {
			return err
		}
		r.Start()
		done.OnDone(func() { r.StopAll() })
	}
	eng.RunWhile(func() bool { return !done.Done() })

	fmt.Printf("exec time: %.6f s, %d timeline intervals\n", eng.Now().Seconds(), rec.Len())
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("timeline -> %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
	return nil
}

// startModel launches the workload body on the requested runtime model and
// returns its completion task.
func startModel(s *cpusched.Scheduler, plan *mitigate.Plan, model string, w repro.Workload) (*cpusched.Task, error) {
	switch model {
	case "omp":
		return startOMP(s, plan, w), nil
	case "sycl":
		return startSYCL(s, plan, w), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func startOMP(s *cpusched.Scheduler, plan *mitigate.Plan, w repro.Workload) *cpusched.Task {
	team := omprt.Start(s, plan, omprt.DefaultConfig(), w.Body())
	return team.Master()
}

func startSYCL(s *cpusched.Scheduler, plan *mitigate.Plan, w repro.Workload) *cpusched.Task {
	q := syclrt.Start(s, plan, syclrt.DefaultConfig(), w.Body())
	return q.Host()
}

func newSimReplayer(s *cpusched.Scheduler, cfg *core.Config) (*core.Replayer, error) {
	return core.NewReplayer(s, cfg)
}
