package main

import (
	"fmt"

	"repro/internal/advisor"
	"repro/internal/experiment"
)

// cmdAdvise runs the §6 recommendation engine: it benchmarks every
// mitigation strategy at baseline and under replayed worst-case noise and
// recommends a configuration for the requested average/worst-case balance.
func cmdAdvise(args []string) error {
	c := newCommon("advise")
	worstWeight := c.fs.Float64("worst-weight", 0.5,
		"objective weight on worst-case (injected) time: 0 = average only, 1 = worst case only")
	collect := c.fs.Int("collect", 120, "traced executions for worst-case hunting")
	reps := c.fs.Int("reps", 12, "baseline/injection repetitions per strategy")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	p, _, _, err := c.resolve()
	if err != nil {
		return err
	}
	rec, err := advisor.Advisor{
		Platform: p,
		Workload: *c.workload,
		Model:    *c.model,
		Reps: experiment.RepCounts{
			Collect: *collect, Baseline: *reps, Inject: *reps,
		},
		Seed:      *c.seed,
		Objective: advisor.Objective{WorstWeight: *worstWeight},
		Exec:      newExec(),
	}.Recommend()
	if err != nil {
		return err
	}
	fmt.Printf("advisor: %s / %s on %s (worst-case weight %.2f)\n\n",
		rec.Workload, rec.Model, rec.Platform, *worstWeight)
	fmt.Printf("%-8s %12s %10s %12s %9s %10s\n",
		"strategy", "baseline(s)", "sd(ms)", "injected(s)", "change", "score")
	for _, as := range rec.Table {
		fmt.Printf("%-8s %12.3f %10.2f %12.3f %+8.1f%% %10.3f\n",
			as.Strategy.Name(), as.BaselineSec, as.BaselineSD,
			as.InjectedSec, as.ChangePct, as.Score)
	}
	fmt.Printf("\nrecommended: %s\n", rec.Best.Strategy.Name())
	for _, r := range rec.Rationale {
		fmt.Printf("  - %s\n", r)
	}
	return nil
}
