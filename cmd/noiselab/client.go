package main

// Client mode: drive a running noiselabd over HTTP. submit posts an
// experiment spec (optionally waiting for the result), status polls one
// job, get fetches the stored result payload, cancel aborts a job.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// serverFlag adds the shared -server flag.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://localhost:8723", "noiselabd base URL")
}

// fleetDefault is the noisefleet coordinator's default base URL, used when
// -fleet is set and -server was left at the noiselabd default.
const fleetDefault = "http://localhost:8733"

// resolveServer picks the target base URL: -fleet retargets an untouched
// -server at the coordinator's default port (the coordinator's API mirrors
// noiselabd's, so everything downstream is shared).
func resolveServer(fs *flag.FlagSet, server string, fleetMode bool) string {
	if fleetMode && !flagChanged(fs, "server") {
		return fleetDefault
	}
	return server
}

func flagChanged(fs *flag.FlagSet, name string) bool {
	changed := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			changed = true
		}
	})
	return changed
}

// apiGet fetches path and decodes the JSON body into v (when non-nil),
// returning the status code.
func apiGet(base, path string, v any) (int, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding response: %w", err)
	}
	return resp.StatusCode, nil
}

// errBody extracts the error message of a non-2xx JSON response.
func errBody(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(resp.Body)
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

func cmdSubmit(args []string) error {
	c := newCommon("submit")
	server := serverFlag(c.fs)
	reps := c.fs.Int("reps", 50, "repetitions")
	size := c.fs.String("size", "", "problem size: default or small")
	tracing := c.fs.Bool("tracing", false, "record per-rep traces in the result")
	wait := c.fs.Bool("wait", false, "poll until the job finishes and print the summary")
	fleetMode := c.fs.Bool("fleet", false,
		"target a noisefleet coordinator (default server becomes "+fleetDefault+"); prints per-shard detail with -wait")
	events := c.fs.Bool("events", false,
		"with -wait: follow the job's SSE event stream (live rep progress on stderr) instead of polling")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	base := resolveServer(c.fs, *server, *fleetMode)
	spec := service.JobSpec{
		Platform: *c.platform, Workload: *c.workload, Model: *c.model,
		Strategy: *c.strategy, Seed: *c.seed, Reps: *reps, Size: *size,
		Tracing: *tracing,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return errBody(resp)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("job %s %s cached=%v spec=%s\n", st.ID, st.State, st.Cached, st.SpecHash[:12])
	if !*wait {
		return nil
	}
	if *events {
		if err := followEvents(base, st.ID); err != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v; falling back to polling\n", err)
		}
	}
	st, err = pollJob(base, st.ID)
	if err != nil {
		return err
	}
	if st.State != service.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	if *fleetMode {
		printShards(base, st.ID)
	}
	return fetchAndPrint(base, st.ID, "")
}

// followEvents streams a job's SSE events, echoing progress to stderr, and
// returns once a terminal state event arrives (or the stream breaks — the
// caller's status poll then settles the final state).
func followEvents(server, id string) error {
	resp, err := http.Get(server + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errBody(resp)
	}
	var event, data string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			switch event {
			case "progress":
				var p struct{ Done, Total int }
				if json.Unmarshal([]byte(data), &p) == nil {
					fmt.Fprintf(os.Stderr, "\rreps %d/%d", p.Done, p.Total)
				}
			case "state":
				var s struct {
					State service.JobState `json:"state"`
				}
				if json.Unmarshal([]byte(data), &s) == nil && s.State.Terminal() {
					fmt.Fprintf(os.Stderr, "\rjob %s %s\n", id, s.State)
					return nil
				}
			}
			event, data = "", ""
		}
	}
	return sc.Err()
}

// printShards reports a fleet job's per-sub-job placement (best-effort:
// non-coordinator servers simply return no sub_jobs).
func printShards(server, id string) {
	var st fleet.Status
	if code, err := apiGet(server, "/v1/jobs/"+id, &st); err != nil || code != http.StatusOK {
		return
	}
	for _, s := range st.SubJobs {
		fmt.Printf("  shard offset=%d reps=%d node=%s job=%s cached=%v retries=%d\n",
			s.Offset, s.Reps, s.Node, s.JobID, s.Cached, s.Retries)
	}
}

// pollJob polls until the job reaches a terminal state.
func pollJob(server, id string) (service.JobStatus, error) {
	for {
		var st service.JobStatus
		code, err := apiGet(server, "/v1/jobs/"+id, &st)
		if err != nil {
			return st, err
		}
		if code != http.StatusOK {
			return st, fmt.Errorf("status %s: HTTP %d", id, code)
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := serverFlag(fs)
	job := fs.String("job", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("-job is required")
	}
	var st service.JobStatus
	code, err := apiGet(*server, "/v1/jobs/"+*job, &st)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("HTTP %d", code)
	}
	fmt.Printf("job %s %s cached=%v spec=%s", st.ID, st.State, st.Cached, st.SpecHash[:12])
	if st.Error != "" {
		fmt.Printf(" error=%q", st.Error)
	}
	fmt.Println()
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	server := serverFlag(fs)
	job := fs.String("job", "", "job ID (required)")
	out := fs.String("o", "", "write the raw result JSON to this file instead of summarizing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("-job is required")
	}
	return fetchAndPrint(*server, *job, *out)
}

// fetchAndPrint downloads a result payload and either saves it raw or
// prints the summary line.
func fetchAndPrint(server, id, outPath string) error {
	resp, err := http.Get(server + "/v1/jobs/" + id + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errBody(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("result %s -> %s (%d bytes)\n", id, outPath, len(data))
		return nil
	}
	var res service.JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("decoding result: %w", err)
	}
	s := res.Summary
	fmt.Printf("%s %s %s %s: n=%d mean=%.2fms sd=%.2fms cv=%.3f min=%.2f p95=%.2f max=%.2f (model %s)\n",
		res.Spec.Platform, res.Spec.Workload, res.Spec.Model, res.Spec.Strategy,
		s.N, s.Mean, s.SD, s.CV, s.Min, s.P95, s.Max, res.ModelVersion)
	return nil
}

func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := serverFlag(fs)
	job := fs.String("job", "", "job ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("-job is required")
	}
	req, err := http.NewRequest(http.MethodDelete, *server+"/v1/jobs/"+*job, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errBody(resp)
	}
	var body struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	fmt.Printf("job %s %s\n", body.ID, body.State)
	return nil
}
