package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/native"
	"repro/internal/workloads"
)

// cmdNativeInject replays a generated noise configuration on THIS machine
// (best effort: no RT priorities, no affinity — see internal/native) while
// running a real Go workload kernel, and reports baseline vs injected wall
// time.
func cmdNativeInject(args []string) error {
	fs := flag.NewFlagSet("native-inject", flag.ExitOnError)
	cfgPath := fs.String("config", "", "noise configuration JSON (from gen-config)")
	reps := fs.Int("reps", 5, "repetitions")
	workload := fs.String("workload", "nbody", "real kernel to run: nbody, babelstream, minife, schedbench")
	threads := fs.Int("threads", runtime.NumCPU(), "workload threads")
	size := fs.Int("size", 0, "problem size (0 = a ~100ms default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("-config is required")
	}
	f, err := os.Open(*cfgPath)
	if err != nil {
		return err
	}
	cfg, err := readConfig(f)
	f.Close()
	if err != nil {
		return err
	}
	r, err := native.NewReplayer(cfg)
	if err != nil {
		return err
	}

	fn, desc, err := nativeWorkload(*workload, *size, *threads)
	if err != nil {
		return err
	}
	fmt.Printf("native replay of %s (%d events, window %.3fs) around %s, %d reps\n",
		*cfgPath, cfg.NumEvents(), cfg.Window.Seconds(), desc, *reps)
	base, injected, err := r.Benchmark(fn, *reps)
	if err != nil {
		return err
	}
	fmt.Printf("baseline mean: %v\ninjected mean: %v (%+.1f%%)\n",
		base.Round(time.Microsecond), injected.Round(time.Microsecond),
		(float64(injected)/float64(base)-1)*100)
	fmt.Println("note: best-effort replay (no SCHED_FIFO / affinity without root);")
	fmt.Println("use the simulation for the paper's controlled methodology.")
	return nil
}

// nativeWorkload builds a real Go kernel closure of roughly the requested
// size.
func nativeWorkload(name string, size, threads int) (func(), string, error) {
	switch name {
	case "nbody":
		n := size
		if n <= 0 {
			n = 6144
		}
		nb := workloads.NewNBody(n, 1)
		acc := make([][3]float64, n)
		return func() { nb.Step(1e-4, threads, acc) },
			fmt.Sprintf("nbody n=%d (%d threads)", n, threads), nil
	case "babelstream":
		n := size
		if n <= 0 {
			n = 1 << 22
		}
		st := workloads.NewStream(n)
		return func() { st.RunAll(3, threads) },
			fmt.Sprintf("babelstream n=%d x3 iters (%d threads)", n, threads), nil
	case "minife":
		dim := size
		if dim <= 0 {
			dim = 48
		}
		var mu sync.Mutex
		return func() {
				mu.Lock() // NewMiniFE allocates; serialize reps
				m := workloads.NewMiniFE(dim, threads)
				m.SolveCG(25, 0, threads)
				mu.Unlock()
			},
			fmt.Sprintf("minife dim=%d cg=25 (%d threads)", dim, threads), nil
	case "schedbench":
		n := size
		if n <= 0 {
			n = 4096
		}
		sb := &workloads.SchedBench{N: n, Work: 3000, Imbalance: 1.0}
		return func() { sb.Run(workloads.SchedDynamic, 4, threads) },
			fmt.Sprintf("schedbench n=%d (%d threads)", n, threads), nil
	default:
		return nil, "", fmt.Errorf("unknown workload %q", name)
	}
}
