package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		outCh <- string(data)
	}()
	cmdErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	r.Close()
	if cmdErr != nil {
		t.Fatalf("command failed: %v", cmdErr)
	}
	return out
}

func TestCmdPlatformsAndWorkloads(t *testing.T) {
	out := captureStdout(t, cmdPlatforms)
	for _, want := range []string{"intel-9700kf", "amd-9950x3d", "a64fx-reserved"} {
		if !strings.Contains(out, want) {
			t.Fatalf("platforms output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, cmdWorkloads)
	for _, want := range []string{"nbody", "babelstream", "minife", "schedbench"} {
		if !strings.Contains(out, want) {
			t.Fatalf("workloads output missing %q", want)
		}
	}
}

func TestCmdRunWritesTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	out := captureStdout(t, func() error {
		return cmdRun([]string{"-workload", "schedbench", "-trace", path, "-seed", "3"})
	})
	if !strings.Contains(out, "exec time:") {
		t.Fatalf("run output: %s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "irq_noise") {
		t.Fatal("trace file has no events")
	}
}

func TestCmdGenConfigInjectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	out := captureStdout(t, func() error {
		return cmdGenConfig([]string{"-workload", "schedbench", "-collect", "6", "-o", cfgPath})
	})
	if !strings.Contains(out, "config:") {
		t.Fatalf("gen-config output: %s", out)
	}
	out = captureStdout(t, func() error {
		return cmdInject([]string{"-workload", "schedbench", "-config", cfgPath, "-reps", "2", "-v"})
	})
	if !strings.Contains(out, "injected:") || !strings.Contains(out, "replication accuracy") {
		t.Fatalf("inject output: %s", out)
	}
}

func TestCmdInjectRequiresConfig(t *testing.T) {
	if err := cmdInject([]string{}); err == nil {
		t.Fatal("inject without -config should error")
	}
}

func TestCmdTracesAnalysis(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.txt")
	p2 := filepath.Join(dir, "b.txt")
	for i, p := range []string{p1, p2} {
		captureStdout(t, func() error {
			return cmdRun([]string{"-workload", "schedbench", "-trace", p, "-seed", string(rune('1' + i))})
		})
	}
	out := captureStdout(t, func() error { return cmdTraces([]string{"-top", "3", p1, p2}) })
	for _, want := range []string{"per-source statistics", "worst case", "per-CPU noise", "delta refinement"} {
		if !strings.Contains(out, want) {
			t.Fatalf("traces output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTracesNoArgs(t *testing.T) {
	if err := cmdTraces([]string{}); err == nil {
		t.Fatal("traces without files should error")
	}
}

func TestCmdFig4Demo(t *testing.T) {
	out := captureStdout(t, func() error { return cmdFig4(nil) })
	for _, want := range []string{"worst-case trace", "refined (delta) trace", "30.000 ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdFig3PrintsTraceSample(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFig3([]string{"-workload", "schedbench", "-n", "5"})
	})
	if !strings.Contains(out, "Figure 3") {
		t.Fatalf("fig3 output:\n%s", out)
	}
}

func TestNativeWorkloadBuilders(t *testing.T) {
	for _, name := range []string{"nbody", "babelstream", "minife", "schedbench"} {
		fn, desc, err := nativeWorkload(name, 0, 2)
		if err != nil || fn == nil || desc == "" {
			t.Fatalf("nativeWorkload(%q): %v", name, err)
		}
	}
	if _, _, err := nativeWorkload("fft", 0, 2); err == nil {
		t.Fatal("unknown native workload should error")
	}
	// A tiny one actually runs.
	fn, _, err := nativeWorkload("schedbench", 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	fn()
}

func TestCmdTimeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tl.json")
	out := captureStdout(t, func() error {
		return cmdTimeline([]string{"-workload", "schedbench", "-o", path})
	})
	if !strings.Contains(out, "timeline ->") {
		t.Fatalf("timeline output: %s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "thread_name") {
		t.Fatal("timeline JSON missing metadata rows")
	}
}

func TestCmdTable1TinyScale(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "t1.csv")
	out := captureStdout(t, func() error {
		return cmdTable1([]string{"-scale", "0.05", "-csv", csv})
	})
	for _, want := range []string{"Table 1", "nbody", "babelstream", "minife"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Tracing Off") {
		t.Fatal("csv missing header")
	}
}

func TestCmdAdviseTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdAdvise([]string{"-workload", "nbody", "-collect", "6", "-reps", "2",
			"-worst-weight", "0.5"})
	})
	for _, want := range []string{"recommended:", "strategy", "baseline(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("advise output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdAdviseRejectsBadWeight(t *testing.T) {
	if err := cmdAdvise([]string{"-worst-weight", "3", "-collect", "4", "-reps", "2"}); err == nil {
		t.Fatal("bad objective weight should error")
	}
}

func TestCmdRunlevelTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdRunlevel([]string{"-reps", "2", "-workloads", "nbody"})
	})
	for _, want := range []string{"runlevel 5", "rl5 mean", "nbody"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runlevel output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdBaselineTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdBaseline([]string{"-workload", "schedbench", "-reps", "3"})
	})
	if !strings.Contains(out, "mean=") || !strings.Contains(out, "sd=") {
		t.Fatalf("baseline output: %s", out)
	}
}

func TestCmdFig5Structure(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdFig5([]string{"-workload", "schedbench", "-collect", "4"})
	})
	for _, want := range []string{"Figure 5", `"cpus"`, `"policy"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdGenConfigOriginalMerge(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "orig.json")
	captureStdout(t, func() error {
		return cmdGenConfig([]string{"-workload", "schedbench", "-collect", "5",
			"-original", "-o", cfgPath})
	})
	f, err := os.Open(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := readConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Improved {
		t.Fatal("-original should produce a non-improved config")
	}
}
