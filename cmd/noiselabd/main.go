// Command noiselabd serves the experiment engine over HTTP: submit an
// experiment spec, poll job status, fetch results, cancel. A bounded job
// queue feeds the deterministic parallel executor, and a content-addressed
// result cache serves repeated submissions of identical specs without
// re-execution (runs are pure functions of spec, seed and model version —
// see DESIGN.md §7). SIGTERM/SIGINT trigger a graceful drain: submissions
// are rejected with 503 while queued and running jobs finish, bounded by
// -drain-timeout.
//
// Usage:
//
//	noiselabd [-addr :8723] [-cache-dir DIR] [-queue N] [-workers N]
//	          [-parallel N] [-job-timeout D] [-drain-timeout D]
//	          [-mem-entries N] [-max-reps N] [-flight-ring N]
//
// Observability: GET /metrics serves the service and kernel counters
// (Prometheus text; ?format=json for JSON), GET /debug/flightrecorder the
// most recent flight-recorder dumps of failed reps, and
// GET /v1/jobs/{id}/timeline the Chrome trace-event timeline of a job
// submitted with "timeline": true.
//
// Clients: noiselab submit | status | get | cancel (see noiselab -h).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	cacheDir := flag.String("cache-dir", "noiselab-cache", "on-disk result store (empty = memory-only)")
	queue := flag.Int("queue", 64, "bounded job-queue size")
	workers := flag.Int("workers", 1, "jobs executed concurrently")
	parallel := flag.Int("parallel", 0, "per-job executor pool size (0 = REPRO_PARALLEL or GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM")
	memEntries := flag.Int("mem-entries", 256, "in-memory cache entries (LRU)")
	maxReps := flag.Int("max-reps", 100000, "largest accepted repetition count")
	flightRing := flag.Int("flight-ring", 0,
		"per-rep flight-recorder ring size for /debug/flightrecorder (0 = default)")
	flag.Parse()

	srv, err := service.New(service.Config{
		CacheDir:    *cacheDir,
		MemEntries:  *memEntries,
		QueueSize:   *queue,
		Workers:     *workers,
		Parallelism: *parallel,
		JobTimeout:  *jobTimeout,
		MaxReps:     *maxReps,
		FlightRing:  *flightRing,
	})
	if err != nil {
		log.Fatalf("noiselabd: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("noiselabd: listening on %s (cache %s)", *addr, *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("noiselabd: %v: draining (bound %v)", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("noiselabd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("noiselabd: drain: %v (in-flight jobs canceled)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("noiselabd: shutdown: %v", err)
	}
	snap := srv.Metrics()
	fmt.Printf("noiselabd: served %d jobs (%d done, %d failed, %d canceled), %d executions, %d cache hits\n",
		snap.Submitted, snap.Done, snap.Failed, snap.Canceled, snap.Executions, snap.CacheHits)
}
