// Command noisefleet coordinates a fleet of noiselabd backends: it shards
// incoming jobs across the fleet by consistent hashing on the result-cache
// content key (so each backend's cache stays hot on a disjoint key range),
// splits a job's repetitions into sub-jobs fanned across backends and merges
// the slices byte-identically to a single-node run, retries sub-jobs whose
// backend dies against the next node on the ring, and streams aggregated
// live progress over SSE.
//
// The coordinator's API mirrors noiselabd's, so the noiselab CLI drives
// either one unchanged; GET /v1/jobs/{id} additionally reports per-sub-job
// placement, and GET /v1/ring?key=K shows where a content key lives.
//
// Usage:
//
//	noisefleet -backends http://host1:8723,http://host2:8723 [-addr :8733]
//	           [-subjobs N] [-replicas N] [-mem-entries N]
//	           [-job-timeout D] [-max-reps N]
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8733", "listen address")
	backends := flag.String("backends", "", "comma-separated noiselabd base URLs (required)")
	subjobs := flag.Int("subjobs", 0, "sub-jobs per fleet job (0 = one per backend)")
	replicas := flag.Int("replicas", 0, "vnodes per backend on the hash ring (0 = default)")
	memEntries := flag.Int("mem-entries", 256, "merged-result cache entries (LRU)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job end-to-end timeout")
	maxReps := flag.Int("max-reps", 100000, "largest accepted repetition count")
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("noisefleet: -backends is required (comma-separated noiselabd URLs)")
	}

	coord, err := fleet.New(fleet.Config{
		Backends:   urls,
		Replicas:   *replicas,
		SubJobs:    *subjobs,
		MemEntries: *memEntries,
		JobTimeout: *jobTimeout,
		MaxReps:    *maxReps,
	})
	if err != nil {
		log.Fatalf("noisefleet: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("noisefleet: listening on %s, %d backends: %s", *addr, len(urls), strings.Join(urls, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("noisefleet: %v: shutting down", s)
	case err := <-errCh:
		log.Fatalf("noisefleet: serve: %v", err)
	}
	httpSrv.Close()
	coord.Close()
	log.Print("noisefleet: stopped")
}
