// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark evidence (ns/op, B/op, allocs/op and
// custom metrics such as context-switch counts) can be committed and
// diffed. Usage:
//
//	go test -run xxx -bench ... -benchmem ./... | benchjson > BENCH_kernel.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	BPerOp  float64            `json:"b_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// Doc is the whole document.
type Doc struct {
	Go      string   `json:"go,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	note := flag.String("note", "", "free-form note embedded in the document (e.g. the baseline being compared against)")
	flag.Parse()
	doc := Doc{Note: *note}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "goos: "), strings.HasPrefix(line, "goarch: "):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iters: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.Allocs = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
