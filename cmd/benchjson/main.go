// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark evidence (ns/op, B/op, allocs/op and
// custom metrics such as context-switch counts) can be committed and
// diffed. Usage:
//
//	go test -run xxx -bench ... -benchmem ./... | benchjson > BENCH_kernel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchjson"
)

func main() {
	note := flag.String("note", "", "free-form note embedded in the document (e.g. the baseline being compared against)")
	flag.Parse()
	doc, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Note = *note
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
