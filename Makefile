# noiselab build/test/bench entry points.

GO ?= go

.PHONY: all build test vet fmt race bench bench-kernel bench-obs bench-cluster bench-service bench-tables bench-quick benchdiff benchdiff-service examples clean cover test-service test-fleet test-analyze test-io fuzz-smoke serve serve-fleet

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

cover:
	$(GO) test ./... -cover

# Race-detector run across every package: the parallel execution layer
# (internal/experiment.Executor) must stay data-race free.
race:
	$(GO) test -race ./...

# The experiment-serving daemon and its result cache, under the race
# detector: the bounded queue, singleflight dedup, cancellation and drain
# paths are all concurrency-sensitive.
test-service:
	$(GO) test -race ./internal/service/ ./internal/rescache/

# The sharded-fleet layer: ring/splitter/merger property tests and the
# 3-backend coordinator e2e suite under the race detector, plus the SSE
# stream contract (repeated: subscriber registration races only surface
# across runs).
test-fleet:
	$(GO) test -race ./internal/fleet/
	$(GO) test -race -count=3 -run 'TestSSE' ./internal/service/

# Differential bottleneck analysis (internal/analyze, the advisor it feeds,
# and the slope-fitting helper), under the race detector: the sweep fans
# every (source, rung, rep) cell over the executor's worker pool, so the
# determinism suite (golden fixture at parallelism 1 vs 8, batch on/off,
# obs attached vs not) plus the service/fleet analysis e2e must hold under
# -race. 3x because the e2e exercises queue/cache/SSE timing windows.
test-analyze:
	$(GO) test -race -count=3 ./internal/analyze/ ./internal/advisor/ ./internal/stats/
	$(GO) test -race -count=3 -run 'TestAnalysis' ./internal/service/
	$(GO) test -race -count=3 -run 'TestFleetAnalysis' ./internal/fleet/

# Blocking I/O, devices, and the deadline class (DESIGN.md §13): the
# cpusched block/wake + EDF/CBS unit suite, the I/O workload shapes, the
# experiment-layer golden fixture (the six I/O+deadline cases ride the
# ordinary golden kernel tests), and the fleet/service byte-identity e2e
# for an I/O+deadline job. 3x under -race: the batch executor forks
# scheduler snapshots across a worker pool, so any nondeterminism in
# device-queue or CBS-timer replay only surfaces across repeats.
test-io:
	$(GO) test -race -count=3 ./internal/cpusched/ ./internal/workloads/
	$(GO) test -race -count=3 -run 'TestGolden' ./internal/experiment/
	$(GO) test -race -count=3 -run 'TestResultDeterminismIODeadline|TestValidateDeadlineFields' ./internal/service/
	$(GO) test -race -count=3 -run 'TestFleetByteIdenticalIODeadline' ./internal/fleet/

# Short deterministic-budget fuzz smoke of the fuzz targets (cache-key
# canonicalization, the trace codec round trip, the analysis spec hash, and
# the analysis-artifact codec). `go test -fuzz` accepts one target per
# package invocation, hence the separate runs. FUZZTIME is overridable;
# 10s each keeps CI wall clock bounded.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/trace -run xxx -fuzz 'FuzzTraceCodecRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service -run xxx -fuzz 'FuzzSpecHashCanonical$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiment -run xxx -fuzz 'FuzzBatchEqualsFresh$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fleet -run xxx -fuzz 'FuzzRingPlacement$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analyze -run xxx -fuzz 'FuzzAnalysisSpecHash$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analyze -run xxx -fuzz 'FuzzArtifactRoundTrip$$' -fuzztime $(FUZZTIME)

# Run the daemon locally with a throwaway cache.
serve:
	$(GO) run ./cmd/noiselabd -addr :8723 -cache-dir /tmp/noiselab-cache

# Run a 3-backend fleet locally: three daemons on :8724-:8726 plus the
# coordinator on :8733. Ctrl-C tears the whole process group down.
serve-fleet:
	$(GO) run ./cmd/noiselabd -addr :8724 -cache-dir /tmp/noiselab-cache-0 & \
	$(GO) run ./cmd/noiselabd -addr :8725 -cache-dir /tmp/noiselab-cache-1 & \
	$(GO) run ./cmd/noiselabd -addr :8726 -cache-dir /tmp/noiselab-cache-2 & \
	$(GO) run ./cmd/noisefleet -addr :8733 -backends http://localhost:8724,http://localhost:8725,http://localhost:8726

# Full benchmark harness: every table, figure, and ablation.
bench:
	$(GO) test . -run xxx -bench . -benchmem -timeout 4h

# Kernel evidence: the simulation-kernel benchmarks (end-to-end run plus
# the sim/cpusched microbenches), recorded as committed JSON so before/after
# numbers can be diffed. BENCHTIME is overridable for CI smoke runs.
BENCHTIME ?= 300x
bench-kernel:
	{ $(GO) test . -run xxx -bench 'BenchmarkSimulatedRun$$|BenchmarkSimulatedRunBatch$$|BenchmarkSnapshotSweep$$' -benchmem -benchtime $(BENCHTIME) -timeout 1h; \
	  $(GO) test ./internal/sim/ ./internal/cpusched/ -run xxx -bench . -benchmem -benchtime $(BENCHTIME) -timeout 1h; } \
	| $(GO) run ./cmd/benchjson -note "trajectory (same host, -benchtime 300x, host is a noisy VM so compare allocs and paired same-day minima, not raw ns across files): seed BenchmarkSimulatedRun 1310180 ns/op / 771925 B/op / 10039 allocs/op; this file's batched rep runs ~1.37x faster than the unbatched pre-batch kernel in interleaved same-host A/B (minima), at 251 allocs/rep vs 1225" > BENCH_kernel.json
	@cat BENCH_kernel.json

# Regression gate: run the end-to-end kernel benchmark fresh and compare it
# against the committed BENCH_kernel.json. BENCHDIFF_FAIL_OVER is the
# new/old ns/op ratio above which matched benchmarks fail the diff (0 =
# report only); BENCHDIFF_MATCH limits which benchmarks gate. CI runs this
# with a 1.25 threshold before regenerating the evidence.
BENCHDIFF_FAIL_OVER ?= 0
BENCHDIFF_MATCH ?= BenchmarkSimulatedRun$$
benchdiff:
	$(GO) test . -run xxx -bench 'BenchmarkSimulatedRun$$|BenchmarkSimulatedRunBatch$$' -benchmem -benchtime $(BENCHTIME) -timeout 1h \
	| $(GO) run ./cmd/benchdiff -old BENCH_kernel.json -match '$(BENCHDIFF_MATCH)' -fail-over $(BENCHDIFF_FAIL_OVER)

# Observability overhead evidence: the bare run against the obs recorder's
# off/counters/timeline modes, recorded as committed JSON. The "off" case
# must stay within 2% of BenchmarkSimulatedRun (nil-observer fast path,
# zero allocations when disabled) — see DESIGN.md §8.
bench-obs:
	$(GO) test . -run xxx -bench 'BenchmarkSimulatedRun$$|BenchmarkSimulatedRunObs' \
	  -benchmem -benchtime $(BENCHTIME) -timeout 1h \
	| $(GO) run ./cmd/benchjson -note "obs overhead: off mode must stay within 2% of BenchmarkSimulatedRun (passive observer, nil-check fast path)" > BENCH_obs.json
	@cat BENCH_obs.json

# Simulated-datacenter evidence: the headline straggler study per placement
# policy, recorded as committed JSON. The custom metrics carry the study's
# two headline numbers: throughput (jobs/s) and the straggler slowdown
# ratio (straggler-placed mean makespan over the rest; absent for
# noise-aware, which avoids the straggler entirely).
CLUSTER_BENCHTIME ?= 20x
bench-cluster:
	$(GO) test ./internal/cluster/ -run xxx -bench 'BenchmarkClusterPolicy' \
	  -benchmem -benchtime $(CLUSTER_BENCHTIME) -timeout 1h \
	| $(GO) run ./cmd/benchjson -note "straggler study: 4 x tiny-test, node 0 at x40 noise, 3 tenants x 8 fork-join jobs (see StragglerStudySpec)" > BENCH_cluster.json
	@cat BENCH_cluster.json

# Service-layer throughput evidence: end-to-end jobs/sec and p99 latency
# through a coordinator fanning each job over three in-process backends,
# plus the merged-cache resubmit fast path, recorded as committed JSON.
# The custom jobs/s and p99-ms metrics land in each benchmark's Extra map.
SERVICE_BENCHTIME ?= 100x
bench-service:
	$(GO) test ./internal/fleet/ -run xxx -bench 'BenchmarkFleet' -benchmem -benchtime $(SERVICE_BENCHTIME) -timeout 1h \
	| $(GO) run ./cmd/benchjson -note "3-backend in-process fleet, tiny-test kernel x6 reps per job (host is a noisy VM: compare allocs and same-day paired runs, not raw ns across files); cached resubmit must answer from the coordinator's merged cache without touching a backend" > BENCH_service.json
	@cat BENCH_service.json

# Regression gate for the fleet path, mirroring `benchdiff`: fresh fleet
# benchmarks against the committed BENCH_service.json.
BENCHDIFF_SERVICE_MATCH ?= BenchmarkFleetThroughput$$
benchdiff-service:
	$(GO) test ./internal/fleet/ -run xxx -bench 'BenchmarkFleet' -benchmem -benchtime $(SERVICE_BENCHTIME) -timeout 1h \
	| $(GO) run ./cmd/benchdiff -old BENCH_service.json -match '$(BENCHDIFF_SERVICE_MATCH)' -fail-over $(BENCHDIFF_FAIL_OVER)

# Only the paper's tables/figures (skips ablations and micro-benches).
bench-tables:
	$(GO) test . -run xxx -bench 'BenchmarkTable|BenchmarkFigure' -benchtime 1x -timeout 4h

# A fast smoke of the harness at reduced reps.
bench-quick:
	REPRO_SCALE=0.25 $(GO) test . -run xxx -bench 'BenchmarkTable1$$|BenchmarkTable3$$|BenchmarkFigure2$$' -benchtime 1x -timeout 1h

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nbody-compare
	$(GO) run ./examples/minife-mitigation
	$(GO) run ./examples/schedbench-motivation

# The artifacts the reproduction instructions ask for. The full bench
# suite regenerates every table/figure and needs more than go test's
# default 10-minute timeout.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem -timeout 3h ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
