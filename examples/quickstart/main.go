// Quickstart: the full noise-injector pipeline on one workload.
//
// It (1) measures a baseline for Babelstream/OpenMP on the simulated Intel
// i7-9700KF, (2) collects traced executions and generates a worst-case
// noise configuration (delta-refined, improved merge), and (3) replays the
// configuration while the workload runs, reporting the replication
// accuracy and the impact of a housekeeping core.
//
// Repetitions fan out over repro.Executor's worker pool — results are
// bit-identical to sequential runs at any worker count. Set
// REPRO_PARALLEL=1 to force sequential execution.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func mean(ts []repro.Time) float64 {
	var sum float64
	for _, t := range ts {
		sum += t.Seconds()
	}
	return sum / float64(len(ts))
}

func main() {
	const (
		seed     = 7
		collect  = 120 // the paper collects 1000 traced runs
		reps     = 20  // the paper measures 200 injected runs
		workload = "babelstream"
	)
	p, err := repro.NewPlatform(repro.Intel9700KF)
	if err != nil {
		log.Fatal(err)
	}
	w, err := p.WorkloadSpec(workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s / %s / omp on %s ==\n", workload, "Rm", p.Name)

	// All repetitions below run through one Executor: parallel across
	// GOMAXPROCS workers (or REPRO_PARALLEL), deterministic regardless.
	ctx := context.Background()
	exec := repro.Executor{}

	// Stage 0: baseline variability.
	baseTimes, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
		Platform: p, Workload: w, Model: "omp", Strategy: repro.Rm,
		Seed: seed, Tracing: true,
	}, reps)
	if err != nil {
		log.Fatal(err)
	}
	base := stats.SummarizeTimes(baseTimes)
	fmt.Printf("baseline: mean %.3f s, sd %.2f ms over %d runs\n",
		base.Mean/1000, base.SD, base.N)

	// Stages 1+2: collect traces, pick the worst case, subtract the
	// average inherent noise, and generate the injection config.
	cfg, pipeline, err := repro.BuildConfigExec(ctx, exec, p, workload,
		repro.ConfigSource{Model: "omp", Strategy: repro.Rm, ID: 1},
		collect, true, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d traces; worst case %.3f s (mean %.3f s)\n",
		collect, pipeline.Worst.ExecTime.Seconds(), pipeline.BaselineMean/1000)
	fmt.Printf("config: %d delta-noise events on %d CPUs, %.1f ms total noise\n",
		cfg.NumEvents(), len(cfg.CPUs), float64(cfg.TotalNoise())/1e6)

	// Stage 3: replay the worst case while the workload runs.
	for _, strat := range []repro.Strategy{repro.Rm, repro.RmHK, repro.RmHK2} {
		injTimes, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
			Platform: p, Workload: w, Model: "omp", Strategy: strat,
			Seed: seed + 1000, Inject: cfg,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		bt, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
			Platform: p, Workload: w, Model: "omp", Strategy: strat,
			Seed: seed + 2000, Tracing: true,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		inj, b := mean(injTimes), mean(bt)
		fmt.Printf("%-6s baseline %.3f s -> injected %.3f s (%+.1f%%)\n",
			strat.Name(), b, inj, (inj-b)/b*100)
	}

	// Replication accuracy (Table-7 metric).
	injTimes, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
		Platform: p, Workload: w, Model: "omp", Strategy: repro.Rm,
		Seed: seed + 3000, Inject: cfg,
	}, reps)
	if err != nil {
		log.Fatal(err)
	}
	avg := mean(injTimes)
	anomaly := pipeline.Worst.ExecTime.Seconds()
	acc := (avg/anomaly - 1) * 100
	fmt.Printf("replication: injected mean %.3f s vs anomaly %.3f s -> accuracy %.2f%%\n",
		avg, anomaly, acc)
}
