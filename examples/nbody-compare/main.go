// nbody-compare contrasts OpenMP and SYCL resilience to injected noise on
// the compute-bound N-body workload (the paper's §5.2 headline): OpenMP is
// faster in raw time, SYCL degrades less under the same worst-case noise.
//
// Run: go run ./examples/nbody-compare
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	const (
		seed    = 11
		collect = 120
		reps    = 15
	)
	p, err := repro.NewPlatform(repro.Intel9700KF)
	if err != nil {
		log.Fatal(err)
	}
	w, err := p.WorkloadSpec("nbody")
	if err != nil {
		log.Fatal(err)
	}

	// Deterministic parallel repetitions (REPRO_PARALLEL bounds the pool).
	ctx := context.Background()
	exec := repro.Executor{}

	cfg, pr, err := repro.BuildConfigExec(ctx, exec, p, "nbody",
		repro.ConfigSource{Model: "omp", Strategy: repro.Rm, ID: 1},
		collect, true, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case trace: %.3f s; injecting %.1f ms of delta noise\n\n",
		pr.Worst.ExecTime.Seconds(), float64(cfg.TotalNoise())/1e6)

	fmt.Printf("%-5s %-6s %12s %12s %9s\n", "model", "strat", "baseline(s)", "injected(s)", "change")
	for _, model := range []string{"omp", "sycl"} {
		for _, strat := range repro.Strategies() {
			bt, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
				Platform: p, Workload: w, Model: model, Strategy: strat,
				Seed: seed + 100, Tracing: true,
			}, reps)
			if err != nil {
				log.Fatal(err)
			}
			it, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
				Platform: p, Workload: w, Model: model, Strategy: strat,
				Seed: seed + 200, Inject: cfg,
			}, reps)
			if err != nil {
				log.Fatal(err)
			}
			b := stats.SummarizeTimes(bt).Mean / 1000
			i := stats.SummarizeTimes(it).Mean / 1000
			fmt.Printf("%-5s %-6s %12.3f %12.3f %+8.1f%%\n",
				model, strat.Name(), b, i, (i-b)/b*100)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper): OMP lower raw time; SYCL smaller % change;")
	fmt.Println("housekeeping (RmHK/RmHK2) suppresses the injected worst case.")
}
