// minife-mitigation sweeps housekeeping fractions for the MiniFE
// mini-application under worst-case noise injection, illustrating the
// paper's recommendation engine: how many cores to leave for the OS depends
// on whether you optimize average or worst-case behaviour.
//
// Run: go run ./examples/minife-mitigation
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/mitigate"
	"repro/internal/stats"
)

func main() {
	const (
		seed    = 23
		collect = 150
		reps    = 12
	)
	p, err := repro.NewPlatform(repro.Intel9700KF)
	if err != nil {
		log.Fatal(err)
	}
	w, err := p.WorkloadSpec("minife")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	exec := repro.Executor{} // parallel reps, deterministic results
	cfg, pr, err := repro.BuildConfigExec(ctx, exec, p, "minife",
		repro.ConfigSource{Model: "omp", Strategy: repro.Rm, ID: 1},
		collect, true, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MiniFE on %s; worst case %.3f s; %d injected events\n\n",
		p.Name, pr.Worst.ExecTime.Seconds(), cfg.NumEvents())

	fmt.Printf("%-10s %8s %12s %12s %10s %10s\n",
		"strategy", "cores", "baseline(s)", "injected(s)", "base-sd", "inj-sd")
	type result struct {
		name     string
		injected float64
		baseline float64
	}
	var best *result
	for _, frac := range []float64{0, 0.125, 0.25, 0.375} {
		strat := mitigate.Strategy{HKFrac: frac}
		plan, err := mitigate.Apply(strat, p.Topo)
		if err != nil {
			log.Fatal(err)
		}
		bt, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
			Platform: p, Workload: w, Model: "omp", Strategy: strat,
			Seed: seed + 100, Tracing: true,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		it, _, err := repro.RunSeriesExec(ctx, exec, repro.Spec{
			Platform: p, Workload: w, Model: "omp", Strategy: strat,
			Seed: seed + 200, Inject: cfg,
		}, reps)
		if err != nil {
			log.Fatal(err)
		}
		b := stats.SummarizeTimes(bt)
		i := stats.SummarizeTimes(it)
		fmt.Printf("%-10s %8d %12.3f %12.3f %9.1fms %9.1fms\n",
			strat.Name(), plan.Threads, b.Mean/1000, i.Mean/1000, b.SD, i.SD)
		r := result{name: strat.Name(), injected: i.Mean / 1000, baseline: b.Mean / 1000}
		if best == nil || r.injected < best.injected {
			rr := r
			best = &rr
		}
	}
	fmt.Printf("\nbest worst-case configuration: %s (%.3f s under injection)\n", best.name, best.injected)
	fmt.Println("paper's recommendation: in high-noise environments housekeeping cores")
	fmt.Println("consistently improve performance; balance against the baseline cost.")
}
