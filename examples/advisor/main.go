// advisor demonstrates the paper's §6 guidance as an executable decision
// aid: it benchmarks every mitigation strategy at baseline and under
// replayed worst-case noise, classifies the workload, recommends a
// configuration for two different objectives, and sweeps amplified noise
// intensities to locate where housekeeping pays off.
//
// Run: go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/advisor"
	"repro/internal/experiment"
)

func recommend(p *repro.Platform, workload string, worstWeight float64) {
	rec, err := advisor.Advisor{
		Platform:  p,
		Workload:  workload,
		Model:     "omp",
		Reps:      experiment.RepCounts{Collect: 80, Baseline: 8, Inject: 8},
		Seed:      5,
		Objective: advisor.Objective{WorstWeight: worstWeight},
	}.Recommend()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective weight on worst case: %.1f -> recommend %s (%s workload)\n",
		worstWeight, rec.Best.Strategy.Name(), rec.Character)
	for _, r := range rec.Rationale {
		fmt.Printf("    - %s\n", r)
	}
}

func main() {
	p, err := repro.NewPlatform(repro.Intel9700KF)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== advisor: nbody on intel-9700kf ==")
	recommend(p, "nbody", 0.0) // average-time objective
	recommend(p, "nbody", 1.0) // worst-case objective

	fmt.Println("\n== intensity sweep: where does housekeeping pay off? ==")
	points, err := (repro.IntensitySweep{
		Platform:   p,
		Workload:   "nbody",
		Strategies: []repro.Strategy{repro.Rm, repro.RmHK},
		Factors:    []float64{0.5, 1, 2, 4},
		Reps:       repro.RepCounts{Collect: 80, Baseline: 6, Inject: 6},
		Seed:       5,
	}).Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		fmt.Printf("  x%-4.1f %-6s injected %.3fs (%+.1f%% vs its baseline)\n",
			pt.Factor, pt.Strategy.Name(), pt.MeanSec, pt.ChangePct)
	}
	if f := repro.CrossoverFactor(points, repro.Rm, repro.RmHK); f > 0 {
		fmt.Printf("\nhousekeeping overtakes all-cores at ~%.1fx the captured worst case\n", f)
	} else {
		fmt.Println("\nhousekeeping did not overtake in the swept range")
	}
}
