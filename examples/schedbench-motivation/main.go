// schedbench-motivation reproduces the paper's §3 motivation example in
// miniature: schedbench and the Babelstream dot kernel on the A64FX with
// and without firmware-reserved OS cores. Without reserved cores the
// execution-time distribution fattens dramatically, especially when all 48
// cores are occupied by the workload.
//
// Run: go run ./examples/schedbench-motivation
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const reps = 12

	// Sweep cells run their reps over the deterministic parallel executor.
	ctx := context.Background()
	exec := repro.Executor{}

	fmt.Println("Figure 1 (miniature): schedbench, schedule:chunk sweep")
	series, err := repro.Figure1Exec(ctx, exec, reps, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.RenderFigure(1, "schedbench exec time (ms)", series).Text())

	fmt.Println()
	fmt.Println("Figure 2 (miniature): Babelstream dot kernel, thread sweep")
	series, err = repro.Figure2Exec(ctx, exec, reps, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.RenderFigure(2, "dot exec time (ms) vs threads", series).Text())

	fmt.Println()
	fmt.Println("expected shape: the reserved system's boxes stay tight; the")
	fmt.Println("unreserved system fattens, most visibly at full occupancy (48).")
}
