package advisor

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/platform"
)

func tinyAdvisor(t *testing.T, workload string, worstWeight float64) Advisor {
	t.Helper()
	return Advisor{
		Platform:  platform.MustNew(machine.TinyTest),
		Workload:  workload,
		Model:     "omp",
		Reps:      experiment.RepCounts{Collect: 10, Baseline: 3, Inject: 3},
		Seed:      1,
		Objective: Objective{WorstWeight: worstWeight},
	}
}

func TestObjectiveValidate(t *testing.T) {
	if (Objective{WorstWeight: -0.1}).Validate() == nil {
		t.Fatal("negative weight should fail")
	}
	if (Objective{WorstWeight: 1.1}).Validate() == nil {
		t.Fatal("weight > 1 should fail")
	}
	if (Objective{WorstWeight: 0.5}).Validate() != nil {
		t.Fatal("valid weight rejected")
	}
}

func TestRecommendStructure(t *testing.T) {
	rec, err := tinyAdvisor(t, "nbody", 0.5).Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Table) != 6 {
		t.Fatalf("assessments = %d, want 6", len(rec.Table))
	}
	for i := 1; i < len(rec.Table); i++ {
		if rec.Table[i].Score < rec.Table[i-1].Score {
			t.Fatal("table not sorted by score")
		}
	}
	if rec.Best.Strategy != rec.Table[0].Strategy {
		t.Fatal("best must be the top-scored strategy")
	}
	if len(rec.Rationale) == 0 {
		t.Fatal("missing rationale")
	}
	for _, as := range rec.Table {
		if as.BaselineSec <= 0 || as.InjectedSec <= 0 {
			t.Fatalf("empty assessment: %+v", as)
		}
	}
}

func TestRecommendAverageObjectivePrefersAllCores(t *testing.T) {
	// With worst-case weight 0, the compute-bound workload should not
	// recommend housekeeping: the baseline penalty dominates.
	rec, err := tinyAdvisor(t, "nbody", 0).Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Strategy.HKFrac > 0 {
		t.Fatalf("average objective on compute-bound workload chose %s", rec.Best.Strategy.Name())
	}
	if rec.Character != ComputeBound {
		t.Fatalf("nbody classified as %v", rec.Character)
	}
}

func TestClassifierMemoryBound(t *testing.T) {
	// Babelstream saturates bandwidth: losing one core barely hurts.
	rec, err := tinyAdvisor(t, "babelstream", 0.5).Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Character == ComputeBound {
		t.Fatalf("babelstream classified as compute-bound")
	}
}

func TestRecommendRejectsBadObjective(t *testing.T) {
	a := tinyAdvisor(t, "nbody", 0)
	a.Objective.WorstWeight = 2
	if _, err := a.Recommend(); err == nil {
		t.Fatal("invalid objective should error")
	}
}

func TestCharacterString(t *testing.T) {
	if ComputeBound.String() != "compute-bound" || MemoryBound.String() != "memory-bound" || Mixed.String() != "mixed" {
		t.Fatal("character labels")
	}
}

func TestDefaultModel(t *testing.T) {
	a := tinyAdvisor(t, "nbody", 0.5)
	a.Model = ""
	rec, err := a.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Model != "omp" {
		t.Fatalf("default model = %q", rec.Model)
	}
	_ = mitigate.Columns
}
