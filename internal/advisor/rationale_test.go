package advisor

// Table tests for the advisor paths the end-to-end recommendation tests do
// not reach: every rationale branch, the classifier's degenerate inputs,
// and the shared-bootstrap CI bounds on assessments.

import (
	"strings"
	"testing"

	"repro/internal/mitigate"
)

func TestRationaleBranches(t *testing.T) {
	rec := func(char Character, best mitigate.Strategy) *Recommendation {
		return &Recommendation{Character: char, Best: Assessment{Strategy: best}}
	}
	cases := map[string]struct {
		rec  *Recommendation
		obj  Objective
		want []string // substrings that must appear
		not  []string // substrings that must not
	}{
		"worst-case objective picks housekeeping": {
			rec:  rec(Mixed, mitigate.RmHK),
			obj:  Objective{WorstWeight: 0.5},
			want: []string{"recommendation 1", "roaming threads", "recommendation 4"},
		},
		"memory-bound housekeeping under average noise": {
			rec:  rec(MemoryBound, mitigate.RmHK),
			obj:  Objective{WorstWeight: 0.2},
			want: []string{"recommendation 2", "recommendation 4"},
			not:  []string{"recommendation 1"},
		},
		"compute-bound avoids housekeeping": {
			rec:  rec(ComputeBound, mitigate.Rm),
			obj:  Objective{WorstWeight: 0},
			want: []string{"recommendation 3", "roaming threads"},
			not:  []string{"recommendation 4"},
		},
		"pinning selected": {
			rec:  rec(ComputeBound, mitigate.TP),
			obj:  Objective{WorstWeight: 0},
			want: []string{"thread pinning selected", "recommendation 3"},
			not:  []string{"roaming threads"},
		},
		"pinned housekeeping under worst-case objective": {
			rec:  rec(MemoryBound, mitigate.TPHK2),
			obj:  Objective{WorstWeight: 1},
			want: []string{"recommendation 1", "thread pinning selected", "recommendation 4"},
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			lines := rationale(tc.rec, tc.obj)
			joined := strings.Join(lines, "\n")
			if !strings.Contains(joined, "workload measured as "+tc.rec.Character.String()) {
				t.Fatalf("missing character line:\n%s", joined)
			}
			for _, want := range tc.want {
				if !strings.Contains(joined, want) {
					t.Fatalf("missing %q:\n%s", want, joined)
				}
			}
			for _, not := range tc.not {
				if strings.Contains(joined, not) {
					t.Fatalf("unexpected %q:\n%s", not, joined)
				}
			}
		})
	}
}

func TestClassifyTable(t *testing.T) {
	// Synthetic assessment tables exercise the regression classifier
	// directly: baseline seconds at HKFrac 0, 0.125, 0.25 for the roaming
	// strategies (pinned rows carry junk to prove they are ignored).
	table := func(rm, rmhk, rmhk2 float64) []Assessment {
		return []Assessment{
			{Strategy: mitigate.Rm, BaselineSec: rm},
			{Strategy: mitigate.RmHK, BaselineSec: rmhk},
			{Strategy: mitigate.RmHK2, BaselineSec: rmhk2},
			{Strategy: mitigate.TP, BaselineSec: 999},
			{Strategy: mitigate.TPHK, BaselineSec: 0.001},
		}
	}
	var a Advisor
	cases := map[string]struct {
		table []Assessment
		want  Character
	}{
		"proportional slowdown is compute-bound": {table(1.0, 1.125, 1.25), ComputeBound},
		"flat curve is memory-bound":             {table(1.0, 1.001, 1.002), MemoryBound},
		"intermediate slope is mixed":            {table(1.0, 1.06, 1.12), Mixed},
		"missing roaming rows fall back to mixed": {
			[]Assessment{{Strategy: mitigate.TP, BaselineSec: 1}}, Mixed},
		"zero baseline falls back to mixed":      {table(0, 0, 0), Mixed},
		"negative intercept falls back to mixed": {table(-1, -1.125, -1.25), Mixed},
		"single roaming row falls back to mixed": {
			[]Assessment{{Strategy: mitigate.Rm, BaselineSec: 1}}, Mixed},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if got := a.classify(tc.table); got != tc.want {
				t.Fatalf("classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAssessmentCIBounds(t *testing.T) {
	rec, err := tinyAdvisor(t, "nbody", 0.5).Recommend()
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range rec.Table {
		if as.BaselineLoSec > as.BaselineSec || as.BaselineSec > as.BaselineHiSec {
			t.Fatalf("%s: baseline CI [%g, %g] does not bracket mean %g",
				as.Strategy.Name(), as.BaselineLoSec, as.BaselineHiSec, as.BaselineSec)
		}
		if as.InjectedLoSec > as.InjectedSec || as.InjectedSec > as.InjectedHiSec {
			t.Fatalf("%s: injected CI [%g, %g] does not bracket mean %g",
				as.Strategy.Name(), as.InjectedLoSec, as.InjectedHiSec, as.InjectedSec)
		}
		if as.BaselineLoSec <= 0 {
			t.Fatalf("%s: baseline CI lower bound %g not positive", as.Strategy.Name(), as.BaselineLoSec)
		}
	}
}
