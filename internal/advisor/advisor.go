// Package advisor operationalizes the paper's §6 recommendations:
// "combining traditional benchmarking with noise injection allows testing
// under reproducible, diverse noise conditions... helps developers balance
// average and worst-case performance." Given a platform, workload, and an
// objective weighting of average vs worst-case behaviour, it benchmarks
// every mitigation strategy both at baseline and under replayed worst-case
// noise, classifies the workload (compute- vs memory-bound, measured, not
// assumed), and recommends a configuration with the paper's rationale.
package advisor

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/experiment"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Objective weights the recommendation: 0 optimizes average execution time
// only, 1 optimizes the injected worst case only. The paper's discussion
// suggests high-noise or variability-sensitive deployments should weight
// the worst case heavily.
type Objective struct {
	WorstWeight float64
}

// Validate checks the objective.
func (o Objective) Validate() error {
	if o.WorstWeight < 0 || o.WorstWeight > 1 {
		return fmt.Errorf("advisor: worst-case weight %v out of [0,1]", o.WorstWeight)
	}
	return nil
}

// Character classifies a workload's resource character.
type Character int

const (
	// ComputeBound workloads scale with core count.
	ComputeBound Character = iota
	// MemoryBound workloads saturate machine bandwidth.
	MemoryBound
	// Mixed sits in between.
	Mixed
)

func (c Character) String() string {
	switch c {
	case ComputeBound:
		return "compute-bound"
	case MemoryBound:
		return "memory-bound"
	default:
		return "mixed"
	}
}

// Assessment is one strategy's measured profile. The CI bounds come from
// the shared deterministic bootstrap (stats.MeanCI), so the advisor's
// uncertainty estimates agree with the analysis artifact's.
type Assessment struct {
	Strategy    mitigate.Strategy
	BaselineSec float64
	// BaselineLoSec/BaselineHiSec bound BaselineSec at 95% confidence.
	BaselineLoSec float64
	BaselineHiSec float64
	BaselineSD    float64 // ms
	InjectedSec   float64
	// InjectedLoSec/InjectedHiSec bound InjectedSec at 95% confidence.
	InjectedLoSec float64
	InjectedHiSec float64
	ChangePct     float64
	Score         float64 // weighted objective, lower is better
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Workload  string
	Platform  string
	Model     string
	Character Character
	Best      Assessment
	Table     []Assessment // sorted by score
	Rationale []string
}

// Advisor runs the assessment.
type Advisor struct {
	Platform  *platform.Platform
	Workload  string
	Model     string
	Reps      experiment.RepCounts
	Seed      uint64
	Objective Objective
	// Exec is the execution layer; the zero value runs with default
	// parallelism.
	Exec experiment.Executor
}

// Recommend benchmarks all strategies at baseline and under worst-case
// injection and returns a recommendation.
func (a Advisor) Recommend() (*Recommendation, error) {
	return a.RecommendContext(context.Background())
}

// RecommendContext is Recommend under ctx.
func (a Advisor) RecommendContext(ctx context.Context) (*Recommendation, error) {
	if err := a.Objective.Validate(); err != nil {
		return nil, err
	}
	if a.Model == "" {
		a.Model = "omp"
	}
	w, err := a.Platform.WorkloadSpec(a.Workload)
	if err != nil {
		return nil, err
	}
	// Worst-case config hunted under the roaming configuration.
	cfg, _, err := experiment.BuildConfigExec(ctx, a.Exec, a.Platform, a.Workload,
		experiment.ConfigSource{Model: a.Model, Strategy: mitigate.Rm, ID: 1},
		a.Reps.Collect, true, a.Seed)
	if err != nil {
		return nil, err
	}

	var table []Assessment
	for _, strat := range mitigate.Columns() {
		baseSpec := experiment.Spec{
			Platform: a.Platform, Workload: w, Model: a.Model, Strategy: strat,
			Seed: a.Seed + 17, Tracing: true,
		}
		bt, _, err := a.Exec.Series(ctx, baseSpec, a.Reps.Baseline)
		if err != nil {
			return nil, err
		}
		injSpec := baseSpec
		injSpec.Tracing = false
		injSpec.Inject = cfg
		injSpec.Seed = a.Seed + 31
		it, _, err := a.Exec.Series(ctx, injSpec, a.Reps.Inject)
		if err != nil {
			return nil, err
		}
		b := stats.SummarizeTimes(bt)
		i := stats.SummarizeTimes(it)
		as := Assessment{
			Strategy:    strat,
			BaselineSec: b.Mean / 1000,
			BaselineSD:  b.SD,
			InjectedSec: i.Mean / 1000,
			ChangePct:   stats.RelChange(b.Mean, i.Mean),
		}
		_, as.BaselineLoSec, as.BaselineHiSec = meanCISec(bt)
		_, as.InjectedLoSec, as.InjectedHiSec = meanCISec(it)
		ww := a.Objective.WorstWeight
		as.Score = (1-ww)*as.BaselineSec + ww*as.InjectedSec
		table = append(table, as)
	}
	sort.Slice(table, func(i, j int) bool { return table[i].Score < table[j].Score })

	char := a.classify(table)
	rec := &Recommendation{
		Workload:  a.Workload,
		Platform:  a.Platform.Name,
		Model:     a.Model,
		Character: char,
		Best:      table[0],
		Table:     table,
	}
	rec.Rationale = rationale(rec, a.Objective)
	return rec, nil
}

// meanCISec is the shared bootstrap CI (stats.MeanCI) over a rep series,
// in seconds.
func meanCISec(ts []sim.Time) (mean, lo, hi float64) {
	secs := make([]float64, len(ts))
	for i, t := range ts {
		secs[i] = float64(t) / 1e9
	}
	return stats.MeanCI(secs, 0.95)
}

// classify infers the workload character from the measured housekeeping
// sensitivity: it regresses baseline time against the housekeeping core
// fraction across the roaming strategies (Rm, RmHK, RmHK2) with the shared
// stats.LinearFit — the same regression helper the bottleneck analysis
// uses. Losing cores barely slows a bandwidth-saturated workload (flat
// slope) but slows a compute-bound one nearly proportionally (relative
// slope approaching 1 per fraction of cores removed).
func (a Advisor) classify(table []Assessment) Character {
	var xs, ys []float64
	for i := range table {
		if s := table[i].Strategy; !s.Pin && !s.SMT {
			xs = append(xs, s.HKFrac)
			ys = append(ys, table[i].BaselineSec)
		}
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil || fit.Intercept <= 0 {
		return Mixed
	}
	// Relative slope: fractional slowdown per fraction of cores given to
	// housekeeping. The thresholds are the old two-point rule (penalty at
	// HKFrac 0.125 below 4% / above 9%) expressed per unit fraction.
	rel := fit.Slope / fit.Intercept
	switch {
	case rel < 0.32:
		return MemoryBound
	case rel > 0.72:
		return ComputeBound
	default:
		return Mixed
	}
}

// rationale renders the paper's §6 recommendation logic against the
// measured data.
func rationale(rec *Recommendation, obj Objective) []string {
	var out []string
	out = append(out, fmt.Sprintf("workload measured as %s (housekeeping baseline penalty)", rec.Character))
	best := rec.Best.Strategy
	switch {
	case best.HKFrac > 0 && obj.WorstWeight >= 0.5:
		out = append(out, "high-noise objective: housekeeping cores consistently improved worst-case performance (paper recommendation 1)")
	case rec.Character == MemoryBound && best.HKFrac > 0:
		out = append(out, "memory-bound: housekeeping cores yield gains even under average noise (paper recommendation 2)")
	case rec.Character == ComputeBound && best.HKFrac == 0:
		out = append(out, "compute-bound under average noise: avoid housekeeping, every core counts (paper recommendation 3)")
	}
	if best.Pin {
		out = append(out, "thread pinning selected: migration overhead outweighed flexibility in this configuration")
	} else {
		out = append(out, "roaming threads selected: on small desktop parts pinning showed no mitigation benefit (paper §5.1)")
	}
	if best.HKFrac > 0 {
		out = append(out, "leaving cores unallocated reduced variability (paper recommendation 4)")
	}
	return out
}
