package cluster

import (
	"testing"

	"repro/internal/sim"
)

// threeNodeWorld builds a hand-checkable 3-node world (node 1 a 4x
// straggler) without running it.
func threeNodeWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(Spec{
		Nodes: 3, Straggler: 1, StragglerScale: 4,
		Policy: PolicyRoundRobin, Tenants: 1, JobsPerTenant: 1,
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRoundRobinCycles(t *testing.T) {
	w := threeNodeWorld(t)
	p, err := NewPolicy(PolicyRoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, wantNode := range want {
		if got := p.Place(&Job{}, w); got != wantNode {
			t.Fatalf("placement %d: got node %d, want %d", i, got, wantNode)
		}
	}
}

func TestLeastLoadedPicksEmptiestNode(t *testing.T) {
	w := threeNodeWorld(t)
	p, err := NewPolicy(PolicyLeastLoad, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Nodes[0].Inflight = 4
	w.Nodes[1].Inflight = 1
	w.Nodes[2].Inflight = 2
	if got := p.Place(&Job{}, w); got != 1 {
		t.Fatalf("got node %d, want 1 (lowest inflight)", got)
	}
	// Ties break by lowest node ID.
	w.Nodes[0].Inflight = 2
	w.Nodes[1].Inflight = 2
	w.Nodes[2].Inflight = 2
	if got := p.Place(&Job{}, w); got != 0 {
		t.Fatalf("tie: got node %d, want 0", got)
	}
}

func TestNoiseAwareAvoidsStragglerAtEqualLoad(t *testing.T) {
	w := threeNodeWorld(t)
	p, err := NewPolicy(PolicyNoiseAware, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Equal load: the 4x straggler (node 1) scores 4x worse; ties among the
	// quiet nodes break to node 0.
	if got := p.Place(&Job{}, w); got != 0 {
		t.Fatalf("equal load: got node %d, want 0", got)
	}
	// Load node 0 heavily: node 2 becomes cheapest, straggler still avoided.
	w.Nodes[0].Inflight = 8
	if got := p.Place(&Job{}, w); got != 2 {
		t.Fatalf("node 0 loaded: got node %d, want 2", got)
	}
	// Saturate both quiet nodes far past the straggler's 4x handicap: the
	// policy degrades to least-loaded and finally uses the straggler.
	w.Nodes[0].Inflight = 40
	w.Nodes[2].Inflight = 40
	if got := p.Place(&Job{}, w); got != 1 {
		t.Fatalf("quiet nodes saturated: got node %d, want 1 (straggler)", got)
	}
}

func TestRandomPolicyReproducibleAndInRange(t *testing.T) {
	w := threeNodeWorld(t)
	draw := func(seed uint64) []int {
		p, err := NewPolicy(PolicyRandom, sim.NewRNG(seed).Stream("gs/policy"))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 20)
		for i := range out {
			out[i] = p.Place(&Job{}, w)
			if out[i] < 0 || out[i] >= len(w.Nodes) {
				t.Fatalf("draw %d: node %d out of range", i, out[i])
			}
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed should produce a different sequence (vanishingly
	// unlikely to collide over 20 draws of 3 choices).
	c := draw(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 7 produced identical placement sequences")
	}
}

func TestNewPolicyRejectsUnknown(t *testing.T) {
	if _, err := NewPolicy("best-effort", nil); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}
