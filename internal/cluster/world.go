package cluster

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sim"
)

// noiseHorizon bounds per-node noise generation; effectively "forever"
// relative to any run.
const noiseHorizon = sim.Time(1) << 60

// NodeState is one node of a running world: the machine, its scheduler
// instance (sharing the world's engine), its noise generator, and the load
// counters placement policies consult.
type NodeState struct {
	// Node is the machine-layer node (topology + noise scale).
	Node *machine.Node
	// Sched is the node's CPU scheduler, instantiated against the shared
	// engine so cross-node events stay globally ordered.
	Sched *cpusched.Scheduler
	// Gen is the node's background-noise generator.
	Gen *noise.Generator
	// CPUBase is the node's offset in the cluster-global CPU numbering
	// (observability lanes).
	CPUBase int
	// Inflight counts placed-but-unfinished worker tasks; JobsPlaced
	// counts jobs. Both are maintained by the global scheduler on the
	// engine thread.
	Inflight   int
	JobsPlaced int
}

// World is one simulated cluster run: N nodes behind a global scheduler,
// fed by multi-tenant load generators, all driven by a single shared
// discrete-event clock.
type World struct {
	Eng     *sim.Engine
	Cluster *machine.Cluster
	Nodes   []*NodeState

	gs      *GlobalSched
	tenants []*Tenant
	rec     *obs.Recorder
	spec    Spec
}

// NewWorld builds a world from a validated spec. rec, when non-nil, is a
// passive observability recorder: each node's scheduler records through a
// lane at the node's global CPU base, and the recorder is tagged with the
// node lanes so Chrome-trace export groups by node. Attaching it never
// changes simulation output.
func NewWorld(spec Spec, seed uint64, rec *obs.Recorder) (*World, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	mc, err := spec.buildCluster()
	if err != nil {
		return nil, err
	}
	p, err := spec.nodePlatform()
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	w := &World{Eng: eng, Cluster: mc, rec: rec, spec: spec}

	var lanes []obs.NodeLane
	for i, n := range mc.Nodes {
		sched := cpusched.New(eng, n.Topo, p.SchedOpt)
		base := mc.CPUBase(i)
		if rec != nil {
			sched.SetObserver(rec.Lane(base))
			name := n.Name
			if spec.stragglerActive() && i == spec.Straggler {
				name = fmt.Sprintf("%s (straggler x%g)", n.Name, spec.StragglerScale)
			}
			lanes = append(lanes, obs.NodeLane{Name: name, CPUBase: base, NumCPUs: n.Topo.NumCPUs()})
		}
		prof := p.Noise
		if f := n.EffectiveNoise(); f != 1 {
			prof = prof.Scale(f)
		}
		gen := noise.Attach(sched, prof, rng.Stream(fmt.Sprintf("node%d/noise", i)), noiseHorizon)
		w.Nodes = append(w.Nodes, &NodeState{
			Node: n, Sched: sched, Gen: gen, CPUBase: base,
		})
	}
	if rec != nil {
		rec.SetNodeLanes(lanes)
	}

	pol, err := NewPolicy(spec.Policy, rng.Stream("gs/policy"))
	if err != nil {
		return nil, err
	}
	w.gs = newGlobalSched(w, pol)

	width := spec.Width
	if width == 0 {
		width = mc.Nodes[0].Topo.Cores
	}
	meanCycles := spec.WorkerMs * 1e6 * mc.Nodes[0].Topo.CyclesPerNs()
	gapNs := spec.ArrivalMs * 1e6
	for t := 0; t < spec.Tenants; t++ {
		tn := newTenant(t, w, spec.JobsPerTenant, width, meanCycles, gapNs,
			rng.Stream(fmt.Sprintf("tenant%d", t)))
		w.tenants = append(w.tenants, tn)
	}
	return w, nil
}

// stragglerActive reports whether the spec marks an actual straggler.
func (s Spec) stragglerActive() bool {
	return s.StragglerScale != 0 && s.StragglerScale != 1
}

// Result is the outcome of one cluster run: the deterministic ground truth
// (per-job makespans and placements, in job-arrival order) plus derived
// metrics.
type Result struct {
	// Policy is the placement policy that ran.
	Policy string `json:"policy"`
	// Jobs is the total job count.
	Jobs int `json:"jobs"`
	// MakespanNs is each job's fork-join makespan (arrival to last worker
	// finish), indexed by arrival order.
	MakespanNs []int64 `json:"makespan_ns"`
	// Placements is the node each job ran on, same order.
	Placements []int `json:"placements"`
	// NodeJobs counts jobs placed per node.
	NodeJobs []int `json:"node_jobs"`
	// BatchNs is the simulated instant the last job finished.
	BatchNs int64 `json:"batch_ns"`
	// StragglerShare is the fraction of jobs placed on the straggler node
	// (0 when the spec has none).
	StragglerShare float64 `json:"straggler_share,omitempty"`
	// StragglerRatio is mean makespan of straggler-placed jobs over mean
	// makespan of the rest (0 when either side is empty).
	StragglerRatio float64 `json:"straggler_ratio,omitempty"`
	// ThroughputJobsPerSec is Jobs / BatchNs in simulated seconds.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
}

// Run drives the world until every job has completed and returns the
// result. It must be called once.
func (w *World) Run() (*Result, error) {
	defer func() {
		for _, ns := range w.Nodes {
			ns.Sched.Shutdown()
		}
	}()
	for _, t := range w.tenants {
		t.start()
	}
	total := w.spec.Tenants * w.spec.JobsPerTenant
	w.Eng.RunWhile(func() bool { return w.gs.finished < total })
	if w.gs.finished < total {
		return nil, fmt.Errorf("cluster: %d of %d jobs unfinished (event queue drained)",
			total-w.gs.finished, total)
	}
	res := w.collect()
	if w.rec != nil {
		w.publishCounters()
	}
	return res, nil
}

// collect assembles the Result from the finished jobs.
func (w *World) collect() *Result {
	jobs := w.gs.jobs
	res := &Result{
		Policy:     w.spec.Policy,
		Jobs:       len(jobs),
		MakespanNs: make([]int64, len(jobs)),
		Placements: make([]int, len(jobs)),
		NodeJobs:   make([]int, len(w.Nodes)),
	}
	var stragglerSum, otherSum float64
	var stragglerN, otherN int
	straggler := -1
	if w.spec.stragglerActive() {
		straggler = w.spec.Straggler
	}
	for i, j := range jobs {
		mk := int64(j.Finish - j.Arrival)
		res.MakespanNs[i] = mk
		res.Placements[i] = j.Node
		res.NodeJobs[j.Node]++
		if int64(j.Finish) > res.BatchNs {
			res.BatchNs = int64(j.Finish)
		}
		if j.Node == straggler {
			stragglerSum += float64(mk)
			stragglerN++
		} else {
			otherSum += float64(mk)
			otherN++
		}
	}
	if straggler >= 0 && len(jobs) > 0 {
		res.StragglerShare = float64(stragglerN) / float64(len(jobs))
		if stragglerN > 0 && otherN > 0 {
			res.StragglerRatio = (stragglerSum / float64(stragglerN)) / (otherSum / float64(otherN))
		}
	}
	if res.BatchNs > 0 {
		res.ThroughputJobsPerSec = float64(res.Jobs) / (float64(res.BatchNs) / 1e9)
	}
	return res
}

// publishCounters exports the run's kernel counters to the recorder's
// registry, summed over nodes (counter adds commute, so totals stay
// deterministic under any rep-to-worker assignment).
func (w *World) publishCounters() {
	reg := w.rec.Registry()
	reg.Counter("repro_runs_total", "Completed simulation runs.").Inc()
	reg.Counter("repro_sim_steps_total", "Engine events processed.").Add(w.Eng.Stats().Steps)
	var switches, spawned uint64
	for _, ns := range w.Nodes {
		switches += ns.Sched.ContextSwitches
		spawned += uint64(ns.Gen.Spawned)
	}
	reg.Counter("repro_sched_context_switches_total", "Task dispatches.").Add(switches)
	reg.Counter("repro_noise_tasks_spawned_total", "Noise tasks spawned.").Add(spawned)
	reg.Counter("repro_obs_events_total", "Observability events recorded.").Add(w.rec.Total())
	reg.Counter("repro_obs_events_dropped_total",
		"Timeline events dropped by the buffer cap.").Add(w.rec.Dropped())
}
