package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Placement policy names accepted by Spec.Policy and NewPolicy.
const (
	PolicyRandom     = "random"
	PolicyRoundRobin = "round-robin"
	PolicyLeastLoad  = "least-loaded"
	PolicyNoiseAware = "noise-aware"
)

// PolicyNames lists the available placement policies.
func PolicyNames() []string {
	return []string{PolicyRandom, PolicyRoundRobin, PolicyLeastLoad, PolicyNoiseAware}
}

func knownPolicy(name string) bool {
	for _, p := range PolicyNames() {
		if p == name {
			return true
		}
	}
	return false
}

// PlacementPolicy decides which node a job runs on. Place is called on the
// engine thread inside the job's arrival event, so every decision is part
// of the deterministic global event order; implementations must draw
// randomness only from streams of the run's seeded RNG and must break ties
// by node ID so equal inputs give equal placements.
type PlacementPolicy interface {
	Name() string
	Place(j *Job, w *World) int
}

// NewPolicy builds the named policy. rng feeds the stochastic policies;
// deterministic ones ignore it.
func NewPolicy(name string, rng *sim.RNG) (PlacementPolicy, error) {
	switch name {
	case PolicyRandom:
		return &randomPolicy{rng: rng}, nil
	case PolicyRoundRobin:
		return &roundRobinPolicy{}, nil
	case PolicyLeastLoad:
		return &leastLoadedPolicy{}, nil
	case PolicyNoiseAware:
		return &noiseAwarePolicy{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q", name)
	}
}

// randomPolicy places uniformly at random — the baseline that shows what
// ignoring both load and noise costs.
type randomPolicy struct{ rng *sim.RNG }

func (p *randomPolicy) Name() string { return PolicyRandom }

func (p *randomPolicy) Place(j *Job, w *World) int {
	return p.rng.Intn(len(w.Nodes))
}

// roundRobinPolicy cycles through the nodes in ID order — oblivious to
// both load and noise, but perfectly balanced in job count.
type roundRobinPolicy struct{ next int }

func (p *roundRobinPolicy) Name() string { return PolicyRoundRobin }

func (p *roundRobinPolicy) Place(j *Job, w *World) int {
	n := p.next % len(w.Nodes)
	p.next++
	return n
}

// leastLoadedPolicy picks the node with the lowest in-flight worker count
// per CPU (normalized so heterogeneous presets compare fairly), ties
// broken by node ID. It sees queue depth but not noise, so it still walks
// into a straggler whose queue drains slowly only after the queue has
// visibly built up.
type leastLoadedPolicy struct{}

func (p *leastLoadedPolicy) Name() string { return PolicyLeastLoad }

func (p *leastLoadedPolicy) Place(j *Job, w *World) int {
	return bestNode(w, func(ns *NodeState) float64 {
		return float64(ns.Inflight) / float64(ns.Node.Topo.NumCPUs())
	})
}

// noiseAwarePolicy scores nodes by utilization weighted by their noise
// intensity: score = (inflight/cpus + 1) * effectiveNoise. With equal
// loads a 4x straggler scores 4x worse and is avoided; once the quiet
// nodes are loaded enough the straggler is used again rather than letting
// it idle — the policy degrades to least-loaded under saturation.
type noiseAwarePolicy struct{}

func (p *noiseAwarePolicy) Name() string { return PolicyNoiseAware }

func (p *noiseAwarePolicy) Place(j *Job, w *World) int {
	return bestNode(w, func(ns *NodeState) float64 {
		util := float64(ns.Inflight) / float64(ns.Node.Topo.NumCPUs())
		return (util + 1) * ns.Node.EffectiveNoise()
	})
}

// bestNode returns the node with the minimal score, ties broken by the
// lowest node ID (strict < keeps the first minimum).
func bestNode(w *World, score func(*NodeState) float64) int {
	best, bestScore := 0, score(w.Nodes[0])
	for i := 1; i < len(w.Nodes); i++ {
		if s := score(w.Nodes[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
