package cluster

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
)

// Shell is the seed-independent construction prefix of a cluster world: the
// cluster topology, the node platform, one shared engine, and one scheduler
// per node, all built once and forked back to their construction snapshots
// after every rep. Everything seed-dependent — per-node noise generators,
// the placement policy, the tenants — is rebuilt per rep in the exact order
// NewWorld builds it, so a rep run in a warm shell is byte-identical to one
// in a fresh world (scheduler construction touches no engine state, which is
// why pre-building the schedulers cannot shift an event sequence number).
//
// A shell is single-threaded like the engine it wraps: one rep at a time.
// Parallel cluster series use one shell per in-flight rep.
type Shell struct {
	spec   Spec // validated, defaults applied
	mc     *machine.Cluster
	p      *platform.Platform
	batch  *sim.Batch
	scheds []*cpusched.Scheduler
	snaps  []cpusched.Snapshot

	// Per-run batch counters, reported by the last Run.
	Snapshots   uint64
	CowCopies   uint64
	BatchedReps uint64

	warm bool
}

// NewShell builds the shared prefix for a cluster spec.
func NewShell(spec Spec) (*Shell, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	mc, err := spec.buildCluster()
	if err != nil {
		return nil, err
	}
	p, err := spec.nodePlatform()
	if err != nil {
		return nil, err
	}
	sh := &Shell{spec: spec, mc: mc, p: p, batch: sim.NewBatch()}
	for _, n := range mc.Nodes {
		sched := cpusched.New(sh.batch.Engine(), n.Topo, p.SchedOpt)
		sh.scheds = append(sh.scheds, sched)
		sh.snaps = append(sh.snaps, sched.Snapshot())
	}
	return sh, nil
}

// reset forks every scheduler and the shared engine back to their
// construction snapshots, leaving the shell pristine for the next rep. It
// runs on every exit path of Run — including errors — so an erroring rep
// can never leak state into the next one.
func (sh *Shell) reset() {
	for i, s := range sh.scheds {
		s.Fork(sh.snaps[i])
	}
	sh.batch.Fork()
	sh.warm = true
}

// Run executes one rep in the shell: the exact NewWorld construction
// sequence minus what the shell already holds, then the world's run loop,
// then a fork back to the construction snapshots. rec may be nil.
func (sh *Shell) Run(seed uint64, rec *obs.Recorder) (*Result, error) {
	eng := sh.batch.Engine()
	timerAllocs0 := eng.TimerAllocs
	var taskAllocs0 uint64
	for _, s := range sh.scheds {
		taskAllocs0 += s.TaskAllocs
	}

	spec := sh.spec
	rng := sim.NewRNG(seed)
	w := &World{Eng: eng, Cluster: sh.mc, rec: rec, spec: spec}
	var lanes []obs.NodeLane
	for i, n := range sh.mc.Nodes {
		sched := sh.scheds[i]
		base := sh.mc.CPUBase(i)
		if rec != nil {
			sched.SetObserver(rec.Lane(base))
			name := n.Name
			if spec.stragglerActive() && i == spec.Straggler {
				name = fmt.Sprintf("%s (straggler x%g)", n.Name, spec.StragglerScale)
			}
			lanes = append(lanes, obs.NodeLane{Name: name, CPUBase: base, NumCPUs: n.Topo.NumCPUs()})
		}
		prof := sh.p.Noise
		if f := n.EffectiveNoise(); f != 1 {
			prof = prof.Scale(f)
		}
		gen := noise.Attach(sched, prof, rng.Stream(fmt.Sprintf("node%d/noise", i)), noiseHorizon)
		w.Nodes = append(w.Nodes, &NodeState{
			Node: n, Sched: sched, Gen: gen, CPUBase: base,
		})
	}
	if rec != nil {
		rec.SetNodeLanes(lanes)
	}

	pol, err := NewPolicy(spec.Policy, rng.Stream("gs/policy"))
	if err != nil {
		sh.reset()
		return nil, err
	}
	w.gs = newGlobalSched(w, pol)

	width := spec.Width
	if width == 0 {
		width = sh.mc.Nodes[0].Topo.Cores
	}
	meanCycles := spec.WorkerMs * 1e6 * sh.mc.Nodes[0].Topo.CyclesPerNs()
	gapNs := spec.ArrivalMs * 1e6
	for t := 0; t < spec.Tenants; t++ {
		tn := newTenant(t, w, spec.JobsPerTenant, width, meanCycles, gapNs,
			rng.Stream(fmt.Sprintf("tenant%d", t)))
		w.tenants = append(w.tenants, tn)
	}

	sh.Snapshots, sh.BatchedReps = 1, 0
	if sh.warm {
		sh.Snapshots, sh.BatchedReps = 0, 1
	}
	res, err := w.Run()
	var taskAllocs uint64
	for _, s := range sh.scheds {
		taskAllocs += s.TaskAllocs
	}
	sh.CowCopies = (eng.TimerAllocs - timerAllocs0) + (taskAllocs - taskAllocs0)
	sh.reset()
	return res, err
}

// Run builds a world from spec and runs it to completion: the one-call
// form callers outside the package use. rec may be nil. It runs through a
// cold shell, which is the legacy build-every-rep path — callers that want
// warm-shell batching hold a Shell and call its Run per rep.
func Run(spec Spec, seed uint64, rec *obs.Recorder) (*Result, error) {
	sh, err := NewShell(spec)
	if err != nil {
		return nil, err
	}
	return sh.Run(seed, rec)
}
