package cluster

// StragglerStudySpec is the headline straggler-sensitivity scenario: four
// nodes, node 0 a 40x-noise straggler, three tenants of eight fork-join jobs
// each. The load point is deliberately moderate (mean node utilization ~0.5
// when spread over all four nodes) so that avoiding the straggler costs
// little queueing — the regime where placement policy choice is visible in
// mean makespan, not just in the tail. The CLI, the committed benchmark, and
// the golden fixture all run this spec so their numbers are comparable.
func StragglerStudySpec() Spec {
	return Spec{
		Nodes:          4,
		Straggler:      0,
		StragglerScale: 40,
		Tenants:        3,
		JobsPerTenant:  8,
		Width:          4,
		WorkerMs:       20,
		ArrivalMs:      60,
	}
}
