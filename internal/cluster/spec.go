// Package cluster lifts the simulator's single-node assumption: it builds a
// simulated datacenter of N nodes — each a machine.Topology with its own
// Linux-like CPU scheduler and natural background noise — driven by one
// shared discrete-event clock, and places multi-tenant fork-join jobs onto
// the nodes through pluggable placement policies.
//
// Determinism: a cluster run is a pure function of (Spec, seed). All
// per-node schedulers share a single sim.Engine, so cross-node events are
// totally ordered by (time, scheduling sequence); placement decisions fire
// inside arrival events on the engine thread; and every random draw comes
// from a named stream of the run's seeded RNG. Runs are therefore
// byte-identical across repetitions and executor parallelism levels, which
// is what lets noiselabd cache cluster results content-addressed, exactly
// like single-node jobs.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/machine"
	"repro/internal/platform"
)

// Spec describes one cluster scenario. The zero value of most fields means
// "default" (see withDefaults); Normalize canonicalizes the spellings that
// must hash equal.
type Spec struct {
	// Nodes is the node count (>= 1).
	Nodes int `json:"nodes"`
	// Preset is the per-node machine preset; every node runs the same one
	// ("" = tiny-test).
	Preset string `json:"preset,omitempty"`
	// Straggler is the index of the straggler node; it only takes effect
	// when StragglerScale marks an actual straggler.
	Straggler int `json:"straggler,omitempty"`
	// StragglerScale multiplies the straggler node's background-noise
	// intensity. 0 and 1 both mean no straggler.
	StragglerScale float64 `json:"straggler_scale,omitempty"`
	// NoiseScale multiplies every node's noise intensity (0 and 1 both mean
	// natural); the straggler multiplies on top of it.
	NoiseScale float64 `json:"noise_scale,omitempty"`
	// Policy names the placement policy (see PolicyNames; "" =
	// round-robin).
	Policy string `json:"policy"`
	// Tenants is the number of independent load generators (default 2).
	Tenants int `json:"tenants,omitempty"`
	// JobsPerTenant is how many fork-join jobs each tenant submits
	// (default 8).
	JobsPerTenant int `json:"jobs_per_tenant,omitempty"`
	// Width is the fork-join width: worker tasks per job (0 = the cores of
	// one node).
	Width int `json:"width,omitempty"`
	// WorkerMs is the mean per-worker compute time in simulated
	// milliseconds at full single-thread speed of the preset (default 2).
	WorkerMs float64 `json:"worker_ms,omitempty"`
	// ArrivalMs is the mean inter-arrival gap between a tenant's jobs in
	// simulated milliseconds (Poisson arrivals; default 5).
	ArrivalMs float64 `json:"arrival_ms,omitempty"`
}

// Normalize rewrites representation-only variation to canonical form so
// semantically equal specs hash equal: policy/preset spelling and the two
// spellings of natural noise intensity. It does not validate.
func (s *Spec) Normalize() {
	s.Preset = strings.ToLower(strings.TrimSpace(s.Preset))
	s.Policy = strings.ToLower(strings.TrimSpace(s.Policy))
	if s.NoiseScale == 1 {
		s.NoiseScale = 0
	}
	if s.StragglerScale == 1 {
		s.StragglerScale = 0
	}
	if s.StragglerScale == 0 {
		// No straggler: the index is inert; zero it so it cannot split the
		// cache key.
		s.Straggler = 0
	}
}

// withDefaults fills unset fields with their documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Preset == "" {
		s.Preset = machine.TinyTest
	}
	if s.Policy == "" {
		s.Policy = PolicyRoundRobin
	}
	if s.Tenants == 0 {
		s.Tenants = 2
	}
	if s.JobsPerTenant == 0 {
		s.JobsPerTenant = 8
	}
	if s.WorkerMs == 0 {
		s.WorkerMs = 2
	}
	if s.ArrivalMs == 0 {
		s.ArrivalMs = 5
	}
	return s
}

// Validate checks the spec against the known presets and policies. It is
// what turns a nonsensical submission (0 nodes, a policy typo) into an
// error the daemon can 400 on, instead of a panic mid-run.
func (s *Spec) Validate() error {
	d := s.withDefaults()
	if s.Nodes < 1 {
		return fmt.Errorf("cluster: nodes %d must be >= 1", s.Nodes)
	}
	if _, err := machine.Preset(d.Preset); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if !knownPolicy(d.Policy) {
		return fmt.Errorf("cluster: unknown policy %q (want one of %s)",
			d.Policy, strings.Join(PolicyNames(), ", "))
	}
	if s.StragglerScale != 0 && s.StragglerScale != 1 {
		if s.Straggler < 0 || s.Straggler >= s.Nodes {
			return fmt.Errorf("cluster: straggler index %d out of range [0,%d)", s.Straggler, s.Nodes)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"straggler_scale", s.StragglerScale},
		{"noise_scale", s.NoiseScale},
		{"worker_ms", s.WorkerMs},
		{"arrival_ms", s.ArrivalMs},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("cluster: %s %g must be finite and >= 0", f.name, f.v)
		}
	}
	if s.Tenants < 0 || s.JobsPerTenant < 0 || s.Width < 0 {
		return fmt.Errorf("cluster: tenants, jobs_per_tenant and width must be >= 0 (0 = default)")
	}
	return nil
}

// buildCluster resolves the spec into a machine.Cluster.
func (s Spec) buildCluster() (*machine.Cluster, error) {
	c, err := machine.UniformCluster(s.Nodes, s.Preset)
	if err != nil {
		return nil, err
	}
	base := s.NoiseScale
	if base == 0 {
		base = 1
	}
	for _, n := range c.Nodes {
		n.NoiseScale = base
	}
	if s.StragglerScale != 0 && s.StragglerScale != 1 {
		if err := c.SetStraggler(s.Straggler, base*s.StragglerScale); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// nodePlatform resolves the per-node platform (topology + natural noise
// profile + scheduler options) for the spec's preset.
func (s Spec) nodePlatform() (*platform.Platform, error) {
	return platform.New(s.Preset)
}
