package cluster

import (
	"reflect"
	"strings"
	"testing"
)

// testSpec is a small scenario that still exercises multi-tenant load, a
// straggler, and cross-node placement.
func testSpec(policy string) Spec {
	return Spec{
		Nodes: 3, Straggler: 0, StragglerScale: 8, Policy: policy,
		Tenants: 2, JobsPerTenant: 4, Width: 2, WorkerMs: 2, ArrivalMs: 3,
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, pol := range PolicyNames() {
		a, err := Run(testSpec(pol), 42, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		b, err := Run(testSpec(pol), 42, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same (spec, seed) produced different results:\n%+v\n%+v", pol, a, b)
		}
		if a.Jobs != 8 || len(a.MakespanNs) != 8 || len(a.Placements) != 8 {
			t.Fatalf("%s: want 8 jobs, got %+v", pol, a)
		}
		for i, m := range a.MakespanNs {
			if m <= 0 {
				t.Fatalf("%s: job %d has non-positive makespan %d", pol, i, m)
			}
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, err := Run(testSpec(PolicyRoundRobin), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testSpec(PolicyRoundRobin), 43, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.MakespanNs, b.MakespanNs) {
		t.Fatal("different seeds produced identical makespans")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"zero nodes", Spec{Nodes: 0}, "nodes"},
		{"negative nodes", Spec{Nodes: -2}, "nodes"},
		{"policy typo", Spec{Nodes: 2, Policy: "roundrobin"}, "unknown policy"},
		{"unknown preset", Spec{Nodes: 2, Preset: "mainframe"}, "preset"},
		{"straggler out of range", Spec{Nodes: 2, Straggler: 5, StragglerScale: 4}, "out of range"},
		{"negative straggler index", Spec{Nodes: 2, Straggler: -1, StragglerScale: 4}, "out of range"},
		{"negative scale", Spec{Nodes: 2, StragglerScale: -1}, "straggler_scale"},
		{"negative worker ms", Spec{Nodes: 2, WorkerMs: -3}, "worker_ms"},
		{"negative tenants", Spec{Nodes: 2, Tenants: -1}, "tenants"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	s := Spec{Nodes: 1}
	if err := s.Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

func TestNormalizeCanonicalizes(t *testing.T) {
	s := Spec{Nodes: 2, Preset: "  Tiny-Test ", Policy: "Round-Robin",
		NoiseScale: 1, StragglerScale: 1, Straggler: 1}
	s.Normalize()
	if s.Preset != "tiny-test" || s.Policy != "round-robin" {
		t.Fatalf("spelling not canonicalized: %+v", s)
	}
	if s.NoiseScale != 0 || s.StragglerScale != 0 {
		t.Fatalf("scale 1 not folded to 0: %+v", s)
	}
	if s.Straggler != 0 {
		t.Fatalf("inert straggler index not zeroed: %+v", s)
	}
}

func TestStragglerMetricsPopulated(t *testing.T) {
	// Round-robin at 3 nodes places 1/3 of jobs on the straggler.
	r, err := Run(testSpec(PolicyRoundRobin), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.StragglerShare <= 0 || r.StragglerShare >= 1 {
		t.Fatalf("straggler share %g not in (0,1)", r.StragglerShare)
	}
	if r.StragglerRatio <= 0 {
		t.Fatalf("straggler ratio %g not positive", r.StragglerRatio)
	}
	if r.ThroughputJobsPerSec <= 0 {
		t.Fatalf("throughput %g not positive", r.ThroughputJobsPerSec)
	}
	sum := 0
	for _, n := range r.NodeJobs {
		sum += n
	}
	if sum != r.Jobs {
		t.Fatalf("NodeJobs sums to %d, want %d", sum, r.Jobs)
	}
}
