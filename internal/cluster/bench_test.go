package cluster

import (
	"testing"
)

// BenchmarkClusterPolicy runs the headline straggler scenario once per
// iteration for each policy, reporting mean throughput and the straggler
// slowdown ratio as custom metrics (committed to BENCH_cluster.json by
// `make bench-cluster`).
func BenchmarkClusterPolicy(b *testing.B) {
	for _, pol := range PolicyNames() {
		b.Run(pol, func(b *testing.B) {
			var tput, ratioSum float64
			ratioN := 0
			for i := 0; i < b.N; i++ {
				spec := StragglerStudySpec()
				spec.Policy = pol
				r, err := Run(spec, 42+uint64(i)*1000003, nil)
				if err != nil {
					b.Fatal(err)
				}
				tput += r.ThroughputJobsPerSec
				if r.StragglerRatio > 0 {
					ratioSum += r.StragglerRatio
					ratioN++
				}
			}
			b.ReportMetric(tput/float64(b.N), "jobs/s")
			if ratioN > 0 {
				b.ReportMetric(ratioSum/float64(ratioN), "straggler-ratio")
			}
		})
	}
}
