package cluster

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

// Job is one fork-join task group: Width worker tasks spawned together on
// one node, complete when the last worker finishes. The makespan
// (Finish - Arrival) is what a straggler node stretches: fork-join time is
// the max over workers, so one slow worker drags the whole job.
type Job struct {
	// ID is the arrival-order index across all tenants.
	ID int
	// Tenant is the submitting tenant.
	Tenant int
	// Width is the worker count; WorkerCycles the per-worker compute
	// demand (jittered per worker at arrival).
	Width        int
	WorkerCycles []float64
	// Arrival is the submission instant; Node the placement; Finish the
	// instant the last worker completed.
	Arrival sim.Time
	Node    int
	Finish  sim.Time

	done int
}

// GlobalSched is the cluster-level scheduler: it receives job arrivals
// from the tenants, consults the placement policy, and spawns the job's
// worker tasks on the chosen node. All bookkeeping happens on the engine
// thread inside arrival and completion events, so it needs no locking and
// stays deterministic.
type GlobalSched struct {
	w        *World
	policy   PlacementPolicy
	jobs     []*Job
	finished int
}

func newGlobalSched(w *World, policy PlacementPolicy) *GlobalSched {
	return &GlobalSched{w: w, policy: policy}
}

// Submit places a job and forks its workers. Called on the engine thread
// at the job's arrival instant.
func (g *GlobalSched) Submit(j *Job) {
	j.ID = len(g.jobs)
	j.Arrival = g.w.Eng.Now()
	g.jobs = append(g.jobs, j)

	node := g.policy.Place(j, g.w)
	j.Node = node
	ns := g.w.Nodes[node]
	ns.JobsPlaced++
	ns.Inflight += j.Width
	if rec := g.w.rec; rec != nil {
		rec.Instant(ns.CPUBase, "place", "cluster",
			fmt.Sprintf("%s: t%d job%d w%d -> %s", g.policy.Name(), j.Tenant, j.ID, j.Width, ns.Node.Name),
			j.Arrival)
	}

	mask := ns.Node.Topo.UserMask()
	for k := 0; k < j.Width; k++ {
		t := ns.Sched.SpawnSeq(cpusched.TaskSpec{
			Name:     fmt.Sprintf("job%d-w%d", j.ID, k),
			Kind:     cpusched.KindWorkload,
			Affinity: mask,
		}, cpusched.ReqCompute(j.WorkerCycles[k]))
		t.OnDone(func() { g.workerDone(j, ns) })
	}
}

// workerDone runs on the engine thread when one worker task finishes.
func (g *GlobalSched) workerDone(j *Job, ns *NodeState) {
	ns.Inflight--
	j.done++
	if j.done == j.Width {
		j.Finish = g.w.Eng.Now()
		g.finished++
		if rec := g.w.rec; rec != nil {
			rec.Instant(ns.CPUBase, "job-done", "cluster",
				fmt.Sprintf("job%d makespan %v", j.ID, j.Finish-j.Arrival), j.Finish)
		}
	}
}
