package cluster

import (
	"repro/internal/sim"
)

// workerJitterSigma is the log-space spread of per-worker compute demand:
// workers of one job are near-equal (a fork-join split of one problem),
// but not exactly, which is what gives the straggler's noise a tail to
// amplify.
const workerJitterSigma = 0.25

// Tenant is one open-loop load generator: it submits JobsPerTenant
// fork-join jobs with exponentially distributed inter-arrival gaps, each
// job's per-worker compute demand drawn log-normally around the spec
// mean. All draws come from the tenant's own named RNG stream, so adding
// a tenant never perturbs another tenant's sequence.
type Tenant struct {
	ID int

	w          *World
	remaining  int
	width      int
	meanCycles float64
	meanGapNs  float64
	rng        *sim.RNG
}

func newTenant(id int, w *World, jobs, width int, meanCycles, meanGapNs float64, rng *sim.RNG) *Tenant {
	return &Tenant{
		ID: id, w: w, remaining: jobs, width: width,
		meanCycles: meanCycles, meanGapNs: meanGapNs, rng: rng,
	}
}

// start schedules the tenant's first arrival. Called before the engine
// runs (time zero), so the first gap is measured from t=0.
func (t *Tenant) start() {
	if t.remaining <= 0 {
		return
	}
	t.w.Eng.After(t.gap(), func() { t.arrive() })
}

// gap draws the next inter-arrival delay.
func (t *Tenant) gap() sim.Time {
	if t.meanGapNs <= 0 {
		return 0
	}
	return sim.Time(t.rng.ExpFloat64(1 / t.meanGapNs))
}

// arrive submits one job and schedules the next arrival. Runs on the
// engine thread.
func (t *Tenant) arrive() {
	j := &Job{
		Tenant:       t.ID,
		Width:        t.width,
		WorkerCycles: make([]float64, t.width),
	}
	for k := range j.WorkerCycles {
		j.WorkerCycles[k] = t.rng.LogNormalMean(t.meanCycles, workerJitterSigma)
	}
	t.w.gs.Submit(j)
	t.remaining--
	if t.remaining > 0 {
		t.w.Eng.After(t.gap(), func() { t.arrive() })
	}
}
