// Package syclrt models a SYCL (DPC++-style) runtime targeting the CPU: a
// host thread submits kernels to an in-order queue; a worker pool executes
// each kernel's ND-range as work-groups claimed dynamically (work-stealing
// flavour). The model carries the overheads the paper attributes to SYCL's
// runtime layer — per-kernel submission cost, per-work-group dispatch cost,
// and a code-generation efficiency factor — which make SYCL slower in raw
// time but *more resilient* to injected noise: a worker delayed by noise
// simply executes fewer work-groups while the rest of the pool absorbs its
// share, instead of holding a static-schedule barrier hostage.
package syclrt

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/mitigate"
	"repro/internal/parmodel"
	"repro/internal/sim"
)

// Config tunes the runtime model.
type Config struct {
	// SubmitOverhead is host-side work per kernel submission (queue entry,
	// dependency tracking, handler construction).
	SubmitOverhead sim.Time
	// WGDispatch is per-work-group claim cost on a worker.
	WGDispatch sim.Time
	// WGUnits is how many work units form one work-group (claim
	// granularity); minimum 1.
	WGUnits int
	// CostFactor scales unit cost (kernel codegen efficiency vs OpenMP).
	CostFactor float64
	// ActiveWait spins workers between work-groups of an active kernel;
	// the pool parks passively between kernels either way.
	ActiveWait bool
	// Policy is the scheduling class pool threads (host and workers) are
	// spawned with; the zero value is SCHED_OTHER. PolicyDeadline
	// additionally needs the per-thread CBS reservation below — the
	// deadline-class mitigation runs every pool thread under EDF.
	Policy    cpusched.Policy
	DLRuntime sim.Time
	DLPeriod  sim.Time
}

// DefaultConfig returns the model constants used for the paper's SYCL runs.
func DefaultConfig() Config {
	return Config{
		SubmitOverhead: 35 * sim.Microsecond,
		WGDispatch:     400, // ns
		WGUnits:        1,
		CostFactor:     1.08,
		ActiveWait:     false,
	}
}

type kernel struct {
	n    int
	cost func(int) parmodel.Cost
	next int // work-group claim cursor
}

// Queue is the SYCL in-order queue plus its worker pool. It implements
// parmodel.Model for workload bodies running on the host thread.
type Queue struct {
	s    *cpusched.Scheduler
	plan *mitigate.Plan
	cfg  Config

	kernelBar *cpusched.Barrier // host+workers rendezvous to start a kernel
	doneBar   *cpusched.Barrier // host+workers rendezvous at kernel end
	kern      *kernel
	stop      bool
	// kernels counts submissions for obs span naming (only advanced while
	// an observer is attached).
	kernels int

	cyclesPerNs float64

	hostCtx *cpusched.Ctx
	host    *cpusched.Task
	workers []*cpusched.Task
}

// Start creates the queue's worker pool and runs body on the host thread.
// The host participates in kernel execution as one of the workers (CPU
// backends do this), so the pool size equals the plan's thread count.
func Start(s *cpusched.Scheduler, plan *mitigate.Plan, cfg Config, body parmodel.Body) *Queue {
	if cfg.CostFactor <= 0 {
		cfg.CostFactor = 1.0
	}
	if cfg.WGUnits <= 0 {
		cfg.WGUnits = 1
	}
	q := &Queue{
		s:           s,
		plan:        plan,
		cfg:         cfg,
		kernelBar:   cpusched.NewBarrier(plan.Threads),
		doneBar:     cpusched.NewBarrier(plan.Threads),
		cyclesPerNs: s.Topology().CyclesPerNs(),
	}
	// Workers run as inline scheduler Programs (no goroutine per pool
	// thread); the host keeps the imperative path because it executes the
	// arbitrary workload body.
	for i := 1; i < plan.Threads; i++ {
		w := s.SpawnProgram(cpusched.TaskSpec{
			Name:      workerName(i),
			Kind:      cpusched.KindWorkload,
			Affinity:  plan.AffinityOf(i),
			Policy:    cfg.Policy,
			DLRuntime: cfg.DLRuntime,
			DLPeriod:  cfg.DLPeriod,
		}, &poolProgram{q: q})
		q.workers = append(q.workers, w)
	}
	q.host = s.Spawn(cpusched.TaskSpec{
		Name:      "sycl-host",
		Kind:      cpusched.KindWorkload,
		Affinity:  plan.AffinityOf(0),
		Policy:    cfg.Policy,
		DLRuntime: cfg.DLRuntime,
		DLPeriod:  cfg.DLPeriod,
	}, func(ctx *cpusched.Ctx) {
		q.hostCtx = ctx
		body(q)
		q.shutdown()
	})
	return q
}

// Host returns the host task (the workload's completion handle).
func (q *Queue) Host() *cpusched.Task { return q.host }

var _ parmodel.Model = (*Queue)(nil)

// Threads implements parmodel.Model.
func (q *Queue) Threads() int { return q.plan.Threads }

// Name implements parmodel.Model.
func (q *Queue) Name() string { return "sycl" }

// MasterCompute implements parmodel.Model (host-side serial work).
func (q *Queue) MasterCompute(cycles float64) {
	q.hostCtx.Compute(cycles * q.cfg.CostFactor)
}

// MasterMemory implements parmodel.Model.
func (q *Queue) MasterMemory(bytes float64) {
	q.hostCtx.Memory(bytes * q.cfg.CostFactor)
}

// MasterBlockOn implements parmodel.Model. I/O volume is data, not work:
// CostFactor does not apply.
func (q *Queue) MasterBlockOn(dev string, bytes float64) {
	q.hostCtx.BlockOn(q.device(dev), bytes)
}

// ParallelFor implements parmodel.Model: submit one kernel and wait for it
// (in-order queue with an immediately-consumed event, the pattern the
// benchmarks use).
func (q *Queue) ParallelFor(n int, cost func(int) parmodel.Cost) {
	if n < 0 {
		panic("syclrt: negative ND-range")
	}
	// Observability only reads the clock (safe from the body goroutine,
	// like Ctx.Now): the kernel span steals no simulated time.
	rec := q.s.Observer()
	var submitStart sim.Time
	if rec != nil {
		submitStart = q.hostCtx.Now()
		q.kernels++
	}
	// Host-side submission cost.
	q.hostCtx.Compute(float64(q.cfg.SubmitOverhead) * q.cyclesPerNs)
	q.kern = &kernel{n: n, cost: cost}
	if q.plan.Threads == 1 {
		q.runWorkGroups(q.hostCtx)
	} else {
		q.hostCtx.Barrier(q.kernelBar, false) // wake the pool
		q.runWorkGroups(q.hostCtx)            // host joins execution
		q.hostCtx.Barrier(q.doneBar, q.cfg.ActiveWait)
	}
	if rec != nil {
		rec.Span(q.hostCtx.CPU(), fmt.Sprintf("kernel-%d", q.kernels),
			"sycl", "in-order", submitStart, q.hostCtx.Now())
	}
}

// poolProgram is the pool worker's loop as an inline scheduler Program,
// yielding the byte-identical request sequence the imperative workerLoop
// issued: park at the kernel barrier, claim and execute work-groups from
// the shared cursor, rendezvous at the done barrier, repeat. Claims run
// inside Next at exactly the fetch instants the goroutine body read and
// advanced q.kern.next, so work-group distribution resolves identically.
type poolProgram struct {
	q     *Queue
	state int
	mem   float64 // memory half of the work-group whose compute was yielded
	io    float64 // I/O bytes of the work-group (0 = no blocking phase)
	iodev string  // device the I/O phase blocks on
}

const (
	pKernelBar = iota // arrive at the kernel start barrier
	pBegin            // released: check stop, begin claiming
	pDispatch         // yield the per-work-group dispatch cost
	pClaim            // claim a work-group, yield its compute
	pMemory           // yield the memory half of the current work-group
	pIO               // block on the work-group's device request (io > 0 only)
	pDoneBar          // arrive at the kernel end barrier
)

func (p *poolProgram) Next(*cpusched.Task) (cpusched.Request, bool) {
	q := p.q
	for {
		switch p.state {
		case pKernelBar:
			p.state = pBegin
			return cpusched.ReqBarrier(q.kernelBar, false), true
		case pBegin:
			if q.stop {
				return cpusched.Request{}, false
			}
			p.state = pDispatch
		case pDispatch:
			// Zero dispatch cost yields a zero-demand request the
			// scheduler skips, exactly as the imperative guard sent
			// nothing.
			p.state = pClaim
			return cpusched.ReqCompute(float64(q.cfg.WGDispatch) * q.cyclesPerNs), true
		case pClaim:
			k := q.kern
			lo := k.next
			if lo >= k.n {
				p.state = pDoneBar
				continue
			}
			hi := lo + q.cfg.WGUnits
			if hi > k.n {
				hi = k.n
			}
			k.next = hi
			c, b, io, dev := q.groupCost(lo, hi)
			p.mem, p.io, p.iodev = b, io, dev
			p.state = pMemory
			return cpusched.ReqCompute(c), true
		case pMemory:
			b := p.mem
			p.mem = 0
			if p.io > 0 {
				p.state = pIO
			} else {
				p.state = pDispatch
			}
			return cpusched.ReqMemory(b), true
		case pIO:
			io, dev := p.io, p.iodev
			p.io, p.iodev = 0, ""
			p.state = pDispatch
			return cpusched.ReqBlockOn(q.device(dev), io), true
		case pDoneBar:
			p.state = pKernelBar
			return cpusched.ReqBarrier(q.doneBar, q.cfg.ActiveWait), true
		}
	}
}

func (q *Queue) shutdown() {
	if q.plan.Threads == 1 {
		return
	}
	q.stop = true
	q.hostCtx.Barrier(q.kernelBar, false)
}

// runWorkGroups claims and executes work-groups until the kernel drains.
func (q *Queue) runWorkGroups(ctx *cpusched.Ctx) {
	k := q.kern
	for {
		if q.cfg.WGDispatch > 0 {
			ctx.Compute(float64(q.cfg.WGDispatch) * q.cyclesPerNs)
		}
		lo := k.next
		if lo >= k.n {
			return
		}
		hi := lo + q.cfg.WGUnits
		if hi > k.n {
			hi = k.n
		}
		k.next = hi
		c, b, io, dev := q.groupCost(lo, hi)
		ctx.Compute(c)
		ctx.Memory(b)
		if io > 0 {
			ctx.BlockOn(q.device(dev), io)
		}
	}
}

// groupCost sums and scales the cost of work units [lo, hi).
func (q *Queue) groupCost(lo, hi int) (cycles, bytes, ioBytes float64, ioDev string) {
	var total parmodel.Cost
	for i := lo; i < hi; i++ {
		total = total.Add(q.kern.cost(i))
	}
	total = total.Scale(q.cfg.CostFactor)
	return total.Cycles, total.Bytes, total.IOBytes, total.IODev
}

// device resolves a workload-referenced device name on the scheduler.
func (q *Queue) device(name string) *cpusched.Device {
	d := q.s.Device(name)
	if d == nil {
		panic(fmt.Sprintf("syclrt: workload references unregistered device %q", name))
	}
	return d
}

// workerNames caches the recurring per-thread names: queues are rebuilt
// every rep, and re-formatting identical names each time is measurable in
// batched series.
var workerNames = func() (s [64]string) {
	for i := range s {
		s[i] = fmt.Sprintf("sycl-worker-%d", i)
	}
	return
}()

func workerName(i int) string {
	if i >= 0 && i < len(workerNames) {
		return workerNames[i]
	}
	return fmt.Sprintf("sycl-worker-%d", i)
}
