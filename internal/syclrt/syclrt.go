// Package syclrt models a SYCL (DPC++-style) runtime targeting the CPU: a
// host thread submits kernels to an in-order queue; a worker pool executes
// each kernel's ND-range as work-groups claimed dynamically (work-stealing
// flavour). The model carries the overheads the paper attributes to SYCL's
// runtime layer — per-kernel submission cost, per-work-group dispatch cost,
// and a code-generation efficiency factor — which make SYCL slower in raw
// time but *more resilient* to injected noise: a worker delayed by noise
// simply executes fewer work-groups while the rest of the pool absorbs its
// share, instead of holding a static-schedule barrier hostage.
package syclrt

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/mitigate"
	"repro/internal/parmodel"
	"repro/internal/sim"
)

// Config tunes the runtime model.
type Config struct {
	// SubmitOverhead is host-side work per kernel submission (queue entry,
	// dependency tracking, handler construction).
	SubmitOverhead sim.Time
	// WGDispatch is per-work-group claim cost on a worker.
	WGDispatch sim.Time
	// WGUnits is how many work units form one work-group (claim
	// granularity); minimum 1.
	WGUnits int
	// CostFactor scales unit cost (kernel codegen efficiency vs OpenMP).
	CostFactor float64
	// ActiveWait spins workers between work-groups of an active kernel;
	// the pool parks passively between kernels either way.
	ActiveWait bool
}

// DefaultConfig returns the model constants used for the paper's SYCL runs.
func DefaultConfig() Config {
	return Config{
		SubmitOverhead: 35 * sim.Microsecond,
		WGDispatch:     400, // ns
		WGUnits:        1,
		CostFactor:     1.08,
		ActiveWait:     false,
	}
}

type kernel struct {
	n    int
	cost func(int) parmodel.Cost
	next int // work-group claim cursor
}

// Queue is the SYCL in-order queue plus its worker pool. It implements
// parmodel.Model for workload bodies running on the host thread.
type Queue struct {
	s    *cpusched.Scheduler
	plan *mitigate.Plan
	cfg  Config

	kernelBar *cpusched.Barrier // host+workers rendezvous to start a kernel
	doneBar   *cpusched.Barrier // host+workers rendezvous at kernel end
	kern      *kernel
	stop      bool

	cyclesPerNs float64

	hostCtx *cpusched.Ctx
	host    *cpusched.Task
	workers []*cpusched.Task
}

// Start creates the queue's worker pool and runs body on the host thread.
// The host participates in kernel execution as one of the workers (CPU
// backends do this), so the pool size equals the plan's thread count.
func Start(s *cpusched.Scheduler, plan *mitigate.Plan, cfg Config, body parmodel.Body) *Queue {
	if cfg.CostFactor <= 0 {
		cfg.CostFactor = 1.0
	}
	if cfg.WGUnits <= 0 {
		cfg.WGUnits = 1
	}
	q := &Queue{
		s:           s,
		plan:        plan,
		cfg:         cfg,
		kernelBar:   cpusched.NewBarrier(plan.Threads),
		doneBar:     cpusched.NewBarrier(plan.Threads),
		cyclesPerNs: s.Topology().CyclesPerNs(),
	}
	for i := 1; i < plan.Threads; i++ {
		i := i
		w := s.Spawn(cpusched.TaskSpec{
			Name:     fmt.Sprintf("sycl-worker-%d", i),
			Kind:     cpusched.KindWorkload,
			Affinity: plan.AffinityOf(i),
		}, func(ctx *cpusched.Ctx) { q.workerLoop(ctx) })
		q.workers = append(q.workers, w)
	}
	q.host = s.Spawn(cpusched.TaskSpec{
		Name:     "sycl-host",
		Kind:     cpusched.KindWorkload,
		Affinity: plan.AffinityOf(0),
	}, func(ctx *cpusched.Ctx) {
		q.hostCtx = ctx
		body(q)
		q.shutdown()
	})
	return q
}

// Host returns the host task (the workload's completion handle).
func (q *Queue) Host() *cpusched.Task { return q.host }

var _ parmodel.Model = (*Queue)(nil)

// Threads implements parmodel.Model.
func (q *Queue) Threads() int { return q.plan.Threads }

// Name implements parmodel.Model.
func (q *Queue) Name() string { return "sycl" }

// MasterCompute implements parmodel.Model (host-side serial work).
func (q *Queue) MasterCompute(cycles float64) {
	q.hostCtx.Compute(cycles * q.cfg.CostFactor)
}

// MasterMemory implements parmodel.Model.
func (q *Queue) MasterMemory(bytes float64) {
	q.hostCtx.Memory(bytes * q.cfg.CostFactor)
}

// ParallelFor implements parmodel.Model: submit one kernel and wait for it
// (in-order queue with an immediately-consumed event, the pattern the
// benchmarks use).
func (q *Queue) ParallelFor(n int, cost func(int) parmodel.Cost) {
	if n < 0 {
		panic("syclrt: negative ND-range")
	}
	// Host-side submission cost.
	q.hostCtx.Compute(float64(q.cfg.SubmitOverhead) * q.cyclesPerNs)
	q.kern = &kernel{n: n, cost: cost}
	if q.plan.Threads == 1 {
		q.runWorkGroups(q.hostCtx)
		return
	}
	q.hostCtx.Barrier(q.kernelBar, false) // wake the pool
	q.runWorkGroups(q.hostCtx)            // host joins execution
	q.hostCtx.Barrier(q.doneBar, q.cfg.ActiveWait)
}

func (q *Queue) workerLoop(ctx *cpusched.Ctx) {
	for {
		ctx.Barrier(q.kernelBar, false)
		if q.stop {
			return
		}
		q.runWorkGroups(ctx)
		ctx.Barrier(q.doneBar, q.cfg.ActiveWait)
	}
}

func (q *Queue) shutdown() {
	if q.plan.Threads == 1 {
		return
	}
	q.stop = true
	q.hostCtx.Barrier(q.kernelBar, false)
}

// runWorkGroups claims and executes work-groups until the kernel drains.
func (q *Queue) runWorkGroups(ctx *cpusched.Ctx) {
	k := q.kern
	for {
		if q.cfg.WGDispatch > 0 {
			ctx.Compute(float64(q.cfg.WGDispatch) * q.cyclesPerNs)
		}
		lo := k.next
		if lo >= k.n {
			return
		}
		hi := lo + q.cfg.WGUnits
		if hi > k.n {
			hi = k.n
		}
		k.next = hi
		var total parmodel.Cost
		for i := lo; i < hi; i++ {
			total = total.Add(k.cost(i))
		}
		total = total.Scale(q.cfg.CostFactor)
		ctx.Compute(total.Cycles)
		ctx.Memory(total.Bytes)
	}
}
