package syclrt

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/omprt"
	"repro/internal/parmodel"
	"repro/internal/sim"
)

func newSched() *cpusched.Scheduler {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.MigrationCost = 0
	return cpusched.New(eng, topo, opt)
}

func uniform(cycles float64) func(int) parmodel.Cost {
	return func(int) parmodel.Cost { return parmodel.Cost{Cycles: cycles} }
}

func runBody(t *testing.T, s *cpusched.Scheduler, strat mitigate.Strategy, cfg Config, body parmodel.Body) sim.Time {
	t.Helper()
	plan := mitigate.MustApply(strat, s.Topology())
	q := Start(s, plan, cfg, body)
	s.Engine().RunWhile(func() bool { return !q.Host().Done() })
	end := s.Engine().Now()
	s.Shutdown()
	return end
}

func TestKernelSpeedup(t *testing.T) {
	s := newSched()
	cfg := DefaultConfig()
	cfg.CostFactor = 1.0
	cfg.SubmitOverhead = 0
	cfg.WGDispatch = 0
	got := runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
		m.ParallelFor(4, uniform(30e6)) // 10ms per thread
	})
	if got < 10*sim.Millisecond || got > 11*sim.Millisecond {
		t.Fatalf("kernel took %v, want ~10ms", got)
	}
}

func TestWorkConservation(t *testing.T) {
	for _, wg := range []int{1, 3, 7} {
		s := newSched()
		const n = 101
		seen := make([]int, n)
		cfg := DefaultConfig()
		cfg.WGUnits = wg
		runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
			m.ParallelFor(n, func(i int) parmodel.Cost {
				seen[i]++
				return parmodel.Cost{Cycles: 1e5}
			})
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("wg=%d: unit %d executed %d times", wg, i, c)
			}
		}
	}
}

func TestSubmitOverheadCharged(t *testing.T) {
	run := func(overhead sim.Time, kernels int) sim.Time {
		s := newSched()
		cfg := DefaultConfig()
		cfg.SubmitOverhead = overhead
		cfg.CostFactor = 1.0
		return runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
			for k := 0; k < kernels; k++ {
				m.ParallelFor(4, uniform(3e6))
			}
		})
	}
	free := run(0, 20)
	costly := run(50*sim.Microsecond, 20)
	delta := costly - free
	want := 20 * 50 * sim.Microsecond
	if delta < want*9/10 || delta > want*11/10 {
		t.Fatalf("submission overhead delta = %v, want ~%v", delta, want)
	}
}

func TestNoiseResilienceVsOMPStatic(t *testing.T) {
	// Identical work and identical 40ms FIFO noise on CPU 3: the SYCL
	// queue (dynamic work-groups) must degrade less than OpenMP static.
	noiseAt := func(s *cpusched.Scheduler) {
		s.Engine().At(2*sim.Millisecond, func() {
			s.Spawn(cpusched.TaskSpec{
				Name: "noise", Kind: cpusched.KindNoiseThread,
				Policy: cpusched.PolicyFIFO, RTPrio: 50,
				Affinity: machine.SetOf(3),
			}, func(c *cpusched.Ctx) { c.ComputeDur(40 * sim.Millisecond) })
		})
	}
	// SYCL with noise.
	s1 := newSched()
	noiseAt(s1)
	cfg := DefaultConfig()
	cfg.CostFactor = 1.0
	cfg.SubmitOverhead = 0
	syclNoisy := runBody(t, s1, mitigate.TP, cfg, func(m parmodel.Model) {
		m.ParallelFor(400, uniform(6e5)) // 80ms total in 0.2ms units
	})
	// OMP static with the same noise.
	s2 := newSched()
	noiseAt(s2)
	plan := mitigate.MustApply(mitigate.TP, s2.Topology())
	ompCfg := omprt.DefaultConfig()
	team := omprt.Start(s2, plan, ompCfg, func(m parmodel.Model) {
		m.ParallelFor(400, uniform(6e5))
	})
	s2.Engine().RunWhile(func() bool { return !team.Master().Done() })
	ompNoisy := s2.Engine().Now()
	s2.Shutdown()

	if syclNoisy >= ompNoisy {
		t.Fatalf("SYCL under noise (%v) should beat OMP-static under noise (%v)", syclNoisy, ompNoisy)
	}
}

func TestHostJoinsExecution(t *testing.T) {
	// With 4 threads and exactly 4 equal work-groups, all four (host
	// included) should run one group each: time ~ one group.
	s := newSched()
	cfg := DefaultConfig()
	cfg.CostFactor = 1.0
	cfg.SubmitOverhead = 0
	cfg.WGDispatch = 0
	got := runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
		m.ParallelFor(4, uniform(30e6))
	})
	if got > 12*sim.Millisecond {
		t.Fatalf("host does not seem to participate: %v", got)
	}
}

func TestWorkersExitAfterBody(t *testing.T) {
	s := newSched()
	plan := mitigate.MustApply(mitigate.TP, s.Topology())
	q := Start(s, plan, DefaultConfig(), func(m parmodel.Model) {
		m.ParallelFor(8, uniform(1e6))
	})
	s.Engine().Run()
	if !q.Host().Done() {
		t.Fatal("host not done")
	}
	for _, w := range q.workers {
		if !w.Done() {
			t.Fatal("worker did not exit")
		}
	}
	s.Shutdown()
}

func TestSingleThread(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	s := cpusched.New(eng, topo, cpusched.Defaults())
	plan := &mitigate.Plan{Strategy: mitigate.TP, Threads: 1,
		Allowed: machine.SetOf(0), PinCPUOf: []int{0}}
	cfg := DefaultConfig()
	cfg.CostFactor = 1.0
	cfg.SubmitOverhead = 0
	cfg.WGDispatch = 0
	q := Start(s, plan, cfg, func(m parmodel.Model) {
		m.ParallelFor(3, uniform(3e6)) // 3ms serial
	})
	eng.RunWhile(func() bool { return !q.Host().Done() })
	if now := eng.Now(); now < 3*sim.Millisecond || now > 4*sim.Millisecond {
		t.Fatalf("single-thread kernel took %v", now)
	}
	s.Shutdown()
}

func TestCostFactorMakesSYCLSlowerThanOMP(t *testing.T) {
	// Same work, default configs: SYCL must be slower in raw time (the
	// paper's consistent observation).
	s1 := newSched()
	sycl := runBody(t, s1, mitigate.TP, DefaultConfig(), func(m parmodel.Model) {
		for k := 0; k < 5; k++ {
			m.ParallelFor(16, uniform(3e6))
		}
	})
	s2 := newSched()
	plan := mitigate.MustApply(mitigate.TP, s2.Topology())
	team := omprt.Start(s2, plan, omprt.DefaultConfig(), func(m parmodel.Model) {
		for k := 0; k < 5; k++ {
			m.ParallelFor(16, uniform(3e6))
		}
	})
	s2.Engine().RunWhile(func() bool { return !team.Master().Done() })
	omp := s2.Engine().Now()
	s2.Shutdown()
	if sycl <= omp {
		t.Fatalf("raw SYCL (%v) should be slower than raw OMP (%v)", sycl, omp)
	}
}

func TestMasterComputeAndMemory(t *testing.T) {
	s := newSched()
	cfg := DefaultConfig()
	cfg.CostFactor = 1.0
	got := runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
		m.MasterCompute(3e6) // 1ms
		m.MasterMemory(10e6) // 1ms at 10 GB/s core cap
	})
	if got < 2*sim.Millisecond || got > 3*sim.Millisecond {
		t.Fatalf("host serial work took %v, want ~2ms", got)
	}
}
