package fleet

// Property tests of the consistent-hash ring — the placement function the
// whole fleet design leans on. Three properties are pinned: load balance
// (no node owns more than 2x its fair share of 1k keys), minimal remapping
// (a join steals keys only for itself; a leave moves only the departed
// node's keys), and purity (placement depends only on the key and the
// member SET, never on construction order or duplicates — fuzzed).

import (
	"fmt"
	"reflect"
	"testing"
)

func testMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://node%d:8723", i)
	}
	return ms
}

func testKeys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("spec-hash-%04d", i)
	}
	return ks
}

func TestRingBalance(t *testing.T) {
	for _, nodes := range []int{2, 3, 5, 8} {
		ring := NewRing(testMembers(nodes), 0)
		keys := testKeys(1000)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[ring.Pick(k)]++
		}
		if len(counts) != nodes {
			t.Fatalf("%d nodes: only %d received keys: %v", nodes, len(counts), counts)
		}
		ideal := float64(len(keys)) / float64(nodes)
		for node, n := range counts {
			if f := float64(n); f > 2*ideal {
				t.Errorf("%d nodes: %s owns %d keys, over 2x ideal %.0f", nodes, node, n, ideal)
			}
		}
	}
}

// TestRingMinimalRemapOnJoin pins consistent hashing's defining property:
// when a node joins, a key either keeps its owner or moves TO the joiner —
// never between two old nodes — and the joiner takes roughly its fair share.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	old := NewRing(testMembers(3), 0)
	grown := NewRing(testMembers(4), 0) // node3 joined
	joiner := testMembers(4)[3]
	keys := testKeys(1000)
	moved := 0
	for _, k := range keys {
		before, after := old.Pick(k), grown.Pick(k)
		if before == after {
			continue
		}
		moved++
		if after != joiner {
			t.Fatalf("key %s moved %s -> %s, not to the joiner %s", k, before, after, joiner)
		}
	}
	// The joiner's fair share is K/N = 250; allow 2x for hash variance.
	if max := 2 * len(keys) / 4; moved > max {
		t.Errorf("join remapped %d of %d keys, want <= %d", moved, len(keys), max)
	}
	if moved == 0 {
		t.Error("join remapped nothing — the new node receives no load")
	}
}

// TestRingMinimalRemapOnLeave is the inverse: only the departed node's keys
// move; every other key keeps its owner.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	full := NewRing(testMembers(4), 0)
	leaver := testMembers(4)[2]
	var rest []string
	for _, m := range testMembers(4) {
		if m != leaver {
			rest = append(rest, m)
		}
	}
	shrunk := NewRing(rest, 0)
	moved := 0
	for _, k := range testKeys(1000) {
		before, after := full.Pick(k), shrunk.Pick(k)
		if before == after {
			continue
		}
		moved++
		if before != leaver {
			t.Fatalf("key %s moved %s -> %s though %s left", k, before, after, leaver)
		}
	}
	if max := 2 * 1000 / 4; moved > max {
		t.Errorf("leave remapped %d keys, want <= %d", moved, max)
	}
}

// TestRingPurity: construction order and duplicates do not affect placement.
func TestRingPurity(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2", "n1", "", "n3"}, 64)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member sets differ: %v vs %v", a.Members(), b.Members())
	}
	for _, k := range testKeys(200) {
		if a.Pick(k) != b.Pick(k) {
			t.Fatalf("key %s: %s vs %s", k, a.Pick(k), b.Pick(k))
		}
		if !reflect.DeepEqual(a.Seq(k), b.Seq(k)) {
			t.Fatalf("key %s: failover %v vs %v", k, a.Seq(k), b.Seq(k))
		}
	}
}

// TestRingSeq: the failover walk starts at the owner and visits every member
// exactly once.
func TestRingSeq(t *testing.T) {
	ring := NewRing(testMembers(5), 0)
	for _, k := range testKeys(50) {
		seq := ring.Seq(k)
		if len(seq) != 5 {
			t.Fatalf("key %s: walk has %d nodes, want 5", k, len(seq))
		}
		if seq[0] != ring.Pick(k) {
			t.Fatalf("key %s: walk starts at %s, owner is %s", k, seq[0], ring.Pick(k))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("key %s: walk repeats %s: %v", k, n, seq)
			}
			seen[n] = true
		}
	}
}

func TestRingEmpty(t *testing.T) {
	ring := NewRing(nil, 0)
	if got := ring.Pick("anything"); got != "" {
		t.Fatalf("empty ring placed a key on %q", got)
	}
	if got := ring.Seq("anything"); got != nil {
		t.Fatalf("empty ring returned a walk: %v", got)
	}
}

// FuzzRingPlacement fuzzes the purity property: placement is a pure
// function of (key, member set). A ring built from any rotation of the
// member list, with one member duplicated, must place every key on the same
// node with the same failover walk.
func FuzzRingPlacement(f *testing.F) {
	f.Add("spec-hash-0000", "http://a:1", "http://b:2", "http://c:3", uint64(1))
	f.Add("", "n1", "n2", "n3", uint64(2))
	f.Add("k", "x", "x", "y", uint64(0))
	f.Fuzz(func(t *testing.T, key, m1, m2, m3 string, rot uint64) {
		members := []string{m1, m2, m3}
		r := int(rot % 3)
		rotated := append(append([]string{}, members[r:]...), members[:r]...)
		rotated = append(rotated, members[r]) // a duplicate must be a no-op

		a := NewRing(members, 32)
		b := NewRing(rotated, 32)
		if got, want := b.Pick(key), a.Pick(key); got != want {
			t.Fatalf("Pick(%q): %q (rotated) vs %q", key, got, want)
		}
		if got, want := b.Seq(key), a.Seq(key); !reflect.DeepEqual(got, want) {
			t.Fatalf("Seq(%q): %v (rotated) vs %v", key, got, want)
		}
		// Placement must always land on a member (or "" only when the
		// member set is empty after dedup).
		owner := a.Pick(key)
		valid := owner == "" && len(a.Members()) == 0
		for _, m := range a.Members() {
			valid = valid || m == owner
		}
		if !valid {
			t.Fatalf("Pick(%q) = %q, not in members %v", key, owner, a.Members())
		}
	})
}
