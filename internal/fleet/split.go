package fleet

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/service"
)

// SubJob is one shard-sized slice of a job's repetitions: reps
// [Offset, Offset+Spec.Reps) of the parent series, re-expressed as a
// self-contained JobSpec any noiselabd can execute.
//
// The re-expression is exact, not approximate: every execution path derives
// rep i's seed as base + i*stride (experiment.SeedAt), so a sub-spec whose
// base seed is SeedAt(parent.Seed, Offset) runs precisely the parent's reps
// Offset.. — same seeds, same results, same bytes. Each sub-spec has its own
// content key, so the shard that owns it caches it independently of every
// other slice.
type SubJob struct {
	// Offset is the first parent rep index this slice covers.
	Offset int
	// Spec is the executable slice (Seed shifted, Reps = slice length).
	Spec service.JobSpec
	// Hash is the slice's rescache content key — the ring placement key.
	Hash string
}

// Split carves a normalized, validated parent spec into at most width
// contiguous sub-jobs of near-equal size (the first reps%width slices get
// one extra rep). width is clamped to [1, parent.Reps]. The parent's
// Timeline flag survives only on the slice containing rep 0, matching the
// single-node semantics of "record rep 0's timeline". Analysis jobs split
// along their source axis instead (see splitAnalysis).
func Split(parent service.JobSpec, width int) ([]SubJob, error) {
	if parent.Analyze != nil {
		return splitAnalysis(parent, width)
	}
	reps := parent.Reps
	if reps < 1 {
		return nil, fmt.Errorf("fleet: cannot split %d reps", reps)
	}
	if width < 1 {
		width = 1
	}
	if width > reps {
		width = reps
	}
	base, rem := reps/width, reps%width
	subs := make([]SubJob, 0, width)
	off := 0
	for i := 0; i < width; i++ {
		n := base
		if i < rem {
			n++
		}
		spec := parent
		spec.Seed = experiment.SeedAt(parent.Seed, off)
		spec.Reps = n
		spec.Timeline = parent.Timeline && off == 0
		hash, err := service.SpecHash(&spec)
		if err != nil {
			return nil, fmt.Errorf("fleet: hashing sub-job %d: %w", i, err)
		}
		subs = append(subs, SubJob{Offset: off, Spec: spec, Hash: hash})
		off += n
	}
	return subs, nil
}

// splitAnalysis carves an analysis sweep into at most width contiguous
// chunks of its (sorted) source list — the natural shard axis, because
// analyze.CellSeed depends only on (base seed, source, factor): a shard
// running its source subset executes exactly the cells the full sweep
// would, same seeds, same bytes. Offset counts parent reps (sources before
// the chunk times ladder length times reps), so fleet progress aggregates
// in the same rep units as kernel jobs. Every chunk keeps the parent's
// Timeline flag: evidence is per source, and each shard owns its sources'.
func splitAnalysis(parent service.JobSpec, width int) ([]SubJob, error) {
	sources := parent.Analyze.EffectiveSources()
	ladder := parent.Analyze.EffectiveLadder()
	n := len(sources)
	if n < 1 {
		return nil, fmt.Errorf("fleet: cannot split %d sources", n)
	}
	if width < 1 {
		width = 1
	}
	if width > n {
		width = n
	}
	base, rem := n/width, n%width
	subs := make([]SubJob, 0, width)
	off := 0
	for i := 0; i < width; i++ {
		k := base
		if i < rem {
			k++
		}
		aspec := *parent.Analyze
		aspec.Sources = append([]string(nil), sources[off:off+k]...)
		aspec.Ladder = append([]float64(nil), ladder...)
		spec := service.JobSpec{Analyze: &aspec}
		hash, err := service.SpecHash(&spec) // normalizes; may re-collapse defaults
		if err != nil {
			return nil, fmt.Errorf("fleet: hashing analysis sub-job %d: %w", i, err)
		}
		subs = append(subs, SubJob{Offset: off * len(ladder) * parent.Analyze.Reps, Spec: spec, Hash: hash})
		off += k
	}
	return subs, nil
}
