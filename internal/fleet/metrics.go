package fleet

import (
	"fmt"

	"repro/internal/obs"
)

// fanoutBounds bucket the sub-job fan-out width per fleet job.
var fanoutBounds = []float64{1, 2, 4, 8, 16, 32}

// fleetLatencyBounds bucket coordinator-side job wall latency (seconds).
var fleetLatencyBounds = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120}

// metrics aggregates the coordinator's counters on an obs.Registry, the same
// machinery noiselabd and the kernel publish through. The shard hit ratio is
// a GaugeFunc so the rendered value can never drift from the counters it
// derives from.
type metrics struct {
	reg *obs.Registry

	submitted  *obs.Counter
	done       *obs.Counter
	failed     *obs.Counter
	canceled   *obs.Counter
	inflight   *obs.Gauge
	subJobs    *obs.Counter
	subRetries *obs.Counter
	// subCacheHits counts sub-jobs whose backend answered from its shard
	// cache without an engine execution; with subJobs it yields the fleet's
	// shard hit ratio.
	subCacheHits *obs.Counter
	// mergedHits counts fleet jobs served from the coordinator's own merged
	// result cache (zero sub-jobs dispatched).
	mergedHits *obs.Counter
	fanout     *obs.Histogram
	latency    *obs.Histogram

	backendUp map[string]*obs.Gauge
}

func newMetrics(backends []string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		submitted: reg.Counter("noisefleet_jobs_submitted_total", "Fleet jobs accepted by the coordinator."),
		done:      reg.Counter(`noisefleet_jobs_total{state="done"}`, "Fleet jobs by terminal state."),
		failed:    reg.Counter(`noisefleet_jobs_total{state="failed"}`, "Fleet jobs by terminal state."),
		canceled:  reg.Counter(`noisefleet_jobs_total{state="canceled"}`, "Fleet jobs by terminal state."),
		inflight:  reg.Gauge("noisefleet_jobs_inflight", "Fleet jobs currently executing."),
		subJobs:   reg.Counter("noisefleet_subjobs_total", "Sub-jobs dispatched to backends."),
		subRetries: reg.Counter("noisefleet_subjob_retries_total",
			"Sub-job attempts re-routed to another ring node after a backend failure."),
		subCacheHits: reg.Counter("noisefleet_subjob_cache_hits_total",
			"Sub-jobs served from a backend's shard cache without execution."),
		mergedHits: reg.Counter("noisefleet_merged_cache_hits_total",
			"Fleet jobs served from the coordinator's merged-result cache."),
		fanout: reg.Histogram("noisefleet_fanout_width",
			"Sub-job fan-out width per fleet job.", fanoutBounds),
		latency: reg.Histogram("noisefleet_job_latency_hist_seconds",
			"Fleet job wall latency distribution.", fleetLatencyBounds),
		backendUp: make(map[string]*obs.Gauge, len(backends)),
	}
	m.reg.GaugeFunc("noisefleet_shard_hit_ratio",
		"Fraction of dispatched sub-jobs served from shard caches.",
		func() float64 {
			total := m.subJobs.Value()
			if total == 0 {
				return 0
			}
			return float64(m.subCacheHits.Value()) / float64(total)
		})
	for _, b := range backends {
		g := reg.Gauge(fmt.Sprintf("noisefleet_backend_up{backend=%q}", b),
			"Backend liveness as observed by the coordinator (1 = last contact succeeded).")
		g.Set(1)
		m.backendUp[b] = g
	}
	return m
}

// setBackendUp records the coordinator's view of a backend's liveness.
func (m *metrics) setBackendUp(name string, up bool) {
	g, ok := m.backendUp[name]
	if !ok {
		return
	}
	if up {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

func (m *metrics) jobFinished(state string, latencySecs float64) {
	m.inflight.AddFloor(-1, 0)
	switch state {
	case "done":
		m.done.Inc()
	case "failed":
		m.failed.Inc()
	case "canceled":
		m.canceled.Inc()
	}
	m.latency.Observe(latencySecs)
}
