package fleet

// End-to-end fleet tests over httptest: three in-process noiselabd backends
// behind a coordinator. The distributed-determinism contract under test:
// a fleet run is byte-identical to a direct single-node run (kernel and
// cluster jobs), resubmission executes zero reps anywhere, and killing a
// backend mid-job reroutes its slices to the next ring node with the final
// payload still byte-identical. All waits are condition-based (job/sub-job
// test hooks) — no wall-clock sleeps. The whole file runs under -race in CI.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// testFleet is a coordinator plus its in-process backends.
type testFleet struct {
	coord     *Coordinator
	coordTS   *httptest.Server
	backends  []*service.Server
	backendTS []*httptest.Server
	watch     *fleetWatcher
}

// fleetWatcher turns the coordinator's test hooks into condition-based
// waiting, mirroring the service package's jobWatcher.
type fleetWatcher struct {
	mu     chan struct{}
	last   map[string]service.JobState
	subs   map[string]map[int]SubStatus // job id -> offset -> last sub status
	change chan struct{}
}

func newFleetWatcher(c *Coordinator) *fleetWatcher {
	w := &fleetWatcher{
		mu:     make(chan struct{}, 1),
		last:   make(map[string]service.JobState),
		subs:   make(map[string]map[int]SubStatus),
		change: make(chan struct{}),
	}
	w.mu <- struct{}{}
	pulse := func(f func()) {
		<-w.mu
		f()
		close(w.change)
		w.change = make(chan struct{})
		w.mu <- struct{}{}
	}
	c.testHookJobUpdate = func(id string, state service.JobState) {
		pulse(func() { w.last[id] = state })
	}
	c.testHookSubUpdate = func(id string, sub SubStatus) {
		pulse(func() {
			if w.subs[id] == nil {
				w.subs[id] = make(map[int]SubStatus)
			}
			w.subs[id][sub.Offset] = sub
		})
	}
	return w
}

// await blocks until pred holds over the watcher state.
func (w *fleetWatcher) await(t *testing.T, desc string, pred func() bool) {
	t.Helper()
	timeout := time.After(120 * time.Second)
	for {
		<-w.mu
		ok := pred()
		ch := w.change
		w.mu <- struct{}{}
		if ok {
			return
		}
		select {
		case <-ch:
		case <-timeout:
			t.Fatalf("timed out waiting for %s", desc)
		}
	}
}

func (w *fleetWatcher) awaitTerminal(t *testing.T, id string) service.JobState {
	t.Helper()
	var st service.JobState
	w.await(t, "job "+id+" terminal", func() bool {
		st = w.last[id]
		return st.Terminal()
	})
	return st
}

// newTestFleet spins up n in-process backends and a coordinator over them.
func newTestFleet(t *testing.T, n int, backendCfg service.Config, fleetCfg Config) *testFleet {
	t.Helper()
	f := &testFleet{}
	if backendCfg.JobTimeout == 0 {
		backendCfg.JobTimeout = 2 * time.Minute
	}
	for i := 0; i < n; i++ {
		cfg := backendCfg
		cfg.CacheDir = t.TempDir()
		srv, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		f.backends = append(f.backends, srv)
		f.backendTS = append(f.backendTS, ts)
		fleetCfg.Backends = append(fleetCfg.Backends, ts.URL)
	}
	if fleetCfg.JobTimeout == 0 {
		fleetCfg.JobTimeout = 2 * time.Minute
	}
	coord, err := New(fleetCfg)
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	f.watch = newFleetWatcher(coord)
	f.coordTS = httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		f.coordTS.Close()
		coord.Close()
		for i := range f.backends {
			f.backendTS[i].Close()
			f.backends[i].Close()
		}
	})
	return f
}

// submitFleet posts a spec to the coordinator's HTTP API.
func submitFleet(t *testing.T, ts *httptest.Server, spec service.JobSpec, want ...int) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	ok := false
	for _, w := range want {
		ok = ok || resp.StatusCode == w
	}
	if !ok {
		t.Fatalf("submit: HTTP %d (want %v): %s", resp.StatusCode, want, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit: decoding %q: %v", data, err)
	}
	return st
}

func fetchFleetResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, data)
	}
	return data
}

// directPayload runs the spec on a fresh single-node server and returns the
// stored bytes — the ground truth every fleet path must reproduce.
func directPayload(t *testing.T, spec service.JobSpec) []byte {
	t.Helper()
	srv, err := service.New(service.Config{CacheDir: t.TempDir(), JobTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, _ := srv.Status(job.ID)
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("direct run: %s (%s)", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("direct run timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	data, _, _ := srv.Result(job.ID)
	return data
}

func backendExecutions(f *testFleet) uint64 {
	var n uint64
	for _, b := range f.backends {
		n += b.Metrics().Executions
	}
	return n
}

func coordMetrics(t *testing.T, f *testFleet) string {
	t.Helper()
	resp, err := http.Get(f.coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(data)
}

// TestFleetByteIdenticalKernel is the acceptance criterion: a 3-backend
// fleet run of a kernel job is byte-identical to a direct single-node run.
func TestFleetByteIdenticalKernel(t *testing.T) {
	spec := kernelSpec(71, 10)
	want := directPayload(t, spec)

	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})
	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)
	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		got, _ := f.coord.Status(st.ID)
		t.Fatalf("fleet job %s: %s (%s)", st.ID, final, got.Error)
	}
	got := fetchFleetResult(t, f.coordTS, st.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("fleet payload differs from single-node run:\nwant %s\ngot  %s", want, got)
	}

	// The job really fanned out: one sub-job per backend, all done.
	final, _ := f.coord.Status(st.ID)
	if len(final.SubJobs) != 3 {
		t.Fatalf("fan-out width %d, want 3", len(final.SubJobs))
	}
	for _, s := range final.SubJobs {
		if s.State != service.StateDone || s.Node == "" || s.JobID == "" {
			t.Fatalf("sub-job not completed: %+v", s)
		}
	}
	if final.RepsDone != 10 || final.RepsTotal != 10 {
		t.Fatalf("aggregated progress %d/%d, want 10/10", final.RepsDone, final.RepsTotal)
	}
	text := coordMetrics(t, f)
	for _, wantLine := range []string{
		"noisefleet_subjobs_total 3",
		`noisefleet_jobs_total{state="done"} 1`,
		"noisefleet_subjob_retries_total 0",
	} {
		if !strings.Contains(text, wantLine) {
			t.Fatalf("/metrics missing %q:\n%s", wantLine, text)
		}
	}
}

// TestFleetByteIdenticalCluster: the same contract for simulated-datacenter
// jobs.
func TestFleetByteIdenticalCluster(t *testing.T) {
	spec := clusterSpec(73, 6)
	want := directPayload(t, spec)

	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})
	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)
	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		got, _ := f.coord.Status(st.ID)
		t.Fatalf("fleet cluster job: %s (%s)", final, got.Error)
	}
	got := fetchFleetResult(t, f.coordTS, st.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("fleet cluster payload differs from single-node run")
	}
	var res service.JobResult
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cluster) != 6 || res.Summary.N != 6 {
		t.Fatalf("merged cluster result: %d results, summary n=%d", len(res.Cluster), res.Summary.N)
	}
}

// TestFleetByteIdenticalIODeadline: the same contract for an I/O-blocking
// workload running under the SCHED_DEADLINE class — device wait queues,
// completion IRQs, blocked-task wakeups, and CBS budget timers must shard
// across the fleet exactly like pure compute.
func TestFleetByteIdenticalIODeadline(t *testing.T) {
	spec := service.JobSpec{
		Platform: "tiny-test", Workload: "svcloop", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: 89, Reps: 9,
		DLRuntimeNs: 400_000, DLPeriodNs: 1_000_000,
	}
	want := directPayload(t, spec)

	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})
	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)
	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		got, _ := f.coord.Status(st.ID)
		t.Fatalf("fleet io+deadline job: %s (%s)", final, got.Error)
	}
	got := fetchFleetResult(t, f.coordTS, st.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("fleet payload differs from single-node run for the I/O+deadline job")
	}
}

// TestFleetCacheHitZeroExecutions: a resubmitted spec executes zero reps —
// first served by the coordinator's merged cache, then (on a fresh
// coordinator over the same backends) by the backends' shard caches.
func TestFleetCacheHitZeroExecutions(t *testing.T) {
	spec := kernelSpec(79, 9)
	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})

	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)
	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		t.Fatalf("first run: %s", final)
	}
	payload1 := fetchFleetResult(t, f.coordTS, st.ID)
	execs := backendExecutions(f)
	if execs == 0 {
		t.Fatal("first run executed nothing")
	}

	// Resubmit: the coordinator's merged cache answers at submit time.
	st2 := submitFleet(t, f.coordTS, spec, http.StatusOK)
	if st2.State != service.StateDone || !st2.Cached {
		t.Fatalf("resubmission not served from merged cache: %+v", st2.JobStatus)
	}
	if !bytes.Equal(payload1, fetchFleetResult(t, f.coordTS, st2.ID)) {
		t.Fatal("merged-cache payload not byte-identical")
	}
	if got := backendExecutions(f); got != execs {
		t.Fatalf("merged-cache hit executed reps: %d -> %d", execs, got)
	}

	// A fresh coordinator has no merged cache: the job fans out again, but
	// every slice hits its backend's shard cache — still zero executions.
	coord2, err := New(Config{Backends: f.coord.ring.Members(), JobTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	w2 := newFleetWatcher(coord2)
	ts2 := httptest.NewServer(coord2.Handler())
	defer ts2.Close()

	st3 := submitFleet(t, ts2, spec, http.StatusAccepted, http.StatusOK)
	if !st3.State.Terminal() {
		if final := w2.awaitTerminal(t, st3.ID); final != service.StateDone {
			t.Fatalf("shard-cache run: %s", final)
		}
	}
	if !bytes.Equal(payload1, fetchFleetResult(t, ts2, st3.ID)) {
		t.Fatal("shard-cache payload not byte-identical")
	}
	if got := backendExecutions(f); got != execs {
		t.Fatalf("shard-cache run executed reps: %d -> %d", execs, got)
	}
	final, _ := coord2.Status(st3.ID)
	for _, s := range final.SubJobs {
		if !s.Cached {
			t.Fatalf("sub-job at offset %d missed the shard cache: %+v", s.Offset, s)
		}
	}
	var buf bytes.Buffer
	coord2.WriteMetrics(&buf)
	text := buf.String()
	for _, wantLine := range []string{
		"noisefleet_subjob_cache_hits_total 3",
		"noisefleet_shard_hit_ratio 1.000000",
	} {
		if !strings.Contains(text, wantLine) {
			t.Fatalf("coordinator metrics missing %q:\n%s", wantLine, text)
		}
	}
}

// TestFleetBackendFailureFailover kills a backend mid-job and asserts the
// rerouted result is still byte-identical to a single-node run.
//
// The kill is made deterministic, not timing-dependent: every backend has
// one worker occupied by a directly-submitted blocker job, so all fleet
// sub-jobs are parked in backend queues when the victim dies. The victim is
// the ring owner of the first slice, so at least one slice must fail over.
func TestFleetBackendFailureFailover(t *testing.T) {
	spec := kernelSpec(83, 12)
	want := directPayload(t, spec)

	f := newTestFleet(t, 3, service.Config{Workers: 1, JobTimeout: 2 * time.Minute}, Config{})

	// Park a blocker on every backend's single worker.
	blockers := make([]string, len(f.backends))
	for i, b := range f.backends {
		job, err := b.Submit(kernelSpec(uint64(9000+i), 50000))
		if err != nil {
			t.Fatal(err)
		}
		blockers[i] = job.ID
	}

	// The victim is the owner of the offset-0 slice.
	subs, err := Split(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	victim := f.coord.ring.Pick(subs[0].Hash)
	victimIdx := -1
	for i, ts := range f.backendTS {
		if ts.URL == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		t.Fatalf("victim %s not among backends", victim)
	}

	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)

	// Wait until every slice has been accepted by some backend — they are
	// all parked behind blockers, so none can complete before the kill.
	f.watch.await(t, "all sub-jobs submitted", func() bool {
		subs := f.watch.subs[st.ID]
		if len(subs) != 3 {
			return false
		}
		for _, s := range subs {
			if s.JobID == "" {
				return false
			}
		}
		return true
	})

	// Kill the victim: drop its live connections (breaking the coordinator's
	// event streams) and stop accepting new ones.
	f.backendTS[victimIdx].CloseClientConnections()
	f.backendTS[victimIdx].Close()
	f.backends[victimIdx].Close()

	// Release the survivors.
	for i, b := range f.backends {
		if i != victimIdx {
			b.Cancel(blockers[i])
		}
	}

	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		got, _ := f.coord.Status(st.ID)
		t.Fatalf("fleet job after backend kill: %s (%s)", final, got.Error)
	}
	got := fetchFleetResult(t, f.coordTS, st.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("failover payload differs from single-node run")
	}

	final, _ := f.coord.Status(st.ID)
	retries := 0
	for _, s := range final.SubJobs {
		retries += s.Retries
		if s.State != service.StateDone {
			t.Fatalf("sub-job at offset %d: %+v", s.Offset, s)
		}
		if s.Node == victim {
			t.Fatalf("sub-job at offset %d still credited to the dead backend", s.Offset)
		}
	}
	if retries == 0 {
		t.Fatal("no sub-job retried despite the backend kill")
	}
	text := coordMetrics(t, f)
	if !strings.Contains(text, `noisefleet_backend_up{backend="`+victim+`"} 0`) {
		t.Fatalf("dead backend not marked down in /metrics:\n%s", text)
	}
}

// TestFleetTimeline: a fleet job with "timeline": true serves the offset-0
// slice's timeline from the coordinator, byte-identical to a single node's.
func TestFleetTimeline(t *testing.T) {
	spec := kernelSpec(89, 6)
	spec.Timeline = true

	srv, err := service.New(service.Config{CacheDir: t.TempDir(), JobTimeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, _ := srv.Status(job.ID)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("direct run timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	wantTL, _, _ := srv.Timeline(job.ID)
	if len(wantTL) == 0 {
		t.Fatal("single-node run recorded no timeline")
	}

	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})
	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)
	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		t.Fatalf("fleet job: %s", final)
	}
	resp, err := http.Get(f.coordTS.URL + "/v1/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	gotTL, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet timeline: HTTP %d: %s", resp.StatusCode, gotTL)
	}
	if !bytes.Equal(wantTL, gotTL) {
		t.Fatal("fleet timeline differs from single-node recording")
	}
}

// TestFleetSSEAggregated: the coordinator's event stream delivers monotone
// aggregated progress ending in the terminal state, replayable after the
// job finished.
func TestFleetSSEAggregated(t *testing.T) {
	spec := kernelSpec(97, 8)
	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})
	st := submitFleet(t, f.coordTS, spec, http.StatusAccepted)
	if final := f.watch.awaitTerminal(t, st.ID); final != service.StateDone {
		t.Fatalf("fleet job: %s", final)
	}

	// Subscribe after the fact: the ring replays, ending with state=done.
	resp, err := http.Get(f.coordTS.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var (
		lastDone  = -1
		lastID    = uint64(0)
		lastState string
		event     string
		data      string
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			if id <= lastID {
				t.Fatalf("event IDs not strictly increasing: %d after %d", id, lastID)
			}
			lastID = id
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			switch event {
			case "progress":
				var p struct{ Done, Total int }
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					t.Fatalf("bad progress %q: %v", data, err)
				}
				if p.Done <= lastDone {
					t.Fatalf("progress regressed: %d after %d", p.Done, lastDone)
				}
				if p.Total != 8 {
					t.Fatalf("progress total %d, want 8", p.Total)
				}
				lastDone = p.Done
			case "state":
				var s struct{ State string }
				if err := json.Unmarshal([]byte(data), &s); err != nil {
					t.Fatalf("bad state %q: %v", data, err)
				}
				lastState = s.State
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lastState != "done" {
		t.Fatalf("stream ended with state %q, want done", lastState)
	}
}
