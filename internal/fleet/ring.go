// Package fleet scales the serving layer horizontally: a coordinator
// shards jobs across multiple noiselabd backends by consistent hashing on
// the rescache content key, splits a job's repetitions into sub-jobs fanned
// across backends, merges the index-addressed result slices byte-identically
// to a single-node run, fails sub-jobs over to the next ring node, and
// streams aggregated progress as server-sent events.
//
// The whole design rides one fact (DESIGN.md §7, §11): a rep is a pure
// function of (ModelVersion, spec, seedAt(i)). Sharding therefore cannot
// change results — it can only change where the bytes are computed and
// cached — and every claim in this package ships with a test that would
// catch its violation.
package fleet

import (
	"fmt"
	"sort"

	"repro/internal/rescache"
)

// DefaultReplicas is the per-node vnode count. 128 points per node keeps
// the 1k-key load spread well within 2x of ideal (pinned by TestRingBalance)
// while ring construction stays trivially cheap.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over backend names. Placement is a pure
// function of (key, member set): members are deduplicated and sorted before
// hashing, vnode points derive only from member names, and ties break on
// the name — so two rings built from any permutation of the same members
// place every key identically (fuzzed by FuzzRingPlacement).
type Ring struct {
	members []string
	points  []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	h    uint64
	node string
}

// NewRing builds a ring with the given vnode count per member (<=0 uses
// DefaultReplicas). An empty member set yields a ring that places nothing.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*replicas)}
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{h: rescache.KeyPoint(fmt.Sprintf("%s|%d", m, i)), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Members returns the deduplicated, sorted member set.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// start returns the index of the first vnode at or after key's point
// (wrapping past the top of the ring).
func (r *Ring) start(key string) int {
	h := rescache.KeyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Pick returns the owning node for a content key ("" on an empty ring).
func (r *Ring) Pick(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.start(key)].node
}

// Seq returns every member in ring-walk order starting from the key's
// owner: the failover sequence for a sub-job placed at key. The owner is
// always first; each subsequent entry is the next distinct node clockwise.
func (r *Ring) Seq(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	start := r.start(key)
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
