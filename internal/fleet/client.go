package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/service"
)

// Backend is an HTTP client for one noiselabd node. All methods speak the
// daemon's public API; failures return errors rather than retrying, because
// retry policy (walk the ring to the next node) belongs to the coordinator.
type Backend struct {
	// Name is the node's ring identity: its base URL, e.g.
	// "http://10.0.0.7:8080".
	Name   string
	Client *http.Client
}

func (b *Backend) hc() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

// errBody extracts the daemon's JSON error message from a non-2xx response.
func errBody(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("backend %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("backend %s: %s", resp.Status, bytes.TrimSpace(body))
}

// Submit posts a spec and returns the accepted job's status.
func (b *Backend) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.Name+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.hc().Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return st, errBody(resp)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Status polls one job's status.
func (b *Backend) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Name+"/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	resp, err := b.hc().Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, errBody(resp)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Result fetches a done job's stored payload verbatim.
func (b *Backend) Result(ctx context.Context, id string) ([]byte, error) {
	return b.fetch(ctx, "/v1/jobs/"+id+"/result")
}

// Timeline fetches a done job's recorded timeline.
func (b *Backend) Timeline(ctx context.Context, id string) ([]byte, error) {
	return b.fetch(ctx, "/v1/jobs/"+id+"/timeline")
}

// AnalysisTimeline fetches one source's evidence timeline of a done
// analysis job.
func (b *Backend) AnalysisTimeline(ctx context.Context, id, source string) ([]byte, error) {
	return b.fetch(ctx, "/v1/analyses/"+id+"/timeline/"+source)
}

func (b *Backend) fetch(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Name+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.hc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errBody(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel cancels a job; unknown-job and terminal-state answers are not
// errors (the coordinator cancels best-effort during failover and teardown).
func (b *Backend) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, b.Name+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := b.hc().Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Healthy probes the node's liveness endpoint.
func (b *Backend) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Name+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := b.hc().Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// WaitDone follows a job's SSE event stream until it reaches a terminal
// state, reporting progress updates through onProgress (may be nil). It
// resumes with Last-Event-ID across one stream break; when the stream breaks
// and a status poll says the job is still not terminal, the backend is
// treated as unhealthy and the error is returned for the coordinator's
// failover to handle.
func (b *Backend) WaitDone(ctx context.Context, id string, onProgress func(done, total int)) (service.JobState, error) {
	var lastID uint64
	retried := false
	for {
		state, err := b.stream(ctx, id, &lastID, onProgress)
		if err == nil {
			return state, nil
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		// One status poll decides: the stream may have broken exactly at
		// terminal-event delivery, or the connection died mid-run.
		st, serr := b.Status(ctx, id)
		if serr == nil && st.State.Terminal() {
			return st.State, nil
		}
		if retried || serr != nil {
			return "", fmt.Errorf("fleet: event stream for %s on %s broke: %w", id, b.Name, err)
		}
		retried = true
	}
}

// stream consumes one SSE connection, returning the terminal state when the
// stream finishes cleanly, or an error when the connection breaks first.
func (b *Backend) stream(ctx context.Context, id string, lastID *uint64, onProgress func(done, total int)) (service.JobState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.Name+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := b.hc().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", errBody(resp)
	}

	var (
		typ, data string
		terminal  service.JobState
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.ParseUint(line[len("id: "):], 10, 64); err == nil {
				*lastID = n
			}
		case strings.HasPrefix(line, "event: "):
			typ = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			// Dispatch the completed event.
			switch typ {
			case "progress":
				var p struct{ Done, Total int }
				if json.Unmarshal([]byte(data), &p) == nil && onProgress != nil {
					onProgress(p.Done, p.Total)
				}
			case "state":
				var s struct {
					State service.JobState `json:"state"`
				}
				if json.Unmarshal([]byte(data), &s) == nil && s.State.Terminal() {
					terminal = s.State
				}
			}
			typ, data = "", ""
		}
	}
	if terminal != "" {
		// The server closes the stream after delivering the terminal event;
		// reaching EOF with one in hand is the clean end of the stream.
		return terminal, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("fleet: event stream for %s ended without a terminal state", id)
}
