package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Merge reassembles the sub-job result payloads (in Offset order, one per
// SubJob from Split) into the parent job's result payload. The output is
// byte-identical to what a single noiselabd would have produced for the
// parent spec, by construction: the per-rep slices concatenate in index
// order and the final bytes come from the same service.BuildResult /
// BuildClusterResult encoders the daemon itself uses.
func Merge(parentHash string, parent service.JobSpec, subs []SubJob, payloads [][]byte) ([]byte, error) {
	if len(subs) != len(payloads) {
		return nil, fmt.Errorf("fleet: %d sub-jobs but %d payloads", len(subs), len(payloads))
	}
	var (
		times    []sim.Time
		traces   []*trace.Trace
		clusters []*cluster.Result
	)
	for i, raw := range payloads {
		var res service.JobResult
		if err := json.Unmarshal(raw, &res); err != nil {
			return nil, fmt.Errorf("fleet: decoding sub-job %d result: %w", i, err)
		}
		if res.ModelVersion != experiment.ModelVersion {
			return nil, fmt.Errorf("fleet: sub-job %d ran model %q, coordinator expects %q",
				i, res.ModelVersion, experiment.ModelVersion)
		}
		if res.SpecHash != subs[i].Hash {
			return nil, fmt.Errorf("fleet: sub-job %d returned hash %s, want %s",
				i, res.SpecHash, subs[i].Hash)
		}
		if got, want := len(res.TimesNs), subs[i].Spec.Reps; got != want {
			return nil, fmt.Errorf("fleet: sub-job %d returned %d reps, want %d", i, got, want)
		}
		if len(times) != subs[i].Offset {
			return nil, fmt.Errorf("fleet: sub-job %d starts at offset %d, have %d reps so far",
				i, subs[i].Offset, len(times))
		}
		for _, ns := range res.TimesNs {
			times = append(times, sim.Time(ns))
		}
		if parent.Cluster != nil {
			if len(res.Cluster) != subs[i].Spec.Reps {
				return nil, fmt.Errorf("fleet: sub-job %d returned %d cluster results, want %d",
					i, len(res.Cluster), subs[i].Spec.Reps)
			}
			clusters = append(clusters, res.Cluster...)
		} else if parent.Tracing {
			if len(res.Traces) != subs[i].Spec.Reps {
				return nil, fmt.Errorf("fleet: sub-job %d returned %d traces, want %d",
					i, len(res.Traces), subs[i].Spec.Reps)
			}
			traces = append(traces, res.Traces...)
		}
	}
	if got, want := len(times), parent.Reps; got != want {
		return nil, fmt.Errorf("fleet: merged %d reps, parent wants %d", got, want)
	}
	if parent.Cluster != nil {
		return service.BuildClusterResult(parentHash, parent, clusters)
	}
	return service.BuildResult(parentHash, parent, times, traces)
}
