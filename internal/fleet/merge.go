package fleet

import (
	"encoding/json"
	"fmt"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Merge reassembles the sub-job result payloads (in Offset order, one per
// SubJob from Split) into the parent job's result payload. The output is
// byte-identical to what a single noiselabd would have produced for the
// parent spec, by construction: the per-rep slices concatenate in index
// order and the final bytes come from the same service.BuildResult /
// BuildClusterResult encoders the daemon itself uses.
func Merge(parentHash string, parent service.JobSpec, subs []SubJob, payloads [][]byte) ([]byte, error) {
	if len(subs) != len(payloads) {
		return nil, fmt.Errorf("fleet: %d sub-jobs but %d payloads", len(subs), len(payloads))
	}
	if parent.Analyze != nil {
		return mergeAnalysis(parent, subs, payloads)
	}
	var (
		times    []sim.Time
		traces   []*trace.Trace
		clusters []*cluster.Result
	)
	for i, raw := range payloads {
		var res service.JobResult
		if err := json.Unmarshal(raw, &res); err != nil {
			return nil, fmt.Errorf("fleet: decoding sub-job %d result: %w", i, err)
		}
		if res.ModelVersion != experiment.ModelVersion {
			return nil, fmt.Errorf("fleet: sub-job %d ran model %q, coordinator expects %q",
				i, res.ModelVersion, experiment.ModelVersion)
		}
		if res.SpecHash != subs[i].Hash {
			return nil, fmt.Errorf("fleet: sub-job %d returned hash %s, want %s",
				i, res.SpecHash, subs[i].Hash)
		}
		if got, want := len(res.TimesNs), subs[i].Spec.Reps; got != want {
			return nil, fmt.Errorf("fleet: sub-job %d returned %d reps, want %d", i, got, want)
		}
		if len(times) != subs[i].Offset {
			return nil, fmt.Errorf("fleet: sub-job %d starts at offset %d, have %d reps so far",
				i, subs[i].Offset, len(times))
		}
		for _, ns := range res.TimesNs {
			times = append(times, sim.Time(ns))
		}
		if parent.Cluster != nil {
			if len(res.Cluster) != subs[i].Spec.Reps {
				return nil, fmt.Errorf("fleet: sub-job %d returned %d cluster results, want %d",
					i, len(res.Cluster), subs[i].Spec.Reps)
			}
			clusters = append(clusters, res.Cluster...)
		} else if parent.Tracing {
			if len(res.Traces) != subs[i].Spec.Reps {
				return nil, fmt.Errorf("fleet: sub-job %d returned %d traces, want %d",
					i, len(res.Traces), subs[i].Spec.Reps)
			}
			traces = append(traces, res.Traces...)
		}
	}
	if got, want := len(times), parent.Reps; got != want {
		return nil, fmt.Errorf("fleet: merged %d reps, parent wants %d", got, want)
	}
	if parent.Cluster != nil {
		return service.BuildClusterResult(parentHash, parent, clusters)
	}
	return service.BuildResult(parentHash, parent, times, traces)
}

// mergeAnalysis reassembles shard artifacts into the parent analysis
// artifact. Each shard's payload is a complete analyze.Artifact over its
// source chunk; concatenating the chunks' curves (chunks are contiguous
// slices of the sorted source list) and re-running analyze.Assemble with
// the parent spec reproduces the single-daemon artifact byte for byte —
// Assemble is the only encoder on either path, and every derived field
// (ranking, seed schedule, timeline refs) is a pure function of the curves.
func mergeAnalysis(parent service.JobSpec, subs []SubJob, payloads [][]byte) ([]byte, error) {
	var curves []analyze.SourceCurve
	for i, raw := range payloads {
		art, err := analyze.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: decoding analysis sub-job %d artifact: %w", i, err)
		}
		if art.ModelVersion != experiment.ModelVersion {
			return nil, fmt.Errorf("fleet: analysis sub-job %d ran model %q, coordinator expects %q",
				i, art.ModelVersion, experiment.ModelVersion)
		}
		sub := subs[i].Spec.Analyze
		wantHash, err := analyze.SpecHash(sub)
		if err != nil {
			return nil, fmt.Errorf("fleet: hashing analysis sub-spec %d: %w", i, err)
		}
		if art.SpecHash != wantHash {
			return nil, fmt.Errorf("fleet: analysis sub-job %d returned hash %s, want %s",
				i, art.SpecHash, wantHash)
		}
		want := sub.EffectiveSources()
		if len(art.Curves) != len(want) {
			return nil, fmt.Errorf("fleet: analysis sub-job %d returned %d curves, want %d",
				i, len(art.Curves), len(want))
		}
		for j, c := range art.Curves {
			if c.Source != want[j] {
				return nil, fmt.Errorf("fleet: analysis sub-job %d curve %d is %q, want %q",
					i, j, c.Source, want[j])
			}
		}
		curves = append(curves, art.Curves...)
	}
	hash, err := analyze.SpecHash(parent.Analyze)
	if err != nil {
		return nil, fmt.Errorf("fleet: hashing parent analysis spec: %w", err)
	}
	merged, err := analyze.Assemble(hash, experiment.ModelVersion, *parent.Analyze, curves)
	if err != nil {
		return nil, fmt.Errorf("fleet: assembling merged analysis: %w", err)
	}
	return merged.Encode()
}
