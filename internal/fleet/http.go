package fleet

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/analyze"
	"repro/internal/service"
)

// Coordinator API surface — a superset-compatible mirror of noiselabd's, so
// the noiselab CLI talks to either unchanged:
//
//	POST   /v1/jobs             submit a JobSpec; 202 + Status (200 when
//	                            served from the merged-result cache)
//	GET    /v1/jobs/{id}        poll status (includes per-sub-job detail)
//	GET    /v1/jobs/{id}/result fetch the merged result payload
//	GET    /v1/jobs/{id}/events aggregated live progress as SSE
//	GET    /v1/jobs/{id}/timeline fetch the offset-0 slice's timeline
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/analyses         submit a bare analysis spec; the per-source
//	                            sweeps fan out across the ring and the merged
//	                            artifact is byte-identical to a single node's
//	GET    /v1/analyses/{id}           poll status (alias of the job route)
//	GET    /v1/analyses/{id}/result    fetch the merged analysis artifact
//	GET    /v1/analyses/{id}/events    aggregated live progress as SSE
//	GET    /v1/analyses/{id}/timeline  bottleneck source's evidence timeline
//	GET    /v1/analyses/{id}/timeline/{source} one source's evidence timeline
//	DELETE /v1/analyses/{id}           cancel
//	GET    /v1/ring?key=K       inspect a key's placement (debugging)
//	GET    /metrics             Prometheus text metrics
//	GET    /healthz             liveness

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", c.handleTimeline)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("POST /v1/analyses", c.handleSubmitAnalysis)
	mux.HandleFunc("GET /v1/analyses/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/analyses/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/analyses/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/analyses/{id}/timeline", c.handleTimeline)
	mux.HandleFunc("GET /v1/analyses/{id}/timeline/{source}", c.handleAnalysisTimeline)
	mux.HandleFunc("DELETE /v1/analyses/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/ring", c.handleRing)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: "+err.Error())
		return
	}
	st, err := c.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleSubmitAnalysis accepts a bare analysis spec and submits it as a
// fleet analysis job, mirroring noiselabd's endpoint of the same path.
func (c *Coordinator) handleSubmitAnalysis(w http.ResponseWriter, r *http.Request) {
	var spec analyze.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding analysis spec: "+err.Error())
		return
	}
	st, err := c.Submit(service.JobSpec{Analyze: &spec})
	switch {
	case err == nil:
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleAnalysisTimeline serves one source's mirrored evidence timeline.
func (c *Coordinator) handleAnalysisTimeline(w http.ResponseWriter, r *http.Request) {
	data, state, ok := c.AnalysisTimeline(r.PathValue("id"), r.PathValue("source"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch {
	case state == "done" && data != nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case state == "done":
		httpError(w, http.StatusNotFound, "no evidence timeline for that source (submit with \"timeline\": true)")
	case state.Terminal():
		httpError(w, http.StatusConflict, "job "+string(state)+", no timeline")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job "+string(state))
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := c.Status(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	data, state, ok := c.Result(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch state {
	case "done":
		// Merged bytes serve verbatim — byte-identical to a single-node run.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "failed", "canceled":
		httpError(w, http.StatusConflict, "job "+string(state)+", no result")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job "+string(state))
	}
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, ok := c.Events(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	service.ServeSSE(w, r, log)
}

func (c *Coordinator) handleTimeline(w http.ResponseWriter, r *http.Request) {
	data, state, ok := c.Timeline(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch {
	case state == "done" && data != nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case state == "done":
		httpError(w, http.StatusNotFound, "no timeline recorded (submit with \"timeline\": true)")
	case state.Terminal():
		httpError(w, http.StatusConflict, "job "+string(state)+", no timeline")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job "+string(state))
	}
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, ok := c.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "state": string(state)})
}

// handleRing reports a key's placement and failover order — an operator's
// window into where a spec hash lives.
func (c *Coordinator) handleRing(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	resp := map[string]any{"members": c.ring.Members()}
	if key != "" {
		resp["key"] = key
		resp["owner"] = c.ring.Pick(key)
		resp["failover"] = c.ring.Seq(key)
	}
	writeJSON(w, http.StatusOK, resp)
}
