package fleet

// Fleet analysis e2e: a three-backend fleet runs a bottleneck analysis with
// the per-source sweeps routed across shards, and the merged artifact is
// byte-identical to a single daemon's (and therefore to a direct
// analyze.Run — the service e2e pins that equality). Resubmission is a
// merged-cache hit executing zero reps anywhere, and the per-source
// evidence timelines mirror through the coordinator. Runs under -race.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/service"
)

func fleetAnalysisSpec(seed uint64) analyze.Spec {
	return analyze.Spec{
		Platform: "tiny-test", Workload: "nbody", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: seed, Reps: 3,
		Sources:  []string{"daemon", "irq", "bandwidth"},
		Ladder:   []float64{1, 4},
		Timeline: true,
	}
}

// submitFleetAnalysis posts a bare analysis spec to the coordinator.
func submitFleetAnalysis(t *testing.T, f *testFleet, spec analyze.Spec, want ...int) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.coordTS.URL+"/v1/analyses", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	ok := false
	for _, w := range want {
		ok = ok || resp.StatusCode == w
	}
	if !ok {
		t.Fatalf("submit analysis: HTTP %d (want %v): %s", resp.StatusCode, want, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit analysis: decoding %q: %v", data, err)
	}
	return st
}

// TestFleetAnalysisByteIdentical is the acceptance criterion: the merged
// artifact of a 3-backend fleet analysis equals a single daemon's bytes,
// with one source sweep routed per shard.
func TestFleetAnalysisByteIdentical(t *testing.T) {
	spec := fleetAnalysisSpec(42)
	want := directPayload(t, service.JobSpec{Analyze: &spec})

	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})
	clone := fleetAnalysisSpec(42)
	st := submitFleetAnalysis(t, f, clone, http.StatusAccepted)
	if got := f.watch.awaitTerminal(t, st.ID); got != service.StateDone {
		final, _ := f.coord.Status(st.ID)
		t.Fatalf("fleet analysis %s: %s", got, final.Error)
	}

	got := fetchFleetResult(t, f.coordTS, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet artifact differs from single-daemon run:\n%.300s\nvs\n%.300s", got, want)
	}

	// Three sources, fan-out one chunk per backend: each sub-job carries a
	// distinct source, and progress aggregates in rep units.
	final, _ := f.coord.Status(st.ID)
	if len(final.SubJobs) != 3 {
		t.Fatalf("fan-out %d sub-jobs, want 3", len(final.SubJobs))
	}
	totalReps := spec.TotalReps()
	if final.RepsTotal != totalReps || final.RepsDone != totalReps {
		t.Fatalf("progress %d/%d, want %d/%d", final.RepsDone, final.RepsTotal, totalReps, totalReps)
	}
	subReps := 0
	for _, sub := range final.SubJobs {
		subReps += sub.Reps
	}
	if subReps != totalReps {
		t.Fatalf("sub-job rep budgets sum to %d, want %d", subReps, totalReps)
	}

	// Per-source evidence mirrors through the coordinator and matches the
	// single-daemon bytes; the headline endpoint serves the bottleneck's.
	art, err := analyze.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Timelines) != 3 {
		t.Fatalf("artifact references %d timelines, want 3", len(art.Timelines))
	}
	for _, ref := range art.Timelines {
		resp, err := http.Get(f.coordTS.URL + "/v1/analyses/" + st.ID + "/timeline/" + ref.Source)
		if err != nil {
			t.Fatal(err)
		}
		tl, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(tl) == 0 {
			t.Fatalf("timeline %s: HTTP %d (%d bytes)", ref.Source, resp.StatusCode, len(tl))
		}
	}
	resp, err := http.Get(f.coordTS.URL + "/v1/analyses/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	headline, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(headline) == 0 {
		t.Fatalf("headline timeline: HTTP %d (%d bytes)", resp.StatusCode, len(headline))
	}
}

// TestFleetAnalysisResubmitZeroExecution: a second submission of the same
// sweep is a merged-cache hit on the coordinator — no backend executes
// anything, and the bytes are identical.
func TestFleetAnalysisResubmitZeroExecution(t *testing.T) {
	f := newTestFleet(t, 3, service.Config{Workers: 2}, Config{})

	first := submitFleetAnalysis(t, f, fleetAnalysisSpec(7), http.StatusAccepted)
	if got := f.watch.awaitTerminal(t, first.ID); got != service.StateDone {
		final, _ := f.coord.Status(first.ID)
		t.Fatalf("fleet analysis %s: %s", got, final.Error)
	}
	payload1 := fetchFleetResult(t, f.coordTS, first.ID)
	execs := backendExecutions(f)
	if execs == 0 {
		t.Fatal("first fleet analysis executed nothing")
	}

	second := submitFleetAnalysis(t, f, fleetAnalysisSpec(7), http.StatusOK)
	if second.State != service.StateDone || !second.Cached {
		t.Fatalf("resubmission not served from the merged cache: %+v", second)
	}
	payload2 := fetchFleetResult(t, f.coordTS, second.ID)
	if !bytes.Equal(payload1, payload2) {
		t.Fatal("cached fleet artifact differs from the first run")
	}
	if got := backendExecutions(f); got != execs {
		t.Fatalf("resubmission executed on a backend: executions %d -> %d", execs, got)
	}
	if !strings.Contains(coordMetrics(t, f), "noisefleet_merged_cache_hits_total 1") {
		t.Fatal("coordinator metrics missing the merged-cache hit")
	}
}

// TestFleetAnalysisMalformed400: validation runs at the coordinator's edge,
// before any fan-out.
func TestFleetAnalysisMalformed400(t *testing.T) {
	f := newTestFleet(t, 2, service.Config{}, Config{})
	bad := fleetAnalysisSpec(1)
	bad.Sources = []string{"gpu"}
	body, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.coordTS.URL+"/v1/analyses", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown source: HTTP %d (want 400): %s", resp.StatusCode, data)
	}
}
