package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/analyze"
	"repro/internal/rescache"
	"repro/internal/service"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Backends are the noiselabd base URLs forming the consistent-hash ring.
	Backends []string
	// Replicas is the per-backend vnode count (0 = DefaultReplicas).
	Replicas int
	// SubJobs is the fan-out width: how many sub-jobs a fleet job splits
	// into (0 = one per backend). Clamped to the job's rep count.
	SubJobs int
	// MemEntries bounds the coordinator's merged-result cache (default 256).
	MemEntries int
	// JobTimeout bounds one fleet job end to end (default 10 minutes).
	JobTimeout time.Duration
	// MaxReps rejects specs with more repetitions (default 100000).
	MaxReps int
	// EventKeep bounds each fleet job's SSE event ring (0 = service default).
	EventKeep int
	// Client is the HTTP client used for backend calls (nil = default).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.SubJobs <= 0 {
		c.SubJobs = len(c.Backends)
	}
	if c.MemEntries <= 0 {
		c.MemEntries = 256
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 100000
	}
	return c
}

// SubStatus is the wire status of one sub-job slice.
type SubStatus struct {
	Offset  int              `json:"offset"`
	Reps    int              `json:"reps"`
	Hash    string           `json:"hash"`
	Node    string           `json:"node,omitempty"`
	JobID   string           `json:"job_id,omitempty"`
	State   service.JobState `json:"state,omitempty"`
	Cached  bool             `json:"cached,omitempty"`
	Retries int              `json:"retries,omitempty"`
}

// Status is the coordinator's wire status: the single-node status shape
// (so noiselab's client code works unchanged against a coordinator) plus
// per-sub-job detail.
type Status struct {
	service.JobStatus
	SubJobs []SubStatus `json:"sub_jobs,omitempty"`
}

// fleetJob tracks one coordinated submission.
type fleetJob struct {
	id      string
	spec    service.JobSpec
	hash    string
	state   service.JobState
	cached  bool
	err     string
	started time.Time

	result []byte
	cancel context.CancelFunc
	events *service.EventLog

	subs                []SubStatus
	subDone             []int // per-sub max observed rep completions
	repsDone, repsTotal int
}

// Coordinator shards fleet jobs across noiselabd backends. Create with New,
// serve its Handler, stop with Close.
type Coordinator struct {
	cfg   Config
	ring  *Ring
	cache *rescache.Cache // memory-only merged-result cache
	met   *metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	backends map[string]*Backend
	down     map[string]bool // coordinator's view of backend liveness
	jobs     map[string]*fleetJob
	nextID   uint64
	draining bool

	wg sync.WaitGroup

	// testHookJobUpdate / testHookSubUpdate mirror the service package's
	// condition-based test waiting: called after every fleet-job state
	// transition / sub-job status change, with the coordinator mutex
	// released. Set before submitting.
	testHookJobUpdate func(id string, state service.JobState)
	testHookSubUpdate func(id string, sub SubStatus)
}

// New builds a Coordinator over the given backends.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	cache, err := rescache.New("", cfg.MemEntries)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	ring := NewRing(cfg.Backends, cfg.Replicas)
	c := &Coordinator{
		cfg: cfg, ring: ring, cache: cache, met: newMetrics(ring.Members()),
		baseCtx: ctx, baseCancel: cancel,
		backends: make(map[string]*Backend, len(cfg.Backends)),
		down:     make(map[string]bool),
		jobs:     make(map[string]*fleetJob),
	}
	for _, name := range ring.Members() {
		c.backends[name] = &Backend{Name: name, Client: cfg.Client}
	}
	return c, nil
}

var errDraining = errors.New("fleet: draining, not accepting jobs")

// Submit validates and hashes a spec, serves it from the merged-result
// cache when possible, and otherwise fans it out across the ring in a
// background goroutine.
func (c *Coordinator) Submit(spec service.JobSpec) (Status, error) {
	spec.Normalize()
	if err := spec.Validate(c.cfg.MaxReps); err != nil {
		return Status{}, err
	}
	hash, err := service.SpecHash(&spec)
	if err != nil {
		return Status{}, err
	}
	subs, err := Split(spec, c.cfg.SubJobs)
	if err != nil {
		return Status{}, err
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return Status{}, errDraining
	}
	c.nextID++
	job := &fleetJob{
		id:        fmt.Sprintf("f%06d", c.nextID),
		spec:      spec,
		hash:      hash,
		state:     service.StateQueued,
		events:    service.NewEventLog(c.cfg.EventKeep),
		subs:      make([]SubStatus, len(subs)),
		subDone:   make([]int, len(subs)),
		repsTotal: spec.TotalReps(),
	}
	for i, sub := range subs {
		job.subs[i] = SubStatus{Offset: sub.Offset, Reps: sub.Spec.TotalReps(), Hash: sub.Hash}
	}
	c.jobs[job.id] = job
	c.mu.Unlock()
	c.met.submitted.Inc()
	c.met.inflight.Add(1)

	// Fast path: a previously merged result completes the job at submit time.
	if data, ok := c.cache.Get(hash); ok {
		c.mu.Lock()
		job.state = service.StateDone
		job.cached = true
		job.result = data
		job.repsDone = spec.TotalReps()
		c.mu.Unlock()
		c.met.mergedHits.Inc()
		c.met.jobFinished("done", 0)
		c.notifyJob(job.id, service.StateDone)
		return c.status(job.id), nil
	}

	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.JobTimeout)
	c.mu.Lock()
	job.cancel = cancel
	c.mu.Unlock()
	c.notifyJob(job.id, service.StateQueued)

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer cancel()
		c.runJob(ctx, job, subs)
	}()
	return c.status(job.id), nil
}

// runJob fans the sub-jobs out, merges the slices, and finalizes the job.
func (c *Coordinator) runJob(ctx context.Context, job *fleetJob, subs []SubJob) {
	c.mu.Lock()
	job.state = service.StateRunning
	job.started = time.Now()
	c.mu.Unlock()
	c.notifyJob(job.id, service.StateRunning)
	c.met.fanout.Observe(float64(len(subs)))

	payloads := make([][]byte, len(subs))
	errs := make([]error, len(subs))
	var subWG sync.WaitGroup
	for i := range subs {
		subWG.Add(1)
		go func(i int) {
			defer subWG.Done()
			payloads[i], errs[i] = c.runSub(ctx, job, i, subs[i])
		}(i)
	}
	subWG.Wait()

	var data []byte
	err := ctx.Err()
	if err == nil {
		// Deterministic error selection: the lowest failing slice wins,
		// mirroring the executor's lowest-failing-rep rule.
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err == nil {
		data, err = Merge(job.hash, job.spec, subs, payloads)
	}
	if err == nil {
		err = c.cache.Put(job.hash, data)
	}
	if err == nil && job.spec.Timeline {
		// Only the offset-0 slice recorded a timeline; mirror it into the
		// coordinator cache so /timeline serves it like a single node would.
		if tl := c.fetchSubTimeline(ctx, job, 0); len(tl) > 0 {
			err = c.cache.Put(rescache.DerivedKey(job.hash, "tl"), tl)
		}
	}
	if err == nil && job.spec.Analyze != nil && job.spec.Analyze.Timeline {
		err = c.mirrorAnalysisTimelines(ctx, job, subs, data)
	}

	c.mu.Lock()
	var state service.JobState
	switch {
	case err == nil:
		job.state = service.StateDone
		job.result = data
		job.repsDone = job.spec.TotalReps()
	case errors.Is(err, context.Canceled):
		job.state = service.StateCanceled
		job.err = "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		job.state = service.StateFailed
		job.err = fmt.Sprintf("timed out after %v", c.cfg.JobTimeout)
	default:
		job.state = service.StateFailed
		job.err = err.Error()
	}
	state = job.state
	latency := time.Since(job.started).Seconds()
	c.mu.Unlock()
	c.met.jobFinished(string(state), latency)
	c.notifyJob(job.id, state)
}

// runSub executes one sub-job, walking the ring's failover sequence: the
// slice's owner first, then each next distinct node clockwise. A backend
// that cannot be reached, loses the job mid-stream, or cannot serve the
// result is marked down and the slice moves on; a deterministic execution
// failure is terminal everywhere, so it propagates instead of retrying.
func (c *Coordinator) runSub(ctx context.Context, job *fleetJob, idx int, sub SubJob) ([]byte, error) {
	var lastErr error
	for attempt, name := range c.candidates(sub.Hash) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt > 0 {
			c.met.subRetries.Inc()
			c.updateSub(job, idx, func(s *SubStatus) { s.Retries++ })
		}
		b := c.backends[name]
		payload, err := c.runSubOn(ctx, job, idx, sub, b)
		if err == nil {
			c.markUp(name, true)
			return payload, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var exec *execFailure
		if errors.As(err, &exec) {
			return nil, fmt.Errorf("fleet: sub-job %d (offset %d) failed on %s: %s", idx, sub.Offset, name, exec.msg)
		}
		c.markUp(name, false)
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: sub-job %d (offset %d): all backends failed, last: %w", idx, sub.Offset, lastErr)
}

// execFailure marks a deterministic execution failure (the backend ran the
// slice and the engine said no) — retrying on another node cannot help.
type execFailure struct{ msg string }

func (e *execFailure) Error() string { return e.msg }

// runSubOn runs one sub-job attempt against one backend: submit, follow the
// SSE stream to a terminal state, fetch the stored bytes.
func (c *Coordinator) runSubOn(ctx context.Context, job *fleetJob, idx int, sub SubJob, b *Backend) ([]byte, error) {
	c.met.subJobs.Inc()
	st, err := b.Submit(ctx, sub.Spec)
	if err != nil {
		return nil, err
	}
	c.updateSub(job, idx, func(s *SubStatus) {
		s.Node, s.JobID, s.State = b.Name, st.ID, st.State
	})
	state := st.State
	if !state.Terminal() {
		state, err = b.WaitDone(ctx, st.ID, func(done, total int) {
			c.subProgress(job, idx, done)
			c.updateSub(job, idx, func(s *SubStatus) { s.State = service.StateRunning })
		})
		if err != nil {
			return nil, err
		}
	}
	if state != service.StateDone {
		// The engine is deterministic: a failed slice fails on every node.
		final, serr := b.Status(ctx, st.ID)
		msg := "job " + string(state)
		if serr == nil && final.Error != "" {
			msg = final.Error
		}
		return nil, &execFailure{msg: msg}
	}
	final, err := b.Status(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	payload, err := b.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if final.Cached {
		c.met.subCacheHits.Inc()
	}
	c.subProgress(job, idx, sub.Spec.TotalReps())
	c.updateSub(job, idx, func(s *SubStatus) {
		s.State, s.Cached = service.StateDone, final.Cached
	})
	return payload, nil
}

// fetchSubTimeline pulls the recorded timeline of the sub-job at idx from
// the node that completed it. Best-effort: a missing timeline is not an
// error (the result payload is already merged and correct).
func (c *Coordinator) fetchSubTimeline(ctx context.Context, job *fleetJob, idx int) []byte {
	c.mu.Lock()
	node, id := job.subs[idx].Node, job.subs[idx].JobID
	c.mu.Unlock()
	b, ok := c.backends[node]
	if !ok || id == "" {
		return nil
	}
	tl, err := b.Timeline(ctx, id)
	if err != nil {
		return nil
	}
	return tl
}

// mirrorAnalysisTimelines pulls each source's evidence timeline from the
// shard that ran it and mirrors the bytes into the coordinator cache under
// the same derived keys noiselabd uses ("tl-<source>", plus the bottleneck
// source's copy under "tl"), so the coordinator's timeline endpoints serve
// exactly what a single daemon would. Fetches are best-effort — the merged
// artifact is already complete — but a failed cache write still fails the
// job, matching the single-node rule.
func (c *Coordinator) mirrorAnalysisTimelines(ctx context.Context, job *fleetJob, subs []SubJob, merged []byte) error {
	art, err := analyze.Decode(merged)
	if err != nil {
		return fmt.Errorf("fleet: decoding merged analysis artifact: %w", err)
	}
	for i, sub := range subs {
		c.mu.Lock()
		node, id := job.subs[i].Node, job.subs[i].JobID
		c.mu.Unlock()
		b, ok := c.backends[node]
		if !ok || id == "" {
			continue
		}
		for _, src := range sub.Spec.Analyze.EffectiveSources() {
			tl, err := b.AnalysisTimeline(ctx, id, src)
			if err != nil || len(tl) == 0 {
				continue
			}
			if err := c.cache.Put(rescache.DerivedKey(job.hash, "tl-"+src), tl); err != nil {
				return fmt.Errorf("fleet: storing %s timeline: %w", src, err)
			}
			if src == art.Bottleneck {
				if err := c.cache.Put(rescache.DerivedKey(job.hash, "tl"), tl); err != nil {
					return fmt.Errorf("fleet: storing timeline: %w", err)
				}
			}
		}
	}
	return nil
}

// AnalysisTimeline returns one mirrored evidence timeline of a done fleet
// analysis job.
func (c *Coordinator) AnalysisTimeline(id, source string) (data []byte, state service.JobState, found bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return nil, "", false
	}
	state, hash := j.state, j.hash
	c.mu.Unlock()
	if state != service.StateDone {
		return nil, state, true
	}
	data, _ = c.cache.Get(rescache.DerivedKey(hash, "tl-"+source))
	return data, state, true
}

// candidates returns the failover walk for a placement key with known-down
// backends moved to the back (stable within each class). Down nodes stay in
// the list — a sub-job would rather probe a recovering node than fail.
func (c *Coordinator) candidates(key string) []string {
	seq := c.ring.Seq(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.SliceStable(seq, func(i, j int) bool {
		return !c.down[seq[i]] && c.down[seq[j]]
	})
	return seq
}

// markUp records the coordinator's liveness view after a backend contact.
func (c *Coordinator) markUp(name string, up bool) {
	c.mu.Lock()
	c.down[name] = !up
	c.mu.Unlock()
	c.met.setBackendUp(name, up)
}

// subProgress folds one sub-job's rep completions into the job-level
// aggregate. Per-sub counts only grow (failover restarts a slice from zero
// on the new node; the aggregate must not regress), and the EventLog's own
// monotone guard de-duplicates racing publishes.
func (c *Coordinator) subProgress(job *fleetJob, idx int, done int) {
	c.mu.Lock()
	if done > job.subDone[idx] {
		job.subDone[idx] = done
	}
	total := 0
	for _, d := range job.subDone {
		total += d
	}
	if total > job.repsDone {
		job.repsDone = total
	}
	cur, reps := job.repsDone, job.repsTotal
	c.mu.Unlock()
	job.events.PublishProgress(cur, reps)
}

// updateSub mutates one sub-job's wire status and fires the test hook.
func (c *Coordinator) updateSub(job *fleetJob, idx int, f func(*SubStatus)) {
	c.mu.Lock()
	f(&job.subs[idx])
	snap := job.subs[idx]
	c.mu.Unlock()
	if c.testHookSubUpdate != nil {
		c.testHookSubUpdate(job.id, snap)
	}
}

// notifyJob publishes a fleet-job state transition to the job's event
// stream and the test hook, with the coordinator mutex released.
func (c *Coordinator) notifyJob(id string, state service.JobState) {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	if j != nil && j.events != nil {
		j.events.PublishState(state)
	}
	if c.testHookJobUpdate != nil {
		c.testHookJobUpdate(id, state)
	}
}

// status snapshots a job's wire status. Caller must hold no locks.
func (c *Coordinator) status(id string) Status {
	st, _ := c.Status(id)
	return st
}

// Status returns the wire status of a fleet job.
func (c *Coordinator) Status(id string) (Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return Status{}, false
	}
	st := Status{
		JobStatus: service.JobStatus{
			ID: j.id, State: j.state, SpecHash: j.hash, Cached: j.cached, Error: j.err,
			RepsDone: j.repsDone, RepsTotal: j.repsTotal,
		},
		SubJobs: append([]SubStatus(nil), j.subs...),
	}
	return st, true
}

// Events returns a fleet job's SSE event log.
func (c *Coordinator) Events(id string) (*service.EventLog, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return j.events, true
}

// Result returns the merged payload bytes of a finished fleet job.
func (c *Coordinator) Result(id string) ([]byte, service.JobState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.result, j.state, true
}

// Timeline returns the mirrored timeline of a done fleet job.
func (c *Coordinator) Timeline(id string) (data []byte, state service.JobState, found bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return nil, "", false
	}
	state, hash := j.state, j.hash
	c.mu.Unlock()
	if state != service.StateDone {
		return nil, state, true
	}
	data, _ = c.cache.Get(rescache.DerivedKey(hash, "tl"))
	return data, state, true
}

// Cancel cancels a running fleet job (best-effort: in-flight sub-jobs are
// abandoned via context cancellation and cleaned up on their backends).
func (c *Coordinator) Cancel(id string) (service.JobState, bool) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return "", false
	}
	cancel := j.cancel
	state := j.state
	subs := append([]SubStatus(nil), j.subs...)
	c.mu.Unlock()
	if state.Terminal() || cancel == nil {
		return state, true
	}
	cancel()
	// Best-effort backend cleanup so abandoned sub-jobs stop burning shards.
	for _, s := range subs {
		if s.JobID != "" && !s.State.Terminal() {
			if b, ok := c.backends[s.Node]; ok {
				ctx, done := context.WithTimeout(context.Background(), 2*time.Second)
				_ = b.Cancel(ctx, s.JobID)
				done()
			}
		}
	}
	st, _ := c.Status(id)
	return st.State, true
}

// WriteMetrics renders the coordinator's registry in Prometheus text form.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	c.met.reg.WritePrometheus(w)
}

// Close stops the coordinator: cancels every running fleet job and waits
// for the job goroutines to exit.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.baseCancel()
	c.wg.Wait()
}
