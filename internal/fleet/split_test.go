package fleet

// Splitter/merger determinism: a rep series split into sub-jobs, executed
// slice by slice (at any parallelism, with or without the passive obs
// recorder attached), and merged, must be byte-identical to the unsplit
// single-node payload. This is the property that makes fleet fan-out safe.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/service"
)

func kernelSpec(seed uint64, reps int) service.JobSpec {
	return service.JobSpec{
		Platform: "tiny-test", Workload: "schedbench", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: seed, Reps: reps,
	}
}

func clusterSpec(seed uint64, reps int) service.JobSpec {
	return service.JobSpec{
		Seed: seed, Reps: reps,
		Cluster: &cluster.Spec{
			Nodes: 2, Straggler: 1, StragglerScale: 4, Policy: "round-robin",
			Tenants: 1, JobsPerTenant: 2, Width: 2, WorkerMs: 1, ArrivalMs: 1,
		},
	}
}

func TestSplitCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		reps := 1 + rng.Intn(50)
		width := 1 + rng.Intn(8)
		parent := kernelSpec(uint64(i), reps)
		parent.Timeline = true
		subs, err := Split(parent, width)
		if err != nil {
			t.Fatal(err)
		}
		if len(subs) > width || len(subs) > reps {
			t.Fatalf("reps=%d width=%d: %d subs", reps, width, len(subs))
		}
		next, total := 0, 0
		for j, sub := range subs {
			if sub.Offset != next {
				t.Fatalf("sub %d: offset %d, want %d (contiguous)", j, sub.Offset, next)
			}
			if sub.Spec.Reps < 1 {
				t.Fatalf("sub %d: empty slice", j)
			}
			if want := experiment.SeedAt(parent.Seed, sub.Offset); sub.Spec.Seed != want {
				t.Fatalf("sub %d: seed %d, want SeedAt(%d,%d)=%d", j, sub.Spec.Seed, parent.Seed, sub.Offset, want)
			}
			if sub.Spec.Timeline != (sub.Offset == 0) {
				t.Fatalf("sub %d (offset %d): timeline=%v — only the offset-0 slice records one",
					j, sub.Offset, sub.Spec.Timeline)
			}
			if sub.Hash == "" {
				t.Fatalf("sub %d: no content key", j)
			}
			next += sub.Spec.Reps
			total += sub.Spec.Reps
		}
		if total != reps {
			t.Fatalf("reps=%d width=%d: slices cover %d", reps, width, total)
		}
		// Near-even: slice sizes differ by at most one rep.
		min, max := reps, 0
		for _, sub := range subs {
			if sub.Spec.Reps < min {
				min = sub.Spec.Reps
			}
			if sub.Spec.Reps > max {
				max = sub.Spec.Reps
			}
		}
		if max-min > 1 {
			t.Fatalf("reps=%d width=%d: uneven slices (min %d, max %d)", reps, width, min, max)
		}
	}
}

// runKernelDirect produces the single-node payload for a kernel spec.
func runKernelDirect(t *testing.T, spec service.JobSpec, parallelism int, withObs bool) []byte {
	t.Helper()
	hash, err := service.SpecHash(&spec)
	if err != nil {
		t.Fatal(err)
	}
	exec := experiment.Executor{Parallelism: parallelism}
	if withObs {
		exec.Obs = &experiment.ObsOptions{Reg: obs.NewRegistry()}
	}
	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	times, traces, err := exec.Series(context.Background(), resolved, spec.Reps)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := service.BuildResult(hash, spec, times, traces)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// runFleetKernel splits, executes each slice independently, and merges.
func runFleetKernel(t *testing.T, spec service.JobSpec, width, parallelism int, withObs bool) []byte {
	t.Helper()
	hash, err := service.SpecHash(&spec)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := Split(spec, width)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(subs))
	for i, sub := range subs {
		exec := experiment.Executor{Parallelism: parallelism}
		if withObs {
			exec.Obs = &experiment.ObsOptions{Reg: obs.NewRegistry()}
		}
		resolved, err := sub.Spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		times, traces, err := exec.Series(context.Background(), resolved, sub.Spec.Reps)
		if err != nil {
			t.Fatal(err)
		}
		if payloads[i], err = service.BuildResult(sub.Hash, sub.Spec, times, traces); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(hash, spec, subs, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return merged
}

func TestMergeByteIdenticalKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		reps := 2 + rng.Intn(14)
		width := 1 + rng.Intn(5)
		spec := kernelSpec(uint64(100+i), reps)
		if i%2 == 1 {
			spec.Tracing = true // traces must reassemble in rep order too
		}
		want := runKernelDirect(t, spec, 1, false)
		for _, parallelism := range []int{1, 8} {
			for _, withObs := range []bool{false, true} {
				got := runFleetKernel(t, spec, width, parallelism, withObs)
				if !bytes.Equal(want, got) {
					t.Fatalf("reps=%d width=%d par=%d obs=%v: merged payload differs\nwant %s\ngot  %s",
						reps, width, parallelism, withObs, want, got)
				}
			}
		}
	}
}

func TestMergeByteIdenticalCluster(t *testing.T) {
	spec := clusterSpec(55, 6)
	hash, err := service.SpecHash(&spec)
	if err != nil {
		t.Fatal(err)
	}
	results, err := experiment.Executor{Parallelism: 1}.ClusterSeries(
		context.Background(), *spec.Cluster, spec.Seed, spec.Reps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := service.BuildClusterResult(hash, spec, results)
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{1, 2, 3, 6} {
		subs, err := Split(spec, width)
		if err != nil {
			t.Fatal(err)
		}
		payloads := make([][]byte, len(subs))
		for i, sub := range subs {
			rs, err := experiment.Executor{Parallelism: 4}.ClusterSeries(
				context.Background(), *sub.Spec.Cluster, sub.Spec.Seed, sub.Spec.Reps)
			if err != nil {
				t.Fatal(err)
			}
			if payloads[i], err = service.BuildClusterResult(sub.Hash, sub.Spec, rs); err != nil {
				t.Fatal(err)
			}
		}
		got, err := Merge(hash, spec, subs, payloads)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("width=%d: merged cluster payload differs", width)
		}
	}
}

// TestMergeRejectsCorruptSlices: the merger refuses mismatched model
// versions, wrong slice lengths, and gapped offsets instead of silently
// fabricating a result.
func TestMergeRejectsCorruptSlices(t *testing.T) {
	spec := kernelSpec(9, 6)
	hash, err := service.SpecHash(&spec)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := Split(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, len(subs))
	for i, sub := range subs {
		resolved, _ := sub.Spec.Resolve()
		times, traces, err := experiment.Executor{Parallelism: 1}.Series(context.Background(), resolved, sub.Spec.Reps)
		if err != nil {
			t.Fatal(err)
		}
		if payloads[i], err = service.BuildResult(sub.Hash, sub.Spec, times, traces); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Merge(hash, spec, subs, payloads); err != nil {
		t.Fatalf("healthy merge failed: %v", err)
	}

	corrupt := func(name string, mutate func(p [][]byte, s []SubJob)) {
		ps := make([][]byte, len(payloads))
		copy(ps, payloads)
		ss := append([]SubJob(nil), subs...)
		mutate(ps, ss)
		if _, err := Merge(hash, spec, ss, ps); err == nil {
			t.Errorf("%s: merge accepted corrupt slices", name)
		}
	}
	corrupt("wrong model version", func(p [][]byte, s []SubJob) {
		p[1] = bytes.Replace(p[1], []byte(experiment.ModelVersion), []byte("v0.0-bogus"), 1)
	})
	corrupt("truncated slice", func(p [][]byte, s []SubJob) {
		p[2] = bytes.Replace(p[2], []byte(`"times_ns":[`), []byte(`"times_ns":[1,`), 1)
	})
	corrupt("payload count mismatch", func(p [][]byte, s []SubJob) {
		p[0] = nil
	})
	corrupt("swapped slices", func(p [][]byte, s []SubJob) {
		p[0], p[1] = p[1], p[0]
	})
}
