package fleet

// Service-layer benchmark evidence: end-to-end job throughput through a
// coordinator fanning reps over three in-process noiselabd backends, plus
// the merged-cache resubmit fast path. The custom metrics (jobs/s, p99-ms)
// are what `make bench-service` records into BENCH_service.json.

import (
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/service"
)

// newBenchFleet stands up n in-process backends and a coordinator, with a
// channel carrying terminal-state notifications (the benchmarks submit one
// job at a time, so a single buffered channel is enough).
func newBenchFleet(b *testing.B, n int) (*Coordinator, chan service.JobState) {
	b.Helper()
	var backends []*service.Server
	var backendTS []*httptest.Server
	cfg := Config{JobTimeout: 2 * time.Minute}
	for i := 0; i < n; i++ {
		srv, err := service.New(service.Config{CacheDir: b.TempDir(), JobTimeout: 2 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		backends = append(backends, srv)
		backendTS = append(backendTS, ts)
		cfg.Backends = append(cfg.Backends, ts.URL)
	}
	coord, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// The benchmarks keep at most one uncached job in flight, so a dropped
	// notification can only come from the merged-cache fast path (whose
	// Submit already returns a terminal status nobody waits on) — the hook
	// must never block Submit when that path floods the channel.
	terminal := make(chan service.JobState, 16)
	coord.testHookJobUpdate = func(id string, state service.JobState) {
		if state.Terminal() {
			select {
			case terminal <- state:
			default:
			}
		}
	}
	b.Cleanup(func() {
		coord.Close()
		for i := range backends {
			backendTS[i].Close()
			backends[i].Close()
		}
	})
	return coord, terminal
}

func p99ms(latencies []time.Duration) float64 {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	idx := (99*len(latencies) + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(latencies[idx].Microseconds()) / 1000
}

// BenchmarkFleetThroughput submits distinct jobs (no cache reuse anywhere)
// through the coordinator and waits for each merged result: the full
// split → fan-out → execute → merge → cache path per iteration.
func BenchmarkFleetThroughput(b *testing.B) {
	coord, terminal := newBenchFleet(b, 3)
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		st, err := coord.Submit(kernelSpec(uint64(10_000+i), 6))
		if err != nil {
			b.Fatal(err)
		}
		if !st.State.Terminal() {
			if got := <-terminal; got != service.StateDone {
				b.Fatalf("job %s: %s", st.ID, got)
			}
		} else if st.State != service.StateDone {
			b.Fatalf("job %s: %s", st.ID, st.State)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(p99ms(latencies), "p99-ms")
}

// BenchmarkFleetCachedResubmit resubmits one already-merged spec: the
// coordinator must answer from its merged-result cache without touching
// any backend, so this bounds the coordinator's own bookkeeping overhead.
func BenchmarkFleetCachedResubmit(b *testing.B) {
	coord, terminal := newBenchFleet(b, 3)
	spec := kernelSpec(20_001, 6)
	st, err := coord.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if !st.State.Terminal() {
		if got := <-terminal; got != service.StateDone {
			b.Fatalf("warm-up job: %s", got)
		}
	}
	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		st, err := coord.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != service.StateDone || !st.Cached {
			b.Fatalf("resubmit not served from merged cache: state=%s cached=%v", st.State, st.Cached)
		}
		latencies = append(latencies, time.Since(start))
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(p99ms(latencies), "p99-ms")
}
