// Package rescache is a content-addressed result cache for deterministic
// experiment executions. Keys are canonical hashes of (spec, seed, model
// version) — see internal/service.SpecHash — and values are opaque result
// payloads. Because every run is a pure function of its key (DESIGN.md §5),
// serving stored bytes is semantically identical to re-executing, so the
// cache turns determinism into throughput.
//
// The cache is an in-memory LRU in front of an on-disk store. Disk entries
// are written atomically (temp file + rename) with a SHA-256 checksum
// header; a corrupt or truncated entry is detected on read, removed, and
// treated as a miss so it is recomputed rather than served. Concurrent
// computations of the same key are deduplicated with a singleflight group:
// exactly one caller executes, the rest wait and share the bytes.
package rescache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// MemHits and DiskHits count lookups served from the LRU and the disk
	// store; Misses count lookups that found nothing valid.
	MemHits, DiskHits, Misses uint64
	// FlightHits counts callers that were deduplicated onto another
	// caller's in-flight computation (singleflight).
	FlightHits uint64
	// Computes counts executions of the compute callback.
	Computes uint64
	// Corrupt counts on-disk entries rejected by checksum verification.
	Corrupt uint64
	// Evictions counts LRU evictions from the memory tier.
	Evictions uint64
	// MemEntries is the current memory-tier size.
	MemEntries int
}

// HitRatio returns hits/(hits+misses), 0 when no lookups happened. Flight
// hits count as hits: the caller was served without a new execution.
func (s Stats) HitRatio() float64 {
	hits := s.MemHits + s.DiskHits + s.FlightHits
	total := hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Cache is the two-tier content-addressed store. The zero value is not
// usable; construct with New.
type Cache struct {
	dir        string
	maxEntries int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	flights map[string]*flight
	stats   Stats
}

// memEntry is one LRU element.
type memEntry struct {
	key  string
	data []byte
}

// New creates a cache rooted at dir (created if missing; "" disables the
// disk tier) holding at most maxMemEntries payloads in memory (minimum 1).
func New(dir string, maxMemEntries int) (*Cache, error) {
	if maxMemEntries < 1 {
		maxMemEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: creating %s: %w", dir, err)
		}
	}
	return &Cache{
		dir:        dir,
		maxEntries: maxMemEntries,
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		flights:    make(map[string]*flight),
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.MemEntries = c.lru.Len()
	return s
}

// DerivedKey returns the cache key for an artifact derived from the entry at
// base — e.g. a job's exported timeline stored alongside its result
// (DerivedKey(hash, "tl")). The separator keeps derived keys valid (hex
// digests never contain '-') and collision-free with primary keys.
func DerivedKey(base, suffix string) string {
	return base + "-" + suffix
}

// KeyPoint maps a content key (or any stable label) to a point on the
// 64-bit hash ring used for shard placement. The fleet coordinator places
// each sub-job on the backend owning its content key's point, so a given
// key always lands on the same shard and per-shard caches stay hot and
// disjoint. The mapping is a pure function of the key — no process seed —
// so placement survives restarts and is reproducible in tests. FNV-1a is
// followed by a splitmix64 finalizer: content keys are already uniform hex
// digests, but ring vnode labels ("url|i") are not, and the finalizer's
// avalanche keeps their points spread.
func KeyPoint(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// validateKey rejects keys that could escape the cache directory; keys are
// hex digests in practice.
func validateKey(key string) error {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return fmt.Errorf("rescache: invalid key %q", key)
	}
	return nil
}

// path returns the disk location of key, sharded by the first two bytes to
// keep directories small.
func (c *Cache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(c.dir, shard, key+".res")
}

// Get returns the payload for key from memory or disk, recording hit/miss
// counters. A corrupt disk entry is removed and reported as a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	if validateKey(key) != nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.stats.MemHits++
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()

	data, err := c.readDisk(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil:
		c.stats.DiskHits++
		c.putMemLocked(key, data)
		return data, true
	case errors.Is(err, errCorrupt):
		c.stats.Corrupt++
		c.stats.Misses++
		return nil, false
	default:
		c.stats.Misses++
		return nil, false
	}
}

// Put stores the payload in both tiers. Disk errors are returned but the
// memory tier is always updated, so the entry still serves this process.
func (c *Cache) Put(key string, data []byte) error {
	if err := validateKey(key); err != nil {
		return err
	}
	c.mu.Lock()
	c.putMemLocked(key, data)
	c.mu.Unlock()
	return c.writeDisk(key, data)
}

// putMemLocked inserts into the LRU, evicting from the back. Caller holds mu.
func (c *Cache) putMemLocked(key string, data []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*memEntry).data = data
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&memEntry{key: key, data: data})
	for c.lru.Len() > c.maxEntries {
		back := c.lru.Back()
		delete(c.entries, back.Value.(*memEntry).key)
		c.lru.Remove(back)
		c.stats.Evictions++
	}
}

// GetOrCompute returns the cached payload for key, or runs compute exactly
// once across concurrent callers and caches its result. hit reports whether
// the caller was served without running compute itself (cache or flight
// dedup). If the computing caller's context dies, waiting callers whose own
// contexts are still live retry — one of them becomes the new computer — so
// a cancelled submission never poisons identical concurrent submissions.
func (c *Cache) GetOrCompute(ctx context.Context, key string,
	compute func(ctx context.Context) ([]byte, error)) (data []byte, hit bool, err error) {
	if err := validateKey(key); err != nil {
		return nil, false, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if data, ok := c.Get(key); ok {
			return data, true, nil
		}

		c.mu.Lock()
		if f, ok := c.flights[key]; ok {
			c.stats.FlightHits++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.data, true, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				continue // the computer died, not us: retry (possibly as computer)
			}
			return nil, false, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.stats.Computes++
		c.mu.Unlock()

		f.data, f.err = compute(ctx)
		if f.err == nil {
			// Store before releasing waiters/retriers so they find it. A
			// disk persistence failure is not fatal: the memory tier (which
			// Put always updates) still serves this process.
			_ = c.Put(key, f.data)
		}
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return f.data, false, f.err
	}
}

// errCorrupt marks a disk entry that failed checksum verification.
var errCorrupt = errors.New("rescache: corrupt entry")

// Disk format: one header line "sha256:<hex digest of payload>\n" followed
// by the raw payload bytes. The digest makes partial writes, truncation and
// bit flips detectable; writes go through a temp file + rename so readers
// never observe a half-written entry.

// readDisk loads and verifies one entry. It returns errCorrupt (and removes
// the file) when verification fails.
func (c *Cache) readDisk(key string) ([]byte, error) {
	if c.dir == "" {
		return nil, os.ErrNotExist
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	header := ""
	if nl >= 0 {
		header = string(raw[:nl])
	}
	digest, ok := strings.CutPrefix(header, "sha256:")
	if !ok {
		os.Remove(c.path(key))
		return nil, errCorrupt
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != digest {
		os.Remove(c.path(key))
		return nil, errCorrupt
	}
	return payload, nil
}

// writeDisk persists one entry atomically.
func (c *Cache) writeDisk(key string, data []byte) error {
	if c.dir == "" {
		return nil
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	sum := sha256.Sum256(data)
	_, werr := fmt.Fprintf(tmp, "sha256:%s\n", hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = tmp.Write(data)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: writing %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("rescache: %w", err)
	}
	return nil
}
