package rescache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"times_ns":[1,2,3]}`)
	if err := c.Put(key(1), data); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key(1))
	if !ok || string(got) != string(data) {
		t.Fatalf("memory round trip: ok=%v got=%q", ok, got)
	}

	// A fresh cache over the same directory must serve the persisted entry.
	c2, err := New(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.Get(key(1))
	if !ok || string(got) != string(data) {
		t.Fatalf("disk round trip: ok=%v got=%q", ok, got)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", s.DiskHits)
	}
	// Second read is a memory hit (promoted on the disk read).
	if _, ok := c2.Get(key(1)); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("mem hits = %d, want 1", s.MemHits)
	}
}

func TestMissAndInvalidKey(t *testing.T) {
	c, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(9)); ok {
		t.Fatal("unexpected hit")
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	for _, bad := range []string{"", "../escape", "a/b", `a\b`, "dot.dot"} {
		if err := c.Put(bad, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
		if _, ok := c.Get(bad); ok {
			t.Fatalf("Get(%q) hit", bad)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New("", 2) // memory-only
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.Put(key(i), []byte{byte(i)})
	}
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := c.Get(key(2)); !ok {
		t.Fatal("newest entry missing")
	}
	if s := c.Stats(); s.Evictions != 1 || s.MemEntries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSingleflightStress is the issue's concurrency contract: N goroutines
// submitting the same key must yield exactly one computation and N
// identical payloads.
func TestSingleflightStress(t *testing.T) {
	c, err := New(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var computes atomic.Int64
	payload := []byte(`{"deterministic":true}`)

	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			data, _, err := c.GetOrCompute(context.Background(), key(7),
				func(context.Context) ([]byte, error) {
					computes.Add(1)
					time.Sleep(20 * time.Millisecond) // widen the race window
					return payload, nil
				})
			results[i], errs[i] = data, err
		}(i)
	}
	close(start)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if string(results[i]) != string(payload) {
			t.Fatalf("goroutine %d: payload %q differs", i, results[i])
		}
	}
	if s := c.Stats(); s.Computes != 1 {
		t.Fatalf("stats computes = %d, want 1", s.Computes)
	}
}

// TestCorruptEntryRecomputed: a corrupt on-disk entry must be detected and
// recomputed, never served.
func TestCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	good := []byte(`{"summary":"good"}`)
	if err := c.Put(key(3), good); err != nil {
		t.Fatal(err)
	}

	// Flip payload bytes on disk without updating the checksum header.
	path := filepath.Join(dir, key(3)[:2], key(3)+".res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A cold cache over the same dir must reject the entry...
	c2, err := New(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key(3)); ok {
		t.Fatal("corrupt entry served")
	}
	s := c2.Stats()
	if s.Corrupt != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt + 1 miss", s)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: %v", err)
	}

	// ...and GetOrCompute must recompute and repersist it.
	var computes atomic.Int64
	data, hit, err := c2.GetOrCompute(context.Background(), key(3),
		func(context.Context) ([]byte, error) {
			computes.Add(1)
			return good, nil
		})
	if err != nil || hit || computes.Load() != 1 {
		t.Fatalf("recompute: err=%v hit=%v computes=%d", err, hit, computes.Load())
	}
	if string(data) != string(good) {
		t.Fatalf("recomputed payload %q", data)
	}
	c3, _ := New(dir, 8)
	if got, ok := c3.Get(key(3)); !ok || string(got) != string(good) {
		t.Fatalf("repersisted entry: ok=%v got=%q", ok, got)
	}
}

// Truncated files and files without the checksum header are corrupt too.
func TestTruncatedAndHeaderlessEntries(t *testing.T) {
	dir := t.TempDir()
	c, _ := New(dir, 8)
	if err := c.Put(key(4), []byte("payload-payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key(4)[:2], key(4)+".res")
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-4], 0o644)
	c2, _ := New(dir, 8)
	if _, ok := c2.Get(key(4)); ok {
		t.Fatal("truncated entry served")
	}

	os.MkdirAll(filepath.Dir(path), 0o755)
	os.WriteFile(path, []byte("no header at all"), 0o644)
	c3, _ := New(dir, 8)
	if _, ok := c3.Get(key(4)); ok {
		t.Fatal("headerless entry served")
	}
	if s := c3.Stats(); s.Corrupt != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestComputeErrorNotCached: a failed computation must not poison the key.
func TestComputeErrorNotCached(t *testing.T) {
	c, _ := New(t.TempDir(), 8)
	boom := fmt.Errorf("engine exploded")
	_, _, err := c.GetOrCompute(context.Background(), key(5),
		func(context.Context) ([]byte, error) { return nil, boom })
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	data, hit, err := c.GetOrCompute(context.Background(), key(5),
		func(context.Context) ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(data) != "ok" {
		t.Fatalf("retry after failure: data=%q hit=%v err=%v", data, hit, err)
	}
}

// TestCanceledLeaderWaiterRetries: when the computing caller's context is
// canceled, a waiter with a live context must take over and succeed.
func TestCanceledLeaderWaiterRetries(t *testing.T) {
	c, _ := New(t.TempDir(), 8)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inCompute := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.GetOrCompute(leaderCtx, key(6),
			func(ctx context.Context) ([]byte, error) {
				close(inCompute)
				<-ctx.Done()
				return nil, ctx.Err()
			})
	}()

	<-inCompute
	waiterDone := make(chan error, 1)
	var waiterData []byte
	go func() {
		data, _, err := c.GetOrCompute(context.Background(), key(6),
			func(context.Context) ([]byte, error) { return []byte("second try"), nil })
		waiterData = data
		waiterDone <- err
	}()
	// Give the waiter a moment to join the flight, then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()

	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if string(waiterData) != "second try" {
		t.Fatalf("waiter data = %q", waiterData)
	}
	wg.Wait()
	if leaderErr == nil {
		t.Fatal("leader should have failed with its context error")
	}
}

// TestRepeatedLeaderCancellationStress kills not one but a chain of
// successive leaders: each newly elected computer cancels its own context
// mid-compute until several have died, and only then does a leader finish.
// The retry loop must re-elect through every failure without orphaning a
// waiter, double-running a live compute, or caching a canceled result.
type cancelKeyType struct{}

func TestRepeatedLeaderCancellationStress(t *testing.T) {
	const (
		goroutines      = 32
		leadersToCancel = 5
	)
	c, _ := New(t.TempDir(), 8)
	var attempts atomic.Int64
	payload := []byte("survivor")

	var wg sync.WaitGroup
	var okCount, canceledCount atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// The compute callback receives the computing caller's own
			// context; smuggle that caller's cancel func alongside so the
			// elected leader can kill itself mid-flight.
			ctx = context.WithValue(ctx, cancelKeyType{}, cancel)
			data, _, err := c.GetOrCompute(ctx, key(7),
				func(ctx context.Context) ([]byte, error) {
					if attempts.Add(1) <= leadersToCancel {
						ctx.Value(cancelKeyType{}).(context.CancelFunc)()
						<-ctx.Done()
						return nil, ctx.Err()
					}
					return payload, nil
				})
			switch {
			case err == nil:
				if string(data) != string(payload) {
					t.Errorf("got %q, want %q", data, payload)
				}
				okCount.Add(1)
			case context.Cause(ctx) != nil:
				canceledCount.Add(1) // this goroutine was a sacrificed leader
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := canceledCount.Load(); got != leadersToCancel {
		t.Fatalf("%d callers died as canceled leaders, want %d", got, leadersToCancel)
	}
	if got := okCount.Load(); got != goroutines-leadersToCancel {
		t.Fatalf("%d callers served, want %d", got, goroutines-leadersToCancel)
	}
	// One compute per leader election: five sacrifices then a survivor.
	// (A caller that misses the cache in the instant before the survivor's
	// Put may legally be elected once more — singleflight dedups concurrent
	// computes, it does not promise exactly-once — so bound, don't pin.)
	if got := c.Stats().Computes; got < leadersToCancel+1 || got > leadersToCancel+3 {
		t.Fatalf("computes = %d, want ~%d", got, leadersToCancel+1)
	}
	if data, ok := c.Get(key(7)); !ok || string(data) != string(payload) {
		t.Fatalf("cache should hold the survivor's payload, got %q ok=%v", data, ok)
	}
}

// TestManyKeysConcurrent exercises eviction + disk + flights under the race
// detector.
func TestManyKeysConcurrent(t *testing.T) {
	c, _ := New(t.TempDir(), 4) // tiny LRU forces constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := key(i % 10)
				want := fmt.Sprintf("v%d", i%10)
				data, _, err := c.GetOrCompute(context.Background(), k,
					func(context.Context) ([]byte, error) { return []byte(want), nil })
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if string(data) != want {
					t.Errorf("g%d i%d: got %q want %q", g, i, data, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDerivedKey: derived keys must be valid cache keys, distinct from the
// base, and round-trip through both tiers like any other entry.
func TestDerivedKey(t *testing.T) {
	base := "0123abcd"
	k := DerivedKey(base, "tl")
	if k == base {
		t.Fatal("derived key collides with base")
	}
	if err := validateKey(k); err != nil {
		t.Fatalf("derived key invalid: %v", err)
	}
	c, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, []byte("timeline")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || string(got) != "timeline" {
		t.Fatalf("derived entry: %q ok=%v", got, ok)
	}
	if _, ok := c.Get(base); ok {
		t.Fatal("derived entry leaked into the base key")
	}
}
