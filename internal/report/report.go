// Package report renders experiment results as aligned text tables and CSV,
// replicating the layouts of the paper's Tables 1-7 and the box-plot series
// of Figures 1-2, and provides shape checks comparing measured trends with
// the paper's reported direction.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
	"repro/internal/mitigate"
)

// Table is a generic renderable table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the table to a string.
func (t *Table) Text() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		panic(err)
	}
	return b.String()
}

// WriteCSV renders the table as CSV (no quoting needed for our cells).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// strategyHeader returns the six strategy column labels.
func strategyHeader() []string {
	cols := []string{}
	for _, s := range mitigate.Columns() {
		cols = append(cols, s.Name())
	}
	return cols
}

// Table1 renders tracing-overhead rows in the paper's Table-1 layout.
func Table1(rows []experiment.OverheadRow) *Table {
	t := &Table{
		Title:  "Table 1: Average execution time with tracing off and on.",
		Header: []string{"Tracing Overhead", "Tracing Off", "Tracing On", "Increase"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprintf("%.9f", r.OffSec),
			fmt.Sprintf("%.9f", r.OnSec),
			fmt.Sprintf("%.2f%%", r.IncreasePct),
		})
	}
	return t
}

// Table2 renders the average baseline standard deviation (ms) per model and
// strategy, averaged across the given baseline results.
func Table2(results []*experiment.BaselineResult) *Table {
	t := &Table{
		Title:  "Table 2: Average s.d. (ms) in baseline executions",
		Header: append([]string{""}, strategyHeader()...),
	}
	for _, model := range experiment.Models {
		row := []string{strings.ToUpper(modelLabel(model))}
		for _, strat := range mitigate.Columns() {
			var sum float64
			var n int
			for _, res := range results {
				if cell, ok := res.Cells[experiment.Key(model, strat)]; ok {
					sum += cell.Summary.SD
					n++
				}
			}
			if n > 0 {
				row = append(row, fmt.Sprintf("%.2f", sum/float64(n)))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func modelLabel(model string) string {
	if model == "omp" {
		return "OMP"
	}
	return "SYCL"
}

// InjectionTable renders a Tables-3/4/5-style table: per platform section,
// rows of (model, SMT, config#) with mean seconds and percentage change.
func InjectionTable(num int, res *experiment.InjectionResult) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table %d: Average execution time (sec.) and %% increase vs baseline for %s.", num, res.Workload),
		Header: append([]string{""}, strategyHeader()...),
	}
	for _, sec := range res.Sections {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("-- %s on %s --", res.Workload, sec.Platform)})
		for _, row := range sec.Rows {
			means := []string{row.Label}
			changes := []string{""}
			for _, c := range row.Cells {
				means = append(means, fmt.Sprintf("%.3f", c.MeanSec))
				changes = append(changes, fmt.Sprintf("%+.1f%%", c.ChangePct))
			}
			t.Rows = append(t.Rows, means, changes)
		}
	}
	return t
}

// Table6 renders the aggregate relative performance change.
func Table6(agg map[string][]float64) *Table {
	t := &Table{
		Title:  "Table 6: Average relative performance change (%) under noise injection.",
		Header: append([]string{""}, strategyHeader()...),
	}
	for _, model := range experiment.Models {
		row := []string{modelLabel(model)}
		for _, v := range agg[model] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table7 renders injector accuracy entries.
func Table7(entries []experiment.AccuracyEntry) *Table {
	t := &Table{
		Title:  "Table 7: Absolute accuracy of noise injection for each worst-case trace.",
		Header: []string{"Benchmark", "Platform", "Config", "Anomaly(s)", "Injected(s)", "Accuracy"},
	}
	for _, e := range entries {
		sign := ""
		if e.SignedPct < 0 {
			sign = "(-)"
		}
		t.Rows = append(t.Rows, []string{
			e.Benchmark,
			e.Platform,
			e.Source.Label(),
			fmt.Sprintf("%.3f", e.AnomalySec),
			fmt.Sprintf("%.3f", e.InjectedSec),
			fmt.Sprintf("%s%.2f%%", sign, e.AccuracyPct),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean absolute accuracy: %.2f%% (paper: 8.57%%)", experiment.MeanAccuracy(entries)))
	return t
}

// Figure renders box-plot series as a text table (one row per x position
// per system).
func Figure(num int, title string, series []experiment.FigureSeries) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure %d: %s", num, title),
		Header: []string{"System", "x", "min(ms)", "q1", "median", "q3", "max(ms)", "sd(ms)"},
	}
	for _, s := range series {
		t.Rows = append(t.Rows, []string{
			s.System, s.X,
			fmt.Sprintf("%.2f", s.Box.Min),
			fmt.Sprintf("%.2f", s.Box.Q1),
			fmt.Sprintf("%.2f", s.Box.Median),
			fmt.Sprintf("%.2f", s.Box.Q3),
			fmt.Sprintf("%.2f", s.Box.Max),
			fmt.Sprintf("%.2f", s.SD),
		})
	}
	return t
}

// ShapeCheck is one direction assertion against the paper's findings.
type ShapeCheck struct {
	Name string
	Pass bool
	Got  string
	Want string
}

// CheckInjectionShape verifies the headline directions of the paper on a
// Table-6-style aggregate: housekeeping reduces degradation; SYCL is more
// resilient than OpenMP; TP does not beat Rm meaningfully.
func CheckInjectionShape(agg map[string][]float64) []ShapeCheck {
	idx := map[string]int{}
	for i, s := range mitigate.Columns() {
		idx[s.Name()] = i
	}
	var checks []ShapeCheck
	for _, model := range experiment.Models {
		v := agg[model]
		checks = append(checks,
			ShapeCheck{
				Name: modelLabel(model) + ": RmHK < Rm (housekeeping helps)",
				Pass: v[idx["RmHK"]] < v[idx["Rm"]],
				Got:  fmt.Sprintf("RmHK=%.2f Rm=%.2f", v[idx["RmHK"]], v[idx["Rm"]]),
				Want: "RmHK < Rm",
			},
			ShapeCheck{
				Name: modelLabel(model) + ": RmHK2 <= RmHK (more housekeeping helps more)",
				Pass: v[idx["RmHK2"]] <= v[idx["RmHK"]]+1,
				Got:  fmt.Sprintf("RmHK2=%.2f RmHK=%.2f", v[idx["RmHK2"]], v[idx["RmHK"]]),
				Want: "RmHK2 <= RmHK (+1pt slack)",
			},
		)
	}
	omp, sycl := agg["omp"], agg["sycl"]
	checks = append(checks, ShapeCheck{
		Name: "SYCL more resilient than OMP under injection (Rm column)",
		Pass: sycl[idx["Rm"]] < omp[idx["Rm"]],
		Got:  fmt.Sprintf("SYCL=%.2f OMP=%.2f", sycl[idx["Rm"]], omp[idx["Rm"]]),
		Want: "SYCL < OMP",
	}, ShapeCheck{
		Name: "TP does not meaningfully beat Rm (paper: no mitigation benefit)",
		Pass: omp[idx["TP"]] >= omp[idx["Rm"]]-5,
		Got:  fmt.Sprintf("TP=%.2f Rm=%.2f", omp[idx["TP"]], omp[idx["Rm"]]),
		Want: "TP >= Rm - 5pt",
	})
	return checks
}

// WriteChecks renders shape checks.
func WriteChecks(w io.Writer, checks []ShapeCheck) error {
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "[%s] %s: got %s (want %s)\n", status, c.Name, c.Got, c.Want); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	row := func(cells []string) string {
		return "| " + strings.Join(cells, " | ") + " |"
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, row(t.Header)); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintln(w, row(sep)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		padded := make([]string, len(t.Header))
		copy(padded, r)
		if _, err := fmt.Fprintln(w, row(padded)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n_%s_\n", n); err != nil {
			return err
		}
	}
	return nil
}
