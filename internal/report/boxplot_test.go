package report

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/stats"
)

func boxSeries() []experiment.FigureSeries {
	return []experiment.FigureSeries{
		{System: "A64FX:reserved", X: "48",
			Box: stats.FiveNum{Min: 48.8, Q1: 48.9, Median: 48.92, Q3: 48.93, Max: 48.94}},
		{System: "A64FX:w/o", X: "48",
			Box: stats.FiveNum{Min: 49.0, Q1: 54.2, Median: 57.2, Q3: 59.2, Max: 61.0}},
	}
}

func TestBoxPlotRendersRows(t *testing.T) {
	out := BoxPlotString("Figure 2", boxSeries(), 60)
	if !strings.Contains(out, "Figure 2") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + axis + 2 rows.
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	rsv, wo := lines[2], lines[3]
	if !strings.Contains(rsv, "reserved") || !strings.Contains(wo, "w/o") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// The w/o box must be visibly wider than the reserved one.
	if strings.Count(wo, "#") <= strings.Count(rsv, "#") {
		t.Fatalf("w/o IQR should be wider:\n%s", out)
	}
	// Whiskers present.
	if !strings.Contains(wo, "|") {
		t.Fatalf("missing whiskers:\n%s", out)
	}
	// Median marker somewhere in the wide box.
	if !strings.Contains(wo, "+") {
		t.Fatalf("missing median marker in wide box:\n%s", out)
	}
}

func TestBoxPlotDegenerate(t *testing.T) {
	// All-equal distribution must not divide by zero.
	s := []experiment.FigureSeries{{System: "x", X: "1",
		Box: stats.FiveNum{Min: 5, Q1: 5, Median: 5, Q3: 5, Max: 5}}}
	out := BoxPlotString("t", s, 40)
	if !strings.Contains(out, "|") {
		t.Fatalf("degenerate box should still draw:\n%s", out)
	}
	if got := BoxPlotString("t", nil, 40); !strings.Contains(got, "no data") {
		t.Fatalf("empty series: %q", got)
	}
}

func TestBoxPlotMinimumWidth(t *testing.T) {
	out := BoxPlotString("t", boxSeries(), 1) // clamped to 20
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Fatalf("line too long: %q", line)
		}
	}
}
