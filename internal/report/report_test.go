package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/mitigate"
	"repro/internal/stats"
)

func TestTableText(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tbl.Text()
	for _, want := range []string{"T\n", "a    bee", "333  4", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"x", "y"}, Rows: [][]string{{"1", "2"}}}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x,y\n1,2\n" {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestTable1Render(t *testing.T) {
	rows := []experiment.OverheadRow{
		{Workload: "nbody", OffSec: 0.450971154, OnSec: 0.453986513, IncreasePct: 0.67},
	}
	out := Table1(rows).Text()
	for _, want := range []string{"nbody", "0.450971154", "0.67%", "Tracing Off"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	mk := func(model string, sd float64) map[string]experiment.BaselineCell {
		cells := make(map[string]experiment.BaselineCell)
		for _, s := range mitigate.Columns() {
			cells[experiment.Key(model, s)] = experiment.BaselineCell{
				Model: model, Strategy: s, Summary: stats.Summary{SD: sd},
			}
		}
		return cells
	}
	merge := func(a, b map[string]experiment.BaselineCell) map[string]experiment.BaselineCell {
		for k, v := range b {
			a[k] = v
		}
		return a
	}
	res := []*experiment.BaselineResult{
		{Cells: merge(mk("omp", 8.0), mk("sycl", 6.0))},
		{Cells: merge(mk("omp", 6.0), mk("sycl", 4.0))},
	}
	out := Table2(res).Text()
	if !strings.Contains(out, "7.00") || !strings.Contains(out, "5.00") {
		t.Fatalf("table2 should average SDs:\n%s", out)
	}
	if !strings.Contains(out, "RmHK2") || !strings.Contains(out, "TPHK2") {
		t.Fatalf("table2 missing strategy columns:\n%s", out)
	}
}

func synthInjection() *experiment.InjectionResult {
	row := func(model, label string, base float64) experiment.InjectRow {
		r := experiment.InjectRow{Label: label, Model: model}
		for i := 0; i < 6; i++ {
			r.Cells = append(r.Cells, experiment.InjectCell{
				MeanSec: base + float64(i)*0.01, BaseSec: base, ChangePct: float64(i * 10),
			})
		}
		return r
	}
	return &experiment.InjectionResult{
		Workload: "nbody",
		Sections: []experiment.InjectSection{{
			Platform: "intel-9700kf",
			Rows: []experiment.InjectRow{
				row("omp", "OMP #1", 0.45),
				row("sycl", "SYCL #1", 0.60),
			},
		}},
	}
}

func TestInjectionTableRender(t *testing.T) {
	out := InjectionTable(3, synthInjection()).Text()
	for _, want := range []string{"Table 3", "nbody on intel-9700kf", "OMP #1", "SYCL #1", "+50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("injection table missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Render(t *testing.T) {
	agg := map[string][]float64{
		"omp":  {42.85, 20.43, 17.24, 49.58, 27.73, 24.22},
		"sycl": {19.08, 10.52, 8.96, 22.01, 10.92, 9.60},
	}
	out := Table6(agg).Text()
	if !strings.Contains(out, "42.85") || !strings.Contains(out, "9.60") {
		t.Fatalf("table6:\n%s", out)
	}
}

func TestTable7Render(t *testing.T) {
	entries := []experiment.AccuracyEntry{
		{Benchmark: "nbody", Platform: "intel-9700kf",
			Source:     experiment.ConfigSource{Model: "omp", Strategy: mitigate.Rm},
			AnomalySec: 0.6, InjectedSec: 0.62, AccuracyPct: 3.8, SignedPct: 3.8},
		{Benchmark: "babelstream", Platform: "intel-9700kf",
			Source:     experiment.ConfigSource{Model: "omp", Strategy: mitigate.TP},
			AnomalySec: 2.0, InjectedSec: 1.7, AccuracyPct: 15.5, SignedPct: -15.5},
	}
	out := Table7(entries).Text()
	for _, want := range []string{"Rm-OMP", "TP-OMP", "(-)15.50%", "3.80%", "mean absolute accuracy: 9.65%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table7 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	series := []experiment.FigureSeries{
		{System: "A64FX:reserved", X: "st:1", Box: stats.FiveNum{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}, SD: 0.5},
	}
	out := Figure(1, "schedbench variability", series).Text()
	for _, want := range []string{"Figure 1", "A64FX:reserved", "st:1", "3.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestCheckInjectionShape(t *testing.T) {
	good := map[string][]float64{
		"omp":  {42, 20, 17, 49, 27, 24},
		"sycl": {19, 10, 8, 22, 10, 9},
	}
	checks := CheckInjectionShape(good)
	for _, c := range checks {
		if !c.Pass {
			t.Fatalf("paper-shaped aggregate should pass %q: %+v", c.Name, c)
		}
	}
	bad := map[string][]float64{
		"omp":  {10, 42, 50, 2, 27, 24}, // HK worse than Rm; TP much better
		"sycl": {50, 60, 70, 80, 90, 99},
	}
	anyFail := false
	for _, c := range CheckInjectionShape(bad) {
		if !c.Pass {
			anyFail = true
		}
	}
	if !anyFail {
		t.Fatal("inverted aggregate should fail some checks")
	}
	var buf bytes.Buffer
	if err := WriteChecks(&buf, checks); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[PASS]") {
		t.Fatalf("checks output: %s", buf.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", "| 1 | 2 |", "| 3 |  |", "_n_"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
