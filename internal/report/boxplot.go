package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/experiment"
)

// BoxPlot renders figure series as ASCII box plots, one row per (system,
// x) pair, on a shared axis — a terminal rendition of the paper's Figures
// 1-2. Width is the plot area in characters (minimum 20).
//
//	st:1  reserved |·[#]·|
//	st:1  w/o      |···[#####]··————|
//
// Glyphs: '[' q1, '#' the interquartile box, ']' q3, '|' whiskers at
// min/max, '+' the median when it is distinguishable.
func BoxPlot(w io.Writer, title string, series []experiment.FigureSeries, width int) error {
	if width < 20 {
		width = 20
	}
	if len(series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", title)
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, s := range series {
		if s.Box.Min < lo {
			lo = s.Box.Min
		}
		if s.Box.Max > hi {
			hi = s.Box.Max
		}
		if n := len(s.X) + len(s.System) + 2; n > labelW {
			labelW = n
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / span * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	axis := fmt.Sprintf("%*s%-*.2f%*s%.2f (ms)", labelW+1, "", width/2, lo, width-width/2-6, "", hi)
	if _, err := fmt.Fprintln(w, axis); err != nil {
		return err
	}
	for _, s := range series {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		pMin, pQ1, pMed, pQ3, pMax := pos(s.Box.Min), pos(s.Box.Q1), pos(s.Box.Median), pos(s.Box.Q3), pos(s.Box.Max)
		for i := pMin; i <= pMax; i++ {
			row[i] = '-'
		}
		for i := pQ1; i <= pQ3; i++ {
			row[i] = '#'
		}
		row[pMin] = '|'
		row[pMax] = '|'
		if pQ1 != pMin {
			row[pQ1] = '['
		}
		if pQ3 != pMax {
			row[pQ3] = ']'
		}
		if pMed > pQ1 && pMed < pQ3 {
			row[pMed] = '+'
		}
		label := fmt.Sprintf("%s %s", s.X, shortSystem(s.System))
		if _, err := fmt.Fprintf(w, "%-*s %s\n", labelW, label, string(row)); err != nil {
			return err
		}
	}
	return nil
}

func shortSystem(s string) string {
	s = strings.ReplaceAll(s, "A64FX:", "")
	return s
}

// BoxPlotString renders BoxPlot to a string.
func BoxPlotString(title string, series []experiment.FigureSeries, width int) string {
	var b strings.Builder
	if err := BoxPlot(&b, title, series, width); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}
