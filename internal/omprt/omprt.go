// Package omprt models an OpenMP-style runtime on the simulated scheduler:
// a fork-join thread team with static, dynamic, and guided loop schedules,
// configurable chunk sizes, an active (spinning) or passive wait policy,
// and small fork/dispatch overheads. Its noise sensitivity is structural:
// with the default static schedule every region ends in a barrier that a
// single delayed thread holds up — the straggler effect the paper observes
// for OpenMP under injected noise.
package omprt

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/mitigate"
	"repro/internal/parmodel"
	"repro/internal/sim"
)

// Schedule is the OpenMP loop schedule kind.
type Schedule int

const (
	// Static divides iterations contiguously (chunk 0) or round-robin in
	// fixed chunks.
	Static Schedule = iota
	// Dynamic hands out chunks first-come-first-served.
	Dynamic
	// Guided hands out exponentially shrinking chunks.
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "?"
	}
}

// ParseSchedule parses "st"/"static", "dy"/"dynamic", "gd"/"guided" — the
// short forms are the x-axis labels of the paper's Figure 1.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "st", "static":
		return Static, nil
	case "dy", "dynamic":
		return Dynamic, nil
	case "gd", "guided":
		return Guided, nil
	default:
		return 0, fmt.Errorf("omprt: unknown schedule %q", s)
	}
}

// Config tunes the runtime model.
type Config struct {
	// Schedule and Chunk select the loop schedule (chunk 0 = default:
	// contiguous static ranges / chunk 1 for dynamic-guided minimum).
	Schedule Schedule
	Chunk    int
	// ActiveWait spins at region-end barriers (OMP_WAIT_POLICY=active
	// flavour); passive blocks.
	ActiveWait bool
	// ForkOverhead is master-side work per parallel region.
	ForkOverhead sim.Time
	// DispatchOverhead is per-chunk claim cost for dynamic/guided.
	DispatchOverhead sim.Time
	// CostFactor scales every unit's cost (compiler/runtime efficiency).
	CostFactor float64
	// Policy is the scheduling class workload threads (master and workers)
	// are spawned with; the zero value is SCHED_OTHER. PolicyDeadline
	// additionally needs the per-thread CBS reservation below — the
	// deadline-class mitigation runs every team thread under EDF.
	Policy    cpusched.Policy
	DLRuntime sim.Time
	DLPeriod  sim.Time
}

// DefaultConfig returns the model constants used for the paper's OpenMP
// runs: static schedule, active waiting, low overheads.
func DefaultConfig() Config {
	return Config{
		Schedule:         Static,
		Chunk:            0,
		ActiveWait:       true,
		ForkOverhead:     4 * sim.Microsecond,
		DispatchOverhead: 150, // ns
		CostFactor:       1.0,
	}
}

type loopState struct {
	n    int
	cost func(int) parmodel.Cost
	next int // shared claim cursor for dynamic/guided
}

// Team is an OpenMP-style thread team bound to a scheduler and a mitigation
// plan.
type Team struct {
	s    *cpusched.Scheduler
	plan *mitigate.Plan
	cfg  Config

	startBar *cpusched.Barrier
	endBar   *cpusched.Barrier
	loop     *loopState
	stop     bool
	// regions counts parallel regions for obs span naming (only advanced
	// while an observer is attached).
	regions int

	cyclesPerNs float64

	masterCtx *cpusched.Ctx
	master    *cpusched.Task
	workers   []*cpusched.Task
}

// Start creates the team (master + workers, spawned immediately; workers
// park at the region barrier) and runs body on the master thread. It
// returns the master task; the caller drives the engine until it is done.
func Start(s *cpusched.Scheduler, plan *mitigate.Plan, cfg Config, body parmodel.Body) *Team {
	if cfg.CostFactor <= 0 {
		cfg.CostFactor = 1.0
	}
	t := &Team{
		s:           s,
		plan:        plan,
		cfg:         cfg,
		startBar:    cpusched.NewBarrier(plan.Threads),
		endBar:      cpusched.NewBarrier(plan.Threads),
		cyclesPerNs: s.Topology().CyclesPerNs(),
	}
	// Workers are threads 1..N-1; master is thread 0. Workers run as inline
	// scheduler Programs (no goroutine per thread); the master keeps the
	// imperative path because it executes the arbitrary workload body.
	for i := 1; i < plan.Threads; i++ {
		w := s.SpawnProgram(cpusched.TaskSpec{
			Name:      workerName(i),
			Kind:      cpusched.KindWorkload,
			Affinity:  plan.AffinityOf(i),
			Policy:    cfg.Policy,
			DLRuntime: cfg.DLRuntime,
			DLPeriod:  cfg.DLPeriod,
		}, &workerProgram{t: t, id: i})
		t.workers = append(t.workers, w)
	}
	t.master = s.Spawn(cpusched.TaskSpec{
		Name:      "omp-master",
		Kind:      cpusched.KindWorkload,
		Affinity:  plan.AffinityOf(0),
		Policy:    cfg.Policy,
		DLRuntime: cfg.DLRuntime,
		DLPeriod:  cfg.DLPeriod,
	}, func(ctx *cpusched.Ctx) {
		t.masterCtx = ctx
		body(t)
		t.shutdownWorkers()
	})
	return t
}

// Master returns the master task (the workload's completion handle).
func (t *Team) Master() *cpusched.Task { return t.master }

var _ parmodel.Model = (*Team)(nil)

// Threads implements parmodel.Model.
func (t *Team) Threads() int { return t.plan.Threads }

// Name implements parmodel.Model.
func (t *Team) Name() string { return "omp" }

// MasterCompute implements parmodel.Model.
func (t *Team) MasterCompute(cycles float64) {
	t.masterCtx.Compute(cycles * t.cfg.CostFactor)
}

// MasterMemory implements parmodel.Model.
func (t *Team) MasterMemory(bytes float64) {
	t.masterCtx.Memory(bytes * t.cfg.CostFactor)
}

// MasterBlockOn implements parmodel.Model. I/O volume is data, not work:
// CostFactor does not apply.
func (t *Team) MasterBlockOn(dev string, bytes float64) {
	t.masterCtx.BlockOn(t.device(dev), bytes)
}

// ParallelFor implements parmodel.Model: one parallel region with an
// implicit end barrier.
func (t *Team) ParallelFor(n int, cost func(int) parmodel.Cost) {
	if n < 0 {
		panic("omprt: negative trip count")
	}
	t.loop = &loopState{n: n, cost: cost}
	// Observability only reads the clock (safe from the body goroutine,
	// like Ctx.Now): the region span steals no simulated time.
	rec := t.s.Observer()
	var regionStart sim.Time
	if rec != nil {
		regionStart = t.masterCtx.Now()
		t.regions++
	}
	// Region fork: master-side setup work.
	t.masterCtx.Compute(float64(t.cfg.ForkOverhead) * t.cyclesPerNs)
	if t.plan.Threads == 1 {
		t.runChunks(t.masterCtx, 0)
	} else {
		t.masterCtx.Barrier(t.startBar, false) // releases parked workers
		t.runChunks(t.masterCtx, 0)
		t.masterCtx.Barrier(t.endBar, t.cfg.ActiveWait)
	}
	if rec != nil {
		rec.Span(t.masterCtx.CPU(), fmt.Sprintf("parallel-region-%d", t.regions),
			"omp", t.cfg.Schedule.String(), regionStart, t.masterCtx.Now())
	}
}

// workerProgram is the worker thread's loop as an inline scheduler
// Program, yielding the byte-identical request sequence workerLoop's
// imperative form issued: park at the region start barrier, claim/execute
// this thread's chunks, wait at the end barrier, repeat. Shared loop state
// (t.loop, l.next, t.stop) is read and written inside Next, which runs at
// exactly the simulated instants the goroutine body performed the same
// accesses (the fetch points), so dynamic/guided claim races resolve
// identically.
type workerProgram struct {
	t     *Team
	id    int
	state int
	base  int     // next chunk base (static chunked schedule)
	mem   float64 // memory half of the range whose compute was just yielded
	io    float64 // I/O bytes of the current range (0 = no blocking phase)
	iodev string  // device the I/O phase blocks on
}

const (
	wStartBar   = iota // arrive at the region start barrier
	wBegin             // released: check stop, start this region's loop walk
	wStaticNext        // static chunked: yield the next chunk's compute
	wDispatch          // dynamic/guided: yield the per-chunk dispatch cost
	wClaim             // dynamic/guided: claim a chunk, yield its compute
	wMemory            // yield the memory half of the current range
	wIO                // block on the range's device request (io > 0 only)
	wEndBar            // arrive at the region end barrier
)

// afterUnit is the state following a completed work unit (compute + memory
// + optional I/O): the next chunk of the current schedule, or the region
// end barrier.
func (w *workerProgram) afterUnit() int {
	if w.t.cfg.Schedule == Static {
		if w.t.cfg.Chunk <= 0 {
			return wEndBar
		}
		return wStaticNext
	}
	return wDispatch
}

func (w *workerProgram) Next(*cpusched.Task) (cpusched.Request, bool) {
	t := w.t
	for {
		switch w.state {
		case wStartBar:
			w.state = wBegin
			return cpusched.ReqBarrier(t.startBar, false), true
		case wBegin:
			if t.stop {
				return cpusched.Request{}, false
			}
			switch t.cfg.Schedule {
			case Static:
				if t.cfg.Chunk <= 0 {
					l := t.loop
					lo := w.id * l.n / t.plan.Threads
					hi := (w.id + 1) * l.n / t.plan.Threads
					c, b, io, dev := t.rangeCost(lo, hi)
					w.mem, w.io, w.iodev = b, io, dev
					w.state = wMemory
					return cpusched.ReqCompute(c), true
				}
				w.base = w.id * t.cfg.Chunk
				w.state = wStaticNext
			case Dynamic, Guided:
				w.state = wDispatch
			default:
				panic("omprt: unknown schedule")
			}
		case wStaticNext:
			l := t.loop
			if w.base >= l.n {
				w.state = wEndBar
				continue
			}
			hi := w.base + t.cfg.Chunk
			if hi > l.n {
				hi = l.n
			}
			c, b, io, dev := t.rangeCost(w.base, hi)
			w.base += t.plan.Threads * t.cfg.Chunk
			w.mem, w.io, w.iodev = b, io, dev
			w.state = wMemory
			return cpusched.ReqCompute(c), true
		case wDispatch:
			// Zero overhead yields a zero-demand request the scheduler
			// skips, exactly as dispatchCost sends nothing.
			w.state = wClaim
			return cpusched.ReqCompute(float64(t.cfg.DispatchOverhead) * t.cyclesPerNs), true
		case wClaim:
			// The claim runs at the fetch following the dispatch compute —
			// the instant the imperative body resumed and read l.next.
			l := t.loop
			lo := l.next
			if lo >= l.n {
				w.state = wEndBar
				continue
			}
			hi := lo + t.claimSize(lo)
			if hi > l.n {
				hi = l.n
			}
			l.next = hi
			c, b, io, dev := t.rangeCost(lo, hi)
			w.mem, w.io, w.iodev = b, io, dev
			w.state = wMemory
			return cpusched.ReqCompute(c), true
		case wMemory:
			b := w.mem
			w.mem = 0
			if w.io > 0 {
				w.state = wIO
			} else {
				w.state = w.afterUnit()
			}
			return cpusched.ReqMemory(b), true
		case wIO:
			io, dev := w.io, w.iodev
			w.io, w.iodev = 0, ""
			w.state = w.afterUnit()
			return cpusched.ReqBlockOn(t.device(dev), io), true
		case wEndBar:
			w.state = wStartBar
			return cpusched.ReqBarrier(t.endBar, t.cfg.ActiveWait), true
		}
	}
}

// claimSize returns the chunk size a dynamic/guided claim takes when the
// cursor stands at lo.
func (t *Team) claimSize(lo int) int {
	minChunk := t.cfg.Chunk
	if minChunk <= 0 {
		minChunk = 1
	}
	if t.cfg.Schedule == Dynamic {
		return minChunk
	}
	T := t.plan.Threads
	size := (t.loop.n - lo + 2*T - 1) / (2 * T)
	if size < minChunk {
		size = minChunk
	}
	return size
}

// rangeCost sums and scales the cost of iterations [lo, hi).
func (t *Team) rangeCost(lo, hi int) (cycles, bytes, ioBytes float64, ioDev string) {
	var total parmodel.Cost
	for i := lo; i < hi; i++ {
		total = total.Add(t.loop.cost(i))
	}
	total = total.Scale(t.cfg.CostFactor)
	return total.Cycles, total.Bytes, total.IOBytes, total.IODev
}

// device resolves a workload-referenced device name on the scheduler.
func (t *Team) device(name string) *cpusched.Device {
	d := t.s.Device(name)
	if d == nil {
		panic(fmt.Sprintf("omprt: workload references unregistered device %q", name))
	}
	return d
}

// workerNames caches the recurring per-thread names: teams are rebuilt
// every rep, and re-formatting identical names each time is measurable in
// batched series.
var workerNames = func() (s [64]string) {
	for i := range s {
		s[i] = fmt.Sprintf("omp-worker-%d", i)
	}
	return
}()

func workerName(i int) string {
	if i >= 0 && i < len(workerNames) {
		return workerNames[i]
	}
	return fmt.Sprintf("omp-worker-%d", i)
}

func (t *Team) shutdownWorkers() {
	if t.plan.Threads == 1 {
		return
	}
	t.stop = true
	t.masterCtx.Barrier(t.startBar, false)
}

// runChunks executes thread id's share of the current loop.
func (t *Team) runChunks(ctx *cpusched.Ctx, id int) {
	l := t.loop
	T := t.plan.Threads
	switch t.cfg.Schedule {
	case Static:
		if t.cfg.Chunk <= 0 {
			lo := id * l.n / T
			hi := (id + 1) * l.n / T
			t.execRange(ctx, lo, hi)
			return
		}
		// Round-robin fixed chunks.
		for base := id * t.cfg.Chunk; base < l.n; base += T * t.cfg.Chunk {
			hi := base + t.cfg.Chunk
			if hi > l.n {
				hi = l.n
			}
			t.execRange(ctx, base, hi)
		}
	case Dynamic:
		chunk := t.cfg.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		for {
			t.dispatchCost(ctx)
			lo := l.next
			if lo >= l.n {
				return
			}
			hi := lo + chunk
			if hi > l.n {
				hi = l.n
			}
			l.next = hi
			t.execRange(ctx, lo, hi)
		}
	case Guided:
		minChunk := t.cfg.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		for {
			t.dispatchCost(ctx)
			lo := l.next
			if lo >= l.n {
				return
			}
			size := (l.n - lo + 2*T - 1) / (2 * T)
			if size < minChunk {
				size = minChunk
			}
			hi := lo + size
			if hi > l.n {
				hi = l.n
			}
			l.next = hi
			t.execRange(ctx, lo, hi)
		}
	default:
		panic("omprt: unknown schedule")
	}
}

func (t *Team) dispatchCost(ctx *cpusched.Ctx) {
	if t.cfg.DispatchOverhead > 0 {
		ctx.Compute(float64(t.cfg.DispatchOverhead) * t.cyclesPerNs)
	}
}

func (t *Team) execRange(ctx *cpusched.Ctx, lo, hi int) {
	c, b, io, dev := t.rangeCost(lo, hi)
	ctx.Compute(c)
	ctx.Memory(b)
	if io > 0 {
		ctx.BlockOn(t.device(dev), io)
	}
}
