package omprt

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/parmodel"
	"repro/internal/sim"
)

func newSched() *cpusched.Scheduler {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest) // 4 cpus, 3 GHz
	opt := cpusched.Defaults()
	opt.MigrationCost = 0
	return cpusched.New(eng, topo, opt)
}

func uniform(cycles float64) func(int) parmodel.Cost {
	return func(int) parmodel.Cost { return parmodel.Cost{Cycles: cycles} }
}

// runBody executes body under the given strategy/config and returns the
// wall time.
func runBody(t *testing.T, s *cpusched.Scheduler, strat mitigate.Strategy, cfg Config, body parmodel.Body) sim.Time {
	t.Helper()
	plan := mitigate.MustApply(strat, s.Topology())
	team := Start(s, plan, cfg, body)
	s.Engine().RunWhile(func() bool { return !team.Master().Done() })
	end := s.Engine().Now()
	s.Engine().RunUntil(end + sim.Millisecond) // let workers park/exit
	s.Shutdown()
	return end
}

func TestStaticSpeedup(t *testing.T) {
	s := newSched()
	// 120M cycles over 4 threads = 30M cycles each = 10ms at 3 GHz.
	got := runBody(t, s, mitigate.TP, DefaultConfig(), func(m parmodel.Model) {
		m.ParallelFor(4, uniform(30e6))
	})
	if got < 10*sim.Millisecond || got > 11*sim.Millisecond {
		t.Fatalf("4-thread static region took %v, want ~10ms", got)
	}
}

func TestWorkConservation(t *testing.T) {
	for _, schedKind := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 3} {
			s := newSched()
			const n = 97
			seen := make([]int, n)
			cfg := DefaultConfig()
			cfg.Schedule = schedKind
			cfg.Chunk = chunk
			runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
				m.ParallelFor(n, func(i int) parmodel.Cost {
					seen[i]++
					return parmodel.Cost{Cycles: 1e5}
				})
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("%v chunk=%d: unit %d executed %d times", schedKind, chunk, i, c)
				}
			}
		}
	}
}

func TestMultipleRegions(t *testing.T) {
	s := newSched()
	regions := 0
	runBody(t, s, mitigate.TP, DefaultConfig(), func(m parmodel.Model) {
		for r := 0; r < 10; r++ {
			m.ParallelFor(8, uniform(3e5))
			regions++
		}
		m.MasterCompute(3e6)
	})
	if regions != 10 {
		t.Fatalf("regions = %d", regions)
	}
}

func TestStaticStragglerSensitivity(t *testing.T) {
	// A 50ms FIFO noise burst on one pinned CPU delays a static region by
	// the full 50ms (straggler holds the end barrier).
	run := func(noise bool) sim.Time {
		s := newSched()
		if noise {
			s.Engine().At(2*sim.Millisecond, func() {
				s.Spawn(cpusched.TaskSpec{
					Name: "noise", Kind: cpusched.KindNoiseThread,
					Policy: cpusched.PolicyFIFO, RTPrio: 50,
					Affinity: machine.SetOf(3),
				}, func(c *cpusched.Ctx) { c.ComputeDur(50 * sim.Millisecond) })
			})
		}
		return runBody(t, s, mitigate.TP, DefaultConfig(), func(m parmodel.Model) {
			m.ParallelFor(4, uniform(60e6)) // 20ms/thread
		})
	}
	clean := run(false)
	noisy := run(true)
	delta := noisy - clean
	if delta < 45*sim.Millisecond || delta > 55*sim.Millisecond {
		t.Fatalf("static straggler delta = %v, want ~50ms", delta)
	}
}

func TestDynamicAbsorbsStraggler(t *testing.T) {
	// The same noise under a fine-grained dynamic schedule is mostly
	// absorbed: the delayed thread just claims fewer chunks.
	run := func(schedKind Schedule) sim.Time {
		s := newSched()
		s.Engine().At(2*sim.Millisecond, func() {
			s.Spawn(cpusched.TaskSpec{
				Name: "noise", Kind: cpusched.KindNoiseThread,
				Policy: cpusched.PolicyFIFO, RTPrio: 50,
				Affinity: machine.SetOf(3),
			}, func(c *cpusched.Ctx) { c.ComputeDur(50 * sim.Millisecond) })
		})
		cfg := DefaultConfig()
		cfg.Schedule = schedKind
		cfg.Chunk = 1
		return runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
			m.ParallelFor(400, uniform(6e5)) // 80ms of work in 0.2ms units
		})
	}
	static := run(Static)
	dynamic := run(Dynamic)
	if dynamic >= static {
		t.Fatalf("dynamic (%v) should absorb noise better than static round-robin (%v)", dynamic, static)
	}
}

func TestSingleThreadPlan(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	s := cpusched.New(eng, topo, cpusched.Defaults())
	plan := &mitigate.Plan{Strategy: mitigate.TP, Threads: 1,
		Allowed: machine.SetOf(0), PinCPUOf: []int{0}}
	team := Start(s, plan, DefaultConfig(), func(m parmodel.Model) {
		if m.Threads() != 1 {
			t.Error("Threads() != 1")
		}
		m.ParallelFor(10, uniform(3e6)) // 10ms serial
	})
	eng.RunWhile(func() bool { return !team.Master().Done() })
	if now := eng.Now(); now < 10*sim.Millisecond || now > 11*sim.Millisecond {
		t.Fatalf("single-thread region took %v", now)
	}
	s.Shutdown()
}

func TestWorkersExitAfterBody(t *testing.T) {
	s := newSched()
	plan := mitigate.MustApply(mitigate.TP, s.Topology())
	team := Start(s, plan, DefaultConfig(), func(m parmodel.Model) {
		m.ParallelFor(4, uniform(3e6))
	})
	s.Engine().Run()
	if !team.Master().Done() {
		t.Fatal("master not done")
	}
	for _, w := range team.workers {
		if !w.Done() {
			t.Fatal("worker did not exit after master finished")
		}
	}
	s.Shutdown()
}

func TestMemoryCostsFlowThrough(t *testing.T) {
	s := newSched() // 20 GB/s total, 10 GB/s per core
	got := runBody(t, s, mitigate.TP, DefaultConfig(), func(m parmodel.Model) {
		// 4 threads streaming 50 MB each: 200 MB at 20 GB/s = 10ms.
		m.ParallelFor(4, func(int) parmodel.Cost { return parmodel.Cost{Bytes: 50e6} })
	})
	if got < 10*sim.Millisecond || got > 12*sim.Millisecond {
		t.Fatalf("memory-bound region took %v, want ~10ms", got)
	}
}

func TestCostFactorScales(t *testing.T) {
	base := func(f float64) sim.Time {
		s := newSched()
		cfg := DefaultConfig()
		cfg.CostFactor = f
		return runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
			m.ParallelFor(4, uniform(30e6))
		})
	}
	t1, t2 := base(1.0), base(1.5)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.4 || ratio > 1.6 {
		t.Fatalf("cost factor 1.5 produced ratio %.3f", ratio)
	}
}

func TestGuidedClaimsFewerChunksThanDynamic(t *testing.T) {
	// With an exaggerated dispatch overhead, guided's shrinking chunks
	// (few claims) must beat dynamic chunk=1 (one claim per unit).
	run := func(schedKind Schedule) sim.Time {
		s := newSched()
		cfg := DefaultConfig()
		cfg.Schedule = schedKind
		cfg.Chunk = 1
		cfg.DispatchOverhead = 100 * sim.Microsecond
		return runBody(t, s, mitigate.TP, cfg, func(m parmodel.Model) {
			m.ParallelFor(256, uniform(1e5))
		})
	}
	dynamic := run(Dynamic)
	guided := run(Guided)
	if guided >= dynamic {
		t.Fatalf("guided (%v) should dispatch fewer chunks than dynamic (%v)", guided, dynamic)
	}
}

func TestParseSchedule(t *testing.T) {
	for in, want := range map[string]Schedule{
		"st": Static, "static": Static,
		"dy": Dynamic, "dynamic": Dynamic,
		"gd": Guided, "guided": Guided,
	} {
		got, err := ParseSchedule(in)
		if err != nil || got != want {
			t.Fatalf("ParseSchedule(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSchedule("auto"); err == nil {
		t.Fatal("unknown schedule should error")
	}
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule String() labels wrong")
	}
}

func TestRoamingRegionRuns(t *testing.T) {
	s := newSched()
	got := runBody(t, s, mitigate.Rm, DefaultConfig(), func(m parmodel.Model) {
		m.ParallelFor(4, uniform(30e6))
	})
	if got < 10*sim.Millisecond || got > 12*sim.Millisecond {
		t.Fatalf("roaming region took %v", got)
	}
}
