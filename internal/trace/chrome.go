package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

// Chrome-trace (Trace Event Format) export: events are viewable in
// chrome://tracing or https://ui.perfetto.dev, with one timeline row per
// logical CPU. This is a debugging/inspection aid beyond the paper's text
// formats.

// chromeEvent is one complete ("X") event in the Trace Event Format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeJSON renders the trace's noise events in the Chrome Trace
// Event Format (JSON array), one thread row per CPU.
func WriteChromeJSON(w io.Writer, tr *Trace) error {
	events := make([]chromeEvent, 0, len(tr.Events))
	for _, e := range tr.Events {
		events = append(events, chromeEvent{
			Name: e.Source,
			Cat:  e.Class.String(),
			Ph:   "X",
			TS:   float64(e.Start) / 1e3,
			Dur:  float64(e.Duration) / 1e3,
			PID:  0,
			TID:  e.CPU,
			Args: map[string]string{"class": e.Class.String()},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// TimelineRecorder captures the complete scheduling timeline — workload
// threads, noise threads, injectors, and interrupts — unlike the osnoise
// Tracer, which records only noise. It implements cpusched.Hook and exports
// the Chrome Trace Event Format for visual inspection of a run.
type TimelineRecorder struct {
	events []chromeEvent
	start  sim.Time
}

// NewTimelineRecorder creates a recorder with timestamps relative to start.
func NewTimelineRecorder(start sim.Time) *TimelineRecorder {
	return &TimelineRecorder{start: start}
}

var _ cpusched.Hook = (*TimelineRecorder)(nil)

// TaskRan implements cpusched.Hook.
func (r *TimelineRecorder) TaskRan(cpu int, t *cpusched.Task, start, end sim.Time) {
	r.events = append(r.events, chromeEvent{
		Name: t.Name,
		Cat:  t.Kind.String(),
		Ph:   "X",
		TS:   float64(start-r.start) / 1e3,
		Dur:  float64(end-start) / 1e3,
		PID:  0,
		TID:  cpu,
		Args: map[string]string{
			"source": t.Source,
			"policy": t.Policy().String(),
			"kind":   t.Kind.String(),
		},
	})
}

// IRQRan implements cpusched.Hook.
func (r *TimelineRecorder) IRQRan(cpu int, class cpusched.NoiseClass, source string, start, end sim.Time) {
	r.events = append(r.events, chromeEvent{
		Name: source,
		Cat:  class.String(),
		Ph:   "X",
		TS:   float64(start-r.start) / 1e3,
		Dur:  float64(end-start) / 1e3,
		PID:  0,
		TID:  cpu,
	})
}

// Len returns the number of recorded intervals.
func (r *TimelineRecorder) Len() int { return len(r.events) }

// WriteJSON exports the timeline in the Trace Event Format with per-CPU
// row names.
func (r *TimelineRecorder) WriteJSON(w io.Writer) error {
	out := make([]any, 0, len(r.events)+8)
	// Name the rows "cpu N" via metadata events.
	seen := map[int]bool{}
	for _, e := range r.events {
		if !seen[e.TID] {
			seen[e.TID] = true
			out = append(out, map[string]any{
				"name": "thread_name", "ph": "M", "pid": 0, "tid": e.TID,
				"args": map[string]string{"name": fmt.Sprintf("cpu %d", e.TID)},
			})
		}
	}
	for _, e := range r.events {
		out = append(out, e)
	}
	return json.NewEncoder(w).Encode(out)
}
