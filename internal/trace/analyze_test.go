package trace

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

func analysisTrace() *Trace {
	return &Trace{
		ExecTime: 100 * sim.Millisecond,
		Events: []Event{
			{CPU: 0, Class: cpusched.ClassIRQ, Source: "timer", Start: 10, Duration: 100},
			{CPU: 0, Class: cpusched.ClassThread, Source: "kw", Start: 1000, Duration: 5000},
			{CPU: 1, Class: cpusched.ClassThread, Source: "kw", Start: 2000, Duration: 300},
			{CPU: 1, Class: cpusched.ClassIRQ, Source: "timer", Start: 9000, Duration: 50},
		},
	}
}

func TestFilterAndWindow(t *testing.T) {
	tr := analysisTrace()
	irqs := tr.Filter(func(e Event) bool { return e.Class == cpusched.ClassIRQ })
	if len(irqs.Events) != 2 {
		t.Fatalf("irq filter: %d", len(irqs.Events))
	}
	if irqs.ExecTime != tr.ExecTime {
		t.Fatal("filter should preserve metadata")
	}
	win := tr.Window(1000, 3000)
	if len(win.Events) != 2 {
		t.Fatalf("window: %d events", len(win.Events))
	}
	for _, e := range win.Events {
		if e.Start < 1000 || e.Start >= 3000 {
			t.Fatalf("event outside window: %+v", e)
		}
	}
}

func TestPerCPU(t *testing.T) {
	per := analysisTrace().PerCPU()
	if len(per) != 2 {
		t.Fatalf("cpus: %d", len(per))
	}
	if per[0].CPU != 0 || per[1].CPU != 1 {
		t.Fatal("not ordered by cpu")
	}
	if per[0].Total != 5100 || per[0].Count != 2 {
		t.Fatalf("cpu0: %+v", per[0])
	}
	if per[0].Largest.Source != "kw" {
		t.Fatalf("cpu0 largest: %+v", per[0].Largest)
	}
}

func TestNoiseFraction(t *testing.T) {
	tr := analysisTrace()
	got := tr.NoiseFraction(2)
	want := float64(5450) / (float64(100*sim.Millisecond) * 2)
	if got != want {
		t.Fatalf("fraction = %v, want %v", got, want)
	}
	if (&Trace{}).NoiseFraction(2) != 0 || tr.NoiseFraction(0) != 0 {
		t.Fatal("degenerate fractions should be 0")
	}
}

func TestTopSources(t *testing.T) {
	top := analysisTrace().TopSources(1)
	if len(top) != 1 || top[0].Key.Source != "kw" {
		t.Fatalf("top: %+v", top)
	}
	all := analysisTrace().TopSources(0)
	if len(all) != 2 {
		t.Fatalf("all sources: %d", len(all))
	}
	if all[0].TotalDur < all[1].TotalDur {
		t.Fatal("not sorted descending")
	}
}

func TestOverlaps(t *testing.T) {
	tr := &Trace{Events: []Event{
		{CPU: 0, Source: "a", Start: 0, Duration: 100},
		{CPU: 0, Source: "b", Start: 50, Duration: 100}, // overlaps a
		{CPU: 0, Source: "c", Start: 200, Duration: 10}, // clean
		{CPU: 1, Source: "d", Start: 0, Duration: 100},  // other cpu
	}}
	ov := tr.Overlaps()
	if len(ov) != 1 {
		t.Fatalf("overlaps: %d", len(ov))
	}
	if ov[0][0].Source != "a" || ov[0][1].Source != "b" {
		t.Fatalf("overlap pair: %+v", ov[0])
	}
	if len((&Trace{}).Overlaps()) != 0 {
		t.Fatal("empty trace should have no overlaps")
	}
}
