package trace

// Fuzzing for the Figure-3 text codec and the JSON codec: any input the
// parser accepts must re-encode to a stable fixed point (write → read →
// write yields identical bytes and an identical trace), and the parser
// must never panic on hostile input. Run continuously with
// `make fuzz-smoke` or `go test ./internal/trace -fuzz FuzzTraceCodecRoundTrip`.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// maxRoundTripTime bounds Start/Duration/ExecTime values for the exactness
// check: the text format carries times as floating-point seconds with 9
// decimals, which is lossless only while the nanosecond count fits in a
// float64's 53-bit mantissa. Parsed traces beyond that are still valid,
// they just may normalize once before reaching the fixed point.
const maxRoundTripTime = sim.Time(1) << 50

func exactlyRepresentable(tr *Trace) bool {
	if tr.ExecTime < 0 || tr.ExecTime > maxRoundTripTime {
		return false
	}
	for _, e := range tr.Events {
		if e.Start < 0 || e.Start > maxRoundTripTime {
			return false
		}
		if e.Duration < 0 || e.Duration > maxRoundTripTime {
			return false
		}
	}
	return true
}

func FuzzTraceCodecRoundTrip(f *testing.F) {
	f.Add([]byte("# platform=intel-9700kf workload=nbody model=omp strategy=Rm seed=7 exec=0.450971154\n" +
		"005  irq_noise      local_timer:236   255.045740274    310 ns\n" +
		"010  softirq_noise  RCU:9             255.045742404    140 ns\n" +
		"013  thread_noise   kworker/13:1      256.188747948   3760 ns\n"))
	f.Add([]byte("# platform=p workload=w model=sycl strategy=TPHK2-SMT seed=18446744073709551615 exec=0.000000001\n"))
	f.Add([]byte("000  thread_noise  a  0.0  0 ns\n"))
	f.Add([]byte("#\n#\n# seed=0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only "no panic" is asserted
		}

		// Accepted input must re-encode and re-parse.
		var buf1 bytes.Buffer
		if err := WriteText(&buf1, tr); err != nil {
			t.Fatalf("WriteText on accepted trace: %v", err)
		}
		tr2, err := ReadText(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("reparsing own output: %v\noutput:\n%s", err, buf1.Bytes())
		}

		// Within the exactly-representable range the round trip is an
		// identity; outside it, one write→read must already be the fixed
		// point (a second encode yields identical bytes).
		if exactlyRepresentable(tr) {
			if !reflect.DeepEqual(tr, tr2) {
				t.Fatalf("text round trip changed the trace:\n%#v\nvs\n%#v", tr, tr2)
			}
		}
		var buf2 bytes.Buffer
		if err := WriteText(&buf2, tr2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("text encoding is not a fixed point:\n%s\nvs\n%s", buf1.Bytes(), buf2.Bytes())
		}

		// The JSON codec must round-trip the parsed trace exactly —
		// sim.Time serializes as integer nanoseconds, so no range caveat.
		var jbuf bytes.Buffer
		if err := WriteJSON(&jbuf, tr); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		tr3, err := ReadJSON(&jbuf)
		if err != nil {
			t.Fatalf("ReadJSON: %v", err)
		}
		if !reflect.DeepEqual(tr, tr3) {
			t.Fatalf("JSON round trip changed the trace:\n%#v\nvs\n%#v", tr, tr3)
		}
	})
}
