package trace

import (
	"sort"

	"repro/internal/sim"
)

// Filter returns a copy of the trace containing only events that satisfy
// pred. Metadata is preserved.
func (tr *Trace) Filter(pred func(Event) bool) *Trace {
	out := &Trace{
		Platform: tr.Platform, Workload: tr.Workload, Model: tr.Model,
		Strategy: tr.Strategy, Seed: tr.Seed, ExecTime: tr.ExecTime,
	}
	for _, e := range tr.Events {
		if pred(e) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Window returns a copy containing only events that start within [from,
// to).
func (tr *Trace) Window(from, to sim.Time) *Trace {
	return tr.Filter(func(e Event) bool { return e.Start >= from && e.Start < to })
}

// CPUNoise summarizes one CPU's noise within a trace.
type CPUNoise struct {
	CPU int
	// Total is the summed event duration on this CPU.
	Total sim.Time
	// Count is the number of events.
	Count int
	// Largest is the biggest single event.
	Largest Event
}

// PerCPU aggregates noise per logical CPU, ordered by CPU id.
func (tr *Trace) PerCPU() []CPUNoise {
	m := map[int]*CPUNoise{}
	for _, e := range tr.Events {
		c, ok := m[e.CPU]
		if !ok {
			c = &CPUNoise{CPU: e.CPU}
			m[e.CPU] = c
		}
		c.Total += e.Duration
		c.Count++
		if e.Duration > c.Largest.Duration {
			c.Largest = e
		}
	}
	out := make([]CPUNoise, 0, len(m))
	for _, c := range m {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CPU < out[j].CPU })
	return out
}

// NoiseFraction returns total noise divided by (execution time x CPUs
// observed); a rough machine-level noise utilization. Returns 0 when the
// trace is empty or untimed.
func (tr *Trace) NoiseFraction(ncpus int) float64 {
	if tr.ExecTime <= 0 || ncpus <= 0 {
		return 0
	}
	return float64(tr.TotalNoise()) / (float64(tr.ExecTime) * float64(ncpus))
}

// TopSources returns the n sources with the largest total duration across
// the trace, descending (ties broken by name for determinism).
func (tr *Trace) TopSources(n int) []SourceStats {
	p := BuildProfile([]*Trace{tr})
	out := p.SortedSources()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalDur != out[j].TotalDur {
			return out[i].TotalDur > out[j].TotalDur
		}
		return out[i].Key.Source < out[j].Key.Source
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Overlaps reports pairs of events on the same CPU whose intervals overlap
// — the situation the config generator's merge step must handle (§5.2).
// The trace must be sorted (SortEvents) for complete detection.
func (tr *Trace) Overlaps() [][2]Event {
	byCPU := map[int][]Event{}
	for _, e := range tr.Events {
		byCPU[e.CPU] = append(byCPU[e.CPU], e)
	}
	var out [][2]Event
	var cpus []int
	for cpu := range byCPU {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)
	for _, cpu := range cpus {
		evs := byCPU[cpu]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End() {
				out = append(out, [2]Event{evs[i-1], evs[i]})
			}
		}
	}
	return out
}
