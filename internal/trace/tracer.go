package trace

import (
	"repro/internal/cpusched"
	"repro/internal/sim"
)

// Tracer records scheduler noise events into a Trace. It implements
// cpusched.Hook. Like the osnoise tracer, it records every interrupt and
// every run interval of non-workload threads; workload threads themselves
// are not recorded (our simulated tracer can tell them apart — the paper
// notes the real osnoise tracer cannot, which it works around by
// subtracting averages; the delta-refinement machinery is exercised either
// way because inherent noise varies run to run).
type Tracer struct {
	trace *Trace
	// RecordInjector controls whether replayed injector noise is recorded
	// (off by default; injection runs are normally untraced).
	RecordInjector bool
	// start offsets event timestamps so they are trace-relative.
	start sim.Time
}

// NewTracer creates a tracer whose timestamps are relative to start.
func NewTracer(start sim.Time) *Tracer {
	return &Tracer{trace: &Trace{}, start: start}
}

var _ cpusched.Hook = (*Tracer)(nil)

// TaskRan implements cpusched.Hook: thread noise records.
func (tr *Tracer) TaskRan(cpu int, t *cpusched.Task, start, end sim.Time) {
	switch t.Kind {
	case cpusched.KindNoiseThread, cpusched.KindOS:
	case cpusched.KindInjector:
		if !tr.RecordInjector {
			return
		}
	default:
		return
	}
	tr.trace.Events = append(tr.trace.Events, Event{
		CPU:      cpu,
		Class:    cpusched.ClassThread,
		Source:   t.Source,
		Start:    start - tr.start,
		Duration: end - start,
	})
}

// IRQRan implements cpusched.Hook: irq and softirq records.
func (tr *Tracer) IRQRan(cpu int, class cpusched.NoiseClass, source string, start, end sim.Time) {
	tr.trace.Events = append(tr.trace.Events, Event{
		CPU:      cpu,
		Class:    class,
		Source:   source,
		Start:    start - tr.start,
		Duration: end - start,
	})
}

// Finish stamps the execution time and labels, and returns the trace.
func (tr *Tracer) Finish(execTime sim.Time, platform, workload, model, strategy string, seed uint64) *Trace {
	t := tr.trace
	t.ExecTime = execTime
	t.Platform = platform
	t.Workload = workload
	t.Model = model
	t.Strategy = strategy
	t.Seed = seed
	t.SortEvents()
	return t
}

// Trace returns the trace recorded so far (unsorted, unlabelled).
func (tr *Tracer) Trace() *Trace { return tr.trace }

// Detach hands ownership of the recorded trace to the caller and re-arms
// the tracer with a fresh buffer sized to the run just recorded, so a
// reused tracer appends into right-sized storage instead of re-growing
// from zero (event storage must escape with the result either way; sizing
// the next buffer from the last run eliminates the growth-chain reallocs
// and copies, which dominated per-rep allocation). The new buffer carries
// the old one's capacity, not its length: event counts vary a little from
// rep to rep, and sizing to the previous length made every
// slightly-longer rep pay one full-buffer realloc and copy. Call it after
// Finish — and after any post-run shutdown records the caller wants
// included.
func (tr *Tracer) Detach() *Trace {
	t := tr.trace
	tr.trace = &Trace{Events: make([]Event, 0, cap(t.Events))}
	return t
}
