package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestWriteChromeJSON(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(events), len(tr.Events))
	}
	e := events[0]
	if e["ph"] != "X" || e["name"] != "local_timer:236" {
		t.Fatalf("first event: %+v", e)
	}
	// Timestamps are microseconds.
	if ts := e["ts"].(float64); ts != float64(tr.Events[0].Start)/1e3 {
		t.Fatalf("ts = %v", ts)
	}
}

func TestTimelineRecorderCapturesEverything(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.TraceOverhead = 0
	s := cpusched.New(eng, topo, opt)
	rec := NewTimelineRecorder(0)
	s.SetTracer(rec)
	w := s.Spawn(cpusched.TaskSpec{Name: "w", Affinity: machine.SetOf(0)},
		func(c *cpusched.Ctx) { c.Compute(30e6) })
	s.Spawn(cpusched.TaskSpec{
		Name: "kw", Kind: cpusched.KindNoiseThread,
		Policy: cpusched.PolicyFIFO, RTPrio: 1, Affinity: machine.SetOf(0),
	}, func(c *cpusched.Ctx) { c.Compute(3e6) })
	eng.At(2*sim.Millisecond, func() {
		s.InjectIRQ(0, cpusched.ClassIRQ, "timer", 100*sim.Microsecond)
	})
	eng.RunWhile(func() bool { return !w.Done() })
	s.Shutdown()

	if rec.Len() < 3 {
		t.Fatalf("timeline too sparse: %d intervals", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("timeline JSON invalid: %v", err)
	}
	// Unlike the osnoise tracer, the WORKLOAD intervals are present too.
	var sawWorkload, sawNoise, sawIRQ, sawMeta bool
	for _, e := range out {
		switch e["cat"] {
		case "workload":
			sawWorkload = true
		case "noise":
			sawNoise = true
		case "irq_noise":
			sawIRQ = true
		}
		if e["ph"] == "M" {
			sawMeta = true
		}
	}
	if !sawWorkload || !sawNoise || !sawIRQ || !sawMeta {
		t.Fatalf("timeline missing categories: workload=%v noise=%v irq=%v meta=%v",
			sawWorkload, sawNoise, sawIRQ, sawMeta)
	}
}
