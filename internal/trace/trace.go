// Package trace implements an osnoise-style system tracer and trace model:
// per-CPU records of interrupt, soft-interrupt, and thread noise with start
// timestamps and durations (the paper's Figure 3), a text codec mirroring
// that figure, a JSON codec, and the per-source statistics the noise
// injector's configuration generator consumes (average frequency and
// duration per unique noise source, worst-case selection).
package trace

import (
	"fmt"
	"sort"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

// Event is one noise occurrence on one logical CPU.
type Event struct {
	// CPU is the logical CPU the event occurred on.
	CPU int `json:"cpu"`
	// Class is irq_noise, softirq_noise or thread_noise.
	Class cpusched.NoiseClass `json:"class"`
	// Source identifies the responsible entity, e.g. "local_timer:236" or
	// "kworker/13:1".
	Source string `json:"source"`
	// Start is the event start, relative to the beginning of the trace.
	Start sim.Time `json:"start"`
	// Duration is how long the event occupied the CPU.
	Duration sim.Time `json:"duration"`
}

// End returns the event's end time.
func (e Event) End() sim.Time { return e.Start + e.Duration }

// Trace is the recording of one workload execution.
type Trace struct {
	// Platform, Workload, Model and Strategy label the execution
	// configuration the trace was collected under.
	Platform string `json:"platform"`
	Workload string `json:"workload"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	// Seed reproduces the run.
	Seed uint64 `json:"seed"`
	// ExecTime is the workload's execution time in this run.
	ExecTime sim.Time `json:"exec_time"`
	// Events are the recorded noise occurrences, in completion order.
	Events []Event `json:"events"`
}

// TotalNoise returns the summed duration of all events.
func (tr *Trace) TotalNoise() sim.Time {
	var total sim.Time
	for _, e := range tr.Events {
		total += e.Duration
	}
	return total
}

// SortEvents orders events by start time (then CPU) in place, the order the
// text format uses.
func (tr *Trace) SortEvents() {
	sort.SliceStable(tr.Events, func(i, j int) bool {
		if tr.Events[i].Start != tr.Events[j].Start {
			return tr.Events[i].Start < tr.Events[j].Start
		}
		return tr.Events[i].CPU < tr.Events[j].CPU
	})
}

// SourceKey identifies a unique noise origin: the pair (class, source), as
// used by the paper's per-task averaging.
type SourceKey struct {
	Class  cpusched.NoiseClass
	Source string
}

func (k SourceKey) String() string { return fmt.Sprintf("%v/%s", k.Class, k.Source) }

// SourceStats aggregates one noise source across one or more traces.
type SourceStats struct {
	Key SourceKey
	// Count is total occurrences across the aggregated traces.
	Count int
	// TotalDur is the summed duration across the aggregated traces.
	TotalDur sim.Time
	// Traces is how many traces the aggregate covers.
	Traces int
}

// MeanDur returns the average duration of one occurrence.
func (s SourceStats) MeanDur() sim.Time {
	if s.Count == 0 {
		return 0
	}
	return s.TotalDur / sim.Time(s.Count)
}

// MeanCountPerTrace returns the average number of occurrences per trace.
func (s SourceStats) MeanCountPerTrace() float64 {
	if s.Traces == 0 {
		return 0
	}
	return float64(s.Count) / float64(s.Traces)
}

// Profile is the "average system noise" baseline of §4.2: per-source mean
// frequency and duration across a set of traces.
type Profile struct {
	// Sources maps each unique noise origin to its aggregate stats.
	Sources map[SourceKey]SourceStats
	// Traces is the number of traces aggregated.
	Traces int
	// MeanExec is the average workload execution time.
	MeanExec sim.Time
}

// BuildProfile aggregates per-source statistics over traces. It represents
// the inherent system noise baseline that the refinement step subtracts
// from the worst-case trace.
func BuildProfile(traces []*Trace) *Profile {
	p := &Profile{Sources: make(map[SourceKey]SourceStats), Traces: len(traces)}
	var execSum sim.Time
	for _, tr := range traces {
		execSum += tr.ExecTime
		for _, e := range tr.Events {
			k := SourceKey{Class: e.Class, Source: e.Source}
			s := p.Sources[k]
			s.Key = k
			s.Count++
			s.TotalDur += e.Duration
			s.Traces = len(traces)
			p.Sources[k] = s
		}
	}
	if len(traces) > 0 {
		p.MeanExec = execSum / sim.Time(len(traces))
	}
	return p
}

// SortedSources returns the profile's sources in deterministic order
// (by class, then source name).
func (p *Profile) SortedSources() []SourceStats {
	out := make([]SourceStats, 0, len(p.Sources))
	for _, s := range p.Sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Class != out[j].Key.Class {
			return out[i].Key.Class < out[j].Key.Class
		}
		return out[i].Key.Source < out[j].Key.Source
	})
	return out
}

// WorstCase returns the trace with the longest execution time, its index,
// and an error when traces is empty. Ties break to the earliest trace, which
// keeps trace selection deterministic.
func WorstCase(traces []*Trace) (*Trace, int, error) {
	if len(traces) == 0 {
		return nil, -1, fmt.Errorf("trace: WorstCase of empty trace set")
	}
	best := 0
	for i, tr := range traces {
		if tr.ExecTime > traces[best].ExecTime {
			best = i
		}
	}
	return traces[best], best, nil
}

// BestCase returns the trace with the shortest execution time.
func BestCase(traces []*Trace) (*Trace, int, error) {
	if len(traces) == 0 {
		return nil, -1, fmt.Errorf("trace: BestCase of empty trace set")
	}
	best := 0
	for i, tr := range traces {
		if tr.ExecTime < traces[best].ExecTime {
			best = i
		}
	}
	return traces[best], best, nil
}

// ExecTimes extracts the execution time series from a trace set.
func ExecTimes(traces []*Trace) []sim.Time {
	out := make([]sim.Time, len(traces))
	for i, tr := range traces {
		out[i] = tr.ExecTime
	}
	return out
}
