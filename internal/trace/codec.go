package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

// The text format mirrors the paper's Figure 3:
//
//	# platform=intel-9700kf workload=nbody model=omp strategy=Rm seed=7 exec=0.450971154
//	005  irq_noise      local_timer:236   255.045740274    310 ns
//	010  softirq_noise  RCU:9             255.045742404    140 ns
//	013  thread_noise   kworker/13:1      256.188747948   3760 ns
//
// Start times are seconds with nanosecond resolution; durations are integer
// nanoseconds.

// WriteText renders the trace in the Figure-3 text format.
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	_, err := fmt.Fprintf(bw, "# platform=%s workload=%s model=%s strategy=%s seed=%d exec=%.9f\n",
		tr.Platform, tr.Workload, tr.Model, tr.Strategy, tr.Seed, tr.ExecTime.Seconds())
	if err != nil {
		return err
	}
	for _, e := range tr.Events {
		_, err := fmt.Fprintf(bw, "%03d  %-13s  %-20s  %.9f  %6d ns\n",
			e.CPU, e.Class, e.Source, e.Start.Seconds(), int64(e.Duration))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Text renders the trace as a string in the Figure-3 format.
func Text(tr *Trace) string {
	var b strings.Builder
	if err := WriteText(&b, tr); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

func parseClass(s string) (cpusched.NoiseClass, error) {
	switch s {
	case "irq_noise":
		return cpusched.ClassIRQ, nil
	case "softirq_noise":
		return cpusched.ClassSoftIRQ, nil
	case "thread_noise":
		return cpusched.ClassThread, nil
	default:
		return 0, fmt.Errorf("trace: unknown event class %q", s)
	}
}

// ReadText parses a trace in the Figure-3 text format.
func ReadText(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !utf8.ValidString(line) {
			// The tracer only emits ASCII labels; rejecting invalid UTF-8
			// keeps every accepted trace representable in the JSON codec,
			// which would otherwise mangle such bytes into U+FFFD.
			return nil, fmt.Errorf("trace: line %d: invalid UTF-8", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(line, tr); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 6 || fields[5] != "ns" {
			return nil, fmt.Errorf("trace: line %d: malformed event %q", lineNo, line)
		}
		cpu, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cpu: %w", lineNo, err)
		}
		class, err := parseClass(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		startSec, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start: %w", lineNo, err)
		}
		durNs, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad duration: %w", lineNo, err)
		}
		tr.Events = append(tr.Events, Event{
			CPU:      cpu,
			Class:    class,
			Source:   fields[2],
			Start:    sim.Time(startSec*1e9 + 0.5),
			Duration: sim.Time(durNs),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func parseHeader(line string, tr *Trace) error {
	for _, kv := range strings.Fields(strings.TrimPrefix(line, "#")) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad header field %q", kv)
		}
		switch k {
		case "platform":
			tr.Platform = v
		case "workload":
			tr.Workload = v
		case "model":
			tr.Model = v
		case "strategy":
			tr.Strategy = v
		case "seed":
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed: %w", err)
			}
			tr.Seed = seed
		case "exec":
			sec, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad exec: %w", err)
			}
			tr.ExecTime = sim.Time(sec*1e9 + 0.5)
		default:
			return fmt.Errorf("unknown header field %q", k)
		}
	}
	return nil
}

// MarshalJSON for NoiseClass-bearing events is handled by the enum's integer
// value plus a readable duplicate; for interchange we keep it simple and
// write the integer. WriteJSON/ReadJSON round-trip a whole trace.

// WriteJSON writes the trace as JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// ReadJSON parses a JSON trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(tr); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return tr, nil
}
