package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{
		Platform: "intel-9700kf",
		Workload: "nbody",
		Model:    "omp",
		Strategy: "Rm",
		Seed:     42,
		ExecTime: 450971154,
		Events: []Event{
			{CPU: 5, Class: cpusched.ClassIRQ, Source: "local_timer:236", Start: 45740274, Duration: 310},
			{CPU: 10, Class: cpusched.ClassSoftIRQ, Source: "RCU:9", Start: 45742404, Duration: 140},
			{CPU: 25, Class: cpusched.ClassSoftIRQ, Source: "SCHED:7", Start: 45742554, Duration: 690},
			{CPU: 13, Class: cpusched.ClassThread, Source: "kworker/13:1", Start: 188747948, Duration: 3760},
		},
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	text := Text(tr)
	got, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if got.Platform != tr.Platform || got.Workload != tr.Workload ||
		got.Model != tr.Model || got.Strategy != tr.Strategy || got.Seed != tr.Seed {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.ExecTime != tr.ExecTime {
		t.Fatalf("exec time %v != %v", got.ExecTime, tr.ExecTime)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestTextFormatLooksLikeFigure3(t *testing.T) {
	text := Text(sampleTrace())
	for _, want := range []string{"irq_noise", "softirq_noise", "thread_noise",
		"local_timer:236", "kworker/13:1", "ns"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text format missing %q:\n%s", want, text)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.ExecTime != tr.ExecTime || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	bad := []string{
		"005 irq_noise local_timer 1.0",          // too few fields
		"abc irq_noise local_timer 1.0 310 ns",   // bad cpu
		"005 weird_noise local_timer 1.0 310 ns", // bad class
		"005 irq_noise local_timer x 310 ns",     // bad start
		"005 irq_noise local_timer 1.0 x ns",     // bad duration
		"005 irq_noise local_timer 1.0 310 us",   // wrong unit
		"# seed=abc",                             // bad seed
		"# exec=xyz",                             // bad exec
		"# unknown=1",                            // unknown field
		"# noequals",                             // malformed header
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Errorf("ReadText(%q) should fail", line)
		}
	}
}

func TestReadTextSkipsBlankLines(t *testing.T) {
	text := "\n\n005  irq_noise  x  0.000000001  10 ns\n\n"
	tr, err := ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("got %d events", len(tr.Events))
	}
}

func TestTotalNoise(t *testing.T) {
	tr := sampleTrace()
	if got := tr.TotalNoise(); got != 310+140+690+3760 {
		t.Fatalf("TotalNoise = %v", got)
	}
}

func TestSortEvents(t *testing.T) {
	tr := &Trace{Events: []Event{
		{CPU: 1, Start: 30},
		{CPU: 2, Start: 10},
		{CPU: 0, Start: 10},
		{CPU: 3, Start: 20},
	}}
	tr.SortEvents()
	wantOrder := []int{0, 2, 3, 1}
	for i, cpu := range wantOrder {
		if tr.Events[i].CPU != cpu {
			t.Fatalf("sorted order wrong at %d: %+v", i, tr.Events)
		}
	}
}

func TestBuildProfile(t *testing.T) {
	t1 := &Trace{ExecTime: 100, Events: []Event{
		{Class: cpusched.ClassIRQ, Source: "timer", Duration: 100},
		{Class: cpusched.ClassIRQ, Source: "timer", Duration: 300},
		{Class: cpusched.ClassThread, Source: "kw", Duration: 1000},
	}}
	t2 := &Trace{ExecTime: 200, Events: []Event{
		{Class: cpusched.ClassIRQ, Source: "timer", Duration: 200},
	}}
	p := BuildProfile([]*Trace{t1, t2})
	if p.Traces != 2 {
		t.Fatalf("Traces = %d", p.Traces)
	}
	if p.MeanExec != 150 {
		t.Fatalf("MeanExec = %v", p.MeanExec)
	}
	timer := p.Sources[SourceKey{Class: cpusched.ClassIRQ, Source: "timer"}]
	if timer.Count != 3 || timer.MeanDur() != 200 {
		t.Fatalf("timer stats: %+v", timer)
	}
	if got := timer.MeanCountPerTrace(); got != 1.5 {
		t.Fatalf("timer freq = %v", got)
	}
	kw := p.Sources[SourceKey{Class: cpusched.ClassThread, Source: "kw"}]
	if kw.Count != 1 || kw.MeanDur() != 1000 {
		t.Fatalf("kworker stats: %+v", kw)
	}
}

func TestBuildProfileEmpty(t *testing.T) {
	p := BuildProfile(nil)
	if p.Traces != 0 || p.MeanExec != 0 || len(p.Sources) != 0 {
		t.Fatalf("empty profile: %+v", p)
	}
	var z SourceStats
	if z.MeanDur() != 0 || z.MeanCountPerTrace() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestSortedSourcesDeterministic(t *testing.T) {
	p := BuildProfile([]*Trace{{Events: []Event{
		{Class: cpusched.ClassThread, Source: "b"},
		{Class: cpusched.ClassIRQ, Source: "z"},
		{Class: cpusched.ClassIRQ, Source: "a"},
		{Class: cpusched.ClassSoftIRQ, Source: "m"},
	}}})
	got := p.SortedSources()
	want := []SourceKey{
		{cpusched.ClassIRQ, "a"},
		{cpusched.ClassIRQ, "z"},
		{cpusched.ClassSoftIRQ, "m"},
		{cpusched.ClassThread, "b"},
	}
	for i := range want {
		if got[i].Key != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, got[i].Key, want[i])
		}
	}
}

func TestWorstBestCase(t *testing.T) {
	traces := []*Trace{{ExecTime: 100}, {ExecTime: 300}, {ExecTime: 200}, {ExecTime: 300}}
	w, wi, err := WorstCase(traces)
	if err != nil || wi != 1 || w.ExecTime != 300 {
		t.Fatalf("WorstCase = %v %d %v (tie must break to earliest)", w, wi, err)
	}
	b, bi, err := BestCase(traces)
	if err != nil || bi != 0 || b.ExecTime != 100 {
		t.Fatalf("BestCase = %v %d %v", b, bi, err)
	}
	if _, _, err := WorstCase(nil); err == nil {
		t.Fatal("WorstCase(nil) should error")
	}
	if _, _, err := BestCase(nil); err == nil {
		t.Fatal("BestCase(nil) should error")
	}
}

func TestExecTimes(t *testing.T) {
	traces := []*Trace{{ExecTime: 1}, {ExecTime: 2}}
	got := ExecTimes(traces)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ExecTimes = %v", got)
	}
}

// TestTracerRecordsSchedulerNoise wires a Tracer into a live scheduler and
// checks the recorded events match what happened.
func TestTracerRecordsSchedulerNoise(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.BalanceInterval = 0
	opt.TraceOverhead = 0
	s := cpusched.New(eng, topo, opt)
	tracer := NewTracer(0)
	s.SetTracer(tracer)

	aff := machine.SetOf(0)
	w := s.Spawn(cpusched.TaskSpec{Name: "w", Affinity: aff}, func(c *cpusched.Ctx) {
		c.Compute(30e6) // 10ms at 3GHz
	})
	eng.At(sim.Millisecond, func() {
		s.Spawn(cpusched.TaskSpec{
			Name: "kw", Source: "kworker/0:1", Kind: cpusched.KindNoiseThread,
			Policy: cpusched.PolicyFIFO, RTPrio: 1, Affinity: aff,
		}, func(c *cpusched.Ctx) { c.Compute(3e6) }) // 1ms
	})
	eng.At(5*sim.Millisecond, func() {
		s.InjectIRQ(0, cpusched.ClassIRQ, "local_timer:236", 200*sim.Microsecond)
	})
	eng.RunWhile(func() bool { return !w.Done() })
	tr := tracer.Finish(eng.Now(), "tiny", "test", "omp", "Rm", 1)
	s.Shutdown()

	if len(tr.Events) != 2 {
		t.Fatalf("recorded %d events, want 2: %+v", len(tr.Events), tr.Events)
	}
	kw, irq := tr.Events[0], tr.Events[1]
	if kw.Class != cpusched.ClassThread || kw.Source != "kworker/0:1" {
		t.Fatalf("first event: %+v", kw)
	}
	if kw.Start != sim.Millisecond || kw.Duration != sim.Millisecond {
		t.Fatalf("kworker interval: %+v", kw)
	}
	if irq.Class != cpusched.ClassIRQ || irq.Duration != 200*sim.Microsecond {
		t.Fatalf("irq event: %+v", irq)
	}
	if tr.ExecTime != eng.Now() {
		t.Fatal("exec time not stamped")
	}
}

func TestTracerInjectorFiltering(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.BalanceInterval = 0
	s := cpusched.New(eng, topo, opt)
	tracer := NewTracer(0)
	s.SetTracer(tracer)
	inj := s.Spawn(cpusched.TaskSpec{
		Name: "inj", Kind: cpusched.KindInjector, Affinity: machine.SetOf(0),
	}, func(c *cpusched.Ctx) { c.Compute(3e6) })
	eng.RunWhile(func() bool { return !inj.Done() })
	s.Shutdown()
	if len(tracer.Trace().Events) != 0 {
		t.Fatal("injector noise should not be recorded by default")
	}
}

// Property: text round trip preserves arbitrary well-formed events.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(cpus []uint8, durs []uint32) bool {
		n := len(cpus)
		if len(durs) < n {
			n = len(durs)
		}
		tr := &Trace{Platform: "p", Workload: "w", Model: "m", Strategy: "s"}
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, Event{
				CPU:      int(cpus[i]),
				Class:    cpusched.NoiseClass(i % 3),
				Source:   "src:1",
				Start:    sim.Time(i) * 1000,
				Duration: sim.Time(durs[i]%1e6) + 1,
			})
		}
		got, err := ReadText(strings.NewReader(Text(tr)))
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
