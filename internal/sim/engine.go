package sim

import "fmt"

// Timer is a scheduled callback. It can be cancelled before it fires.
//
// Timer structs are pooled: once a timer has fired (or been cancelled and
// then popped) the engine may recycle it for a later At/After call. A
// handle therefore must not be retained past its callback — holders that
// store a *Timer must clear or reassign the reference when the callback
// runs, which every in-tree holder does as the first statement of its
// callback. Cancel and Pending on a handle whose timer already fired
// remain safe no-ops only until the struct is reused.
type Timer struct {
	at     Time
	seq    uint64
	fn     func()
	queued bool
	zombie bool
	eng    *Engine
}

// At returns the simulated instant the timer fires at.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer from firing. Cancellation is lazy: the entry
// stays in the queue as a zombie and is discarded (without firing) when it
// reaches the head, which makes Cancel O(1) where an eager removal paid a
// search plus a window shift — the cancel-heavy refresh path (interrupt
// arrivals pausing a running task's completion timer) is why. Cancelling
// an already-fired or already-cancelled timer is a no-op. It reports
// whether the timer was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || !t.queued || t.zombie {
		return false
	}
	t.zombie = true
	t.eng.zombies++
	return true
}

// Pending reports whether the timer is scheduled and not cancelled.
func (t *Timer) Pending() bool { return t != nil && t.queued && !t.zombie }

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same instant fire in scheduling order, which keeps runs deterministic.
//
// The event queue is a sorted deque: events live in ascending (time,
// scheduling sequence) order in the window [head, tail) of a backing array
// with slack at both ends. Popping the minimum is a head increment; an
// insert searches its position (a short scan from the head, then binary)
// and shifts whichever side of the window is shorter; a cancel marks its
// entry a zombie that the pop path discards. The measured queue stays
// small (tens of events for a single node, ~100 for a cluster), and the
// dominant insert patterns — an interrupt-end event that is or is nearly
// the new minimum, a periodic loop's next tick that is the new maximum —
// land at or next to the window's edges and shift little or nothing, which
// makes this measurably faster than the former 4-ary heap: the heap paid a
// sift (with data-dependent branches) on every pop and an eager removal on
// every cancel. The keys live in a struct-of-arrays slice parallel to the
// timers so searches and shifts touch packed (at, seq) pairs.
type Engine struct {
	now  Time
	keys []timerKey // ascending in [head, tail); index-parallel to evs
	evs  []*Timer
	head int
	tail int
	free []*Timer // recycled Timer structs, so steady-state event flow does not allocate
	seq  uint64
	// zombies counts cancelled entries still occupying queue slots; they
	// are discarded when popped. Pending subtracts them, so the live count
	// stays exact.
	zombies int
	// Steps counts processed events, for diagnostics and runaway detection
	// in tests.
	Steps uint64
	// TimerAllocs counts Timer structs allocated because the free pool was
	// empty — the engine-side "copy on first write" count of a forked rep.
	// A warm engine runs a rep without growing it.
	TimerAllocs uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at simulated time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	var tm *Timer
	if n := len(e.free); n > 0 {
		tm = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		tm = &Timer{eng: e}
		e.TimerAllocs++
	}
	tm.at, tm.seq, tm.fn = t, e.seq, fn
	e.push(tm)
	return tm
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Pending returns the number of live (scheduled, uncancelled) events.
// Cancelled entries still occupying queue slots are subtracted, so this is
// an exact count, never an overcount.
func (e *Engine) Pending() int { return e.tail - e.head - e.zombies }

// Stats is a snapshot of engine-level counters, feeding the observability
// registry (internal/obs) at end of run.
type Stats struct {
	// Steps is the number of events processed so far.
	Steps uint64
	// Pending is the live event-queue depth.
	Pending int
	// FreeTimers is the recycled-Timer pool size — how deep the event flow
	// ran without allocating.
	FreeTimers int
	// TimerAllocs is the number of Timer structs allocated because the free
	// pool was empty (pool misses since engine construction).
	TimerAllocs uint64
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{Steps: e.Steps, Pending: e.Pending(), FreeTimers: len(e.free),
		TimerAllocs: e.TimerAllocs}
}

// Snapshot captures the engine's position — clock, scheduling sequence, and
// step count — so a later Fork can rewind to it. Only quiescent positions
// (no pending events) are forkable: a pending callback closes over
// simulation state the snapshot cannot reproduce, so Fork from a
// non-quiescent snapshot panics.
type Snapshot struct {
	now     Time
	seq     uint64
	steps   uint64
	pending int
}

// Snapshot records the engine's current position.
func (e *Engine) Snapshot() Snapshot {
	return Snapshot{now: e.now, seq: e.seq, steps: e.Steps, pending: e.Pending()}
}

// Fork rewinds the engine to a quiescent snapshot: every pending timer is
// cancelled wholesale (the structs return to the free pool, so the next
// rep's event flow starts warm and allocation-free), and the clock,
// sequence counter, and step counter are restored. Holders of *Timer
// handles must drop them — the structs are recycled.
func (e *Engine) Fork(s Snapshot) {
	if s.pending != 0 {
		panic("sim: Fork from a snapshot with pending events")
	}
	for i := e.head; i < e.tail; i++ {
		tm := e.evs[i]
		tm.fn = nil
		tm.queued, tm.zombie = false, false
		e.free = append(e.free, tm)
		e.evs[i] = nil
	}
	e.head, e.tail, e.zombies = len(e.evs)/2, len(e.evs)/2, 0
	e.now, e.seq, e.Steps = s.now, s.seq, s.steps
}

// release returns a fired or discarded timer to the free list.
func (e *Engine) release(tm *Timer) {
	tm.fn = nil
	tm.queued, tm.zombie = false, false
	e.free = append(e.free, tm)
}

// Step processes the next event. It reports false when the queue is empty.
// Cancelled entries reaching the head are discarded without firing (and
// without counting as a step).
func (e *Engine) Step() bool {
	for e.head != e.tail {
		tm := e.popMin()
		if tm.zombie {
			e.zombies--
			e.release(tm)
			continue
		}
		e.now = tm.at
		e.Steps++
		tm.fn()
		e.release(tm)
		return true
	}
	return false
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock to
// t (even if no event fired exactly at t). The deadline check and the pop
// are a single queue-head inspection per event, not a peek-then-pop pair.
func (e *Engine) RunUntil(t Time) {
	for e.head != e.tail && e.keys[e.head].at <= t {
		tm := e.popMin()
		if tm.zombie {
			e.zombies--
			e.release(tm)
			continue
		}
		e.now = tm.at
		e.Steps++
		tm.fn()
		e.release(tm)
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile processes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// ---- sorted-deque event queue ----

// timerKey is the queue ordering key, stored struct-of-arrays style in
// Engine.keys so searches and shifts touch packed memory instead of Timer
// pointers.
type timerKey struct {
	at  Time
	seq uint64
}

func keyLess(a, b timerKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(tm *Timer) {
	key := timerKey{at: tm.at, seq: tm.seq}
	tm.queued = true
	if e.tail == len(e.keys) {
		// Pops only ever advance head, so a long-lived window drifts right;
		// slide it back to the middle (or grow when genuinely full) so the
		// append-at-tail fast path below stays open.
		if e.head == 0 {
			e.grow()
		} else {
			e.recenter()
		}
	}
	// Fast paths first: the new maximum appends at the tail, the new
	// minimum prepends at the head. Between them, shift whichever side of
	// the insertion point is shorter.
	switch {
	case e.head == e.tail || !keyLess(key, e.keys[e.tail-1]):
		e.keys[e.tail], e.evs[e.tail] = key, tm
		e.tail++
	case e.head > 0 && keyLess(key, e.keys[e.head]):
		e.head--
		e.keys[e.head], e.evs[e.head] = key, tm
	default:
		p := e.searchNearHead(key)
		if left, right := p-e.head, e.tail-p; e.head > 0 && left <= right {
			copy(e.keys[e.head-1:p-1], e.keys[e.head:p])
			copy(e.evs[e.head-1:p-1], e.evs[e.head:p])
			e.head--
			p--
		} else {
			copy(e.keys[p+1:e.tail+1], e.keys[p:e.tail])
			copy(e.evs[p+1:e.tail+1], e.evs[p:e.tail])
			e.tail++
		}
		e.keys[p], e.evs[p] = key, tm
	}
}

// grow reallocates the backing arrays (doubling, minimum 64 slots) and
// re-centers the window so both ends regain slack.
func (e *Engine) grow() {
	n := e.tail - e.head
	newCap := 2 * len(e.keys)
	if newCap < 64 {
		newCap = 64
	}
	keys := make([]timerKey, newCap)
	evs := make([]*Timer, newCap)
	head := (newCap - n) / 2
	copy(keys[head:], e.keys[e.head:e.tail])
	copy(evs[head:], e.evs[e.head:e.tail])
	e.keys, e.evs = keys, evs
	e.head, e.tail = head, head+n
}

// recenter slides the window back to the middle of the backing array,
// restoring slack at both ends. Only called with head > 0, so the window
// moves left; vacated pointer slots are cleared for the garbage collector.
func (e *Engine) recenter() {
	n := e.tail - e.head
	head := (len(e.keys) - n) / 2
	copy(e.keys[head:head+n], e.keys[e.head:e.tail])
	copy(e.evs[head:head+n], e.evs[e.head:e.tail])
	for i := head + n; i < e.tail; i++ {
		e.evs[i] = nil
	}
	e.head, e.tail = head, head+n
}

func (e *Engine) popMin() *Timer {
	tm := e.evs[e.head]
	e.evs[e.head] = nil
	e.head++
	if e.head == e.tail {
		// Empty: re-center so both ends regain slack.
		e.head, e.tail = len(e.keys)/2, len(e.keys)/2
	}
	tm.queued = false
	return tm
}

// remove deletes a queued timer (used by Cancel), shifting the shorter side
// of the window over its slot.
// searchNearHead returns the window position where key belongs: the first
// index in [head, tail) whose key is not less than key. It starts with a
// bounded linear scan from the head — measured mid-window inserts
// (interrupt-end and completion events a few entries past the current
// minimum) land well within the bound, where a sequential scan's
// predictable branches beat a binary search's data-dependent ones — and
// falls back to binary search over the remainder for larger windows.
func (e *Engine) searchNearHead(key timerKey) int {
	hi := e.head + 32
	if hi > e.tail {
		hi = e.tail
	}
	for p := e.head; p < hi; p++ {
		if !keyLess(e.keys[p], key) {
			return p
		}
	}
	lo := hi
	hi = e.tail
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyLess(e.keys[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
