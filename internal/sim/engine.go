package sim

import (
	"container/heap"
	"fmt"
)

// Timer is a scheduled callback. It can be cancelled before it fires.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped
	canceled bool
}

// At returns the simulated instant the timer fires at.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the timer was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.canceled || t.index == -1 {
		return false
	}
	t.canceled = true
	return true
}

// Pending reports whether the timer is scheduled and not cancelled.
func (t *Timer) Pending() bool { return t != nil && !t.canceled && t.index != -1 }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same instant fire in scheduling order, which keeps runs deterministic.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	// Steps counts processed (non-cancelled) events, for diagnostics and
	// runaway detection in tests.
	Steps uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at simulated time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, tm)
	return tm
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Pending reports the number of events in the queue, including cancelled
// ones that have not been reaped yet.
func (e *Engine) Pending() int { return len(e.events) }

// Step processes the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		tm := heap.Pop(&e.events).(*Timer)
		if tm.canceled {
			continue
		}
		e.now = tm.at
		e.Steps++
		tm.fn()
		return true
	}
	return false
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock to
// t (even if no event fired exactly at t).
func (e *Engine) RunUntil(t Time) {
	for {
		tm := e.peek()
		if tm == nil || tm.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile processes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

func (e *Engine) peek() *Timer {
	for len(e.events) > 0 {
		if e.events[0].canceled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}
