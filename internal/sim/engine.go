package sim

import "fmt"

// Timer is a scheduled callback. It can be cancelled before it fires.
//
// Timer structs are pooled: once a timer has fired (or been cancelled) the
// engine may recycle it for a later At/After call. A handle therefore must
// not be retained past its callback — holders that store a *Timer must
// clear or reassign the reference when the callback runs, which every
// in-tree holder does as the first statement of its callback. Cancel and
// Pending on a handle whose timer already fired remain safe no-ops only
// until the struct is reused.
type Timer struct {
	at    Time
	seq   uint64
	fn    func()
	index int // position in the event heap, -1 when not queued
	eng   *Engine
}

// At returns the simulated instant the timer fires at.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer from firing, removing it from the event queue
// immediately (no zombie entries linger in the heap). Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports whether
// the timer was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.index < 0 {
		return false
	}
	t.eng.removeAt(t.index)
	t.eng.release(t)
	return true
}

// Pending reports whether the timer is scheduled and not cancelled.
func (t *Timer) Pending() bool { return t != nil && t.index >= 0 }

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same instant fire in scheduling order, which keeps runs deterministic.
//
// The event queue is a 4-ary min-heap ordered by (time, scheduling
// sequence): 4-ary trades slightly more comparisons per level for half the
// tree depth and better cache locality than the binary container/heap,
// which benchmarks measurably faster on the sift-heavy event loop.
type Engine struct {
	now    Time
	events []*Timer
	free   []*Timer // recycled Timer structs, so steady-state event flow does not allocate
	seq    uint64
	// Steps counts processed events, for diagnostics and runaway detection
	// in tests.
	Steps uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at simulated time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	var tm *Timer
	if n := len(e.free); n > 0 {
		tm = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		tm = &Timer{eng: e}
	}
	tm.at, tm.seq, tm.fn = t, e.seq, fn
	e.push(tm)
	return tm
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Pending returns the number of live (scheduled, uncancelled) events.
// Cancelled timers are removed from the queue eagerly, so this is an exact
// count, never an overcount.
func (e *Engine) Pending() int { return len(e.events) }

// Stats is a snapshot of engine-level counters, feeding the observability
// registry (internal/obs) at end of run.
type Stats struct {
	// Steps is the number of events processed so far.
	Steps uint64
	// Pending is the live event-queue depth.
	Pending int
	// FreeTimers is the recycled-Timer pool size — how deep the event flow
	// ran without allocating.
	FreeTimers int
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{Steps: e.Steps, Pending: len(e.events), FreeTimers: len(e.free)}
}

// release returns a fired or cancelled timer to the free list.
func (e *Engine) release(tm *Timer) {
	tm.fn = nil
	tm.index = -1
	e.free = append(e.free, tm)
}

// Step processes the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	tm := e.popMin()
	e.now = tm.at
	e.Steps++
	tm.fn()
	e.release(tm)
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock to
// t (even if no event fired exactly at t). The deadline check and the pop
// are a single heap-top inspection per event, not a peek-then-pop pair.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		tm := e.popMin()
		e.now = tm.at
		e.Steps++
		tm.fn()
		e.release(tm)
	}
	if e.now < t {
		e.now = t
	}
}

// RunWhile processes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// ---- 4-ary event heap ----

func timerLess(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(tm *Timer) {
	tm.index = len(e.events)
	e.events = append(e.events, tm)
	e.siftUp(tm.index)
}

func (e *Engine) popMin() *Timer {
	h := e.events
	tm := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].index = 0
	}
	h[n] = nil
	e.events = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	tm.index = -1
	return tm
}

// removeAt deletes the timer at heap position i (used by Cancel).
func (e *Engine) removeAt(i int) {
	h := e.events
	n := len(h) - 1
	removed := h[i]
	if i != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	e.events = h[:n]
	if i != n {
		if !e.siftUp(i) {
			e.siftDown(i)
		}
	}
	removed.index = -1
}

// siftUp restores heap order moving h[i] toward the root; it reports
// whether the element moved.
func (e *Engine) siftUp(i int) bool {
	h := e.events
	tm := h[i]
	moved := false
	for i > 0 {
		p := (i - 1) / 4
		if !timerLess(tm, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
		moved = true
	}
	h[i] = tm
	tm.index = i
	return moved
}

// siftDown restores heap order moving h[i] toward the leaves.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	tm := h[i]
	for {
		min := -1
		mt := tm
		first := 4*i + 1
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if timerLess(h[c], mt) {
				min, mt = c, h[c]
			}
		}
		if min < 0 {
			break
		}
		h[i] = mt
		h[i].index = i
		i = min
	}
	h[i] = tm
	tm.index = i
}
