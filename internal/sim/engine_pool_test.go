package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEnginePendingExact verifies the satellite fix: Pending() counts live
// timers exactly, with cancellations reaped eagerly instead of lingering as
// zombies until popped.
func TestEnginePendingExact(t *testing.T) {
	e := NewEngine()
	var tms []*Timer
	for i := 0; i < 10; i++ {
		at := Time(10 * (i + 1))
		tms = append(tms, e.At(at, func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", e.Pending())
	}
	tms[2].Cancel()
	tms[7].Cancel()
	if e.Pending() != 8 {
		t.Fatalf("Pending() after 2 cancels = %d, want 8 (no zombie entries)", e.Pending())
	}
	e.RunUntil(40) // fires 10, 20, 40 (30 was cancelled)
	if e.Pending() != 5 {
		t.Fatalf("Pending() after RunUntil(40) = %d, want 5", e.Pending())
	}
	tms[9].Cancel()
	if e.Pending() != 4 {
		t.Fatalf("Pending() = %d, want 4", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() after Run = %d, want 0", e.Pending())
	}
}

// TestEngineCancelFireInterleaved cancels timers from inside callbacks —
// including a same-instant successor — and checks exactly the right ones
// fire.
func TestEngineCancelFireInterleaved(t *testing.T) {
	e := NewEngine()
	fired := map[int]bool{}
	mark := func(id int) func() { return func() { fired[id] = true } }
	t1 := e.At(10, mark(1))
	var t3, t4 *Timer
	e.At(10, func() {
		fired[2] = true
		t3.Cancel() // same-instant successor: must not fire
		t4.Cancel() // later timer
	})
	t3 = e.At(10, mark(3))
	t4 = e.At(30, mark(4))
	t5 := e.At(40, mark(5))
	e.Run()
	if !fired[1] || !fired[2] || !fired[5] {
		t.Fatalf("expected timers did not fire: %v", fired)
	}
	if fired[3] || fired[4] {
		t.Fatalf("cancelled timers fired: %v", fired)
	}
	if t1.Pending() || t5.Pending() {
		t.Fatal("fired timers still pending")
	}
	if e.Steps != 3 {
		t.Fatalf("Steps = %d, want 3 (cancelled events are not steps)", e.Steps)
	}
}

// TestEngineTimerReuse checks the free list actually recycles timer structs
// and recycled timers behave like fresh ones.
func TestEngineTimerReuse(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 1000; i++ {
		e.After(Time(i), func() { count++ })
	}
	e.Run()
	if count != 1000 {
		t.Fatalf("count = %d", count)
	}
	if len(e.free) == 0 {
		t.Fatal("free list empty after run: timers are not pooled")
	}
	// Steady-state schedule/fire cycles must not allocate timers.
	allocs := testing.AllocsPerRun(100, func() {
		e.After(1, func() {})
		e.Step()
	})
	if allocs > 1 { // the closure itself may allocate; the Timer must not
		t.Fatalf("schedule/fire allocates %.1f objects per cycle", allocs)
	}
}

// Property: with random schedule times and a random subset cancelled (some
// from inside callbacks), exactly the uncancelled timers fire, in
// (time, schedule-order) sequence — exercising push/popMin/removeAt of the
// 4-ary heap together.
func TestEngineHeapRemoveProperty(t *testing.T) {
	f := func(seed int64, delays []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		tms := make([]*Timer, len(delays))
		cancelled := make([]bool, len(delays))
		for i, d := range delays {
			i, at := i, Time(d)
			tms[i] = e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		// Cancel ~1/3 up front.
		for i := range tms {
			if rng.Intn(3) == 0 {
				cancelled[i] = tms[i].Cancel()
			}
		}
		// And one more from inside the earliest surviving callback.
		e.Run()
		want := 0
		for i := range tms {
			if !cancelled[i] {
				want++
			}
		}
		if len(fired) != want {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRunUntilSingleTraversal pins the satellite behaviour: RunUntil
// inspects the heap top once per event (no peek-then-pop double traversal)
// and stops exactly at the deadline.
func TestEngineRunUntilSingleTraversal(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 15, 25} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(15)
	if len(fired) != 3 || e.Now() != 15 {
		t.Fatalf("fired %v now %v, want 3 events and now=15", fired, e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(25)
	if len(fired) != 4 || e.Now() != 25 {
		t.Fatalf("fired %v now %v", fired, e.Now())
	}
}
