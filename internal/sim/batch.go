package sim

// Batch owns one engine reused across many reps of the same normalized
// spec. Instead of building a fresh engine per rep, callers mark the
// engine's quiescent construction point once and fork back to it between
// reps: the fork recycles every pending timer into the engine's free pool
// and rewinds the clock and sequence counters, so rep N+1 sees exactly the
// state a fresh engine would — but with warm heap, key, and timer-pool
// storage, which is where the per-rep allocation cost lived.
//
// Determinism: a forked engine restarts its scheduling sequence at the
// marked value, so timers of the next rep receive the same (at, seq) heap
// keys a fresh engine would assign. Pool reuse affects which structs carry
// the events, never their order.
type Batch struct {
	eng  *Engine
	snap Snapshot
	// Snapshots counts fork-point captures (one per Mark); Forks counts
	// rewinds — one per batched rep after the state was first dirtied.
	Snapshots uint64
	Forks     uint64
}

// NewBatch creates a batch around a fresh engine and marks its (empty)
// construction state as the fork point.
func NewBatch() *Batch {
	b := &Batch{eng: NewEngine()}
	b.Mark()
	return b
}

// Engine returns the batch's engine.
func (b *Batch) Engine() *Engine { return b.eng }

// Mark captures the engine's current position as the batch's fork point.
// The engine must be quiescent (no pending events) for the mark to be
// forkable; Fork panics otherwise.
func (b *Batch) Mark() {
	b.snap = b.eng.Snapshot()
	b.Snapshots++
}

// Fork rewinds the engine to the marked fork point, recycling every pending
// timer into the free pool.
func (b *Batch) Fork() {
	b.eng.Fork(b.snap)
	b.Forks++
}
