package sim

import "testing"

// TestEngineSnapshotFork proves a forked engine replays a schedule with the
// same timestamps and the same (at, seq) ordering as the first run: the fork
// rewinds clock, sequence counter, and step count to the marked values, so
// the heap keys of the next run are identical to a fresh engine's.
func TestEngineSnapshotFork(t *testing.T) {
	runOnce := func(e *Engine) []Time {
		var fired []Time
		e.At(10, func() { fired = append(fired, e.Now()) })
		e.At(5, func() {
			fired = append(fired, e.Now())
			e.After(7, func() { fired = append(fired, e.Now()) })
		})
		e.Run()
		return fired
	}

	fresh := runOnce(NewEngine())

	e := NewEngine()
	snap := e.Snapshot()
	first := runOnce(e)
	e.Fork(snap)
	if e.Now() != 0 || e.Steps != 0 {
		t.Fatalf("fork did not rewind: now=%d steps=%d", e.Now(), e.Steps)
	}
	second := runOnce(e)

	for name, got := range map[string][]Time{"first": first, "forked": second} {
		if len(got) != len(fresh) {
			t.Fatalf("%s run fired %d timers, fresh fired %d", name, len(got), len(fresh))
		}
		for i := range got {
			if got[i] != fresh[i] {
				t.Errorf("%s run fire %d at %d, fresh at %d", name, i, got[i], fresh[i])
			}
		}
	}
}

// TestEngineForkRecyclesPending verifies forking with undelivered timers
// recycles them into the free pool (they must never fire in the next run)
// and that a post-fork run reuses the structs instead of allocating.
func TestEngineForkRecyclesPending(t *testing.T) {
	e := NewEngine()
	snap := e.Snapshot()
	leaked := false
	for i := 0; i < 8; i++ {
		e.At(Time(100+i), func() { leaked = true })
	}
	if e.Pending() != 8 {
		t.Fatalf("pending = %d, want 8", e.Pending())
	}
	allocs := e.TimerAllocs
	e.Fork(snap)
	if e.Pending() != 0 {
		t.Fatalf("pending after fork = %d, want 0", e.Pending())
	}
	var n int
	e.At(1, func() { n++ })
	e.Run()
	if leaked {
		t.Fatal("a pre-fork timer fired after the fork")
	}
	if n != 1 {
		t.Fatalf("post-fork timer fired %d times, want 1", n)
	}
	if e.TimerAllocs != allocs {
		t.Fatalf("post-fork run allocated %d fresh timers, want 0 (free pool holds 8)",
			e.TimerAllocs-allocs)
	}
}

// TestSnapshotForkMidRunPanics pins the contract that only a pristine
// pending-free state is a valid fork target.
func TestSnapshotForkMidRunPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	snap := e.Snapshot() // pending event captured
	defer func() {
		if recover() == nil {
			t.Fatal("Fork from a snapshot with pending events did not panic")
		}
	}()
	e.Fork(snap)
}

// TestBatchCounters checks the batch wrapper's bookkeeping.
func TestBatchCounters(t *testing.T) {
	b := NewBatch()
	if b.Snapshots != 1 {
		t.Fatalf("Snapshots after NewBatch = %d, want 1", b.Snapshots)
	}
	b.Engine().At(3, func() {})
	b.Engine().Run()
	b.Fork()
	b.Fork()
	if b.Forks != 2 {
		t.Fatalf("Forks = %d, want 2", b.Forks)
	}
	if b.Engine().Now() != 0 {
		t.Fatalf("engine not rewound: now=%d", b.Engine().Now())
	}
}

// TestTimerAllocsCountsPoolMisses verifies TimerAllocs counts exactly the
// fresh materializations: first arming allocates, recycled arming does not.
func TestTimerAllocsCountsPoolMisses(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	e.Run()
	if e.TimerAllocs != 2 {
		t.Fatalf("TimerAllocs after two fresh timers = %d, want 2", e.TimerAllocs)
	}
	e.At(3, func() {})
	e.Run()
	if e.TimerAllocs != 2 {
		t.Fatalf("TimerAllocs after recycled timer = %d, want 2 still", e.TimerAllocs)
	}
}
