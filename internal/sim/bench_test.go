package sim

import "testing"

// Engine microbenchmarks: the event loop is the innermost layer of every
// simulated run, so per-event costs here multiply through the whole
// evaluation harness. `make bench` records these in BENCH_kernel.json.

// BenchmarkEngineEventThroughput measures raw schedule+fire cost with a
// self-rescheduling timer chain (the noise-generator pattern) over a heap
// that stays ~1k entries deep.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	const depth = 1024
	var tick func()
	n := 0
	tick = func() {
		n++
		e.After(depth, tick)
	}
	for i := 0; i < depth; i++ {
		e.After(Time(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineRunUntil measures the combined deadline-check-and-pop loop
// (one heap-top inspection per event).
func BenchmarkEngineRunUntil(b *testing.B) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(10, tick) }
	for i := 0; i < 64; i++ {
		e.After(Time(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 100)
	}
}

// BenchmarkEngineCancel measures schedule+cancel cycles — the slice-timer
// and completion-timer churn pattern in the CPU scheduler. Eager reap keeps
// the heap free of zombies; the free list keeps it allocation-free.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	// Background population so cancels hit an interior heap.
	for i := 0; i < 256; i++ {
		e.At(Time(1<<40)+Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(1000, fn)
		tm.Cancel()
	}
}
