package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	var tm *Timer
	tm = e.At(5, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer should not be pending")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 40 {
		t.Fatalf("Now() = %v, want 40", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25 after RunUntil(25)", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events did not fire: %v", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("After with negative duration should fire immediately")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000000s"},
		{MaxTime, "+inf"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatal("FromSeconds broken")
	}
	if FromMicros(2.5) != 2500 {
		t.Fatal("FromMicros broken")
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds() = %v", got)
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
