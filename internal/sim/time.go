// Package sim provides a deterministic discrete-event simulation engine and
// seeded random-number streams. All higher layers (machine model, OS
// scheduler, noise sources) are built on it, so a full experiment is a pure
// function of its configuration and seed.
package sim

import "fmt"

// Time is simulated time in nanoseconds since the start of the simulation.
type Time int64

// Duration constants in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulated instant. It is used as the
// completion time of unbounded work (for example a spinning barrier wait).
const MaxTime Time = 1<<63 - 1

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMicros converts floating-point microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// String formats the time with an adaptive unit, e.g. "1.234ms".
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "+inf"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}
