package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical sequences")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root1 := NewRNG(7)
	root2 := NewRNG(7)
	s1 := root1.Stream("noise")
	s2 := root2.Stream("noise")
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same (seed, name) must yield the same stream")
		}
	}
	root3 := NewRNG(7)
	other := root3.Stream("workload")
	s3 := NewRNG(7).Stream("noise")
	diff := false
	for i := 0; i < 20; i++ {
		if other.Uint64() != s3.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different stream names should produce different sequences")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	const rate = 2.0
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.1 {
		t.Fatalf("normal sd = %v, want ~3", sd)
	}
}

func TestLogNormalMean(t *testing.T) {
	r := NewRNG(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormalMean(5.0, 0.8)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.15 {
		t.Fatalf("lognormal mean = %v, want ~5", mean)
	}
}

func TestLogNormalMeanNonPositive(t *testing.T) {
	r := NewRNG(8)
	if v := r.LogNormalMean(0, 1); v != 0 {
		t.Fatalf("LogNormalMean(0, 1) = %v, want 0", v)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(10)
	const d = 1000 * Microsecond
	for i := 0; i < 10000; i++ {
		v := r.Jitter(d, 0.1)
		if v < Time(float64(d)*0.9) || v > Time(float64(d)*1.1) {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

// TestRNGCloneSameSequence verifies a clone continues with exactly the
// parent's future sequence and that the two then advance independently —
// the property forked reps rely on.
func TestRNGCloneSameSequence(t *testing.T) {
	r := NewRNG(99)
	r.Uint64() // advance past the seed state
	c := r.Clone()
	for i := 0; i < 64; i++ {
		if a, b := r.Uint64(), c.Uint64(); a != b {
			t.Fatalf("draw %d: parent %d, clone %d", i, a, b)
		}
	}
	// Diverge the clone; the parent's stream must be unaffected (no shared
	// state between the copies).
	expect := r.Clone()
	c.Uint64()
	c.Uint64()
	for i := 0; i < 16; i++ {
		if a, b := r.Uint64(), expect.Uint64(); a != b {
			t.Fatalf("advancing the clone perturbed the parent at draw %d: %d vs %d", i, a, b)
		}
	}
}

// TestRNGStreamDerivationAdvancesParent pins the documented contract that
// Stream draws from the parent: deriving streams in a different order yields
// different streams, so fork paths must re-derive in construction order.
func TestRNGStreamDerivationAdvancesParent(t *testing.T) {
	seq := func(names ...string) []uint64 {
		r := NewRNG(7)
		var out []uint64
		for _, n := range names {
			out = append(out, r.Stream(n).Uint64())
		}
		return out
	}
	ab := seq("a", "b")
	ba := seq("b", "a")
	if ab[0] == ba[1] {
		t.Fatal("stream \"a\" identical regardless of derivation order; parent not advanced")
	}
	// Same order always reproduces.
	ab2 := seq("a", "b")
	if ab[0] != ab2[0] || ab[1] != ab2[1] {
		t.Fatal("same derivation order did not reproduce streams")
	}
}
