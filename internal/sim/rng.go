package sim

import "math"

// RNG is a xoshiro256** pseudo-random generator. It is small, fast, and —
// unlike math/rand's global state — explicitly seeded, so simulations are
// reproducible. Derived streams (see Stream) let independent model
// components draw without perturbing each other.
type RNG struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed via splitmix64, per the
// xoshiro authors' recommendation.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Clone returns an independent copy of the generator: both copies continue
// from the same state without perturbing each other. Snapshot/fork
// execution uses it to hand a forked rep the same stream a from-scratch rep
// would draw.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Stream derives an independent generator for the named component. The same
// (seed, name) pair always yields the same stream. Note that deriving a
// stream advances the parent generator (it mixes in a fresh draw), so
// stream derivation order is part of a run's determinism contract: a forked
// rep must derive the same streams in the same order as a fresh one.
func (r *RNG) Stream(name string) *RNG {
	// FNV-1a over the name, mixed with a fresh draw from r.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1). Scaling by the exact
// reciprocal 0x1p-53 is bit-identical to dividing by 1<<53 (both only
// adjust the exponent) and skips the division.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// ExpFloat64 returns an exponentially distributed value with the given rate
// (events per unit); mean is 1/rate.
func (r *RNG) ExpFloat64(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// NormFloat64 returns a standard normal value (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal value with the given mean and standard deviation.
func (r *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)). For a target mean m and "spread" s
// (sd of the underlying normal), use mu = ln(m) - s^2/2.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LogNormalMean returns a log-normal value with the given arithmetic mean
// and log-space sigma.
func (r *RNG) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.LogNormal(LogNormalMu(mean, sigma), sigma)
}

// LogNormalMu returns the log-space location parameter LogNormalMean
// derives from (mean, sigma). Hot loops with fixed per-source parameters
// hoist it once and draw via LogNormal directly, skipping a math.Log per
// draw; the hoisted value is the same computation, so draws stay
// bit-identical.
func LogNormalMu(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// Pareto returns a Pareto(xm, alpha) value: heavy-tailed, minimum xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(d Time, frac float64) Time {
	f := 1 + frac*(2*r.Float64()-1)
	return Time(float64(d) * f)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
