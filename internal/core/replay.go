package core

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Replayer drives stage three (§4.3, Listing 1): one injector process per
// logical CPU in the configuration. The processes carry no CPU affinity —
// as in the paper, so the noise lands wherever the scheduler puts it, which
// is what lets housekeeping cores absorb it — and each one walks its event
// list: switch policy if needed, sleep until the event's start, occupy a
// CPU for the event's duration. Injection terminates early when the
// workload signals completion.
type Replayer struct {
	s     *cpusched.Scheduler
	cfg   *Config
	tasks []*cpusched.Task
	// PinInjectors pins each injector process to its configured CPU
	// instead of letting it roam. The paper leaves injectors unpinned;
	// this switch exists for the ablation benchmarks.
	PinInjectors bool
	// Injected counts events actually injected (not cut off by early
	// termination).
	Injected int
}

// NewReplayer validates the configuration and prepares a replayer.
func NewReplayer(s *cpusched.Scheduler, cfg *Config) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Replayer{s: s, cfg: cfg}, nil
}

// Start spawns the injector processes at the current simulated time, which
// must coincide with workload start (the barrier synchronization of
// Listing 1). Event starts in the config are relative to this instant.
func (r *Replayer) Start() {
	base := r.s.Now()
	for _, ce := range r.cfg.CPUs {
		events := ce.Events
		name := fmt.Sprintf("injector-%d", ce.CPU)
		spec := cpusched.TaskSpec{
			Name:   name,
			Source: name,
			Kind:   cpusched.KindInjector,
			// Default policy OTHER; each event switches as required.
			Policy: cpusched.PolicyOther,
			// No affinity by default: injector processes roam (§4.3).
		}
		if r.PinInjectors && ce.CPU < r.s.Topology().NumCPUs() {
			spec.Affinity = machine.SetOf(ce.CPU)
		}
		t := r.s.Spawn(spec, func(ctx *cpusched.Ctx) {
			r.injectLoop(ctx, events, base)
		})
		r.tasks = append(r.tasks, t)
	}
}

// injectLoop is Listing 1's per-process routine.
func (r *Replayer) injectLoop(ctx *cpusched.Ctx, events []NoiseEvent, base sim.Time) {
	cycles := r.s.Topology().CyclesPerNs()
	for _, ev := range events {
		if ev.Policy == "SCHED_FIFO" {
			ctx.SetPolicyNice(cpusched.PolicyFIFO, ev.RTPrio, 0)
		} else {
			ctx.SetPolicyNice(cpusched.PolicyOther, 0, ev.Nice)
		}
		ctx.SleepUntil(base + ev.Start)
		if ev.MemBytes > 0 {
			// Memory-interference extension: contend for machine
			// bandwidth instead of pure CPU occupation.
			ctx.Memory(ev.MemBytes)
		} else {
			// Inject: occupy a CPU for the event's duration of CPU time.
			ctx.Compute(float64(ev.Duration) * cycles)
		}
	}
}

// Tasks returns the injector tasks (for early termination).
func (r *Replayer) Tasks() []*cpusched.Task { return r.tasks }

// StopAll kills any injectors still running — the workload-completion early
// termination of Listing 1.
func (r *Replayer) StopAll() {
	for _, t := range r.tasks {
		if !t.Done() {
			r.s.Kill(t)
		}
	}
}

// Done reports whether every injector finished its list.
func (r *Replayer) Done() bool {
	for _, t := range r.tasks {
		if !t.Done() {
			return false
		}
	}
	return true
}
