package core

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Replayer drives stage three (§4.3, Listing 1): one injector process per
// logical CPU in the configuration. The processes carry no CPU affinity —
// as in the paper, so the noise lands wherever the scheduler puts it, which
// is what lets housekeeping cores absorb it — and each one walks its event
// list: switch policy if needed, sleep until the event's start, occupy a
// CPU for the event's duration. Injection terminates early when the
// workload signals completion.
type Replayer struct {
	s     *cpusched.Scheduler
	cfg   *Config
	tasks []*cpusched.Task
	// PinInjectors pins each injector process to its configured CPU
	// instead of letting it roam. The paper leaves injectors unpinned;
	// this switch exists for the ablation benchmarks.
	PinInjectors bool
	// Injected counts events actually injected (not cut off by early
	// termination).
	Injected int
}

// NewReplayer validates the configuration and prepares a replayer.
func NewReplayer(s *cpusched.Scheduler, cfg *Config) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Replayer{s: s, cfg: cfg}, nil
}

// Start spawns the injector processes at the current simulated time, which
// must coincide with workload start (the barrier synchronization of
// Listing 1). Event starts in the config are relative to this instant.
func (r *Replayer) Start() {
	base := r.s.Now()
	for _, ce := range r.cfg.CPUs {
		events := ce.Events
		name := fmt.Sprintf("injector-%d", ce.CPU)
		spec := cpusched.TaskSpec{
			Name:   name,
			Source: name,
			Kind:   cpusched.KindInjector,
			// Default policy OTHER; each event switches as required.
			Policy: cpusched.PolicyOther,
			// No affinity by default: injector processes roam (§4.3).
		}
		if r.PinInjectors && ce.CPU < r.s.Topology().NumCPUs() {
			spec.Affinity = machine.SetOf(ce.CPU)
		}
		t := r.s.SpawnProgram(spec, &injectProgram{
			events: events,
			base:   base,
			cycles: r.s.Topology().CyclesPerNs(),
		})
		r.tasks = append(r.tasks, t)
		if rec := r.s.Observer(); rec != nil {
			rec.Instant(t.CPU(), "injector-start", "injector", name, base)
		}
	}
}

// injectProgram is Listing 1's per-process routine as an inline scheduler
// Program: per event, switch policy, sleep until the event's start, then
// occupy a CPU (or the memory system) for the event's duration. Running
// inline spares one goroutine plus two channel operations per request for
// every injector — with one injector per configured CPU they dominate task
// churn in stage three.
type injectProgram struct {
	events []NoiseEvent
	base   sim.Time
	cycles float64
	i      int // current event
	step   int // 0 = set policy, 1 = sleep, 2 = inject
}

func (p *injectProgram) Next(*cpusched.Task) (cpusched.Request, bool) {
	if p.i >= len(p.events) {
		return cpusched.Request{}, false
	}
	ev := &p.events[p.i]
	switch p.step {
	case 0:
		p.step = 1
		if ev.Policy == "SCHED_FIFO" {
			return cpusched.ReqSetPolicy(cpusched.PolicyFIFO, ev.RTPrio, 0), true
		}
		return cpusched.ReqSetPolicy(cpusched.PolicyOther, 0, ev.Nice), true
	case 1:
		p.step = 2
		return cpusched.ReqSleepUntil(p.base + ev.Start), true
	default:
		p.i++
		p.step = 0
		if ev.MemBytes > 0 {
			// Memory-interference extension: contend for machine
			// bandwidth instead of pure CPU occupation.
			return cpusched.ReqMemory(ev.MemBytes), true
		}
		return cpusched.ReqCompute(float64(ev.Duration) * p.cycles), true
	}
}

// Tasks returns the injector tasks (for early termination).
func (r *Replayer) Tasks() []*cpusched.Task { return r.tasks }

// StopAll kills any injectors still running — the workload-completion early
// termination of Listing 1.
func (r *Replayer) StopAll() {
	rec := r.s.Observer()
	for _, t := range r.tasks {
		if !t.Done() {
			if rec != nil {
				rec.Instant(t.CPU(), "injector-stop", "injector", t.Name, r.s.Now())
			}
			r.s.Kill(t)
		}
	}
}

// Done reports whether every injector finished its list.
func (r *Replayer) Done() bool {
	for _, t := range r.tasks {
		if !t.Done() {
			return false
		}
	}
	return true
}
