// Package core implements the paper's primary contribution: the noise
// injector. It covers the three stages of §4:
//
//  1. System trace collection — orchestrated by the experiment package,
//     which produces trace.Trace values from traced executions.
//  2. Noise configuration generation — Refine subtracts the average
//     ("inherent") system noise from the worst-case trace (§4.2, Figure 4),
//     and Generate maps the refined delta noise to a per-logical-CPU
//     configuration file (Figure 5) with scheduling policies assigned by
//     event class. Two overlap-merging variants exist: the original
//     pessimistic merge (which §5.2 reports as compromising one trace) and
//     the improved class-separated merge with boosted thread-noise
//     priority.
//  3. Noise injection during workload execution — Replay spawns one
//     unpinned injector process per configured logical CPU, each following
//     Listing 1: synchronize, switch policy as needed, sleep until each
//     event's start, occupy a CPU for its duration, and terminate early
//     when the workload completes.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cpusched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NoiseEvent is one injected noise event in a configuration file.
type NoiseEvent struct {
	// Start is the event's start time relative to workload start.
	Start sim.Time `json:"start"`
	// Duration is how long the injector occupies a CPU.
	Duration sim.Time `json:"duration"`
	// MemBytes, when positive, makes this a memory-interference event:
	// instead of spinning for Duration, the injector streams this many
	// bytes through the memory system, contending for machine bandwidth.
	// This implements the extension the paper lists as future work (§7:
	// "extending the noise injector to capture a broader range of noise
	// types, including I/O- and memory-related interference"). Duration
	// is then advisory (the expected occupancy at full bandwidth).
	MemBytes float64 `json:"mem_bytes,omitempty"`
	// Policy is "SCHED_FIFO" (irq/softirq noise) or "SCHED_OTHER"
	// (thread noise), per §4.2's class-to-policy mapping.
	Policy string `json:"policy"`
	// RTPrio is the real-time priority for SCHED_FIFO events.
	RTPrio int `json:"rtprio,omitempty"`
	// Nice is the niceness for SCHED_OTHER events; the improved injector
	// boosts thread noise with a negative value.
	Nice int `json:"nice,omitempty"`
	// Class and Source identify the original trace event(s).
	Class  cpusched.NoiseClass `json:"class"`
	Source string              `json:"source"`
}

// End returns the event end time.
func (e NoiseEvent) End() sim.Time { return e.Start + e.Duration }

// CPUEvents is the event list for one logical CPU.
type CPUEvents struct {
	CPU    int          `json:"cpu"`
	Events []NoiseEvent `json:"events"`
}

// Config is the generated noise configuration (Figure 5): one event list
// per logical CPU observed in the refined worst-case trace, plus metadata
// identifying the trace it came from.
type Config struct {
	Platform string `json:"platform"`
	Workload string `json:"workload"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	// Seed is the seed of the worst-case trace run.
	Seed uint64 `json:"seed"`
	// Window is the worst-case execution time; injection covers [0,
	// Window) relative to workload start.
	Window sim.Time `json:"window"`
	// AnomalyExec is the execution time of the worst-case run, used by
	// the accuracy metric of §5.2.
	AnomalyExec sim.Time `json:"anomaly_exec"`
	// Improved records whether the improved merge generated this config.
	Improved bool `json:"improved"`
	// CPUs holds the per-CPU event lists, ordered by CPU id.
	CPUs []CPUEvents `json:"cpus"`
}

// TotalNoise returns the summed duration across all CPUs.
func (c *Config) TotalNoise() sim.Time {
	var total sim.Time
	for _, ce := range c.CPUs {
		for _, e := range ce.Events {
			total += e.Duration
		}
	}
	return total
}

// NumEvents returns the total event count.
func (c *Config) NumEvents() int {
	n := 0
	for _, ce := range c.CPUs {
		n += len(ce.Events)
	}
	return n
}

// WriteJSON serializes the configuration.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadConfigJSON parses a configuration.
func ReadConfigJSON(r io.Reader) (*Config, error) {
	c := &Config{}
	if err := json.NewDecoder(r).Decode(c); err != nil {
		return nil, fmt.Errorf("core: decoding config: %w", err)
	}
	return c, nil
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("core: config window %v must be positive", c.Window)
	}
	for _, ce := range c.CPUs {
		if ce.CPU < 0 {
			return fmt.Errorf("core: negative cpu %d", ce.CPU)
		}
		last := sim.Time(-1)
		for _, e := range ce.Events {
			if e.Duration <= 0 && e.MemBytes <= 0 {
				return fmt.Errorf("core: cpu %d: event needs a positive duration or memory volume", ce.CPU)
			}
			if e.MemBytes < 0 {
				return fmt.Errorf("core: cpu %d: negative memory volume", ce.CPU)
			}
			if e.Start < last {
				return fmt.Errorf("core: cpu %d: events not sorted by start", ce.CPU)
			}
			if e.Policy != "SCHED_FIFO" && e.Policy != "SCHED_OTHER" {
				return fmt.Errorf("core: cpu %d: bad policy %q", ce.CPU, e.Policy)
			}
			last = e.Start
		}
	}
	return nil
}

// policyOf maps an event class to its scheduling policy per §4.2: events
// labelled thread_noise use SCHED_OTHER; irq_noise and softirq_noise map to
// SCHED_FIFO.
func policyOf(class cpusched.NoiseClass) (policy string, rtprio int) {
	if class == cpusched.ClassThread {
		return "SCHED_OTHER", 0
	}
	return "SCHED_FIFO", 50
}

// sortEventsByStart orders events by start time, breaking ties by source
// for determinism.
func sortEventsByStart(evs []NoiseEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Source < evs[j].Source
	})
}

// tracesByCPU groups a trace's events per CPU.
func tracesByCPU(tr *trace.Trace) map[int][]trace.Event {
	byCPU := make(map[int][]trace.Event)
	for _, e := range tr.Events {
		byCPU[e.CPU] = append(byCPU[e.CPU], e)
	}
	return byCPU
}
