package core

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestIONoiseValidate(t *testing.T) {
	good := DefaultIONoise(sim.Second, []int{0})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []IONoiseSpec{
		{},
		{Window: 1, StormPeriod: 1, IRQsPerStorm: 1, IRQDur: 1},      // no cpus
		{Window: 1, CPUs: []int{0}, IRQsPerStorm: 1, IRQDur: 1},      // no period
		{Window: 1, CPUs: []int{0}, StormPeriod: 1, IRQDur: 1},       // no irqs
		{Window: 1, CPUs: []int{0}, StormPeriod: 1, IRQsPerStorm: 1}, // no dur
		{Window: 1, CPUs: []int{-1}, StormPeriod: 1, IRQsPerStorm: 1, IRQDur: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// TestIONoiseNotAbsorbedByHousekeeping is the extension's point: device
// interrupts are steered to fixed CPUs, so unlike thread noise they hit the
// workload even when spare cores exist.
func TestIONoiseNotAbsorbedByHousekeeping(t *testing.T) {
	run := func(withIO bool) sim.Time {
		eng := sim.NewEngine()
		topo := machine.MustPreset(machine.TinyTest)
		s := cpusched.New(eng, topo, cpusched.Defaults())
		// Compute-bound workload on CPUs 0-2; CPU 3 free (housekeeping).
		var tasks []*cpusched.Task
		for cpu := 0; cpu < 3; cpu++ {
			cpu := cpu
			tasks = append(tasks, s.Spawn(cpusched.TaskSpec{
				Name: "w", Affinity: machine.SetOf(cpu),
			}, func(c *cpusched.Ctx) { c.ComputeDur(100 * sim.Millisecond) }))
		}
		if withIO {
			spec := IONoiseSpec{
				Window:       sim.Second,
				CPUs:         []int{0}, // device irqs steered to CPU 0
				StormPeriod:  10 * sim.Millisecond,
				IRQsPerStorm: 100,
				IRQDur:       20 * sim.Microsecond,
				IRQGap:       10 * sim.Microsecond,
				FlushDur:     100 * sim.Microsecond,
			}
			r, err := NewIORunner(s, spec)
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
		}
		eng.RunWhile(func() bool {
			for _, tk := range tasks {
				if !tk.Done() {
					return true
				}
			}
			return false
		})
		end := eng.Now()
		s.Shutdown()
		return end
	}
	base := run(false)
	noisy := run(true)
	// Each 10ms period steals 2ms of CPU 0 via irqs: ~20% on the straggler.
	if noisy < base*110/100 {
		t.Fatalf("irq storms must delay the workload despite the free core: base=%v noisy=%v", base, noisy)
	}
}

func TestIONoiseStopCancelsFutureStorms(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	s := cpusched.New(eng, topo, cpusched.Defaults())
	r, err := NewIORunner(s, DefaultIONoise(sim.Second, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	eng.RunUntil(60 * sim.Millisecond)
	stormsAtStop := r.Storms
	r.Stop()
	eng.RunUntil(500 * sim.Millisecond)
	if r.Storms != stormsAtStop {
		t.Fatalf("storms continued after Stop: %d -> %d", stormsAtStop, r.Storms)
	}
	if stormsAtStop == 0 {
		t.Fatal("no storms before stop")
	}
	s.Shutdown()
}

func TestIONoiseStaggersCPUs(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	s := cpusched.New(eng, topo, cpusched.Defaults())
	spec := DefaultIONoise(200*sim.Millisecond, []int{0, 1})
	r, err := NewIORunner(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	eng.RunUntil(210 * sim.Millisecond)
	// 200ms window / 50ms period = 4 storms per cpu.
	if r.Storms != 8 {
		t.Fatalf("storms = %d, want 8", r.Storms)
	}
	s.Shutdown()
}
