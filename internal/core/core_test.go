package core

import (
	"bytes"
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mkEvent(cpu int, class cpusched.NoiseClass, src string, start, dur sim.Time) trace.Event {
	return trace.Event{CPU: cpu, Class: class, Source: src, Start: start, Duration: dur}
}

// TestRefineSubtractsAverage reproduces the Figure-4 situation: the
// worst-case trace contains a recurring source whose average contribution
// must be subtracted once per expected occurrence.
func TestRefineSubtractsAverage(t *testing.T) {
	// Average runs: source "kw" occurs once per 100ms run with mean
	// duration 10us... build three normal traces and one worst case.
	mk := func(exec sim.Time, durs ...sim.Time) *trace.Trace {
		tr := &trace.Trace{ExecTime: exec}
		for i, d := range durs {
			tr.Events = append(tr.Events,
				mkEvent(0, cpusched.ClassThread, "kw", sim.Time(i)*sim.Millisecond, d))
		}
		return tr
	}
	normals := []*trace.Trace{
		mk(100*sim.Millisecond, 10*sim.Microsecond),
		mk(100*sim.Millisecond, 10*sim.Microsecond),
		mk(100*sim.Millisecond, 10*sim.Microsecond),
	}
	// Worst case: 200ms window, two occurrences: one huge (5ms) and one
	// average-sized.
	worst := mk(200*sim.Millisecond, 5*sim.Millisecond, 10*sim.Microsecond)
	all := append(append([]*trace.Trace{}, normals...), worst)
	profile := trace.BuildProfile(all)

	refined := Refine(worst, profile)
	// Average rate is ~1 event / ~120ms -> expected in 200ms window ~= 2.
	// The two subtractions (avg dur ~1.008ms because the worst trace's 5ms
	// outlier inflates the mean) must eat the small event entirely and
	// shave the big one, leaving a single reduced event.
	if len(refined.Events) != 1 {
		t.Fatalf("refined events = %d, want 1 (%+v)", len(refined.Events), refined.Events)
	}
	if got := refined.Events[0].Duration; got >= 5*sim.Millisecond || got <= 0 {
		t.Fatalf("residual duration %v not reduced from 5ms", got)
	}
}

func TestRefinePreservesUnknownSources(t *testing.T) {
	// A source that appears only in the worst case has average frequency
	// ~0 within the window, so it survives intact.
	normal := &trace.Trace{ExecTime: 100 * sim.Millisecond}
	worst := &trace.Trace{ExecTime: 100 * sim.Millisecond, Events: []trace.Event{
		mkEvent(1, cpusched.ClassThread, "gnome-shell", 10*sim.Millisecond, 30*sim.Millisecond),
	}}
	profile := trace.BuildProfile([]*trace.Trace{normal, normal, normal, worst})
	refined := Refine(worst, profile)
	if len(refined.Events) != 1 || refined.Events[0].Duration != 30*sim.Millisecond {
		t.Fatalf("rare outlier should survive refinement: %+v", refined.Events)
	}
}

func TestRefineDropsFullyAverageTrace(t *testing.T) {
	// A worst case identical to the average refines to (almost) nothing.
	mk := func() *trace.Trace {
		tr := &trace.Trace{ExecTime: 100 * sim.Millisecond}
		for i := 0; i < 10; i++ {
			tr.Events = append(tr.Events,
				mkEvent(0, cpusched.ClassIRQ, "local_timer:236",
					sim.Time(i)*10*sim.Millisecond, 5*sim.Microsecond))
		}
		return tr
	}
	traces := []*trace.Trace{mk(), mk(), mk(), mk()}
	profile := trace.BuildProfile(traces)
	refined := Refine(traces[3], profile)
	if len(refined.Events) != 0 {
		t.Fatalf("average-identical trace should refine to empty, got %d events", len(refined.Events))
	}
}

func TestExpectedOccurrencesScalesWithWindow(t *testing.T) {
	stats := trace.SourceStats{Count: 40, Traces: 4, TotalDur: 40 * sim.Microsecond}
	profile := &trace.Profile{MeanExec: 100 * sim.Millisecond, Traces: 4}
	// Rate = 10 events / 100ms. In a 200ms window: 20.
	if got := expectedOccurrences(stats, profile, 200*sim.Millisecond); got != 20 {
		t.Fatalf("expected occurrences = %d, want 20", got)
	}
	if got := expectedOccurrences(stats, &trace.Profile{}, 200*sim.Millisecond); got != 0 {
		t.Fatalf("zero profile should expect 0, got %d", got)
	}
}

func TestGeneratePolicyMapping(t *testing.T) {
	refined := &trace.Trace{ExecTime: 100 * sim.Millisecond, Events: []trace.Event{
		mkEvent(0, cpusched.ClassIRQ, "local_timer:236", 0, 10*sim.Microsecond),
		mkEvent(0, cpusched.ClassSoftIRQ, "RCU:9", 20*sim.Microsecond, 10*sim.Microsecond),
		mkEvent(1, cpusched.ClassThread, "kworker/1:1", 0, 10*sim.Microsecond),
	}}
	cfg := Generate(refined, false)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.CPUs) != 2 {
		t.Fatalf("cpus = %d", len(cfg.CPUs))
	}
	for _, e := range cfg.CPUs[0].Events {
		if e.Policy != "SCHED_FIFO" {
			t.Fatalf("interrupt noise must map to SCHED_FIFO: %+v", e)
		}
	}
	if cfg.CPUs[1].Events[0].Policy != "SCHED_OTHER" {
		t.Fatalf("thread noise must map to SCHED_OTHER: %+v", cfg.CPUs[1].Events[0])
	}
	if cfg.Window != 100*sim.Millisecond {
		t.Fatalf("window = %v", cfg.Window)
	}
}

func TestGenerateOriginalMergePessimistic(t *testing.T) {
	refined := &trace.Trace{ExecTime: sim.Second, Events: []trace.Event{
		mkEvent(0, cpusched.ClassThread, "kw", 0, 100*sim.Microsecond),
		mkEvent(0, cpusched.ClassIRQ, "timer", 50*sim.Microsecond, 100*sim.Microsecond),
	}}
	cfg := Generate(refined, false)
	evs := cfg.CPUs[0].Events
	if len(evs) != 1 {
		t.Fatalf("original merge should collapse overlap: %+v", evs)
	}
	if evs[0].Policy != "SCHED_FIFO" {
		t.Fatalf("pessimistic merge must escalate to FIFO: %+v", evs[0])
	}
	if evs[0].Duration != 150*sim.Microsecond {
		t.Fatalf("merged duration = %v, want 150us", evs[0].Duration)
	}
}

func TestGenerateImprovedMergeKeepsClassesApart(t *testing.T) {
	refined := &trace.Trace{ExecTime: sim.Second, Events: []trace.Event{
		mkEvent(0, cpusched.ClassThread, "kw", 0, 100*sim.Microsecond),
		mkEvent(0, cpusched.ClassIRQ, "timer", 50*sim.Microsecond, 100*sim.Microsecond),
	}}
	cfg := Generate(refined, true)
	evs := cfg.CPUs[0].Events
	if len(evs) != 2 {
		t.Fatalf("improved merge must not merge across classes: %+v", evs)
	}
	var sawBoosted bool
	for _, e := range evs {
		if e.Policy == "SCHED_OTHER" {
			if e.Nice >= 0 {
				t.Fatalf("improved thread noise should have boosted priority: %+v", e)
			}
			sawBoosted = true
		}
	}
	if !sawBoosted {
		t.Fatal("no thread-noise event in improved config")
	}
}

func TestGenerateMergesSameClassOverlaps(t *testing.T) {
	refined := &trace.Trace{ExecTime: sim.Second, Events: []trace.Event{
		mkEvent(0, cpusched.ClassIRQ, "a", 0, 100*sim.Microsecond),
		mkEvent(0, cpusched.ClassIRQ, "b", 50*sim.Microsecond, 100*sim.Microsecond),
		mkEvent(0, cpusched.ClassIRQ, "c", 500*sim.Microsecond, 10*sim.Microsecond),
	}}
	cfg := Generate(refined, true)
	evs := cfg.CPUs[0].Events
	if len(evs) != 2 {
		t.Fatalf("same-class overlap should merge: %+v", evs)
	}
	if evs[0].Duration != 150*sim.Microsecond {
		t.Fatalf("merged duration %v", evs[0].Duration)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	refined := &trace.Trace{
		Platform: "intel-9700kf", Workload: "nbody", Model: "omp",
		Strategy: "Rm", Seed: 9, ExecTime: sim.Second,
		Events: []trace.Event{
			mkEvent(2, cpusched.ClassIRQ, "local_timer:236", 100, 200),
			mkEvent(3, cpusched.ClassThread, "kworker/3:1", 500, 900),
		},
	}
	cfg := Generate(refined, true)
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfigJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != cfg.Platform || got.Seed != cfg.Seed || got.Window != cfg.Window ||
		got.Improved != cfg.Improved || got.NumEvents() != cfg.NumEvents() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, cfg)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []*Config{
		{Window: 0},
		{Window: 1, CPUs: []CPUEvents{{CPU: -1}}},
		{Window: 1, CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{{Start: 0, Duration: 0, Policy: "SCHED_FIFO"}}}}},
		{Window: 1, CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{{Start: 0, Duration: 1, Policy: "SCHED_WEIRD"}}}}},
		{Window: 1, CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{
			{Start: 5, Duration: 1, Policy: "SCHED_FIFO"},
			{Start: 0, Duration: 1, Policy: "SCHED_FIFO"},
		}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestReplayerInjectsAtConfiguredTimes(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.BalanceInterval = 0
	s := cpusched.New(eng, topo, opt)

	// Workload: a pinned 30ms spin on CPU 0.
	w := s.Spawn(cpusched.TaskSpec{Name: "w", Affinity: machine.SetOf(0)},
		func(c *cpusched.Ctx) { c.ComputeDur(30 * sim.Millisecond) })

	cfg := &Config{
		Window: 100 * sim.Millisecond,
		CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{
			{Start: 5 * sim.Millisecond, Duration: 10 * sim.Millisecond,
				Policy: "SCHED_FIFO", RTPrio: 50, Class: cpusched.ClassIRQ, Source: "x"},
		}}},
	}
	r, err := NewReplayer(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	eng.RunWhile(func() bool { return !w.Done() })
	got := eng.Now()
	s.Shutdown()
	// With 4 CPUs and an unpinned injector, the injector should land on an
	// idle CPU... but there are 3 idle CPUs, so the workload is NOT
	// delayed: wake placement avoids the busy CPU entirely.
	if got > 31*sim.Millisecond {
		t.Fatalf("injector on an idle machine should not delay workload: %v", got)
	}
}

func TestReplayerFIFODelaysSaturatedMachine(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.BalanceInterval = 0
	s := cpusched.New(eng, topo, opt)

	// Saturate all four CPUs with pinned 30ms spins.
	var tasks []*cpusched.Task
	for cpu := 0; cpu < 4; cpu++ {
		cpu := cpu
		tasks = append(tasks, s.Spawn(cpusched.TaskSpec{
			Name: "w", Affinity: machine.SetOf(cpu),
		}, func(c *cpusched.Ctx) { c.ComputeDur(30 * sim.Millisecond) }))
	}
	cfg := &Config{
		Window: 100 * sim.Millisecond,
		CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{
			{Start: 5 * sim.Millisecond, Duration: 10 * sim.Millisecond,
				Policy: "SCHED_FIFO", RTPrio: 50, Class: cpusched.ClassIRQ, Source: "x"},
		}}},
	}
	r, err := NewReplayer(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	eng.RunWhile(func() bool {
		for _, tk := range tasks {
			if !tk.Done() {
				return true
			}
		}
		return false
	})
	got := eng.Now()
	s.Shutdown()
	// The FIFO injection fully preempts one workload thread for 10ms.
	if got < 39*sim.Millisecond || got > 41*sim.Millisecond {
		t.Fatalf("saturated machine should finish at ~40ms, got %v", got)
	}
}

func TestReplayerEarlyTermination(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	s := cpusched.New(eng, topo, cpusched.Defaults())
	w := s.Spawn(cpusched.TaskSpec{Name: "w", Affinity: machine.SetOf(0)},
		func(c *cpusched.Ctx) { c.ComputeDur(5 * sim.Millisecond) })
	cfg := &Config{
		Window: sim.Second,
		CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{
			{Start: 500 * sim.Millisecond, Duration: 10 * sim.Millisecond,
				Policy: "SCHED_OTHER", Class: cpusched.ClassThread, Source: "kw"},
		}}},
	}
	r, err := NewReplayer(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.OnDone(func() { r.StopAll() })
	eng.RunWhile(func() bool { return !w.Done() })
	if !r.Done() {
		t.Fatal("StopAll should have terminated pending injectors")
	}
	s.Shutdown()
}

func TestReplayerRejectsBadConfig(t *testing.T) {
	eng := sim.NewEngine()
	s := cpusched.New(eng, machine.MustPreset(machine.TinyTest), cpusched.Defaults())
	if _, err := NewReplayer(s, &Config{Window: 0}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	s.Shutdown()
}

func TestConfigTotals(t *testing.T) {
	cfg := &Config{Window: 1, CPUs: []CPUEvents{
		{CPU: 0, Events: []NoiseEvent{{Start: 0, Duration: 5, Policy: "SCHED_FIFO"}}},
		{CPU: 1, Events: []NoiseEvent{{Start: 0, Duration: 7, Policy: "SCHED_OTHER"}}},
	}}
	if cfg.TotalNoise() != 12 || cfg.NumEvents() != 2 {
		t.Fatalf("totals wrong: %v %v", cfg.TotalNoise(), cfg.NumEvents())
	}
}
