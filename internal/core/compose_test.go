package core

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

func mkCfg(window sim.Time, cpu int, starts ...sim.Time) *Config {
	ce := CPUEvents{CPU: cpu}
	for _, st := range starts {
		ce.Events = append(ce.Events, NoiseEvent{
			Start: st, Duration: 100 * sim.Microsecond,
			Policy: "SCHED_FIFO", RTPrio: 50,
			Class: cpusched.ClassIRQ, Source: "x",
		})
	}
	return &Config{Window: window, Improved: true, CPUs: []CPUEvents{ce}}
}

func TestMergeConfigs(t *testing.T) {
	a := mkCfg(sim.Second, 0, 0, 10*sim.Millisecond)
	b := mkCfg(2*sim.Second, 1, 5*sim.Millisecond)
	b.CPUs = append(b.CPUs, CPUEvents{CPU: 0, Events: []NoiseEvent{{
		Start: 5 * sim.Millisecond, Duration: sim.Microsecond,
		Policy: "SCHED_OTHER", Class: cpusched.ClassThread, Source: "y",
	}}})
	m, err := MergeConfigs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Window != 2*sim.Second {
		t.Fatalf("window = %v", m.Window)
	}
	if len(m.CPUs) != 2 || m.CPUs[0].CPU != 0 || m.CPUs[1].CPU != 1 {
		t.Fatalf("cpus: %+v", m.CPUs)
	}
	if len(m.CPUs[0].Events) != 3 {
		t.Fatalf("cpu0 events = %d", len(m.CPUs[0].Events))
	}
	// Sorted by start after merge.
	if m.CPUs[0].Events[1].Source != "y" {
		t.Fatalf("merge order wrong: %+v", m.CPUs[0].Events)
	}
	// Inputs untouched.
	if len(a.CPUs[0].Events) != 2 {
		t.Fatal("MergeConfigs mutated input")
	}
	if _, err := MergeConfigs(nil, a); err == nil {
		t.Fatal("nil input should error")
	}
}

func TestAmplifyConfig(t *testing.T) {
	a := mkCfg(sim.Second, 0, 0)
	a.CPUs[0].Events[0].MemBytes = 1000
	out, err := AmplifyConfig(a, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if out.CPUs[0].Events[0].Duration != 250*sim.Microsecond {
		t.Fatalf("duration = %v", out.CPUs[0].Events[0].Duration)
	}
	if out.CPUs[0].Events[0].MemBytes != 2500 {
		t.Fatalf("mem = %v", out.CPUs[0].Events[0].MemBytes)
	}
	if a.CPUs[0].Events[0].Duration != 100*sim.Microsecond {
		t.Fatal("input mutated")
	}
	if _, err := AmplifyConfig(a, 0); err == nil {
		t.Fatal("zero factor should error")
	}
	if _, err := AmplifyConfig(nil, 1); err == nil {
		t.Fatal("nil config should error")
	}
}

func TestShiftConfig(t *testing.T) {
	a := mkCfg(sim.Second, 0, 0, 10*sim.Millisecond)
	out, err := ShiftConfig(a, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if out.CPUs[0].Events[0].Start != 5*sim.Millisecond {
		t.Fatalf("shifted start = %v", out.CPUs[0].Events[0].Start)
	}
	// Negative shift clamps at zero and stays sorted/valid.
	out2, err := ShiftConfig(a, -20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if out2.CPUs[0].Events[0].Start != 0 {
		t.Fatalf("clamped start = %v", out2.CPUs[0].Events[0].Start)
	}
	// Shift beyond the window grows it.
	big, err := ShiftConfig(a, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if big.Window <= sim.Second {
		t.Fatalf("window should grow: %v", big.Window)
	}
}

func TestFilterConfig(t *testing.T) {
	a := mkCfg(sim.Second, 0, 0, 10*sim.Millisecond)
	a.CPUs = append(a.CPUs, CPUEvents{CPU: 1, Events: []NoiseEvent{{
		Start: 0, Duration: 1, Policy: "SCHED_OTHER",
		Class: cpusched.ClassThread, Source: "kw",
	}}})
	onlyThread := FilterConfig(a, func(cpu int, e NoiseEvent) bool {
		return e.Class == cpusched.ClassThread
	})
	if len(onlyThread.CPUs) != 1 || onlyThread.CPUs[0].CPU != 1 {
		t.Fatalf("filter: %+v", onlyThread.CPUs)
	}
	none := FilterConfig(a, func(int, NoiseEvent) bool { return false })
	if len(none.CPUs) != 0 {
		t.Fatal("empty filter should drop everything")
	}
}

// TestAmplifiedConfigInjects verifies an amplified config actually changes
// run behaviour proportionally (mini end-to-end of the composition path).
func TestAmplifiedConfigInjects(t *testing.T) {
	run := func(cfg *Config) sim.Time {
		s, end := replayOnSpin(t, cfg)
		s.Shutdown()
		return end
	}
	base := mkCfg(sim.Second, 0, 5*sim.Millisecond)
	base.CPUs[0].Events[0].Duration = 5 * sim.Millisecond
	amp, err := AmplifyConfig(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	d1 := run(base)
	d2 := run(amp)
	// 5ms noise vs 15ms noise on a saturated machine: ~10ms difference.
	diff := d2 - d1
	if diff < 9*sim.Millisecond || diff > 11*sim.Millisecond {
		t.Fatalf("amplified injection delta = %v, want ~10ms", diff)
	}
}
