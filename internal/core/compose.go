package core

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Config composition utilities: downstream users combine captured
// worst-case configs with synthetic memory/I-O noise, amplify a config to
// probe beyond the observed worst case, or shift it in time to study phase
// sensitivity.

// MergeConfigs overlays b onto a: per-CPU event lists are concatenated and
// re-sorted. Metadata (window, labels) comes from a; the window extends to
// cover b if needed. Neither input is modified.
func MergeConfigs(a, b *Config) (*Config, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: MergeConfigs needs two configs")
	}
	out := &Config{
		Platform:    a.Platform,
		Workload:    a.Workload,
		Model:       a.Model,
		Strategy:    a.Strategy,
		Seed:        a.Seed,
		Window:      a.Window,
		AnomalyExec: a.AnomalyExec,
		Improved:    a.Improved && b.Improved,
	}
	if b.Window > out.Window {
		out.Window = b.Window
	}
	byCPU := map[int][]NoiseEvent{}
	for _, src := range []*Config{a, b} {
		for _, ce := range src.CPUs {
			byCPU[ce.CPU] = append(byCPU[ce.CPU], ce.Events...)
		}
	}
	cpus := make([]int, 0, len(byCPU))
	for cpu := range byCPU {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)
	for _, cpu := range cpus {
		evs := append([]NoiseEvent(nil), byCPU[cpu]...)
		sortEventsByStart(evs)
		out.CPUs = append(out.CPUs, CPUEvents{CPU: cpu, Events: evs})
	}
	return out, out.Validate()
}

// AmplifyConfig scales every event's duration (and memory volume) by
// factor, probing noise levels beyond the captured worst case. Event start
// times are preserved. Factor must be positive.
func AmplifyConfig(c *Config, factor float64) (*Config, error) {
	if c == nil {
		return nil, fmt.Errorf("core: AmplifyConfig needs a config")
	}
	if factor <= 0 {
		return nil, fmt.Errorf("core: amplification factor %v must be positive", factor)
	}
	out := cloneConfig(c)
	for i := range out.CPUs {
		for j := range out.CPUs[i].Events {
			e := &out.CPUs[i].Events[j]
			e.Duration = sim.Time(float64(e.Duration) * factor)
			e.MemBytes *= factor
			if e.Duration <= 0 && e.MemBytes <= 0 {
				e.Duration = 1
			}
		}
	}
	return out, out.Validate()
}

// ShiftConfig moves every event by delta (events shifted before time zero
// are clamped to zero, preserving order). The window grows if needed.
func ShiftConfig(c *Config, delta sim.Time) (*Config, error) {
	if c == nil {
		return nil, fmt.Errorf("core: ShiftConfig needs a config")
	}
	out := cloneConfig(c)
	var maxEnd sim.Time
	for i := range out.CPUs {
		for j := range out.CPUs[i].Events {
			e := &out.CPUs[i].Events[j]
			e.Start += delta
			if e.Start < 0 {
				e.Start = 0
			}
			if e.End() > maxEnd {
				maxEnd = e.End()
			}
		}
		sortEventsByStart(out.CPUs[i].Events)
	}
	if maxEnd > out.Window {
		out.Window = maxEnd
	}
	return out, out.Validate()
}

// FilterConfig keeps only events satisfying pred; empty CPU lists are
// dropped.
func FilterConfig(c *Config, pred func(cpu int, e NoiseEvent) bool) *Config {
	out := cloneConfig(c)
	out.CPUs = nil
	for _, ce := range c.CPUs {
		kept := CPUEvents{CPU: ce.CPU}
		for _, e := range ce.Events {
			if pred(ce.CPU, e) {
				kept.Events = append(kept.Events, e)
			}
		}
		if len(kept.Events) > 0 {
			out.CPUs = append(out.CPUs, kept)
		}
	}
	return out
}

func cloneConfig(c *Config) *Config {
	out := *c
	out.CPUs = make([]CPUEvents, len(c.CPUs))
	for i, ce := range c.CPUs {
		out.CPUs[i] = CPUEvents{CPU: ce.CPU, Events: append([]NoiseEvent(nil), ce.Events...)}
	}
	return &out
}
