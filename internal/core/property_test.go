package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cpusched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// randTrace builds a well-formed trace from fuzz inputs.
func randTrace(cpus []uint8, durs []uint32, execMs uint16) *trace.Trace {
	n := len(cpus)
	if len(durs) < n {
		n = len(durs)
	}
	tr := &trace.Trace{ExecTime: sim.Time(execMs)*sim.Millisecond + sim.Millisecond}
	sources := []string{"kworker/0:1", "gnome-shell", "local_timer:236", "RCU:9"}
	classes := []cpusched.NoiseClass{
		cpusched.ClassThread, cpusched.ClassThread, cpusched.ClassIRQ, cpusched.ClassSoftIRQ,
	}
	for i := 0; i < n; i++ {
		si := int(cpus[i]) % len(sources)
		tr.Events = append(tr.Events, trace.Event{
			CPU:      int(cpus[i]) % 8,
			Class:    classes[si],
			Source:   sources[si],
			Start:    sim.Time(i) * 100 * sim.Microsecond,
			Duration: sim.Time(durs[i]%1e6) + 1,
		})
	}
	tr.SortEvents()
	return tr
}

// Property: refinement never increases total noise or event count, and
// never produces non-positive durations.
func TestRefineProperties(t *testing.T) {
	f := func(cpus []uint8, durs []uint32, execMs uint16, extra uint8) bool {
		worst := randTrace(cpus, durs, execMs)
		// Build a profile from the worst case plus a few shrunken variants.
		traces := []*trace.Trace{worst}
		for k := uint8(0); k < extra%3+1; k++ {
			v := worst.Filter(func(e trace.Event) bool { return e.CPU%2 == int(k)%2 })
			v.ExecTime = worst.ExecTime
			traces = append(traces, v)
		}
		profile := trace.BuildProfile(traces)
		refined := Refine(worst, profile)
		if refined.TotalNoise() > worst.TotalNoise() {
			return false
		}
		if len(refined.Events) > len(worst.Events) {
			return false
		}
		for _, e := range refined.Events {
			if e.Duration <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Generate always yields a Validate-clean config whose total
// noise is at least the refined trace's (merging can only extend via
// overlaps) for the improved merge, and whose events are sorted.
func TestGenerateProperties(t *testing.T) {
	f := func(cpus []uint8, durs []uint32, execMs uint16, improved bool) bool {
		refined := randTrace(cpus, durs, execMs)
		cfg := Generate(refined, improved)
		if err := cfg.Validate(); err != nil {
			return false
		}
		// Every refined event's duration is covered by the config.
		if len(refined.Events) > 0 && cfg.NumEvents() == 0 {
			return false
		}
		if cfg.Window != refined.ExecTime {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the improved merge never merges an interrupt-class event with a
// thread-class event.
func TestImprovedMergeClassSeparationProperty(t *testing.T) {
	f := func(cpus []uint8, durs []uint32, execMs uint16) bool {
		refined := randTrace(cpus, durs, execMs)
		cfg := Generate(refined, true)
		for _, ce := range cfg.CPUs {
			for _, e := range ce.Events {
				// A merged event's source joins with "+"; verify no mixed
				// policies were merged: policy must match its class.
				if e.Class == cpusched.ClassThread && e.Policy != "SCHED_OTHER" {
					return false
				}
				if e.Class != cpusched.ClassThread && e.Policy != "SCHED_FIFO" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
