package core

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

// MemoryNoiseSpec parameterizes a synthetic memory-interference
// configuration: periodic bursts of memory traffic from a number of
// concurrent hog threads. It implements the injector extension the paper's
// §7 proposes for systems whose worst cases include memory activity, which
// the CPU-occupation injector cannot reproduce (§6 notes the tested worst
// cases "contained minimal memory activity").
type MemoryNoiseSpec struct {
	// Window is the injection window (typically the worst-case exec).
	Window sim.Time
	// Workers is the number of concurrent hog threads (each gets its own
	// per-CPU event list, so the replayer spawns one process each).
	Workers int
	// Period is the burst repetition interval.
	Period sim.Time
	// BurstBytes is the memory volume streamed per worker per burst.
	BurstBytes float64
	// Source labels the events in traces/configs.
	Source string
}

// Validate checks the spec.
func (s MemoryNoiseSpec) Validate() error {
	switch {
	case s.Window <= 0:
		return fmt.Errorf("core: memory noise window must be positive")
	case s.Workers <= 0:
		return fmt.Errorf("core: memory noise needs at least one worker")
	case s.Period <= 0:
		return fmt.Errorf("core: memory noise period must be positive")
	case s.BurstBytes <= 0:
		return fmt.Errorf("core: memory noise burst volume must be positive")
	}
	return nil
}

// Build generates a memory-interference Config. Events carry MemBytes, so
// the replayer streams traffic instead of spinning; they run SCHED_OTHER
// (memory hogs are ordinary threads).
func (s MemoryNoiseSpec) Build() (*Config, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	src := s.Source
	if src == "" {
		src = "memhog"
	}
	cfg := &Config{
		Workload:    "synthetic-memory-noise",
		Window:      s.Window,
		AnomalyExec: s.Window,
		Improved:    true,
	}
	for w := 0; w < s.Workers; w++ {
		ce := CPUEvents{CPU: w}
		// Stagger workers across the period to avoid lockstep bursts.
		phase := sim.Time(int64(s.Period) * int64(w) / int64(s.Workers))
		for start := phase; start < s.Window; start += s.Period {
			ce.Events = append(ce.Events, NoiseEvent{
				Start:    start,
				Duration: 0,
				MemBytes: s.BurstBytes,
				Policy:   "SCHED_OTHER",
				Class:    cpusched.ClassThread,
				Source:   fmt.Sprintf("%s/%d", src, w),
			})
		}
		cfg.CPUs = append(cfg.CPUs, ce)
	}
	return cfg, nil
}
