package core

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Refine implements §4.2's delta subtraction (Figure 4): the worst-case
// trace minus the average inherent noise. For each unique noise source, the
// expected number of occurrences inside the worst-case window is computed
// from the source's average frequency; for each expected occurrence, the
// remaining instance whose duration is closest to the source's average
// duration is reduced by that average (and dropped if nothing remains).
// What survives is the residual "delta" noise to inject — the part of the
// worst case that the inherent background noise will not already provide
// during the injection run.
//
// The returned trace shares no storage with the input.
func Refine(worst *trace.Trace, profile *trace.Profile) *trace.Trace {
	out := &trace.Trace{
		Platform: worst.Platform,
		Workload: worst.Workload,
		Model:    worst.Model,
		Strategy: worst.Strategy,
		Seed:     worst.Seed,
		ExecTime: worst.ExecTime,
	}
	// Work on a mutable copy, grouped by source for the per-source pass.
	type slot struct {
		ev      trace.Event
		removed bool
	}
	bySource := make(map[trace.SourceKey][]*slot)
	var order []*slot
	for _, e := range worst.Events {
		s := &slot{ev: e}
		k := trace.SourceKey{Class: e.Class, Source: e.Source}
		bySource[k] = append(bySource[k], s)
		order = append(order, s)
	}

	for _, stats := range profile.SortedSources() {
		slots := bySource[stats.Key]
		if len(slots) == 0 {
			continue
		}
		expected := expectedOccurrences(stats, profile, worst.ExecTime)
		avgDur := stats.MeanDur()
		if avgDur <= 0 {
			continue
		}
		for rep := 0; rep < expected; rep++ {
			// Find the remaining instance closest in duration to the
			// average.
			best := -1
			var bestDist sim.Time
			for i, s := range slots {
				if s.removed {
					continue
				}
				d := s.ev.Duration - avgDur
				if d < 0 {
					d = -d
				}
				if best == -1 || d < bestDist {
					best = i
					bestDist = d
				}
			}
			if best == -1 {
				break // nothing left of this source
			}
			s := slots[best]
			s.ev.Duration -= avgDur
			if s.ev.Duration <= 0 {
				s.removed = true
			}
		}
	}

	for _, s := range order {
		if !s.removed && s.ev.Duration > 0 {
			out.Events = append(out.Events, s.ev)
		}
	}
	out.SortEvents()
	return out
}

// expectedOccurrences returns how many occurrences of a source the average
// system exhibits within the worst-case window: its average rate (count per
// simulated second across the profiled runs) times the window.
func expectedOccurrences(stats trace.SourceStats, profile *trace.Profile, window sim.Time) int {
	if profile.MeanExec <= 0 || stats.Traces == 0 {
		return 0
	}
	ratePerNs := stats.MeanCountPerTrace() / float64(profile.MeanExec)
	expected := ratePerNs * float64(window)
	return int(expected + 0.5)
}

// Generate builds the injection configuration (Figure 5) from a refined
// trace: per-CPU event lists with policies assigned by class, overlapping
// events merged. With improved=false the original pessimistic merge is
// used: any overlapping events on a CPU collapse into one event that runs
// SCHED_FIFO if any constituent did — the behaviour §5.2 found to
// compromise a worst-case trace by injecting large contiguous segments
// under the real-time policy. With improved=true, only events of the same
// class family (interrupt vs thread) merge, and thread-noise events get a
// boosted priority (negative niceness) so the scheduler runs them
// aggressively without starving the workload behind spurious FIFO time.
func Generate(refined *trace.Trace, improved bool) *Config {
	cfg := &Config{
		Platform:    refined.Platform,
		Workload:    refined.Workload,
		Model:       refined.Model,
		Strategy:    refined.Strategy,
		Seed:        refined.Seed,
		Window:      refined.ExecTime,
		AnomalyExec: refined.ExecTime,
		Improved:    improved,
	}
	byCPU := tracesByCPU(refined)
	cpus := make([]int, 0, len(byCPU))
	for cpu := range byCPU {
		cpus = append(cpus, cpu)
	}
	sort.Ints(cpus)
	for _, cpu := range cpus {
		evs := make([]NoiseEvent, 0, len(byCPU[cpu]))
		for _, e := range byCPU[cpu] {
			pol, prio := policyOf(e.Class)
			ne := NoiseEvent{
				Start:    e.Start,
				Duration: e.Duration,
				Policy:   pol,
				RTPrio:   prio,
				Class:    e.Class,
				Source:   e.Source,
			}
			if improved && pol == "SCHED_OTHER" {
				ne.Nice = -15
			}
			evs = append(evs, ne)
		}
		sortEventsByStart(evs)
		if improved {
			evs = mergeImproved(evs)
		} else {
			evs = mergeOriginal(evs)
		}
		cfg.CPUs = append(cfg.CPUs, CPUEvents{CPU: cpu, Events: evs})
	}
	return cfg
}

// mergeOriginal collapses any overlapping events into a single event with
// the pessimistic policy assumption: SCHED_FIFO wins.
func mergeOriginal(evs []NoiseEvent) []NoiseEvent {
	if len(evs) == 0 {
		return evs
	}
	out := []NoiseEvent{evs[0]}
	for _, e := range evs[1:] {
		last := &out[len(out)-1]
		if e.Start < last.End() {
			// Overlap: extend and escalate policy pessimistically.
			if e.End() > last.End() {
				last.Duration = e.End() - last.Start
			}
			if e.Policy == "SCHED_FIFO" {
				last.Policy = "SCHED_FIFO"
				if e.RTPrio > last.RTPrio {
					last.RTPrio = e.RTPrio
				}
				last.Nice = 0
			}
			if e.Source != last.Source {
				last.Source = last.Source + "+" + e.Source
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// mergeImproved merges overlapping events only within the same policy
// class, keeping interrupt-based and thread-based noise separate.
func mergeImproved(evs []NoiseEvent) []NoiseEvent {
	var fifo, other []NoiseEvent
	for _, e := range evs {
		if e.Policy == "SCHED_FIFO" {
			fifo = append(fifo, e)
		} else {
			other = append(other, e)
		}
	}
	mergeSame := func(in []NoiseEvent) []NoiseEvent {
		if len(in) == 0 {
			return nil
		}
		out := []NoiseEvent{in[0]}
		for _, e := range in[1:] {
			last := &out[len(out)-1]
			if e.Start < last.End() {
				if e.End() > last.End() {
					last.Duration = e.End() - last.Start
				}
				if e.RTPrio > last.RTPrio {
					last.RTPrio = e.RTPrio
				}
				if e.Nice < last.Nice {
					last.Nice = e.Nice
				}
				if e.Source != last.Source {
					last.Source = last.Source + "+" + e.Source
				}
				continue
			}
			out = append(out, e)
		}
		return out
	}
	merged := append(mergeSame(fifo), mergeSame(other)...)
	sortEventsByStart(merged)
	return merged
}
