package core

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

// replayOnSpin saturates the tiny machine with pinned 30ms spins, replays
// cfg, and returns the scheduler and the time the last spin finished.
func replayOnSpin(t *testing.T, cfg *Config) (*cpusched.Scheduler, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	opt.BalanceInterval = 0
	s := cpusched.New(eng, topo, opt)
	var tasks []*cpusched.Task
	for cpu := 0; cpu < topo.NumCPUs(); cpu++ {
		cpu := cpu
		tasks = append(tasks, s.Spawn(cpusched.TaskSpec{
			Name: "spin", Affinity: machine.SetOf(cpu),
		}, func(c *cpusched.Ctx) { c.ComputeDur(30 * sim.Millisecond) }))
	}
	if cfg != nil {
		r, err := NewReplayer(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
	}
	eng.RunWhile(func() bool {
		for _, tk := range tasks {
			if !tk.Done() {
				return true
			}
		}
		return false
	})
	return s, eng.Now()
}
