package core

import (
	"bytes"
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestMemoryNoiseSpecValidate(t *testing.T) {
	good := MemoryNoiseSpec{Window: sim.Second, Workers: 2, Period: 100 * sim.Millisecond, BurstBytes: 1e6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MemoryNoiseSpec{
		{Workers: 1, Period: 1, BurstBytes: 1},
		{Window: 1, Period: 1, BurstBytes: 1},
		{Window: 1, Workers: 1, BurstBytes: 1},
		{Window: 1, Workers: 1, Period: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMemoryNoiseBuild(t *testing.T) {
	spec := MemoryNoiseSpec{
		Window: 100 * sim.Millisecond, Workers: 3,
		Period: 25 * sim.Millisecond, BurstBytes: 2e6,
	}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.CPUs) != 3 {
		t.Fatalf("worker lists = %d", len(cfg.CPUs))
	}
	// 100ms window / 25ms period = 4 bursts per worker.
	for _, ce := range cfg.CPUs {
		if len(ce.Events) != 4 {
			t.Fatalf("worker %d bursts = %d, want 4", ce.CPU, len(ce.Events))
		}
		for _, e := range ce.Events {
			if e.MemBytes != 2e6 || e.Policy != "SCHED_OTHER" {
				t.Fatalf("bad event: %+v", e)
			}
		}
	}
	// Workers are phase-staggered.
	if cfg.CPUs[0].Events[0].Start == cfg.CPUs[1].Events[0].Start {
		t.Fatal("workers should be staggered")
	}
}

// TestMemoryNoiseContendsForBandwidth verifies the mechanism that makes
// this extension matter: memory noise slows a bandwidth-bound workload even
// when spare (housekeeping) cores are available to absorb CPU noise,
// because machine bandwidth is a global resource.
func TestMemoryNoiseContendsForBandwidth(t *testing.T) {
	run := func(inject *Config) sim.Time {
		eng := sim.NewEngine()
		topo := machine.MustPreset(machine.TinyTest) // 20 GB/s total
		opt := cpusched.Defaults()
		s := cpusched.New(eng, topo, opt)
		// Memory-bound workload on CPUs 0-2, CPU 3 left free (like HK).
		var tasks []*cpusched.Task
		for cpu := 0; cpu < 3; cpu++ {
			cpu := cpu
			tasks = append(tasks, s.Spawn(cpusched.TaskSpec{
				Name: "w", Affinity: machine.SetOf(cpu),
			}, func(c *cpusched.Ctx) { c.Memory(200e6) }))
		}
		if inject != nil {
			r, err := NewReplayer(s, inject)
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
		}
		eng.RunWhile(func() bool {
			for _, tk := range tasks {
				if !tk.Done() {
					return true
				}
			}
			return false
		})
		end := eng.Now()
		s.Shutdown()
		return end
	}

	base := run(nil)

	memCfg, err := (MemoryNoiseSpec{
		Window: 10 * sim.Second, Workers: 1,
		Period: 5 * sim.Millisecond, BurstBytes: 40e6,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	memNoisy := run(memCfg)

	// Equivalent CPU-occupation noise on the free core: absorbed.
	cpuCfg := &Config{Window: 10 * sim.Second, CPUs: []CPUEvents{{CPU: 0, Events: []NoiseEvent{
		{Start: sim.Millisecond, Duration: 20 * sim.Millisecond, Policy: "SCHED_OTHER",
			Class: cpusched.ClassThread, Source: "hog"},
	}}}}
	cpuNoisy := run(cpuCfg)

	if memNoisy <= base*102/100 {
		t.Fatalf("memory noise should slow a bandwidth-bound workload: base=%v noisy=%v", base, memNoisy)
	}
	if cpuNoisy > base*102/100 {
		t.Fatalf("CPU noise should be absorbed by the free core: base=%v noisy=%v", base, cpuNoisy)
	}
}

// TestMemoryNoiseReplayerRoundTrip ensures MemBytes events survive JSON.
func TestMemoryNoiseConfigJSON(t *testing.T) {
	cfg, err := (MemoryNoiseSpec{
		Window: sim.Second, Workers: 2, Period: 100 * sim.Millisecond, BurstBytes: 1e7,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfigJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPUs[0].Events[0].MemBytes != 1e7 {
		t.Fatal("MemBytes lost in JSON round trip")
	}
}
