package core

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/sim"
)

// IONoiseSpec parameterizes synthetic I/O interference — the other §7
// future-work noise type. An I/O storm is what a busy block device inflicts
// on its housing CPUs: bursts of block-layer interrupts (irq context, which
// preempts even SCHED_FIFO and cannot be absorbed by housekeeping cores,
// since device interrupts are steered to fixed CPUs) followed by
// writeback/flush worker activity (ordinary thread noise).
type IONoiseSpec struct {
	// Window is the injection window.
	Window sim.Time
	// CPUs are the logical CPUs the device's interrupts are steered to.
	CPUs []int
	// StormPeriod separates storm starts on each CPU.
	StormPeriod sim.Time
	// IRQsPerStorm is the number of completion interrupts per storm.
	IRQsPerStorm int
	// IRQDur is the duration of one interrupt.
	IRQDur sim.Time
	// IRQGap separates interrupts within a storm.
	IRQGap sim.Time
	// FlushDur is the writeback kworker burst that follows each storm
	// (0 disables it).
	FlushDur sim.Time
}

// DefaultIONoise returns a moderate storm: ~200 interrupts of 6 us every
// 50 ms plus a 300 us flush, roughly a saturated NVMe queue's profile.
func DefaultIONoise(window sim.Time, cpus []int) IONoiseSpec {
	return IONoiseSpec{
		Window:       window,
		CPUs:         cpus,
		StormPeriod:  50 * sim.Millisecond,
		IRQsPerStorm: 200,
		IRQDur:       6 * sim.Microsecond,
		IRQGap:       50 * sim.Microsecond,
		FlushDur:     300 * sim.Microsecond,
	}
}

// Validate checks the spec.
func (s IONoiseSpec) Validate() error {
	switch {
	case s.Window <= 0:
		return fmt.Errorf("core: io noise window must be positive")
	case len(s.CPUs) == 0:
		return fmt.Errorf("core: io noise needs at least one target CPU")
	case s.StormPeriod <= 0:
		return fmt.Errorf("core: io noise period must be positive")
	case s.IRQsPerStorm <= 0:
		return fmt.Errorf("core: io noise needs interrupts per storm")
	case s.IRQDur <= 0:
		return fmt.Errorf("core: io noise irq duration must be positive")
	case s.IRQGap < 0 || s.FlushDur < 0:
		return fmt.Errorf("core: io noise gaps must be non-negative")
	}
	for _, c := range s.CPUs {
		if c < 0 {
			return fmt.Errorf("core: io noise cpu %d invalid", c)
		}
	}
	return nil
}

// IORunner injects the storms directly (interrupts are not schedulable
// entities, so this runs beside a Config replayer rather than through it).
type IORunner struct {
	s    *cpusched.Scheduler
	spec IONoiseSpec
	// Storms counts storms started.
	Storms int
	stop   bool
}

// NewIORunner validates and prepares an I/O noise runner.
func NewIORunner(s *cpusched.Scheduler, spec IONoiseSpec) (*IORunner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &IORunner{s: s, spec: spec}, nil
}

// Start schedules the storms from the current simulated instant.
func (r *IORunner) Start() {
	base := r.s.Now()
	for i, cpu := range r.spec.CPUs {
		cpu := cpu
		// Stagger CPUs across the period.
		phase := sim.Time(int64(r.spec.StormPeriod) * int64(i) / int64(len(r.spec.CPUs)))
		r.scheduleStorm(cpu, base+phase, base+r.spec.Window)
	}
}

// Stop cancels future storms (already-started interrupts finish).
func (r *IORunner) Stop() { r.stop = true }

func (r *IORunner) scheduleStorm(cpu int, at, end sim.Time) {
	if at >= end {
		return
	}
	eng := r.s.Engine()
	eng.At(at, func() {
		if r.stop {
			return
		}
		r.Storms++
		for k := 0; k < r.spec.IRQsPerStorm; k++ {
			k := k
			off := sim.Time(k) * (r.spec.IRQDur + r.spec.IRQGap)
			eng.After(off, func() {
				if !r.stop {
					r.s.InjectIRQ(cpu, cpusched.ClassIRQ, "nvme0q1:130", r.spec.IRQDur)
				}
			})
		}
		if r.spec.FlushDur > 0 {
			cycles := r.s.Topology().CyclesPerNs()
			r.s.SpawnSeq(cpusched.TaskSpec{
				Name:   "flush",
				Source: fmt.Sprintf("kworker/u%d:flush", cpu),
				Kind:   cpusched.KindInjector,
			}, cpusched.ReqCompute(float64(r.spec.FlushDur)*cycles))
		}
		r.scheduleStorm(cpu, at+r.spec.StormPeriod, end)
	})
}
