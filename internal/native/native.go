// Package native is a best-effort replayer for real machines: it takes a
// noise configuration (core.Config) and replays its CPU-occupation events
// as busy-spinning goroutines on the host, plus a wall-clock harness for
// timing real workload functions under that noise.
//
// Unlike the paper's injector (and the simulated one in internal/core) it
// cannot use SCHED_FIFO or disable the RT throttle without root, so
// injected noise competes with the workload at normal priority; and Go's
// runtime does not expose CPU affinity, so "per-CPU" injector goroutines
// are pinned to OS threads (runtime.LockOSThread) but placed by the kernel.
// It is useful for qualitative experiments and as a template for a
// root-privileged port; the simulation remains the reference methodology.
package native

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Replayer replays a config on the host machine.
type Replayer struct {
	cfg *core.Config
	// SpinGranularity bounds each busy-spin check interval.
	SpinGranularity time.Duration
}

// NewReplayer validates the config and builds a native replayer.
func NewReplayer(cfg *core.Config) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Replayer{cfg: cfg, SpinGranularity: 50 * time.Microsecond}, nil
}

// toDuration converts simulated nanoseconds to wall nanoseconds (1:1).
func toDuration(t sim.Time) time.Duration { return time.Duration(t) }

// Run spawns one injector goroutine per configured CPU and replays the
// event schedule relative to start. It returns when every goroutine has
// finished its list or ctx is cancelled (the workload-completion early
// termination).
func (r *Replayer) Run(ctx context.Context, start time.Time) error {
	var wg sync.WaitGroup
	for _, ce := range r.cfg.CPUs {
		events := ce.Events
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One OS thread per injector process, as in the paper; the
			// kernel decides placement (no affinity).
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for _, ev := range events {
				if !sleepUntil(ctx, start.Add(toDuration(ev.Start))) {
					return
				}
				r.spin(ctx, toDuration(ev.Duration))
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		<-done // goroutines observe cancellation promptly
		return ctx.Err()
	}
}

// sleepUntil sleeps until the deadline or cancellation; it reports whether
// the deadline was reached.
func sleepUntil(ctx context.Context, deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// spin occupies the current OS thread for roughly d of wall time.
func (r *Replayer) spin(ctx context.Context, d time.Duration) {
	end := time.Now().Add(d)
	x := uint64(1)
	for time.Now().Before(end) {
		// A short arithmetic burst between clock checks.
		for i := 0; i < 2000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		if ctx.Err() != nil {
			return
		}
	}
	sink = x
}

// sink defeats dead-code elimination of the spin loop.
var sink uint64

// TimedRun measures fn under replayed noise: the injectors and fn start
// together; injection stops when fn returns.
func (r *Replayer) TimedRun(fn func()) (time.Duration, error) {
	if fn == nil {
		return 0, fmt.Errorf("native: nil workload")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	errCh := make(chan error, 1)
	go func() { errCh <- r.Run(ctx, start) }()
	fn()
	elapsed := time.Since(start)
	cancel()
	<-errCh // wait for injectors to unwind
	return elapsed, nil
}

// Benchmark measures fn reps times without noise and reps times with it,
// returning mean wall durations.
func (r *Replayer) Benchmark(fn func(), reps int) (base, injected time.Duration, err error) {
	if reps <= 0 {
		return 0, 0, fmt.Errorf("native: reps must be positive")
	}
	var baseSum, injSum time.Duration
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		baseSum += time.Since(t0)
	}
	for i := 0; i < reps; i++ {
		d, err := r.TimedRun(fn)
		if err != nil {
			return 0, 0, err
		}
		injSum += d
	}
	return baseSum / time.Duration(reps), injSum / time.Duration(reps), nil
}
