package native

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpusched"
	"repro/internal/sim"
)

func smallConfig(start, dur sim.Time) *core.Config {
	return &core.Config{
		Window: sim.Second,
		CPUs: []core.CPUEvents{{CPU: 0, Events: []core.NoiseEvent{{
			Start: start, Duration: dur,
			Policy: "SCHED_OTHER", Class: cpusched.ClassThread, Source: "test",
		}}}},
	}
}

func TestNewReplayerValidates(t *testing.T) {
	if _, err := NewReplayer(&core.Config{Window: 0}); err == nil {
		t.Fatal("invalid config should be rejected")
	}
	if _, err := NewReplayer(smallConfig(0, sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompletesSchedule(t *testing.T) {
	r, err := NewReplayer(smallConfig(2*sim.Millisecond, 3*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Run(context.Background(), start); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Schedule ends at 5ms; allow generous slack for CI machines.
	if elapsed < 4*time.Millisecond {
		t.Fatalf("replay finished too early: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("replay took too long: %v", elapsed)
	}
}

func TestRunCancellation(t *testing.T) {
	// An event far in the future: cancellation must win.
	r, err := NewReplayer(smallConfig(10*sim.Second, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx, time.Now()) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run should report context error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not stop the replayer")
	}
}

func TestTimedRunStopsInjectionEarly(t *testing.T) {
	// Workload finishes quickly; the pending far-future event must not
	// hold TimedRun open.
	r, err := NewReplayer(smallConfig(10*sim.Second, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	d, err := r.TimedRun(func() { time.Sleep(5 * time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	if d < 4*time.Millisecond {
		t.Fatalf("measured %v, want >= ~5ms", d)
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatal("TimedRun did not terminate injection early")
	}
}

func TestTimedRunNilWorkload(t *testing.T) {
	r, _ := NewReplayer(smallConfig(0, sim.Millisecond))
	if _, err := r.TimedRun(nil); err == nil {
		t.Fatal("nil workload should error")
	}
}

func TestBenchmarkRepsValidation(t *testing.T) {
	r, _ := NewReplayer(smallConfig(0, sim.Millisecond))
	if _, _, err := r.Benchmark(func() {}, 0); err == nil {
		t.Fatal("zero reps should error")
	}
}

func TestBenchmarkRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	r, _ := NewReplayer(smallConfig(0, 2*sim.Millisecond))
	base, injected, err := r.Benchmark(func() {
		end := time.Now().Add(3 * time.Millisecond)
		for time.Now().Before(end) {
		}
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 || injected <= 0 {
		t.Fatalf("benchmark durations: base=%v injected=%v", base, injected)
	}
}
