package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms and renders them as
// Prometheus text exposition or JSON. It replaces per-component ad-hoc
// counter structs: the daemon's service metrics and the simulator's kernel
// counters publish through one of these.
//
// A metric name may carry a Prometheus label suffix ("jobs_total
// {state=\"done\"}"); samples of the same family (the name up to '{')
// share one # TYPE header. Registration is idempotent: asking for an
// existing name returns the existing metric, so call sites need no
// init-order coordination. Value updates are atomic; the registry is safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
	help     map[string]string // by family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
		help:     make(map[string]string),
	}
}

// family strips a label suffix off a sample name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) setHelp(name, help string) {
	if f := family(name); help != "" && r.help[f] == "" {
		r.help[f] = help
	}
}

// Counter returns the monotonically increasing counter with this name,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.setHelp(name, help)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with this name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.setHelp(name, help)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed at render time — for
// derived metrics (hit ratios, utilization fractions) that would otherwise
// drift from the counters they summarize between updates. fn is called with
// the registry lock held, so it must not call back into the registry; reading
// Counter/Gauge values directly (atomic loads) is safe. Registration is
// idempotent like the other metric kinds: the first fn for a name wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; ok {
		return
	}
	r.setHelp(name, help)
	r.funcs[name] = fn
}

// Histogram returns the histogram with this name, creating it on first use
// with the given upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.setHelp(name, help)
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// AddFloor adjusts the value by d but never below floor — for gauges whose
// invariant makes negative values meaningless (in-flight counts), where a
// double decrement must saturate rather than corrupt the metric.
func (g *Gauge) AddFloor(d, floor int64) {
	for {
		cur := g.v.Load()
		next := cur + d
		if next < floor {
			next = floor
		}
		if g.v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with a sum and a count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last bucket is +Inf
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, families sorted by name, samples sorted within a family. Output
// is deterministic for a fixed set of values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	type fam struct {
		typ   string
		names []string
	}
	fams := make(map[string]*fam)
	add := func(name, typ string) {
		f := family(name)
		if fams[f] == nil {
			fams[f] = &fam{typ: typ}
		}
		fams[f].names = append(fams[f].names, name)
	}
	for name := range r.counters {
		add(name, "counter")
	}
	for name := range r.gauges {
		add(name, "gauge")
	}
	for name := range r.funcs {
		add(name, "gaugefunc")
	}
	for name := range r.hists {
		add(name, "histogram")
	}
	order := make([]string, 0, len(fams))
	for f := range fams {
		order = append(order, f)
	}
	sort.Strings(order)
	for _, fname := range order {
		f := fams[fname]
		sort.Strings(f.names)
		if help := r.help[fname]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fname, help)
		}
		typ := f.typ
		if typ == "gaugefunc" { // computed gauges render as plain gauges
			typ = "gauge"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fname, typ)
		for _, name := range f.names {
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value())
			case "gauge":
				fmt.Fprintf(w, "%s %d\n", name, r.gauges[name].Value())
			case "gaugefunc":
				fmt.Fprintf(w, "%s %.6f\n", name, r.funcs[name]())
			case "histogram":
				s := r.hists[name].Snapshot()
				var cum uint64
				for i, b := range s.Bounds {
					cum += s.Counts[i]
					fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), cum)
				}
				cum += s.Counts[len(s.Bounds)]
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
				fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
				fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
			}
		}
	}
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}

// registryJSON is the JSON wire form of a registry snapshot.
type registryJSON struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	GaugeFuncs map[string]float64      `json:"gauge_funcs,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// WriteJSON renders every metric as one JSON object (keys sorted by Go's
// deterministic map marshalling).
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	out := registryJSON{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
	}
	if len(r.funcs) > 0 {
		out.GaugeFuncs = make(map[string]float64, len(r.funcs))
		for name, fn := range r.funcs {
			out.GaugeFuncs[name] = fn()
		}
	}
	if len(r.hists) > 0 {
		out.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			out.Histograms[name] = h.Snapshot()
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
