// Package obs is the simulator's observability layer: a span tracer keyed
// to simulated time, a bounded flight recorder, and a counter/gauge/
// histogram registry shared by the CLI and the daemon.
//
// Unlike the osnoise-style tracer (internal/trace.Tracer attached via
// cpusched.SetTracer), which deliberately steals simulated CPU time per
// recorded event to model the paper's Table 1 tracing overhead, an obs
// Recorder is a purely passive observer: attaching one never changes a
// single scheduling decision or timestamp, so simulation outputs are
// byte-identical with observability on or off. The golden-fixture tests in
// internal/experiment pin that property.
//
// A Recorder is owned by one simulation run and, like the engine it
// observes, is not safe for concurrent use. The Registry is safe for
// concurrent use (the daemon updates it from request handlers).
package obs

import "repro/internal/sim"

// Phase classifies an event, mirroring the Chrome Trace Event Format
// phase letters.
type Phase byte

const (
	// PhaseSpan is a complete interval ("X"): a task occupying a CPU, an
	// interrupt, a barrier wait.
	PhaseSpan Phase = 'X'
	// PhaseInstant is a point event ("i"): a preemption, a migration, a
	// noise spawn.
	PhaseInstant Phase = 'i'
)

// Event is one observed scheduling event in simulated time. Fields are
// primitives only so recording an event is a struct copy, never an
// allocation.
type Event struct {
	// Start is the simulated begin instant (the instant itself for
	// PhaseInstant); Dur is the span length, 0 for instants.
	Start sim.Time `json:"start_ns"`
	Dur   sim.Time `json:"dur_ns,omitempty"`
	Phase Phase    `json:"phase"`
	// CPU is the logical CPU the event is attributed to.
	CPU int `json:"cpu"`
	// Name identifies the event ("nbody-w3", "preempt", "barrier-wait");
	// Cat groups it for trace viewers ("workload", "sched", "irq_noise");
	// Arg carries one free-form detail (source, victim, policy).
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Arg  string `json:"arg,omitempty"`
}

// Defaults for Options fields left zero.
const (
	DefaultRing      = 256
	DefaultMaxEvents = 1 << 20
)

// Options configures a Recorder.
type Options struct {
	// Timeline keeps the full event stream for Chrome-trace export. When
	// false only the flight ring is maintained.
	Timeline bool
	// Ring is the flight-recorder capacity in events (0 = DefaultRing).
	Ring int
	// MaxEvents caps the timeline buffer; excess events are counted in
	// Dropped instead of stored (0 = DefaultMaxEvents).
	MaxEvents int
	// Reg, when non-nil, is the registry run-level counters are published
	// to; a Recorder created with a nil Reg gets its own.
	Reg *Registry
}

// Recorder collects events from one simulation run: optionally the full
// timeline, and always a bounded ring of the most recent events (the
// flight recorder, dumped when a rep fails). It is not safe for concurrent
// use; the simulation engine is single-threaded and task bodies only run
// while the engine thread is parked, so all emission sites are serialized.
type Recorder struct {
	timeline  []Event
	keep      bool
	maxEvents int
	dropped   uint64

	ring     []Event
	ringNext int
	ringLen  int

	total uint64
	reg   *Registry

	// root is non-nil on a lane view (see Lane): events recorded through
	// the view are offset by cpuBase and stored on the root recorder.
	root    *Recorder
	cpuBase int

	// lanes, when non-nil, names the per-node CPU blocks of a multi-node
	// run; WriteChromeJSON groups the export by them (one Perfetto process
	// per node).
	lanes []NodeLane
}

// NewRecorder creates a recorder with the given options.
func NewRecorder(opt Options) *Recorder {
	ring := opt.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	maxEv := opt.MaxEvents
	if maxEv <= 0 {
		maxEv = DefaultMaxEvents
	}
	reg := opt.Reg
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{
		keep:      opt.Timeline,
		maxEvents: maxEv,
		ring:      make([]Event, ring),
		reg:       reg,
	}
}

// self resolves a lane view to its root recorder; reads always happen on
// the root, which owns the timeline, ring, and counters.
func (r *Recorder) self() *Recorder {
	if r.root != nil {
		return r.root
	}
	return r
}

// Lane returns a view of r that attributes events to the CPU block
// starting at base: an event recorded on CPU c through the lane lands on
// the root recorder as CPU base+c. Lanes let the per-node schedulers of a
// multi-node simulation share one recorder (one timeline, one flight
// ring, one registry) while keeping their CPUs in disjoint blocks. A lane
// of a lane composes offsets. Like the root recorder, a lane is not safe
// for concurrent use — all per-node schedulers of a run share one engine
// thread.
func (r *Recorder) Lane(base int) *Recorder {
	return &Recorder{root: r.self(), cpuBase: r.cpuBase + base}
}

// NodeLane names one node's CPU block in the cluster-global numbering,
// for node-grouped Chrome-trace export.
type NodeLane struct {
	// Name labels the node ("node0", "node1 (straggler)").
	Name string `json:"name"`
	// CPUBase is the block's first global CPU; NumCPUs its width.
	CPUBase int `json:"cpu_base"`
	NumCPUs int `json:"num_cpus"`
}

// SetNodeLanes declares the per-node CPU blocks of the run the recorder
// observes. WriteChromeJSON then groups the export by node (one Perfetto
// process per node) instead of one flat row set.
func (r *Recorder) SetNodeLanes(lanes []NodeLane) { r.self().lanes = lanes }

// NodeLanes returns the declared per-node CPU blocks, nil for
// single-node runs.
func (r *Recorder) NodeLanes() []NodeLane { return r.self().lanes }

// Registry returns the registry run-level counters are published to.
func (r *Recorder) Registry() *Registry { return r.self().reg }

// Span records a complete interval [start, end) on a CPU.
func (r *Recorder) Span(cpu int, name, cat, arg string, start, end sim.Time) {
	if end < start {
		return
	}
	r.add(Event{Start: start, Dur: end - start, Phase: PhaseSpan,
		CPU: cpu, Name: name, Cat: cat, Arg: arg})
}

// Instant records a point event at simulated time at.
func (r *Recorder) Instant(cpu int, name, cat, arg string, at sim.Time) {
	r.add(Event{Start: at, Phase: PhaseInstant, CPU: cpu, Name: name,
		Cat: cat, Arg: arg})
}

func (r *Recorder) add(ev Event) {
	if r.root != nil {
		ev.CPU += r.cpuBase
		r.root.add(ev)
		return
	}
	r.total++
	r.ring[r.ringNext] = ev
	r.ringNext++
	if r.ringNext == len(r.ring) {
		r.ringNext = 0
	}
	if r.ringLen < len(r.ring) {
		r.ringLen++
	}
	if !r.keep {
		return
	}
	if len(r.timeline) >= r.maxEvents {
		r.dropped++
		return
	}
	r.timeline = append(r.timeline, ev)
}

// Total returns how many events were emitted to the recorder.
func (r *Recorder) Total() uint64 { return r.self().total }

// Dropped returns how many timeline events were discarded by MaxEvents.
func (r *Recorder) Dropped() uint64 { return r.self().dropped }

// Events returns the recorded timeline in emission order (empty unless
// Options.Timeline). The slice is the recorder's own; do not mutate it.
func (r *Recorder) Events() []Event { return r.self().timeline }

// Recent returns a copy of the flight ring in emission order: the most
// recent events, oldest first.
func (r *Recorder) Recent() []Event {
	r = r.self()
	out := make([]Event, 0, r.ringLen)
	if r.ringLen == len(r.ring) {
		out = append(out, r.ring[r.ringNext:]...)
		out = append(out, r.ring[:r.ringNext]...)
		return out
	}
	return append(out, r.ring[:r.ringLen]...)
}
