package obs

import (
	"encoding/json"
	"io"
)

// Flight is a flight-recorder dump: the most recent scheduling events of
// one run, captured when a rep fails (or on demand via the daemon's
// /debug/flightrecorder endpoint). Events are oldest-first.
type Flight struct {
	// Label identifies the run ("rep 3 of nbody/omp/Rm", a job id).
	Label string `json:"label"`
	// Err is the failure that triggered the dump, empty for on-demand dumps.
	Err string `json:"error,omitempty"`
	// Total is how many events the run emitted in all; the ring holds only
	// the tail.
	Total  uint64  `json:"total_events"`
	Events []Event `json:"events"`
}

// FlightDump captures the recorder's ring into a Flight.
func (r *Recorder) FlightDump(label string, err error) Flight {
	f := Flight{Label: label, Total: r.Total(), Events: r.Recent()}
	if err != nil {
		f.Err = err.Error()
	}
	return f
}

// WriteFlight writes the dump as indented JSON.
func WriteFlight(w io.Writer, f Flight) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
