package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecorderTimelineAndRing(t *testing.T) {
	r := NewRecorder(Options{Timeline: true, Ring: 4})
	for i := 0; i < 10; i++ {
		r.Span(i%2, fmt.Sprintf("t%d", i), "workload", "", sim.Time(i*10), sim.Time(i*10+5))
	}
	r.Instant(0, "preempt", "sched", "victim", 200)
	if got := len(r.Events()); got != 11 {
		t.Fatalf("timeline len = %d, want 11", got)
	}
	if r.Total() != 11 {
		t.Fatalf("total = %d, want 11", r.Total())
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring len = %d, want 4", len(recent))
	}
	// Oldest-first tail: t7, t8, t9, preempt.
	want := []string{"t7", "t8", "t9", "preempt"}
	for i, ev := range recent {
		if ev.Name != want[i] {
			t.Fatalf("ring[%d] = %q, want %q", i, ev.Name, want[i])
		}
	}
	if recent[3].Phase != PhaseInstant || recent[3].Dur != 0 {
		t.Fatalf("instant event malformed: %+v", recent[3])
	}
}

func TestRecorderRingOnlyKeepsNoTimeline(t *testing.T) {
	r := NewRecorder(Options{Ring: 8})
	for i := 0; i < 100; i++ {
		r.Span(0, "t", "workload", "", sim.Time(i), sim.Time(i+1))
	}
	if len(r.Events()) != 0 {
		t.Fatalf("timeline kept %d events without Options.Timeline", len(r.Events()))
	}
	if len(r.Recent()) != 8 {
		t.Fatalf("ring len = %d, want 8", len(r.Recent()))
	}
	if err := r.WriteChromeJSON(new(bytes.Buffer)); err == nil {
		t.Fatal("WriteChromeJSON should fail without a timeline")
	}
}

func TestRecorderMaxEventsDrops(t *testing.T) {
	r := NewRecorder(Options{Timeline: true, MaxEvents: 5})
	for i := 0; i < 9; i++ {
		r.Instant(0, "e", "sched", "", sim.Time(i))
	}
	if len(r.Events()) != 5 {
		t.Fatalf("timeline len = %d, want 5", len(r.Events()))
	}
	if r.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", r.Dropped())
	}
	// The ring still has the most recent events.
	recent := r.Recent()
	if recent[len(recent)-1].Start != 8 {
		t.Fatalf("ring misses the newest event: %+v", recent[len(recent)-1])
	}
}

func TestWriteChromeJSON(t *testing.T) {
	r := NewRecorder(Options{Timeline: true})
	r.Span(1, "w0", "workload", "policy=fifo", 2000, 5000)
	r.Span(0, "noise", "noise", "", 1000, 1500)
	r.Instant(1, "migrate", "sched", "w0", 4000)
	var buf bytes.Buffer
	if err := r.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata rows (cpu 0, cpu 1) + 3 events.
	if len(out) != 5 {
		t.Fatalf("got %d entries, want 5", len(out))
	}
	if out[0]["ph"] != "M" || out[1]["ph"] != "M" {
		t.Fatalf("missing thread_name metadata rows: %v", out[:2])
	}
	// Events sorted by start time: noise (1000) first.
	if out[2]["name"] != "noise" {
		t.Fatalf("events not time-sorted: %v", out[2])
	}
	if out[3]["name"] != "w0" || out[3]["dur"] != 3.0 {
		t.Fatalf("span event wrong: %v", out[3])
	}
	if out[4]["ph"] != "i" || out[4]["s"] != "t" {
		t.Fatalf("instant event wrong: %v", out[4])
	}
}

func TestFlightDump(t *testing.T) {
	r := NewRecorder(Options{Ring: 3})
	for i := 0; i < 7; i++ {
		r.Instant(0, fmt.Sprintf("e%d", i), "sched", "", sim.Time(i))
	}
	f := r.FlightDump("rep 2", errors.New("deadlock"))
	if f.Total != 7 || len(f.Events) != 3 || f.Err != "deadlock" {
		t.Fatalf("flight dump wrong: %+v", f)
	}
	var buf bytes.Buffer
	if err := WriteFlight(&buf, f); err != nil {
		t.Fatal(err)
	}
	var back Flight
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if back.Label != "rep 2" || len(back.Events) != 3 {
		t.Fatalf("round-trip wrong: %+v", back)
	}
}

func TestRegistryCountersGaugesRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(`jobs_total{state="done"}`, "Jobs by state.")
	c.Add(2)
	reg.Counter(`jobs_total{state="failed"}`, "").Inc()
	g := reg.Gauge("inflight", "In-flight jobs.")
	g.Add(3)
	g.AddFloor(-5, 0)
	if g.Value() != 0 {
		t.Fatalf("AddFloor: got %d, want 0", g.Value())
	}
	// Idempotent registration returns the same metric.
	if reg.Counter(`jobs_total{state="done"}`, "") != c {
		t.Fatal("re-registration returned a new counter")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs by state.",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 2`,
		`jobs_total{state="failed"} 1`,
		"# TYPE inflight gauge",
		"inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders are byte-identical.
	var buf2 bytes.Buffer
	reg.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("prometheus render not deterministic")
	}
}

func TestRegistryHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Counts[0] != 1 || s.Counts[1] != 2 || s.Counts[2] != 1 || s.Counts[3] != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", s)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(7)
	reg.Gauge("b", "").Set(-2)
	reg.Histogram("h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out registryJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out.Counters["a_total"] != 7 || out.Gauges["b"] != -2 || out.Histograms["h"].Count != 1 {
		t.Fatalf("JSON round-trip wrong: %+v", out)
	}
}
