package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome Trace Event Format export: a recorded timeline opens directly in
// chrome://tracing or https://ui.perfetto.dev, one timeline row per
// logical CPU. Timestamps are simulated microseconds.

// chromeEvent is one event in the Trace Event Format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeJSON renders events as a Trace Event Format JSON array, with
// per-CPU thread_name metadata rows. Events are ordered by (start, emission
// order), which is deterministic because recording order is.
func WriteChromeJSON(w io.Writer, events []Event) error {
	idx := make([]int, len(events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return events[idx[a]].Start < events[idx[b]].Start
	})
	cpus := make([]int, 0, 8)
	seen := make(map[int]bool, 8)
	for _, e := range events {
		if !seen[e.CPU] {
			seen[e.CPU] = true
			cpus = append(cpus, e.CPU)
		}
	}
	sort.Ints(cpus)
	out := make([]any, 0, len(events)+len(cpus))
	for _, cpu := range cpus {
		out = append(out, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 0, "tid": cpu,
			"args": map[string]string{"name": fmt.Sprintf("cpu %d", cpu)},
		})
	}
	for _, i := range idx {
		e := events[i]
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(rune(e.Phase)),
			TS:   float64(e.Start) / 1e3,
			PID:  0,
			TID:  e.CPU,
		}
		if e.Phase == PhaseSpan {
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.S = "t" // thread-scoped instant marker
		}
		if e.Arg != "" {
			ce.Args = map[string]string{"arg": e.Arg}
		}
		out = append(out, ce)
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteChromeJSONNodes renders events grouped by node: each NodeLane
// becomes one Perfetto process (pid = lane index + 1, named after the
// node) whose threads are the node-local CPUs, so multi-node timelines
// show placement decisions and straggler drag side by side. Events whose
// CPU falls outside every lane land in pid 0 ("cluster"), which carries
// cross-node markers such as placement instants.
func WriteChromeJSONNodes(w io.Writer, events []Event, lanes []NodeLane) error {
	if len(lanes) == 0 {
		return WriteChromeJSON(w, events)
	}
	laneOf := func(cpu int) int {
		for i, l := range lanes {
			if cpu >= l.CPUBase && cpu < l.CPUBase+l.NumCPUs {
				return i
			}
		}
		return -1
	}
	idx := make([]int, len(events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return events[idx[a]].Start < events[idx[b]].Start
	})
	out := make([]any, 0, len(events)+2*len(lanes))
	for i, l := range lanes {
		out = append(out, map[string]any{
			"name": "process_name", "ph": "M", "pid": i + 1, "tid": 0,
			"args": map[string]string{"name": l.Name},
		})
		for c := 0; c < l.NumCPUs; c++ {
			out = append(out, map[string]any{
				"name": "thread_name", "ph": "M", "pid": i + 1, "tid": c,
				"args": map[string]string{"name": fmt.Sprintf("cpu %d", c)},
			})
		}
	}
	out = append(out, map[string]any{
		"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
		"args": map[string]string{"name": "cluster"},
	})
	for _, i := range idx {
		e := events[i]
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(rune(e.Phase)),
			TS:   float64(e.Start) / 1e3,
		}
		if li := laneOf(e.CPU); li >= 0 {
			ce.PID = li + 1
			ce.TID = e.CPU - lanes[li].CPUBase
		} else {
			ce.PID = 0
			ce.TID = e.CPU
		}
		if e.Phase == PhaseSpan {
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.S = "t"
		}
		if e.Arg != "" {
			ce.Args = map[string]string{"arg": e.Arg}
		}
		out = append(out, ce)
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteChromeJSON exports the recorder's timeline (see the package-level
// function); recorders with declared node lanes export node-grouped. It
// fails when the recorder was created without Options.Timeline, since the
// export would silently be near-empty.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	r = r.self()
	if !r.keep {
		return fmt.Errorf("obs: recorder has no timeline (Options.Timeline was false)")
	}
	if len(r.lanes) > 0 {
		return WriteChromeJSONNodes(w, r.timeline, r.lanes)
	}
	return WriteChromeJSON(w, r.timeline)
}
