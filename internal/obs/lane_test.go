package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestLaneOffsetsCPUs(t *testing.T) {
	root := NewRecorder(Options{Timeline: true})
	l0 := root.Lane(0)
	l1 := root.Lane(4)
	l0.Span(2, "a", "workload", "", 0, 10)
	l1.Span(2, "b", "workload", "", 5, 15)
	l1.Instant(0, "c", "sched", "", 20)

	evs := root.Events()
	if len(evs) != 3 {
		t.Fatalf("timeline len = %d, want 3 (lanes delegate to root)", len(evs))
	}
	wantCPU := map[string]int{"a": 2, "b": 6, "c": 4}
	for _, ev := range evs {
		if ev.CPU != wantCPU[ev.Name] {
			t.Fatalf("event %q on cpu %d, want %d", ev.Name, ev.CPU, wantCPU[ev.Name])
		}
	}
	// Reads through a lane resolve to the root's state.
	if l1.Total() != 3 || len(l0.Events()) != 3 {
		t.Fatalf("lane reads diverge from root: total=%d events=%d", l1.Total(), len(l0.Events()))
	}
}

func TestLaneComposition(t *testing.T) {
	root := NewRecorder(Options{Timeline: true})
	// A lane of a lane offsets by the sum and still records into the root.
	nested := root.Lane(10).Lane(3)
	nested.Span(1, "x", "workload", "", 0, 1)
	evs := root.Events()
	if len(evs) != 1 || evs[0].CPU != 14 {
		t.Fatalf("nested lane: got %+v, want one event on cpu 14", evs)
	}
}

func TestNodeLanesGroupChromeExport(t *testing.T) {
	root := NewRecorder(Options{Timeline: true})
	root.Lane(0).Span(0, "w0", "workload", "", 0, 10)
	root.Lane(4).Span(1, "w1", "workload", "", 0, 10)
	root.Instant(4, "place", "cluster", "job0 -> node1", 0)
	root.SetNodeLanes([]NodeLane{
		{Name: "node0", CPUBase: 0, NumCPUs: 4},
		{Name: "node1", CPUBase: 4, NumCPUs: 4},
	})

	var buf bytes.Buffer
	if err := root.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var traceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &traceEvents); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}

	procNames := map[int]string{}
	type placed struct{ pid, tid int }
	var got = map[string]placed{}
	for _, ev := range traceEvents {
		if ev.Name == "process_name" {
			procNames[ev.Pid] = ev.Args["name"]
			continue
		}
		if ev.Ph == "X" || ev.Ph == "i" {
			got[ev.Name] = placed{ev.Pid, ev.Tid}
		}
	}
	if procNames[1] != "node0" || procNames[2] != "node1" {
		t.Fatalf("process names %v, want pid1=node0 pid2=node1", procNames)
	}
	if procNames[0] != "cluster" {
		t.Fatalf("pid 0 named %q, want cluster", procNames[0])
	}
	// w0: node0 cpu0 -> pid 1 tid 0. w1: node1 local cpu 1 -> pid 2 tid 1.
	if got["w0"] != (placed{1, 0}) {
		t.Fatalf("w0 at %+v, want pid1/tid0", got["w0"])
	}
	if got["w1"] != (placed{2, 1}) {
		t.Fatalf("w1 at %+v, want pid2/tid1", got["w1"])
	}
	// Cluster-level instants land on the owning node's lane (cpu 4 = node1).
	if got["place"].pid != 2 {
		t.Fatalf("place instant on pid %d, want 2", got["place"].pid)
	}
}

func TestLaneFlightDump(t *testing.T) {
	root := NewRecorder(Options{Ring: 4})
	lane := root.Lane(8)
	lane.Span(0, "t", "workload", "", 0, sim.Time(1))
	f := lane.FlightDump("lane test", nil)
	if f.Total != 1 {
		t.Fatalf("flight total = %d, want 1", f.Total)
	}
	if len(f.Events) != 1 || f.Events[0].CPU != 8 {
		t.Fatalf("flight events = %+v, want one event on cpu 8", f.Events)
	}
}
