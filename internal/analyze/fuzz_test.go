package analyze

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzAnalysisSpecHash fuzzes the analysis content key, mirroring
// FuzzSpecHashCanonical for experiment jobs: semantically equal specs must
// hash equal (spelling, source order/duplicates, ladder order/duplicates,
// explicit defaults), and changing any semantic field must move the key —
// a collision would silently serve one analysis's artifact for another.
func FuzzAnalysisSpecHash(f *testing.F) {
	f.Add("tiny-test", "nbody", uint8(0), uint8(0), uint64(1), 3, uint8(0), uint8(0), false, false, "small")
	f.Add("intel-9700kf", "babelstream", uint8(1), uint8(3), uint64(99), 10, uint8(3), uint8(1), true, true, "")
	f.Add("amd-9950x3d", "minife", uint8(0), uint8(5), uint64(7), 1, uint8(63), uint8(2), false, true, "default")
	f.Fuzz(func(t *testing.T, platform, workload string, modelSel, stratSel uint8,
		seed uint64, reps int, srcMask, ladderSel uint8, runlevel3, timeline bool, size string) {
		models := []string{"omp", "sycl"}
		strategies := []string{"Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2"}
		allSources := []string{"bandwidth", "barrier", "daemon", "irq", "smt", "softirq"}
		var sources []string
		for i, src := range allSources {
			if srcMask&(1<<i) != 0 {
				sources = append(sources, src)
			}
		}
		ladders := [][]float64{nil, {1, 2}, {0.5, 1, 2, 4}, {1, 8}}
		spec := Spec{
			Platform: platform, Workload: workload,
			Model:    models[int(modelSel)%len(models)],
			Strategy: strategies[int(stratSel)%len(strategies)],
			Seed:     seed, Reps: reps, Size: size,
			Sources: sources, Ladder: ladders[int(ladderSel)%len(ladders)],
			Runlevel3: runlevel3, Timeline: timeline,
		}
		spec.Normalize()
		if spec.Validate(0) != nil {
			t.Skip()
		}
		h0, err := SpecHash(&spec)
		if err != nil {
			t.Fatalf("hashing valid spec: %v", err)
		}

		// Determinism: hashing a copy yields the same key.
		clone := spec
		clone.Sources = append([]string(nil), spec.Sources...)
		clone.Ladder = append([]float64(nil), spec.Ladder...)
		if h, _ := SpecHash(&clone); h != h0 {
			t.Fatalf("clone hash differs: %s vs %s", h, h0)
		}

		// Representation variants collapse to the same key.
		variants := []func(*Spec){
			func(s *Spec) { s.Platform = "  " + s.Platform + "\t" },
			func(s *Spec) { s.Model = strings.ToUpper(s.Model) },
			func(s *Spec) {
				if s.Size == "" {
					s.Size = "default"
				}
			},
			func(s *Spec) { // reverse the source list; duplicate one entry
				if len(s.Sources) > 0 {
					rev := make([]string, 0, len(s.Sources)+1)
					for i := len(s.Sources) - 1; i >= 0; i-- {
						rev = append(rev, s.Sources[i])
					}
					rev = append(rev, s.Sources[0])
					s.Sources = rev
				}
			},
			func(s *Spec) { // reverse the ladder; duplicate one rung
				if len(s.Ladder) > 0 {
					rev := make([]float64, 0, len(s.Ladder)+1)
					for i := len(s.Ladder) - 1; i >= 0; i-- {
						rev = append(rev, s.Ladder[i])
					}
					rev = append(rev, s.Ladder[0])
					s.Ladder = rev
				}
			},
			func(s *Spec) { // spell out the defaults explicitly
				if s.Sources == nil {
					s.Sources = append([]string(nil), allSources...)
				}
				if s.Ladder == nil {
					s.Ladder = DefaultLadder()
				}
			},
		}
		for i, vary := range variants {
			v := clone
			v.Sources = append([]string(nil), clone.Sources...)
			v.Ladder = append([]float64(nil), clone.Ladder...)
			vary(&v)
			if h, err := SpecHash(&v); err != nil || h != h0 {
				t.Fatalf("variant %d: hash %s err %v, want %s", i, h, err, h0)
			}
		}

		// Semantic mutations must move the key.
		mutations := []func(*Spec){
			func(s *Spec) { s.Seed++ },
			func(s *Spec) { s.Reps++ },
			func(s *Spec) { s.Runlevel3 = !s.Runlevel3 },
			func(s *Spec) { s.Timeline = !s.Timeline },
			func(s *Spec) {
				if s.Model == "omp" {
					s.Model = "sycl"
				} else {
					s.Model = "omp"
				}
			},
			func(s *Spec) {
				if len(s.EffectiveSources()) > 1 {
					s.Sources = s.EffectiveSources()[:1]
				} else {
					s.Sources = nil
				}
			},
			func(s *Spec) { s.Ladder = []float64{1, 3, 9} },
		}
		for i, mut := range mutations {
			m := clone
			m.Sources = append([]string(nil), clone.Sources...)
			m.Ladder = append([]float64(nil), clone.Ladder...)
			mut(&m)
			m.Normalize()
			if m.Validate(0) != nil {
				continue // a mutation may leave the valid domain; only valid specs must differ
			}
			if h, err := SpecHash(&m); err != nil || h == h0 {
				t.Fatalf("mutation %d: key did not move (err %v)", i, err)
			}
		}
	})
}

// FuzzArtifactRoundTrip fuzzes the manifest codec: any artifact assembled
// from structurally valid curves must survive Encode -> Decode -> Encode
// byte-identically — the property the fleet merger leans on when it
// decodes shard artifacts and re-encodes the merged one.
func FuzzArtifactRoundTrip(f *testing.F) {
	f.Add(uint64(42), 3, uint8(1), uint8(1), 1.5, 0.25, true)
	f.Add(uint64(7), 1, uint8(5), uint8(2), -2.0, 100.5, false)
	f.Add(uint64(0), 10, uint8(63), uint8(3), 0.0, 0.0, true)
	f.Fuzz(func(t *testing.T, seed uint64, reps int, srcMask, ladderSel uint8,
		slope, meanBase float64, timeline bool) {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || math.IsNaN(meanBase) || math.IsInf(meanBase, 0) {
			t.Skip() // JSON cannot carry non-finite numbers; real fits reject them upstream
		}
		allSources := []string{"bandwidth", "barrier", "daemon", "irq", "smt", "softirq"}
		var sources []string
		for i, src := range allSources {
			if srcMask&(1<<i) != 0 {
				sources = append(sources, src)
			}
		}
		ladders := [][]float64{nil, {1, 2}, {0.5, 1, 2, 4}, {1, 8}}
		spec := Spec{
			Platform: "tiny-test", Workload: "nbody", Size: "small",
			Model: "omp", Strategy: "Rm", Seed: seed, Reps: reps,
			Sources: sources, Ladder: ladders[int(ladderSel)%len(ladders)],
			Timeline: timeline,
		}
		spec.Normalize()
		if spec.Validate(0) != nil {
			t.Skip()
		}
		hash, err := SpecHash(&spec)
		if err != nil {
			t.Skip()
		}
		// Build synthetic but structurally valid curves: points in ladder
		// order with fabricated measurements derived from the fuzz inputs.
		ladder := spec.EffectiveLadder()
		var curves []SourceCurve
		for si, src := range spec.EffectiveSources() {
			c := SourceCurve{Source: src}
			for _, fac := range ladder {
				mean := meanBase + slope*fac + float64(si)
				c.Points = append(c.Points, SweepPoint{
					Factor: fac, Seed: CellSeed(seed, src, fac),
					TimesNs: []int64{int64(mean * 1e6)},
					MeanMs:  mean, MeanLoMs: mean - 1, MeanHiMs: mean + 1,
					RegionsMs:      map[string]float64{"compute": mean, "barrier": fac},
					TimelineEvents: 3,
				})
			}
			c.Fit.N = len(ladder)
			c.Fit.Slope, c.Fit.Intercept = slope, meanBase
			c.GatedRegion = "compute"
			curves = append(curves, c)
		}
		art, err := Assemble(hash, "fuzz-model", spec, curves)
		if err != nil {
			t.Fatalf("assembling valid curves: %v", err)
		}
		enc, err := art.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("round trip not byte-identical:\n%s\n%s", enc, enc2)
		}
		if !reflect.DeepEqual(art, back) {
			t.Fatal("round trip lost structure")
		}
		// The encoding must be valid canonical JSON (no NaN/Inf leak).
		var raw map[string]any
		if err := json.Unmarshal(enc, &raw); err != nil {
			t.Fatalf("artifact is not valid JSON: %v", err)
		}
	})
}
