package analyze

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// SweepPoint is one sweep cell's measurement: the per-rep times at one
// (source, factor), their mean with a deterministic bootstrap CI, and the
// rep-0 region breakdown read from the scheduling timeline.
type SweepPoint struct {
	// Factor is the intensity factor this cell scaled its source by.
	Factor float64 `json:"factor"`
	// Seed is the cell's base seed (rep i derives its own via SeedAt).
	Seed uint64 `json:"seed"`
	// TimesNs are the raw per-rep execution times — the deterministic
	// ground truth every derived number comes from.
	TimesNs []int64 `json:"times_ns"`
	// MeanMs is the mean execution time; MeanLoMs/MeanHiMs its 95%
	// bootstrap CI (stats.MeanCI).
	MeanMs   float64 `json:"mean_ms"`
	MeanLoMs float64 `json:"mean_lo_ms"`
	MeanHiMs float64 `json:"mean_hi_ms"`
	// RegionsMs breaks rep 0's timeline into region CPU time (ms): compute
	// (workload spans), barrier (barrier waits), irq/softirq (interrupt
	// handlers), os, and noise (noise + injector threads). encoding/json
	// sorts map keys, so the encoding is canonical.
	RegionsMs map[string]float64 `json:"regions_ms,omitempty"`
	// TimelineEvents counts rep 0's recorded timeline events — metadata
	// for the evidence reference, deterministic like everything else.
	TimelineEvents int `json:"timeline_events,omitempty"`
}

// RegionFit is the sensitivity fit of one region's time against the
// intensity ladder.
type RegionFit struct {
	Region string       `json:"region"`
	Fit    stats.LinFit `json:"fit"`
}

// SourceCurve is one source class's full sweep: its points in ladder
// order, the overall sensitivity fit (mean time vs factor), and the
// per-region fits.
type SourceCurve struct {
	Source string       `json:"source"`
	Points []SweepPoint `json:"points"`
	// Fit regresses MeanMs against Factor: Slope is the source's
	// sensitivity in ms per intensity step.
	Fit stats.LinFit `json:"fit"`
	// RegionFits regress each region's rep-0 time against Factor, sorted
	// by region name. The region with the steepest positive slope is what
	// this resource gates.
	RegionFits []RegionFit `json:"region_fits,omitempty"`
	// GatedRegion is that steepest-slope region ("" when no region moved).
	GatedRegion string `json:"gated_region,omitempty"`
}

// RankEntry is one row of the bottleneck ranking.
type RankEntry struct {
	Rank   int    `json:"rank"`
	Source string `json:"source"`
	// SlopeMs is the fitted sensitivity (ms per intensity step) with its
	// 95% CI; SlopePct expresses it relative to the fitted intercept (the
	// extrapolated zero-noise time), 0 when the intercept is not positive.
	SlopeMs   float64 `json:"slope_ms"`
	SlopeLoMs float64 `json:"slope_lo_ms"`
	SlopeHiMs float64 `json:"slope_hi_ms"`
	SlopePct  float64 `json:"slope_pct"`
	R2        float64 `json:"r2"`
	// GatedRegion names the region this source's ladder moved most.
	GatedRegion string `json:"gated_region,omitempty"`
}

// TimelineRef points at one exported timeline evidence file: the rep-0
// scheduling timeline of the source's highest ladder point, in Chrome
// trace-event JSON. File is the canonical name the CLI writes and the
// daemon serves the bytes under.
type TimelineRef struct {
	Source string  `json:"source"`
	Factor float64 `json:"factor"`
	Events int     `json:"events"`
	File   string  `json:"file"`
}

// TimelineFile is the canonical evidence file name for a source.
func TimelineFile(source string) string {
	return fmt.Sprintf("timeline-%s.json", source)
}

// Artifact is the reproducible manifest of one bottleneck analysis:
// normalized spec, model version, seed schedule, per-source sensitivity
// curves with fitted slopes and CIs, the bottleneck ranking, and timeline
// references. Encode produces canonical bytes, so the same analysis yields
// byte-identical artifacts via CLI, daemon, or fleet.
type Artifact struct {
	SpecHash     string `json:"spec_hash"`
	ModelVersion string `json:"model_version"`
	Spec         Spec   `json:"spec"`
	// Sources and Ladder are the effective sweep dimensions (defaults
	// expanded), so the artifact reads standalone.
	Sources []string  `json:"sources"`
	Ladder  []float64 `json:"ladder"`
	// RepsPerPoint and TotalReps record the rep budget.
	RepsPerPoint int `json:"reps_per_point"`
	TotalReps    int `json:"total_reps"`
	// SeedSchedule lists every cell's base seed in (source, ladder) order —
	// the exact schedule a re-run will follow.
	SeedSchedule []SeedEntry `json:"seed_schedule"`
	// Curves holds one sweep per source, in source order.
	Curves []SourceCurve `json:"curves"`
	// Ranking orders sources by fitted sensitivity, steepest first.
	Ranking []RankEntry `json:"ranking"`
	// Bottleneck is the top-ranked source; GatedRegion the region its
	// ladder moved most.
	Bottleneck  string `json:"bottleneck"`
	GatedRegion string `json:"gated_region,omitempty"`
	// Timelines references the exported evidence (Spec.Timeline only).
	Timelines []TimelineRef `json:"timelines,omitempty"`
}

// SeedEntry records the base seed of one sweep cell.
type SeedEntry struct {
	Source string  `json:"source"`
	Factor float64 `json:"factor"`
	Seed   uint64  `json:"seed"`
}

// Assemble builds the artifact from fitted curves: it derives the seed
// schedule, ranking, bottleneck and timeline references, all deterministic
// functions of the inputs. Both the direct runner and the fleet merger go
// through it, which is what makes their artifacts byte-identical: merge
// re-assembles from the same curves the direct path fitted.
//
// modelVersion is experiment.ModelVersion at run time; curves must be in
// spec.EffectiveSources() order with points in ladder order.
func Assemble(specHash, modelVersion string, spec Spec, curves []SourceCurve) (*Artifact, error) {
	sources := spec.EffectiveSources()
	ladder := spec.EffectiveLadder()
	if len(curves) != len(sources) {
		return nil, fmt.Errorf("analyze: %d curves for %d sources", len(curves), len(sources))
	}
	art := &Artifact{
		SpecHash:     specHash,
		ModelVersion: modelVersion,
		Spec:         spec,
		Sources:      sources,
		Ladder:       ladder,
		RepsPerPoint: spec.Reps,
		TotalReps:    spec.TotalReps(),
		Curves:       curves,
	}
	for i, src := range sources {
		if curves[i].Source != src {
			return nil, fmt.Errorf("analyze: curve %d is %q, want %q", i, curves[i].Source, src)
		}
		if len(curves[i].Points) != len(ladder) {
			return nil, fmt.Errorf("analyze: source %s has %d points, want %d", src, len(curves[i].Points), len(ladder))
		}
		for j, f := range ladder {
			p := curves[i].Points[j]
			if p.Factor != f {
				return nil, fmt.Errorf("analyze: source %s point %d has factor %g, want %g", src, j, p.Factor, f)
			}
			art.SeedSchedule = append(art.SeedSchedule, SeedEntry{Source: src, Factor: f, Seed: p.Seed})
		}
	}
	// Rank by fitted slope, steepest first; name order breaks ties so the
	// ranking is a deterministic function of the curves.
	order := make([]int, len(curves))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := curves[order[a]], curves[order[b]]
		if ca.Fit.Slope != cb.Fit.Slope {
			return ca.Fit.Slope > cb.Fit.Slope
		}
		return ca.Source < cb.Source
	})
	for rank, idx := range order {
		c := curves[idx]
		e := RankEntry{
			Rank:        rank + 1,
			Source:      c.Source,
			SlopeMs:     c.Fit.Slope,
			SlopeLoMs:   c.Fit.SlopeLo,
			SlopeHiMs:   c.Fit.SlopeHi,
			R2:          c.Fit.R2,
			GatedRegion: c.GatedRegion,
		}
		if c.Fit.Intercept > 0 {
			e.SlopePct = 100 * c.Fit.Slope / c.Fit.Intercept
		}
		art.Ranking = append(art.Ranking, e)
	}
	art.Bottleneck = art.Ranking[0].Source
	art.GatedRegion = art.Ranking[0].GatedRegion
	if spec.Timeline {
		top := ladder[len(ladder)-1]
		for i, src := range sources {
			art.Timelines = append(art.Timelines, TimelineRef{
				Source: src,
				Factor: top,
				Events: curves[i].Points[len(ladder)-1].TimelineEvents,
				File:   TimelineFile(src),
			})
		}
	}
	return art, nil
}

// Encode returns the artifact's canonical JSON bytes — the payload the
// cache stores, the daemon serves, and the golden fixtures pin.
func (a *Artifact) Encode() ([]byte, error) {
	enc, err := json.Marshal(a)
	if err != nil {
		return nil, fmt.Errorf("analyze: encoding artifact: %w", err)
	}
	return enc, nil
}

// Decode parses canonical artifact bytes.
func Decode(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("analyze: decoding artifact: %w", err)
	}
	return &a, nil
}
