package analyze

// The analysis golden test: pins the exact artifact bytes of a bottleneck
// analysis and proves them invariant across executor parallelism (1 vs 8),
// the batched-world policy (on vs off), and caller observability (attached
// vs not) — the same invariance matrix TestGoldenKernel pins for the
// kernel, lifted to the analysis artifact.
//
// Regenerate with REPRO_UPDATE_GOLDEN=1 go test ./internal/analyze
// -run TestGoldenAnalyze — but only when a deliberate, reviewed behaviour
// change is intended.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
	"repro/internal/obs"
)

const goldenPath = "testdata/golden_analyze.json"

func goldenSpec() Spec {
	return Spec{
		Platform: "tiny-test", Workload: "nbody", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: 42, Reps: 3,
		Sources:  []string{"daemon", "irq", "bandwidth"},
		Ladder:   []float64{1, 4},
		Timeline: true,
	}
}

func runGolden(t *testing.T, exec experiment.Executor) *Outcome {
	t.Helper()
	out, err := Run(context.Background(), exec, goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func encode(t *testing.T, out *Outcome) []byte {
	t.Helper()
	enc, err := out.Artifact.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestGoldenAnalyze(t *testing.T) {
	base := encode(t, runGolden(t, experiment.Executor{Parallelism: 1}))

	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(base, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", goldenPath, len(base))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with REPRO_UPDATE_GOLDEN=1 to create): %v", err)
	}
	want = bytes.TrimSuffix(want, []byte("\n"))
	if !bytes.Equal(base, want) {
		t.Fatalf("artifact diverged from golden fixture:\n got %d bytes: %.200s...\nwant %d bytes: %.200s...",
			len(base), base, len(want), want)
	}

	variants := map[string]experiment.Executor{
		"parallel-8": {Parallelism: 8},
		"batch-on":   {Parallelism: 8, Batch: experiment.BatchOn},
		"batch-off":  {Parallelism: 8, Batch: experiment.BatchOff},
		"obs-attached": {Parallelism: 8, Obs: &experiment.ObsOptions{
			Timeline: true, Ring: 128, Reg: obs.NewRegistry(),
		}},
	}
	for name, exec := range variants {
		got := encode(t, runGolden(t, exec))
		if !bytes.Equal(got, base) {
			t.Fatalf("%s: artifact bytes differ from parallelism-1 run", name)
		}
	}
}

// TestGoldenAnalyzeTimelines: the exported evidence must be byte-identical
// across the same matrix (the timelines come from rep 0's recorder, which
// the executor pins regardless of parallelism or batching).
func TestGoldenAnalyzeTimelines(t *testing.T) {
	base := runGolden(t, experiment.Executor{Parallelism: 1})
	if len(base.Timelines) != 3 {
		t.Fatalf("expected 3 evidence timelines, got %d", len(base.Timelines))
	}
	for _, ref := range base.Artifact.Timelines {
		tl, ok := base.Timelines[ref.Source]
		if !ok || len(tl) == 0 {
			t.Fatalf("artifact references %s evidence but none was exported", ref.Source)
		}
		if ref.Events <= 0 {
			t.Fatalf("timeline ref %s has no events", ref.Source)
		}
	}
	other := runGolden(t, experiment.Executor{Parallelism: 8, Batch: experiment.BatchOn})
	for src, tl := range base.Timelines {
		if !bytes.Equal(tl, other.Timelines[src]) {
			t.Fatalf("timeline %s differs between parallelism 1 and 8", src)
		}
	}
}

// TestRunNoTimelineExport: with Timeline off the artifact carries no
// references and no evidence is exported, but the region breakdown (which
// records internally) is still present.
func TestRunNoTimelineExport(t *testing.T) {
	spec := goldenSpec()
	spec.Timeline = false
	out, err := Run(context.Background(), experiment.Executor{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Timelines) != 0 || len(out.Artifact.Timelines) != 0 {
		t.Fatal("timeline evidence exported despite Timeline=false")
	}
	for _, c := range out.Artifact.Curves {
		for _, p := range c.Points {
			if len(p.RegionsMs) == 0 {
				t.Fatalf("region breakdown missing for %s x%g", c.Source, p.Factor)
			}
		}
	}
}
