package analyze

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Outcome is a completed analysis: the artifact plus the exported timeline
// evidence (source name -> Chrome trace-event JSON; empty unless
// Spec.Timeline).
type Outcome struct {
	Artifact *Artifact
	// Timelines maps each source to its evidence bytes, keyed by the
	// artifact's TimelineRef.Source (files named TimelineRef.File).
	Timelines map[string][]byte
}

// Run executes the full sweep: for every (source, factor) cell it runs a
// Reps-long series through the executor — batched-world eligible, reps
// parallel within a cell, per-rep seeds via SeedAt — fits the sensitivity
// slopes, and assembles the artifact.
//
// Executor handling: OnRep is re-based to aggregate progress across all
// cells (done out of Spec.TotalReps()); Obs.Ring/Reg/FlightSink/OnFlight
// are honored per rep, but the timeline recording of rep 0 is always
// forced on internally — the region breakdown needs it — so attaching or
// detaching caller observability never changes the artifact bytes.
// Timeline evidence export is controlled by spec.Timeline alone.
func Run(ctx context.Context, exec experiment.Executor, spec Spec) (*Outcome, error) {
	hash, err := SpecHash(&spec) // normalizes in place
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(0); err != nil {
		return nil, err
	}
	base, err := spec.Resolve()
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	sources := spec.EffectiveSources()
	ladder := spec.EffectiveLadder()
	if exec.Worlds == nil {
		// One pool for the whole sweep: every cell shares the same
		// (topology, options) world key, so warm worlds carry across cells.
		exec.Worlds = experiment.NewWorldPool()
	}
	totalReps := spec.TotalReps()
	repsDone := 0
	callerOnRep := exec.OnRep

	curves := make([]SourceCurve, 0, len(sources))
	var timelines map[string][]byte
	if spec.Timeline {
		timelines = make(map[string][]byte, len(sources))
	}
	for _, src := range sources {
		points := make([]SweepPoint, 0, len(ladder))
		var evidence *obs.Recorder
		for _, f := range ladder {
			cell := base
			cell.NoiseSource, cell.SourceScale = src, f
			cell.Seed = CellSeed(spec.Seed, src, f)

			var rec0 *obs.Recorder
			e := exec
			done0 := repsDone
			if callerOnRep != nil {
				e.OnRep = func(done, total int) { callerOnRep(done0+done, totalReps) }
			}
			o := experiment.ObsOptions{Timeline: true, OnTimeline: func(r *obs.Recorder) { rec0 = r }}
			if exec.Obs != nil {
				o.Ring = exec.Obs.Ring
				o.Reg = exec.Obs.Reg
				o.FlightSink = exec.Obs.FlightSink
				o.OnFlight = exec.Obs.OnFlight
			}
			e.Obs = &o

			times, _, err := e.Series(ctx, cell, spec.Reps)
			if err != nil {
				return nil, fmt.Errorf("analyze: %s x%s: %w", src, FormatFactor(f), err)
			}
			repsDone += spec.Reps
			points = append(points, buildPoint(f, cell.Seed, times, rec0))
			evidence = rec0 // ladder is ascending: the last one is the top point
		}
		curve, err := fitCurve(src, ladder, points)
		if err != nil {
			return nil, err
		}
		curves = append(curves, curve)
		if spec.Timeline && evidence != nil {
			var buf bytes.Buffer
			if err := evidence.WriteChromeJSON(&buf); err != nil {
				return nil, fmt.Errorf("analyze: %s timeline: %w", src, err)
			}
			timelines[src] = buf.Bytes()
		}
	}
	art, err := Assemble(hash, experiment.ModelVersion, spec, curves)
	if err != nil {
		return nil, err
	}
	return &Outcome{Artifact: art, Timelines: timelines}, nil
}

// buildPoint folds one cell's series into a sweep point.
func buildPoint(factor float64, seed uint64, times []sim.Time, rec *obs.Recorder) SweepPoint {
	p := SweepPoint{Factor: factor, Seed: seed, TimesNs: make([]int64, len(times))}
	ms := make([]float64, len(times))
	for i, t := range times {
		p.TimesNs[i] = int64(t)
		ms[i] = float64(t) / 1e6
	}
	p.MeanMs, p.MeanLoMs, p.MeanHiMs = stats.MeanCI(ms, 0.95)
	if rec != nil {
		p.RegionsMs = regionBreakdown(rec.Events())
		p.TimelineEvents = len(rec.Events())
	}
	return p
}

// regionCategory maps a timeline span category to an analysis region:
// workload compute, barrier waits, blocked-on-device I/O waits, hard/soft
// interrupt handlers, OS housekeeping, and noise threads (natural noise +
// injected replay).
// Scheduler-internal instants and unknown categories fall outside every
// region.
func regionCategory(cat string) string {
	switch cat {
	case "workload":
		return "compute"
	case "barrier":
		return "barrier"
	case "irq_noise":
		return "irq"
	case "softirq_noise":
		return "softirq"
	case "os":
		return "os"
	case "io":
		return "io"
	case "noise", "injector", "thread_noise":
		return "noise"
	}
	return ""
}

// regionBreakdown sums span durations (ms) by region over one rep's
// timeline.
func regionBreakdown(events []obs.Event) map[string]float64 {
	out := make(map[string]float64)
	for _, ev := range events {
		if ev.Dur <= 0 {
			continue
		}
		r := regionCategory(ev.Cat)
		if r == "" {
			continue
		}
		out[r] += float64(ev.Dur) / 1e6
	}
	return out
}

// fitCurve fits the source's overall sensitivity (mean time vs factor) and
// each region's, and names the gated region (steepest positive region
// slope, region name breaking ties).
func fitCurve(source string, ladder []float64, points []SweepPoint) (SourceCurve, error) {
	ys := make([]float64, len(points))
	for i, p := range points {
		ys[i] = p.MeanMs
	}
	fit, err := stats.LinearFit(ladder, ys)
	if err != nil {
		return SourceCurve{}, fmt.Errorf("analyze: fitting %s: %w", source, err)
	}
	c := SourceCurve{Source: source, Points: points, Fit: fit}

	regions := map[string]bool{}
	for _, p := range points {
		for r := range p.RegionsMs {
			regions[r] = true
		}
	}
	names := make([]string, 0, len(regions))
	for r := range regions {
		names = append(names, r)
	}
	// Insertion sort keeps the import list short; region sets are tiny.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	best, bestSlope := "", 0.0
	for _, r := range names {
		rys := make([]float64, len(points))
		for i, p := range points {
			rys[i] = p.RegionsMs[r] // missing -> 0
		}
		rfit, err := stats.LinearFit(ladder, rys)
		if err != nil {
			return SourceCurve{}, fmt.Errorf("analyze: fitting %s/%s: %w", source, r, err)
		}
		c.RegionFits = append(c.RegionFits, RegionFit{Region: r, Fit: rfit})
		if rfit.Slope > bestSlope {
			best, bestSlope = r, rfit.Slope
		}
	}
	c.GatedRegion = best
	return c, nil
}
