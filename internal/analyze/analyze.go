// Package analyze implements differential noise injection for performance
// bottleneck analysis: each noise source class (daemon, IRQ, softirq,
// SMT-sibling, barrier-adjacent, bandwidth-style) is swept independently
// across a calibrated intensity ladder while every other source stays at
// its natural level, and the sensitivity slope of each (source, region)
// pair is read out of a linear fit. The source whose ladder moves the
// workload most is the bottleneck; the region whose slope dominates says
// which part of the execution that resource gates.
//
// An analysis is a pure function of (spec, ModelVersion): every sweep cell
// derives its seed from the spec seed by (source, factor) tags, runs
// through experiment.Executor with index-derived per-rep seeds, and the
// artifact encoder is canonical — so artifacts are content-addressable and
// a repeated analysis is a pure cache hit, exactly like experiment jobs.
package analyze

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/mitigate"
	"repro/internal/noise"
	"repro/internal/platform"
	"repro/internal/workloads"
)

// DefaultLadder is the calibrated intensity ladder used when a spec does
// not supply its own: factor 1 anchors the natural level and the doublings
// give the fit leverage without leaving the regime where the simulated
// machine still makes progress.
func DefaultLadder() []float64 { return []float64{1, 2, 4, 8} }

// Spec is the wire form of one bottleneck analysis: a single-node
// experiment cell plus the sweep dimensions. Its canonical JSON encoding
// (after Normalize) is the content key the cache addresses artifacts by.
type Spec struct {
	// Platform, Workload, Size, Model, Strategy and Seed mirror the
	// single-node job spec fields (service.JobSpec).
	Platform string `json:"platform"`
	Workload string `json:"workload"`
	Size     string `json:"size,omitempty"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	Seed     uint64 `json:"seed"`
	// Reps is the repetition count per sweep point (>= 1).
	Reps int `json:"reps"`
	// Sources selects which noise source classes to sweep; nil means all
	// of noise.SourceClasses(). An explicitly empty list is invalid.
	Sources []string `json:"sources,omitempty"`
	// Ladder is the intensity factor ladder; nil means DefaultLadder().
	// Factors must be finite and positive, and after deduplication at
	// least two must remain (a slope needs two x values). An explicitly
	// empty ladder is invalid.
	Ladder []float64 `json:"ladder,omitempty"`
	// Runlevel3 disables GUI noise before the sweep scales anything.
	Runlevel3 bool `json:"runlevel3,omitempty"`
	// Timeline attaches per-source timeline evidence: the rep-0 scheduling
	// timeline of each source's highest ladder point, referenced from the
	// artifact. The analysis always records timelines internally for the
	// region breakdown; this flag only controls whether the evidence is
	// exported, and it participates in the content key.
	Timeline bool `json:"timeline,omitempty"`
}

// Normalize rewrites representation-only variation to canonical form so
// semantically equal specs hash equal: field spellings (as in
// service.JobSpec), source order and duplicates, ladder order and
// duplicates, and the explicit spellings of the defaults (all sources, the
// default ladder) collapse to the nil shorthand. It does not validate.
func (s *Spec) Normalize() {
	s.Platform = strings.TrimSpace(s.Platform)
	s.Workload = strings.TrimSpace(s.Workload)
	s.Model = strings.ToLower(strings.TrimSpace(s.Model))
	if st, err := mitigate.Parse(strings.TrimSpace(s.Strategy)); err == nil {
		s.Strategy = st.Name()
	}
	if s.Size == "default" {
		s.Size = ""
	}
	if len(s.Sources) > 0 {
		srcs := append([]string(nil), s.Sources...)
		for i := range srcs {
			srcs[i] = strings.ToLower(strings.TrimSpace(srcs[i]))
		}
		sort.Strings(srcs)
		srcs = dedupeStrings(srcs)
		if equalStrings(srcs, noise.SourceClasses()) {
			srcs = nil
		}
		s.Sources = srcs
	}
	if len(s.Ladder) > 0 {
		lad := append([]float64(nil), s.Ladder...)
		sort.Float64s(lad)
		lad = dedupeFloats(lad)
		if equalFloats(lad, DefaultLadder()) {
			lad = nil
		}
		s.Ladder = lad
	}
}

func dedupeStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupeFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate checks the spec. maxReps bounds the per-point repetition count
// (<= 0 means unbounded); the total rep budget is TotalReps(), which
// servers may bound separately. Errors surface as 400s from the daemon.
func (s *Spec) Validate(maxReps int) error {
	if _, err := platform.New(s.Platform); err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if _, err := workloads.ByName(s.Workload, "small"); err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	switch s.Size {
	case "", "small":
	default:
		return fmt.Errorf("analyze: unknown size %q (want \"\", \"default\" or \"small\")", s.Size)
	}
	switch s.Model {
	case "omp", "sycl":
	default:
		return fmt.Errorf("analyze: unknown model %q (want omp or sycl)", s.Model)
	}
	if _, err := mitigate.Parse(s.Strategy); err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if s.Reps < 1 {
		return fmt.Errorf("analyze: reps %d must be >= 1", s.Reps)
	}
	if maxReps > 0 && s.Reps > maxReps {
		return fmt.Errorf("analyze: reps %d exceeds the server limit %d", s.Reps, maxReps)
	}
	if s.Sources != nil && len(s.Sources) == 0 {
		return fmt.Errorf("analyze: sources list is empty (omit it to sweep every class)")
	}
	for _, src := range s.Sources {
		if !noise.IsSourceClass(src) {
			return fmt.Errorf("analyze: unknown source class %q (want one of %s)",
				src, strings.Join(noise.SourceClasses(), ", "))
		}
	}
	if s.Ladder != nil && len(s.Ladder) == 0 {
		return fmt.Errorf("analyze: ladder is empty (omit it for the default %v)", DefaultLadder())
	}
	for _, f := range s.Ladder {
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			return fmt.Errorf("analyze: ladder factor %g must be finite and > 0", f)
		}
	}
	if lad := s.EffectiveLadder(); len(lad) < 2 {
		return fmt.Errorf("analyze: ladder needs >= 2 distinct factors to fit a slope, got %v", lad)
	}
	return nil
}

// EffectiveSources returns the source classes the sweep runs: the spec's
// own (already sorted by Normalize) or every class.
func (s *Spec) EffectiveSources() []string {
	if len(s.Sources) > 0 {
		return s.Sources
	}
	return noise.SourceClasses()
}

// EffectiveLadder returns the intensity ladder: the spec's own (sorted
// ascending by Normalize) or the default.
func (s *Spec) EffectiveLadder() []float64 {
	if len(s.Ladder) > 0 {
		return s.Ladder
	}
	return DefaultLadder()
}

// TotalReps is the total simulated-rep budget of the analysis:
// sources x ladder points x reps per point. Progress reporting and server
// rep limits are expressed against it.
func (s *Spec) TotalReps() int {
	return len(s.EffectiveSources()) * len(s.EffectiveLadder()) * s.Reps
}

// Resolve converts the wire spec into the base experiment.Spec each sweep
// cell specializes with its (source, factor, seed).
func (s *Spec) Resolve() (experiment.Spec, error) {
	p, err := platform.New(s.Platform)
	if err != nil {
		return experiment.Spec{}, err
	}
	var w workloads.Workload
	if s.Size == "small" {
		w, err = p.TinySpec(s.Workload)
	} else {
		w, err = p.WorkloadSpec(s.Workload)
	}
	if err != nil {
		return experiment.Spec{}, err
	}
	strat, err := mitigate.Parse(s.Strategy)
	if err != nil {
		return experiment.Spec{}, err
	}
	return experiment.Spec{
		Platform: p, Workload: w, Model: s.Model, Strategy: strat,
		Seed: s.Seed, Runlevel3: s.Runlevel3,
	}, nil
}

// CellSeed derives the base seed of one sweep cell from the analysis seed
// and the cell's (source, factor) tags. It depends on nothing else — not
// the source list, not the ladder shape — so the same cell produces
// byte-identical per-rep results whether it runs in a full sweep, a
// single-source sweep, or on a fleet shard that received only a slice of
// the sources.
func CellSeed(base uint64, source string, factor float64) uint64 {
	return experiment.SeedFor(base, "analyze", source, FormatFactor(factor))
}

// FormatFactor renders a ladder factor canonically (shortest exact
// representation), for seed tags, artifact labels and file names.
func FormatFactor(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// SpecHash returns the content address of an analysis: the hex SHA-256 of
// its canonical JSON encoding salted with experiment.ModelVersion and an
// "analysis" domain tag, so an analysis spec can never collide with an
// experiment job spec that happens to share an encoding. The spec is
// normalized in place.
func SpecHash(s *Spec) (string, error) {
	s.Normalize()
	enc, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("analyze: hashing spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(experiment.ModelVersion))
	h.Write([]byte{0})
	h.Write([]byte("analysis"))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}
