package analyze

import (
	"strings"
	"testing"

	"repro/internal/noise"
)

func validSpec() Spec {
	return Spec{
		Platform: "tiny-test", Workload: "nbody", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: 42, Reps: 3,
	}
}

func TestNormalizeCanonicalizesRepresentation(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.Model = " OMP "
	b.Strategy = " Rm "
	b.Sources = []string{"irq", "daemon", "irq"}
	b.Ladder = []float64{4, 1, 2, 4}
	a.Sources = []string{"daemon", "irq"}
	a.Ladder = []float64{1, 2, 4}
	ha, err := SpecHash(&a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := SpecHash(&b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("representation variants hash differently:\n%s\n%s", ha, hb)
	}
}

func TestNormalizeCollapsesDefaults(t *testing.T) {
	a := validSpec()
	b := validSpec()
	b.Sources = append([]string(nil), noise.SourceClasses()...)
	b.Ladder = DefaultLadder()
	ha, _ := SpecHash(&a)
	hb, _ := SpecHash(&b)
	if ha != hb {
		t.Fatal("explicit defaults should hash like the nil shorthand")
	}
	if b.Sources != nil || b.Ladder != nil {
		t.Fatalf("Normalize did not collapse defaults: %v %v", b.Sources, b.Ladder)
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	base := validSpec()
	h0, err := SpecHash(&base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Spec){
		"seed":      func(s *Spec) { s.Seed++ },
		"reps":      func(s *Spec) { s.Reps++ },
		"workload":  func(s *Spec) { s.Workload = "minife" },
		"model":     func(s *Spec) { s.Model = "sycl" },
		"sources":   func(s *Spec) { s.Sources = []string{"irq"} },
		"ladder":    func(s *Spec) { s.Ladder = []float64{1, 3} },
		"runlevel3": func(s *Spec) { s.Runlevel3 = true },
		"timeline":  func(s *Spec) { s.Timeline = true },
	}
	for name, mut := range mutations {
		s := validSpec()
		mut(&s)
		h, err := SpecHash(&s)
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Fatalf("mutation %q did not change the hash", name)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Spec){
		"unknown source":   func(s *Spec) { s.Sources = []string{"gpu"} },
		"empty sources":    func(s *Spec) { s.Sources = []string{} },
		"empty ladder":     func(s *Spec) { s.Ladder = []float64{} },
		"single factor":    func(s *Spec) { s.Ladder = []float64{2} },
		"collapsed ladder": func(s *Spec) { s.Ladder = []float64{2, 2, 2} },
		"negative factor":  func(s *Spec) { s.Ladder = []float64{-1, 2} },
		"zero reps":        func(s *Spec) { s.Reps = 0 },
		"bad platform":     func(s *Spec) { s.Platform = "cray-1" },
		"bad model":        func(s *Spec) { s.Model = "cuda" },
		"bad size":         func(s *Spec) { s.Size = "xl" },
	}
	for name, mut := range cases {
		s := validSpec()
		mut(&s)
		s.Normalize()
		if err := s.Validate(0); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	s := validSpec()
	s.Normalize()
	if err := s.Validate(0); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := s.Validate(2); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("maxReps bound not enforced: %v", err)
	}
}

func TestCellSeedIndependentOfSweepShape(t *testing.T) {
	// The cell seed depends only on (base, source, factor) — the property
	// that lets a fleet shard running a slice of the sources reproduce the
	// full sweep's cells byte-identically.
	a := CellSeed(42, "irq", 4)
	b := CellSeed(42, "irq", 4)
	if a != b {
		t.Fatal("CellSeed not deterministic")
	}
	if CellSeed(42, "irq", 2) == a || CellSeed(42, "daemon", 4) == a || CellSeed(43, "irq", 4) == a {
		t.Fatal("CellSeed insensitive to its inputs")
	}
}

func TestTotalReps(t *testing.T) {
	s := validSpec() // defaults: 6 sources x 4 factors x 3 reps
	if got := s.TotalReps(); got != 6*4*3 {
		t.Fatalf("TotalReps = %d, want %d", got, 6*4*3)
	}
	s.Sources = []string{"irq"}
	s.Ladder = []float64{1, 8}
	if got := s.TotalReps(); got != 1*2*3 {
		t.Fatalf("TotalReps = %d, want %d", got, 6)
	}
}

func TestFormatFactor(t *testing.T) {
	for f, want := range map[float64]string{1: "1", 2.5: "2.5", 0.125: "0.125"} {
		if got := FormatFactor(f); got != want {
			t.Fatalf("FormatFactor(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestRegionCategoryMapping(t *testing.T) {
	want := map[string]string{
		"workload": "compute", "barrier": "barrier", "irq_noise": "irq",
		"softirq_noise": "softirq", "os": "os", "noise": "noise", "io": "io",
		"injector": "noise", "thread_noise": "noise", "sched": "", "": "",
	}
	for cat, region := range want {
		if got := regionCategory(cat); got != region {
			t.Fatalf("regionCategory(%q) = %q, want %q", cat, got, region)
		}
	}
}
