package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/rescache"
	"repro/internal/stats"
)

// latencyWindow bounds the per-job latency samples kept for the /metrics
// quantiles; older samples are overwritten ring-buffer style.
const latencyWindow = 4096

// metrics aggregates service-level counters. Cache-tier counters live in
// rescache and are merged into the rendered output.
type metrics struct {
	mu         sync.Mutex
	submitted  uint64
	done       uint64
	failed     uint64
	canceled   uint64
	rejected   uint64
	executions uint64
	cacheHits  uint64
	inflight   int

	latSecs []float64
	latNext int
}

// Snapshot is a point-in-time copy of the service counters, exposed for
// tests and for the /metrics renderer.
type Snapshot struct {
	Submitted, Done, Failed, Canceled, Rejected uint64
	// Executions counts engine runs (cache compute callbacks); CacheHits
	// counts jobs served without one.
	Executions, CacheHits uint64
	InFlight              int
	QueueDepth            int
	// LatencyP50 and LatencyP99 are seconds over the recent window; 0
	// when no job finished yet.
	LatencyP50, LatencyP99 float64
	Cache                  rescache.Stats
}

func (m *metrics) jobStarted() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

// jobFinished records a terminal state and the job's wall latency.
func (m *metrics) jobFinished(state JobState, cached bool, latencySecs float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight--
	switch state {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceled++
	}
	if cached {
		m.cacheHits++
	}
	if len(m.latSecs) < latencyWindow {
		m.latSecs = append(m.latSecs, latencySecs)
	} else {
		m.latSecs[m.latNext] = latencySecs
		m.latNext = (m.latNext + 1) % latencyWindow
	}
}

func (m *metrics) count(field *uint64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

// snapshot merges the service counters with the cache tier's.
func (m *metrics) snapshot(queueDepth int, cache rescache.Stats) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Submitted: m.submitted, Done: m.done, Failed: m.failed,
		Canceled: m.canceled, Rejected: m.rejected,
		Executions: m.executions, CacheHits: m.cacheHits,
		InFlight: m.inflight, QueueDepth: queueDepth, Cache: cache,
	}
	if len(m.latSecs) > 0 {
		sorted := append([]float64(nil), m.latSecs...)
		sort.Float64s(sorted)
		s.LatencyP50 = stats.Quantile(sorted, 0.50)
		s.LatencyP99 = stats.Quantile(sorted, 0.99)
	}
	return s
}

// render writes the snapshot in Prometheus text exposition format.
func (s Snapshot) render(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP noiselabd_jobs_total Jobs by terminal state.\n")
	p("# TYPE noiselabd_jobs_total counter\n")
	p("noiselabd_jobs_total{state=\"done\"} %d\n", s.Done)
	p("noiselabd_jobs_total{state=\"failed\"} %d\n", s.Failed)
	p("noiselabd_jobs_total{state=\"canceled\"} %d\n", s.Canceled)
	p("# TYPE noiselabd_jobs_submitted_total counter\n")
	p("noiselabd_jobs_submitted_total %d\n", s.Submitted)
	p("# TYPE noiselabd_jobs_rejected_total counter\n")
	p("noiselabd_jobs_rejected_total %d\n", s.Rejected)
	p("# HELP noiselabd_queue_depth Jobs waiting in the bounded queue.\n")
	p("# TYPE noiselabd_queue_depth gauge\n")
	p("noiselabd_queue_depth %d\n", s.QueueDepth)
	p("# TYPE noiselabd_jobs_inflight gauge\n")
	p("noiselabd_jobs_inflight %d\n", s.InFlight)
	p("# HELP noiselabd_executions_total Engine executions (cache misses that ran).\n")
	p("# TYPE noiselabd_executions_total counter\n")
	p("noiselabd_executions_total %d\n", s.Executions)
	p("# HELP noiselabd_cache_hits_total Jobs served without an engine execution.\n")
	p("# TYPE noiselabd_cache_hits_total counter\n")
	p("noiselabd_cache_hits_total %d\n", s.CacheHits)
	p("# TYPE noiselabd_cache_hit_ratio gauge\n")
	p("noiselabd_cache_hit_ratio %.6f\n", s.Cache.HitRatio())
	p("noiselabd_cache_mem_hits_total %d\n", s.Cache.MemHits)
	p("noiselabd_cache_disk_hits_total %d\n", s.Cache.DiskHits)
	p("noiselabd_cache_flight_hits_total %d\n", s.Cache.FlightHits)
	p("noiselabd_cache_misses_total %d\n", s.Cache.Misses)
	p("noiselabd_cache_corrupt_total %d\n", s.Cache.Corrupt)
	p("noiselabd_cache_evictions_total %d\n", s.Cache.Evictions)
	p("noiselabd_cache_mem_entries %d\n", s.Cache.MemEntries)
	p("# HELP noiselabd_job_latency_seconds Recent job wall latency quantiles.\n")
	p("# TYPE noiselabd_job_latency_seconds summary\n")
	p("noiselabd_job_latency_seconds{quantile=\"0.5\"} %.9f\n", s.LatencyP50)
	p("noiselabd_job_latency_seconds{quantile=\"0.99\"} %.9f\n", s.LatencyP99)
}
