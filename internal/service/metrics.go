package service

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/stats"
)

// latencyWindow bounds the per-job latency samples kept for the /metrics
// quantiles; older samples are overwritten ring-buffer style.
const latencyWindow = 4096

// latencyBounds are the histogram bucket boundaries (seconds) for the
// registry's job-latency histogram.
var latencyBounds = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120}

// metrics aggregates service-level counters on an obs.Registry — the same
// counter/gauge/histogram machinery the simulation kernel publishes through —
// instead of the ad-hoc struct it used to carry. The registry is the source
// of truth; Snapshot and the text render read the live values. Cache-tier
// counters live in rescache and are merged into the rendered output.
//
// The latency ring is kept alongside the histogram because the /metrics
// contract exposes exact p50/p99 over the recent window, which a fixed-bucket
// histogram cannot reproduce.
type metrics struct {
	reg *obs.Registry

	submitted  *obs.Counter
	done       *obs.Counter
	failed     *obs.Counter
	canceled   *obs.Counter
	rejected   *obs.Counter
	executions *obs.Counter
	cacheHits  *obs.Counter
	inflight   *obs.Gauge
	latency    *obs.Histogram

	mu      sync.Mutex
	latSecs []float64
	latNext int
}

// newMetrics registers the service families on reg (a fresh registry when
// nil).
func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg:       reg,
		submitted: reg.Counter("noiselabd_jobs_submitted_total", "Jobs accepted for execution."),
		done:      reg.Counter(`noiselabd_jobs_total{state="done"}`, "Jobs by terminal state."),
		failed:    reg.Counter(`noiselabd_jobs_total{state="failed"}`, "Jobs by terminal state."),
		canceled:  reg.Counter(`noiselabd_jobs_total{state="canceled"}`, "Jobs by terminal state."),
		rejected:  reg.Counter("noiselabd_jobs_rejected_total", "Submissions rejected (queue full or draining)."),
		executions: reg.Counter("noiselabd_executions_total",
			"Engine executions (cache misses that ran)."),
		cacheHits: reg.Counter("noiselabd_cache_hits_total",
			"Jobs served without an engine execution."),
		inflight: reg.Gauge("noiselabd_jobs_inflight", "Jobs currently executing."),
		latency: reg.Histogram("noiselabd_job_latency_hist_seconds",
			"Job wall latency distribution.", latencyBounds),
	}
}

// Snapshot is a point-in-time copy of the service counters, exposed for
// tests and for the /metrics renderer.
type Snapshot struct {
	Submitted, Done, Failed, Canceled, Rejected uint64
	// Executions counts engine runs (cache compute callbacks); CacheHits
	// counts jobs served without one.
	Executions, CacheHits uint64
	InFlight              int
	QueueDepth            int
	// LatencyP50 and LatencyP99 are seconds over the recent window; 0
	// when no job finished yet.
	LatencyP50, LatencyP99 float64
	Cache                  rescache.Stats
}

func (m *metrics) jobStarted() {
	m.inflight.Add(1)
}

// jobFinished records a terminal state and the job's wall latency. The
// inflight gauge saturates at zero: a spurious double-finish (the bug class
// this clamp guards) must not drive it negative.
func (m *metrics) jobFinished(state JobState, cached bool, latencySecs float64) {
	m.inflight.AddFloor(-1, 0)
	switch state {
	case StateDone:
		m.done.Inc()
	case StateFailed:
		m.failed.Inc()
	case StateCanceled:
		m.canceled.Inc()
	}
	if cached {
		m.cacheHits.Inc()
	}
	m.latency.Observe(latencySecs)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latSecs) < latencyWindow {
		m.latSecs = append(m.latSecs, latencySecs)
	} else {
		m.latSecs[m.latNext] = latencySecs
		m.latNext = (m.latNext + 1) % latencyWindow
	}
}

// quantiles computes p50/p99 over a sorted COPY of the latency ring. The
// ring itself must never be sorted in place: it is insertion-ordered, and
// sorting it would corrupt the overwrite position (latNext) so the window
// would stop being "most recent".
func (m *metrics) quantiles() (p50, p99 float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latSecs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), m.latSecs...)
	sort.Float64s(sorted)
	return stats.Quantile(sorted, 0.50), stats.Quantile(sorted, 0.99)
}

// snapshot merges the service counters with the cache tier's.
func (m *metrics) snapshot(queueDepth int, cache rescache.Stats) Snapshot {
	s := Snapshot{
		Submitted: m.submitted.Value(), Done: m.done.Value(), Failed: m.failed.Value(),
		Canceled: m.canceled.Value(), Rejected: m.rejected.Value(),
		Executions: m.executions.Value(), CacheHits: m.cacheHits.Value(),
		InFlight: int(m.inflight.Value()), QueueDepth: queueDepth, Cache: cache,
	}
	s.LatencyP50, s.LatencyP99 = m.quantiles()
	return s
}

// render writes the snapshot in Prometheus text exposition format.
func (s Snapshot) render(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP noiselabd_jobs_total Jobs by terminal state.\n")
	p("# TYPE noiselabd_jobs_total counter\n")
	p("noiselabd_jobs_total{state=\"done\"} %d\n", s.Done)
	p("noiselabd_jobs_total{state=\"failed\"} %d\n", s.Failed)
	p("noiselabd_jobs_total{state=\"canceled\"} %d\n", s.Canceled)
	p("# TYPE noiselabd_jobs_submitted_total counter\n")
	p("noiselabd_jobs_submitted_total %d\n", s.Submitted)
	p("# TYPE noiselabd_jobs_rejected_total counter\n")
	p("noiselabd_jobs_rejected_total %d\n", s.Rejected)
	p("# HELP noiselabd_queue_depth Jobs waiting in the bounded queue.\n")
	p("# TYPE noiselabd_queue_depth gauge\n")
	p("noiselabd_queue_depth %d\n", s.QueueDepth)
	p("# TYPE noiselabd_jobs_inflight gauge\n")
	p("noiselabd_jobs_inflight %d\n", s.InFlight)
	p("# HELP noiselabd_executions_total Engine executions (cache misses that ran).\n")
	p("# TYPE noiselabd_executions_total counter\n")
	p("noiselabd_executions_total %d\n", s.Executions)
	p("# HELP noiselabd_cache_hits_total Jobs served without an engine execution.\n")
	p("# TYPE noiselabd_cache_hits_total counter\n")
	p("noiselabd_cache_hits_total %d\n", s.CacheHits)
	p("# TYPE noiselabd_cache_hit_ratio gauge\n")
	p("noiselabd_cache_hit_ratio %.6f\n", s.Cache.HitRatio())
	p("noiselabd_cache_mem_hits_total %d\n", s.Cache.MemHits)
	p("noiselabd_cache_disk_hits_total %d\n", s.Cache.DiskHits)
	p("noiselabd_cache_flight_hits_total %d\n", s.Cache.FlightHits)
	p("noiselabd_cache_misses_total %d\n", s.Cache.Misses)
	p("noiselabd_cache_corrupt_total %d\n", s.Cache.Corrupt)
	p("noiselabd_cache_evictions_total %d\n", s.Cache.Evictions)
	p("noiselabd_cache_mem_entries %d\n", s.Cache.MemEntries)
	p("# HELP noiselabd_job_latency_seconds Recent job wall latency quantiles.\n")
	p("# TYPE noiselabd_job_latency_seconds summary\n")
	p("noiselabd_job_latency_seconds{quantile=\"0.5\"} %.9f\n", s.LatencyP50)
	p("noiselabd_job_latency_seconds{quantile=\"0.99\"} %.9f\n", s.LatencyP99)
}
