package service

// Tests for the observability surface of the daemon: the per-job timeline
// endpoint, the flight-recorder debug endpoint, the JSON metrics rendering,
// and the metrics regression fixes (inflight clamp, quantile ring copy).

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/sim"
)

// TestTimelineEndpoint: a spec submitted with "timeline": true serves a
// Chrome trace-event document at /v1/jobs/{id}/timeline, and a cache-hit
// resubmission serves the same stored timeline without re-executing.
func TestTimelineEndpoint(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{})
	spec := tinySpec(61, 3)
	spec.Timeline = true

	st := waitTerminal(t, ts, w, submit(t, ts, spec, http.StatusAccepted).ID)
	if st.State != StateDone {
		t.Fatalf("job: %+v", st)
	}
	get := func(id string) (int, []byte) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timeline")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	code, data := get(st.ID)
	if code != http.StatusOK {
		t.Fatalf("timeline: HTTP %d: %s", code, data)
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("timeline is not trace-event JSON: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("empty timeline")
	}

	// Cache hit: same spec again, timeline still served from the derived
	// cache entry without another execution.
	execs := srv.Metrics().Executions
	st2 := submit(t, ts, spec, http.StatusOK)
	if !st2.Cached {
		t.Fatalf("resubmission missed the cache: %+v", st2)
	}
	code2, data2 := get(st2.ID)
	if code2 != http.StatusOK || string(data2) != string(data) {
		t.Fatalf("cached timeline differs: HTTP %d, %d vs %d bytes", code2, len(data2), len(data))
	}
	if srv.Metrics().Executions != execs {
		t.Fatal("timeline cache hit re-ran the engine")
	}

	// A job without the timeline flag 404s with a hint.
	plain := waitTerminal(t, ts, w, submit(t, ts, tinySpec(62, 2), http.StatusAccepted).ID)
	if code, _ := get(plain.ID); code != http.StatusNotFound {
		t.Fatalf("timeline of plain job: HTTP %d, want 404", code)
	}
}

// TestFlightRecorderEndpoint: retained dumps are served as JSON, newest
// bounded by flightKeep.
func TestFlightRecorderEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})

	// Empty log serves an empty array, not an error.
	resp, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	var dumps []obs.Flight
	if err := json.NewDecoder(resp.Body).Decode(&dumps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dumps) != 0 {
		t.Fatalf("fresh server has %d dumps", len(dumps))
	}

	// Retention is bounded: only the newest flightKeep dumps survive.
	for i := 0; i < flightKeep+5; i++ {
		srv.flights.add(obs.Flight{Label: "rep 0", Err: "synthetic", Total: uint64(i),
			Events: []obs.Event{{Start: sim.Time(i), Phase: obs.PhaseInstant, Name: "preempt", Cat: "sched"}}})
	}
	resp, err = http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dumps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dumps) != flightKeep {
		t.Fatalf("retained %d dumps, want %d", len(dumps), flightKeep)
	}
	if dumps[len(dumps)-1].Total != uint64(flightKeep+4) {
		t.Fatalf("newest dump lost: last total = %d", dumps[len(dumps)-1].Total)
	}
	if len(dumps[0].Events) != 1 || dumps[0].Events[0].Name != "preempt" {
		t.Fatalf("dump events mangled: %+v", dumps[0])
	}
}

// TestMetricsJSONFormat: /metrics?format=json returns the snapshot plus
// both registries as one JSON document.
func TestMetricsJSONFormat(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	waitTerminal(t, ts, w, submit(t, ts, tinySpec(63, 2), http.StatusAccepted).ID)

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Snapshot Snapshot `json:"snapshot"`
		Service  struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"service"`
		Kernel struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"kernel"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Snapshot.Done != 1 {
		t.Fatalf("snapshot done = %d, want 1", doc.Snapshot.Done)
	}
	if doc.Service.Counters[`noiselabd_jobs_total{state="done"}`] != 1 {
		t.Fatalf("service counters: %v", doc.Service.Counters)
	}
	if doc.Kernel.Counters["repro_runs_total"] != 2 {
		t.Fatalf("kernel counters: %v", doc.Kernel.Counters)
	}
}

// TestInflightNeverNegative is the regression test for the double-finish
// bug: a spurious second jobFinished for the same job must leave the
// inflight gauge clamped at zero instead of driving it negative.
func TestInflightNeverNegative(t *testing.T) {
	m := newMetrics(nil)
	m.jobStarted()
	m.jobFinished(StateDone, false, 0.1)
	m.jobFinished(StateDone, false, 0.1) // spurious double finish
	if got := m.snapshot(0, rescache.Stats{}).InFlight; got != 0 {
		t.Fatalf("inflight after double finish = %d, want 0", got)
	}
	// The gauge recovers: the next start/finish pair still balances.
	m.jobStarted()
	if got := m.snapshot(0, rescache.Stats{}).InFlight; got != 1 {
		t.Fatalf("inflight after recovery start = %d, want 1", got)
	}
	m.jobFinished(StateFailed, false, 0.2)
	if got := m.snapshot(0, rescache.Stats{}).InFlight; got != 0 {
		t.Fatalf("inflight after recovery finish = %d, want 0", got)
	}
}

// TestQuantilesDoNotMutateRing is the regression test for the sort-in-place
// bug: computing p50/p99 must sort a copy of the latency ring, never the
// ring itself — sorting in place corrupts the overwrite cursor so the
// window stops being "most recent".
func TestQuantilesDoNotMutateRing(t *testing.T) {
	m := newMetrics(nil)
	samples := []float64{0.9, 0.1, 0.5, 0.3, 0.7}
	for _, s := range samples {
		m.jobStarted()
		m.jobFinished(StateDone, false, s)
	}
	snap := m.snapshot(0, rescache.Stats{})
	if snap.LatencyP50 != 0.5 {
		t.Fatalf("p50 = %v, want 0.5", snap.LatencyP50)
	}
	m.mu.Lock()
	got := append([]float64(nil), m.latSecs...)
	m.mu.Unlock()
	for i, s := range samples {
		if got[i] != s {
			t.Fatalf("snapshot mutated the latency ring: %v (insertion order was %v)", got, samples)
		}
	}
	// A second snapshot sees the same quantiles (idempotent reads).
	if again := m.snapshot(0, rescache.Stats{}); again.LatencyP50 != snap.LatencyP50 || again.LatencyP99 != snap.LatencyP99 {
		t.Fatalf("snapshot not idempotent: %+v vs %+v", again, snap)
	}
}
