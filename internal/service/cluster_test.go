package service

// Cluster-job tests of the HTTP API: submissions with an embedded cluster
// spec run the simulated datacenter, nonsensical cluster configs are
// rejected with 400 (not a panic), and a resubmitted cluster spec is served
// from the content-addressed cache without re-execution.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/cluster"
)

// tinyClusterSpec is a fast deterministic cluster job for tests.
func tinyClusterSpec(seed uint64, reps int) JobSpec {
	return JobSpec{
		Seed: seed, Reps: reps,
		Cluster: &cluster.Spec{
			Nodes: 2, Straggler: 1, StragglerScale: 4, Policy: "round-robin",
			Tenants: 1, JobsPerTenant: 2, Width: 2, WorkerMs: 1, ArrivalMs: 1,
		},
	}
}

func TestClusterSubmitRunFetch(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	st := submit(t, ts, tinyClusterSpec(5, 3), http.StatusAccepted)
	st = waitTerminal(t, ts, w, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (err %q), want done", st.State, st.Error)
	}
	var res JobResult
	if err := json.Unmarshal(fetchResult(t, ts, st.ID), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.TimesNs) != 3 || len(res.Cluster) != 3 || res.Summary.N != 3 {
		t.Fatalf("want 3 reps, got times=%d cluster=%d summary n=%d",
			len(res.TimesNs), len(res.Cluster), res.Summary.N)
	}
	for i, r := range res.Cluster {
		if r.Jobs != 2 || r.BatchNs <= 0 {
			t.Fatalf("rep %d malformed: %+v", i, r)
		}
		if res.TimesNs[i] != r.BatchNs {
			t.Fatalf("rep %d: TimesNs %d != BatchNs %d", i, res.TimesNs[i], r.BatchNs)
		}
	}
}

// TestClusterCacheHit is the acceptance criterion: resubmitting the same
// cluster spec (spelled differently) is served from the cache without
// re-running the simulation, byte-identical to the first execution.
func TestClusterCacheHit(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{})
	first := submit(t, ts, tinyClusterSpec(9, 2), http.StatusAccepted)
	st1 := waitTerminal(t, ts, w, first.ID)
	if st1.State != StateDone || st1.Cached {
		t.Fatalf("first run: %+v", st1)
	}
	payload1 := fetchResult(t, ts, first.ID)
	if n := srv.Metrics().Executions; n != 1 {
		t.Fatalf("executions after first run = %d, want 1", n)
	}

	// Same scenario, representation-only differences: policy case and the
	// "1 means natural" spelling of the global noise scale.
	spec2 := tinyClusterSpec(9, 2)
	spec2.Cluster.Policy = "Round-Robin"
	spec2.Cluster.NoiseScale = 1.0
	second := submit(t, ts, spec2, http.StatusOK)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.SpecHash != first.SpecHash {
		t.Fatalf("hashes differ: %s vs %s", second.SpecHash, first.SpecHash)
	}
	payload2 := fetchResult(t, ts, second.ID)
	if !bytes.Equal(payload1, payload2) {
		t.Fatal("cached payload not byte-identical")
	}
	if n := srv.Metrics().Executions; n != 1 {
		t.Fatalf("executions after cache hit = %d, want 1 (no re-execution)", n)
	}

	// A semantically different scenario must miss.
	spec3 := tinyClusterSpec(9, 2)
	spec3.Cluster.Nodes = 3
	third := submit(t, ts, spec3, http.StatusAccepted)
	st3 := waitTerminal(t, ts, w, third.ID)
	if st3.State != StateDone || st3.SpecHash == first.SpecHash {
		t.Fatalf("different scenario: %+v (first hash %s)", st3, first.SpecHash)
	}
}

// TestClusterSpec400s verifies nonsensical cluster configs are rejected
// with HTTP 400 by the daemon instead of panicking mid-run.
func TestClusterSpec400s(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	bad := []struct {
		name   string
		mutate func(*JobSpec)
	}{
		{"zero nodes", func(s *JobSpec) { s.Cluster.Nodes = 0 }},
		{"negative nodes", func(s *JobSpec) { s.Cluster.Nodes = -1 }},
		{"policy typo", func(s *JobSpec) { s.Cluster.Policy = "roundrobin" }},
		{"unknown preset", func(s *JobSpec) { s.Cluster.Preset = "mainframe" }},
		{"straggler out of range", func(s *JobSpec) { s.Cluster.Straggler = 7 }},
		{"negative worker ms", func(s *JobSpec) { s.Cluster.WorkerMs = -1 }},
		{"zero reps", func(s *JobSpec) { s.Reps = 0 }},
		{"mixed with platform", func(s *JobSpec) { s.Platform = "tiny-test" }},
		{"mixed with workload", func(s *JobSpec) { s.Workload = "nbody"; s.Model = "omp" }},
		{"mixed with tracing", func(s *JobSpec) { s.Tracing = true }},
		{"mixed with noise scale", func(s *JobSpec) { s.NoiseScale = 2 }},
	}
	for _, c := range bad {
		spec := tinyClusterSpec(1, 1)
		c.mutate(&spec)
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d (want 400): %s", c.name, resp.StatusCode, data)
		}
	}
}

// TestClusterTimeline verifies a cluster job with "timeline": true serves a
// node-grouped Chrome trace at /timeline.
func TestClusterTimeline(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	spec := tinyClusterSpec(3, 1)
	spec.Timeline = true
	st := submit(t, ts, spec, http.StatusAccepted)
	st = waitTerminal(t, ts, w, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (err %q)", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: HTTP %d: %s", resp.StatusCode, data)
	}
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("timeline not a trace-event array: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range evs {
		if ev["name"] == "process_name" {
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		}
	}
	if !names["node0"] || !names["cluster"] {
		t.Fatalf("timeline lacks node-grouped processes: %v", names)
	}
}
