package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/analyze"
)

// API surface:
//
//	POST   /v1/jobs            submit a JobSpec; 202 + JobStatus (200 when
//	                           served from cache at submit time)
//	GET    /v1/jobs/{id}       poll status
//	GET    /v1/jobs/{id}/result fetch the stored result payload verbatim
//	GET    /v1/jobs/{id}/events live progress as server-sent events (state
//	                           transitions + rep completions; Last-Event-ID
//	                           resumes a dropped stream)
//	GET    /v1/jobs/{id}/timeline fetch the Chrome trace-event timeline
//	                           (specs submitted with "timeline": true)
//	DELETE /v1/jobs/{id}       cancel
//	POST   /v1/analyses        submit a bare analysis spec (analyze.Spec);
//	                           the body is wrapped as JobSpec{Analyze: spec}
//	                           and rides the same queue, cache and SSE stream
//	GET    /v1/analyses/{id}           poll status (alias of the job route)
//	GET    /v1/analyses/{id}/result    fetch the analysis artifact verbatim
//	GET    /v1/analyses/{id}/events    live progress (SSE)
//	GET    /v1/analyses/{id}/timeline  bottleneck source's evidence timeline
//	GET    /v1/analyses/{id}/timeline/{source} one source's evidence timeline
//	DELETE /v1/analyses/{id}           cancel
//	GET    /metrics            Prometheus text metrics (?format=json for the
//	                           JSON rendering of the same registries)
//	GET    /debug/flightrecorder recent flight-recorder dumps of failed reps
//	GET    /healthz            liveness
//
// Malformed specs get 400, unknown jobs 404, a full queue 503 with
// Retry-After, and submissions during drain 503.

// Handler returns the HTTP handler for the service API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/analyses", s.handleSubmitAnalysis)
	mux.HandleFunc("GET /v1/analyses/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/analyses/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/analyses/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/analyses/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/analyses/{id}/timeline/{source}", s.handleAnalysisTimeline)
	mux.HandleFunc("DELETE /v1/analyses/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: "+err.Error())
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, errQueueFull), errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, _ := s.Status(job.ID)
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleSubmitAnalysis accepts a bare analysis spec and submits it as an
// analysis job. The wrapped JobSpec leaves every single-node field unset,
// so validateAnalyze cannot reject it for field mixing — only the analysis
// spec itself is on trial.
func (s *Server) handleSubmitAnalysis(w http.ResponseWriter, r *http.Request) {
	var spec analyze.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding analysis spec: "+err.Error())
		return
	}
	job, err := s.Submit(JobSpec{Analyze: &spec})
	switch {
	case err == nil:
	case errors.Is(err, errQueueFull), errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, _ := s.Status(job.ID)
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleAnalysisTimeline serves one noise source's evidence timeline of a
// finished analysis job.
func (s *Server) handleAnalysisTimeline(w http.ResponseWriter, r *http.Request) {
	data, state, ok := s.AnalysisTimeline(r.PathValue("id"), r.PathValue("source"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch {
	case state == StateDone && data != nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case state == StateDone:
		httpError(w, http.StatusNotFound, "no evidence timeline for that source (submit with \"timeline\": true)")
	case state.Terminal():
		httpError(w, http.StatusConflict, "job "+string(state)+", no timeline")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job "+string(state))
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, state, ok := s.Result(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch state {
	case StateDone:
		// Serve the stored bytes verbatim: a cache hit is byte-identical
		// to the execution that produced the entry.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case StateFailed, StateCanceled:
		httpError(w, http.StatusConflict, "job "+string(state)+", no result")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job "+string(state))
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log, ok := s.Events(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	ServeSSE(w, r, log)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	state, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "state": string(state)})
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	data, state, ok := s.Timeline(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch {
	case state == StateDone && data != nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case state == StateDone:
		httpError(w, http.StatusNotFound, "no timeline recorded (submit with \"timeline\": true)")
	case state.Terminal():
		httpError(w, http.StatusConflict, "job "+string(state)+", no timeline")
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusAccepted, "job "+string(state))
	}
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.FlightDumps())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		s.writeMetricsJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics().render(w)
	// The kernel counters accumulated across job executions (repro_*
	// families) follow the service families.
	s.runReg.WritePrometheus(w)
}

// writeMetricsJSON renders the service snapshot plus both registries (the
// service families and the kernel's repro_* families) as one JSON document.
func (s *Server) writeMetricsJSON(w http.ResponseWriter) {
	var svc, kernel bytes.Buffer
	if err := s.met.reg.WriteJSON(&svc); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if err := s.runReg.WriteJSON(&kernel); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot": s.Metrics(),
		"service":  json.RawMessage(svc.Bytes()),
		"kernel":   json.RawMessage(kernel.Bytes()),
	})
}
