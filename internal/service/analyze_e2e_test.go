package service

// End-to-end tests of the analysis API over httptest: POST /v1/analyses →
// poll → artifact byte-identical to a direct analyze.Run of the same spec,
// resubmission served from cache with zero additional engine executions
// (with /metrics as evidence), evidence-timeline endpoints, and
// malformed-spec 400s. The file runs under -race with the rest of the
// package.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/experiment"
)

// tinyAnalysisSpec is a fast three-source sweep on the 4-core test machine.
func tinyAnalysisSpec(seed uint64) analyze.Spec {
	return analyze.Spec{
		Platform: "tiny-test", Workload: "nbody", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: seed, Reps: 3,
		Sources:  []string{"daemon", "irq", "bandwidth"},
		Ladder:   []float64{1, 4},
		Timeline: true,
	}
}

// submitAnalysis posts a bare analysis spec to /v1/analyses.
func submitAnalysis(t *testing.T, ts *httptest.Server, spec analyze.Spec, want ...int) JobStatus {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/analyses", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	ok := false
	for _, w := range want {
		ok = ok || resp.StatusCode == w
	}
	if !ok {
		t.Fatalf("submit analysis: HTTP %d (want %v): %s", resp.StatusCode, want, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit analysis: decoding %q: %v", data, err)
	}
	return st
}

// fetchPath downloads one analysis endpoint's body, asserting 200.
func fetchPath(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, data)
	}
	return data
}

// TestAnalysisSubmitPollFetch: the daemon's artifact must be byte-identical
// to a direct analyze.Run of the same spec, and the timeline endpoints must
// serve the same evidence bytes the direct run exports.
func TestAnalysisSubmitPollFetch(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	spec := tinyAnalysisSpec(42)

	st := submitAnalysis(t, ts, spec, http.StatusAccepted)
	final := waitTerminal(t, ts, w, st.ID)
	if final.State != StateDone {
		t.Fatalf("analysis did not finish: %+v", final)
	}
	if wantTotal := spec.TotalReps(); final.RepsTotal != wantTotal || final.RepsDone != wantTotal {
		t.Fatalf("progress %d/%d, want %d/%d", final.RepsDone, final.RepsTotal, wantTotal, wantTotal)
	}
	payload := fetchPath(t, ts, "/v1/analyses/"+st.ID+"/result")

	direct, err := analyze.Run(context.Background(), experiment.Executor{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Artifact.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want) {
		t.Fatalf("daemon artifact differs from direct run:\n%.300s\nvs\n%.300s", payload, want)
	}

	// The job-route alias serves the same bytes.
	if alias := fetchResult(t, ts, st.ID); !bytes.Equal(alias, payload) {
		t.Fatal("/v1/jobs result alias differs from /v1/analyses result")
	}

	// Per-source evidence equals the direct run's export; the plain
	// timeline endpoint serves the bottleneck source's copy.
	art, err := analyze.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Timelines) != 3 {
		t.Fatalf("artifact references %d timelines, want 3", len(art.Timelines))
	}
	for _, ref := range art.Timelines {
		tl := fetchPath(t, ts, "/v1/analyses/"+st.ID+"/timeline/"+ref.Source)
		if !bytes.Equal(tl, direct.Timelines[ref.Source]) {
			t.Fatalf("%s evidence differs from direct run", ref.Source)
		}
	}
	headline := fetchPath(t, ts, "/v1/analyses/"+st.ID+"/timeline")
	if !bytes.Equal(headline, direct.Timelines[art.Bottleneck]) {
		t.Fatalf("headline timeline is not the bottleneck source's (%s)", art.Bottleneck)
	}
}

// TestAnalysisResubmitZeroExecution: resubmitting the same sweep (spelled
// differently) is served from cache at submit time — zero additional engine
// executions, with /metrics as the evidence trail.
func TestAnalysisResubmitZeroExecution(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{})
	spec := tinyAnalysisSpec(7)

	first := submitAnalysis(t, ts, spec, http.StatusAccepted)
	if st := waitTerminal(t, ts, w, first.ID); st.State != StateDone || st.Cached {
		t.Fatalf("first analysis: %+v", st)
	}
	payload1 := fetchPath(t, ts, "/v1/analyses/"+first.ID+"/result")
	if got := srv.Metrics().Executions; got != 1 {
		t.Fatalf("executions after first analysis = %d, want 1", got)
	}

	// Representation variants: model case, unsorted duplicated sources,
	// unsorted duplicated ladder. Same canonical spec, same hash.
	spec2 := spec
	spec2.Model = " OMP "
	spec2.Sources = []string{"irq", "bandwidth", "daemon", "irq"}
	spec2.Ladder = []float64{4, 1, 4}
	second := submitAnalysis(t, ts, spec2, http.StatusOK)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if second.SpecHash != first.SpecHash {
		t.Fatalf("hashes differ: %s vs %s", second.SpecHash, first.SpecHash)
	}
	payload2 := fetchPath(t, ts, "/v1/analyses/"+second.ID+"/result")
	if !bytes.Equal(payload1, payload2) {
		t.Fatal("cached artifact differs from the original execution")
	}
	if got := srv.Metrics().Executions; got != 1 {
		t.Fatalf("resubmission re-ran the engine: executions = %d, want 1", got)
	}

	// The cached job still serves evidence timelines (derived cache keys).
	art, err := analyze.Decode(payload2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range art.Timelines {
		if tl := fetchPath(t, ts, "/v1/analyses/"+second.ID+"/timeline/"+ref.Source); len(tl) == 0 {
			t.Fatalf("cached job serves empty %s evidence", ref.Source)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metricsBody)
	for _, want := range []string{
		"noiselabd_executions_total 1",
		"noiselabd_cache_hits_total 1",
		"noiselabd_jobs_total{state=\"done\"} 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestAnalysisMalformed400s: malformed analysis specs are rejected with 400
// at submit time, never reaching the engine.
func TestAnalysisMalformed400s(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	post := func(t *testing.T, path string, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	valid := tinyAnalysisSpec(1)
	cases := map[string]func(*analyze.Spec){
		"unknown source class": func(s *analyze.Spec) { s.Sources = []string{"gpu"} },
		"single-rung ladder":   func(s *analyze.Spec) { s.Ladder = []float64{2} },
		"zero reps":            func(s *analyze.Spec) { s.Reps = 0 },
		"unknown platform":     func(s *analyze.Spec) { s.Platform = "cray-1" },
	}
	for name, mut := range cases {
		s := valid
		s.Sources = append([]string(nil), valid.Sources...)
		s.Ladder = append([]float64(nil), valid.Ladder...)
		mut(&s)
		body, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if code, resp := post(t, "/v1/analyses", string(body)); code != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d (want 400): %s", name, code, resp)
		}
	}

	// An explicitly empty ladder (or source list) is a 400, not a silent
	// fall-back to the defaults. Raw JSON: the Go struct's omitempty would
	// drop the empty slice before it reached the wire.
	emptyLadder := `{"platform":"tiny-test","workload":"nbody","size":"small","model":"omp","strategy":"Rm","reps":1,"ladder":[]}`
	if code, resp := post(t, "/v1/analyses", emptyLadder); code != http.StatusBadRequest {
		t.Fatalf("empty ladder: HTTP %d (want 400): %s", code, resp)
	}
	emptySources := `{"platform":"tiny-test","workload":"nbody","size":"small","model":"omp","strategy":"Rm","reps":1,"sources":[]}`
	if code, resp := post(t, "/v1/analyses", emptySources); code != http.StatusBadRequest {
		t.Fatalf("empty sources: HTTP %d (want 400): %s", code, resp)
	}

	// Unknown fields are rejected, so typos cannot silently change a sweep.
	if code, resp := post(t, "/v1/analyses", `{"platform":"tiny-test","laddder":[1,2]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d (want 400): %s", code, resp)
	}

	// Mixing an analysis with single-node fields on the job route is
	// ambiguous and rejected.
	mixed := `{"platform":"tiny-test","analyze":{"platform":"tiny-test","workload":"nbody","size":"small","model":"omp","strategy":"Rm","reps":1,"ladder":[1,2]}}`
	if code, resp := post(t, "/v1/jobs", mixed); code != http.StatusBadRequest {
		t.Fatalf("mixed fields: HTTP %d (want 400): %s", code, resp)
	}

	// An oversized rep budget is bounded by sources x ladder x reps, not
	// just the per-point count.
	small, tsSmall, _ := newTestServer(t, Config{MaxReps: 10})
	defer small.Close()
	budget := tinyAnalysisSpec(2) // 3 sources x 2 factors x 3 reps = 18 > 10
	body, _ := json.Marshal(budget)
	resp, err := http.Post(tsSmall.URL+"/v1/analyses", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "budget") {
		t.Fatalf("rep budget: HTTP %d: %s", resp.StatusCode, data)
	}
}
