// Package service exposes the experiment engine as an HTTP/JSON daemon:
// submit an experiment spec, poll job status, fetch results, cancel. A
// bounded job queue feeds the deterministic parallel executor
// (internal/experiment.Executor), and a content-addressed result cache
// (internal/rescache) serves repeated submissions of identical specs
// without re-execution — sound because runs are pure functions of
// (spec, seed, model version).
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// JobSpec is the wire form of one experiment submission: a repetition
// series of one (platform, workload, model, strategy) cell. It is the
// serializable counterpart of experiment.Spec plus a repetition count.
type JobSpec struct {
	// Platform is a preset name (see repro.PlatformNames; the tiny test
	// machines are also accepted).
	Platform string `json:"platform"`
	// Workload is a workload name; Size selects the problem size:
	// "" or "default" for the paper-calibrated size, "small" for the
	// CI-sized variant.
	Workload string `json:"workload"`
	Size     string `json:"size,omitempty"`
	// Model is "omp" or "sycl".
	Model string `json:"model"`
	// Strategy is a mitigation label (Rm, RmHK, ..., optional -SMT).
	Strategy string `json:"strategy"`
	// Seed is the base seed; rep i derives its own seed from it.
	Seed uint64 `json:"seed"`
	// Reps is the repetition count (>= 1).
	Reps int `json:"reps"`
	// Tracing records an osnoise-style trace per rep.
	Tracing bool `json:"tracing,omitempty"`
	// NoiseScale multiplies natural noise intensity; 0 and 1 both mean
	// the natural level.
	NoiseScale float64 `json:"noise_scale,omitempty"`
	// Runlevel3 disables GUI noise (§5.1 re-runs).
	Runlevel3 bool `json:"runlevel3,omitempty"`
	// PinInjectors pins injector processes (ablation).
	PinInjectors bool `json:"pin_injectors,omitempty"`
	// Inject, when non-nil, replays this noise configuration (stage 3).
	Inject *core.Config `json:"inject,omitempty"`
	// Timeline records rep 0's full scheduling-event timeline (Chrome
	// trace-event JSON), served at GET /v1/jobs/{id}/timeline. The recorder
	// is passive, so the result payload is unaffected; the field still
	// participates in the spec hash (omitempty keeps legacy hashes stable).
	Timeline bool `json:"timeline,omitempty"`
	// DLRuntimeNs/DLPeriodNs, when positive, run every workload thread
	// under SCHED_DEADLINE with this per-thread CBS reservation — the
	// deadline-class mitigation. Both must be set together, with
	// runtime <= period (omitempty keeps legacy hashes stable).
	DLRuntimeNs int64 `json:"dl_runtime_ns,omitempty"`
	DLPeriodNs  int64 `json:"dl_period_ns,omitempty"`
	// Cluster, when non-nil, makes this a simulated-datacenter job: Reps
	// cluster runs of the embedded scenario instead of a single-node series.
	// The single-node fields (platform, workload, model, strategy, and the
	// noise knobs) must be unset — the cluster spec carries its own. Cluster
	// results hash into the same content-key scheme (omitempty keeps legacy
	// single-node hashes stable).
	Cluster *cluster.Spec `json:"cluster,omitempty"`
	// Analyze, when non-nil, makes this a bottleneck-analysis job: a
	// differential noise sweep whose result payload is the analysis
	// artifact (analyze.Artifact JSON). As with Cluster, every other field
	// must be unset — the analysis spec carries its own cell, seed, and rep
	// counts (omitempty keeps legacy hashes stable).
	Analyze *analyze.Spec `json:"analyze,omitempty"`
}

// Normalize rewrites representation-only variation to canonical form so
// semantically equal specs hash equal: model and strategy case/spelling,
// the two spellings of the default size, and the two spellings of natural
// noise intensity. It does not validate; call Validate after.
func (s *JobSpec) Normalize() {
	s.Platform = strings.TrimSpace(s.Platform)
	s.Workload = strings.TrimSpace(s.Workload)
	s.Model = strings.ToLower(strings.TrimSpace(s.Model))
	if st, err := mitigate.Parse(strings.TrimSpace(s.Strategy)); err == nil {
		s.Strategy = st.Name()
	}
	if s.Size == "default" {
		s.Size = ""
	}
	if s.NoiseScale == 1 {
		s.NoiseScale = 0
	}
	if s.Cluster != nil {
		s.Cluster.Normalize()
	}
	if s.Analyze != nil {
		s.Analyze.Normalize()
	}
}

// Validate checks the spec against the known platforms, workloads, models
// and strategies, and bounds Reps by maxReps (<=0 means no bound). A
// cluster spec is validated by the cluster package instead; mixing it with
// single-node fields is rejected so a submission cannot be ambiguous about
// which simulation it requests.
func (s *JobSpec) Validate(maxReps int) error {
	if s.Analyze != nil {
		return s.validateAnalyze(maxReps)
	}
	if s.Cluster != nil {
		return s.validateCluster(maxReps)
	}
	if _, err := platform.New(s.Platform); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if _, err := workloads.ByName(s.Workload, "small"); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	switch s.Size {
	case "", "small":
	default:
		return fmt.Errorf("service: unknown size %q (want \"\", \"default\" or \"small\")", s.Size)
	}
	switch s.Model {
	case "omp", "sycl":
	default:
		return fmt.Errorf("service: unknown model %q (want omp or sycl)", s.Model)
	}
	if _, err := mitigate.Parse(s.Strategy); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if s.Reps < 1 {
		return fmt.Errorf("service: reps %d must be >= 1", s.Reps)
	}
	if maxReps > 0 && s.Reps > maxReps {
		return fmt.Errorf("service: reps %d exceeds the server limit %d", s.Reps, maxReps)
	}
	if s.NoiseScale < 0 || math.IsNaN(s.NoiseScale) || math.IsInf(s.NoiseScale, 0) {
		return fmt.Errorf("service: noise_scale %g must be finite and >= 0", s.NoiseScale)
	}
	if s.Inject != nil {
		if err := s.Inject.Validate(); err != nil {
			return fmt.Errorf("service: inject config: %w", err)
		}
	}
	if err := s.validateDeadline(); err != nil {
		return err
	}
	return nil
}

// validateDeadline checks the SCHED_DEADLINE reservation fields: both set
// or both zero, positive, and runtime within the period.
func (s *JobSpec) validateDeadline() error {
	if s.DLRuntimeNs == 0 && s.DLPeriodNs == 0 {
		return nil
	}
	if s.DLRuntimeNs <= 0 || s.DLPeriodNs <= 0 {
		return fmt.Errorf("service: dl_runtime_ns (%d) and dl_period_ns (%d) must both be positive when either is set",
			s.DLRuntimeNs, s.DLPeriodNs)
	}
	if s.DLRuntimeNs > s.DLPeriodNs {
		return fmt.Errorf("service: dl_runtime_ns %d exceeds dl_period_ns %d",
			s.DLRuntimeNs, s.DLPeriodNs)
	}
	return nil
}

// validateCluster checks a cluster submission: the embedded cluster spec
// must validate, the single-node fields must be unset, and Reps stays
// bounded. Errors surface as 400s from the daemon, never panics mid-run.
func (s *JobSpec) validateCluster(maxReps int) error {
	if s.Platform != "" || s.Workload != "" || s.Model != "" || s.Strategy != "" || s.Size != "" {
		return fmt.Errorf("service: cluster jobs must not set platform, workload, model, strategy or size")
	}
	if s.Tracing || s.Runlevel3 || s.PinInjectors || s.Inject != nil || s.NoiseScale != 0 {
		return fmt.Errorf("service: cluster jobs must not set tracing, runlevel3, pin_injectors, inject or noise_scale (the cluster spec has its own noise knobs)")
	}
	if s.DLRuntimeNs != 0 || s.DLPeriodNs != 0 {
		return fmt.Errorf("service: cluster jobs must not set dl_runtime_ns or dl_period_ns")
	}
	if err := s.Cluster.Validate(); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if s.Reps < 1 {
		return fmt.Errorf("service: reps %d must be >= 1", s.Reps)
	}
	if maxReps > 0 && s.Reps > maxReps {
		return fmt.Errorf("service: reps %d exceeds the server limit %d", s.Reps, maxReps)
	}
	return nil
}

// validateAnalyze checks an analysis submission: the embedded analysis
// spec must validate, every other job field must be unset, and the total
// rep budget (sources x ladder x reps) stays within the server bound —
// bounding only the per-point count would let a wide sweep smuggle in an
// arbitrarily large budget.
func (s *JobSpec) validateAnalyze(maxReps int) error {
	if s.Platform != "" || s.Workload != "" || s.Model != "" || s.Strategy != "" || s.Size != "" {
		return fmt.Errorf("service: analysis jobs must not set platform, workload, model, strategy or size (the analysis spec has its own)")
	}
	if s.Reps != 0 || s.Seed != 0 || s.Tracing || s.Runlevel3 || s.PinInjectors ||
		s.Inject != nil || s.NoiseScale != 0 || s.Timeline || s.Cluster != nil ||
		s.DLRuntimeNs != 0 || s.DLPeriodNs != 0 {
		return fmt.Errorf("service: analysis jobs must not set reps, seed, tracing, runlevel3, pin_injectors, inject, noise_scale, timeline, cluster or deadline fields (the analysis spec has its own)")
	}
	if err := s.Analyze.Validate(maxReps); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if maxReps > 0 && s.Analyze.TotalReps() > maxReps {
		return fmt.Errorf("service: analysis rep budget %d (sources x ladder x reps) exceeds the server limit %d",
			s.Analyze.TotalReps(), maxReps)
	}
	return nil
}

// TotalReps is the job's rep budget: the analysis sweep total for analysis
// jobs, Reps otherwise. Progress (reps_done/reps_total) is reported
// against it.
func (s *JobSpec) TotalReps() int {
	if s.Analyze != nil {
		return s.Analyze.TotalReps()
	}
	return s.Reps
}

// Resolve converts the wire spec into an executable experiment.Spec.
func (s *JobSpec) Resolve() (experiment.Spec, error) {
	p, err := platform.New(s.Platform)
	if err != nil {
		return experiment.Spec{}, err
	}
	var w workloads.Workload
	if s.Size == "small" {
		w, err = p.TinySpec(s.Workload)
	} else {
		w, err = p.WorkloadSpec(s.Workload)
	}
	if err != nil {
		return experiment.Spec{}, err
	}
	strat, err := mitigate.Parse(s.Strategy)
	if err != nil {
		return experiment.Spec{}, err
	}
	return experiment.Spec{
		Platform: p, Workload: w, Model: s.Model, Strategy: strat,
		Seed: s.Seed, Tracing: s.Tracing, Inject: s.Inject,
		PinInjectors: s.PinInjectors, NoiseScale: s.NoiseScale,
		Runlevel3: s.Runlevel3,
		DLRuntime: sim.Time(s.DLRuntimeNs), DLPeriod: sim.Time(s.DLPeriodNs),
	}, nil
}

// SpecHash returns the content address of a spec: the hex SHA-256 of its
// canonical JSON encoding salted with experiment.ModelVersion. Semantically
// equal specs (after Normalize) hash equal; any semantic field change, and
// any model-version bump, changes the key. The spec is normalized in place.
func SpecHash(s *JobSpec) (string, error) {
	s.Normalize()
	enc, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("service: hashing spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(experiment.ModelVersion))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// JobResult is the wire form of a completed execution series: the raw
// per-rep times (the deterministic ground truth) plus the summary the
// paper's tables derive from them. Its JSON encoding is the byte payload
// the cache stores and the /result endpoint serves verbatim.
type JobResult struct {
	SpecHash     string         `json:"spec_hash"`
	ModelVersion string         `json:"model_version"`
	Spec         JobSpec        `json:"spec"`
	TimesNs      []int64        `json:"times_ns"`
	Summary      stats.Summary  `json:"summary_ms"`
	Traces       []*trace.Trace `json:"traces,omitempty"`
	// Cluster holds the per-rep cluster results of a cluster job (TimesNs
	// then carries each rep's batch completion time).
	Cluster []*cluster.Result `json:"cluster,omitempty"`
}
