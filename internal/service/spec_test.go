package service

import (
	"reflect"
	"strings"
	"testing"
)

func TestNormalizeCanonicalizesRepresentation(t *testing.T) {
	a := JobSpec{Platform: " tiny-test ", Workload: "nbody", Model: "OMP",
		Strategy: "Rm", Seed: 3, Reps: 5, Size: "default", NoiseScale: 1.0}
	b := JobSpec{Platform: "tiny-test", Workload: "nbody", Model: "omp",
		Strategy: "Rm", Seed: 3, Reps: 5}
	ha, err := SpecHash(&a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := SpecHash(&b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("representation variants hash differently: %s vs %s", ha, hb)
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	base := JobSpec{Platform: "tiny-test", Workload: "nbody", Model: "omp",
		Strategy: "Rm", Seed: 3, Reps: 5}
	h0, err := SpecHash(&base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*JobSpec){
		"seed":      func(s *JobSpec) { s.Seed++ },
		"reps":      func(s *JobSpec) { s.Reps++ },
		"tracing":   func(s *JobSpec) { s.Tracing = true },
		"runlevel3": func(s *JobSpec) { s.Runlevel3 = true },
		"scale":     func(s *JobSpec) { s.NoiseScale = 2.5 },
		"model":     func(s *JobSpec) { s.Model = "sycl" },
		"strategy":  func(s *JobSpec) { s.Strategy = "TPHK" },
		"workload":  func(s *JobSpec) { s.Workload = "minife" },
		"platform":  func(s *JobSpec) { s.Platform = "intel-9700kf" },
		"size":      func(s *JobSpec) { s.Size = "small" },
		"pin":       func(s *JobSpec) { s.PinInjectors = true },
		"deadline":  func(s *JobSpec) { s.DLRuntimeNs, s.DLPeriodNs = 400_000, 1_000_000 },
	}
	for name, mutate := range mutations {
		m := base
		mutate(&m)
		h, err := SpecHash(&m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

func TestValidateDeadlineFields(t *testing.T) {
	base := JobSpec{Platform: "tiny-test", Workload: "svcloop", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: 1, Reps: 1}
	cases := []struct {
		name            string
		runtime, period int64
		ok              bool
	}{
		{"both-zero", 0, 0, true},
		{"valid", 400_000, 1_000_000, true},
		{"runtime-equals-period", 1_000_000, 1_000_000, true},
		{"runtime-only", 400_000, 0, false},
		{"period-only", 0, 1_000_000, false},
		{"runtime-exceeds-period", 2_000_000, 1_000_000, false},
		{"negative-runtime", -1, 1_000_000, false},
		{"negative-period", 400_000, -1, false},
	}
	for _, c := range cases {
		s := base
		s.DLRuntimeNs, s.DLPeriodNs = c.runtime, c.period
		err := s.Validate(0)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
	// Cluster jobs own their scheduling knobs; deadline fields on them are
	// rejected like the other single-node fields.
	cl := tinyClusterSpec(1, 1)
	cl.DLRuntimeNs, cl.DLPeriodNs = 400_000, 1_000_000
	if cl.Validate(0) == nil {
		t.Error("cluster job with deadline fields should fail validation")
	}
}

// FuzzSpecHashCanonical fuzzes the cache-key derivation: semantically
// equal specs must hash equal (whitespace, case, and default spellings are
// representation only), and changing any semantic field must change the
// key — a collision here would silently serve one experiment's results for
// another.
func FuzzSpecHashCanonical(f *testing.F) {
	f.Add("tiny-test", "nbody", uint8(0), uint8(0), uint64(1), 10, false, 0.0, false, false, "small")
	f.Add("intel-9700kf", "babelstream", uint8(1), uint8(3), uint64(99), 200, true, 2.5, true, true, "")
	f.Add("amd-9950x3d", "minife", uint8(0), uint8(5), uint64(7), 1, false, 1.0, false, false, "default")
	f.Fuzz(func(t *testing.T, platform, workload string, modelSel, stratSel uint8,
		seed uint64, reps int, tracing bool, noiseScale float64, runlevel3, pin bool, size string) {
		models := []string{"omp", "sycl"}
		strategies := []string{"Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2"}
		spec := JobSpec{
			Platform: platform, Workload: workload,
			Model:    models[int(modelSel)%len(models)],
			Strategy: strategies[int(stratSel)%len(strategies)],
			Seed:     seed, Reps: reps, Tracing: tracing,
			NoiseScale: noiseScale, Runlevel3: runlevel3,
			PinInjectors: pin, Size: size,
		}
		spec.Normalize()
		if spec.Validate(0) != nil {
			t.Skip()
		}
		h0, err := SpecHash(&spec)
		if err != nil {
			t.Fatalf("hashing valid spec: %v", err)
		}

		// Determinism: hashing a copy yields the same key.
		clone := spec
		if h, _ := SpecHash(&clone); h != h0 {
			t.Fatalf("clone hash differs: %s vs %s", h, h0)
		}

		// Representation variants collapse to the same key.
		variants := []func(*JobSpec){
			func(s *JobSpec) { s.Platform = "  " + s.Platform + "\t" },
			func(s *JobSpec) { s.Model = strings.ToUpper(s.Model) },
			func(s *JobSpec) {
				if s.Size == "" {
					s.Size = "default"
				}
			},
			func(s *JobSpec) {
				if s.NoiseScale == 0 {
					s.NoiseScale = 1.0
				}
			},
		}
		for i, vary := range variants {
			v := spec
			vary(&v)
			if h, err := SpecHash(&v); err != nil || h != h0 {
				t.Fatalf("variant %d: hash %s err %v, want %s", i, h, err, h0)
			}
		}

		// Semantic mutations must move the key.
		mutations := []func(*JobSpec){
			func(s *JobSpec) { s.Seed++ },
			func(s *JobSpec) { s.Reps++ },
			func(s *JobSpec) { s.Tracing = !s.Tracing },
			func(s *JobSpec) { s.Runlevel3 = !s.Runlevel3 },
			func(s *JobSpec) { s.PinInjectors = !s.PinInjectors },
			func(s *JobSpec) { s.NoiseScale = s.NoiseScale + 3 },
			func(s *JobSpec) {
				if s.Model == "omp" {
					s.Model = "sycl"
				} else {
					s.Model = "omp"
				}
			},
			func(s *JobSpec) {
				if s.Strategy == "Rm" {
					s.Strategy = "TPHK2"
				} else {
					s.Strategy = "Rm"
				}
			},
			func(s *JobSpec) {
				if s.Size == "small" {
					s.Size = ""
				} else {
					s.Size = "small"
				}
			},
		}
		for i, mutate := range mutations {
			m := spec
			mutate(&m)
			m.Normalize()
			if m.Validate(0) != nil || reflect.DeepEqual(m, spec) {
				// Invalid after mutation, or a no-op (e.g. float
				// saturation made x+3 == x): no hash claim to check.
				continue
			}
			if h, err := SpecHash(&m); err != nil || h == h0 {
				t.Fatalf("mutation %d did not change the hash (%s, err %v)", i, h, err)
			}
		}
	})
}
