package service

// Server-sent-event progress streams. Every job carries an EventLog: state
// transitions (queued → running → terminal) and rep-completion progress
// publish into it, and GET /v1/jobs/{id}/events streams it as SSE. The log
// is the serving-side face of the executor's OnRep hook — the recorder
// stays passive, so a streamed job's results are byte-identical to an
// unstreamed one.
//
// Delivery contract (what the fleet coordinator and the tests rely on):
//
//   - Event IDs are strictly increasing per job, starting at 1.
//   - Progress events are monotone: the "done" count never regresses, and
//     each distinct count is published at most once.
//   - A reconnect with Last-Event-ID resumes after that ID. When the ID has
//     fallen off the bounded ring, the stream re-synchronizes with a
//     snapshot (current state + current progress) instead of replaying
//     stale events, so monotonicity survives ring eviction.
//   - The stream ends after the terminal state event is delivered, and
//     drains immediately when the client disconnects.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// DefaultEventKeep bounds the per-job event ring: a late or reconnecting
// subscriber can replay this many recent events; older history collapses
// into a snapshot.
const DefaultEventKeep = 256

// Event is one server-sent event: a state transition or a progress update.
type Event struct {
	ID   uint64
	Type string // "state" or "progress"
	Data string // pre-marshaled JSON payload
}

// EventLog is a bounded, subscribable event history for one job. It is
// safe for concurrent publishers and subscribers; the zero value is not
// usable — construct with NewEventLog.
type EventLog struct {
	mu     sync.Mutex
	keep   int
	seq    uint64  // ID of the most recently published event
	buf    []Event // ring window, oldest first
	change chan struct{}

	lastDone  int // newest published progress count
	total     int
	lastState JobState
	done      bool // terminal state published
}

// NewEventLog builds a log retaining the last keep events (0 = default).
func NewEventLog(keep int) *EventLog {
	if keep <= 0 {
		keep = DefaultEventKeep
	}
	return &EventLog{keep: keep, change: make(chan struct{})}
}

// publish appends one event and wakes subscribers. Caller holds l.mu.
func (l *EventLog) publishLocked(typ, data string) {
	l.seq++
	l.buf = append(l.buf, Event{ID: l.seq, Type: typ, Data: data})
	if n := len(l.buf); n > l.keep {
		l.buf = append(l.buf[:0], l.buf[n-l.keep:]...)
	}
	close(l.change)
	l.change = make(chan struct{})
}

// PublishState records a job state transition. The first terminal state
// closes the stream for every subscriber; later publishes are ignored.
func (l *EventLog) PublishState(st JobState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.lastState = st
	l.publishLocked("state", fmt.Sprintf(`{"state":%q}`, string(st)))
	if st.Terminal() {
		l.done = true
	}
}

// PublishProgress records done-of-total rep completion. Regressing or
// duplicate counts are dropped so the stream stays strictly monotone even
// if publishers race.
func (l *EventLog) PublishProgress(done, total int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done || done <= l.lastDone {
		return
	}
	l.lastDone, l.total = done, total
	l.publishLocked("progress", fmt.Sprintf(`{"done":%d,"total":%d}`, done, total))
}

// next returns the events after the given ID, the channel that signals the
// next publish, and whether the stream is finished (terminal event already
// delivered at or before the returned events). When `after` predates the
// ring window, the buffered tail is replaced by a snapshot — the current
// state and progress — carrying IDs at the head of the stream, so the
// subscriber skips to "now" without ever observing a regressing count.
func (l *EventLog) next(after uint64) (evs []Event, wait <-chan struct{}, finished bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.seq + 1 - uint64(len(l.buf)) // ID of buf[0] when non-empty
	if len(l.buf) > 0 && after+1 < oldest {
		// Fell off the ring: synthesize a snapshot at the head of the
		// stream. IDs seq-1/seq keep later live events strictly increasing.
		if l.lastDone > 0 {
			evs = append(evs, Event{ID: l.seq - 1, Type: "progress",
				Data: fmt.Sprintf(`{"done":%d,"total":%d}`, l.lastDone, l.total)})
		}
		if l.lastState != "" {
			evs = append(evs, Event{ID: l.seq, Type: "state",
				Data: fmt.Sprintf(`{"state":%q}`, string(l.lastState))})
		}
		return evs, l.change, l.done
	}
	for _, e := range l.buf {
		if e.ID > after {
			evs = append(evs, e)
		}
	}
	last := after
	if len(evs) > 0 {
		last = evs[len(evs)-1].ID
	}
	return evs, l.change, l.done && last >= l.seq
}

// ServeSSE streams an EventLog over w as server-sent events until the
// terminal event has been delivered or the client disconnects. A
// Last-Event-ID request header resumes after that event. Both noiselabd's
// per-job endpoint and the fleet coordinator's serve through this one
// implementation, so the wire contract cannot drift between layers.
func ServeSSE(w http.ResponseWriter, r *http.Request, log *EventLog) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			after = n
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // keep reverse proxies from buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		evs, wait, finished := log.next(after)
		for _, e := range evs {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, e.Data); err != nil {
				return
			}
			after = e.ID
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if finished {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}
