package service

// End-to-end tests of the HTTP API over httptest, exercising the issue's
// contract: submit → poll → fetch, cache hits served byte-identical without
// re-execution, cancellation mid-run, malformed-spec 400s, and the
// graceful-shutdown drain. The whole file runs under -race in CI.
//
// State transitions are observed through the server's job-update test hook
// (condition-based waiting), not by polling status over wall-clock sleeps —
// the hook fires on every transition, so the tests are not timing-sensitive.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// liveServers tracks every server the tests create so TestMain can dump
// their flight-recorder rings if the package fails — CI uploads the file
// as an artifact to make scheduling-level failure forensics possible
// without a rerun.
var liveServers struct {
	sync.Mutex
	srvs []*Server
}

func TestMain(m *testing.M) {
	code := m.Run()
	if code != 0 {
		var dumps []obs.Flight
		liveServers.Lock()
		for _, s := range liveServers.srvs {
			dumps = append(dumps, s.FlightDumps()...)
		}
		liveServers.Unlock()
		if data, err := json.MarshalIndent(dumps, "", "  "); err == nil {
			_ = os.WriteFile("flightrecorder-dump.json", data, 0o644)
		}
	}
	os.Exit(code)
}

// jobWatcher turns the server's testHookJobUpdate callbacks into
// condition-based waiting: await blocks on a channel that is pulsed on every
// state transition, so no test spins on wall-clock polls.
type jobWatcher struct {
	mu     chan struct{} // 1-buffered semaphore (usable from the hook)
	last   map[string]JobState
	change chan struct{} // closed and replaced on every update
}

func newJobWatcher(srv *Server) *jobWatcher {
	w := &jobWatcher{
		mu:     make(chan struct{}, 1),
		last:   make(map[string]JobState),
		change: make(chan struct{}),
	}
	w.mu <- struct{}{}
	srv.testHookJobUpdate = func(id string, state JobState) {
		<-w.mu
		w.last[id] = state
		close(w.change)
		w.change = make(chan struct{})
		w.mu <- struct{}{}
	}
	return w
}

// await blocks until pred holds for the job's last observed state and
// returns that state. It fails the test after a generous deadline — reached
// only when the transition genuinely never happens.
func (w *jobWatcher) await(t *testing.T, id string, pred func(JobState) bool) JobState {
	t.Helper()
	timeout := time.After(120 * time.Second)
	for {
		<-w.mu
		st, ok := w.last[id]
		ch := w.change
		w.mu <- struct{}{}
		if ok && pred(st) {
			return st
		}
		select {
		case <-ch:
		case <-timeout:
			t.Fatalf("job %s: timed out waiting for state change (last %q)", id, st)
		}
	}
}

// newTestServer builds a Server plus its httptest frontend and state watcher.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *jobWatcher) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 2 * time.Minute
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	liveServers.Lock()
	liveServers.srvs = append(liveServers.srvs, srv)
	liveServers.Unlock()
	w := newJobWatcher(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, w
}

// tinySpec is a fast deterministic spec for tests.
func tinySpec(seed uint64, reps int) JobSpec {
	return JobSpec{
		Platform: "tiny-test", Workload: "schedbench", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: seed, Reps: reps,
	}
}

// submit posts a spec and decodes the status, asserting the HTTP code is
// one of want.
func submit(t *testing.T, ts *httptest.Server, spec JobSpec, want ...int) JobStatus {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	ok := false
	for _, w := range want {
		ok = ok || resp.StatusCode == w
	}
	if !ok {
		t.Fatalf("submit: HTTP %d (want %v): %s", resp.StatusCode, want, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit: decoding %q: %v", data, err)
	}
	return st
}

// waitTerminal blocks on the watcher until the job finishes, then fetches
// the final status over the API.
func waitTerminal(t *testing.T, ts *httptest.Server, w *jobWatcher, id string) JobStatus {
	t.Helper()
	w.await(t, id, JobState.Terminal)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// fetchResult downloads the raw result payload.
func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, data)
	}
	return data
}

func TestSubmitPollFetch(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	st := submit(t, ts, tinySpec(7, 10), http.StatusAccepted)
	if st.ID == "" || st.SpecHash == "" {
		t.Fatalf("submit status incomplete: %+v", st)
	}
	st = waitTerminal(t, ts, w, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (err %q), want done", st.State, st.Error)
	}
	data := fetchResult(t, ts, st.ID)
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.TimesNs) != 10 || res.Summary.N != 10 {
		t.Fatalf("result has %d times, summary n=%d, want 10", len(res.TimesNs), res.Summary.N)
	}
	if res.SpecHash != st.SpecHash {
		t.Fatalf("payload hash %s != job hash %s", res.SpecHash, st.SpecHash)
	}
	for _, ns := range res.TimesNs {
		if ns <= 0 {
			t.Fatalf("non-positive exec time %d", ns)
		}
	}
}

// TestCacheHitByteIdentical is the acceptance criterion: a repeated
// submission of an identical spec is served from the cache without
// re-running the engine, byte-identical to the first execution, and
// /metrics reports the hit.
func TestCacheHitByteIdentical(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{})
	spec := tinySpec(11, 12)

	first := submit(t, ts, spec, http.StatusAccepted)
	st1 := waitTerminal(t, ts, w, first.ID)
	if st1.State != StateDone || st1.Cached {
		t.Fatalf("first run: %+v", st1)
	}
	payload1 := fetchResult(t, ts, first.ID)
	execsAfterFirst := srv.Metrics().Executions
	if execsAfterFirst != 1 {
		t.Fatalf("executions after first run = %d, want 1", execsAfterFirst)
	}

	// Second submission: semantically identical spec spelled differently
	// (model case, explicit default noise scale) must hit the cache at
	// submit time.
	spec2 := spec
	spec2.Model = "OMP"
	spec2.NoiseScale = 1.0
	second := submit(t, ts, spec2, http.StatusOK)
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.SpecHash != first.SpecHash {
		t.Fatalf("hashes differ: %s vs %s", second.SpecHash, first.SpecHash)
	}
	payload2 := fetchResult(t, ts, second.ID)
	if !bytes.Equal(payload1, payload2) {
		t.Fatalf("cached payload differs from the original execution:\n%s\nvs\n%s", payload1, payload2)
	}
	if got := srv.Metrics().Executions; got != execsAfterFirst {
		t.Fatalf("cache hit re-ran the engine: executions %d -> %d", execsAfterFirst, got)
	}

	// /metrics must report the hit, plus the kernel counters the executions
	// published through the shared obs registry.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metricsBody)
	for _, want := range []string{
		"noiselabd_cache_hits_total 1",
		"noiselabd_executions_total 1",
		"noiselabd_jobs_total{state=\"done\"} 2",
		"repro_runs_total 12",
		"repro_sched_context_switches_total ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "noiselabd_cache_hit_ratio 0.000000") {
		t.Fatalf("/metrics hit ratio stayed zero:\n%s", text)
	}
}

// TestCacheServesAcrossRestart: a new server over the same cache dir serves
// the persisted bytes without executing.
func TestCacheServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1, w1 := newTestServer(t, Config{CacheDir: dir})
	spec := tinySpec(13, 8)
	st := waitTerminal(t, ts1, w1, submit(t, ts1, spec, http.StatusAccepted).ID)
	payload1 := fetchResult(t, ts1, st.ID)

	srv2, ts2, _ := newTestServer(t, Config{CacheDir: dir})
	st2 := submit(t, ts2, spec, http.StatusOK)
	if !st2.Cached {
		t.Fatalf("restart lost the cache: %+v", st2)
	}
	if !bytes.Equal(payload1, fetchResult(t, ts2, st2.ID)) {
		t.Fatal("restarted server served different bytes")
	}
	if srv2.Metrics().Executions != 0 {
		t.Fatal("restarted server re-executed a cached spec")
	}
}

func TestMalformedSpecs400(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxReps: 100})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]string{
		"not json":         `{"platform":`,
		"unknown field":    `{"platform":"tiny-test","workload":"nbody","model":"omp","strategy":"Rm","reps":1,"bogus":1}`,
		"unknown platform": `{"platform":"cray-1","workload":"nbody","model":"omp","strategy":"Rm","reps":1}`,
		"unknown workload": `{"platform":"tiny-test","workload":"linpack","model":"omp","strategy":"Rm","reps":1}`,
		"unknown model":    `{"platform":"tiny-test","workload":"nbody","model":"cuda","strategy":"Rm","reps":1}`,
		"unknown strategy": `{"platform":"tiny-test","workload":"nbody","model":"omp","strategy":"YOLO","reps":1}`,
		"zero reps":        `{"platform":"tiny-test","workload":"nbody","model":"omp","strategy":"Rm","reps":0}`,
		"excessive reps":   `{"platform":"tiny-test","workload":"nbody","model":"omp","strategy":"Rm","reps":101}`,
		"negative scale":   `{"platform":"tiny-test","workload":"nbody","model":"omp","strategy":"Rm","reps":1,"noise_scale":-2}`,
		"bad size":         `{"platform":"tiny-test","workload":"nbody","model":"omp","strategy":"Rm","reps":1,"size":"huge"}`,
	}
	for name, body := range cases {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	// And unknown jobs 404.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/timeline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestCancelMidRun submits a long series, waits until it is running, and
// cancels it over the API.
func TestCancelMidRun(t *testing.T) {
	_, ts, w := newTestServer(t, Config{JobTimeout: time.Minute})
	st := submit(t, ts, tinySpec(17, 50000), http.StatusAccepted)

	// Wait for the job to leave the queue.
	if got := w.await(t, st.ID, func(s JobState) bool { return s == StateRunning || s.Terminal() }); got != StateRunning {
		t.Fatalf("job finished before it could be canceled: %s", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	final := waitTerminal(t, ts, w, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s (err %q), want canceled", final.State, final.Error)
	}
	// A canceled job has no result.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: HTTP %d, want 409", rresp.StatusCode)
	}
}

// TestCancelQueuedJob cancels a job that is still waiting in the queue.
func TestCancelQueuedJob(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{Workers: 1, JobTimeout: time.Minute})
	blocker := submit(t, ts, tinySpec(19, 50000), http.StatusAccepted)
	queued := submit(t, ts, tinySpec(23, 10), http.StatusAccepted)

	if state, ok := srv.Cancel(queued.ID); !ok || state != StateCanceled {
		t.Fatalf("cancel queued: state=%s ok=%v", state, ok)
	}
	srv.Cancel(blocker.ID)
	if st := waitTerminal(t, ts, w, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}
}

// TestGracefulDrain: during a drain, running jobs finish and new
// submissions are rejected with 503.
func TestGracefulDrain(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{Workers: 2})
	st := submit(t, ts, tinySpec(29, 200), http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The in-flight job must have completed with a fetchable result.
	final, ok := srv.Status(st.ID)
	if !ok || final.State != StateDone {
		t.Fatalf("job after drain: %+v (ok=%v), want done", final, ok)
	}
	if len(fetchResult(t, ts, st.ID)) == 0 {
		t.Fatal("empty result after drain")
	}

	// New submissions are rejected with 503 + Retry-After.
	body, _ := json.Marshal(tinySpec(31, 5))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestQueueFull503: the bounded queue rejects the overflow submission.
func TestQueueFull503(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{Workers: 1, QueueSize: 1, JobTimeout: time.Minute})
	blocker := submit(t, ts, tinySpec(37, 50000), http.StatusAccepted)

	// Wait until the blocker occupies the single worker so the next
	// submission parks in the queue slot.
	w.await(t, blocker.ID, func(s JobState) bool { return s == StateRunning })
	submit(t, ts, tinySpec(41, 50000), http.StatusAccepted) // fills the queue

	body, _ := json.Marshal(tinySpec(43, 5))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: HTTP %d, want 503", resp.StatusCode)
	}
	if srv.Metrics().Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", srv.Metrics().Rejected)
	}
}

// TestIdenticalConcurrentSubmissions: the same spec submitted while the
// first submission is still running must not execute twice (singleflight
// behind the worker pool).
func TestIdenticalConcurrentSubmissions(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{Workers: 4})
	spec := tinySpec(47, 400)

	ids := make([]string, 4)
	for i := range ids {
		ids[i] = submit(t, ts, spec, http.StatusAccepted, http.StatusOK).ID
	}
	var payloads [][]byte
	for _, id := range ids {
		st := waitTerminal(t, ts, w, id)
		if st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		payloads = append(payloads, fetchResult(t, ts, id))
	}
	for i := 1; i < len(payloads); i++ {
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Fatalf("payload %d differs from payload 0", i)
		}
	}
	if got := srv.Metrics().Executions; got != 1 {
		t.Fatalf("engine ran %d times for identical specs, want 1", got)
	}
}

// TestDifferentSpecsDifferentResults guards the key derivation end to end:
// a one-field change must produce a different hash and (here) different
// bytes.
func TestDifferentSpecsDifferentResults(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	a := waitTerminal(t, ts, w, submit(t, ts, tinySpec(51, 6), http.StatusAccepted).ID)
	b := waitTerminal(t, ts, w, submit(t, ts, tinySpec(52, 6), http.StatusAccepted).ID)
	if a.SpecHash == b.SpecHash {
		t.Fatal("different seeds, same spec hash")
	}
	if bytes.Equal(fetchResult(t, ts, a.ID), fetchResult(t, ts, b.ID)) {
		t.Fatal("different seeds produced identical payloads")
	}
}

func TestHealthz(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(data) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, data)
	}
}

// TestResultDeterminismMatchesDirectRun pins the served times to a direct
// executor run of the same resolved spec: the service must not perturb the
// deterministic results it serves.
func TestResultDeterminismMatchesDirectRun(t *testing.T) {
	_, ts, w := newTestServer(t, Config{Parallelism: 3})
	spec := tinySpec(57, 9)
	st := waitTerminal(t, ts, w, submit(t, ts, spec, http.StatusAccepted).ID)
	var res JobResult
	if err := json.Unmarshal(fetchResult(t, ts, st.ID), &res); err != nil {
		t.Fatal(err)
	}

	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	times, _, err := execDirect(resolved, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(res.TimesNs) {
		t.Fatalf("len %d vs %d", len(times), len(res.TimesNs))
	}
	for i := range times {
		if int64(times[i]) != res.TimesNs[i] {
			t.Fatalf("rep %d: direct %d != served %d", i, times[i], res.TimesNs[i])
		}
	}
}

// TestResultDeterminismIODeadline pins the same direct-vs-daemon contract
// for an I/O-blocking workload running under the SCHED_DEADLINE class:
// device wait queues, IRQ wakeups and CBS throttling must replay
// identically through the service's parallel executor.
func TestResultDeterminismIODeadline(t *testing.T) {
	_, ts, w := newTestServer(t, Config{Parallelism: 3})
	spec := JobSpec{
		Platform: "tiny-test", Workload: "svcloop", Size: "small",
		Model: "omp", Strategy: "Rm", Seed: 91, Reps: 7,
		DLRuntimeNs: 400_000, DLPeriodNs: 1_000_000,
	}
	st := waitTerminal(t, ts, w, submit(t, ts, spec, http.StatusAccepted).ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (err %q), want done", st.State, st.Error)
	}
	var res JobResult
	if err := json.Unmarshal(fetchResult(t, ts, st.ID), &res); err != nil {
		t.Fatal(err)
	}

	resolved, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	times, _, err := execDirect(resolved, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(res.TimesNs) {
		t.Fatalf("len %d vs %d", len(times), len(res.TimesNs))
	}
	for i := range times {
		if int64(times[i]) != res.TimesNs[i] {
			t.Fatalf("rep %d: direct %d != served %d", i, times[i], res.TimesNs[i])
		}
	}
}

// execDirect runs the resolved spec sequentially on the executor,
// bypassing the service entirely.
func execDirect(spec experiment.Spec, reps int) ([]sim.Time, []*trace.Trace, error) {
	return experiment.Executor{Parallelism: 1}.Series(context.Background(), spec, reps)
}
