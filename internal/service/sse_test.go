package service

// SSE stream contract tests: event IDs strictly increase, progress is
// monotone per rep index, a reconnect with Last-Event-ID resumes without
// duplicates (and re-synchronizes via snapshot when the ID fell off the
// bounded ring), the stream ends after the terminal event, and handlers
// drain cleanly when the client disconnects. CI runs this file under
// -race -count=3; every wait is a blocking read or a test-hook condition —
// no wall-clock sleeps.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID   uint64
	Type string
	Data string
}

// sseReader incrementally parses an SSE stream.
type sseReader struct {
	sc   *bufio.Scanner
	body io.Closer
}

func openSSE(t *testing.T, url, lastEventID string) *sseReader {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events content type %q", ct)
	}
	return &sseReader{sc: bufio.NewScanner(resp.Body), body: resp.Body}
}

func (r *sseReader) close() { r.body.Close() }

// next blocks for the next complete event; ok=false means the stream ended.
func (r *sseReader) next(t *testing.T) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			ev.ID = id
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = line[len("data: "):]
		case line == "":
			return ev, true
		}
	}
	return sseEvent{}, false
}

// drain reads the stream to its end, asserting IDs strictly increase from
// after and progress counts strictly increase; returns every event.
func (r *sseReader) drain(t *testing.T, after uint64) []sseEvent {
	t.Helper()
	var evs []sseEvent
	lastID := after
	lastDone := -1
	for {
		ev, ok := r.next(t)
		if !ok {
			return evs
		}
		if ev.ID <= lastID {
			t.Fatalf("event ID %d not after %d", ev.ID, lastID)
		}
		lastID = ev.ID
		if ev.Type == "progress" {
			var p struct{ Done, Total int }
			if err := json.Unmarshal([]byte(ev.Data), &p); err != nil {
				t.Fatalf("bad progress %q: %v", ev.Data, err)
			}
			if p.Done <= lastDone {
				t.Fatalf("progress regressed: %d after %d", p.Done, lastDone)
			}
			lastDone = p.Done
		}
		evs = append(evs, ev)
	}
}

func lastState(evs []sseEvent) string {
	st := ""
	for _, ev := range evs {
		if ev.Type == "state" {
			var s struct{ State string }
			if json.Unmarshal([]byte(ev.Data), &s) == nil {
				st = s.State
			}
		}
	}
	return st
}

// TestSSEMonotonicOrdered subscribes before the job runs and asserts the
// full stream: strictly increasing IDs, monotone per-rep progress reaching
// reps/reps, terminal state last, stream closed by the server.
func TestSSEMonotonicOrdered(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	st := submit(t, ts, tinySpec(101, 40), http.StatusAccepted)

	r := openSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events", "")
	defer r.close()
	evs := r.drain(t, 0)
	if got := lastState(evs); got != "done" {
		t.Fatalf("stream ended with state %q, want done", got)
	}
	var lastProgress string
	for _, ev := range evs {
		if ev.Type == "progress" {
			lastProgress = ev.Data
		}
	}
	var p struct{ Done, Total int }
	if err := json.Unmarshal([]byte(lastProgress), &p); err != nil || p.Done != 40 || p.Total != 40 {
		t.Fatalf("final progress %q, want 40/40", lastProgress)
	}
}

// TestSSEReconnectResume drops the stream mid-job and reconnects with
// Last-Event-ID: no event may be replayed, progress stays monotone across
// the break, and the resumed stream still ends in the terminal state.
func TestSSEReconnectResume(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	st := submit(t, ts, tinySpec(103, 60), http.StatusAccepted)
	url := ts.URL + "/v1/jobs/" + st.ID + "/events"

	// Read the first couple of events, then drop the connection.
	r := openSSE(t, url, "")
	ev1, ok := r.next(t)
	if !ok {
		t.Fatal("stream ended before the first event")
	}
	ev2, ok := r.next(t)
	if !ok {
		t.Fatal("stream ended before the second event")
	}
	r.close()
	if ev2.ID != ev1.ID+1 {
		t.Fatalf("IDs not consecutive at stream head: %d then %d", ev1.ID, ev2.ID)
	}

	// Resume after the last seen ID: the replay must start above it.
	r2 := openSSE(t, url, strconv.FormatUint(ev2.ID, 10))
	defer r2.close()
	evs := r2.drain(t, ev2.ID)
	if len(evs) == 0 {
		t.Fatal("resumed stream delivered nothing")
	}
	if got := lastState(evs); got != "done" {
		t.Fatalf("resumed stream ended with state %q, want done", got)
	}
}

// TestSSESnapshotAfterEviction reconnects with a Last-Event-ID that has
// fallen off a tiny event ring: the stream must re-synchronize with a
// current-progress snapshot instead of replaying stale events — IDs still
// above the client's, progress never regressing.
func TestSSESnapshotAfterEviction(t *testing.T) {
	_, ts, w := newTestServer(t, Config{EventKeep: 4})
	st := submit(t, ts, tinySpec(107, 60), http.StatusAccepted)
	if final := waitTerminal(t, ts, w, st.ID); final.State != StateDone {
		t.Fatalf("job: %s", final.State)
	}

	// 60 progress events went through a 4-slot ring: ID 1 is long gone.
	r := openSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events", "1")
	defer r.close()
	evs := r.drain(t, 1)
	if len(evs) != 2 {
		t.Fatalf("snapshot stream has %d events, want 2 (progress + state): %+v", len(evs), evs)
	}
	if evs[0].Type != "progress" || evs[1].Type != "state" {
		t.Fatalf("snapshot shape: %+v", evs)
	}
	var p struct{ Done, Total int }
	if err := json.Unmarshal([]byte(evs[0].Data), &p); err != nil || p.Done != 60 {
		t.Fatalf("snapshot progress %q, want done=60", evs[0].Data)
	}
	if got := lastState(evs); got != "done" {
		t.Fatalf("snapshot state %q, want done", got)
	}
}

// TestEventLogResumeAtEvictionBoundary probes EventLog.next exactly at the
// ring-eviction edge. With oldest the ID of the first retained event, a
// client at after == oldest-1 has missed nothing that is still buffered and
// must get a plain replay of the whole ring; only after <= oldest-2 has
// truly lost history and falls back to the snapshot. An off-by-one in
// either direction would silently replay stale events or synthesize
// snapshots for clients that never lost data.
func TestEventLogResumeAtEvictionBoundary(t *testing.T) {
	l := NewEventLog(4)
	l.PublishState(StateRunning) // ID 1
	for i := 1; i <= 8; i++ {    // IDs 2..9
		l.PublishProgress(i, 8)
	}
	// seq == 9; the 4-slot ring retains IDs 6..9, so oldest == 6.
	const oldest = 6

	cases := []struct {
		name     string
		after    uint64
		wantIDs  []uint64
		snapshot bool
	}{
		{"well-before-window", 0, []uint64{8, 9}, true},
		{"oldest-minus-2", oldest - 2, []uint64{8, 9}, true},
		{"oldest-minus-1", oldest - 1, []uint64{6, 7, 8, 9}, false},
		{"oldest", oldest, []uint64{7, 8, 9}, false},
		{"mid-window", 8, []uint64{9}, false},
		{"caught-up", 9, nil, false},
		{"beyond-head", 12, nil, false},
	}
	for _, c := range cases {
		evs, _, finished := l.next(c.after)
		ids := make([]uint64, 0, len(evs))
		for _, e := range evs {
			ids = append(ids, e.ID)
		}
		if len(ids) != len(c.wantIDs) {
			t.Fatalf("%s: got IDs %v, want %v", c.name, ids, c.wantIDs)
		}
		for i := range ids {
			if ids[i] != c.wantIDs[i] {
				t.Fatalf("%s: got IDs %v, want %v", c.name, ids, c.wantIDs)
			}
		}
		if finished {
			t.Fatalf("%s: stream reported finished before terminal state", c.name)
		}
		if c.snapshot {
			// The snapshot carries current progress (8/8), not the stale
			// counts the evicted events held, and IDs at the stream head.
			var p struct{ Done, Total int }
			if err := json.Unmarshal([]byte(evs[0].Data), &p); err != nil || p.Done != 8 {
				t.Fatalf("%s: snapshot progress %q, want done=8", c.name, evs[0].Data)
			}
			if evs[0].Type != "progress" || evs[1].Type != "state" {
				t.Fatalf("%s: snapshot shape %+v", c.name, evs)
			}
		}
	}
}

// TestSSETerminalAtSubscribe: subscribing to a finished job replays the ring
// and closes immediately after the terminal event.
func TestSSETerminalAtSubscribe(t *testing.T) {
	_, ts, w := newTestServer(t, Config{})
	st := submit(t, ts, tinySpec(109, 5), http.StatusAccepted)
	waitTerminal(t, ts, w, st.ID)

	r := openSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events", "")
	defer r.close()
	evs := r.drain(t, 0)
	if got := lastState(evs); got != "done" {
		t.Fatalf("replay ended with %q, want done", got)
	}
}

// TestSSECanceledJobEndsStream: a subscriber of a job canceled mid-run
// receives the canceled state event and the stream ends.
func TestSSECanceledJobEndsStream(t *testing.T) {
	srv, ts, w := newTestServer(t, Config{JobTimeout: time.Minute})
	st := submit(t, ts, tinySpec(113, 50000), http.StatusAccepted)
	if got := w.await(t, st.ID, func(s JobState) bool { return s == StateRunning || s.Terminal() }); got != StateRunning {
		t.Fatalf("job finished before the stream could watch it: %s", got)
	}

	r := openSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events", "")
	defer r.close()
	if _, ok := srv.Cancel(st.ID); !ok {
		t.Fatal("cancel failed")
	}
	evs := r.drain(t, 0)
	if got := lastState(evs); got != "canceled" {
		t.Fatalf("stream ended with %q, want canceled", got)
	}
}

// TestSSEClientDisconnectDrains: dropping the client request mid-stream must
// unblock the handler (the request context cancels it) — under -race this
// also shakes out unsynchronized publisher/subscriber state. The job then
// finishes normally, proving the abandoned subscriber held nothing up.
func TestSSEClientDisconnectDrains(t *testing.T) {
	_, ts, w := newTestServer(t, Config{JobTimeout: time.Minute})
	st := submit(t, ts, tinySpec(127, 50000), http.StatusAccepted)
	if got := w.await(t, st.ID, func(s JobState) bool { return s == StateRunning || s.Terminal() }); got != StateRunning {
		t.Fatalf("job finished early: %s", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one event (blocking, condition-based), then sever the client.
	sc := bufio.NewScanner(resp.Body)
	sawData := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sawData = true
			break
		}
	}
	if !sawData {
		t.Fatal("no event before disconnect")
	}
	cancel()
	resp.Body.Close()

	// The server side must carry on unharmed: cancel the job and watch it
	// reach a terminal state through a fresh subscriber.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	r := openSSE(t, ts.URL+"/v1/jobs/"+st.ID+"/events", "")
	defer r.close()
	evs := r.drain(t, 0)
	if got := lastState(evs); got != "canceled" {
		t.Fatalf("post-disconnect stream ended with %q, want canceled", got)
	}
}
