package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/analyze"
	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one tracked submission.
type Job struct {
	ID       string
	Spec     JobSpec // normalized
	Hash     string
	State    JobState
	Cached   bool // result served without an engine execution
	Err      string
	Created  time.Time
	Started  time.Time
	Finished time.Time

	result []byte
	cancel context.CancelFunc
	events *EventLog

	// repsDone/repsTotal mirror the executor's OnRep progress for the
	// status endpoint; the SSE stream carries the same numbers live.
	repsDone, repsTotal int
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	SpecHash string   `json:"spec_hash"`
	Cached   bool     `json:"cached"`
	Error    string   `json:"error,omitempty"`
	// RepsDone/RepsTotal report rep-level progress of a running job (0/0
	// until the first rep completes; sub-job aware fleet clients aggregate
	// them across shards).
	RepsDone  int `json:"reps_done,omitempty"`
	RepsTotal int `json:"reps_total,omitempty"`
}

// Config parameterizes a Server.
type Config struct {
	// CacheDir roots the on-disk result store ("" = memory-only cache).
	CacheDir string
	// MemEntries bounds the in-memory cache tier (default 256).
	MemEntries int
	// QueueSize bounds the pending-job queue (default 64).
	QueueSize int
	// Workers is the number of jobs executed concurrently (default 1:
	// each job already fans its reps over the executor's pool).
	Workers int
	// Parallelism is the per-job executor pool size (0 = executor
	// default: REPRO_PARALLEL or GOMAXPROCS).
	Parallelism int
	// JobTimeout bounds one job's execution (default 10 minutes).
	JobTimeout time.Duration
	// MaxReps rejects specs with more repetitions (default 100000).
	MaxReps int
	// FlightRing is the per-rep flight-recorder ring size (0 = the obs
	// package default). The ring is always armed: when a rep fails, its
	// last scheduling events are retained for GET /debug/flightrecorder.
	FlightRing int
	// EventKeep bounds each job's SSE event ring (0 = DefaultEventKeep).
	// Reconnecting clients whose Last-Event-ID fell off the ring are
	// re-synchronized with a progress snapshot instead of a replay.
	EventKeep int
}

func (c Config) withDefaults() Config {
	if c.MemEntries <= 0 {
		c.MemEntries = 256
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 100000
	}
	return c
}

// flightKeep bounds how many flight dumps the server retains for
// /debug/flightrecorder (newest win).
const flightKeep = 16

// flightLog retains the most recent flight-recorder dumps from failed reps.
type flightLog struct {
	mu    sync.Mutex
	dumps []obs.Flight
}

func (l *flightLog) add(f obs.Flight) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dumps = append(l.dumps, f)
	if n := len(l.dumps); n > flightKeep {
		l.dumps = append(l.dumps[:0], l.dumps[n-flightKeep:]...)
	}
}

func (l *flightLog) list() []obs.Flight {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Non-nil even when empty so the debug endpoint serves [] rather
	// than null.
	return append([]obs.Flight{}, l.dumps...)
}

// Server owns the job queue, the worker pool, and the result cache. Create
// with New, serve its Handler, and stop with Drain (graceful) or Close.
type Server struct {
	cfg   Config
	cache *rescache.Cache
	met   *metrics
	// runReg accumulates the simulation kernel's counters across every job
	// execution (repro_* families); rendered after the service families on
	// /metrics.
	runReg  *obs.Registry
	flights *flightLog

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	nextID   uint64
	queue    chan *Job
	draining bool

	workers sync.WaitGroup

	// testHookJobUpdate, when non-nil, is called after every job state
	// transition (with the server mutex released). Tests use it to wait on
	// state changes without wall-clock polling. Set it before submitting.
	testHookJobUpdate func(id string, state JobState)
}

// New builds a Server and starts its workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := rescache.New(cfg.CacheDir, cfg.MemEntries)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg, cache: cache, met: newMetrics(nil),
		runReg: obs.NewRegistry(), flights: &flightLog{},
		baseCtx: ctx, baseCancel: cancel,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueSize),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s, nil
}

// Metrics returns a snapshot of the service and cache counters.
func (s *Server) Metrics() Snapshot {
	return s.met.snapshot(len(s.queue), s.cache.Stats())
}

// notifyUpdate publishes a job state transition to the job's event stream
// and the test hook. Call with the server mutex released; the stream is
// published first so a hook-driven waiter observes the event on wake-up.
func (s *Server) notifyUpdate(id string, state JobState) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil && j.events != nil {
		j.events.PublishState(state)
	}
	if s.testHookJobUpdate != nil {
		s.testHookJobUpdate(id, state)
	}
}

// errDraining rejects submissions during shutdown.
var errDraining = errors.New("service: draining, not accepting jobs")

// errQueueFull rejects submissions when the bounded queue is at capacity.
var errQueueFull = errors.New("service: job queue full")

// Submit validates, normalizes and enqueues a spec. When the result is
// already cached the returned job is terminal immediately — the stored
// bytes are attached without re-execution.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec.Normalize()
	if err := spec.Validate(s.cfg.MaxReps); err != nil {
		return nil, err
	}
	hash, err := SpecHash(&spec)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, errDraining
	}
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j%06d", s.nextID),
		Spec:    spec,
		Hash:    hash,
		State:   StateQueued,
		Created: time.Now(),
		events:  NewEventLog(s.cfg.EventKeep),
	}
	s.jobs[job.ID] = job
	s.mu.Unlock()
	s.met.submitted.Inc()

	// Fast path: a cached result completes the job at submit time.
	if data, ok := s.cache.Get(hash); ok {
		now := time.Now()
		s.mu.Lock()
		job.State = StateDone
		job.Cached = true
		job.result = data
		job.Started, job.Finished = now, now
		s.mu.Unlock()
		s.met.jobStarted()
		s.met.jobFinished(StateDone, true, 0)
		s.notifyUpdate(job.ID, StateDone)
		return job, nil
	}

	s.mu.Lock()
	if s.draining { // re-check: Drain may have closed the queue meanwhile
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, errDraining
	}
	select {
	case s.queue <- job:
		s.mu.Unlock()
		s.notifyUpdate(job.ID, StateQueued)
		return job, nil
	default:
		delete(s.jobs, job.ID)
		s.mu.Unlock()
		s.met.rejected.Inc()
		return nil, errQueueFull
	}
}

// Job returns a tracked job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Status returns the wire status of a job.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return JobStatus{
		ID: j.ID, State: j.State, SpecHash: j.Hash, Cached: j.Cached, Error: j.Err,
		RepsDone: j.repsDone, RepsTotal: j.repsTotal,
	}, true
}

// Events returns the job's SSE event log.
func (s *Server) Events(id string) (*EventLog, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.events, true
}

// Result returns the payload bytes of a finished job.
func (s *Server) Result(id string) ([]byte, JobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.result, j.State, true
}

// Timeline returns the stored Chrome-trace timeline of a job. found reports
// whether the job exists; data is nil when the job is not done yet or never
// recorded a timeline (spec without "timeline": true).
func (s *Server) Timeline(id string) (data []byte, state JobState, found bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, "", false
	}
	state, hash := j.State, j.Hash
	s.mu.Unlock()
	if state != StateDone {
		return nil, state, true
	}
	data, _ = s.cache.Get(rescache.DerivedKey(hash, "tl"))
	return data, state, true
}

// FlightDumps returns the retained flight-recorder dumps of failed reps,
// oldest first.
func (s *Server) FlightDumps() []obs.Flight { return s.flights.list() }

// Cancel cancels a queued or running job. Canceling a terminal job is a
// no-op; the returned state is the job's state after the call.
func (s *Server) Cancel(id string) (JobState, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return "", false
	}
	var cancel context.CancelFunc
	canceledQueued := false
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.Finished = time.Now()
		s.met.canceled.Inc()
		canceledQueued = true
	case StateRunning:
		cancel = j.cancel
	}
	state := j.State
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if canceledQueued {
		s.notifyUpdate(id, StateCanceled)
	}
	return state, true
}

// runJob executes one dequeued job through the cache.
func (s *Server) runJob(job *Job) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()

	s.mu.Lock()
	if job.State != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.Started = time.Now()
	job.cancel = cancel
	job.repsTotal = job.Spec.TotalReps()
	s.mu.Unlock()
	s.met.jobStarted()
	s.notifyUpdate(job.ID, StateRunning)

	data, hit, err := s.cache.GetOrCompute(ctx, job.Hash, func(ctx context.Context) ([]byte, error) {
		s.met.executions.Inc()
		return s.execute(ctx, job)
	})

	now := time.Now()
	s.mu.Lock()
	job.Finished = now
	switch {
	case err == nil:
		job.State = StateDone
		job.Cached = hit
		job.result = data
	case errors.Is(err, context.Canceled):
		job.State = StateCanceled
		job.Err = "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		job.State = StateFailed
		job.Err = fmt.Sprintf("timed out after %v", s.cfg.JobTimeout)
	default:
		job.State = StateFailed
		job.Err = err.Error()
	}
	state, cached := job.State, job.Cached
	latency := job.Finished.Sub(job.Started).Seconds()
	s.mu.Unlock()
	s.met.jobFinished(state, cached, latency)
	s.notifyUpdate(job.ID, state)
}

// execute runs the series on the engine and encodes the result payload.
func (s *Server) execute(ctx context.Context, job *Job) ([]byte, error) {
	// Observability is always armed: the recorder is passive (results stay
	// byte-identical), the flight ring captures the last scheduling events of
	// any failing rep, and the kernel counters accumulate on the server
	// registry. The full timeline is recorded only when the spec asks.
	var timeline bytes.Buffer
	exec := experiment.Executor{Parallelism: s.cfg.Parallelism, Obs: &experiment.ObsOptions{
		Timeline: job.Spec.Timeline,
		Ring:     s.cfg.FlightRing,
		Reg:      s.runReg,
		OnFlight: s.flights.add,
		OnTimeline: func(rec *obs.Recorder) {
			_ = rec.WriteChromeJSON(&timeline)
		},
	}}
	// Rep completions feed the job's SSE stream and status fields. OnRep
	// calls are serialized and monotone, so the stream inherits both.
	exec.OnRep = func(done, total int) {
		s.mu.Lock()
		job.repsDone, job.repsTotal = done, total
		s.mu.Unlock()
		job.events.PublishProgress(done, total)
	}
	if job.Spec.Analyze != nil {
		return s.executeAnalysis(ctx, job, exec)
	}
	if job.Spec.Cluster != nil {
		return s.executeCluster(ctx, job, exec, &timeline)
	}
	spec, err := job.Spec.Resolve()
	if err != nil {
		return nil, err
	}
	times, traces, err := exec.Series(ctx, spec, job.Spec.Reps)
	if err != nil {
		return nil, err
	}
	if err := s.storeTimeline(job, &timeline); err != nil {
		return nil, err
	}
	return BuildResult(job.Hash, job.Spec, times, traces)
}

// BuildResult encodes the canonical result payload of a kernel series: the
// exact bytes the cache stores and /result serves. It is exported so the
// fleet merger reassembles sub-job slices through the same encoder — merge
// equality with a single-node run then holds by construction rather than by
// convention.
func BuildResult(hash string, spec JobSpec, times []sim.Time, traces []*trace.Trace) ([]byte, error) {
	res := JobResult{
		SpecHash:     hash,
		ModelVersion: experiment.ModelVersion,
		Spec:         spec,
		TimesNs:      make([]int64, len(times)),
		Summary:      stats.SummarizeTimes(times),
	}
	for i, t := range times {
		res.TimesNs[i] = int64(t)
	}
	if spec.Tracing {
		res.Traces = traces
	}
	return json.Marshal(res)
}

// BuildClusterResult is BuildResult for cluster jobs: TimesNs carries the
// per-rep batch completion times and the summary is computed over them in
// milliseconds, exactly as a single-node execution encodes it.
func BuildClusterResult(hash string, spec JobSpec, results []*cluster.Result) ([]byte, error) {
	res := JobResult{
		SpecHash:     hash,
		ModelVersion: experiment.ModelVersion,
		Spec:         spec,
		TimesNs:      make([]int64, len(results)),
		Cluster:      results,
	}
	batches := make([]float64, len(results))
	for i, r := range results {
		res.TimesNs[i] = r.BatchNs
		batches[i] = float64(r.BatchNs) / 1e6
	}
	res.Summary = stats.Summarize(batches)
	return json.Marshal(res)
}

// executeAnalysis runs a bottleneck-analysis job: the full differential
// sweep through analyze.Run, with the artifact bytes as the cached result
// payload. Evidence timelines land as derived cache entries — one per
// source under "tl-<source>", plus the bottleneck source's copy under the
// plain "tl" key so GET .../timeline serves the headline evidence exactly
// like a single-node job's. analyze.Run forces its own per-cell timeline
// recording, so the executor's OnTimeline buffer stays untouched here.
func (s *Server) executeAnalysis(ctx context.Context, job *Job, exec experiment.Executor) ([]byte, error) {
	out, err := analyze.Run(ctx, exec, *job.Spec.Analyze)
	if err != nil {
		return nil, err
	}
	for src, tl := range out.Timelines {
		if err := s.cache.Put(rescache.DerivedKey(job.Hash, "tl-"+src), tl); err != nil {
			return nil, fmt.Errorf("service: storing %s timeline: %w", src, err)
		}
	}
	if tl, ok := out.Timelines[out.Artifact.Bottleneck]; ok {
		if err := s.cache.Put(rescache.DerivedKey(job.Hash, "tl"), tl); err != nil {
			return nil, fmt.Errorf("service: storing timeline: %w", err)
		}
	}
	return out.Artifact.Encode()
}

// AnalysisTimeline returns one stored evidence timeline of an analysis job
// (nil data when the job is unfinished, not an analysis, or never exported
// evidence for that source).
func (s *Server) AnalysisTimeline(id, source string) (data []byte, state JobState, found bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, "", false
	}
	state, hash := j.State, j.Hash
	s.mu.Unlock()
	if state != StateDone {
		return nil, state, true
	}
	data, _ = s.cache.Get(rescache.DerivedKey(hash, "tl-"+source))
	return data, state, true
}

// executeCluster runs a cluster job: Reps runs of the embedded scenario,
// each a pure function of (spec, derived seed). TimesNs carries the per-rep
// batch completion times so cluster results flow through the same summary
// and cache machinery as single-node series.
func (s *Server) executeCluster(ctx context.Context, job *Job, exec experiment.Executor, timeline *bytes.Buffer) ([]byte, error) {
	results, err := exec.ClusterSeries(ctx, *job.Spec.Cluster, job.Spec.Seed, job.Spec.Reps)
	if err != nil {
		return nil, err
	}
	if err := s.storeTimeline(job, timeline); err != nil {
		return nil, err
	}
	return BuildClusterResult(job.Hash, job.Spec, results)
}

// storeTimeline persists a recorded timeline as a derived cache entry next
// to the result: a later cache hit for this spec can still serve it.
func (s *Server) storeTimeline(job *Job, timeline *bytes.Buffer) error {
	if timeline.Len() == 0 {
		return nil
	}
	if err := s.cache.Put(rescache.DerivedKey(job.Hash, "tl"), timeline.Bytes()); err != nil {
		return fmt.Errorf("service: storing timeline: %w", err)
	}
	return nil
}

// Drain stops accepting submissions and waits for queued and running jobs
// to finish. When ctx expires first, running jobs are canceled and the
// drain still waits for workers to observe the cancellation.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	if already {
		return errors.New("service: already draining")
	}

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // force-cancel in-flight jobs
		<-done
		return ctx.Err()
	}
}

// Close force-stops the server: cancels every running job and waits for
// the workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel()
	s.workers.Wait()
}
