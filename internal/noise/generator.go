package noise

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Generator drives a profile's noise sources against a scheduler until a
// horizon time. Each source draws from its own RNG stream, so adding or
// removing one source does not perturb the others.
type Generator struct {
	s       *cpusched.Scheduler
	p       Profile
	horizon sim.Time
	// Spawned counts noise tasks created, for diagnostics.
	Spawned int
	// IRQs counts interrupts injected.
	IRQs int
}

// Attach starts all noise sources of profile p on scheduler s, generating
// events from the current simulated time until horizon. The rng should be a
// dedicated stream (e.g. root.Stream("noise")).
func Attach(s *cpusched.Scheduler, p Profile, rng *sim.RNG, horizon sim.Time) *Generator {
	g := &Generator{s: s, p: p, horizon: horizon}
	topo := s.Topology()
	ncpu := topo.NumCPUs()

	if p.TimerHz > 0 {
		for cpu := 0; cpu < ncpu; cpu++ {
			g.timerLoop(cpu, rng.Stream(cpuName(&timerStreamNames, "timer/%d", cpu)))
		}
	}
	if p.KworkerRate > 0 {
		for cpu := 0; cpu < ncpu; cpu++ {
			if !g.threadAllowedOn(cpu) {
				continue
			}
			g.kworkerLoop(cpu, rng.Stream(cpuName(&kworkerStreamNames, "kworker/%d", cpu)))
		}
	}
	if p.UnboundRate > 0 {
		g.unboundLoop(rng.Stream("kworker-unbound"))
	}
	if p.DaemonRate > 0 && len(p.DaemonSources) > 0 {
		g.daemonLoop(rng.Stream("daemons"), p.DaemonSources, p.DaemonRate,
			p.DaemonDurMin, p.DaemonAlpha, p.DaemonDurCap, "daemon")
	}
	if p.GUI && p.GUIRate > 0 && len(p.GUISources) > 0 {
		g.daemonLoop(rng.Stream("gui"), p.GUISources, p.GUIRate,
			p.GUIDurMin, p.GUIAlpha, p.GUIDurCap, "gui")
	}
	if p.DiskRate > 0 && p.DiskIRQs > 0 && p.DiskCPU >= 0 && p.DiskCPU < ncpu {
		g.diskLoop(rng.Stream("disk"))
	}
	if p.MemHogRate > 0 && p.MemHogBytes > 0 {
		g.memhogLoop(rng.Stream("memhog"))
	}
	return g
}

// diskLoop fires block-device interrupt storms on the device's steered CPU
// followed by a writeback flush kworker.
func (g *Generator) diskLoop(rng *sim.RNG) {
	eng := g.s.Engine()
	cycles := g.s.Topology().CyclesPerNs()
	gapMu := sim.LogNormalMu(float64(30*sim.Microsecond), 0.8)
	irqDur := float64(g.p.DiskIRQDur)
	irqMu := sim.LogNormalMu(irqDur, 0.5)
	var next func()
	next = func() {
		if eng.Now() > g.horizon {
			return
		}
		n := 1 + rng.Intn(g.p.DiskIRQs)
		for k := 0; k < n; k++ {
			k := k
			gap := sim.Time(rng.LogNormal(gapMu, 0.8))
			eng.After(sim.Time(k)*gap, func() {
				var dur sim.Time
				if irqDur > 0 {
					dur = sim.Time(rng.LogNormal(irqMu, 0.5))
				}
				if dur < 500 {
					dur = 500
				}
				g.s.InjectIRQ(g.p.DiskCPU, cpusched.ClassIRQ, "nvme0q1:130", dur)
				g.IRQs++
			})
		}
		if g.p.DiskFlushDur > 0 {
			work := float64(rng.Jitter(g.p.DiskFlushDur, 0.3)) * cycles
			t := g.s.SpawnSeq(cpusched.TaskSpec{
				Name:     "flush",
				Source:   "kworker/u9:flush-259:0",
				Kind:     cpusched.KindNoiseThread,
				Affinity: g.threadAffinity(),
			}, cpusched.ReqCompute(work))
			g.Spawned++
			g.noteSpawn(t, "kworker/u9:flush-259:0")
		}
		eng.After(sim.Time(rng.ExpFloat64(g.p.DiskRate)*1e9), next)
	}
	eng.After(sim.Time(rng.ExpFloat64(g.p.DiskRate)*1e9), next)
}

// noteSpawn emits a noise-spawn instant when an observer is attached. The
// task's CPU is already placed by wake-up at this point, so the instant
// lands on the row where the burst will first run.
func (g *Generator) noteSpawn(t *cpusched.Task, source string) {
	if rec := g.s.Observer(); rec != nil {
		rec.Instant(t.CPU(), "noise-spawn", "noise", source, g.s.Now())
	}
}

func (g *Generator) threadAllowedOn(cpu int) bool {
	return g.p.ThreadMask.Empty() || g.p.ThreadMask.Has(cpu)
}

func (g *Generator) threadAffinity() machine.CPUSet {
	if g.p.ThreadMask.Empty() {
		return machine.AllCPUs(g.s.Topology().NumCPUs())
	}
	return g.p.ThreadMask
}

// timerLoop fires local_timer interrupts at TimerHz with jitter, each
// optionally followed by softirq work, mirroring how timer ticks raise
// softirqs on Linux.
func (g *Generator) timerLoop(cpu int, rng *sim.RNG) {
	period := sim.Time(1e9 / g.p.TimerHz)
	eng := g.s.Engine()
	// Sort the softirq sources once: map iteration order would make runs
	// nondeterministic, and re-sorting on every tick would allocate. The
	// sorted entries also carry each source's hoisted log-normal mu (see
	// sim.LogNormalMu) so ticks skip a math.Log per softirq draw.
	softirqs := softirqOrder(g.p.SoftIRQProb, g.p.SoftIRQDur)
	timerDur := float64(g.p.TimerDur)
	timerMu := sim.LogNormalMu(timerDur, g.p.TimerDurSigma)
	// Desynchronize CPUs: first tick at a random phase.
	first := eng.Now() + sim.Time(rng.Float64()*float64(period))
	var tick func()
	tick = func() {
		if eng.Now() > g.horizon {
			return
		}
		var dur sim.Time
		if timerDur > 0 {
			dur = sim.Time(rng.LogNormal(timerMu, g.p.TimerDurSigma))
		}
		if dur < 100 {
			dur = 100
		}
		g.s.InjectIRQ(cpu, cpusched.ClassIRQ, "local_timer:236", dur)
		g.IRQs++
		for _, sp := range softirqs {
			if rng.Bool(sp.prob) {
				var d sim.Time
				if sp.dur > 0 {
					d = sim.Time(rng.LogNormal(sp.mu, 0.8))
				}
				if d < 100 {
					d = 100
				}
				g.s.InjectIRQ(cpu, cpusched.ClassSoftIRQ, sp.src, d)
				g.IRQs++
			}
		}
		eng.After(rng.Jitter(period, 0.05), tick)
	}
	eng.At(first, tick)
}

type srcProb struct {
	src  string
	prob float64
	dur  float64 // softirq duration mean (ns); no draw when <= 0
	mu   float64 // hoisted sim.LogNormalMu(dur, 0.8)
}

// softirqOrder returns softirq sources in deterministic (sorted) order,
// with each source's duration mean and hoisted log-normal mu attached.
func softirqOrder(m map[string]float64, durs map[string]sim.Time) []srcProb {
	out := make([]srcProb, 0, len(m))
	for src, p := range m {
		dur := float64(durs[src])
		out = append(out, srcProb{src, p, dur, sim.LogNormalMu(dur, 0.8)})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].src < out[j-1].src; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Per-CPU stream and source names recur identically every rep (a fresh
// generator attaches per run); precomputing them keeps re-attachment from
// re-formatting — and re-allocating — the same strings, which showed up
// in batched-rep allocation profiles.
var (
	timerStreamNames   = cpuNames("timer/%d")
	kworkerStreamNames = cpuNames("kworker/%d")
	kworkerSrcNames    = cpuNames("kworker/%d:1")
)

func cpuNames(format string) [64]string {
	var s [64]string
	for i := range s {
		s[i] = fmt.Sprintf(format, i)
	}
	return s
}

func cpuName(table *[64]string, format string, cpu int) string {
	if cpu >= 0 && cpu < len(table) {
		return table[cpu]
	}
	return fmt.Sprintf(format, cpu)
}

// kworkerLoop spawns bound kworker threads on one CPU at Poisson arrivals.
func (g *Generator) kworkerLoop(cpu int, rng *sim.RNG) {
	eng := g.s.Engine()
	cycles := g.s.Topology().CyclesPerNs()
	src := cpuName(&kworkerSrcNames, "kworker/%d:1", cpu)
	aff := machine.SetOf(cpu)
	kworkerDur := float64(g.p.KworkerDur)
	kworkerMu := sim.LogNormalMu(kworkerDur, g.p.KworkerDurSigma)
	var next func()
	next = func() {
		if eng.Now() > g.horizon {
			return
		}
		var dur sim.Time
		if kworkerDur > 0 {
			dur = sim.Time(rng.LogNormal(kworkerMu, g.p.KworkerDurSigma))
		}
		if dur < sim.Microsecond {
			dur = sim.Microsecond
		}
		work := float64(dur) * cycles
		t := g.s.SpawnSeq(cpusched.TaskSpec{
			Name:     "kworker",
			Source:   src,
			Kind:     cpusched.KindNoiseThread,
			Affinity: aff,
		}, cpusched.ReqCompute(work))
		g.Spawned++
		g.noteSpawn(t, src)
		gap := sim.Time(rng.ExpFloat64(g.p.KworkerRate) * 1e9)
		eng.After(gap, next)
	}
	eng.After(sim.Time(rng.ExpFloat64(g.p.KworkerRate)*1e9), next)
}

// unboundLoop spawns unbound kworkers that roam (or are confined to the
// reserved mask).
func (g *Generator) unboundLoop(rng *sim.RNG) {
	eng := g.s.Engine()
	cycles := g.s.Topology().CyclesPerNs()
	aff := g.threadAffinity()
	// The source label cycles through 8 pool-thread identities; format
	// them once instead of per spawn.
	var srcs [8]string
	for i := range srcs {
		srcs[i] = fmt.Sprintf("kworker/u%d:%d", g.s.Topology().NumCPUs()*4+1, i)
	}
	id := 0
	unboundDur := float64(g.p.UnboundDur)
	unboundMu := sim.LogNormalMu(unboundDur, g.p.UnboundDurSigma)
	var next func()
	next = func() {
		if eng.Now() > g.horizon {
			return
		}
		id++
		var dur sim.Time
		if unboundDur > 0 {
			dur = sim.Time(rng.LogNormal(unboundMu, g.p.UnboundDurSigma))
		}
		if dur < sim.Microsecond {
			dur = sim.Microsecond
		}
		work := float64(dur) * cycles
		t := g.s.SpawnSeq(cpusched.TaskSpec{
			Name:     "kworker-u",
			Source:   srcs[id%8],
			Kind:     cpusched.KindNoiseThread,
			Affinity: aff,
		}, cpusched.ReqCompute(work))
		g.Spawned++
		g.noteSpawn(t, srcs[id%8])
		eng.After(sim.Time(rng.ExpFloat64(g.p.UnboundRate)*1e9), next)
	}
	eng.After(sim.Time(rng.ExpFloat64(g.p.UnboundRate)*1e9), next)
}

// memhogLoop spawns synthetic memory-bandwidth hog tasks at Poisson
// arrivals: each streams MemHogBytes (jittered) through the memory system,
// contending with the workload for bandwidth without stealing meaningful
// compute. This source exists only for the bottleneck analysis — natural
// profiles leave MemHogRate 0, so attaching it last keeps every existing
// stream draw (and therefore every natural run) byte-identical.
func (g *Generator) memhogLoop(rng *sim.RNG) {
	eng := g.s.Engine()
	aff := g.threadAffinity()
	var srcs [4]string
	for i := range srcs {
		srcs[i] = fmt.Sprintf("memhog/%d", i)
	}
	id := 0
	var next func()
	next = func() {
		if eng.Now() > g.horizon {
			return
		}
		id++
		bytes := float64(rng.Jitter(sim.Time(g.p.MemHogBytes), 0.3))
		if bytes < 1 {
			bytes = 1
		}
		t := g.s.SpawnSeq(cpusched.TaskSpec{
			Name:     "memhog",
			Source:   srcs[id%len(srcs)],
			Kind:     cpusched.KindNoiseThread,
			Affinity: aff,
		}, cpusched.ReqMemory(bytes))
		g.Spawned++
		g.noteSpawn(t, srcs[id%len(srcs)])
		eng.After(sim.Time(rng.ExpFloat64(g.p.MemHogRate)*1e9), next)
	}
	eng.After(sim.Time(rng.ExpFloat64(g.p.MemHogRate)*1e9), next)
}

// daemonLoop spawns heavy-tailed background daemon bursts. A burst may be
// split across a few shorter on-CPU stints separated by sleeps, as real
// daemons behave.
func (g *Generator) daemonLoop(rng *sim.RNG, sources []string, rate float64,
	durMin sim.Time, alpha float64, durCap sim.Time, label string) {
	eng := g.s.Engine()
	cycles := g.s.Topology().CyclesPerNs()
	aff := g.threadAffinity()
	var next func()
	next = func() {
		if eng.Now() > g.horizon {
			return
		}
		src := sources[rng.Intn(len(sources))]
		total := sim.Time(rng.Pareto(float64(durMin), alpha))
		if total > durCap {
			total = durCap
		}
		// Large bursts run multi-threaded (indexing storms, compositor
		// plus clients): they spread across CPUs and can overwhelm a
		// single housekeeping core.
		workers := 1
		if g.p.BurstFanout > 1 && total > g.p.BurstFanoutThreshold {
			workers = 2 + rng.Intn(g.p.BurstFanout-1)
		}
		per := float64(total) / float64(workers)
		for w := 0; w < workers; w++ {
			stints := 1 + rng.Intn(3)
			stint := per / float64(stints)
			reqs := make([]cpusched.Request, 0, 2*stints-1)
			for i := 0; i < stints; i++ {
				reqs = append(reqs, cpusched.ReqCompute(stint*cycles))
				if i < stints-1 {
					reqs = append(reqs, cpusched.ReqSleep(sim.Time(stint/2)))
				}
			}
			t := g.s.SpawnSeq(cpusched.TaskSpec{
				Name:     label,
				Source:   src,
				Kind:     cpusched.KindNoiseThread,
				Affinity: aff,
			}, reqs...)
			g.Spawned++
			g.noteSpawn(t, src)
		}
		eng.After(sim.Time(rng.ExpFloat64(rate)*1e9), next)
	}
	eng.After(sim.Time(rng.ExpFloat64(rate)*1e9), next)
}
