package noise

import (
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runNoisy(t *testing.T, p Profile, seed uint64, horizon sim.Time) (*trace.Trace, *Generator) {
	t.Helper()
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	s := cpusched.New(eng, topo, opt)
	tracer := trace.NewTracer(0)
	s.SetTracer(tracer)
	rng := sim.NewRNG(seed)
	g := Attach(s, p, rng.Stream("noise"), horizon)
	// A workload that just spins so noise has something to preempt.
	w := s.Spawn(cpusched.TaskSpec{Name: "w", Affinity: machine.SetOf(0)}, func(c *cpusched.Ctx) {
		c.ComputeDur(horizon - 10*sim.Millisecond)
	})
	eng.RunWhile(func() bool { return !w.Done() })
	tr := tracer.Finish(eng.Now(), "tiny", "spin", "omp", "Rm", seed)
	s.Shutdown()
	return tr, g
}

func TestDesktopProfileProducesAllClasses(t *testing.T) {
	tr, g := runNoisy(t, Desktop(), 1, 200*sim.Millisecond)
	var irq, soft, thr int
	for _, e := range tr.Events {
		switch e.Class {
		case cpusched.ClassIRQ:
			irq++
		case cpusched.ClassSoftIRQ:
			soft++
		case cpusched.ClassThread:
			thr++
		}
	}
	if irq == 0 || soft == 0 {
		t.Fatalf("missing interrupt noise: irq=%d soft=%d", irq, soft)
	}
	if thr == 0 {
		t.Fatalf("missing thread noise (spawned=%d)", g.Spawned)
	}
	// 250 Hz on 4 CPUs over 200ms ~= 200 timer irqs.
	if irq < 100 || irq > 400 {
		t.Fatalf("timer irq count %d implausible for 250Hz x 4cpu x 200ms", irq)
	}
}

func TestTimerIRQRateMatchesHz(t *testing.T) {
	p := Desktop()
	p.KworkerRate, p.UnboundRate, p.DaemonRate, p.GUIRate = 0, 0, 0, 0
	p.SoftIRQProb = nil
	tr, _ := runNoisy(t, p, 2, 400*sim.Millisecond)
	// Expect ~ 250Hz * 0.4s * 4 cpus = 400 events.
	n := len(tr.Events)
	if n < 320 || n > 480 {
		t.Fatalf("timer event count %d, want ~400", n)
	}
	for _, e := range tr.Events {
		if e.Source != "local_timer:236" || e.Class != cpusched.ClassIRQ {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a, _ := runNoisy(t, Desktop(), 42, 100*sim.Millisecond)
	b, _ := runNoisy(t, Desktop(), 42, 100*sim.Millisecond)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if a.ExecTime != b.ExecTime {
		t.Fatal("exec times differ for same seed")
	}
	c, _ := runNoisy(t, Desktop(), 43, 100*sim.Millisecond)
	if len(a.Events) == len(c.Events) && a.ExecTime == c.ExecTime {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRunlevel3QuieterThanDesktop(t *testing.T) {
	// GUI bursts are rare (~2/s), so aggregate over enough simulated time
	// for them to show up with near-certainty.
	var withGUI, without sim.Time
	for seed := uint64(0); seed < 10; seed++ {
		a, _ := runNoisy(t, Desktop(), seed, 500*sim.Millisecond)
		b, _ := runNoisy(t, Desktop().WithRunlevel3(), seed, 500*sim.Millisecond)
		withGUI += a.TotalNoise()
		without += b.TotalNoise()
	}
	if without >= withGUI {
		t.Fatalf("runlevel 3 should reduce total noise: rl5=%v rl3=%v", withGUI, without)
	}
}

func TestScaleChangesRates(t *testing.T) {
	base := Desktop()
	p := base.Scale(2)
	if p.TimerHz != base.TimerHz*2 || p.DaemonRate != base.DaemonRate*2 ||
		p.GUIRate != base.GUIRate*2 || p.KworkerRate != base.KworkerRate*2 {
		t.Fatalf("Scale(2) wrong: %+v", p)
	}
}

func TestHPCQuieterThanDesktop(t *testing.T) {
	d, h := Desktop(), HPC()
	if h.GUI {
		t.Fatal("HPC profile must not have GUI noise")
	}
	if h.DaemonRate >= d.DaemonRate || h.KworkerRate >= d.KworkerRate {
		t.Fatal("HPC profile should be quieter than desktop")
	}
}

func TestReservedMaskConfinesThreadNoise(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.A64FXRsv)
	s := cpusched.New(eng, topo, cpusched.Defaults())
	tracer := trace.NewTracer(0)
	s.SetTracer(tracer)
	p := HPCReserved(topo).Scale(4) // crank rates so the test sees events
	Attach(s, p, sim.NewRNG(7).Stream("noise"), 100*sim.Millisecond)
	w := s.Spawn(cpusched.TaskSpec{Name: "w", Affinity: machine.SetOf(0)},
		func(c *cpusched.Ctx) { c.ComputeDur(90 * sim.Millisecond) })
	eng.RunWhile(func() bool { return !w.Done() })
	tr := tracer.Finish(eng.Now(), "a64fx", "spin", "omp", "Rm", 7)
	s.Shutdown()

	reserved := topo.ReservedMask()
	thr := 0
	for _, e := range tr.Events {
		if e.Class != cpusched.ClassThread {
			continue
		}
		thr++
		if !reserved.Has(e.CPU) {
			t.Fatalf("thread noise escaped onto user CPU %d: %+v", e.CPU, e)
		}
	}
	if thr == 0 {
		t.Fatal("no thread noise observed on reserved cores")
	}
}

func TestSoftirqOrderSorted(t *testing.T) {
	got := softirqOrder(map[string]float64{"z": 1, "a": 2, "m": 3}, nil)
	if got[0].src != "a" || got[1].src != "m" || got[2].src != "z" {
		t.Fatalf("softirqOrder not sorted: %+v", got)
	}
}

func TestHeavyTailProducesOutliers(t *testing.T) {
	// Across many seeds, total daemon noise should vary a lot: the max
	// should dominate the median (heavy tail).
	p := Desktop()
	p.TimerHz = 0
	p.KworkerRate, p.UnboundRate = 0, 0
	var totals []float64
	for seed := uint64(0); seed < 30; seed++ {
		tr, _ := runNoisy(t, p, seed, 150*sim.Millisecond)
		totals = append(totals, float64(tr.TotalNoise()))
	}
	var max, sum float64
	for _, v := range totals {
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(totals))
	if max < 3*mean {
		t.Fatalf("no heavy tail: max=%.0f mean=%.0f", max, mean)
	}
}

func TestDiskStormsOnSteeredCPU(t *testing.T) {
	p := Desktop()
	// Isolate the disk source.
	p.TimerHz, p.KworkerRate, p.UnboundRate, p.DaemonRate, p.GUIRate = 0, 0, 0, 0, 0
	p.DiskRate = 10 // crank so the test window sees storms
	tr, _ := runNoisy(t, p, 6, 300*sim.Millisecond)
	irqs := 0
	for _, e := range tr.Events {
		if e.Class == cpusched.ClassIRQ {
			irqs++
			if e.CPU != p.DiskCPU {
				t.Fatalf("block irq on cpu %d, want steered to %d", e.CPU, p.DiskCPU)
			}
			if e.Source != "nvme0q1:130" {
				t.Fatalf("unexpected irq source %q", e.Source)
			}
		}
	}
	if irqs == 0 {
		t.Fatal("no block irqs observed")
	}
	// Flush kworkers accompany the storms.
	flushes := 0
	for _, e := range tr.Events {
		if e.Class == cpusched.ClassThread {
			flushes++
		}
	}
	if flushes == 0 {
		t.Fatal("no writeback flush activity observed")
	}
}

func TestScaleIncludesDisk(t *testing.T) {
	base := Desktop()
	if got := base.Scale(2).DiskRate; got != base.DiskRate*2 {
		t.Fatalf("DiskRate not scaled: %v", got)
	}
}
