package noise

import (
	"sort"
	"testing"
)

func TestSourceClassesSortedAndRecognized(t *testing.T) {
	classes := SourceClasses()
	if len(classes) != 6 {
		t.Fatalf("expected 6 source classes, got %v", classes)
	}
	if !sort.StringsAreSorted(classes) {
		t.Fatalf("classes not sorted: %v", classes)
	}
	for _, c := range classes {
		if !IsSourceClass(c) {
			t.Fatalf("SourceClasses() returned unrecognized class %q", c)
		}
	}
	for _, bad := range []string{"", "gpu", "IRQ", "daemons"} {
		if IsSourceClass(bad) {
			t.Fatalf("IsSourceClass(%q) = true", bad)
		}
	}
}

// TestScaleSourceIsolation checks each class scales only its own knobs.
func TestScaleSourceIsolation(t *testing.T) {
	base := Desktop()
	for _, c := range SourceClasses() {
		p := base.ScaleSource(c, 3)
		if (p.DaemonRate != base.DaemonRate || p.GUIRate != base.GUIRate) != (c == SourceDaemon) {
			t.Fatalf("%s: daemon knobs moved unexpectedly", c)
		}
		if (p.TimerHz != base.TimerHz || p.DiskRate != base.DiskRate) != (c == SourceIRQ) {
			t.Fatalf("%s: irq knobs moved unexpectedly", c)
		}
		if (p.KworkerRate != base.KworkerRate) != (c == SourceSMT) {
			t.Fatalf("%s: smt knob moved unexpectedly", c)
		}
		if (p.UnboundRate != base.UnboundRate) != (c == SourceBarrier) {
			t.Fatalf("%s: barrier knob moved unexpectedly", c)
		}
		if (p.MemHogRate != base.MemHogRate) != (c == SourceBandwidth) {
			t.Fatalf("%s: bandwidth knob moved unexpectedly", c)
		}
		moved := false
		for src, prob := range p.SoftIRQProb {
			if prob != base.SoftIRQProb[src] {
				moved = true
			}
		}
		if moved != (c == SourceSoftIRQ) {
			t.Fatalf("%s: softirq probabilities moved unexpectedly", c)
		}
	}
}

// TestScaleSourceSoftirqDeepCopy: Profile copies share the SoftIRQProb map
// header, so scaling must never mutate the caller's map — that would
// silently corrupt the natural profile for every later sweep point.
func TestScaleSourceSoftirqDeepCopy(t *testing.T) {
	base := Desktop()
	want := make(map[string]float64, len(base.SoftIRQProb))
	for k, v := range base.SoftIRQProb {
		want[k] = v
	}
	scaled := base.ScaleSource(SourceSoftIRQ, 2)
	for k, v := range base.SoftIRQProb {
		if v != want[k] {
			t.Fatalf("ScaleSource mutated caller's map: %s = %g, want %g", k, v, want[k])
		}
	}
	for k, v := range scaled.SoftIRQProb {
		wantScaled := want[k] * 2
		if wantScaled > 1 {
			wantScaled = 1
		}
		if v != wantScaled {
			t.Fatalf("scaled prob %s = %g, want %g", k, v, wantScaled)
		}
	}
}

// TestScaleSourceSoftirqCap: probabilities saturate at 1.
func TestScaleSourceSoftirqCap(t *testing.T) {
	p := Desktop().ScaleSource(SourceSoftIRQ, 100)
	for k, v := range p.SoftIRQProb {
		if v != 1 {
			t.Fatalf("prob %s = %g, want capped at 1", k, v)
		}
	}
}

// TestScaleSourceBandwidthSeedsBase: natural profiles have no memhog; the
// bandwidth class seeds the calibrated base before scaling.
func TestScaleSourceBandwidthSeedsBase(t *testing.T) {
	p := Desktop().ScaleSource(SourceBandwidth, 2)
	if p.MemHogRate != BandwidthBaseRate*2 {
		t.Fatalf("MemHogRate = %g, want %g", p.MemHogRate, BandwidthBaseRate*2)
	}
	if p.MemHogBytes != BandwidthBaseBytes {
		t.Fatalf("MemHogBytes = %g, want %g", p.MemHogBytes, BandwidthBaseBytes)
	}
	// A profile with its own calibration scales from it instead.
	own := Desktop()
	own.MemHogRate, own.MemHogBytes = 10, 1<<10
	own = own.ScaleSource(SourceBandwidth, 3)
	if own.MemHogRate != 30 || own.MemHogBytes != 1<<10 {
		t.Fatalf("own calibration not respected: rate %g bytes %g", own.MemHogRate, own.MemHogBytes)
	}
}

func TestScaleSourceUnknownClassNoop(t *testing.T) {
	base := Desktop()
	p := base.ScaleSource("gpu", 5)
	if p.TimerHz != base.TimerHz || p.DaemonRate != base.DaemonRate ||
		p.KworkerRate != base.KworkerRate || p.UnboundRate != base.UnboundRate ||
		p.MemHogRate != base.MemHogRate {
		t.Fatal("unknown class changed the profile")
	}
}
