package noise

import "sort"

// Source classes for the differential bottleneck analysis: each class names
// the subset of a Profile's noise machinery that contends for one kind of
// resource, so scaling a single class probes that resource in isolation.
const (
	// SourceDaemon scales heavy-tailed background daemon and GUI bursts —
	// roaming compute thieves with rare long outliers.
	SourceDaemon = "daemon"
	// SourceIRQ scales hard-interrupt pressure: the per-CPU timer tick and
	// block-device interrupt storms.
	SourceIRQ = "irq"
	// SourceSoftIRQ scales the probability that each timer tick raises
	// softirq work (RCU/SCHED/TIMER), capped at certainty.
	SourceSoftIRQ = "softirq"
	// SourceSMT scales CPU-bound kworker activity — the per-core
	// contention an SMT sibling would produce.
	SourceSMT = "smt"
	// SourceBarrier scales unbound (roaming) kworkers, the class whose
	// preemptions land adjacent to barriers and stretch collective waits.
	SourceBarrier = "barrier"
	// SourceBandwidth scales synthetic memory-bandwidth hog tasks. Natural
	// profiles carry none, so the sweep seeds BandwidthBaseRate/Bytes at
	// factor 1 and scales from there.
	SourceBandwidth = "bandwidth"
)

// BandwidthBaseRate/BandwidthBaseBytes calibrate the synthetic bandwidth
// source when the profile has none of its own: 40 hogs/sec each streaming
// 2 MiB is enough to move a memory-bound region at factor 1 without
// drowning the compute classes.
const (
	BandwidthBaseRate  = 40.0
	BandwidthBaseBytes = float64(2 << 20)
)

// SourceClasses returns every analysis source class in sorted order — the
// canonical enumeration the analyze spec normalizer and validators use.
func SourceClasses() []string {
	out := []string{
		SourceBandwidth, SourceBarrier, SourceDaemon,
		SourceIRQ, SourceSMT, SourceSoftIRQ,
	}
	sort.Strings(out)
	return out
}

// IsSourceClass reports whether name is a known analysis source class.
func IsSourceClass(name string) bool {
	switch name {
	case SourceDaemon, SourceIRQ, SourceSoftIRQ, SourceSMT, SourceBarrier, SourceBandwidth:
		return true
	}
	return false
}

// ScaleSource returns a copy of the profile with only the named source
// class scaled by f, leaving every other source at its natural intensity.
// Unknown classes return the profile unchanged (validate upstream with
// IsSourceClass). The SoftIRQProb map is deep-copied before mutation:
// Profile copies share map headers, and scaling a caller's map in place
// would corrupt the natural profile for every later sweep point.
func (p Profile) ScaleSource(class string, f float64) Profile {
	switch class {
	case SourceDaemon:
		p.DaemonRate *= f
		p.GUIRate *= f
	case SourceIRQ:
		p.TimerHz *= f
		p.DiskRate *= f
	case SourceSoftIRQ:
		probs := make(map[string]float64, len(p.SoftIRQProb))
		for src, prob := range p.SoftIRQProb {
			prob *= f
			if prob > 1 {
				prob = 1
			}
			probs[src] = prob
		}
		p.SoftIRQProb = probs
	case SourceSMT:
		p.KworkerRate *= f
	case SourceBarrier:
		p.UnboundRate *= f
	case SourceBandwidth:
		if p.MemHogRate == 0 {
			p.MemHogRate = BandwidthBaseRate
		}
		if p.MemHogBytes == 0 {
			p.MemHogBytes = BandwidthBaseBytes
		}
		p.MemHogRate *= f
	}
	return p
}
