// Package noise generates natural OS background noise on the simulated
// machine: per-CPU timer interrupts, softirqs (RCU/SCHED/TIMER), per-CPU and
// unbound kworkers, and heavy-tailed background daemons (including
// GUI/compositor activity when the system runs at runlevel 5). The
// heavy-tailed daemon bursts are what produce the rare worst-case outliers
// the paper's injector captures and replays.
package noise

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// Profile parameterizes the noise sources of one platform configuration.
type Profile struct {
	// Name labels the profile.
	Name string

	// TimerHz is the per-CPU timer interrupt frequency (CONFIG_HZ).
	TimerHz float64
	// TimerDur is the mean local_timer handler duration.
	TimerDur sim.Time
	// TimerDurSigma is the log-space spread of timer durations.
	TimerDurSigma float64

	// SoftIRQProb is the probability that a timer tick is followed by each
	// softirq source; SoftIRQDur the mean duration per source.
	SoftIRQProb map[string]float64
	SoftIRQDur  map[string]sim.Time

	// KworkerRate is the per-CPU Poisson rate (events/sec) of bound
	// kworker activity; durations are log-normal.
	KworkerRate     float64
	KworkerDur      sim.Time
	KworkerDurSigma float64

	// UnboundRate is the machine-wide rate of unbound kworkers.
	UnboundRate     float64
	UnboundDur      sim.Time
	UnboundDurSigma float64

	// DaemonRate is the machine-wide rate of background daemon activity
	// (systemd, journald, irqbalance, ...). Durations are Pareto
	// heavy-tailed: DaemonDurMin with shape DaemonAlpha, capped at
	// DaemonDurCap. These bursts produce worst-case outliers.
	DaemonRate    float64
	DaemonDurMin  sim.Time
	DaemonAlpha   float64
	DaemonDurCap  sim.Time
	DaemonSources []string
	// BurstFanout is the maximum number of concurrent worker threads a
	// large daemon/GUI burst spreads across (indexing storms, compositor
	// frames and their clients run multi-threaded). Bursts longer than
	// BurstFanoutThreshold split across 2..BurstFanout parallel threads,
	// which is what lets heavy bursts overwhelm a single housekeeping
	// core. 0 disables fanout.
	BurstFanout          int
	BurstFanoutThreshold sim.Time

	// GUI enables desktop compositor/display-server noise (runlevel 5).
	// Disabling it models the paper's runlevel-3 re-runs.
	GUI        bool
	GUIRate    float64
	GUIDurMin  sim.Time
	GUIAlpha   float64
	GUIDurCap  sim.Time
	GUISources []string

	// Disk I/O activity: storms of block-device completion interrupts on
	// DiskCPU (device interrupts are steered, not balanced), each
	// followed by a writeback kworker flush. DiskRate is storms/sec; 0
	// disables.
	DiskRate     float64
	DiskCPU      int
	DiskIRQs     int      // interrupts per storm
	DiskIRQDur   sim.Time // per interrupt
	DiskFlushDur sim.Time // kworker flush after the storm

	// MemHogRate is the machine-wide rate (events/sec) of synthetic
	// memory-bandwidth hog tasks, each streaming MemHogBytes through the
	// memory system. The natural profiles leave it 0; the bottleneck
	// analysis switches it on to probe bandwidth sensitivity
	// (ScaleSource("bandwidth", ...)).
	MemHogRate  float64
	MemHogBytes float64

	// ThreadMask, when non-empty, confines all thread noise (kworkers and
	// daemons) to these CPUs — the firmware core reservation of the A64FX
	// "reserved" system. Interrupts still fire on every CPU.
	ThreadMask machine.CPUSet
}

// Scale returns a copy with all rates multiplied by f (noise intensity).
func (p Profile) Scale(f float64) Profile {
	p.TimerHz *= f
	p.KworkerRate *= f
	p.UnboundRate *= f
	p.DaemonRate *= f
	p.GUIRate *= f
	p.DiskRate *= f
	p.MemHogRate *= f
	return p
}

// WithRunlevel3 returns a copy with GUI noise disabled.
func (p Profile) WithRunlevel3() Profile {
	p.GUI = false
	return p
}

// Desktop returns the noise profile of an Ubuntu desktop (runlevel 5), used
// for both the AMD and Intel platforms.
func Desktop() Profile {
	return Profile{
		Name:          "desktop",
		TimerHz:       250,
		TimerDur:      2 * sim.Microsecond,
		TimerDurSigma: 0.6,
		SoftIRQProb: map[string]float64{
			"RCU:9":   0.35,
			"SCHED:7": 0.30,
			"TIMER:1": 0.15,
		},
		SoftIRQDur: map[string]sim.Time{
			"RCU:9":   3 * sim.Microsecond,
			"SCHED:7": 5 * sim.Microsecond,
			"TIMER:1": 2 * sim.Microsecond,
		},
		KworkerRate:          6,
		KworkerDur:           40 * sim.Microsecond,
		KworkerDurSigma:      1.2,
		UnboundRate:          12,
		UnboundDur:           120 * sim.Microsecond,
		UnboundDurSigma:      1.4,
		DaemonRate:           3.0,
		DaemonDurMin:         1 * sim.Millisecond,
		DaemonAlpha:          1.0,
		DaemonDurCap:         600 * sim.Millisecond,
		DaemonSources:        []string{"systemd-journal", "containerd", "irqbalance", "snapd"},
		GUI:                  true,
		GUIRate:              2.0,
		GUIDurMin:            1 * sim.Millisecond,
		GUIAlpha:             1.1,
		GUIDurCap:            400 * sim.Millisecond,
		GUISources:           []string{"gnome-shell", "Xorg"},
		BurstFanout:          6,
		BurstFanoutThreshold: 40 * sim.Millisecond,
		DiskRate:             0.8,
		DiskCPU:              0,
		DiskIRQs:             40,
		DiskIRQDur:           5 * sim.Microsecond,
		DiskFlushDur:         150 * sim.Microsecond,
	}
}

// HPC returns the much quieter profile of a compute-node OS image (the
// A64FX systems of the motivation section): no GUI, fewer daemons.
func HPC() Profile {
	p := Desktop()
	p.Name = "hpc"
	p.GUI = false
	p.KworkerRate = 3
	p.UnboundRate = 5
	p.DaemonRate = 1.2
	p.DaemonDurCap = 120 * sim.Millisecond
	p.DaemonSources = []string{"slurmd", "munged", "systemd-journal"}
	return p
}

// HPCReserved returns the A64FX profile with firmware core reservation:
// all thread noise is confined to the reserved OS cores.
func HPCReserved(topo *machine.Topology) Profile {
	p := HPC()
	p.Name = "hpc-reserved"
	p.ThreadMask = topo.ReservedMask()
	return p
}
