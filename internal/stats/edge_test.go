package stats

// Table-driven edge-case coverage for the summary statistics the service's
// /metrics quantiles and the paper's tables depend on: empty samples,
// single samples, all-equal values, and quantile interpolation at the
// boundaries.

import (
	"math"
	"testing"
)

func nearly(a, b float64) bool { return almost(a, b, 1e-12) }

func TestQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single q0", []float64{42}, 0, 42},
		{"single q0.5", []float64{42}, 0.5, 42},
		{"single q1", []float64{42}, 1, 42},
		{"below range clamps", []float64{1, 2}, -0.5, 1},
		{"above range clamps", []float64{1, 2}, 1.5, 2},
		{"exact q0", []float64{1, 2, 3, 4}, 0, 1},
		{"exact q1", []float64{1, 2, 3, 4}, 1, 4},
		{"pair midpoint", []float64{1, 3}, 0.5, 2},
		{"type-7 p25", []float64{1, 2, 3, 4}, 0.25, 1.75},
		{"type-7 median odd", []float64{1, 2, 3, 4, 5}, 0.5, 3},
		{"type-7 p75", []float64{1, 2, 3, 4}, 0.75, 3.25},
		{"just below 1", []float64{1, 2, 3, 4}, 0.99, 3.97},
		{"just above 0", []float64{1, 2, 3, 4}, 0.01, 1.03},
		{"all equal", []float64{7, 7, 7, 7}, 0.9, 7},
		{"grid point exact", []float64{10, 20, 30}, 0.5, 20},
	}
	for _, tc := range cases {
		if got := Quantile(tc.sorted, tc.q); !nearly(got, tc.want) {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
}

// TestQuantileNaNDoesNotPanic pins the fix for the discrepancy this suite
// uncovered: Quantile used to evaluate int(math.Floor(NaN)) as an index
// and panic with index out of range.
func TestQuantileNaNDoesNotPanic(t *testing.T) {
	if got := Quantile([]float64{1, 2, 3}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(_, NaN) = %v, want NaN", got)
	}
	if got := Quantile(nil, math.NaN()); got != 0 {
		t.Errorf("Quantile(nil, NaN) = %v, want 0", got)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{5},
			Summary{N: 1, Mean: 5, SD: 0, CV: 0, Min: 5, P25: 5, Median: 5, P75: 5, P95: 5, P99: 5, Max: 5}},
		{"all equal", []float64{3, 3, 3, 3, 3},
			Summary{N: 5, Mean: 3, SD: 0, CV: 0, Min: 3, P25: 3, Median: 3, P75: 3, P95: 3, P99: 3, Max: 3}},
	}
	for _, tc := range cases {
		got := Summarize(tc.xs)
		if got != tc.want {
			t.Errorf("%s: Summarize(%v) = %+v, want %+v", tc.name, tc.xs, got, tc.want)
		}
	}

	// Unsorted input must not change the order statistics.
	got := Summarize([]float64{4, 1, 3, 2})
	if got.Min != 1 || got.Max != 4 || !nearly(got.Median, 2.5) {
		t.Errorf("unsorted: %+v", got)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.SD() != 0 || w.Var() != 0 || w.CV() != 0 {
		t.Errorf("zero-value Welford not all-zero: %+v", w)
	}
	w.Add(2)
	if w.Var() != 0 || w.SD() != 0 {
		t.Errorf("single-sample variance = %v, want 0 (n-1 denominator)", w.Var())
	}
	if w.Min() != 2 || w.Max() != 2 {
		t.Errorf("single-sample extremes: min=%v max=%v", w.Min(), w.Max())
	}
	for i := 0; i < 9; i++ {
		w.Add(2)
	}
	if w.SD() != 0 || w.CV() != 0 {
		t.Errorf("all-equal SD=%v CV=%v, want 0", w.SD(), w.CV())
	}
}

func TestFiveNumEdgeCases(t *testing.T) {
	if got := FiveNumOf(nil); got != (FiveNum{}) {
		t.Errorf("FiveNumOf(nil) = %+v", got)
	}
	got := FiveNumOf([]float64{9})
	want := FiveNum{Min: 9, Q1: 9, Median: 9, Q3: 9, Max: 9}
	if got != want {
		t.Errorf("single: %+v", got)
	}
	if got.IQR() != 0 {
		t.Errorf("single IQR = %v", got.IQR())
	}
}

func TestBootstrapAndOutliersEdgeCases(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 0.95, 100, 1); lo != 0 || hi != 0 {
		t.Errorf("BootstrapCI(empty) = %v,%v", lo, hi)
	}
	if lo, hi := BootstrapCI([]float64{1, 2}, 0.95, 0, 1); lo != 0 || hi != 0 {
		t.Errorf("BootstrapCI(iters=0) = %v,%v", lo, hi)
	}
	// All-equal sample: the CI collapses to the point.
	lo, hi := BootstrapCI([]float64{4, 4, 4, 4}, 0.95, 50, 7)
	if lo != 4 || hi != 4 {
		t.Errorf("BootstrapCI(all equal) = %v,%v, want 4,4", lo, hi)
	}
	if out := Outliers([]float64{1, 2, 3}, 1.5); out != nil {
		t.Errorf("Outliers(n<4) = %v, want nil", out)
	}
	if n := UpperOutlierCount([]float64{5, 5, 5, 5}, 1.5); n != 0 {
		t.Errorf("UpperOutlierCount(all equal) = %d", n)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if counts, _, _ := Histogram(nil, 4); counts != nil {
		t.Errorf("Histogram(empty) = %v", counts)
	}
	if counts, _, _ := Histogram([]float64{1, 2}, 0); counts != nil {
		t.Errorf("Histogram(n=0) = %v", counts)
	}
	counts, min, width := Histogram([]float64{3, 3, 3}, 4)
	if counts[0] != 3 || min != 3 || width != 0 {
		t.Errorf("Histogram(all equal) = %v min=%v width=%v", counts, min, width)
	}
	// The maximum lands in the last bucket, not one past it.
	counts, _, _ = Histogram([]float64{0, 1, 2, 3, 4}, 2)
	if counts[0]+counts[1] != 5 || counts[1] < 1 {
		t.Errorf("Histogram max placement: %v", counts)
	}
}

func TestRelChangeEdgeCases(t *testing.T) {
	if got := RelChange(0, 5); got != 0 {
		t.Errorf("RelChange(0, 5) = %v, want 0 (guarded)", got)
	}
	if got := RelChange(10, 15); !nearly(got, 50) {
		t.Errorf("RelChange(10, 15) = %v, want 50", got)
	}
	if got := RelChange(10, 5); !nearly(got, -50) {
		t.Errorf("RelChange(10, 5) = %v, want -50", got)
	}
}
