package stats

import (
	"fmt"
	"math"
)

// LinFit is an ordinary-least-squares line fit y = Intercept + Slope*x with
// the slope's uncertainty attached. It is the sensitivity model behind the
// bottleneck analysis: x is a noise-source intensity factor, y a measured
// time, and Slope the resource's sensitivity in ms per intensity step.
type LinFit struct {
	// N is the number of (x, y) points fitted.
	N int `json:"n"`
	// Slope and Intercept are the fitted coefficients.
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	// R2 is the coefficient of determination (1 when the points are
	// perfectly collinear, including the all-identical-y case where the
	// fit reproduces every point exactly).
	R2 float64 `json:"r2"`
	// SlopeSE is the standard error of the slope (0 when N == 2: two
	// points leave no residual degrees of freedom).
	SlopeSE float64 `json:"slope_se"`
	// SlopeLo/SlopeHi bound the slope at the confidence level LinearFit
	// was called with (Slope ± t*SlopeSE).
	SlopeLo float64 `json:"slope_lo"`
	SlopeHi float64 `json:"slope_hi"`
}

// tTable95 holds two-sided 95% Student-t quantiles for 1..30 residual
// degrees of freedom; larger df fall back to the normal 1.96. The analysis
// ladders are short (a handful of points), so the small-df entries are the
// ones that matter.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the fit
// with a 95% confidence interval on the slope. It rejects hostile input
// instead of returning silent garbage: mismatched lengths, fewer than two
// points, non-finite values, and zero x-variance (a vertical "line") are
// all errors — the same class of input the Quantile NaN sweep once turned
// into a panic. Negative slopes are fine; all-identical y fits a flat line
// with R2 = 1.
func LinearFit(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, fmt.Errorf("stats: linear fit: %d xs vs %d ys", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinFit{}, fmt.Errorf("stats: linear fit needs >= 2 points, got %d", n)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return LinFit{}, fmt.Errorf("stats: linear fit: non-finite input at point %d (%g, %g)", i, xs[i], ys[i])
		}
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinFit{}, fmt.Errorf("stats: linear fit: zero x-variance (all x = %g)", mx)
	}
	b := sxy / sxx
	a := my - b*mx
	// A subnormal-but-nonzero sxx (x values distinct by less than ~1e-154)
	// slips past the == 0 guard and overflows the quotient: the x spread is
	// numerically indistinguishable from a vertical line, so reject it the
	// same way instead of returning an infinite slope.
	if math.IsInf(b, 0) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsNaN(a) {
		return LinFit{}, fmt.Errorf("stats: linear fit: x-variance %g too small to resolve a finite slope", sxx)
	}
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		r := ys[i] - (a + b*xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	fit := LinFit{N: n, Slope: b, Intercept: a}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		// All y identical: the flat fit reproduces every point exactly.
		fit.R2 = 1
	}
	if n > 2 {
		fit.SlopeSE = math.Sqrt(ssRes / float64(n-2) / sxx)
	}
	t := tQuantile95(n - 2)
	fit.SlopeLo = b - t*fit.SlopeSE
	fit.SlopeHi = b + t*fit.SlopeSE
	return fit, nil
}

// meanCISeed fixes the bootstrap seed MeanCI uses, so every caller —
// advisor assessments, analysis sweep points — reports uncertainty from the
// same deterministic resampling.
const meanCISeed uint64 = 0x9e3779b97f4a7c15

// meanCIIters is MeanCI's resample count: enough for stable percentile
// ends at the sample sizes the studies use, cheap enough to run per cell.
const meanCIIters = 200

// MeanCI returns the sample mean of xs with a deterministic percentile-
// bootstrap confidence interval at the given level (e.g. 0.95). It is the
// one mean-uncertainty convention shared by the advisor and the bottleneck
// analysis, so their tables read the same way.
func MeanCI(xs []float64, level float64) (mean, lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	mean = Mean(xs)
	lo, hi = BootstrapCI(xs, level, meanCIIters, meanCISeed)
	return mean, lo, hi
}
