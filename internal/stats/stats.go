// Package stats provides the summary statistics the evaluation uses:
// mean / sample standard deviation (the paper's variability metric in
// Table 2), percentiles, five-number summaries for the box plots of
// Figures 1-2, coefficient of variation, and bootstrap confidence
// intervals. A Welford accumulator supports single-pass streaming.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Welford is a numerically stable streaming accumulator for mean/variance.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (n-1 denominator; 0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// SD returns the sample standard deviation.
func (w *Welford) SD() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the observed extremes (0 when empty).
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// CV returns the coefficient of variation (SD/mean; 0 when mean is 0).
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.SD() / w.mean
}

// Summary condenses a sample of execution times.
type Summary struct {
	N      int
	Mean   float64
	SD     float64
	CV     float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary over raw float observations.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   w.Mean(),
		SD:     w.SD(),
		CV:     w.CV(),
		Min:    sorted[0],
		P25:    Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.50),
		P75:    Quantile(sorted, 0.75),
		P95:    Quantile(sorted, 0.95),
		P99:    Quantile(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}

// SummarizeTimes computes a Summary over simulated times, in milliseconds —
// the unit the paper's tables use for standard deviations.
func SummarizeTimes(ts []sim.Time) Summary {
	xs := make([]float64, len(ts))
	for i, t := range ts {
		xs[i] = t.Millis()
	}
	return Summarize(xs)
}

// Quantile returns the q-quantile (0..1) of sorted data using linear
// interpolation (the "type 7" convention); the caller must pass sorted
// data. Out-of-range q clamps to the extremes; a NaN q yields NaN (it
// used to index out of range and panic).
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	// a + frac*(b-a) rather than a*(1-frac)+b*frac: the two-product form
	// rounds 1 ulp above b when a == b (e.g. Quantile([114,114], 0.1) gave
	// 114.00000000000001), breaking the min/max bound. Clamp for the
	// residual cases where b-a itself rounds up.
	a, b := sorted[lo], sorted[lo+1]
	v := a + frac*(b-a)
	if v < a {
		return a
	}
	if v > b {
		return b
	}
	return v
}

// FiveNum is the box-plot five-number summary used for Figures 1-2.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// FiveNumOf computes the five-number summary of xs.
func FiveNumOf(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return FiveNum{
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.50),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// IQR returns the interquartile range.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f", f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// splitmix64 for the bootstrap's internal PRNG, kept local so stats does not
// depend on the simulation packages.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean at the given confidence level (e.g. 0.95), using iters resamples and
// a fixed seed for reproducibility.
func BootstrapCI(xs []float64, level float64, iters int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || iters <= 0 {
		return 0, 0
	}
	r := &prng{s: seed}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[r.intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// RelChange returns (observed-baseline)/baseline as a percentage, the
// metric of the paper's Tables 3-6.
func RelChange(baseline, observed float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (observed - baseline) / baseline * 100
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanTimes returns the mean of simulated times.
func MeanTimes(ts []sim.Time) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	var sum sim.Time
	for _, t := range ts {
		sum += t
	}
	return sum / sim.Time(len(ts))
}

// Histogram bins xs into n equal-width buckets across [min, max] and
// returns bucket counts plus the bucket width.
func Histogram(xs []float64, n int) (counts []int, min, width float64) {
	if len(xs) == 0 || n <= 0 {
		return nil, 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	counts = make([]int, n)
	if hi == lo {
		counts[0] = len(xs)
		return counts, lo, 0
	}
	width = (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, lo, width
}

// Tukey fences: observations beyond Q3 + k*IQR (or below Q1 - k*IQR) are
// outliers; the paper's worst-case hunting is exactly the search for the
// upper ones. The conventional k is 1.5.

// Outliers returns the indices of observations outside the Tukey fences.
func Outliers(xs []float64, k float64) []int {
	if len(xs) < 4 {
		return nil
	}
	f := FiveNumOf(xs)
	lo := f.Q1 - k*f.IQR()
	hi := f.Q3 + k*f.IQR()
	var out []int
	for i, x := range xs {
		if x < lo || x > hi {
			out = append(out, i)
		}
	}
	return out
}

// UpperOutlierCount counts observations above the upper Tukey fence — the
// "significant outliers" the paper selects worst-case traces from.
func UpperOutlierCount(xs []float64, k float64) int {
	if len(xs) < 4 {
		return 0
	}
	f := FiveNumOf(xs)
	hi := f.Q3 + k*f.IQR()
	n := 0
	for _, x := range xs {
		if x > hi {
			n++
		}
	}
	return n
}
