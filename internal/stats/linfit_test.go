package stats

import (
	"math"
	"testing"
)

// TestLinearFitExact checks recovery of known lines, including negative
// slopes.
func TestLinearFitExact(t *testing.T) {
	cases := []struct {
		name       string
		xs, ys     []float64
		slope, icp float64
	}{
		{"identity", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3}, 1, 0},
		{"affine", []float64{1, 2, 4, 8}, []float64{5, 7, 11, 19}, 2, 3},
		{"negative", []float64{1, 2, 3, 4}, []float64{10, 8, 6, 4}, -2, 12},
		{"two-points", []float64{1, 3}, []float64{2, 8}, 3, -1},
		{"flat", []float64{1, 2, 4, 8}, []float64{6, 6, 6, 6}, 0, 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fit, err := LinearFit(c.xs, c.ys)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fit.Slope-c.slope) > 1e-12 || math.Abs(fit.Intercept-c.icp) > 1e-12 {
				t.Fatalf("fit = %+v, want slope %g intercept %g", fit, c.slope, c.icp)
			}
			if math.Abs(fit.R2-1) > 1e-12 {
				t.Fatalf("exact line should give R2 = 1, got %g", fit.R2)
			}
			if fit.N != len(c.xs) {
				t.Fatalf("N = %d, want %d", fit.N, len(c.xs))
			}
			// An exact fit has zero residual, so the CI collapses onto the
			// slope.
			if fit.SlopeLo != fit.Slope || fit.SlopeHi != fit.Slope {
				t.Fatalf("exact fit CI should collapse: %+v", fit)
			}
		})
	}
}

// TestLinearFitHostileInput is the edge-case sweep: the same class of input
// that once made Quantile panic must come back as errors here, never as
// silent garbage slopes.
func TestLinearFitHostileInput(t *testing.T) {
	cases := []struct {
		name   string
		xs, ys []float64
	}{
		{"empty", nil, nil},
		{"single-point", []float64{1}, []float64{2}},
		{"length-mismatch", []float64{1, 2}, []float64{1}},
		{"zero-x-variance", []float64{2, 2, 2}, []float64{1, 2, 3}},
		{"two-identical-points", []float64{5, 5}, []float64{7, 7}},
		// Subnormal-but-nonzero x-variance sneaks past an sxx == 0 guard,
		// then sxy/sxx overflows: before the finiteness guard this returned
		// a fit with Slope = +Inf instead of an error.
		{"subnormal-x-variance", []float64{0, 1e-160}, []float64{0, 1e160}},
		{"duplicate-x-overflow", []float64{1e-160, 1e-160, 2e-160}, []float64{0, 1e160, 2e160}},
		{"nan-x", []float64{1, math.NaN(), 3}, []float64{1, 2, 3}},
		{"nan-y", []float64{1, 2, 3}, []float64{1, math.NaN(), 3}},
		{"inf-x", []float64{1, math.Inf(1), 3}, []float64{1, 2, 3}},
		{"neg-inf-y", []float64{1, 2, 3}, []float64{1, 2, math.Inf(-1)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fit, err := LinearFit(c.xs, c.ys)
			if err == nil {
				t.Fatalf("hostile input accepted: %+v", fit)
			}
		})
	}
}

// TestLinearFitNoisy checks the uncertainty plumbing on a non-exact fit:
// residuals give a positive standard error and a CI that brackets the
// slope symmetrically.
func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	ys := []float64{2.1, 3.9, 8.3, 15.8} // roughly 2x
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.5 || fit.Slope > 2.5 {
		t.Fatalf("slope = %g, want ~2", fit.Slope)
	}
	if fit.SlopeSE <= 0 {
		t.Fatalf("noisy fit should have positive slope SE: %+v", fit)
	}
	if !(fit.SlopeLo < fit.Slope && fit.Slope < fit.SlopeHi) {
		t.Fatalf("CI does not bracket the slope: %+v", fit)
	}
	if lw, hw := fit.Slope-fit.SlopeLo, fit.SlopeHi-fit.Slope; math.Abs(lw-hw) > 1e-12 {
		t.Fatalf("CI not symmetric: %+v", fit)
	}
	if fit.R2 <= 0.9 || fit.R2 >= 1 {
		t.Fatalf("R2 = %g, want in (0.9, 1)", fit.R2)
	}
}

// TestLinearFitDeterministic: same input, same fit — the artifact encoder
// depends on it.
func TestLinearFitDeterministic(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	ys := []float64{3.2, 4.1, 9.7, 18.4}
	a, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinearFit(append([]float64(nil), xs...), append([]float64(nil), ys...))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fit not deterministic: %+v vs %+v", a, b)
	}
}

func TestTQuantile95(t *testing.T) {
	if got := tQuantile95(0); got != 0 {
		t.Fatalf("df 0 = %g, want 0", got)
	}
	if got := tQuantile95(1); got != 12.706 {
		t.Fatalf("df 1 = %g", got)
	}
	if got := tQuantile95(1000); got != 1.96 {
		t.Fatalf("df 1000 = %g, want 1.96", got)
	}
}

func TestMeanCI(t *testing.T) {
	if m, lo, hi := MeanCI(nil, 0.95); m != 0 || lo != 0 || hi != 0 {
		t.Fatalf("empty MeanCI = %g [%g, %g]", m, lo, hi)
	}
	xs := []float64{9, 10, 11, 10, 9, 11, 10, 10}
	m, lo, hi := MeanCI(xs, 0.95)
	if m != 10 {
		t.Fatalf("mean = %g, want 10", m)
	}
	if !(lo <= m && m <= hi) {
		t.Fatalf("CI [%g, %g] does not bracket mean %g", lo, hi, m)
	}
	// Deterministic: the fixed internal seed makes repeated calls agree.
	m2, lo2, hi2 := MeanCI(xs, 0.95)
	if m != m2 || lo != lo2 || hi != hi2 {
		t.Fatal("MeanCI not deterministic")
	}
}
