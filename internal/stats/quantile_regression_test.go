package stats

import (
	"sort"
	"testing"
)

// TestQuantileBoundedOnDuplicates is the regression test for the lerp
// rounding bug: with adjacent equal values the old a*(1-f)+b*f form
// returned 1 ulp above the maximum (Quantile([114,114], 0.1) =
// 114.00000000000001), which the monotone property test caught only when
// testing/quick happened to generate duplicates.
func TestQuantileBoundedOnDuplicates(t *testing.T) {
	for _, raw := range [][]int8{{114, 114}, {-84, 36, -84}, {7, 7, 7, 7}, {-1, -1, 0}} {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sort.Float64s(xs)
		prev := xs[0]
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := Quantile(xs, q)
			if v < xs[0] || v > xs[len(xs)-1] {
				t.Fatalf("Quantile(%v, %v) = %v escapes [min, max]", xs, q, v)
			}
			if v < prev {
				t.Fatalf("Quantile(%v, %v) = %v < previous %v", xs, q, v, prev)
			}
			prev = v
		}
	}
}
