package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almost(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
	if !almost(w.CV(), w.SD()/5, 1e-12) {
		t.Fatalf("CV = %v", w.CV())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.SD() != 0 || w.Mean() != 0 || w.CV() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
	w.Add(3)
	if w.Var() != 0 || w.Mean() != 3 {
		t.Fatal("single observation: var 0, mean x")
	}
}

// Property: Welford matches the two-pass formula.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		twoPass := ss / float64(len(xs)-1)
		return almost(w.Var(), twoPass, 1e-6*(1+twoPass))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Median, 3, 1e-12) || !almost(s.Mean, 3, 1e-12) {
		t.Fatalf("summary: %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summarize should be zero")
	}
}

func TestSummarizeTimesMillis(t *testing.T) {
	s := SummarizeTimes([]sim.Time{sim.Millisecond, 3 * sim.Millisecond})
	if !almost(s.Mean, 2, 1e-9) {
		t.Fatalf("mean should be in ms: %v", s.Mean)
	}
}

func TestFiveNum(t *testing.T) {
	f := FiveNumOf([]float64{7, 1, 3, 5, 9})
	if f.Min != 1 || f.Max != 9 || !almost(f.Median, 5, 1e-12) {
		t.Fatalf("five num: %+v", f)
	}
	if !almost(f.IQR(), f.Q3-f.Q1, 1e-12) {
		t.Fatal("IQR mismatch")
	}
	if (FiveNum{}) != FiveNumOf(nil) {
		t.Fatal("empty five-num should be zero value")
	}
	if f.String() == "" {
		t.Fatal("String should render")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10) // mean 4.5
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, 42)
	if lo > 4.5 || hi < 4.5 {
		t.Fatalf("CI [%v, %v] should contain the true mean 4.5", lo, hi)
	}
	if hi-lo > 2 {
		t.Fatalf("CI [%v, %v] too wide for n=200", lo, hi)
	}
	// Deterministic for fixed seed.
	lo2, hi2 := BootstrapCI(xs, 0.95, 500, 42)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
	if l, h := BootstrapCI(nil, 0.95, 100, 1); l != 0 || h != 0 {
		t.Fatal("empty bootstrap should be zeros")
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(2.0, 3.0); !almost(got, 50, 1e-12) {
		t.Fatalf("RelChange = %v", got)
	}
	if got := RelChange(2.0, 1.0); !almost(got, -50, 1e-12) {
		t.Fatalf("RelChange = %v", got)
	}
	if RelChange(0, 5) != 0 {
		t.Fatal("zero baseline should not divide")
	}
}

func TestMeanTimes(t *testing.T) {
	if MeanTimes(nil) != 0 {
		t.Fatal("empty MeanTimes")
	}
	got := MeanTimes([]sim.Time{10, 20, 30})
	if got != 20 {
		t.Fatalf("MeanTimes = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	counts, min, width := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if min != 0 || !almost(width, 1.8, 1e-12) {
		t.Fatalf("min=%v width=%v", min, width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram lost observations: %v", counts)
	}
	// Degenerate all-equal input.
	counts, _, width = Histogram([]float64{2, 2, 2}, 4)
	if counts[0] != 3 || width != 0 {
		t.Fatalf("degenerate histogram: %v width=%v", counts, width)
	}
	if c, _, _ := Histogram(nil, 3); c != nil {
		t.Fatal("empty histogram should be nil")
	}
}

// Property: quantiles are monotonic in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sort.Float64s(xs)
		prev := xs[0]
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < xs[0] || v > xs[len(xs)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOutliers(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 2, 2, 1, 3, 2, 50}
	out := Outliers(xs, 1.5)
	if len(out) != 1 || out[0] != 9 {
		t.Fatalf("outliers = %v", out)
	}
	if got := UpperOutlierCount(xs, 1.5); got != 1 {
		t.Fatalf("upper outliers = %d", got)
	}
	if Outliers([]float64{1, 2}, 1.5) != nil {
		t.Fatal("tiny samples have no defined outliers")
	}
	if UpperOutlierCount([]float64{1, 2}, 1.5) != 0 {
		t.Fatal("tiny samples: 0 upper outliers")
	}
	// Symmetric low outlier (with a non-degenerate IQR).
	lows := []float64{-50, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := Outliers(lows, 1.5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("low outlier missed: %v", got)
	}
	if UpperOutlierCount(lows, 1.5) != 0 {
		t.Fatal("low outlier is not an upper outlier")
	}
}
