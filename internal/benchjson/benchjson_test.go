package benchjson

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkSimulatedRun-8   	     300	   1097335 ns/op	        210.0 ctxsw/run	  352890 B/op	    1236 allocs/op
BenchmarkOther-8          	     100	    500000 ns/op
PASS
ok  	repro	2.1s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkSimulatedRun-8" || r.Package != "repro" || r.Iters != 300 {
		t.Errorf("result header = %+v", r)
	}
	if r.NsPerOp != 1097335 || r.BPerOp != 352890 || r.Allocs != 1236 {
		t.Errorf("metrics = %+v", r)
	}
	if r.Extra["ctxsw/run"] != 210 {
		t.Errorf("extra = %+v", r.Extra)
	}
}

func TestFind(t *testing.T) {
	doc, _ := Parse(strings.NewReader(sample))
	if doc.Find("BenchmarkOther-8") == nil {
		t.Error("Find missed an existing result")
	}
	if doc.Find("BenchmarkOther") != nil {
		t.Error("Find matched a base name; it must be exact")
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSimulatedRun-8": "BenchmarkSimulatedRun",
		"BenchmarkSimulatedRun":   "BenchmarkSimulatedRun",
		"BenchmarkX/sub-case-16":  "BenchmarkX/sub-case",
		"BenchmarkWith-Dash":      "BenchmarkWith-Dash",
	}
	for in, want := range cases {
		if got := BaseName(in); got != want {
			t.Errorf("BaseName(%q) = %q, want %q", in, got, want)
		}
	}
}
