// Package benchjson parses `go test -bench` output into a structured
// document and loads previously committed documents back, so benchmark
// evidence (ns/op, B/op, allocs/op and custom metrics such as
// context-switch counts) can be committed, diffed, and gated on.
package benchjson

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	BPerOp  float64            `json:"b_per_op,omitempty"`
	Allocs  float64            `json:"allocs_per_op,omitempty"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// Doc is the whole document.
type Doc struct {
	Go      string   `json:"go,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// Find returns the first result whose name matches exactly (including the
// -N GOMAXPROCS suffix go test appends), or nil.
func (d *Doc) Find(name string) *Result {
	for i := range d.Results {
		if d.Results[i].Name == name {
			return &d.Results[i]
		}
	}
	return nil
}

// BaseName strips the -N GOMAXPROCS suffix from a benchmark name
// ("BenchmarkSimulatedRun-8" → "BenchmarkSimulatedRun").
func BaseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Parse reads `go test -bench` text output and returns the document.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "goos: "), strings.HasPrefix(line, "goarch: "):
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iters: iters}
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.Allocs = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// Load reads a committed benchmark JSON document from disk.
func Load(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(raw, doc); err != nil {
		return nil, err
	}
	return doc, nil
}
