package machine

import (
	"strings"
	"testing"
)

func TestPresetNamesAllResolve(t *testing.T) {
	for _, name := range PresetNames() {
		topo, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if topo.Name != name {
			t.Fatalf("%s: topology named %q", name, topo.Name)
		}
		if topo.NumCPUs() <= 0 {
			t.Fatalf("%s: NumCPUs = %d", name, topo.NumCPUs())
		}
		if topo.CyclesPerNs() <= 0 {
			t.Fatalf("%s: CyclesPerNs = %g", name, topo.CyclesPerNs())
		}
		if topo.UserMask().Empty() {
			t.Fatalf("%s: empty user mask", name)
		}
	}
}

func TestPresetReturnsFreshTopology(t *testing.T) {
	// Each call must return an independent value: the cluster layer mutates
	// per-node attributes and a shared pointer would alias nodes.
	a, err := Preset(TinyTest)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Preset(TinyTest)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Preset returned the same *Topology twice")
	}
	a.Cores = 99
	if b.Cores == 99 {
		t.Fatal("mutating one preset instance changed another")
	}
}

func TestMustPreset(t *testing.T) {
	if MustPreset(TinyTest) == nil {
		t.Fatal("MustPreset returned nil")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for unknown preset")
		}
		if !strings.Contains(strings.ToLower(
			strings.TrimSpace(panicText(r))), "unknown preset") {
			t.Fatalf("panic %v does not mention unknown preset", r)
		}
	}()
	MustPreset("warehouse-scale")
}

func panicText(r any) string {
	if err, ok := r.(error); ok {
		return err.Error()
	}
	if s, ok := r.(string); ok {
		return s
	}
	return ""
}

func TestSMTPresetExposesSiblings(t *testing.T) {
	topo := MustPreset(TinySMTTest)
	if topo.NumCPUs() != 8 {
		t.Fatalf("tiny-smt-test NumCPUs = %d, want 8 (4 cores x 2 threads)", topo.NumCPUs())
	}
	plain := MustPreset(TinyTest)
	if plain.NumCPUs() != 4 {
		t.Fatalf("tiny-test NumCPUs = %d, want 4", plain.NumCPUs())
	}
}
