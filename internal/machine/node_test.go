package machine

import (
	"strings"
	"testing"
)

func TestUniformCluster(t *testing.T) {
	c, err := UniformCluster(3, TinyTest)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", c.NumNodes())
	}
	if c.TotalCPUs() != 12 {
		t.Fatalf("TotalCPUs = %d, want 12 (3 x 4-core tiny-test)", c.TotalCPUs())
	}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if want := "node" + string(rune('0'+i)); n.Name != want {
			t.Fatalf("node %d named %q, want %q", i, n.Name, want)
		}
		if n.EffectiveNoise() != 1 {
			t.Fatalf("node %d effective noise %g, want 1 (natural)", i, n.EffectiveNoise())
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformClusterErrors(t *testing.T) {
	if _, err := UniformCluster(0, TinyTest); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	if _, err := UniformCluster(2, "not-a-preset"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestCPUBaseDisjointBlocks(t *testing.T) {
	// Heterogeneous presets: blocks must stack by node order.
	a, b := MustPreset(TinyTest), MustPreset(TinySMTTest) // 4 and 8 CPUs
	c, err := NewCluster(&Node{Topo: a}, &Node{Topo: b}, &Node{Topo: a})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 12}
	for i, w := range want {
		if got := c.CPUBase(i); got != w {
			t.Fatalf("CPUBase(%d) = %d, want %d", i, got, w)
		}
	}
	if c.TotalCPUs() != 16 {
		t.Fatalf("TotalCPUs = %d, want 16", c.TotalCPUs())
	}
}

func TestSetStraggler(t *testing.T) {
	c, err := UniformCluster(2, TinyTest)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetStraggler(1, 8); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes[1].EffectiveNoise(); got != 8 {
		t.Fatalf("straggler effective noise %g, want 8", got)
	}
	if got := c.Nodes[0].EffectiveNoise(); got != 1 {
		t.Fatalf("non-straggler effective noise %g, want 1", got)
	}
	if err := c.SetStraggler(2, 8); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	if err := c.SetStraggler(-1, 8); err == nil {
		t.Fatal("expected error for negative index")
	}
	if err := c.SetStraggler(0, -1); err == nil {
		t.Fatal("expected error for negative scale")
	}
}

func TestNodeValidate(t *testing.T) {
	n := &Node{ID: 0, Name: "n0"}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "no topology") {
		t.Fatalf("nil topology: got %v", err)
	}
	n.Topo = MustPreset(TinyTest)
	n.NoiseScale = -0.5
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "NoiseScale") {
		t.Fatalf("negative noise scale: got %v", err)
	}
	n.NoiseScale = 4
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidateShape(t *testing.T) {
	if _, err := NewCluster(); err == nil {
		t.Fatal("expected error for empty cluster")
	}
	if _, err := NewCluster(&Node{Topo: MustPreset(TinyTest)}, nil); err == nil {
		t.Fatal("expected error for nil node")
	}
	// IDs must match positions: NewCluster assigns them, but a hand-built
	// cluster with a mismatch must fail validation.
	c := &Cluster{Nodes: []*Node{{ID: 1, Name: "x", Topo: MustPreset(TinyTest)}}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for ID/position mismatch")
	}
}
