package machine

import (
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for _, name := range PresetNames() {
		topo, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("Preset(%q) invalid: %v", name, err)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("no-such-machine"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestAMDTopology(t *testing.T) {
	topo := MustPreset(AMD9950X3D)
	if got := topo.NumCPUs(); got != 32 {
		t.Fatalf("NumCPUs = %d, want 32", got)
	}
	// Linux numbering: sibling of CPU 3 is CPU 19 on a 16-core part.
	if got := topo.Sibling(3); got != 19 {
		t.Fatalf("Sibling(3) = %d, want 19", got)
	}
	if got := topo.Sibling(19); got != 3 {
		t.Fatalf("Sibling(19) = %d, want 3", got)
	}
	if got := topo.CoreOf(19); got != 3 {
		t.Fatalf("CoreOf(19) = %d, want 3", got)
	}
	if !topo.IsPrimaryThread(3) || topo.IsPrimaryThread(19) {
		t.Fatal("primary-thread classification wrong")
	}
}

func TestIntelTopologyNoSMT(t *testing.T) {
	topo := MustPreset(Intel9700KF)
	if got := topo.NumCPUs(); got != 8 {
		t.Fatalf("NumCPUs = %d, want 8", got)
	}
	if got := topo.Sibling(2); got != -1 {
		t.Fatalf("Sibling(2) = %d, want -1 on non-SMT part", got)
	}
	if got := topo.CoreOf(5); got != 5 {
		t.Fatalf("CoreOf(5) = %d, want 5", got)
	}
}

func TestA64FXReservedMask(t *testing.T) {
	rsv := MustPreset(A64FXRsv)
	if got := rsv.UserMask().Count(); got != 48 {
		t.Fatalf("reserved A64FX user CPUs = %d, want 48", got)
	}
	if rsv.UserMask().Has(48) || rsv.UserMask().Has(49) {
		t.Fatal("reserved cores must be hidden from user mask")
	}
	if got := rsv.ReservedMask().Count(); got != 2 {
		t.Fatalf("reserved mask count = %d, want 2", got)
	}
	norsv := MustPreset(A64FXNoRsv)
	if got := norsv.UserMask().Count(); got != 48 {
		t.Fatalf("no-reserve A64FX user CPUs = %d, want 48", got)
	}
	if !norsv.ReservedMask().Empty() {
		t.Fatal("no-reserve A64FX should have empty reserved mask")
	}
}

func TestMemRateSaturation(t *testing.T) {
	topo := MustPreset(Intel9700KF)
	one := topo.MemRate(1)
	if one != topo.CoreBWGBps {
		t.Fatalf("single stream should be core-capped: %v", one)
	}
	// With 8 streams, each gets 34/8 = 4.25 GB/s < core cap.
	eight := topo.MemRate(8)
	if eight >= one {
		t.Fatal("bandwidth per stream must fall once saturated")
	}
	if total := eight * 8; total < topo.MemBWGBps*0.99 || total > topo.MemBWGBps*1.01 {
		t.Fatalf("aggregate bandwidth %v should equal machine cap %v", total, topo.MemBWGBps)
	}
	if topo.MemRate(0) != topo.CoreBWGBps {
		t.Fatal("MemRate(0) should be the core cap")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Topology{
		{Name: "x", Cores: 0, ThreadsPerCore: 1, BaseGHz: 1, MemBWGBps: 1, CoreBWGBps: 1},
		{Name: "x", Cores: 2, ThreadsPerCore: 3, BaseGHz: 1, MemBWGBps: 1, CoreBWGBps: 1},
		{Name: "x", Cores: 2, ThreadsPerCore: 1, BaseGHz: 0, MemBWGBps: 1, CoreBWGBps: 1},
		{Name: "x", Cores: 2, ThreadsPerCore: 2, BaseGHz: 1, SMTFactor: 1.5, MemBWGBps: 1, CoreBWGBps: 1},
		{Name: "x", Cores: 2, ThreadsPerCore: 1, BaseGHz: 1, MemBWGBps: 0, CoreBWGBps: 1},
		{Name: "x", Cores: 2, ThreadsPerCore: 1, BaseGHz: 1, MemBWGBps: 1, CoreBWGBps: 1, ReservedOSCores: []int{5}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCPUSetBasics(t *testing.T) {
	s := SetOf(0, 3, 64, 100)
	for _, c := range []int{0, 3, 64, 100} {
		if !s.Has(c) {
			t.Fatalf("set should contain %d", c)
		}
	}
	if s.Has(1) || s.Has(63) || s.Has(99) {
		t.Fatal("set contains unexpected CPUs")
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	s = s.Clear(64)
	if s.Has(64) || s.Count() != 3 {
		t.Fatal("Clear failed")
	}
	if got := s.First(); got != 0 {
		t.Fatalf("First = %d, want 0", got)
	}
	if (CPUSet{}).First() != -1 {
		t.Fatal("First of empty set should be -1")
	}
}

func TestCPUSetOps(t *testing.T) {
	a := SetOf(1, 2, 3, 70)
	b := SetOf(2, 3, 4, 71)
	if got := a.And(b); !got.Equal(SetOf(2, 3)) {
		t.Fatalf("And = %v", got)
	}
	if got := a.Or(b); !got.Equal(SetOf(1, 2, 3, 4, 70, 71)) {
		t.Fatalf("Or = %v", got)
	}
	if got := a.Minus(b); !got.Equal(SetOf(1, 70)) {
		t.Fatalf("Minus = %v", got)
	}
}

func TestAllCPUsBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128} {
		s := AllCPUs(n)
		if got := s.Count(); got != n {
			t.Fatalf("AllCPUs(%d).Count() = %d", n, got)
		}
		if n > 0 && (!s.Has(0) || !s.Has(n-1)) {
			t.Fatalf("AllCPUs(%d) missing endpoints", n)
		}
		if n < MaxCPUs && s.Has(n) {
			t.Fatalf("AllCPUs(%d) contains %d", n, n)
		}
	}
}

func TestCPUSetStringRoundTrip(t *testing.T) {
	cases := []CPUSet{
		{},
		SetOf(0),
		SetOf(0, 1, 2, 3),
		SetOf(0, 2, 4, 6),
		SetOf(0, 1, 5, 6, 7, 100),
		AllCPUs(48),
	}
	for _, s := range cases {
		str := s.String()
		got, err := ParseCPUSet(str)
		if err != nil {
			t.Fatalf("ParseCPUSet(%q): %v", str, err)
		}
		if !got.Equal(s) {
			t.Fatalf("round trip %q: got %v want %v", str, got, s)
		}
	}
}

func TestParseCPUSetErrors(t *testing.T) {
	for _, bad := range []string{"a", "5-2", "-1", "200", "1,,2"} {
		if _, err := ParseCPUSet(bad); err == nil {
			t.Errorf("ParseCPUSet(%q) should fail", bad)
		}
	}
}

func TestCPUSetStringFormat(t *testing.T) {
	if got := SetOf(0, 1, 2, 8, 10, 11).String(); got != "0-2,8,10-11" {
		t.Fatalf("String = %q", got)
	}
	if got := (CPUSet{}).String(); got != "none" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: List is sorted, unique, and consistent with Has/Count.
func TestCPUSetListProperty(t *testing.T) {
	f := func(cpus []uint8) bool {
		var s CPUSet
		for _, c := range cpus {
			s = s.Set(int(c) % MaxCPUs)
		}
		l := s.List()
		if len(l) != s.Count() {
			return false
		}
		for i, c := range l {
			if !s.Has(c) {
				return false
			}
			if i > 0 && l[i-1] >= c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Minus then Or with the same operand restores a superset
// relationship, and And is always a subset of both operands.
func TestCPUSetAlgebraProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b CPUSet
		for _, c := range xs {
			a = a.Set(int(c) % MaxCPUs)
		}
		for _, c := range ys {
			b = b.Set(int(c) % MaxCPUs)
		}
		inter := a.And(b)
		if !inter.Minus(a).Empty() || !inter.Minus(b).Empty() {
			return false
		}
		return a.Minus(b).Or(inter).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
