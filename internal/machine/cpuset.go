package machine

import (
	"fmt"
	"math/bits"
	"strings"
)

// CPUSet is an affinity mask over up to 128 logical CPUs. The zero value is
// the empty set. It is a value type: all operations return a new set.
type CPUSet struct {
	lo, hi uint64
}

// MaxCPUs is the largest logical CPU index a CPUSet can hold, plus one.
const MaxCPUs = 128

// AllCPUs returns the set {0, ..., n-1}.
func AllCPUs(n int) CPUSet {
	if n < 0 || n > MaxCPUs {
		panic(fmt.Sprintf("machine: AllCPUs(%d) out of range", n))
	}
	var s CPUSet
	switch {
	case n <= 64:
		if n == 64 {
			s.lo = ^uint64(0)
		} else {
			s.lo = (uint64(1) << uint(n)) - 1
		}
	default:
		s.lo = ^uint64(0)
		if n == 128 {
			s.hi = ^uint64(0)
		} else {
			s.hi = (uint64(1) << uint(n-64)) - 1
		}
	}
	return s
}

// SetOf returns a set containing exactly the given CPUs.
func SetOf(cpus ...int) CPUSet {
	var s CPUSet
	for _, c := range cpus {
		s = s.Set(c)
	}
	return s
}

func check(cpu int) {
	if cpu < 0 || cpu >= MaxCPUs {
		panic(fmt.Sprintf("machine: cpu %d out of range", cpu))
	}
}

// Set returns s with cpu added.
func (s CPUSet) Set(cpu int) CPUSet {
	check(cpu)
	if cpu < 64 {
		s.lo |= 1 << uint(cpu)
	} else {
		s.hi |= 1 << uint(cpu-64)
	}
	return s
}

// Clear returns s with cpu removed.
func (s CPUSet) Clear(cpu int) CPUSet {
	check(cpu)
	if cpu < 64 {
		s.lo &^= 1 << uint(cpu)
	} else {
		s.hi &^= 1 << uint(cpu-64)
	}
	return s
}

// Has reports whether cpu is in the set.
func (s CPUSet) Has(cpu int) bool {
	check(cpu)
	if cpu < 64 {
		return s.lo&(1<<uint(cpu)) != 0
	}
	return s.hi&(1<<uint(cpu-64)) != 0
}

// Count returns the number of CPUs in the set.
func (s CPUSet) Count() int { return bits.OnesCount64(s.lo) + bits.OnesCount64(s.hi) }

// Empty reports whether the set contains no CPUs.
func (s CPUSet) Empty() bool { return s.lo == 0 && s.hi == 0 }

// And returns the intersection of s and o.
func (s CPUSet) And(o CPUSet) CPUSet { return CPUSet{s.lo & o.lo, s.hi & o.hi} }

// Or returns the union of s and o.
func (s CPUSet) Or(o CPUSet) CPUSet { return CPUSet{s.lo | o.lo, s.hi | o.hi} }

// Minus returns s with the CPUs of o removed.
func (s CPUSet) Minus(o CPUSet) CPUSet { return CPUSet{s.lo &^ o.lo, s.hi &^ o.hi} }

// Equal reports whether both sets contain the same CPUs.
func (s CPUSet) Equal(o CPUSet) bool { return s == o }

// List returns the CPUs in the set in ascending order.
func (s CPUSet) List() []int {
	out := make([]int, 0, s.Count())
	for w, word := range [2]uint64{s.lo, s.hi} {
		base := w * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, base+b)
			word &^= 1 << uint(b)
		}
	}
	return out
}

// NextFrom returns the lowest CPU >= from in the set, or -1 when none.
// Together with First it supports allocation-free iteration:
//
//	for cpu := s.First(); cpu >= 0; cpu = s.NextFrom(cpu + 1) { ... }
func (s CPUSet) NextFrom(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= MaxCPUs {
		return -1
	}
	if from < 64 {
		if w := s.lo >> uint(from); w != 0 {
			return from + bits.TrailingZeros64(w)
		}
		if s.hi != 0 {
			return 64 + bits.TrailingZeros64(s.hi)
		}
		return -1
	}
	if w := s.hi >> uint(from-64); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	return -1
}

// First returns the lowest CPU in the set, or -1 when empty.
func (s CPUSet) First() int {
	if s.lo != 0 {
		return bits.TrailingZeros64(s.lo)
	}
	if s.hi != 0 {
		return 64 + bits.TrailingZeros64(s.hi)
	}
	return -1
}

// String renders the set as a Linux-style range list, e.g. "0-3,8,10-11".
func (s CPUSet) String() string {
	cpus := s.List()
	if len(cpus) == 0 {
		return "none"
	}
	var b strings.Builder
	i := 0
	for i < len(cpus) {
		j := i
		for j+1 < len(cpus) && cpus[j+1] == cpus[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", cpus[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", cpus[i], cpus[j])
		}
		i = j + 1
	}
	return b.String()
}

// ParseCPUSet parses a Linux-style range list ("0-3,8") into a CPUSet.
func ParseCPUSet(s string) (CPUSet, error) {
	var out CPUSet
	if s == "" || s == "none" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		var lo, hi int
		if strings.Contains(part, "-") {
			if _, err := fmt.Sscanf(part, "%d-%d", &lo, &hi); err != nil {
				return out, fmt.Errorf("machine: bad cpu range %q: %w", part, err)
			}
		} else {
			if _, err := fmt.Sscanf(part, "%d", &lo); err != nil {
				return out, fmt.Errorf("machine: bad cpu %q: %w", part, err)
			}
			hi = lo
		}
		if lo > hi || lo < 0 || hi >= MaxCPUs {
			return out, fmt.Errorf("machine: bad cpu range %q", part)
		}
		for c := lo; c <= hi; c++ {
			out = out.Set(c)
		}
	}
	return out, nil
}
