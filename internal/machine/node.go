package machine

import "fmt"

// Node is one machine of a simulated cluster: a topology plus per-node
// attributes the cluster layer consumes. Logical CPU numbering is local to
// the node (each node's scheduler sees CPUs [0, Topo.NumCPUs())); the
// cluster assigns each node a disjoint global CPU block for observability
// (see Cluster.CPUBase).
type Node struct {
	// ID is the node's index within its cluster.
	ID int
	// Name labels the node in output ("node0", "node1", ...).
	Name string
	// Topo is the node's machine model. Nodes of one cluster may use
	// heterogeneous presets.
	Topo *Topology
	// NoiseScale multiplies the node's background-noise intensity. 0 and 1
	// both mean the natural level; a straggler node models a misbehaving
	// machine with a value > 1 (e.g. 4).
	NoiseScale float64
}

// EffectiveNoise returns the node's noise multiplier with the "0 means
// natural" convention resolved: it is never below zero and 0 maps to 1.
func (n *Node) EffectiveNoise() float64 {
	if n.NoiseScale == 0 {
		return 1
	}
	return n.NoiseScale
}

// Validate checks the node for internal consistency.
func (n *Node) Validate() error {
	if n.Topo == nil {
		return fmt.Errorf("machine: node %d (%s) has no topology", n.ID, n.Name)
	}
	if err := n.Topo.Validate(); err != nil {
		return fmt.Errorf("machine: node %d (%s): %w", n.ID, n.Name, err)
	}
	if n.NoiseScale < 0 {
		return fmt.Errorf("machine: node %d (%s): NoiseScale = %v, must be >= 0",
			n.ID, n.Name, n.NoiseScale)
	}
	return nil
}

// Cluster is the multi-node counterpart of Topology: an ordered list of
// nodes sharing one simulated datacenter. It carries no clock or scheduler
// state of its own — the cluster layer instantiates one cpusched.Scheduler
// per node against a single shared sim.Engine, so cross-node events stay
// globally ordered and deterministic.
type Cluster struct {
	Nodes []*Node
}

// NewCluster builds a cluster from explicit nodes, assigning IDs and
// default names by position.
func NewCluster(nodes ...*Node) (*Cluster, error) {
	c := &Cluster{Nodes: nodes}
	for i, n := range c.Nodes {
		if n == nil {
			return nil, fmt.Errorf("machine: cluster node %d is nil", i)
		}
		n.ID = i
		if n.Name == "" {
			n.Name = fmt.Sprintf("node%d", i)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// UniformCluster builds an n-node cluster where every node runs the named
// preset at natural noise.
func UniformCluster(n int, preset string) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("machine: cluster needs at least 1 node, got %d", n)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		t, err := Preset(preset)
		if err != nil {
			return nil, err
		}
		nodes[i] = &Node{Topo: t}
	}
	return NewCluster(nodes...)
}

// Validate checks every node and the cluster shape.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("machine: cluster has no nodes")
	}
	for i, n := range c.Nodes {
		if n == nil {
			return fmt.Errorf("machine: cluster node %d is nil", i)
		}
		if n.ID != i {
			return fmt.Errorf("machine: cluster node %d has ID %d", i, n.ID)
		}
		if err := n.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.Nodes) }

// TotalCPUs returns the logical CPU count summed over all nodes.
func (c *Cluster) TotalCPUs() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Topo.NumCPUs()
	}
	return total
}

// CPUBase returns the offset of node i's CPU block in the cluster-global
// CPU numbering (node-local CPU c is global CPU CPUBase(i)+c). The blocks
// are disjoint and ordered by node ID; observability lanes use them to
// keep per-node events separable on one shared recorder.
func (c *Cluster) CPUBase(i int) int {
	base := 0
	for j := 0; j < i; j++ {
		base += c.Nodes[j].Topo.NumCPUs()
	}
	return base
}

// SetStraggler marks node idx as the straggler, running its background
// noise at scale times the natural intensity.
func (c *Cluster) SetStraggler(idx int, scale float64) error {
	if idx < 0 || idx >= len(c.Nodes) {
		return fmt.Errorf("machine: straggler index %d out of range [0,%d)", idx, len(c.Nodes))
	}
	if scale < 0 {
		return fmt.Errorf("machine: straggler scale %v must be >= 0", scale)
	}
	c.Nodes[idx].NoiseScale = scale
	return nil
}
