// Package machine models a multicore shared-memory machine: CPU topology
// with SMT sibling threads (Linux-style logical CPU numbering), a per-core
// compute-rate model with SMT throughput sharing, and a shared
// memory-bandwidth fluid model. It provides presets for the platforms the
// paper evaluates on (AMD Ryzen 9950X3D, Intel i7-9700KF) and for the A64FX
// systems in the motivation section.
package machine

import (
	"fmt"
	"math"
)

// Topology describes the CPU layout of a platform. Logical CPUs are numbered
// the way Linux numbers them on these platforms: CPUs [0, Cores) are the
// first hardware thread of each physical core and CPUs [Cores, 2*Cores) are
// the SMT siblings (when ThreadsPerCore == 2).
type Topology struct {
	// Name identifies the platform, e.g. "amd-9950x3d".
	Name string
	// Cores is the number of physical cores.
	Cores int
	// ThreadsPerCore is 1 (no SMT) or 2.
	ThreadsPerCore int
	// BaseGHz is the sustained all-core clock in GHz.
	BaseGHz float64
	// SMTFactor is the per-thread throughput multiplier when both siblings
	// of a core are busy (e.g. 0.62 means each sibling runs at 62% of the
	// single-thread rate, 1.24x combined core throughput).
	SMTFactor float64
	// MemBWGBps is the total sustainable memory bandwidth in GB/s.
	MemBWGBps float64
	// CoreBWGBps is the bandwidth a single core can draw in GB/s.
	CoreBWGBps float64
	// ReservedOSCores lists physical cores hidden from user workloads and
	// dedicated to the OS (firmware-level reservation, as on the A64FX
	// "reserved" system in the paper's motivation). Empty on desktops.
	ReservedOSCores []int
}

// Validate checks the topology for internal consistency.
func (t *Topology) Validate() error {
	switch {
	case t.Cores <= 0:
		return fmt.Errorf("machine: %s: Cores = %d, must be positive", t.Name, t.Cores)
	case t.ThreadsPerCore != 1 && t.ThreadsPerCore != 2:
		return fmt.Errorf("machine: %s: ThreadsPerCore = %d, must be 1 or 2", t.Name, t.ThreadsPerCore)
	case t.BaseGHz <= 0:
		return fmt.Errorf("machine: %s: BaseGHz = %v, must be positive", t.Name, t.BaseGHz)
	case t.ThreadsPerCore == 2 && (t.SMTFactor <= 0 || t.SMTFactor > 1):
		return fmt.Errorf("machine: %s: SMTFactor = %v, must be in (0,1]", t.Name, t.SMTFactor)
	case t.MemBWGBps <= 0 || t.CoreBWGBps <= 0:
		return fmt.Errorf("machine: %s: bandwidth must be positive", t.Name)
	}
	for _, c := range t.ReservedOSCores {
		if c < 0 || c >= t.Cores {
			return fmt.Errorf("machine: %s: reserved core %d out of range", t.Name, c)
		}
	}
	return nil
}

// NumCPUs returns the number of logical CPUs.
func (t *Topology) NumCPUs() int { return t.Cores * t.ThreadsPerCore }

// CoreOf returns the physical core of logical CPU cpu.
func (t *Topology) CoreOf(cpu int) int {
	if t.ThreadsPerCore == 1 {
		return cpu
	}
	return cpu % t.Cores
}

// Sibling returns the SMT sibling of cpu, or -1 when there is none.
func (t *Topology) Sibling(cpu int) int {
	if t.ThreadsPerCore == 1 {
		return -1
	}
	if cpu < t.Cores {
		return cpu + t.Cores
	}
	return cpu - t.Cores
}

// IsPrimaryThread reports whether cpu is the first hardware thread of its
// core.
func (t *Topology) IsPrimaryThread(cpu int) bool { return cpu < t.Cores }

// CyclesPerNs returns the compute rate of one hardware thread in cycles per
// simulated nanosecond, before SMT sharing.
func (t *Topology) CyclesPerNs() float64 { return t.BaseGHz }

// UserMask returns the mask of logical CPUs visible to user workloads,
// excluding reserved OS cores (both hardware threads of a reserved core are
// hidden, as on the A64FX "reserved" system).
func (t *Topology) UserMask() CPUSet {
	m := AllCPUs(t.NumCPUs())
	for _, core := range t.ReservedOSCores {
		m = m.Clear(core)
		if t.ThreadsPerCore == 2 {
			m = m.Clear(core + t.Cores)
		}
	}
	return m
}

// ReservedMask returns the mask of logical CPUs reserved for the OS. It is
// empty on systems without firmware core reservation.
func (t *Topology) ReservedMask() CPUSet {
	var m CPUSet
	for _, core := range t.ReservedOSCores {
		m = m.Set(core)
		if t.ThreadsPerCore == 2 {
			m = m.Set(core + t.Cores)
		}
	}
	return m
}

// BytesPerNsCore returns the per-core bandwidth cap in bytes per nanosecond.
func (t *Topology) BytesPerNsCore() float64 { return t.CoreBWGBps }

// BytesPerNsTotal returns the machine bandwidth cap in bytes per nanosecond.
func (t *Topology) BytesPerNsTotal() float64 { return t.MemBWGBps }

// MemRate returns the per-stream memory bandwidth in bytes/ns when
// nStreams tasks are streaming concurrently: each stream gets an equal share
// of the machine bandwidth, capped by what a single core can draw.
func (t *Topology) MemRate(nStreams int) float64 {
	if nStreams <= 0 {
		return t.BytesPerNsCore()
	}
	share := t.BytesPerNsTotal() / float64(nStreams)
	return math.Min(t.BytesPerNsCore(), share)
}
