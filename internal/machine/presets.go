package machine

import "fmt"

// Preset names accepted by Preset.
const (
	AMD9950X3D  = "amd-9950x3d"
	Intel9700KF = "intel-9700kf"
	A64FXRsv    = "a64fx-reserved"
	A64FXNoRsv  = "a64fx-noreserve"
	TinyTest    = "tiny-test" // 4 cores, no SMT; fast unit-test machine
	TinySMTTest = "tiny-smt-test"
)

// Preset returns the topology for a named platform. The desktop presets
// match the hardware in the paper's §5; the A64FX presets match the
// motivation section (§3): 48 user cores, with the "reserved" variant hiding
// two additional OS cores at firmware level.
func Preset(name string) (*Topology, error) {
	var t Topology
	switch name {
	case AMD9950X3D:
		// 16 physical cores, 32 logical (SMT on), Zen 5. DDR5-5600 dual
		// channel ~= 89.6 GB/s peak; ~70 GB/s sustained triad.
		t = Topology{
			Name:           name,
			Cores:          16,
			ThreadsPerCore: 2,
			BaseGHz:        5.0,
			SMTFactor:      0.62,
			MemBWGBps:      70.0,
			CoreBWGBps:     38.0,
		}
	case Intel9700KF:
		// 8 physical cores, no SMT, fixed 4.7 GHz (paper's configuration).
		// DDR4-2666 dual channel ~= 41.6 GB/s peak; ~34 GB/s sustained.
		t = Topology{
			Name:           name,
			Cores:          8,
			ThreadsPerCore: 1,
			BaseGHz:        4.7,
			SMTFactor:      1.0,
			MemBWGBps:      34.0,
			CoreBWGBps:     14.0,
		}
	case A64FXRsv, A64FXNoRsv:
		// Fujitsu A64FX: 48 compute cores at 2.2 GHz, HBM2 ~830 GB/s
		// sustained. The "reserved" configuration additionally exposes two
		// cores that are firmware-dedicated to the OS and invisible to user
		// applications; we model them as cores 48 and 49.
		t = Topology{
			Name:           name,
			Cores:          48,
			ThreadsPerCore: 1,
			BaseGHz:        2.2,
			SMTFactor:      1.0,
			MemBWGBps:      830.0,
			CoreBWGBps:     45.0,
		}
		if name == A64FXRsv {
			t.Cores = 50
			t.ReservedOSCores = []int{48, 49}
		}
	case TinyTest:
		t = Topology{
			Name:           name,
			Cores:          4,
			ThreadsPerCore: 1,
			BaseGHz:        3.0,
			SMTFactor:      1.0,
			MemBWGBps:      20.0,
			CoreBWGBps:     10.0,
		}
	case TinySMTTest:
		t = Topology{
			Name:           name,
			Cores:          4,
			ThreadsPerCore: 2,
			BaseGHz:        3.0,
			SMTFactor:      0.6,
			MemBWGBps:      20.0,
			CoreBWGBps:     10.0,
		}
	default:
		return nil, fmt.Errorf("machine: unknown preset %q", name)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// MustPreset is Preset that panics on error; for use with known-good names.
func MustPreset(name string) *Topology {
	t, err := Preset(name)
	if err != nil {
		panic(err)
	}
	return t
}

// PresetNames lists the available platform presets.
func PresetNames() []string {
	return []string{AMD9950X3D, Intel9700KF, A64FXRsv, A64FXNoRsv, TinyTest, TinySMTTest}
}
