package machine

import (
	"reflect"
	"testing"
)

func TestCPUSetHighWord(t *testing.T) {
	// CPUs >= 64 live in the second word; every operation must cross the
	// boundary cleanly.
	s := SetOf(63, 64, 100, 127)
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	for _, c := range []int{63, 64, 100, 127} {
		if !s.Has(c) {
			t.Fatalf("Has(%d) = false", c)
		}
	}
	if s.Has(65) || s.Has(126) {
		t.Fatal("set contains CPUs it should not")
	}
	s = s.Clear(100)
	if s.Has(100) || s.Count() != 3 {
		t.Fatalf("Clear(100) failed: %v", s)
	}
	if got, want := s.List(), []int{63, 64, 127}; !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
}

func TestCPUSetIteration(t *testing.T) {
	s := SetOf(2, 63, 64, 90)
	var got []int
	for cpu := s.First(); cpu >= 0; cpu = s.NextFrom(cpu + 1) {
		got = append(got, cpu)
	}
	if want := []int{2, 63, 64, 90}; !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration order %v, want %v", got, want)
	}
	var empty CPUSet
	if empty.First() != -1 {
		t.Fatalf("empty First = %d, want -1", empty.First())
	}
	if s.NextFrom(91) != -1 {
		t.Fatalf("NextFrom past last = %d, want -1", s.NextFrom(91))
	}
	if s.NextFrom(-5) != 2 {
		t.Fatalf("NextFrom(-5) = %d, want 2 (clamped to 0)", s.NextFrom(-5))
	}
	if s.NextFrom(MaxCPUs) != -1 {
		t.Fatalf("NextFrom(MaxCPUs) = %d, want -1", s.NextFrom(MaxCPUs))
	}
	if s.NextFrom(63) != 63 {
		t.Fatalf("NextFrom is inclusive: got %d, want 63", s.NextFrom(63))
	}
}

func TestCPUSetHighRangeStringRoundTrip(t *testing.T) {
	s := SetOf(60, 61, 62, 63, 64, 65, 120)
	str := s.String()
	if str != "60-65,120" {
		t.Fatalf("String = %q, want \"60-65,120\"", str)
	}
	back, err := ParseCPUSet(str)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip changed set: %v -> %v", s, back)
	}
}

func TestCPUSetOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SetOf(MaxCPUs) },
		func() { SetOf(-1) },
		func() { AllCPUs(MaxCPUs + 1) },
		func() { CPUSet{}.Has(MaxCPUs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range cpu")
				}
			}()
			f()
		}()
	}
}
