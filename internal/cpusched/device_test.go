package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// testTopo builds a 1 GHz topology (1 cycle/ns) so compute demands map 1:1
// to nanoseconds in hand-computed schedules.
func testTopo(nCPU int) *machine.Topology {
	return &machine.Topology{
		Name:           "unit-1ghz",
		Cores:          nCPU,
		ThreadsPerCore: 1,
		BaseGHz:        1,
		SMTFactor:      0.6,
		MemBWGBps:      100,
		CoreBWGBps:     50,
	}
}

func newTestSched(nCPU int, opt Options) (*sim.Engine, *Scheduler) {
	eng := sim.NewEngine()
	return eng, New(eng, testTopo(nCPU), opt)
}

// TestDeviceBlockWake pins the arithmetic of one blocking request: compute,
// block on a latency+bandwidth device, compute again. The task must be off
// the CPU during service, wake at the end of the completion handler, and
// finish at a hand-computed instant.
func TestDeviceBlockWake(t *testing.T) {
	eng, s := newTestSched(1, Options{})
	d := s.AddDevice(DeviceSpec{
		Name:       "disk0",
		Latency:    5 * sim.Microsecond,
		BytesPerNs: 2, // 2 B/ns -> 8000 B = 4000 ns
		IRQDur:     1 * sim.Microsecond,
	})
	tk := s.SpawnSeq(TaskSpec{Name: "io"},
		ReqCompute(1000),
		ReqBlockOn(d, 8000),
		ReqCompute(500),
	)
	var doneAt sim.Time
	tk.OnDone(func() { doneAt = eng.Now() })
	eng.Run()

	// 1000 compute + (5000 latency + 4000 transfer) service + 1000 IRQ
	// handler + 500 compute = 11500.
	if want := sim.Time(11500); doneAt != want {
		t.Fatalf("done at %d, want %d", doneAt, want)
	}
	if d.Requests != 1 {
		t.Fatalf("device completed %d requests, want 1", d.Requests)
	}
	if want := sim.Time(9000); d.BusyTime != want {
		t.Fatalf("device busy %d, want %d", d.BusyTime, want)
	}
	// The CPU was idle during the wait: only the two compute segments (and
	// no spin) are charged.
	if want := sim.Time(1500); tk.CPUTime != want {
		t.Fatalf("task CPU time %d, want %d", tk.CPUTime, want)
	}
}

// TestDeviceFIFOQueue checks serial FIFO service: two tasks submitting
// back-to-back requests complete in submission order, the second delayed by
// the full service time of the first.
func TestDeviceFIFOQueue(t *testing.T) {
	eng, s := newTestSched(2, Options{})
	d := s.AddDevice(DeviceSpec{Name: "disk0", Latency: 1000, IRQDur: 100})

	var order []string
	spawn := func(name string, pre float64) {
		tk := s.SpawnSeq(TaskSpec{Name: name},
			ReqCompute(pre),
			ReqBlockOn(d, 0),
		)
		tk.OnDone(func() { order = append(order, name) })
	}
	spawn("a", 100)
	spawn("b", 200)
	eng.Run()

	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("completion order %v, want [a b]", order)
	}
	if d.Requests != 2 {
		t.Fatalf("device completed %d requests, want 2", d.Requests)
	}
}

// TestDeviceWakeDelayedByIRQNoise is the tentpole's causal mechanism in
// miniature: a pending noise interrupt on the completion CPU queues the
// completion handler behind it, delaying the blocked task's wakeup by the
// noise duration. CPU-bound tasks on another CPU would be untouched.
func TestDeviceWakeDelayedByIRQNoise(t *testing.T) {
	run := func(noise sim.Time) sim.Time {
		eng, s := newTestSched(1, Options{})
		d := s.AddDevice(DeviceSpec{Name: "nvme0", Latency: 1000, IRQDur: 100})
		tk := s.SpawnSeq(TaskSpec{Name: "io"}, ReqBlockOn(d, 0))
		var doneAt sim.Time
		tk.OnDone(func() { doneAt = eng.Now() })
		if noise > 0 {
			// Noise interrupt raised just before the completion fires.
			eng.At(999, func() { s.InjectIRQ(0, ClassIRQ, "local_timer", noise) })
		}
		eng.Run()
		return doneAt
	}
	quiet := run(0)
	noisy := run(5000)
	// The completion at t=1000 queues behind the noise handler running
	// [999, 5999); the wakeup slips by the remaining noise time.
	if got, want := noisy-quiet, sim.Time(4999); got != want {
		t.Fatalf("wakeup delayed by %d under IRQ noise, want %d (quiet=%d noisy=%d)",
			got, want, quiet, noisy)
	}
}

// TestDeviceKillDropsWakeup kills a blocked task mid-flight: service still
// completes (the queue must stay in order for later requests), but no
// wakeup is delivered and the run terminates cleanly.
func TestDeviceKillDropsWakeup(t *testing.T) {
	eng, s := newTestSched(1, Options{})
	d := s.AddDevice(DeviceSpec{Name: "disk0", Latency: 1000, IRQDur: 100})
	victim := s.SpawnSeq(TaskSpec{Name: "victim"}, ReqBlockOn(d, 0))
	other := s.SpawnSeq(TaskSpec{Name: "other"},
		ReqCompute(10),
		ReqBlockOn(d, 0),
	)
	eng.At(500, func() { s.Kill(victim) })
	eng.Run()

	if victim.State() != StateDone {
		t.Fatalf("victim state %v, want done", victim.State())
	}
	if other.State() != StateDone {
		t.Fatalf("other state %v, want done (its request must still be served)", other.State())
	}
	if d.Requests != 2 {
		t.Fatalf("device completed %d requests, want 2 (killed request still serviced)", d.Requests)
	}
}
