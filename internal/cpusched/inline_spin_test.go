package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// The §4 active-wait pathology on the inline-program path: a spinning
// barrier waiter preempted by FIFO noise must burn CPU only while it
// actually holds the CPU, and a barrier release that lands while the
// spinner is preempted must clear the spin without granting it CPU time.
// Both behaviors existed on the goroutine path; these tests pin them for
// programs spawned via SpawnSeq.

func TestInlineSpinnerPreemptedByFIFO(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(2)
	spinner := s.SpawnSeq(TaskSpec{Name: "spinner", Kind: KindWorkload,
		Affinity: machine.SetOf(0)}, ReqBarrier(b, true))
	// FIFO noise preempts the spinner at 10ms and computes for 20ms.
	noise := s.SpawnSeq(TaskSpec{Name: "noise", Kind: KindNoiseThread,
		Policy: PolicyFIFO, RTPrio: 50, Affinity: machine.SetOf(0)},
		ReqSleepUntil(10*sim.Millisecond), ReqCompute(60e6))
	late := s.SpawnSeq(TaskSpec{Name: "late", Kind: KindWorkload,
		Affinity: machine.SetOf(1)},
		ReqSleepUntil(50*sim.Millisecond), ReqBarrier(b, true))
	s.eng.Run()
	if !spinner.Done() || !noise.Done() || !late.Done() {
		t.Fatal("tasks did not finish")
	}
	within(t, s.eng.Now(), 50*sim.Millisecond, 0.001, "release time")
	// Spin split: 0-10ms and 30-50ms on CPU, not the 20ms spent preempted.
	within(t, spinner.CPUTime, 30*sim.Millisecond, 0.001, "spinner CPU time")
	within(t, noise.CPUTime, 20*sim.Millisecond, 0.001, "noise CPU time")
	if s.GoroutineHandoffs != 0 {
		t.Fatalf("GoroutineHandoffs = %d, want 0 (all tasks are programs)", s.GoroutineHandoffs)
	}
	if s.InlineDispatches == 0 {
		t.Fatal("InlineDispatches = 0, want > 0")
	}
	s.Shutdown()
}

func TestInlineSpinnerReleasedWhilePreempted(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(2)
	spinner := s.SpawnSeq(TaskSpec{Name: "spinner", Kind: KindWorkload,
		Affinity: machine.SetOf(0)}, ReqBarrier(b, true))
	noise := s.SpawnSeq(TaskSpec{Name: "noise", Kind: KindNoiseThread,
		Policy: PolicyFIFO, RTPrio: 50, Affinity: machine.SetOf(0)},
		ReqSleepUntil(10*sim.Millisecond), ReqCompute(60e6))
	// Last arriver hits the barrier at 25ms, while the spinner is preempted
	// (noise runs 10-30ms). The spinner's pending spin must be cleared; it
	// completes when redispatched after the noise burst, having burned only
	// its pre-preemption 10ms.
	late := s.SpawnSeq(TaskSpec{Name: "late", Kind: KindWorkload,
		Affinity: machine.SetOf(1)},
		ReqSleepUntil(25*sim.Millisecond), ReqBarrier(b, true))
	var spinnerEnd, lateEnd sim.Time
	spinner.OnDone(func() { spinnerEnd = s.Now() })
	late.OnDone(func() { lateEnd = s.Now() })
	s.eng.Run()
	if !spinner.Done() || !noise.Done() || !late.Done() {
		t.Fatal("tasks did not finish")
	}
	if b.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", b.Generation())
	}
	within(t, lateEnd, 25*sim.Millisecond, 0.001, "last arriver end")
	within(t, spinnerEnd, 30*sim.Millisecond, 0.001, "preempted spinner end")
	within(t, spinner.CPUTime, 10*sim.Millisecond, 0.001, "spinner CPU time")
	s.Shutdown()
}
