package cpusched

// Per-CPU run queues. Each queue is a binary min-heap of tasks ordered by
// the class's dispatch key, replacing the previous O(n) linear scans in
// pickNext/removeQueued with O(log n) operations. Both keys are strict
// total orders (enqueueSeq values are unique per task), so heap pop order
// is bit-identical to the order the old full scans selected.
//
// Keys are immutable while a task is queued: vruntime only advances while
// running (and is clamped/adjusted before push), rtprio only changes via
// reqSetPolicy on a running task, and enqueueSeq is reassigned before
// requeue where a bump is intended. The heap therefore never needs a fix
// operation.

// fifoLess orders SCHED_FIFO tasks: higher rtprio first, FIFO by enqueue
// sequence within a priority.
func fifoLess(a, b *Task) bool {
	if a.rtprio != b.rtprio {
		return a.rtprio > b.rtprio
	}
	return a.enqueueSeq < b.enqueueSeq
}

// fairLess orders fair-class tasks: lowest vruntime first, enqueue sequence
// as the deterministic tie-break.
func fairLess(a, b *Task) bool {
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.enqueueSeq < b.enqueueSeq
}

// taskQueue is a min-heap of runnable tasks. Tasks track their heap
// position in qIndex, enabling O(log n) removal of interior elements
// (balancer migration, Kill of a queued task).
type taskQueue struct {
	h    []*Task
	less func(a, b *Task) bool
}

func (q *taskQueue) len() int { return len(q.h) }

// reset empties the queue, keeping its backing array warm for reuse.
func (q *taskQueue) reset() {
	for i := range q.h {
		q.h[i] = nil
	}
	q.h = q.h[:0]
}

// tasks exposes the heap array for order-independent scans (max-vruntime
// on yield, balancer victim search). Callers must not assume any ordering
// beyond the heap invariant and must not mutate the slice.
func (q *taskQueue) tasks() []*Task { return q.h }

func (q *taskQueue) push(t *Task) {
	t.qIndex = len(q.h)
	q.h = append(q.h, t)
	q.siftUp(t.qIndex)
}

// pop removes and returns the minimum task, or nil when empty.
func (q *taskQueue) pop() *Task {
	if len(q.h) == 0 {
		return nil
	}
	t := q.h[0]
	n := len(q.h) - 1
	if n > 0 {
		q.h[0] = q.h[n]
		q.h[0].qIndex = 0
	}
	q.h[n] = nil
	q.h = q.h[:n]
	if n > 1 {
		q.siftDown(0)
	}
	t.qIndex = -1
	return t
}

// remove deletes t from the queue if present; it reports whether it was.
func (q *taskQueue) remove(t *Task) bool {
	i := t.qIndex
	if i < 0 || i >= len(q.h) || q.h[i] != t {
		return false
	}
	n := len(q.h) - 1
	if i != n {
		q.h[i] = q.h[n]
		q.h[i].qIndex = i
	}
	q.h[n] = nil
	q.h = q.h[:n]
	if i != n {
		if !q.siftUp(i) {
			q.siftDown(i)
		}
	}
	t.qIndex = -1
	return true
}

// siftUp restores heap order moving h[i] toward the root; it reports
// whether the element moved.
func (q *taskQueue) siftUp(i int) bool {
	h := q.h
	t := h[i]
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(t, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].qIndex = i
		i = p
		moved = true
	}
	h[i] = t
	t.qIndex = i
	return moved
}

// siftDown restores heap order moving h[i] toward the leaves.
func (q *taskQueue) siftDown(i int) {
	h := q.h
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(h[r], h[l]) {
			m = r
		}
		if !q.less(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		h[i].qIndex = i
		h[m].qIndex = m
		i = m
	}
}
