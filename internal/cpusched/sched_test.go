package cpusched

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// newTiny builds a 4-core, no-SMT, 3 GHz scheduler for tests.
func newTiny(opt Options) *Scheduler {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	return New(eng, topo, opt)
}

func noBalance() Options {
	o := Defaults()
	o.BalanceInterval = 0
	o.MigrationCost = 0
	return o
}

// runToDone drives the engine until task t completes and returns the time.
func runToDone(s *Scheduler, t *Task) sim.Time {
	s.eng.RunWhile(func() bool { return !t.Done() })
	return s.eng.Now()
}

func computeBody(cycles float64) func(*Ctx) {
	return func(c *Ctx) { c.Compute(cycles) }
}

func within(t *testing.T, got, want sim.Time, tolFrac float64, what string) {
	t.Helper()
	tol := float64(want) * tolFrac
	if math.Abs(float64(got-want)) > tol {
		t.Fatalf("%s = %v, want %v (±%.1f%%)", what, got, want, tolFrac*100)
	}
}

func TestSingleTaskComputeDuration(t *testing.T) {
	s := newTiny(noBalance())
	// 3e9 cycles at 3 GHz = 1 second.
	task := s.Spawn(TaskSpec{Name: "w"}, computeBody(3e9))
	got := runToDone(s, task)
	if got != sim.Second {
		t.Fatalf("exec time = %v, want exactly 1s", got)
	}
	if task.CPUTime != sim.Second {
		t.Fatalf("CPUTime = %v, want 1s", task.CPUTime)
	}
	s.Shutdown()
}

func TestTwoFairTasksShareCPU(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	a := s.Spawn(TaskSpec{Name: "a", Affinity: aff}, computeBody(3e8)) // 100ms of work
	b := s.Spawn(TaskSpec{Name: "b", Affinity: aff}, computeBody(3e8))
	s.eng.RunWhile(func() bool { return !a.Done() || !b.Done() })
	// Both pinned to CPU 0: combined 200ms wall time; the later finisher
	// ends at ~200ms and each got ~100ms CPU.
	within(t, s.eng.Now(), 200*sim.Millisecond, 0.02, "combined wall time")
	within(t, a.CPUTime, 100*sim.Millisecond, 0.01, "a CPUTime")
	within(t, b.CPUTime, 100*sim.Millisecond, 0.01, "b CPUTime")
	s.Shutdown()
}

func TestFairTasksInterleave(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	a := s.Spawn(TaskSpec{Name: "a", Affinity: aff}, computeBody(3e8))
	b := s.Spawn(TaskSpec{Name: "b", Affinity: aff}, computeBody(3e8))
	s.eng.RunWhile(func() bool { return !a.Done() || !b.Done() })
	// With a 3ms slice both tasks must have been preempted repeatedly, not
	// run to completion back to back.
	if a.Preempted == 0 && b.Preempted == 0 {
		t.Fatal("fair tasks should round-robin via slice expiry")
	}
	// Finish times should be within one slice of each other.
	s.Shutdown()
}

func TestFIFOPreemptsFair(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(1)
	w := s.Spawn(TaskSpec{Name: "w", Affinity: aff}, computeBody(3e8)) // 100ms
	// At t=10ms, a FIFO task arrives on the same CPU for 50ms.
	var fifoEnd sim.Time
	s.eng.At(10*sim.Millisecond, func() {
		f := s.Spawn(TaskSpec{Name: "rt", Policy: PolicyFIFO, RTPrio: 50, Affinity: aff},
			computeBody(150e6)) // 50ms
		f.OnDone(func() { fifoEnd = s.Now() })
	})
	got := runToDone(s, w)
	// FIFO runs 10..60ms uninterrupted; workload finishes at 150ms.
	within(t, fifoEnd, 60*sim.Millisecond, 0.001, "fifo end")
	within(t, got, 150*sim.Millisecond, 0.001, "workload end")
	if w.Preempted == 0 {
		t.Fatal("workload should have been preempted by FIFO noise")
	}
	s.Shutdown()
}

func TestFIFOPriorityOrdering(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	var order []string
	mk := func(name string, prio int) {
		tk := s.Spawn(TaskSpec{Name: name, Policy: PolicyFIFO, RTPrio: prio, Affinity: aff},
			computeBody(30e6)) // 10ms each
		tk.OnDone(func() { order = append(order, name) })
	}
	// Occupy the CPU with a low-prio FIFO task first, then wake two more.
	mk("low", 1)
	s.eng.At(1*sim.Millisecond, func() { mk("high", 90) })
	s.eng.At(2*sim.Millisecond, func() { mk("mid", 50) })
	s.eng.Run()
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
	s.Shutdown()
}

func TestHigherFIFOPreemptsLowerFIFO(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	low := s.Spawn(TaskSpec{Name: "low", Policy: PolicyFIFO, RTPrio: 10, Affinity: aff},
		computeBody(300e6)) // 100ms
	s.eng.At(20*sim.Millisecond, func() {
		s.Spawn(TaskSpec{Name: "high", Policy: PolicyFIFO, RTPrio: 20, Affinity: aff},
			computeBody(30e6)) // 10ms
	})
	got := runToDone(s, low)
	within(t, got, 110*sim.Millisecond, 0.001, "low prio end")
	if low.Preempted != 1 {
		t.Fatalf("low should be preempted exactly once, got %d", low.Preempted)
	}
	s.Shutdown()
}

func TestIRQPausesTask(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(2)
	w := s.Spawn(TaskSpec{Name: "w", Affinity: aff}, computeBody(30e6)) // 10ms
	s.eng.At(2*sim.Millisecond, func() {
		s.InjectIRQ(2, ClassIRQ, "local_timer", 3*sim.Millisecond)
	})
	got := runToDone(s, w)
	within(t, got, 13*sim.Millisecond, 0.001, "exec with irq pause")
	s.Shutdown()
}

func TestIRQPausesFIFO(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	w := s.Spawn(TaskSpec{Name: "rt", Policy: PolicyFIFO, RTPrio: 99, Affinity: aff},
		computeBody(30e6)) // 10ms
	s.eng.At(1*sim.Millisecond, func() {
		s.InjectIRQ(0, ClassIRQ, "local_timer", 1*sim.Millisecond)
	})
	got := runToDone(s, w)
	within(t, got, 11*sim.Millisecond, 0.001, "FIFO paused by irq")
	s.Shutdown()
}

func TestIRQQueueing(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "w", Affinity: machine.SetOf(0)}, computeBody(30e6))
	s.eng.At(1*sim.Millisecond, func() {
		s.InjectIRQ(0, ClassIRQ, "a", 2*sim.Millisecond)
		s.InjectIRQ(0, ClassSoftIRQ, "b", 3*sim.Millisecond)
	})
	got := runToDone(s, w)
	// Both irqs run sequentially: 5ms total pause.
	within(t, got, 15*sim.Millisecond, 0.001, "sequential irqs")
	s.Shutdown()
}

func TestSMTSharing(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinySMTTest) // 4c/2t, SMTFactor 0.6
	s := New(eng, topo, noBalance())
	// CPUs 0 and 4 are siblings of core 0.
	a := s.Spawn(TaskSpec{Name: "a", Affinity: machine.SetOf(0)}, computeBody(3e8))
	b := s.Spawn(TaskSpec{Name: "b", Affinity: machine.SetOf(4)}, computeBody(3e8))
	eng.RunWhile(func() bool { return !a.Done() || !b.Done() })
	// Each runs at 0.6x while both busy: 100ms / 0.6 = 166.7ms.
	solo := 100 * sim.Millisecond
	want := sim.Time(float64(solo) / 0.6)
	within(t, eng.Now(), want, 0.01, "smt-shared duration")
	s.Shutdown()
}

func TestSMTSiblingIdleFullSpeed(t *testing.T) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinySMTTest)
	s := New(eng, topo, noBalance())
	a := s.Spawn(TaskSpec{Name: "a", Affinity: machine.SetOf(0)}, computeBody(3e8))
	got := runToDone(s, a)
	within(t, got, 100*sim.Millisecond, 0.001, "solo on SMT core")
	s.Shutdown()
}

func TestMemoryBandwidthSharing(t *testing.T) {
	s := newTiny(noBalance()) // total 20 GB/s, core cap 10 GB/s
	var tasks []*Task
	for i := 0; i < 4; i++ {
		aff := machine.SetOf(i)
		tasks = append(tasks, s.Spawn(TaskSpec{Name: "m", Affinity: aff},
			func(c *Ctx) { c.Memory(50e6) })) // 50 MB each
	}
	s.eng.RunWhile(func() bool {
		for _, tk := range tasks {
			if !tk.Done() {
				return true
			}
		}
		return false
	})
	// 4 streams share 20 GB/s -> 5 GB/s each -> 50e6/5 = 10ms.
	within(t, s.eng.Now(), 10*sim.Millisecond, 0.01, "4-stream memory time")
	s.Shutdown()
}

func TestMemorySingleStreamCoreCapped(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "m", Affinity: machine.SetOf(0)},
		func(c *Ctx) { c.Memory(50e6) })
	got := runToDone(s, w)
	// Single stream capped at 10 GB/s -> 5ms.
	within(t, got, 5*sim.Millisecond, 0.01, "single-stream memory time")
	s.Shutdown()
}

func TestSleepWakes(t *testing.T) {
	s := newTiny(noBalance())
	var woke sim.Time
	w := s.Spawn(TaskSpec{Name: "sleeper"}, func(c *Ctx) {
		c.Sleep(42 * sim.Millisecond)
		woke = c.Now()
	})
	runToDone(s, w)
	if woke != 42*sim.Millisecond {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
	s.Shutdown()
}

func TestSleepReleasesCPU(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	sleeper := s.Spawn(TaskSpec{Name: "sleeper", Affinity: aff}, func(c *Ctx) {
		c.Sleep(100 * sim.Millisecond)
	})
	worker := s.Spawn(TaskSpec{Name: "worker", Affinity: aff}, computeBody(30e6)) // 10ms
	got := runToDone(s, worker)
	within(t, got, 10*sim.Millisecond, 0.001, "worker unblocked by sleeper")
	runToDone(s, sleeper)
	s.Shutdown()
}

func TestBarrierSpinReleasesAll(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(3)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		delay := sim.Time(i) * 10 * sim.Millisecond
		aff := machine.SetOf(i)
		tk := s.Spawn(TaskSpec{Name: "t", Affinity: aff}, func(c *Ctx) {
			c.Sleep(delay)
			c.Barrier(b, true)
		})
		tk.OnDone(func() { ends = append(ends, s.Now()) })
	}
	s.eng.Run()
	if len(ends) != 3 {
		t.Fatalf("only %d tasks finished", len(ends))
	}
	for _, e := range ends {
		if e != 20*sim.Millisecond {
			t.Fatalf("barrier released at %v, want 20ms", e)
		}
	}
	if b.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", b.Generation())
	}
	s.Shutdown()
}

func TestBarrierSpinBurnsCPU(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(2)
	early := s.Spawn(TaskSpec{Name: "early", Affinity: machine.SetOf(0)}, func(c *Ctx) {
		c.Barrier(b, true)
	})
	s.Spawn(TaskSpec{Name: "late", Affinity: machine.SetOf(1)}, func(c *Ctx) {
		c.Sleep(50 * sim.Millisecond)
		c.Barrier(b, true)
	})
	s.eng.Run()
	// The early task spun for the full 50ms wait.
	within(t, early.CPUTime, 50*sim.Millisecond, 0.001, "spin CPU time")
	s.Shutdown()
}

func TestBarrierPassiveReleasesCPU(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(2)
	aff := machine.SetOf(0)
	waiter := s.Spawn(TaskSpec{Name: "waiter", Affinity: aff}, func(c *Ctx) {
		c.Barrier(b, false)
	})
	// A worker shares CPU 0 and must run at full speed while waiter blocks.
	worker := s.Spawn(TaskSpec{Name: "worker", Affinity: aff}, computeBody(30e6))
	s.Spawn(TaskSpec{Name: "late", Affinity: machine.SetOf(1)}, func(c *Ctx) {
		c.Sleep(40 * sim.Millisecond)
		c.Barrier(b, false)
	})
	runToDone(s, worker)
	within(t, s.eng.Now(), 10*sim.Millisecond, 0.01, "worker time with passive waiter")
	runToDone(s, waiter)
	within(t, s.eng.Now(), 40*sim.Millisecond, 0.001, "waiter release")
	if waiter.CPUTime > sim.Millisecond {
		t.Fatalf("passive waiter burned %v CPU", waiter.CPUTime)
	}
	s.Shutdown()
}

func TestBarrierReuse(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(2)
	const rounds = 5
	mk := func(cpu int) *Task {
		return s.Spawn(TaskSpec{Name: "t", Affinity: machine.SetOf(cpu)}, func(c *Ctx) {
			for r := 0; r < rounds; r++ {
				c.Compute(3e6) // 1ms
				c.Barrier(b, false)
			}
		})
	}
	a, bb := mk(0), mk(1)
	s.eng.RunWhile(func() bool { return !a.Done() || !bb.Done() })
	if b.Generation() != rounds {
		t.Fatalf("generation = %d, want %d", b.Generation(), rounds)
	}
	within(t, s.eng.Now(), 5*sim.Millisecond, 0.01, "lockstep rounds")
	s.Shutdown()
}

func TestWakePlacementPrefersIdle(t *testing.T) {
	s := newTiny(noBalance())
	// Fill CPUs 0 and 1.
	s.Spawn(TaskSpec{Name: "x", Affinity: machine.SetOf(0)}, computeBody(3e8))
	s.Spawn(TaskSpec{Name: "y", Affinity: machine.SetOf(1)}, computeBody(3e8))
	free := s.Spawn(TaskSpec{Name: "free"}, computeBody(3e6))
	if free.CPU() != 2 {
		t.Fatalf("unpinned task placed on CPU %d, want first idle CPU 2", free.CPU())
	}
	s.Shutdown()
}

func TestAffinityRespected(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(3)
	busy := s.Spawn(TaskSpec{Name: "busy", Affinity: aff}, computeBody(3e7))
	pinned := s.Spawn(TaskSpec{Name: "pinned", Affinity: aff}, computeBody(3e7))
	s.eng.RunWhile(func() bool { return !busy.Done() || !pinned.Done() })
	if pinned.CPU() != 3 || busy.CPU() != 3 {
		t.Fatalf("pinned tasks ran on CPUs %d/%d, want 3", busy.CPU(), pinned.CPU())
	}
	// Serialized on one CPU even though three others are idle: 20ms.
	within(t, s.eng.Now(), 20*sim.Millisecond, 0.01, "pinned serialization")
	s.Shutdown()
}

func TestLoadBalancerMigratesWaiter(t *testing.T) {
	opt := Defaults()
	opt.MigrationCost = 0
	s := newTiny(opt)
	aff01 := machine.SetOf(0, 1)
	// Three roaming tasks allowed on CPUs 0-1 only; initially two land on
	// one CPU... wake placement spreads them, so force the pile-up: all
	// pinned-ish to CPU 0 via initial placement, allowed on 0-1.
	busy0 := s.Spawn(TaskSpec{Name: "a", Affinity: machine.SetOf(0)}, computeBody(3e8))
	busy1 := s.Spawn(TaskSpec{Name: "b", Affinity: aff01}, computeBody(3e8))
	third := s.Spawn(TaskSpec{Name: "c", Affinity: aff01}, computeBody(3e8))
	_ = busy0
	s.eng.RunWhile(func() bool { return !third.Done() || !busy1.Done() })
	// b and c both start on CPU 1 (0 busy) and share it until busy0 frees
	// CPU 0 at 100ms; the balancer then migrates one of them there, so the
	// pair finishes around 150ms — well before the 200ms a shared CPU
	// would take, and after the 100ms two dedicated CPUs would take.
	if now := s.eng.Now(); now <= 110*sim.Millisecond || now >= 195*sim.Millisecond {
		t.Fatalf("finish at %v, want between 110ms and 195ms (balancer-assisted)", now)
	}
	if busy1.Migrations+third.Migrations == 0 {
		t.Fatal("expected the balancer to migrate one waiting task to CPU 0")
	}
	// Now check actual migration: a waiting task moves to a CPU that
	// becomes idle.
	s.Shutdown()

	s2 := newTiny(opt)
	short := s2.Spawn(TaskSpec{Name: "short", Affinity: machine.SetOf(0)}, computeBody(3e7)) // 10ms
	// Two tasks fight over CPU 1 while CPUs 2,3 are forbidden to them.
	aff1 := machine.SetOf(0, 1)
	x := s2.Spawn(TaskSpec{Name: "x", Affinity: machine.SetOf(1)}, computeBody(3e8))
	y := s2.Spawn(TaskSpec{Name: "y", Affinity: aff1}, computeBody(3e8)) // queued on 1
	_ = short
	_ = x
	runToDone(s2, y)
	if y.Migrations == 0 && y.CPU() != 0 {
		t.Fatal("waiting task should migrate to CPU 0 once it frees up")
	}
	// y ran mostly alone on CPU 0 after 10ms: finishes well before 200ms.
	if s2.eng.Now() > 150*sim.Millisecond {
		t.Fatalf("migrated task finished at %v, expected well before 150ms", s2.eng.Now())
	}
	s2.Shutdown()
}

func TestMigrationCostCharged(t *testing.T) {
	opt := Defaults()
	opt.BalanceInterval = sim.Millisecond
	opt.MigrationCost = 10 * sim.Millisecond // exaggerated for visibility
	s := newTiny(opt)
	blocker := s.Spawn(TaskSpec{Name: "blocker", Affinity: machine.SetOf(0)}, computeBody(3e7))
	mover := s.Spawn(TaskSpec{Name: "mover", Affinity: machine.SetOf(0, 1)}, computeBody(3e7))
	_ = blocker
	// mover lands on CPU 1 (idle) and runs clean: no migration happens.
	got := runToDone(s, mover)
	within(t, got, 10*sim.Millisecond, 0.01, "no-migration baseline")
	s.Shutdown()

	s = newTiny(opt)
	s.Spawn(TaskSpec{Name: "hog0", Affinity: machine.SetOf(0)}, computeBody(3e8))
	hog1 := s.Spawn(TaskSpec{Name: "hog1", Affinity: machine.SetOf(1)}, computeBody(6e7)) // 20ms
	_ = hog1
	// mover restricted to CPUs 0-1, queues behind hog1, gets preempted and
	// later migrates when... both stay busy; instead directly verify the
	// penalty: preempt mover mid-segment and let it resume on another CPU.
	mover = s.Spawn(TaskSpec{Name: "mover", Affinity: machine.SetOf(1, 2)}, computeBody(3e7))
	if mover.CPU() != 2 {
		t.Skip("placement changed; test assumes mover starts on cpu 2")
	}
	got = runToDone(s, mover)
	within(t, got, 10*sim.Millisecond, 0.01, "mover clean run")
	s.Shutdown()
}

func TestRTThrottlingLimitsFIFO(t *testing.T) {
	opt := noBalance()
	opt.RTThrottle = true
	opt.RTRuntime = 50 * sim.Millisecond
	opt.RTPeriod = 100 * sim.Millisecond
	s := newTiny(opt)
	aff := machine.SetOf(0)
	// FIFO wants 100ms of CPU; throttled to 50ms per 100ms window.
	rt := s.Spawn(TaskSpec{Name: "rt", Policy: PolicyFIFO, RTPrio: 50, Affinity: aff},
		computeBody(300e6))
	fair := s.Spawn(TaskSpec{Name: "fair", Affinity: aff}, computeBody(120e6)) // 40ms
	runToDone(s, fair)
	// Fair runs inside the 50ms throttle gap of window 1: done at ~90ms.
	within(t, s.eng.Now(), 90*sim.Millisecond, 0.02, "fair under throttled FIFO")
	runToDone(s, rt)
	// rt: 0-50ms run, throttled to 100ms, 100-150ms run.
	within(t, s.eng.Now(), 150*sim.Millisecond, 0.02, "rt completion")
	s.Shutdown()
}

func TestNoThrottleFIFOStarvesFair(t *testing.T) {
	s := newTiny(noBalance()) // RTThrottle off
	aff := machine.SetOf(0)
	rt := s.Spawn(TaskSpec{Name: "rt", Policy: PolicyFIFO, RTPrio: 50, Affinity: aff},
		computeBody(300e6)) // 100ms
	fair := s.Spawn(TaskSpec{Name: "fair", Affinity: aff}, computeBody(3e6)) // 1ms
	runToDone(s, fair)
	// Fair cannot run until FIFO is completely done.
	within(t, s.eng.Now(), 101*sim.Millisecond, 0.001, "fair starved until FIFO done")
	runToDone(s, rt)
	s.Shutdown()
}

func TestYieldAlternates(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	var order []string
	mk := func(name string) *Task {
		return s.Spawn(TaskSpec{Name: name, Affinity: aff}, func(c *Ctx) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				c.Compute(3e3) // 1us
				c.Yield()
			}
		})
	}
	a := mk("a")
	b := mk("b")
	s.eng.RunWhile(func() bool { return !a.Done() || !b.Done() })
	// Yield should interleave: not "aaa bbb".
	if order[0] == order[1] && order[1] == order[2] {
		t.Fatalf("yield did not interleave: %v", order)
	}
	s.Shutdown()
}

func TestSetPolicyDowngradePreempted(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	var downgradedAt, resumedAt sim.Time
	w := s.Spawn(TaskSpec{Name: "w", Policy: PolicyFIFO, RTPrio: 10, Affinity: aff}, func(c *Ctx) {
		c.Compute(30e6) // 10ms as FIFO
		downgradedAt = c.Now()
		c.SetPolicy(PolicyOther, 0)
		c.Compute(30e6) // 10ms as fair
		resumedAt = c.Now()
	})
	// Another FIFO task arrives at 5ms wanting 20ms; it must wait behind
	// the running same-prio FIFO task, then run as soon as w downgrades.
	s.eng.At(5*sim.Millisecond, func() {
		s.Spawn(TaskSpec{Name: "rt2", Policy: PolicyFIFO, RTPrio: 10, Affinity: aff},
			computeBody(60e6))
	})
	runToDone(s, w)
	if downgradedAt != 10*sim.Millisecond {
		t.Fatalf("downgrade at %v, want 10ms", downgradedAt)
	}
	// rt2 runs 10..30ms; w's fair part runs 30..40ms.
	within(t, resumedAt, 40*sim.Millisecond, 0.01, "fair part completion")
	s.Shutdown()
}

func TestSetPolicyUpgrade(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	w := s.Spawn(TaskSpec{Name: "w", Affinity: aff}, func(c *Ctx) {
		c.SetPolicy(PolicyFIFO, 99)
		if c.Task().Policy() != PolicyFIFO {
			t.Error("policy not applied")
		}
		c.Compute(3e6)
	})
	runToDone(s, w)
	s.Shutdown()
}

func TestKillReleasesGoroutine(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "w"}, computeBody(3e12)) // would take 1000s
	s.eng.RunUntil(10 * sim.Millisecond)
	s.Kill(w)
	if !w.Done() {
		t.Fatal("killed task should be done")
	}
	// CPU must be reusable.
	v := s.Spawn(TaskSpec{Name: "v", Affinity: machine.SetOf(w.CPU())}, computeBody(3e6))
	runToDone(s, v)
	s.Shutdown()
}

func TestKillSleepingTask(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "w"}, func(c *Ctx) { c.Sleep(sim.Second) })
	s.eng.RunUntil(sim.Millisecond)
	s.Kill(w)
	if !w.Done() {
		t.Fatal("killed sleeper should be done")
	}
	s.eng.Run() // the stale wake timer must not fire into a dead task
	s.Shutdown()
}

func TestShutdownKillsEverything(t *testing.T) {
	s := newTiny(noBalance())
	b := NewBarrier(10) // never satisfied
	for i := 0; i < 4; i++ {
		s.Spawn(TaskSpec{Name: "w"}, func(c *Ctx) { c.Barrier(b, false) })
	}
	s.eng.RunUntil(sim.Millisecond)
	s.Shutdown()
	for _, tk := range s.Tasks() {
		if !tk.Done() {
			t.Fatalf("task %q still alive after Shutdown", tk.Name)
		}
	}
}

func TestOnDoneFires(t *testing.T) {
	s := newTiny(noBalance())
	fired := false
	w := s.Spawn(TaskSpec{Name: "w"}, computeBody(3e6))
	w.OnDone(func() { fired = true })
	runToDone(s, w)
	if !fired {
		t.Fatal("OnDone did not fire")
	}
	s.Shutdown()
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		s := newTiny(Defaults())
		b := NewBarrier(4)
		var last *Task
		for i := 0; i < 4; i++ {
			i := i
			last = s.Spawn(TaskSpec{Name: "w"}, func(c *Ctx) {
				for r := 0; r < 10; r++ {
					c.Compute(float64(1e6 * (i + 1)))
					c.Barrier(b, i%2 == 0)
				}
			})
		}
		s.eng.At(3*sim.Millisecond, func() { s.InjectIRQ(0, ClassIRQ, "t", 100*sim.Microsecond) })
		end := runToDone(s, last)
		cs := s.ContextSwitches
		s.Shutdown()
		return end, cs
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}

type recHook struct {
	taskRuns []string
	irqs     []string
	taskNs   sim.Time
	irqNs    sim.Time
}

func (h *recHook) TaskRan(cpu int, t *Task, start, end sim.Time) {
	h.taskRuns = append(h.taskRuns, t.Source)
	h.taskNs += end - start
}

func (h *recHook) IRQRan(cpu int, class NoiseClass, source string, start, end sim.Time) {
	h.irqs = append(h.irqs, source)
	h.irqNs += end - start
}

func TestTracerHookRecords(t *testing.T) {
	opt := noBalance()
	opt.TraceOverhead = 0
	s := newTiny(opt)
	h := &recHook{}
	s.SetTracer(h)
	aff := machine.SetOf(0)
	w := s.Spawn(TaskSpec{Name: "w", Affinity: aff}, computeBody(30e6)) // 10ms
	s.eng.At(sim.Millisecond, func() {
		s.Spawn(TaskSpec{Name: "kw", Source: "kworker/0:1", Kind: KindNoiseThread,
			Policy: PolicyFIFO, RTPrio: 1, Affinity: aff}, computeBody(3e6)) // 1ms
	})
	s.eng.At(5*sim.Millisecond, func() { s.InjectIRQ(0, ClassIRQ, "local_timer:236", 200*sim.Microsecond) })
	runToDone(s, w)
	foundKW := false
	for _, src := range h.taskRuns {
		if src == "kworker/0:1" {
			foundKW = true
		}
	}
	if !foundKW {
		t.Fatalf("tracer missed kworker run: %v", h.taskRuns)
	}
	if len(h.irqs) != 1 || h.irqs[0] != "local_timer:236" {
		t.Fatalf("tracer irqs = %v", h.irqs)
	}
	if h.irqNs != 200*sim.Microsecond {
		t.Fatalf("irq duration recorded %v, want 200us", h.irqNs)
	}
	s.Shutdown()
}

func TestTraceOverheadSlowsWorkload(t *testing.T) {
	base := func(overhead sim.Time, traced bool) sim.Time {
		opt := noBalance()
		opt.TraceOverhead = overhead
		s := newTiny(opt)
		if traced {
			s.SetTracer(&recHook{})
		}
		aff := machine.SetOf(0)
		w := s.Spawn(TaskSpec{Name: "w", Affinity: aff}, computeBody(30e6))
		for i := 1; i <= 9; i++ {
			at := sim.Time(i) * sim.Millisecond
			s.eng.At(at, func() { s.InjectIRQ(0, ClassIRQ, "t", 10*sim.Microsecond) })
		}
		got := runToDone(s, w)
		s.Shutdown()
		return got
	}
	off := base(10*sim.Microsecond, false)
	on := base(10*sim.Microsecond, true)
	if on <= off {
		t.Fatalf("tracing overhead should slow the run: off=%v on=%v", off, on)
	}
	// 9 events * 10us = 90us extra.
	within(t, on-off, 90*sim.Microsecond, 0.05, "overhead total")
}

func TestComputeDurHelper(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "w"}, func(c *Ctx) { c.ComputeDur(7 * sim.Millisecond) })
	got := runToDone(s, w)
	within(t, got, 7*sim.Millisecond, 0.001, "ComputeDur")
	s.Shutdown()
}

func TestZeroWorkRequests(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "w"}, func(c *Ctx) {
		c.Compute(0)
		c.Memory(-5)
		c.SleepUntil(0) // already past
	})
	got := runToDone(s, w)
	if got != 0 {
		t.Fatalf("zero-work task took %v", got)
	}
	s.Shutdown()
}

func TestNicePriorityShares(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	heavy := s.Spawn(TaskSpec{Name: "heavy", Nice: -5, Affinity: aff}, computeBody(3e8))
	light := s.Spawn(TaskSpec{Name: "light", Nice: 5, Affinity: aff}, computeBody(3e8))
	s.eng.RunUntil(100 * sim.Millisecond)
	if heavy.CPUTime <= light.CPUTime {
		t.Fatalf("nice -5 task got %v vs nice +5 task %v", heavy.CPUTime, light.CPUTime)
	}
	ratio := float64(heavy.CPUTime) / float64(light.CPUTime)
	// Weight ratio is 1.25^10 ~= 9.3; allow slack for slice granularity.
	if ratio < 3 {
		t.Fatalf("cpu share ratio %.2f too low for nice gap", ratio)
	}
	s.Shutdown()
	runToDone(s, heavy)
	runToDone(s, light)
}
