package cpusched

import "repro/internal/sim"

// InjectIRQ delivers an interrupt of the given class to a logical CPU. The
// interrupt runs in interrupt context: it pauses whatever occupies the CPU
// (including FIFO tasks) for dur, then resumes it. Back-to-back interrupts
// queue and run sequentially. The tracer, when attached, records one event
// per interrupt, mirroring the irq_noise/softirq_noise records of the
// paper's Figure 3.
func (s *Scheduler) InjectIRQ(cpu int, class NoiseClass, source string, dur sim.Time) {
	if cpu < 0 || cpu >= len(s.cpus) {
		panic("cpusched: InjectIRQ cpu out of range")
	}
	if dur <= 0 {
		return
	}
	c := s.cpus[cpu]
	if c.inIRQ {
		c.irqQ = append(c.irqQ, pendingIRQ{class: class, source: source, dur: dur})
		return
	}
	s.startIRQ(c, class, source, dur, nil)
}

// startIRQ enters interrupt context on c. wake, when non-nil, is the
// device-blocked task this completion interrupt wakes when its handler
// ends (see device.go); plain noise interrupts pass nil.
func (s *Scheduler) startIRQ(c *cpuState, class NoiseClass, source string, dur sim.Time, wake *Task) {
	// The tracer runs in interrupt context: recording the event extends
	// the interrupt by the tracing overhead (this is the dominant part of
	// Table 1's measured overhead, since timer interrupts dominate event
	// counts).
	if s.tracer != nil && s.opt.TraceOverhead > 0 {
		dur += s.opt.TraceOverhead
	}
	c.inIRQ = true
	c.irqStart = s.eng.Now()
	c.irqClass = class
	c.irqSource = source
	c.irqWake = wake
	if c.curr != nil {
		s.refresh(c.curr) // rate drops to 0 while the interrupt runs
	}
	s.occupancyChanged(c) // the sibling sees this hardware thread as busy
	// irqEndFn is bound once per CPU; the in-flight interrupt's identity
	// lives in the cpuState, so interrupt delivery allocates nothing.
	s.eng.After(dur, c.irqEndFn)
}

func (s *Scheduler) endIRQ(c *cpuState) {
	start := c.irqStart
	class, source := c.irqClass, c.irqSource
	c.inIRQ = false
	s.irqTime[c.id] += s.eng.Now() - start
	if s.obs != nil {
		s.obs.Span(c.id, source, class.String(), "irq", start, s.eng.Now())
	}
	if s.tracer != nil {
		s.tracer.IRQRan(c.id, class, source, start, s.eng.Now())
	}
	// A device-completion handler wakes its blocked task as its last act:
	// the wakeup (and any dispatch it causes) happens at handler end, after
	// the interrupt's span was recorded, but before any queued interrupt
	// re-enters interrupt context on this CPU.
	if w := c.irqWake; w != nil {
		c.irqWake = nil
		s.wakeFromIO(w)
	}
	if c.irqHead < len(c.irqQ) {
		next := c.irqQ[c.irqHead]
		c.irqHead++
		s.startIRQ(c, next.class, next.source, next.dur, next.wake)
		// Tracing overhead applies once the CPU is interruptible again.
		return
	}
	// Queue drained: rewind to the start of the backing array so the next
	// back-to-back burst appends without reallocating (a plain [1:] reslice
	// would shed the consumed prefix's capacity every burst).
	c.irqQ = c.irqQ[:0]
	c.irqHead = 0
	if c.curr != nil {
		s.refresh(c.curr)
	}
	s.occupancyChanged(c)
}
