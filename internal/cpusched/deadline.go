package cpusched

// SCHED_DEADLINE: an EDF class with CBS-style budget enforcement, above
// FIFO and fair in the class hierarchy. Each deadline task reserves
// DLRuntime of CPU per DLPeriod; dispatch order among deadline tasks is
// earliest absolute deadline first. The CBS rules keep a misbehaving task
// inside its reservation:
//
//   - while running, the task consumes budget at wall-occupancy rate;
//   - when the budget is exhausted before the deadline, the task is
//     throttled (off the run queues) until the deadline, where the budget
//     replenishes to DLRuntime and the deadline advances by DLPeriod;
//   - on wakeup, the pair (deadline, budget) is reused only if the
//     remaining bandwidth budget/(deadline-now) does not exceed the
//     reserved bandwidth DLRuntime/DLPeriod; otherwise both reset
//     (deadline = now+DLPeriod, budget = DLRuntime), so sleeping cannot
//     bank budget at an old, urgent deadline.
//
// This is the standard hard-CBS simplification of Linux's SCHED_DEADLINE:
// no GRUB reclaiming, no deadline update while running past the deadline
// with leftover budget (such a task just competes with its stale — hence
// late — deadline until it blocks or exhausts its budget).

// dlLess orders deadline-class tasks: earliest absolute deadline first,
// enqueue sequence as the deterministic tie-break.
func dlLess(a, b *Task) bool {
	if a.dlDeadline != b.dlDeadline {
		return a.dlDeadline < b.dlDeadline
	}
	return a.enqueueSeq < b.enqueueSeq
}

// cbsWake applies the CBS wakeup rule before a deadline task is placed on a
// run queue. Float comparison avoids overflow on pathological spans.
func (s *Scheduler) cbsWake(t *Task) {
	now := s.eng.Now()
	if t.dlDeadline <= now ||
		float64(t.dlBudget)*float64(t.dlPeriod) > float64(t.dlDeadline-now)*float64(t.dlRuntime) {
		t.dlDeadline = now + t.dlPeriod
		t.dlBudget = t.dlRuntime
	}
}

// startDLWatch arms the budget-exhaustion timer for a deadline task that
// was just dispatched (or started a new segment). Budget is wall occupancy,
// so the timer fires exactly when the remaining budget is consumed unless
// the task leaves the CPU first (undispatch cancels it).
func (s *Scheduler) startDLWatch(c *cpuState, t *Task) {
	if t.policy != PolicyDeadline {
		return
	}
	if t.dlBudgetTimer != nil {
		t.dlBudgetTimer.Cancel()
		t.dlBudgetTimer = nil
	}
	if t.dlBudget <= 0 {
		s.dlThrottle(t)
		return
	}
	t.dlBudgetTimer = s.eng.After(t.dlBudget, t.dlBudgetFn)
}

// dlBudgetFire handles budget-timer expiry.
func (s *Scheduler) dlBudgetFire(t *Task) {
	t.dlBudgetTimer = nil
	if t.state != StateRunning {
		return // stale: the task left the CPU at this same instant
	}
	s.account(t)
	if t.dlBudget > 0 {
		// Not actually exhausted (account runs at most once per instant;
		// an earlier account this instant shortened the charged interval).
		s.startDLWatch(s.cpus[t.cpu], t)
		return
	}
	s.dlThrottle(t)
}

// dlThrottle suspends a deadline task whose budget is exhausted until its
// deadline. The task keeps its in-progress segment; it resumes mid-segment
// after replenishment exactly like a preempted task.
func (s *Scheduler) dlThrottle(t *Task) {
	c := s.cpus[t.cpu]
	if t.state == StateRunning {
		t.Preempted++
		if s.obs != nil {
			s.obs.Instant(c.id, "dl-throttle", "sched", t.Name, s.eng.Now())
		}
		s.undispatch(t, StateThrottled)
	} else {
		t.state = StateThrottled
	}
	now := s.eng.Now()
	if t.dlDeadline <= now {
		s.dlReplenish(t)
	} else {
		t.dlReplTimer = s.eng.At(t.dlDeadline, t.dlReplFn)
	}
	s.resched(c)
}

// dlReplenish advances the deadline by one period (skipping past periods if
// the task was throttled across several), refills the budget, and wakes the
// task if it was throttled.
func (s *Scheduler) dlReplenish(t *Task) {
	now := s.eng.Now()
	t.dlDeadline += t.dlPeriod
	for t.dlDeadline <= now {
		t.dlDeadline += t.dlPeriod
	}
	t.dlBudget = t.dlRuntime
	if t.state == StateThrottled {
		s.wake(t)
	}
}
