package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// forkScenario runs a small mixed workload to completion and returns its
// observable outcome: finish time plus the scheduler counters.
func forkScenario(s *Scheduler) (sim.Time, uint64, uint64) {
	a := s.Spawn(TaskSpec{Name: "a"}, computeBody(3e8))
	b := s.Spawn(TaskSpec{Name: "b", Policy: PolicyFIFO, RTPrio: 10,
		Affinity: machine.SetOf(0)}, computeBody(1e8))
	c := s.Spawn(TaskSpec{Name: "c", Affinity: machine.SetOf(0)}, computeBody(6e8))
	s.eng.RunWhile(func() bool { return !a.Done() || !b.Done() || !c.Done() })
	return s.eng.Now(), s.ContextSwitches, s.GoroutineHandoffs
}

// TestSchedulerForkByteIdentical proves a forked scheduler replays a
// workload with exactly the outcome of a fresh one: same finish time, same
// dispatch counts, same task IDs — the unit-level form of the golden
// batch-vs-legacy guarantee.
func TestSchedulerForkByteIdentical(t *testing.T) {
	topo := machine.MustPreset(machine.TinyTest)

	fresh := New(sim.NewEngine(), topo, noBalance())
	ft, fc, fh := forkScenario(fresh)
	fresh.Shutdown()

	batch := sim.NewBatch()
	s := New(batch.Engine(), topo, noBalance())
	snap := s.Snapshot()
	for round := 0; round < 3; round++ {
		gt, gc, gh := forkScenario(s)
		if gt != ft || gc != fc || gh != fh {
			t.Fatalf("round %d diverged: time=%v switches=%d handoffs=%d, fresh time=%v switches=%d handoffs=%d",
				round, gt, gc, gh, ft, fc, fh)
		}
		s.Shutdown()
		s.Fork(snap)
		batch.Fork()
		if s.nextID != 0 || len(s.tasks) != 0 || s.liveTasks != 0 {
			t.Fatalf("round %d: fork left state: nextID=%d tasks=%d live=%d",
				round, s.nextID, len(s.tasks), s.liveTasks)
		}
		if batch.Engine().Now() != 0 || batch.Engine().Pending() != 0 {
			t.Fatalf("round %d: engine not rewound: now=%v pending=%d",
				round, batch.Engine().Now(), batch.Engine().Pending())
		}
	}
}

// TestSchedulerForkMidRun kills an unfinished workload via Fork and checks
// the next rep still matches a fresh scheduler — the erroring-rep teardown
// path of the batch executor.
func TestSchedulerForkMidRun(t *testing.T) {
	topo := machine.MustPreset(machine.TinyTest)

	fresh := New(sim.NewEngine(), topo, noBalance())
	ft, fc, fh := forkScenario(fresh)
	fresh.Shutdown()

	batch := sim.NewBatch()
	s := New(batch.Engine(), topo, noBalance())
	snap := s.Snapshot()
	// Abort a run mid-flight: tasks are still queued or running.
	s.Spawn(TaskSpec{Name: "doomed"}, computeBody(9e9))
	s.Spawn(TaskSpec{Name: "doomed2", Affinity: machine.SetOf(1)}, computeBody(9e9))
	batch.Engine().RunUntil(sim.Millisecond)
	s.Shutdown()
	s.Fork(snap)
	batch.Fork()

	gt, gc, gh := forkScenario(s)
	if gt != ft || gc != fc || gh != fh {
		t.Fatalf("post-abort rep diverged: time=%v switches=%d handoffs=%d, fresh time=%v switches=%d handoffs=%d",
			gt, gc, gh, ft, fc, fh)
	}
}

// TestSchedulerSnapshotAfterSpawnPanics pins the pristine-only contract.
func TestSchedulerSnapshotAfterSpawnPanics(t *testing.T) {
	s := newTiny(noBalance())
	s.Spawn(TaskSpec{Name: "w"}, computeBody(1e6))
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot after Spawn did not panic")
		}
		s.Shutdown()
	}()
	s.Snapshot()
}

// TestTaskPoolRecyclesProgramTasks verifies inline-program task structs are
// recycled across forks: the second rep materializes no fresh tasks.
func TestTaskPoolRecyclesProgramTasks(t *testing.T) {
	topo := machine.MustPreset(machine.TinyTest)
	batch := sim.NewBatch()
	s := New(batch.Engine(), topo, noBalance())
	snap := s.Snapshot()

	runProg := func() {
		tk := s.SpawnSeq(TaskSpec{Name: "p"}, ReqCompute(3e6))
		s.eng.RunWhile(func() bool { return !tk.Done() })
		s.Shutdown()
		s.Fork(snap)
		batch.Fork()
	}
	runProg()
	allocs := s.TaskAllocs
	runProg()
	if s.TaskAllocs != allocs {
		t.Fatalf("second rep materialized %d fresh tasks, want 0 (pool holds the first rep's)",
			s.TaskAllocs-allocs)
	}
}
