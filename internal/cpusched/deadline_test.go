package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// one CPU, 1 GHz: compute demand == nanoseconds, schedules are exact.
func newDLSched() (*sim.Engine, *Scheduler) { return newTestSched(1, Options{}) }

func dlSpec(name string, runtime, period sim.Time) TaskSpec {
	return TaskSpec{Name: name, Policy: PolicyDeadline, DLRuntime: runtime, DLPeriod: period}
}

// TestEDFOrdersByDeadline: three deadline tasks spawned together at t=0,
// equal work, periods 300/400/500µs. CBS sets each initial deadline to
// now+period, so EDF must run them strictly in period order:
//
//	A [0,100) done 100µs, B [100,200) done 200µs, C [200,300) done 300µs.
func TestEDFOrdersByDeadline(t *testing.T) {
	eng, s := newDLSched()
	us := sim.Microsecond
	done := map[string]sim.Time{}
	spawn := func(name string, period sim.Time) {
		tk := s.SpawnSeq(dlSpec(name, 150*us, period), ReqCompute(float64(100*us)))
		tk.OnDone(func() { done[name] = eng.Now() })
	}
	// Spawn in reverse period order so FIFO spawn order cannot masquerade
	// as EDF order.
	spawn("c", 500*us)
	spawn("b", 400*us)
	spawn("a", 300*us)
	eng.Run()

	want := map[string]sim.Time{"a": 100 * us, "b": 200 * us, "c": 300 * us}
	for name, w := range want {
		if done[name] != w {
			t.Fatalf("task %s done at %d, want %d (all: %v)", name, done[name], w, done)
		}
	}
}

// TestEDFPreemptsLaterDeadline: a long task with a far deadline is preempted
// by a later-arriving task whose deadline is nearer.
//
//	A (work 300µs, period 1000µs) starts at 0, deadline 1000µs.
//	B (work 50µs, period 300µs) wakes at 100µs, deadline 400µs < 1000µs:
//	preempts A, runs [100,150). A resumes with 200µs left and finishes at
//	350µs — its solo time plus exactly B's work. B finishes at 150µs.
func TestEDFPreemptsLaterDeadline(t *testing.T) {
	eng, s := newDLSched()
	us := sim.Microsecond
	done := map[string]sim.Time{}
	a := s.SpawnSeq(dlSpec("a", 400*us, 1000*us), ReqCompute(float64(300*us)))
	a.OnDone(func() { done["a"] = eng.Now() })
	eng.At(100*us, func() {
		b := s.SpawnSeq(dlSpec("b", 100*us, 300*us), ReqCompute(float64(50*us)))
		b.OnDone(func() { done["b"] = eng.Now() })
	})
	eng.Run()

	if want := 150 * us; done["b"] != want {
		t.Fatalf("b done at %d, want %d", done["b"], want)
	}
	if want := 350 * us; done["a"] != want {
		t.Fatalf("a done at %d, want %d", done["a"], want)
	}
	if a.Preempted != 1 {
		t.Fatalf("a preempted %d times, want 1", a.Preempted)
	}
}

// TestCBSThrottleAndReplenish: a deadline task wanting 300µs of CPU under a
// 100µs/500µs reservation runs in 100µs slices at period boundaries:
//
//	runs [0,100), throttled until its 500µs deadline, replenished
//	(deadline 1000µs, budget 100µs), runs [500,600), throttled, runs
//	[1000,1100) — done at 1100µs. A fair-class task soaks up the gaps
//	(yielding CPU back on each replenishment), finishing its 1000µs of
//	work at 1300µs.
func TestCBSThrottleAndReplenish(t *testing.T) {
	eng, s := newDLSched()
	us := sim.Microsecond
	done := map[string]sim.Time{}
	d := s.SpawnSeq(dlSpec("dl", 100*us, 500*us), ReqCompute(float64(300*us)))
	d.OnDone(func() { done["dl"] = eng.Now() })
	f := s.SpawnSeq(TaskSpec{Name: "fair"}, ReqCompute(float64(1000*us)))
	f.OnDone(func() { done["fair"] = eng.Now() })
	eng.Run()

	if want := 1100 * us; done["dl"] != want {
		t.Fatalf("dl done at %d, want %d", done["dl"], want)
	}
	if want := 1300 * us; done["fair"] != want {
		t.Fatalf("fair done at %d, want %d", done["fair"], want)
	}
	// Throttled twice (at 100µs and 600µs), each counted as a preemption.
	if d.Preempted != 2 {
		t.Fatalf("dl preempted %d times, want 2", d.Preempted)
	}
}

// TestCBSWakeupResetsStaleDeadline: a deadline task that sleeps past its
// deadline wakes with a fresh (deadline, budget) pair — and that fresh
// deadline is what EDF compares. After sleeping to 2000µs, the task's new
// deadline is 2000+period; a competitor with a nearer deadline runs first
// even though the sleeper's stale deadline (500µs) would have won.
func TestCBSWakeupResetsStaleDeadline(t *testing.T) {
	eng, s := newDLSched()
	us := sim.Microsecond
	done := map[string]sim.Time{}
	sleeper := s.SpawnSeq(dlSpec("sleeper", 200*us, 500*us),
		ReqCompute(float64(10*us)),
		ReqSleepUntil(2000*us),
		ReqCompute(float64(100*us)),
	)
	sleeper.OnDone(func() { done["sleeper"] = eng.Now() })
	eng.At(2000*us, func() {
		// Same instant as the sleeper's wakeup, nearer deadline.
		rival := s.SpawnSeq(dlSpec("rival", 100*us, 300*us), ReqCompute(float64(100*us)))
		rival.OnDone(func() { done["rival"] = eng.Now() })
	})
	eng.Run()

	if want := 2100 * us; done["rival"] != want {
		t.Fatalf("rival done at %d, want %d (stale sleeper deadline won EDF?)", done["rival"], want)
	}
	if want := 2200 * us; done["sleeper"] != want {
		t.Fatalf("sleeper done at %d, want %d", done["sleeper"], want)
	}
}

// TestDeadlinePreemptsFIFO: the deadline class sits above SCHED_FIFO.
func TestDeadlinePreemptsFIFO(t *testing.T) {
	eng, s := newDLSched()
	us := sim.Microsecond
	done := map[string]sim.Time{}
	ff := s.SpawnSeq(TaskSpec{Name: "fifo", Policy: PolicyFIFO, RTPrio: 99},
		ReqCompute(float64(300*us)))
	ff.OnDone(func() { done["fifo"] = eng.Now() })
	eng.At(100*us, func() {
		d := s.SpawnSeq(dlSpec("dl", 100*us, 1000*us), ReqCompute(float64(50*us)))
		d.OnDone(func() { done["dl"] = eng.Now() })
	})
	eng.Run()

	if want := 150 * us; done["dl"] != want {
		t.Fatalf("dl done at %d, want %d (did it preempt FIFO?)", done["dl"], want)
	}
	if want := 350 * us; done["fifo"] != want {
		t.Fatalf("fifo done at %d, want %d", done["fifo"], want)
	}
}

// TestDeadlineSpecValidation: PolicyDeadline without a sane reservation
// panics at spawn.
func TestDeadlineSpecValidation(t *testing.T) {
	_, s := newDLSched()
	for _, spec := range []TaskSpec{
		{Name: "no-params", Policy: PolicyDeadline},
		{Name: "runtime>period", Policy: PolicyDeadline, DLRuntime: 200, DLPeriod: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("spawn %q: want panic", spec.Name)
				}
			}()
			s.SpawnSeq(spec, ReqCompute(1))
		}()
	}
}

// TestDLSpinBarrierThrottles: entering a spin barrier must arm the CBS
// budget watch exactly like starting a compute segment. Regression test for
// a livelock: the spin branch of processRequests skipped startDLWatch, so a
// deadline task spinning at a barrier ran unwatched — its budget went
// negative without ever throttling, and lower-class (or equal-deadline)
// peers on the same CPU starved until the barrier released.
//
//	spinner (100µs/500µs) spins at a 2-party barrier from t=0; a fair task
//	wanting 700µs shares its CPU. The spinner must run in 100µs slices per
//	period ([0,100), [500,600), ...), leaving the fair task 400µs per
//	period: fair done mid-window at 900µs, spinner released at 2000µs with
//	exactly 400µs of CPU. (700µs, not a multiple of 400: a fair completion
//	on a period boundary would tie with the replenishment event and make
//	the done timestamp an ordering artifact.) Unfixed, the spinner
//	monopolizes the CPU for the full 2000µs.
func TestDLSpinBarrierThrottles(t *testing.T) {
	eng, s := newTestSched(2, Options{})
	us := sim.Microsecond
	b := NewBarrier(2)
	spinner := s.SpawnSeq(TaskSpec{Name: "spinner", Policy: PolicyDeadline,
		DLRuntime: 100 * us, DLPeriod: 500 * us, Affinity: machine.SetOf(0)},
		ReqBarrier(b, true))
	fair := s.SpawnSeq(TaskSpec{Name: "fair", Affinity: machine.SetOf(0)},
		ReqCompute(float64(700*us)))
	var fairDone sim.Time
	fair.OnDone(func() { fairDone = eng.Now() })
	s.SpawnSeq(TaskSpec{Name: "late", Affinity: machine.SetOf(1)},
		ReqSleepUntil(2000*us), ReqBarrier(b, true))
	eng.Run()

	if !spinner.Done() || !fair.Done() {
		t.Fatal("tasks did not finish")
	}
	if want := 900 * us; fairDone != want {
		t.Fatalf("fair done at %d, want %d (spinner not throttled?)", fairDone, want)
	}
	if want := 400 * us; spinner.CPUTime != want {
		t.Fatalf("spinner CPU time %d, want %d", spinner.CPUTime, want)
	}
}

// TestDLThrottledSpinnerClearedByRelease: a barrier release that lands while
// a spinning deadline waiter is CBS-throttled must clear its spin segment,
// exactly as for a preempted spinner. Regression test for a livelock: the
// throttled state fell through barrierArrive's waiter classification, so the
// stale spin survived the release and the task resumed spinning at a barrier
// that no longer existed — burning its budget, throttling, replenishing, and
// spinning again forever.
//
//	spinner (100µs/500µs) spins [0,100), throttles; release lands at 300µs
//	while it is throttled. Replenishment at 500µs must wake it into its next
//	request (50µs compute): done at 550µs with 150µs of CPU.
func TestDLThrottledSpinnerClearedByRelease(t *testing.T) {
	eng, s := newTestSched(2, Options{})
	us := sim.Microsecond
	b := NewBarrier(2)
	spinner := s.SpawnSeq(TaskSpec{Name: "spinner", Policy: PolicyDeadline,
		DLRuntime: 100 * us, DLPeriod: 500 * us, Affinity: machine.SetOf(0)},
		ReqBarrier(b, true), ReqCompute(float64(50*us)))
	var doneAt sim.Time
	spinner.OnDone(func() { doneAt = eng.Now() })
	s.SpawnSeq(TaskSpec{Name: "late", Affinity: machine.SetOf(1)},
		ReqSleepUntil(300*us), ReqBarrier(b, true))
	// Bounded run: the unfixed scheduler replenishes and re-spins forever.
	eng.RunUntil(5 * sim.Millisecond)

	if !spinner.Done() {
		t.Fatalf("spinner not done by 5ms (stale spin resumed after release?): state=%v", spinner.state)
	}
	if want := 550 * us; doneAt != want {
		t.Fatalf("spinner done at %d, want %d", doneAt, want)
	}
	if want := 150 * us; spinner.CPUTime != want {
		t.Fatalf("spinner CPU time %d, want %d", spinner.CPUTime, want)
	}
}

// TestDeadlineBlockOn composes the two tentpole features: a deadline task
// blocking on a device does not consume budget while blocked, and wakes
// through the CBS wakeup rule.
//
//	work 50µs, block (1000ns latency + 100ns IRQ), work 50µs under a
//	120µs/10ms reservation: no throttling despite 101.1µs elapsed wait,
//	because only 100µs of occupancy counts against the budget.
func TestDeadlineBlockOn(t *testing.T) {
	eng, s := newDLSched()
	us := sim.Microsecond
	dev := s.AddDevice(DeviceSpec{Name: "disk0", Latency: 1000, IRQDur: 100})
	tk := s.SpawnSeq(dlSpec("dlio", 120*us, 10000*us),
		ReqCompute(float64(50*us)),
		ReqBlockOn(dev, 0),
		ReqCompute(float64(50*us)),
	)
	var doneAt sim.Time
	tk.OnDone(func() { doneAt = eng.Now() })
	eng.Run()

	if want := 100*us + 1100; doneAt != want {
		t.Fatalf("done at %d, want %d", doneAt, want)
	}
	if tk.Preempted != 0 {
		t.Fatalf("preempted %d times, want 0 (budget must not drain while blocked)", tk.Preempted)
	}
}
