package cpusched

import (
	"fmt"
	"iter"
	"math"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options tunes scheduler behaviour. The zero value is usable; Defaults
// fills in Linux-flavoured values.
type Options struct {
	// Slice is the fair-class timeslice before round-robin rotation.
	Slice sim.Time
	// WakeupGranularity damps wakeup preemption between fair tasks.
	WakeupGranularity sim.Time
	// MigrationCost is the cache-warmup penalty charged when a task
	// resumes on a different CPU, expressed as nanoseconds of extra work.
	MigrationCost sim.Time
	// BalanceInterval is the period of idle load balancing; 0 disables it.
	BalanceInterval sim.Time
	// RTThrottle enables the Linux RT fail-safe limiting FIFO tasks to
	// RTRuntime per RTPeriod per CPU. The paper's injector disables it.
	RTThrottle bool
	RTRuntime  sim.Time
	RTPeriod   sim.Time
	// TraceOverhead is CPU time stolen from the interrupted CPU per
	// recorded trace event when a tracer is attached (Table 1).
	TraceOverhead sim.Time
}

// Defaults returns Linux-flavoured scheduler options.
func Defaults() Options {
	return Options{
		Slice:             3 * sim.Millisecond,
		WakeupGranularity: 1 * sim.Millisecond,
		MigrationCost:     20 * sim.Microsecond,
		BalanceInterval:   4 * sim.Millisecond,
		RTThrottle:        false,
		RTRuntime:         950 * sim.Millisecond,
		RTPeriod:          1000 * sim.Millisecond,
		TraceOverhead:     1500, // ns per recorded event (ring-buffer write + clock reads)
	}
}

// Hook receives scheduling events, e.g. for the osnoise-style tracer.
type Hook interface {
	// TaskRan reports that task t occupied cpu for [start, end).
	TaskRan(cpu int, t *Task, start, end sim.Time)
	// IRQRan reports an interrupt occupying cpu for [start, end).
	IRQRan(cpu int, class NoiseClass, source string, start, end sim.Time)
}

type pendingIRQ struct {
	class  NoiseClass
	source string
	dur    sim.Time
	// wake, when non-nil, is a task blocked on a device request that this
	// (completion) interrupt wakes at the end of its handler.
	wake *Task
}

type cpuState struct {
	id   int
	curr *Task
	dl   taskQueue // runnable deadline tasks, keyed (deadline, enqueueSeq)
	fifo taskQueue // runnable FIFO tasks, keyed (rtprio desc, enqueueSeq)
	fair taskQueue // runnable fair tasks, keyed (vruntime, enqueueSeq)

	minVruntime float64

	inIRQ    bool
	irqStart sim.Time
	// irqClass/irqSource identify the in-flight interrupt; irqEndFn is its
	// completion callback, bound once at construction so interrupt delivery
	// does not allocate a closure per event.
	irqClass  NoiseClass
	irqSource string
	irqEndFn  func()
	// irqWake is the device-blocked task the in-flight completion
	// interrupt wakes when its handler ends (nil for plain noise IRQs).
	irqWake *Task
	// irqQ is the pending-interrupt queue: appended at the tail, consumed
	// via irqHead so the backing array survives each burst intact.
	irqQ    []pendingIRQ
	irqHead int

	// pendingSteal is accumulated tracing overhead not yet charged to a
	// running task on this CPU.
	pendingSteal sim.Time

	sliceTimer *sim.Timer
	// sliceFn is the slice-expiry callback, bound once at construction so
	// re-arming the timeslice does not allocate a closure per dispatch.
	sliceFn func()

	// RT throttling state.
	rtWindowStart sim.Time
	rtUsed        sim.Time
	rtThrottled   bool
	throttleTimer *sim.Timer
}

func (c *cpuState) queued() int { return c.dl.len() + c.fifo.len() + c.fair.len() }

func (c *cpuState) idle() bool { return c.curr == nil && c.queued() == 0 }

// Scheduler simulates the OS CPU scheduler for one machine.
type Scheduler struct {
	eng   *sim.Engine
	topo  *machine.Topology
	opt   Options
	cpus  []*cpuState
	tasks []*Task

	// devices are the registered I/O devices, by name. Per-rep state:
	// Fork clears the map (batched reps re-register in their body).
	devices map[string]*Device

	tracer Hook
	// obs is the passive observability recorder. Unlike the tracer it
	// steals no simulated time: attaching it cannot change any scheduling
	// decision or timestamp. Every emission site is nil-guarded so the
	// disabled path costs one pointer compare and allocates nothing.
	obs *obs.Recorder

	memStreams int
	nextID     int
	seq        uint64
	arrival    uint64
	liveTasks  int

	balanceTimer *sim.Timer
	// balanceFn is the balancer callback, bound once so re-arming the
	// periodic timer does not allocate a method-value closure per tick.
	balanceFn func()

	// barScratch pools the waiter-classification buffers of barrierArrive.
	// It is a free stack, not a single buffer, because barrier releases
	// nest (a released spinner may immediately arrive at, and release,
	// another barrier from within processRequests).
	barScratch []*barrierScratch

	// taskPool recycles finished inline-program tasks across Fork cycles.
	// Only program-path tasks are pooled: a killed imperative body's
	// goroutine may still be unwinding and reading its channel fields, so
	// those structs are never reused. TaskAllocs counts pool misses — the
	// scheduler-side "copy on first write" count of a forked rep.
	taskPool   []*Task
	TaskAllocs uint64

	// kindTime accumulates CPU time per logical CPU per task kind, for
	// attribution analyses (e.g. how much injected noise a housekeeping
	// core absorbed). Indexed [cpu][kind].
	kindTime [][4]sim.Time
	// irqTime accumulates interrupt-context time per logical CPU.
	irqTime []sim.Time

	// ContextSwitches counts dispatches, for diagnostics.
	ContextSwitches uint64
	// GoroutineHandoffs counts requests fetched over the coroutine channel
	// handshake (two unbuffered channel operations each); InlineDispatches
	// counts requests served by inline Programs on the engine thread. Their
	// ratio makes the fast-path speedup mechanism observable (noiselab -v).
	GoroutineHandoffs uint64
	InlineDispatches  uint64
}

// New creates a scheduler for the given machine.
func New(eng *sim.Engine, topo *machine.Topology, opt Options) *Scheduler {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	s := &Scheduler{eng: eng, topo: topo, opt: opt}
	s.balanceFn = s.balanceTick
	n := topo.NumCPUs()
	s.cpus = make([]*cpuState, n)
	for i := range s.cpus {
		c := &cpuState{id: i}
		c.dl.less = dlLess
		c.fifo.less = fifoLess
		c.fair.less = fairLess
		c.sliceFn = func() { s.sliceExpire(c) }
		c.irqEndFn = func() { s.endIRQ(c) }
		s.cpus[i] = c
	}
	s.kindTime = make([][4]sim.Time, n)
	s.irqTime = make([]sim.Time, n)
	return s
}

// CPUTimeOf returns the accumulated CPU time of tasks of the given kind on
// one logical CPU.
func (s *Scheduler) CPUTimeOf(cpu int, kind Kind) sim.Time {
	if cpu < 0 || cpu >= len(s.kindTime) || kind < 0 || int(kind) >= 4 {
		return 0
	}
	return s.kindTime[cpu][kind]
}

// KindTotal returns the machine-wide CPU time consumed by tasks of a kind.
func (s *Scheduler) KindTotal(kind Kind) sim.Time {
	var total sim.Time
	for cpu := range s.kindTime {
		total += s.CPUTimeOf(cpu, kind)
	}
	return total
}

// IRQTime returns the interrupt-context time accumulated on a CPU.
func (s *Scheduler) IRQTime(cpu int) sim.Time {
	if cpu < 0 || cpu >= len(s.irqTime) {
		return 0
	}
	return s.irqTime[cpu]
}

// Engine returns the underlying simulation engine.
func (s *Scheduler) Engine() *sim.Engine { return s.eng }

// Topology returns the machine topology.
func (s *Scheduler) Topology() *machine.Topology { return s.topo }

// Now returns the current simulated time.
func (s *Scheduler) Now() sim.Time { return s.eng.Now() }

// SetTracer attaches a tracing hook. Recorded events steal
// Options.TraceOverhead of CPU time from the affected CPU, modelling the
// tracing overhead the paper quantifies in Table 1.
func (s *Scheduler) SetTracer(h Hook) { s.tracer = h }

// SetObserver attaches a passive observability recorder. It records
// scheduling spans and instants in simulated time without stealing any
// (contrast SetTracer), so a run is byte-identical with or without it.
func (s *Scheduler) SetObserver(r *obs.Recorder) { s.obs = r }

// Observer returns the attached recorder, nil when observability is off.
// Runtime layers (omprt, syclrt) emit their region/kernel spans through it.
func (s *Scheduler) Observer() *obs.Recorder { return s.obs }

// TotalPreemptions sums involuntary context switches over all tasks.
func (s *Scheduler) TotalPreemptions() uint64 {
	var n uint64
	for _, t := range s.tasks {
		n += uint64(t.Preempted)
	}
	return n
}

// TotalMigrations sums cross-CPU migrations over all tasks.
func (s *Scheduler) TotalMigrations() uint64 {
	var n uint64
	for _, t := range s.tasks {
		n += uint64(t.Migrations)
	}
	return n
}

// Tasks returns all spawned tasks.
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Spawn creates a task with an imperative body (run on its own goroutine
// under the coroutine protocol) and makes it runnable immediately. Bodies
// that are expressible as straight-line request sequences should use
// SpawnProgram/SpawnSeq instead: the inline path spawns no goroutine and
// performs no channel handoffs.
func (s *Scheduler) Spawn(spec TaskSpec, body func(*Ctx)) *Task {
	if body == nil {
		panic("cpusched: Spawn with nil body")
	}
	t := s.newTask(spec)
	t.body = body
	s.start(t)
	return t
}

// SpawnProgram creates a task whose body is an inline Program: the
// scheduler pulls requests from prog.Next directly on the engine thread —
// no backing goroutine, no channel handshake. Both execution paths are
// scheduled identically; a Program yielding the same request sequence as an
// imperative body produces a bit-identical simulation.
func (s *Scheduler) SpawnProgram(spec TaskSpec, prog Program) *Task {
	if prog == nil {
		panic("cpusched: SpawnProgram with nil program")
	}
	t := s.newTask(spec)
	t.prog = prog
	s.start(t)
	return t
}

// SpawnSeq creates an inline-program task that issues a fixed request
// sequence and exits — the common shape of noise threads and injector
// processes.
func (s *Scheduler) SpawnSeq(spec TaskSpec, reqs ...Request) *Task {
	if len(reqs) == 1 {
		return s.SpawnProgram(spec, &oneReqProgram{req: reqs[0]})
	}
	return s.SpawnProgram(spec, &seqProgram{reqs: reqs})
}

// newTask builds the task record shared by both execution paths.
func (s *Scheduler) newTask(spec TaskSpec) *Task {
	if spec.Policy == PolicyDeadline &&
		(spec.DLRuntime <= 0 || spec.DLPeriod < spec.DLRuntime) {
		panic(fmt.Sprintf("cpusched: task %q: SCHED_DEADLINE needs 0 < DLRuntime <= DLPeriod (got runtime=%d period=%d)",
			spec.Name, spec.DLRuntime, spec.DLPeriod))
	}
	aff := spec.Affinity.And(machine.AllCPUs(s.topo.NumCPUs()))
	if aff.Empty() {
		aff = machine.AllCPUs(s.topo.NumCPUs())
	}
	src := spec.Source
	if src == "" {
		src = spec.Name
	}
	s.nextID++
	var t *Task
	if n := len(s.taskPool); n > 0 {
		t = s.taskPool[n-1]
		s.taskPool[n-1] = nil
		s.taskPool = s.taskPool[:n-1]
	} else {
		t = &Task{sched: s}
		// Bound once per struct: the callbacks close over the task pointer,
		// so a pooled task carries them across Fork cycles.
		t.segDoneFn = func() { s.onSegmentDone(t) }
		t.wakeFn = func() {
			t.wakeTimer = nil
			s.wake(t)
		}
		t.dlBudgetFn = func() { s.dlBudgetFire(t) }
		t.dlReplFn = func() {
			t.dlReplTimer = nil
			s.dlReplenish(t)
		}
		s.TaskAllocs++
	}
	t.ID = s.nextID
	t.Name = spec.Name
	t.Source = src
	t.Kind = spec.Kind
	t.policy = spec.Policy
	t.rtprio = spec.RTPrio
	t.nice = spec.Nice
	t.dlRuntime = spec.DLRuntime
	t.dlPeriod = spec.DLPeriod
	t.affinity = aff
	t.state = StateNew
	t.cpu = -1
	t.lastRunCPU = -1
	t.qIndex = -1
	t.seg = segment{kind: segNone}
	return t
}

// start registers a freshly built task and makes it runnable.
func (s *Scheduler) start(t *Task) {
	s.tasks = append(s.tasks, t)
	s.liveTasks++
	if s.opt.BalanceInterval > 0 && s.balanceTimer == nil {
		s.balanceTimer = s.eng.After(s.opt.BalanceInterval, s.balanceFn)
	}
	s.wake(t)
}

// Kill forcefully terminates a task. Its body goroutine unwinds and exits.
func (s *Scheduler) Kill(t *Task) {
	if t.state == StateDone {
		return
	}
	if t.bar != nil {
		t.bar.drop(t)
		t.bar = nil
	}
	if t.dev != nil {
		t.dev.drop(t)
		t.dev = nil
	}
	if t.state == StateRunning {
		s.undispatch(t, StateDone)
		s.resched(s.cpus[t.cpu])
	} else {
		s.removeQueued(t)
		s.cancelTimers(t)
		t.state = StateDone
	}
	if t.started && t.prog == nil {
		// Unwind the parked body: its pending yield returns false and the
		// killSignal panic pops its frames. Kill only runs on the engine
		// thread, when the body is parked in (or irreversibly headed to)
		// a yield, so stop cannot interleave with a running body.
		t.stop()
	}
	s.finishCallbacks(t)
}

// Shutdown kills every unfinished task, releasing their goroutines. Call it
// at the end of a simulation run.
func (s *Scheduler) Shutdown() {
	for _, t := range s.tasks {
		s.Kill(t)
	}
	if s.balanceTimer != nil {
		s.balanceTimer.Cancel()
	}
}

func (s *Scheduler) finishCallbacks(t *Task) {
	s.liveTasks--
	cbs := t.onDone
	t.onDone = nil
	for _, fn := range cbs {
		fn()
	}
}

// ---- request fetch: inline fast path and coroutine handshake ----

// fetchNext obtains the task's next request. Program tasks are served
// inline on the engine thread; imperative bodies are resumed over the
// coroutine channel handshake. Both paths apply identical semantics:
// non-positive compute/memory demands are skipped (Ctx.Compute/Memory
// never send them), and relative sleeps resolve against the clock at
// fetch time (imperative bodies compute Now()+d at the same instant).
func (s *Scheduler) fetchNext(t *Task) request {
	if t.prog != nil {
		for {
			r, ok := t.prog.Next(t)
			if !ok {
				return request{kind: reqDone}
			}
			req := r.req
			switch req.kind {
			case reqCompute, reqMemory:
				if req.demand <= 0 {
					continue
				}
			case reqSleepFor:
				req.kind = reqSleepUntil
				req.until += s.eng.Now()
			}
			s.InlineDispatches++
			return req
		}
	}
	s.GoroutineHandoffs++
	if !t.started {
		t.started = true
		t.next, t.stop = iter.Pull(t.seq)
	}
	if r, ok := t.next(); ok {
		return r
	}
	return request{kind: reqDone}
}

// ---- rate model and accounting ----

func (s *Scheduler) siblingBusy(cpu int) bool {
	sib := s.topo.Sibling(cpu)
	if sib < 0 {
		return false
	}
	c := s.cpus[sib]
	return c.curr != nil || c.inIRQ
}

// currentRate returns the progress rate (demand units per ns) of a running
// task on its CPU right now.
func (s *Scheduler) currentRate(t *Task) float64 {
	c := s.cpus[t.cpu]
	if c.inIRQ {
		return 0
	}
	switch t.seg.kind {
	case segCompute, segSpin:
		r := s.topo.CyclesPerNs()
		if s.siblingBusy(t.cpu) {
			r *= s.topo.SMTFactor
		}
		return r
	case segMemory:
		return s.topo.MemRate(s.memStreams)
	default:
		return 0
	}
}

// account charges elapsed running time against the task's remaining demand
// and its vruntime.
func (s *Scheduler) account(t *Task) {
	now := s.eng.Now()
	if t.state == StateRunning && now > t.lastAccount {
		el := now - t.lastAccount
		t.remaining -= float64(el) * t.rate
		t.CPUTime += el
		if t.cpu >= 0 && int(t.Kind) < 4 {
			s.kindTime[t.cpu][t.Kind] += el
		}
		switch t.policy {
		case PolicyOther:
			t.vruntime += float64(el) * 1024 / t.weight()
		case PolicyDeadline:
			t.dlBudget -= el
		case PolicyFIFO:
			if s.opt.RTThrottle {
				s.cpus[t.cpu].rtUsed += el
			}
		}
	}
	t.lastAccount = now
}

// refresh recomputes a running task's rate and (re)schedules its segment
// completion, folding in any pending tracing overhead on its CPU.
func (s *Scheduler) refresh(t *Task) {
	if t.state != StateRunning {
		return
	}
	s.account(t)
	t.rate = s.currentRate(t)
	if t.completion != nil {
		t.completion.Cancel()
		t.completion = nil
	}
	if t.seg.kind == segSpin || t.rate <= 0 {
		return // unbounded or paused: completes via external event
	}
	if c := s.cpus[t.cpu]; c.pendingSteal > 0 {
		t.remaining += float64(c.pendingSteal) * t.rate
		c.pendingSteal = 0
	}
	var d sim.Time
	if t.remaining > 0 {
		d = sim.Time(math.Ceil(t.remaining / t.rate))
	}
	t.completion = s.eng.After(d, t.segDoneFn)
}

func (s *Scheduler) cancelTimers(t *Task) {
	if t.completion != nil {
		t.completion.Cancel()
		t.completion = nil
	}
	if t.wakeTimer != nil {
		t.wakeTimer.Cancel()
		t.wakeTimer = nil
	}
	if t.dlBudgetTimer != nil {
		t.dlBudgetTimer.Cancel()
		t.dlBudgetTimer = nil
	}
	if t.dlReplTimer != nil {
		t.dlReplTimer.Cancel()
		t.dlReplTimer = nil
	}
}

func (s *Scheduler) setStreamActive(t *Task, active bool) {
	if t.streamActive == active {
		return
	}
	t.streamActive = active
	if active {
		s.memStreams++
	} else {
		s.memStreams--
	}
	s.recalcMemStreams()
}

func (s *Scheduler) recalcMemStreams() {
	for _, c := range s.cpus {
		if c.curr != nil && c.curr.seg.kind == segMemory {
			s.refresh(c.curr)
		}
	}
}

// ---- queue management ----

func (s *Scheduler) removeQueued(t *Task) {
	if t.state != StateRunnable || t.cpu < 0 {
		return
	}
	c := s.cpus[t.cpu]
	if !c.dl.remove(t) && !c.fifo.remove(t) {
		c.fair.remove(t)
	}
}

// selectCPU implements wake-up placement: previous CPU if idle, then a
// fully idle core, then any idle CPU, then the least-loaded allowed CPU.
func (s *Scheduler) selectCPU(t *Task) *cpuState {
	allowed := t.affinity
	if t.cpu >= 0 && allowed.Has(t.cpu) && s.cpus[t.cpu].idle() {
		return s.cpus[t.cpu]
	}
	var fullIdle, anyIdle, least *cpuState
	leastLoad := math.MaxInt32
	for cpu := allowed.First(); cpu >= 0; cpu = allowed.NextFrom(cpu + 1) {
		c := s.cpus[cpu]
		if c.idle() {
			if anyIdle == nil {
				anyIdle = c
			}
			if fullIdle == nil && !s.siblingBusy(cpu) {
				sib := s.topo.Sibling(cpu)
				if sib < 0 || s.cpus[sib].idle() {
					fullIdle = c
				}
			}
			continue
		}
		load := c.queued()
		if c.curr != nil {
			load++
		}
		// Prefer strictly lighter CPUs; on ties prefer the task's
		// previous CPU (cache locality, and it spreads simultaneous
		// wakeups instead of piling them onto CPU 0).
		if load < leastLoad || (load == leastLoad && cpu == t.cpu) {
			leastLoad = load
			least = c
		}
	}
	if fullIdle != nil {
		return fullIdle
	}
	if anyIdle != nil {
		return anyIdle
	}
	if least != nil {
		return least
	}
	// All allowed CPUs loaded equally high; fall back to first allowed.
	return s.cpus[allowed.First()]
}

// wake makes a task runnable and places it on a CPU.
func (s *Scheduler) wake(t *Task) {
	if t.policy == PolicyDeadline && t.state != StateThrottled {
		// Throttled tasks woke through replenishment, which already set
		// their (deadline, budget); every other wakeup passes the CBS rule.
		s.cbsWake(t)
	}
	c := s.selectCPU(t)
	s.enqueue(c, t)
}

func (s *Scheduler) enqueue(c *cpuState, t *Task) {
	t.state = StateRunnable
	t.cpu = c.id
	s.seq++
	t.enqueueSeq = s.seq
	s.arrival++
	t.arrivalSeq = s.arrival
	switch t.policy {
	case PolicyDeadline:
		c.dl.push(t)
	case PolicyFIFO:
		c.fifo.push(t)
	default:
		if t.vruntime < c.minVruntime {
			t.vruntime = c.minVruntime
		}
		c.fair.push(t)
	}
	if c.curr == nil {
		s.resched(c)
		return
	}
	if s.shouldPreempt(c, t, c.curr) {
		curr := c.curr
		curr.Preempted++
		if s.obs != nil {
			s.obs.Instant(c.id, "preempt", "sched", curr.Name+" by "+t.Name, s.eng.Now())
		}
		s.undispatch(curr, StateRunnable)
		s.requeue(c, curr)
		s.resched(c)
		return
	}
	if c.curr.policy == PolicyOther && c.fair.len() > 0 {
		s.armSlice(c)
	}
}

// requeue puts a preempted task back on its CPU's queue, preserving FIFO
// ordering by its original enqueue sequence.
func (s *Scheduler) requeue(c *cpuState, t *Task) {
	t.state = StateRunnable
	s.arrival++
	t.arrivalSeq = s.arrival
	switch t.policy {
	case PolicyDeadline:
		c.dl.push(t)
	case PolicyFIFO:
		c.fifo.push(t)
	default:
		c.fair.push(t)
	}
}

func (s *Scheduler) shouldPreempt(c *cpuState, newT, curr *Task) bool {
	if newT.policy == PolicyDeadline {
		if curr.policy != PolicyDeadline {
			return true
		}
		return newT.dlDeadline < curr.dlDeadline
	}
	if curr.policy == PolicyDeadline {
		return false
	}
	if newT.policy == PolicyFIFO {
		if c.rtThrottled {
			return false
		}
		if curr.policy == PolicyOther {
			return true
		}
		return newT.rtprio > curr.rtprio
	}
	if curr.policy == PolicyFIFO {
		return false
	}
	// Fair wakeup preemption: only if the waker is clearly behind.
	gran := float64(s.opt.WakeupGranularity) * 1024 / curr.weight()
	return newT.vruntime+gran < curr.vruntime
}

// pickNext removes and returns the best runnable task for c, or nil. The
// heap keys reproduce the exact selection of the previous linear scans:
// FIFO by (rtprio desc, enqueueSeq), fair by (vruntime, enqueueSeq).
func (s *Scheduler) pickNext(c *cpuState) *Task {
	// Deadline class first: EDF sits above RT, and RT throttling does not
	// gate it (CBS throttles each deadline task individually).
	if c.dl.len() > 0 {
		return c.dl.pop()
	}
	if c.fifo.len() > 0 && !c.rtThrottled {
		return c.fifo.pop()
	}
	return c.fair.pop()
}

// resched dispatches the next task on an idle CPU.
func (s *Scheduler) resched(c *cpuState) {
	for c.curr == nil {
		t := s.pickNext(c)
		if t == nil {
			return
		}
		if !s.dispatch(c, t) {
			continue // task blocked/finished instantly; pick again
		}
		return
	}
}

// dispatch puts t on CPU c. It reports whether t actually occupies the CPU
// afterwards (false when its next request blocked or finished immediately).
func (s *Scheduler) dispatch(c *cpuState, t *Task) bool {
	now := s.eng.Now()
	migrated := t.lastRunCPU >= 0 && t.lastRunCPU != c.id && t.seg.kind != segNone
	t.cpu = c.id
	t.state = StateRunning
	t.runStart = now
	t.lastAccount = now
	c.curr = t
	s.ContextSwitches++
	s.occupancyChanged(c)
	if t.seg.kind == segMemory {
		s.setStreamActive(t, true)
	}
	if t.seg.kind == segNone {
		s.processRequests(t)
		return s.cpus[c.id].curr == t
	}
	if migrated {
		t.Migrations++
		if s.obs != nil {
			s.obs.Instant(c.id, "migrate", "sched", t.Name, now)
		}
		if s.opt.MigrationCost > 0 {
			// Cache-warmup penalty: extra demand at the current rate.
			r := s.currentRate(t)
			if r > 0 {
				t.remaining += float64(s.opt.MigrationCost) * r
			}
		}
	}
	s.refresh(t)
	s.armSlice(c)
	s.startThrottleWatch(c, t)
	// A deadline task re-dispatched with an exhausted budget throttles
	// here instead of running, releasing the CPU again.
	s.startDLWatch(c, t)
	return s.cpus[c.id].curr == t
}

// undispatch removes the running task from its CPU, accounting and tracing
// its run interval, and leaves it in the given state.
func (s *Scheduler) undispatch(t *Task, newState TaskState) {
	c := s.cpus[t.cpu]
	if c.curr != t {
		panic(fmt.Sprintf("cpusched: undispatch %q not current on cpu %d", t.Name, t.cpu))
	}
	s.account(t)
	s.cancelTimers(t)
	if c.sliceTimer != nil {
		c.sliceTimer.Cancel()
		c.sliceTimer = nil
	}
	if t.vruntime > c.minVruntime {
		c.minVruntime = t.vruntime
	}
	c.curr = nil
	t.state = newState
	t.lastRunCPU = c.id
	if t.streamActive {
		s.setStreamActive(t, false)
	}
	s.emitTaskRun(c, t, t.runStart, s.eng.Now())
	s.occupancyChanged(c)
}

// occupancyChanged updates the SMT sibling's rate after c's occupancy
// changed.
func (s *Scheduler) occupancyChanged(c *cpuState) {
	sib := s.topo.Sibling(c.id)
	if sib >= 0 {
		if st := s.cpus[sib].curr; st != nil {
			s.refresh(st)
		}
	}
}

// processRequests fetches and handles requests from t's body until one
// consumes time (or t blocks/finishes, freeing the CPU). Zero-time
// requests (policy changes, barrier releases) can have side effects that
// preempt t itself; a request fetched while t no longer holds its CPU is
// stashed and consumed at the next dispatch.
func (s *Scheduler) processRequests(t *Task) {
	for {
		var req request
		if t.hasPending {
			req = t.pendingReq
			t.hasPending = false
		} else {
			req = s.fetchNext(t)
		}
		if t.state != StateRunning || s.cpus[t.cpu].curr != t {
			t.pendingReq = req
			t.hasPending = true
			return
		}
		c := s.cpus[t.cpu]
		switch req.kind {
		case reqCompute, reqMemory:
			if req.kind == reqCompute {
				t.seg = segment{kind: segCompute}
			} else {
				t.seg = segment{kind: segMemory}
			}
			t.remaining = req.demand
			t.lastAccount = s.eng.Now()
			if req.kind == reqMemory {
				s.setStreamActive(t, true)
			}
			s.refresh(t)
			s.armSlice(c)
			s.startThrottleWatch(c, t)
			s.startDLWatch(c, t)
			return
		case reqSleepUntil:
			now := s.eng.Now()
			if req.until <= now {
				continue // already past: no time passes
			}
			t.seg = segment{kind: segNone}
			s.undispatch(t, StateSleeping)
			t.wakeTimer = s.eng.At(req.until, t.wakeFn)
			s.resched(c)
			return
		case reqBarrier:
			if done := s.barrierArrive(t, req.bar, req.spin); done {
				continue // released immediately (last arriver): keep going
			}
			if req.spin {
				t.seg = segment{kind: segSpin}
				t.remaining = math.MaxFloat64
				t.lastAccount = s.eng.Now()
				s.refresh(t)
				s.armSlice(c)
				// Spinning consumes budget like any other segment. Without
				// these a deadline task that re-enters a spin barrier after a
				// release (barrierArrive cancels its timers before resuming
				// it) runs unwatched: its budget goes negative without ever
				// throttling, and an equal-deadline Runnable peer on the same
				// CPU starves forever — EDF does not preempt on ties.
				s.startThrottleWatch(c, t)
				s.startDLWatch(c, t)
				return
			}
			t.seg = segment{kind: segNone}
			s.undispatch(t, StateBlocked)
			s.resched(c)
			return
		case reqBlockOn:
			if req.dev == nil {
				panic(fmt.Sprintf("cpusched: task %q BlockOn nil device (not registered?)", t.Name))
			}
			t.seg = segment{kind: segNone}
			if s.obs != nil {
				t.ioArrive = s.eng.Now()
				s.obs.Instant(c.id, "io-submit", "io", req.dev.spec.Name+" "+t.Name, s.eng.Now())
			}
			s.undispatch(t, StateBlockedIO)
			req.dev.submit(t, req.demand)
			s.resched(c)
			return
		case reqSetPolicy:
			t.nice = req.nice
			s.applyPolicy(t, req.policy, req.rtprio)
			if s.cpus[t.cpu].curr != t {
				// Policy downgrade caused preemption; the body resumes when
				// the task is dispatched again.
				return
			}
		case reqYield:
			t.seg = segment{kind: segNone}
			s.undispatch(t, StateRunnable)
			// Push behind queued peers.
			if t.policy == PolicyOther && c.fair.len() > 0 {
				// Max scan over the heap array: order-independent, so heap
				// layout cannot influence the result.
				maxV := t.vruntime
				for _, o := range c.fair.tasks() {
					if o.vruntime > maxV {
						maxV = o.vruntime
					}
				}
				t.vruntime = maxV
			}
			s.seq++
			t.enqueueSeq = s.seq
			s.requeue(c, t)
			s.resched(c)
			return
		case reqDone:
			t.seg = segment{kind: segNone}
			s.undispatch(t, StateDone)
			s.finishCallbacks(t)
			s.resched(c)
			return
		}
	}
}

// applyPolicy changes a running task's class, re-evaluating preemption when
// it downgrades from FIFO while other FIFO tasks wait. The deadline class
// cannot be entered this way: its CBS parameters are part of the TaskSpec,
// so SCHED_DEADLINE is assigned at spawn only (as sched_setattr would
// reject a setattr without a reservation).
func (s *Scheduler) applyPolicy(t *Task, p Policy, rtprio int) {
	if p == PolicyDeadline || t.policy == PolicyDeadline {
		panic(fmt.Sprintf("cpusched: task %q: SCHED_DEADLINE is assigned at spawn, not via SetPolicy", t.Name))
	}
	s.account(t)
	t.policy = p
	t.rtprio = rtprio
	c := s.cpus[t.cpu]
	if p == PolicyOther && c.fifo.len() > 0 && !c.rtThrottled {
		t.Preempted++
		s.undispatch(t, StateRunnable)
		s.requeue(c, t)
		s.resched(c)
	}
}

// onSegmentDone fires when a task's current segment demand reaches zero.
func (s *Scheduler) onSegmentDone(t *Task) {
	t.completion = nil
	if t.state != StateRunning {
		return // stale
	}
	s.account(t)
	if t.remaining > 0.5 {
		// Rate dropped since scheduling; re-arm.
		s.refresh(t)
		return
	}
	if t.streamActive {
		s.setStreamActive(t, false)
	}
	t.seg = segment{kind: segNone}
	t.remaining = 0
	s.processRequests(t)
}

// ---- fair timeslice ----

func (s *Scheduler) armSlice(c *cpuState) {
	if c.curr == nil || c.curr.policy != PolicyOther || c.fair.len() == 0 {
		return
	}
	if c.sliceTimer != nil && c.sliceTimer.Pending() {
		return
	}
	c.sliceTimer = s.eng.After(s.opt.Slice, c.sliceFn)
}

func (s *Scheduler) sliceExpire(c *cpuState) {
	c.sliceTimer = nil
	t := c.curr
	if t == nil || t.policy != PolicyOther || c.fair.len() == 0 {
		return
	}
	t.Preempted++
	if s.obs != nil {
		s.obs.Instant(c.id, "slice-expire", "sched", t.Name, s.eng.Now())
	}
	s.undispatch(t, StateRunnable)
	s.seq++
	t.enqueueSeq = s.seq
	s.requeue(c, t)
	s.resched(c)
}

// ---- tracing ----

func (s *Scheduler) emitTaskRun(c *cpuState, t *Task, start, end sim.Time) {
	if s.obs != nil && end > start {
		s.obs.Span(c.id, t.Name, t.Kind.String(), t.policy.String(), start, end)
	}
	if s.tracer == nil || end <= start {
		return
	}
	s.tracer.TaskRan(c.id, t, start, end)
	s.traceSteal(c)
}

// traceSteal accumulates the per-record tracing overhead against the CPU
// the record was taken on; refresh charges it to the next accountable
// segment running there.
func (s *Scheduler) traceSteal(c *cpuState) {
	if s.opt.TraceOverhead <= 0 {
		return
	}
	c.pendingSteal += s.opt.TraceOverhead
	if t := c.curr; t != nil && t.state == StateRunning &&
		(t.seg.kind == segCompute || t.seg.kind == segMemory) {
		s.refresh(t)
	}
}
