package cpusched

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Simulated I/O devices: the blocking counterpart of the CPU-bound fluid
// model. A task that issues BlockOn(device, bytes) leaves its CPU
// (StateBlockedIO), joins the device's FIFO request queue, and is woken by
// the completion interrupt the device raises when its deterministic service
// time elapses. The completion runs through the ordinary ClassIRQ path —
// it pauses whatever occupies the interrupted CPU, queues behind other
// pending interrupts (including injected IRQ noise), and only at the end of
// the handler does the blocked task re-enter the run queues via the normal
// wake-up placement. That queuing is precisely what makes I/O-bound
// workloads sensitive to IRQ noise: injected interrupts delay completion
// handlers, and every delayed handler delays a wakeup.
//
// Determinism: the device is a serial server — one request in service at a
// time, strict FIFO admission — whose service time is a pure function of
// the request (Latency + bytes/BytesPerNs). Completion order therefore
// depends only on submission order, which the single-threaded engine makes
// deterministic, so runs remain byte-identical across batching, obs
// attachment, and executor parallelism.

// DeviceSpec configures a simulated I/O device.
type DeviceSpec struct {
	// Name identifies the device ("disk0", "net0"); BlockOn requests
	// resolve devices by name through Scheduler.Device.
	Name string
	// Latency is the fixed per-request service latency (request setup,
	// seek, flush barrier), charged before any byte streams.
	Latency sim.Time
	// BytesPerNs is the streaming bandwidth of the device; requests add
	// ceil(bytes/BytesPerNs) on top of Latency. Zero means latency-only
	// (pure synchronization devices, e.g. an fsync barrier).
	BytesPerNs float64
	// IRQCPU is the logical CPU completion interrupts are delivered to —
	// the simulated equivalent of the device's IRQ affinity. Defaults to
	// CPU 0, the classic unmanaged-affinity placement.
	IRQCPU int
	// IRQDur is the completion-handler duration in interrupt context.
	// Defaults to 1µs when zero.
	IRQDur sim.Time
	// Source labels completion interrupts in traces and obs spans;
	// defaults to "irq/<Name>".
	Source string
}

// ioReq is one queued device request. The task pointer is nilled when the
// requester is killed mid-flight; service still completes (the "hardware"
// does not know), but no wakeup is delivered.
type ioReq struct {
	t     *Task
	bytes float64
}

// Device is a deterministic serial I/O device with a FIFO request queue.
type Device struct {
	s    *Scheduler
	spec DeviceSpec

	// q/head form the request queue in irqQ style: appended at the tail,
	// consumed via head so the backing array survives each burst. While
	// busy, q[head] is the request in service.
	q    []ioReq
	head int
	busy bool
	// serviceFn is the service-completion callback, bound once at
	// construction so starting a request does not allocate.
	serviceFn func()

	// Requests counts completed requests; BusyTime accumulates service
	// time (both diagnostics, read by nothing that schedules).
	Requests uint64
	BusyTime sim.Time
}

// AddDevice registers a device on the scheduler, replacing any previous
// device with the same name. Devices are per-rep state: Scheduler.Fork
// discards all registrations, so batched worlds re-register in every rep
// body exactly as they re-spawn tasks.
func (s *Scheduler) AddDevice(spec DeviceSpec) *Device {
	if spec.Name == "" {
		panic("cpusched: AddDevice with empty name")
	}
	if spec.IRQCPU < 0 || spec.IRQCPU >= len(s.cpus) {
		panic(fmt.Sprintf("cpusched: device %q IRQ CPU %d out of range", spec.Name, spec.IRQCPU))
	}
	if spec.Latency < 0 || spec.BytesPerNs < 0 {
		panic(fmt.Sprintf("cpusched: device %q has negative service parameters", spec.Name))
	}
	if spec.Source == "" {
		spec.Source = "irq/" + spec.Name
	}
	if spec.IRQDur <= 0 {
		spec.IRQDur = 1 * sim.Microsecond
	}
	d := &Device{s: s, spec: spec}
	d.serviceFn = func() { d.serviceDone() }
	if s.devices == nil {
		s.devices = make(map[string]*Device)
	}
	s.devices[spec.Name] = d
	return d
}

// Device returns the registered device with the given name, nil if none.
func (s *Scheduler) Device(name string) *Device { return s.devices[name] }

// Name returns the device name.
func (d *Device) Name() string { return d.spec.Name }

// serviceTime is the deterministic service-time model: fixed latency plus
// bytes over bandwidth.
func (d *Device) serviceTime(bytes float64) sim.Time {
	t := d.spec.Latency
	if bytes > 0 && d.spec.BytesPerNs > 0 {
		t += sim.Time(math.Ceil(bytes / d.spec.BytesPerNs))
	}
	return t
}

// submit enqueues a blocked task's request and starts service if the device
// is idle. Called from processRequests after the task left its CPU.
func (d *Device) submit(t *Task, bytes float64) {
	t.dev = d
	d.q = append(d.q, ioReq{t: t, bytes: bytes})
	if !d.busy {
		d.startNext()
	}
}

// startNext begins service of the queue head, or rewinds the drained queue.
func (d *Device) startNext() {
	if d.head >= len(d.q) {
		// Drained: rewind to the start of the backing array so the next
		// burst appends without reallocating.
		d.q = d.q[:0]
		d.head = 0
		d.busy = false
		return
	}
	d.busy = true
	d.s.eng.After(d.serviceTime(d.q[d.head].bytes), d.serviceFn)
}

// serviceDone fires when the in-service request's service time elapses: it
// raises the completion interrupt (which wakes the requester at handler
// end) and starts the next queued request.
func (d *Device) serviceDone() {
	r := d.q[d.head]
	d.q[d.head].t = nil
	d.head++
	d.Requests++
	d.BusyTime += d.serviceTime(r.bytes)
	if r.t != nil {
		d.s.injectDeviceIRQ(d, r.t)
	}
	d.startNext()
}

// drop forgets a killed task's pending request. The request itself still
// occupies its queue slot (service order of the others is unchanged, as on
// real hardware where a submitted command cannot be unsubmitted); only the
// wakeup is suppressed.
func (d *Device) drop(t *Task) {
	for i := d.head; i < len(d.q); i++ {
		if d.q[i].t == t {
			d.q[i].t = nil
			return
		}
	}
}

// injectDeviceIRQ delivers a device-completion interrupt carrying the task
// to wake when the handler finishes. It mirrors InjectIRQ's queue-or-start
// logic with the extra wake payload.
func (s *Scheduler) injectDeviceIRQ(d *Device, t *Task) {
	c := s.cpus[d.spec.IRQCPU]
	if c.inIRQ {
		c.irqQ = append(c.irqQ, pendingIRQ{class: ClassIRQ, source: d.spec.Source, dur: d.spec.IRQDur, wake: t})
		return
	}
	s.startIRQ(c, ClassIRQ, d.spec.Source, d.spec.IRQDur, t)
}

// wakeFromIO resumes a task whose device request completed: the io-wait obs
// span closes and the task re-enters the run queues through the ordinary
// wake-up placement. Runs at the end of the completion interrupt handler.
func (s *Scheduler) wakeFromIO(t *Task) {
	if t.state != StateBlockedIO {
		return // killed while blocked; nothing to wake
	}
	t.dev = nil
	if s.obs != nil {
		// The wait span runs from submission to the end of the completion
		// handler: device queueing + service + IRQ delivery delay. Its
		// tail is what IRQ noise stretches.
		s.obs.Span(t.cpu, "io-wait", "io", t.Name, t.ioArrive, s.eng.Now())
	}
	s.wake(t)
}
