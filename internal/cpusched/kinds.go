// Package cpusched simulates a Linux-like CPU scheduler on top of the
// discrete-event engine: per-CPU runqueues with a fair (CFS-like, vruntime)
// class and a real-time FIFO class with strict preemption of fair tasks,
// interrupt context that preempts everything, wake-up placement, periodic
// idle balancing, affinity masks, and an optional RT-throttling fail-safe
// (the one the paper disables during noise injection).
//
// Task bodies are ordinary Go functions executed as coroutines against the
// engine: exactly one of {engine, one task body} runs at any instant, under
// a strict channel handshake, so simulations remain deterministic.
//
// Execution progress uses a fluid rate model: compute work (cycles) runs at
// the core clock, halved-ish when the SMT sibling is busy; memory work
// (bytes) shares the machine's bandwidth equally among concurrent streams,
// capped by the per-core bandwidth (see machine.Topology.MemRate).
package cpusched

// Policy is the scheduling class of a task.
type Policy int

const (
	// PolicyOther is the default Linux time-sharing class (CFS).
	PolicyOther Policy = iota
	// PolicyFIFO is the real-time first-in-first-out class: it always
	// preempts PolicyOther and is never preempted by it.
	PolicyFIFO
	// PolicyDeadline is the EDF class with CBS budget enforcement (see
	// deadline.go). It sits above FIFO: a runnable deadline task preempts
	// both other classes, and deadline tasks order among themselves by
	// earliest absolute deadline.
	PolicyDeadline
)

func (p Policy) String() string {
	switch p {
	case PolicyOther:
		return "SCHED_OTHER"
	case PolicyFIFO:
		return "SCHED_FIFO"
	case PolicyDeadline:
		return "SCHED_DEADLINE"
	default:
		return "SCHED_?"
	}
}

// Kind classifies tasks for tracing and reporting.
type Kind int

const (
	// KindWorkload marks application threads under measurement.
	KindWorkload Kind = iota
	// KindNoiseThread marks OS background threads (kworkers, daemons).
	KindNoiseThread
	// KindInjector marks replayed noise from the noise injector.
	KindInjector
	// KindOS marks other bookkeeping tasks.
	KindOS
)

func (k Kind) String() string {
	switch k {
	case KindWorkload:
		return "workload"
	case KindNoiseThread:
		return "noise"
	case KindInjector:
		return "injector"
	case KindOS:
		return "os"
	default:
		return "?"
	}
}

// NoiseClass distinguishes the three osnoise event classes from the paper's
// Figure 3.
type NoiseClass int

const (
	// ClassIRQ is hardware interrupt noise (e.g. local_timer).
	ClassIRQ NoiseClass = iota
	// ClassSoftIRQ is software interrupt noise (RCU, SCHED, TIMER, ...).
	ClassSoftIRQ
	// ClassThread is thread noise (kworkers, daemons).
	ClassThread
)

func (c NoiseClass) String() string {
	switch c {
	case ClassIRQ:
		return "irq_noise"
	case ClassSoftIRQ:
		return "softirq_noise"
	case ClassThread:
		return "thread_noise"
	default:
		return "?"
	}
}
