package cpusched

// RT throttling: the Linux fail-safe that limits SCHED_FIFO tasks to
// RTRuntime per RTPeriod on each CPU so a runaway real-time task cannot
// permanently starve the system. The paper's noise injector explicitly
// disables this fail-safe to reach 100% processor utilization (§4.3); the
// scheduler therefore defaults to RTThrottle=false, and enabling it is
// exercised by tests and ablations.

// startThrottleWatch arms the throttle deadline for a FIFO task that was
// just dispatched (or started a new segment) on c.
func (s *Scheduler) startThrottleWatch(c *cpuState, t *Task) {
	if !s.opt.RTThrottle || t.policy != PolicyFIFO {
		return
	}
	now := s.eng.Now()
	if now-c.rtWindowStart >= s.opt.RTPeriod {
		c.rtWindowStart = now
		c.rtUsed = 0
	}
	budget := s.opt.RTRuntime - c.rtUsed
	if budget <= 0 {
		s.throttleNow(c)
		return
	}
	if c.throttleTimer != nil {
		c.throttleTimer.Cancel()
	}
	cc := c
	c.throttleTimer = s.eng.After(budget, func() { s.throttleFire(cc) })
}

func (s *Scheduler) throttleFire(c *cpuState) {
	c.throttleTimer = nil
	t := c.curr
	if t == nil || t.policy != PolicyFIFO {
		return
	}
	s.account(t)
	if c.rtUsed >= s.opt.RTRuntime {
		s.throttleNow(c)
		return
	}
	// Budget not actually exhausted (the task slept meanwhile); re-arm.
	s.startThrottleWatch(c, t)
}

// throttleNow suspends FIFO execution on c until the current period ends.
func (s *Scheduler) throttleNow(c *cpuState) {
	if c.rtThrottled {
		return
	}
	c.rtThrottled = true
	if t := c.curr; t != nil && t.policy == PolicyFIFO {
		t.Preempted++
		s.undispatch(t, StateRunnable)
		s.requeue(c, t)
	}
	windowEnd := c.rtWindowStart + s.opt.RTPeriod
	s.eng.At(windowEnd, func() {
		c.rtThrottled = false
		c.rtWindowStart = s.eng.Now()
		c.rtUsed = 0
		if c.curr != nil && c.curr.policy == PolicyOther && c.fifo.len() > 0 {
			t := c.curr
			t.Preempted++
			s.undispatch(t, StateRunnable)
			s.requeue(c, t)
		}
		s.resched(c)
	})
	s.resched(c)
}
