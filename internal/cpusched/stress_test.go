package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// stressScenario runs a randomized mix of tasks (policies, affinities,
// sleeps, barriers, irqs) and returns the scheduler for invariant checks.
func stressScenario(seed uint64, topoName string) (*Scheduler, sim.Time) {
	eng := sim.NewEngine()
	topo := machine.MustPreset(topoName)
	s := New(eng, topo, Defaults())
	rng := sim.NewRNG(seed)
	ncpu := topo.NumCPUs()

	nBar := 2 + rng.Intn(3)
	bars := make([]*Barrier, 0, nBar)
	// Barrier participants must all exist, or the run deadlocks; count
	// subscribers first.
	type plan struct {
		policy   Policy
		rtprio   int
		affinity machine.CPUSet
		segs     int
		barrier  int // -1 = none
		spin     bool
		mem      bool
		sleep    sim.Time
	}
	nTasks := 4 + rng.Intn(8)
	plans := make([]plan, nTasks)
	barUsers := make([]int, nBar)
	for i := range plans {
		p := plan{
			segs:    1 + rng.Intn(5),
			barrier: -1,
			mem:     rng.Bool(0.3),
			sleep:   sim.Time(rng.Intn(3)) * sim.Millisecond,
		}
		if rng.Bool(0.2) {
			p.policy = PolicyFIFO
			p.rtprio = 1 + rng.Intn(90)
		}
		if rng.Bool(0.5) {
			p.affinity = machine.SetOf(rng.Intn(ncpu))
		}
		// Only fair tasks join barriers: a SCHED_FIFO task spinning at a
		// barrier would starve a pinned fair participant forever — real
		// RT priority inversion, deliberately out of scope here (the RT
		// throttle fail-safe exists for exactly that).
		if p.policy == PolicyOther && rng.Bool(0.4) {
			p.barrier = rng.Intn(nBar)
			p.spin = rng.Bool(0.5)
			barUsers[p.barrier]++
		}
		plans[i] = p
	}
	for b := 0; b < nBar; b++ {
		if barUsers[b] > 0 {
			bars = append(bars, NewBarrier(barUsers[b]))
		} else {
			bars = append(bars, nil)
		}
	}

	var tasks []*Task
	for i, p := range plans {
		p := p
		i := i
		tasks = append(tasks, s.Spawn(TaskSpec{
			Name:     "stress",
			Policy:   p.policy,
			RTPrio:   p.rtprio,
			Affinity: p.affinity,
			Kind:     KindWorkload,
		}, func(c *Ctx) {
			if p.sleep > 0 {
				c.Sleep(p.sleep)
			}
			for k := 0; k < p.segs; k++ {
				if p.mem {
					c.Memory(float64(1+i%4) * 1e6)
				} else {
					c.Compute(float64(1+i%4) * 1e6)
				}
				if k == 0 && p.barrier >= 0 {
					c.Barrier(bars[p.barrier], p.spin)
				}
			}
		}))
	}
	// Random irq storm.
	for k := 0; k < 20; k++ {
		at := sim.Time(rng.Intn(10)) * sim.Millisecond
		cpu := rng.Intn(ncpu)
		dur := sim.Time(1+rng.Intn(200)) * sim.Microsecond
		eng.At(at, func() { s.InjectIRQ(cpu, ClassIRQ, "stress-irq", dur) })
	}
	// Bound simulated time so a genuine scheduler deadlock fails the test
	// instead of hanging it.
	const deadline = 10 * sim.Second
	eng.RunWhile(func() bool {
		if eng.Now() > deadline {
			return false
		}
		for _, t := range tasks {
			if !t.Done() {
				return true
			}
		}
		return false
	})
	return s, eng.Now()
}

// TestStressInvariants runs many random scenarios and checks global
// invariants: every task finishes (no lost wakeups or deadlocks), CPU time
// is conserved (no CPU is over-committed), and nothing panics.
func TestStressInvariants(t *testing.T) {
	for _, topoName := range []string{machine.TinyTest, machine.TinySMTTest} {
		topo := machine.MustPreset(topoName)
		for seed := uint64(0); seed < 40; seed++ {
			s, end := stressScenario(seed, topoName)
			total := sim.Time(0)
			for _, tk := range s.Tasks() {
				if !tk.Done() {
					t.Fatalf("seed %d on %s: task %q never finished (deadlock)", seed, topoName, tk.Name)
				}
				if tk.CPUTime < 0 {
					t.Fatalf("seed %d: negative CPU time", seed)
				}
				total += tk.CPUTime
			}
			// Conservation: aggregate CPU time cannot exceed wall time x
			// number of logical CPUs.
			if cap := end * sim.Time(topo.NumCPUs()); total > cap {
				t.Fatalf("seed %d on %s: CPU time %v exceeds capacity %v", seed, topoName, total, cap)
			}
			s.Shutdown()
		}
	}
}

// TestStressDeterministic replays scenarios and demands bit-identical
// outcomes.
func TestStressDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		s1, end1 := stressScenario(seed, machine.TinySMTTest)
		s2, end2 := stressScenario(seed, machine.TinySMTTest)
		if end1 != end2 {
			t.Fatalf("seed %d: end times differ: %v vs %v", seed, end1, end2)
		}
		if s1.ContextSwitches != s2.ContextSwitches {
			t.Fatalf("seed %d: context switches differ", seed)
		}
		for i := range s1.Tasks() {
			a, b := s1.Tasks()[i], s2.Tasks()[i]
			if a.CPUTime != b.CPUTime || a.Migrations != b.Migrations {
				t.Fatalf("seed %d task %d: per-task stats differ", seed, i)
			}
		}
		s1.Shutdown()
		s2.Shutdown()
	}
}

// TestStressGoroutineHygiene ensures Shutdown reaps every task goroutine
// even under chaotic scenarios (no leak growth across many scenarios).
func TestStressGoroutineHygiene(t *testing.T) {
	for seed := uint64(100); seed < 130; seed++ {
		s, _ := stressScenario(seed, machine.TinyTest)
		s.Shutdown()
		for _, tk := range s.Tasks() {
			if !tk.Done() {
				t.Fatal("undead task after shutdown")
			}
		}
	}
}
