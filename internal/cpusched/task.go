package cpusched

import (
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// TaskState is the lifecycle state of a task.
type TaskState int

const (
	// StateNew means the task body has not run yet.
	StateNew TaskState = iota
	// StateRunnable means the task is queued on a CPU.
	StateRunnable
	// StateRunning means the task currently occupies a CPU.
	StateRunning
	// StateSleeping means the task waits on a timer.
	StateSleeping
	// StateBlocked means the task waits on a barrier.
	StateBlocked
	// StateBlockedIO means the task waits on a device request; the
	// device's completion interrupt wakes it (see device.go).
	StateBlockedIO
	// StateThrottled means a deadline-class task exhausted its CBS budget
	// and waits for replenishment at its deadline (see deadline.go).
	StateThrottled
	// StateDone means the task body returned or the task was killed.
	StateDone
)

type segKind int

const (
	segNone segKind = iota // no current segment: next request must be fetched
	segCompute
	segMemory
	segSpin // busy-wait with unbounded demand (spinning barrier wait)
)

type reqKind int

const (
	reqCompute reqKind = iota
	reqMemory
	reqSleepUntil
	reqSleepFor // relative sleep, resolved to reqSleepUntil at fetch time
	reqBarrier
	reqSetPolicy
	reqYield
	reqBlockOn // block on a device request until its completion IRQ
	reqDone
)

type request struct {
	kind   reqKind
	demand float64  // cycles or bytes (reqBlockOn: request size in bytes)
	until  sim.Time // reqSleepUntil; duration for reqSleepFor
	bar    *Barrier // reqBarrier
	dev    *Device  // reqBlockOn
	spin   bool     // reqBarrier: spin instead of blocking
	policy Policy   // reqSetPolicy
	rtprio int      // reqSetPolicy
	nice   int      // reqSetPolicy
}

// Request is one scheduling request yielded by a Program — the declarative
// counterpart of one Ctx method call. Construct values with the Req*
// helpers; the zero value is invalid.
type Request struct {
	req request
}

// ReqCompute is the Program counterpart of Ctx.Compute. Non-positive cycle
// counts are skipped by the scheduler, exactly as Ctx.Compute skips them.
func ReqCompute(cycles float64) Request {
	return Request{request{kind: reqCompute, demand: cycles}}
}

// ReqMemory is the Program counterpart of Ctx.Memory; non-positive volumes
// are skipped.
func ReqMemory(bytes float64) Request {
	return Request{request{kind: reqMemory, demand: bytes}}
}

// ReqSleepUntil is the Program counterpart of Ctx.SleepUntil.
func ReqSleepUntil(at sim.Time) Request {
	return Request{request{kind: reqSleepUntil, until: at}}
}

// ReqSleep is the Program counterpart of Ctx.Sleep: it sleeps for d
// nanoseconds from the simulated instant the request is fetched (matching
// when an imperative body would have computed Now()+d).
func ReqSleep(d sim.Time) Request {
	return Request{request{kind: reqSleepFor, until: d}}
}

// ReqBarrier is the Program counterpart of Ctx.Barrier.
func ReqBarrier(b *Barrier, spin bool) Request {
	return Request{request{kind: reqBarrier, bar: b, spin: spin}}
}

// ReqSetPolicy is the Program counterpart of Ctx.SetPolicyNice.
func ReqSetPolicy(p Policy, rtprio, nice int) Request {
	return Request{request{kind: reqSetPolicy, policy: p, rtprio: rtprio, nice: nice}}
}

// ReqYield is the Program counterpart of Ctx.Yield.
func ReqYield() Request {
	return Request{request{kind: reqYield}}
}

// ReqBlockOn is the Program counterpart of Ctx.BlockOn: the task blocks on
// a request of the given size to the device until the device's completion
// interrupt wakes it. The device must be registered on the scheduler
// (AddDevice) before the request is processed.
func ReqBlockOn(d *Device, bytes float64) Request {
	return Request{request{kind: reqBlockOn, dev: d, demand: bytes}}
}

// Program is the inline task-execution path: a resumable body that yields
// one Request at a time. The scheduler calls Next directly on the engine
// thread whenever the task must produce its next request — no backing
// goroutine, no channel handshake — which makes spawning and dispatching
// straight-line bodies (noise threads, injector processes, worker loops)
// dramatically cheaper than the imperative Ctx path. Next returning
// ok=false ends the task, like an imperative body returning.
//
// A Program must yield the byte-identical request sequence its imperative
// equivalent would issue through Ctx; the scheduler treats both paths
// identically (zero-demand compute/memory requests are skipped on both).
// Next runs on the engine thread: it may read simulation state reachable
// from t but must not call Engine or Scheduler methods.
type Program interface {
	Next(t *Task) (Request, bool)
}

// seqProgram replays a fixed request list — sufficient for most noise
// tasks.
type seqProgram struct {
	reqs []Request
	pc   int
}

func (p *seqProgram) Next(*Task) (Request, bool) {
	if p.pc >= len(p.reqs) {
		return Request{}, false
	}
	r := p.reqs[p.pc]
	p.pc++
	return r, true
}

// oneReqProgram issues a single request and exits — the dominant noise
// shape (one compute burst). Keeping it slice-free lets SpawnSeq's
// single-request case spawn with one allocation.
type oneReqProgram struct {
	req  Request
	done bool
}

func (p *oneReqProgram) Next(*Task) (Request, bool) {
	if p.done {
		return Request{}, false
	}
	p.done = true
	return p.req, true
}

type segment struct {
	kind segKind
}

type killSignal struct{}

// TaskSpec describes a task to spawn.
type TaskSpec struct {
	// Name identifies the task in logs and stats.
	Name string
	// Source is the tracer source label, e.g. "kworker/3:1". Defaults to
	// Name when empty.
	Source string
	// Kind classifies the task for tracing.
	Kind Kind
	// Policy and RTPrio select the scheduling class. RTPrio only matters
	// for PolicyFIFO; higher preempts lower.
	Policy Policy
	RTPrio int
	// Nice is the fair-class niceness (-20..19, lower = heavier weight).
	Nice int
	// DLRuntime/DLPeriod are the PolicyDeadline CBS reservation: DLRuntime
	// of CPU per DLPeriod, with the (implicit) relative deadline equal to
	// the period. Required for PolicyDeadline, ignored otherwise.
	DLRuntime sim.Time
	DLPeriod  sim.Time
	// Affinity restricts the task to a CPU set; the zero value means all
	// CPUs of the machine.
	Affinity machine.CPUSet
}

// Task is a schedulable thread of execution.
type Task struct {
	ID     int
	Name   string
	Source string
	Kind   Kind

	policy   Policy
	rtprio   int
	nice     int
	affinity machine.CPUSet

	state TaskState
	cpu   int // current or last CPU, -1 before first dispatch
	// lastRunCPU is the CPU the task last executed on, for migration cost.
	lastRunCPU int

	sched *Scheduler
	// Exactly one of body (imperative coroutine path) and prog (inline
	// program path) is set. next/stop/yield exist only on the coroutine
	// path: next resumes the body and returns its next request, stop
	// aborts a parked body, and yield parks the body until the scheduler
	// fetches again (all three from iter.Pull, created at first fetch).
	body    func(*Ctx)
	prog    Program
	next    func() (request, bool)
	stop    func()
	yield   func(request) bool
	started bool

	seg          segment
	remaining    float64
	rate         float64
	lastAccount  sim.Time
	runStart     sim.Time
	streamActive bool

	vruntime   float64
	enqueueSeq uint64
	// qIndex is the task's position in its CPU's run-queue heap, -1 when
	// not queued. arrivalSeq is bumped on every queue append (enqueue and
	// requeue); the balancer uses it to recover the old slice insertion
	// order when picking a migration victim.
	qIndex     int
	arrivalSeq uint64

	completion *sim.Timer
	wakeTimer  *sim.Timer
	// segDoneFn and wakeFn are the completion/wake timer callbacks, bound
	// once at spawn so re-arming a timer does not allocate a new closure
	// per segment or sleep.
	segDoneFn func()
	wakeFn    func()
	bar       *Barrier
	// barArrive is the simulated instant the task arrived at bar, recorded
	// only while an obs recorder is attached (it feeds barrier-wait spans).
	barArrive sim.Time
	// dev is the device the task is blocked on (StateBlockedIO); ioArrive
	// is the submission instant, recorded only while an obs recorder is
	// attached (it feeds io-wait spans).
	dev      *Device
	ioArrive sim.Time

	// SCHED_DEADLINE (CBS) state: the static reservation, the current
	// absolute deadline and remaining budget, the budget-exhaustion and
	// replenishment timers, and their callbacks (bound once at allocation,
	// like segDoneFn/wakeFn).
	dlRuntime     sim.Time
	dlPeriod      sim.Time
	dlDeadline    sim.Time
	dlBudget      sim.Time
	dlBudgetTimer *sim.Timer
	dlReplTimer   *sim.Timer
	dlBudgetFn    func()
	dlReplFn      func()
	// pendingReq holds a fetched-but-unprocessed request when the task
	// lost its CPU mid-processing (e.g. preempted by a task woken from a
	// barrier it just released); it is consumed at the next dispatch.
	// Stored by value (hasPending marks occupancy) so stashing does not
	// allocate.
	pendingReq request
	hasPending bool

	onDone []func()

	// Statistics.
	CPUTime    sim.Time
	Migrations int
	Preempted  int
}

// recycle strips a finished inline-program task for pooled reuse, keeping
// only the identity-bound pieces: the scheduler pointer and the two timer
// callbacks, which close over the task pointer itself and so remain valid
// across reuse. Everything else resets to the state a fresh struct would
// have after newTask's common field assignments.
func (t *Task) recycle() {
	sched, segDone, wake := t.sched, t.segDoneFn, t.wakeFn
	dlBudget, dlRepl := t.dlBudgetFn, t.dlReplFn
	*t = Task{
		sched:      sched,
		segDoneFn:  segDone,
		wakeFn:     wake,
		dlBudgetFn: dlBudget,
		dlReplFn:   dlRepl,
		cpu:        -1,
		lastRunCPU: -1,
		qIndex:     -1,
	}
}

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.state }

// Done reports whether the task has finished (or was killed).
func (t *Task) Done() bool { return t.state == StateDone }

// CPU returns the task's current (or most recent) CPU, -1 if never run.
func (t *Task) CPU() int { return t.cpu }

// Policy returns the task's scheduling policy.
func (t *Task) Policy() Policy { return t.policy }

// OnDone registers fn to run (on the engine thread) when the task finishes.
func (t *Task) OnDone(fn func()) { t.onDone = append(t.onDone, fn) }

func (t *Task) weight() float64 {
	// 1024 at nice 0, ~+25% CPU per nice step down, as in CFS.
	return 1024 * math.Pow(1.25, -float64(t.nice))
}

// seq runs the task body as a pull coroutine (iter.Pull): each yielded
// request parks the body — one runtime coroutine switch — until the
// scheduler fetches the next request. This replaced an unbuffered-channel
// ping-pong whose two goroutine-scheduler round trips per handoff were
// measurable on the master task of every rep. The body only ever executes
// while the engine thread waits inside next(), so body and engine never
// run concurrently. When the body returns, the sequence ends and fetchNext
// reads the exhaustion as the task's completion; a kill unwinds the body
// by making its parked yield return false.
func (t *Task) seq(yield func(request) bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				return // killed: unwound by stop
			}
			panic(r)
		}
	}()
	t.yield = yield
	t.body(&Ctx{t: t, s: t.sched})
}

// send yields a request to the scheduler, parking the body until the next
// fetch. It aborts the body when the task has been killed (stop makes the
// pending yield return false).
func (t *Task) send(r request) {
	if !t.yield(r) {
		panic(killSignal{})
	}
}

// Ctx is the execution context handed to a task body. All methods may only
// be called from the body function (they drive the coroutine handshake).
type Ctx struct {
	t *Task
	s *Scheduler
}

// Compute executes work costing the given number of CPU cycles.
func (c *Ctx) Compute(cycles float64) {
	if cycles <= 0 {
		return
	}
	c.t.send(request{kind: reqCompute, demand: cycles})
}

// Memory streams the given number of bytes through the memory system,
// sharing machine bandwidth with concurrent streams.
func (c *Ctx) Memory(bytes float64) {
	if bytes <= 0 {
		return
	}
	c.t.send(request{kind: reqMemory, demand: bytes})
}

// SleepUntil blocks the task (releasing its CPU) until simulated time at.
// If at is in the past it returns immediately.
func (c *Ctx) SleepUntil(at sim.Time) {
	c.t.send(request{kind: reqSleepUntil, until: at})
}

// Sleep blocks the task for d nanoseconds of simulated time.
func (c *Ctx) Sleep(d sim.Time) { c.SleepUntil(c.Now() + d) }

// Barrier waits at b. With spin=true the task busy-waits, consuming its CPU
// until release (OpenMP-style active wait); with spin=false it blocks and
// releases the CPU.
func (c *Ctx) Barrier(b *Barrier, spin bool) {
	c.t.send(request{kind: reqBarrier, bar: b, spin: spin})
}

// BlockOn submits a request of the given size to the device and blocks
// (releasing the CPU) until the device's completion interrupt wakes the
// task. Unlike Compute/Memory, a zero-byte request still blocks: the device
// charges its fixed latency (an fsync barrier is exactly that).
func (c *Ctx) BlockOn(d *Device, bytes float64) {
	c.t.send(request{kind: reqBlockOn, dev: d, demand: bytes})
}

// SetPolicy switches the task's scheduling class; takes no simulated time.
// The task's niceness is preserved.
func (c *Ctx) SetPolicy(p Policy, rtprio int) {
	c.t.send(request{kind: reqSetPolicy, policy: p, rtprio: rtprio, nice: c.t.nice})
}

// SetPolicyNice switches class and niceness together (SCHED_OTHER tasks
// only use nice; FIFO tasks only use rtprio).
func (c *Ctx) SetPolicyNice(p Policy, rtprio, nice int) {
	c.t.send(request{kind: reqSetPolicy, policy: p, rtprio: rtprio, nice: nice})
}

// Yield relinquishes the CPU, letting same-class peers run.
func (c *Ctx) Yield() {
	c.t.send(request{kind: reqYield})
}

// Now returns the current simulated time. Safe because the body only runs
// while the engine thread is parked in the handshake.
func (c *Ctx) Now() sim.Time { return c.s.eng.Now() }

// CPU returns the logical CPU the task currently occupies.
func (c *Ctx) CPU() int { return c.t.cpu }

// Task returns the underlying task (read-only use).
func (c *Ctx) Task() *Task { return c.t }

// ComputeDur executes compute work sized to take d nanoseconds at full
// single-thread speed (it takes longer under SMT sharing or preemption).
func (c *Ctx) ComputeDur(d sim.Time) {
	c.Compute(float64(d) * c.s.topo.CyclesPerNs())
}
