package cpusched

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// FuzzBlockOnForkDeterminism drives the block/wake machinery with arbitrary
// opcode sequences and checks the tentpole invariant the golden fixtures pin
// for real workloads: a batch-forked scheduler replays any program — however
// hostile its interleaving of BlockOn, compute, memory, and sleep across
// policies — with byte-identical outcomes to a fresh engine. The fuzz bytes
// decode into up to four tasks (fair, FIFO, or deadline, optionally pinned)
// issuing up to six bounded requests each against two devices with
// different latencies and IRQ CPUs, so completions, CBS throttling, and
// cross-CPU wakeups interleave freely.

// fuzzProg is one decoded task: its spec plus a device-index-tagged request
// list (device pointers are per-rep, resolved inside each run).
type fuzzProg struct {
	spec TaskSpec
	ops  []fuzzOp
}

type fuzzOp struct {
	kind byte // 0 compute, 1 blockon, 2 sleep, 3 memory
	dev  int  // blockon only
	arg  float64
}

// decodeBlockOnProgs turns fuzz bytes into a bounded program set. Every
// byte string decodes to something valid (or empty); demands are clamped so
// any input terminates in well under 10 simulated milliseconds.
func decodeBlockOnProgs(data []byte) []fuzzProg {
	var progs []fuzzProg
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	for len(progs) < 4 {
		pol, ok := next()
		if !ok {
			break
		}
		aff, ok := next()
		if !ok {
			break
		}
		spec := TaskSpec{Name: fmt.Sprintf("fz%d", len(progs))}
		if aff&0x80 == 0 {
			spec.Affinity = machine.SetOf(int(aff) % 4)
		}
		switch pol % 3 {
		case 1:
			spec.Policy = PolicyFIFO
			spec.RTPrio = 10 + int(pol)%50
		case 2:
			spec.Policy = PolicyDeadline
			p1, _ := next()
			p2, _ := next()
			spec.DLRuntime = sim.Time(1+int(p1)%100) * sim.Microsecond
			spec.DLPeriod = spec.DLRuntime * sim.Time(1+int(p2)%8)
		}
		nOps, ok := next()
		if !ok {
			break
		}
		var ops []fuzzOp
		for i := 0; i < 1+int(nOps)%6; i++ {
			op, ok1 := next()
			arg, ok2 := next()
			if !ok1 || !ok2 {
				break
			}
			switch op % 4 {
			case 0:
				ops = append(ops, fuzzOp{kind: 0, arg: float64(1+arg) * 1000})
			case 1:
				ops = append(ops, fuzzOp{kind: 1, dev: int(arg) % 2, arg: float64(arg) * 512})
			case 2:
				ops = append(ops, fuzzOp{kind: 2, arg: float64(1+arg) * float64(10*sim.Microsecond)})
			case 3:
				ops = append(ops, fuzzOp{kind: 3, arg: float64(1+arg) * 4096})
			}
		}
		if len(ops) == 0 {
			break
		}
		progs = append(progs, fuzzProg{spec: spec, ops: ops})
	}
	return progs
}

// runBlockOnProgs registers the two devices (per-rep state: Fork discards
// them), spawns the decoded programs, runs to completion, and fingerprints
// every observable outcome a golden record would: finish time, dispatch
// count, per-task completion times and CPU time, per-device counters.
func runBlockOnProgs(s *Scheduler, progs []fuzzProg) string {
	devs := [2]*Device{
		s.AddDevice(DeviceSpec{Name: "fz-nic", Latency: 2 * sim.Microsecond,
			BytesPerNs: 10, IRQCPU: 0, IRQDur: 500}),
		s.AddDevice(DeviceSpec{Name: "fz-disk", Latency: 30 * sim.Microsecond,
			BytesPerNs: 1, IRQCPU: 1, IRQDur: 2 * sim.Microsecond}),
	}
	tasks := make([]*Task, len(progs))
	doneAt := make([]sim.Time, len(progs))
	for i, p := range progs {
		reqs := make([]Request, len(p.ops))
		for j, op := range p.ops {
			switch op.kind {
			case 0:
				reqs[j] = ReqCompute(op.arg)
			case 1:
				reqs[j] = ReqBlockOn(devs[op.dev], op.arg)
			case 2:
				reqs[j] = ReqSleepUntil(sim.Time(op.arg))
			case 3:
				reqs[j] = ReqMemory(op.arg)
			}
		}
		i := i
		tasks[i] = s.SpawnSeq(p.spec, reqs...)
		tasks[i].OnDone(func() { doneAt[i] = s.eng.Now() })
	}
	s.eng.RunWhile(func() bool {
		for _, t := range tasks {
			if !t.Done() {
				return true
			}
		}
		return false
	})
	var b strings.Builder
	fmt.Fprintf(&b, "end=%d switches=%d", s.eng.Now(), s.ContextSwitches)
	for i, t := range tasks {
		fmt.Fprintf(&b, " t%d=%d/%d", i, doneAt[i], t.CPUTime)
	}
	for _, d := range devs {
		fmt.Fprintf(&b, " %s=%d/%d", d.Name(), d.Requests, d.BusyTime)
	}
	return b.String()
}

func FuzzBlockOnForkDeterminism(f *testing.F) {
	// Pinned corpus: the interleavings the unit tests cover by hand.
	f.Add([]byte{}) // no program
	// One deadline task alternating compute and both devices.
	f.Add([]byte{2, 0, 40, 3, 5, 0, 100, 1, 1, 0, 200, 1, 0, 1, 3})
	// Deadline and fair sharing CPU 0, fair blocking on the slow disk.
	f.Add([]byte{2, 0, 10, 2, 3, 0, 255, 1, 1, 0, 80, 0, 0, 2, 1, 3, 3, 120})
	// FIFO preempting a sleeper, deadline waking cross-CPU via the NIC IRQ.
	f.Add([]byte{1, 1, 2, 2, 60, 0, 200, 0, 0, 40, 2, 2, 1, 50, 2, 5, 1, 2})
	// Unpinned tasks, memory traffic, repeated zero-byte (latency-only) I/O.
	f.Add([]byte{0, 128, 4, 3, 33, 1, 0, 1, 0, 2, 129, 77, 1, 1, 4, 1, 0, 1, 4})

	topo := machine.MustPreset(machine.TinyTest)
	f.Fuzz(func(t *testing.T, data []byte) {
		progs := decodeBlockOnProgs(data)
		if len(progs) == 0 {
			return
		}
		fresh := New(sim.NewEngine(), topo, noBalance())
		want := runBlockOnProgs(fresh, progs)
		fresh.Shutdown()

		batch := sim.NewBatch()
		s := New(batch.Engine(), topo, noBalance())
		snap := s.Snapshot()
		for round := 0; round < 2; round++ {
			got := runBlockOnProgs(s, progs)
			if got != want {
				t.Fatalf("forked round %d diverged from fresh engine:\nfresh: %s\nfork:  %s",
					round, want, got)
			}
			s.Shutdown()
			s.Fork(snap)
			batch.Fork()
		}
	})
}
