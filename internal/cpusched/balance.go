package cpusched

// balanceTick is the periodic idle load balancer: waiting fair tasks are
// pulled from the busiest runqueues onto idle CPUs they are allowed on.
// Running tasks are never migrated (a simplification of CFS's conservative
// active balancing); together with wake-up placement this is what lets
// "roaming" (unpinned) workload threads move away from noisy cores.
func (s *Scheduler) balanceTick() {
	if s.liveTasks == 0 {
		// Nothing to balance; stop so the event queue can drain. Spawn
		// re-arms the timer.
		s.balanceTimer = nil
		return
	}
	for _, idle := range s.cpus {
		if !idle.idle() {
			continue
		}
		// Find the CPU with the most waiting fair tasks that has one
		// allowed to run on the idle CPU. The victim is the allowed task
		// that has waited longest (lowest arrival sequence) — the task the
		// old insertion-ordered queue yielded as its first allowed entry.
		var donor *cpuState
		var victim *Task
		for _, busy := range s.cpus {
			if busy == idle || busy.fair.len() == 0 {
				continue
			}
			if donor != nil && busy.fair.len() <= donor.fair.len() {
				continue
			}
			var cand *Task
			for _, t := range busy.fair.tasks() {
				if t.affinity.Has(idle.id) && (cand == nil || t.arrivalSeq < cand.arrivalSeq) {
					cand = t
				}
			}
			if cand != nil {
				donor = busy
				victim = cand
			}
		}
		if victim == nil {
			continue
		}
		donor.fair.remove(victim)
		s.enqueue(idle, victim)
	}
	s.balanceTimer = s.eng.After(s.opt.BalanceInterval, s.balanceFn)
}
