package cpusched

// balanceTick is the periodic idle load balancer: waiting fair tasks are
// pulled from the busiest runqueues onto idle CPUs they are allowed on.
// Running tasks are never migrated (a simplification of CFS's conservative
// active balancing); together with wake-up placement this is what lets
// "roaming" (unpinned) workload threads move away from noisy cores.
func (s *Scheduler) balanceTick() {
	if s.liveTasks == 0 {
		// Nothing to balance; stop so the event queue can drain. Spawn
		// re-arms the timer.
		s.balanceTimer = nil
		return
	}
	for _, idle := range s.cpus {
		if !idle.idle() {
			continue
		}
		// Find the CPU with the most waiting fair tasks that has one
		// allowed to run on the idle CPU.
		var donor *cpuState
		var victim *Task
		for _, busy := range s.cpus {
			if busy == idle || len(busy.fair) == 0 {
				continue
			}
			if donor != nil && len(busy.fair) <= len(donor.fair) {
				continue
			}
			for _, t := range busy.fair {
				if t.affinity.Has(idle.id) {
					donor = busy
					victim = t
					break
				}
			}
		}
		if victim == nil {
			continue
		}
		donor.fair = removeTask(donor.fair, victim)
		s.enqueue(idle, victim)
	}
	s.balanceTimer = s.eng.After(s.opt.BalanceInterval, s.balanceTick)
}
