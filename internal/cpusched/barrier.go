package cpusched

// Barrier is a reusable (sense-reversing) synchronization barrier for n
// tasks. Waiters either spin (consuming their CPU, OpenMP active-wait
// style) or block (releasing the CPU). The last arriver releases everyone.
type Barrier struct {
	n       int
	waiters []*Task // arrival order; excludes the releasing arriver
	gen     uint64
}

// NewBarrier creates a barrier for n participants. n must be positive.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("cpusched: barrier size must be positive")
	}
	return &Barrier{n: n}
}

// N returns the participant count.
func (b *Barrier) N() int { return b.n }

// Generation returns how many times the barrier has been released.
func (b *Barrier) Generation() uint64 { return b.gen }

// drop removes a killed task from the waiter list so the barrier does not
// deadlock the remaining participants permanently (they still wait for a
// participant that will never come; dropping only cleans bookkeeping).
func (b *Barrier) drop(t *Task) {
	for i, w := range b.waiters {
		if w == t {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			return
		}
	}
}

// barrierScratch holds the waiter-classification buffers for one barrier
// release. Scratches are pooled on the scheduler as a free stack because
// releases nest: a resumed spinner can arrive at — and release — another
// barrier from within processRequests below.
type barrierScratch struct {
	spinners []*Task
	blocked  []*Task
}

func (s *Scheduler) getBarScratch() *barrierScratch {
	if n := len(s.barScratch); n > 0 {
		sc := s.barScratch[n-1]
		s.barScratch = s.barScratch[:n-1]
		return sc
	}
	return &barrierScratch{}
}

func (s *Scheduler) putBarScratch(sc *barrierScratch) {
	for i := range sc.spinners {
		sc.spinners[i] = nil
	}
	for i := range sc.blocked {
		sc.blocked[i] = nil
	}
	sc.spinners = sc.spinners[:0]
	sc.blocked = sc.blocked[:0]
	s.barScratch = append(s.barScratch, sc)
}

// barrierArrive processes task t arriving at b. It reports true when the
// barrier released immediately (t was the last arriver), in which case t's
// body continues without waiting.
func (s *Scheduler) barrierArrive(t *Task, b *Barrier, spin bool) bool {
	if b == nil {
		panic("cpusched: barrier arrive on nil barrier")
	}
	if len(b.waiters)+1 < b.n {
		t.bar = b
		if s.obs != nil {
			t.barArrive = s.eng.Now()
		}
		b.waiters = append(b.waiters, t)
		return false
	}
	// Last arriver: release everyone. Classify every waiter BEFORE
	// resuming any of them: a resumed spinner may immediately block on a
	// different barrier, and must not then be mistaken for a blocked
	// waiter of this one.
	waiters := b.waiters
	// Reuse the waiter backing array for the next generation. Safe even
	// when a resumed waiter re-arrives at b below: by then the
	// classification loop has finished reading waiters.
	b.waiters = waiters[:0]
	b.gen++
	sc := s.getBarScratch()
	for _, w := range waiters {
		w.bar = nil
		if s.obs != nil {
			// The wait span runs from the waiter's arrival to this release;
			// its length is exactly the straggler slack the paper's barrier
			// analyses reason about. The releasing arriver has no span.
			s.obs.Span(w.cpu, "barrier-wait", "barrier", w.Name, w.barArrive, s.eng.Now())
		}
		switch {
		case w.state == StateRunning && w.seg.kind == segSpin:
			sc.spinners = append(sc.spinners, w)
		case (w.state == StateRunnable || w.state == StateThrottled) && w.seg.kind == segSpin:
			// Preempted — or CBS-throttled — while spinning: clear the spin
			// so the task fetches its next request when dispatched (or woken
			// by budget replenishment) again. Leaving the segment in place
			// would resume an infinite spin at a barrier that no longer
			// exists: the task would burn its budget, throttle, replenish,
			// and spin again forever.
			w.seg = segment{kind: segNone}
			w.remaining = 0
		case w.state == StateBlocked:
			sc.blocked = append(sc.blocked, w)
		}
	}
	// Spinners proceed in place: they hold CPUs right now.
	for _, w := range sc.spinners {
		s.account(w)
		s.cancelTimers(w)
		w.seg = segment{kind: segNone}
		w.remaining = 0
		s.processRequests(w)
	}
	for _, w := range sc.blocked {
		s.wake(w)
	}
	s.putBarScratch(sc)
	return true
}
