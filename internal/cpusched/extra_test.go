package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

func TestEnumStrings(t *testing.T) {
	if PolicyOther.String() != "SCHED_OTHER" || PolicyFIFO.String() != "SCHED_FIFO" {
		t.Fatal("policy strings")
	}
	if Policy(99).String() != "SCHED_?" {
		t.Fatal("unknown policy string")
	}
	kinds := map[Kind]string{
		KindWorkload: "workload", KindNoiseThread: "noise",
		KindInjector: "injector", KindOS: "os", Kind(42): "?",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	classes := map[NoiseClass]string{
		ClassIRQ: "irq_noise", ClassSoftIRQ: "softirq_noise",
		ClassThread: "thread_noise", NoiseClass(9): "?",
	}
	for c, want := range classes {
		if c.String() != want {
			t.Fatalf("class %d = %q", c, c.String())
		}
	}
}

func TestAccessors(t *testing.T) {
	s := newTiny(noBalance())
	if s.Engine() == nil || s.Topology() == nil {
		t.Fatal("accessors nil")
	}
	w := s.Spawn(TaskSpec{Name: "w"}, computeBody(3e6))
	if w.State() != StateRunning && w.State() != StateRunnable {
		t.Fatalf("fresh task state %v", w.State())
	}
	runToDone(s, w)
	if w.State() != StateDone {
		t.Fatal("done state")
	}
	var ranOn int
	v := s.Spawn(TaskSpec{Name: "v", Affinity: machine.SetOf(2)}, func(c *Ctx) {
		ranOn = c.CPU()
		c.Compute(3e3)
	})
	runToDone(s, v)
	if ranOn != 2 {
		t.Fatalf("Ctx.CPU() = %d, want 2", ranOn)
	}
	s.Shutdown()
}

func TestBarrierAccessors(t *testing.T) {
	b := NewBarrier(3)
	if b.N() != 3 || b.Generation() != 0 {
		t.Fatal("barrier accessors")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) should panic")
		}
	}()
	NewBarrier(0)
}

func TestSetPolicyNiceAffectsFairShare(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	// Two tasks; one boosts itself to nice -15 mid-run.
	boosted := s.Spawn(TaskSpec{Name: "boosted", Affinity: aff}, func(c *Ctx) {
		c.SetPolicyNice(PolicyOther, 0, -15)
		c.Compute(3e8)
	})
	normal := s.Spawn(TaskSpec{Name: "normal", Affinity: aff}, computeBody(3e8))
	s.eng.RunUntil(100 * sim.Millisecond)
	if boosted.CPUTime <= normal.CPUTime {
		t.Fatalf("boosted nice should dominate: %v vs %v", boosted.CPUTime, normal.CPUTime)
	}
	s.Shutdown()
}

func TestInjectIRQValidation(t *testing.T) {
	s := newTiny(noBalance())
	defer s.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range cpu should panic")
		}
	}()
	s.InjectIRQ(99, ClassIRQ, "x", sim.Millisecond)
}

func TestInjectIRQZeroDurationIgnored(t *testing.T) {
	s := newTiny(noBalance())
	w := s.Spawn(TaskSpec{Name: "w", Affinity: machine.SetOf(0)}, computeBody(3e6))
	s.eng.At(100, func() { s.InjectIRQ(0, ClassIRQ, "x", 0) })
	got := runToDone(s, w)
	within(t, got, sim.Millisecond, 0.001, "zero-duration irq must not delay")
	s.Shutdown()
}

func TestKillQueuedTask(t *testing.T) {
	s := newTiny(noBalance())
	aff := machine.SetOf(0)
	hog := s.Spawn(TaskSpec{Name: "hog", Affinity: aff}, computeBody(3e8))
	queued := s.Spawn(TaskSpec{Name: "queued", Affinity: aff}, computeBody(3e6))
	s.eng.RunUntil(sim.Millisecond)
	if queued.State() != StateRunnable {
		t.Fatalf("expected queued task, got %v", queued.State())
	}
	s.Kill(queued)
	if !queued.Done() {
		t.Fatal("killed queued task should be done")
	}
	runToDone(s, hog)
	// Killing twice is a no-op.
	s.Kill(queued)
	s.Shutdown()
}

func TestThrottleWithSleepingFIFO(t *testing.T) {
	// A FIFO task that sleeps inside its window: throttleFire must re-arm
	// rather than throttle, because the budget was not actually consumed.
	opt := noBalance()
	opt.RTThrottle = true
	opt.RTRuntime = 20 * sim.Millisecond
	opt.RTPeriod = 100 * sim.Millisecond
	s := newTiny(opt)
	aff := machine.SetOf(0)
	rt := s.Spawn(TaskSpec{Name: "rt", Policy: PolicyFIFO, RTPrio: 10, Affinity: aff},
		func(c *Ctx) {
			c.Compute(30e6) // 10ms
			c.Sleep(50 * sim.Millisecond)
			c.Compute(30e6) // another 10ms: total 20ms, exactly the budget
		})
	got := runToDone(s, rt)
	// 10ms run + 50ms sleep + 10ms run = 70ms, no throttling.
	within(t, got, 70*sim.Millisecond, 0.02, "sleeping FIFO not throttled")
	s.Shutdown()
}

func TestThrottleWindowRollover(t *testing.T) {
	opt := noBalance()
	opt.RTThrottle = true
	opt.RTRuntime = 10 * sim.Millisecond
	opt.RTPeriod = 50 * sim.Millisecond
	s := newTiny(opt)
	aff := machine.SetOf(0)
	// 30ms of FIFO work: windows of 10ms run + 40ms throttled.
	rt := s.Spawn(TaskSpec{Name: "rt", Policy: PolicyFIFO, RTPrio: 10, Affinity: aff},
		computeBody(90e6))
	got := runToDone(s, rt)
	// Runs 0-10, 50-60, 100-110 -> done at 110ms.
	within(t, got, 110*sim.Millisecond, 0.05, "throttle window rollover")
	s.Shutdown()
}

func TestSpawnNilBodyPanics(t *testing.T) {
	s := newTiny(noBalance())
	defer s.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("nil body should panic")
		}
	}()
	s.Spawn(TaskSpec{Name: "bad"}, nil)
}

func TestBarrierNilPanics(t *testing.T) {
	s := newTiny(noBalance())
	// The body runs immediately at Spawn (engine context); the nil
	// barrier must panic on the engine side.
	defer func() {
		if recover() == nil {
			t.Fatal("nil barrier should panic")
		}
		s.Shutdown()
	}()
	s.Spawn(TaskSpec{Name: "w"}, func(c *Ctx) {
		c.Barrier(nil, false)
	})
}

func TestMemoryTaskPreemptedReleasesBandwidth(t *testing.T) {
	s := newTiny(noBalance()) // 20 GB/s machine, 10 GB/s per core
	aff0 := machine.SetOf(0)
	// Two streaming tasks on different CPUs: each gets 10 GB/s.
	m1 := s.Spawn(TaskSpec{Name: "m1", Affinity: aff0}, func(c *Ctx) { c.Memory(100e6) })
	m2 := s.Spawn(TaskSpec{Name: "m2", Affinity: machine.SetOf(1)}, func(c *Ctx) { c.Memory(100e6) })
	// At 2ms, FIFO noise preempts m1 for 5ms: m2 should then stream at
	// full core rate (10 GB/s), unaffected; m1 finishes late.
	s.eng.At(2*sim.Millisecond, func() {
		s.Spawn(TaskSpec{Name: "noise", Policy: PolicyFIFO, RTPrio: 5, Affinity: aff0},
			func(c *Ctx) { c.ComputeDur(5 * sim.Millisecond) })
	})
	runToDone(s, m2)
	within(t, s.eng.Now(), 10*sim.Millisecond, 0.05, "unpreempted stream")
	runToDone(s, m1)
	within(t, s.eng.Now(), 15*sim.Millisecond, 0.05, "preempted stream delayed by noise")
	s.Shutdown()
}
