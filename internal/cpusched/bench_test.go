package cpusched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Scheduler microbenchmarks: spawn/dispatch cost on both execution paths
// and the barrier-storm pattern that dominates fork-join workloads.
// `make bench` records these in BENCH_kernel.json.

func benchScheduler() (*sim.Engine, *Scheduler) {
	eng := sim.NewEngine()
	topo, err := machine.Preset(machine.TinyTest)
	if err != nil {
		panic(err)
	}
	return eng, New(eng, topo, Defaults())
}

// BenchmarkSpawnDispatchGoroutine measures one full task lifecycle on the
// imperative path: goroutine spawn, two channel handoffs per request,
// compute segment, exit.
func BenchmarkSpawnDispatchGoroutine(b *testing.B) {
	eng, s := benchScheduler()
	spec := TaskSpec{Name: "t", Kind: KindNoiseThread}
	body := func(c *Ctx) { c.Compute(1000) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Spawn(spec, body)
		eng.Run()
	}
}

// BenchmarkSpawnDispatchInline measures the same lifecycle on the inline
// program path: no goroutine, requests served on the engine thread.
func BenchmarkSpawnDispatchInline(b *testing.B) {
	eng, s := benchScheduler()
	spec := TaskSpec{Name: "t", Kind: KindNoiseThread}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpawnSeq(spec, ReqCompute(1000))
		eng.Run()
	}
}

// stormProgram loops compute + spinning barrier forever — the OpenMP
// region pattern.
type stormProgram struct {
	bar  *Barrier
	step int
}

func (p *stormProgram) Next(*Task) (Request, bool) {
	p.step++
	if p.step%2 == 1 {
		return ReqCompute(50_000), true
	}
	return ReqBarrier(p.bar, true), true
}

// BenchmarkBarrierStorm measures repeated compute/active-wait-barrier
// rounds across a full team — the §4 straggler structure. Reported per
// barrier round.
func BenchmarkBarrierStorm(b *testing.B) {
	eng, s := benchScheduler()
	n := s.Topology().NumCPUs()
	bar := NewBarrier(n)
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tasks[i] = s.SpawnProgram(TaskSpec{Name: "w", Kind: KindWorkload,
			Affinity: machine.SetOf(i)}, &stormProgram{bar: bar})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := bar.Generation()
		eng.RunWhile(func() bool { return bar.Generation() == start })
	}
	b.StopTimer()
	for _, t := range tasks {
		s.Kill(t)
	}
}

// BenchmarkInjectIRQ measures interrupt delivery and completion, the
// highest-frequency event class in the noise profiles.
func BenchmarkInjectIRQ(b *testing.B) {
	eng, s := benchScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InjectIRQ(0, ClassIRQ, "local_timer:236", 1000)
		eng.Run()
	}
}
