package cpusched

import "repro/internal/sim"

// Snapshot marks a scheduler's construction point so later reps can Fork
// back to it. The per-CPU structures, bound callbacks, and accounting
// arrays built by New are the seed-independent prefix every rep of a
// normalized spec shares; everything a run dirties (queues, timers, task
// records, counters) is restored by Fork. The snapshot must be taken before
// any task is spawned — the scheduler cannot reproduce an arbitrary
// mid-run state, only its pristine one.
type Snapshot struct{}

// Snapshot records the scheduler's construction point. It panics when
// tasks have already been spawned: only the pristine post-New state is a
// valid fork target.
func (s *Scheduler) Snapshot() Snapshot {
	if len(s.tasks) != 0 || s.nextID != 0 {
		panic("cpusched: Snapshot after tasks were spawned")
	}
	return Snapshot{}
}

// Fork rewinds the scheduler to its construction snapshot. Unfinished tasks
// are killed exactly as Shutdown kills them (callers that want the legacy
// end-of-run trace records call Shutdown first, while the tracer is still
// attached); finished inline-program tasks are recycled into the task pool;
// and every piece of mutable state — run queues, IRQ state, RT-throttle
// windows, accounting arrays, sequence counters — resets to its post-New
// value. Backing arrays (heaps, IRQ queues, the timer free pool) keep their
// capacity: that warm storage is the point of batching, and since no
// scheduling decision reads a capacity, reuse cannot change any output.
//
// Fork detaches the tracer and observer, and must be followed by forking
// the shared engine to its matching snapshot — pending timers armed by the
// kill cascade are recycled there.
func (s *Scheduler) Fork(Snapshot) {
	// Detach hooks first: the kill cascade below must not record into the
	// next rep's trace or timeline.
	s.tracer = nil
	s.obs = nil
	for _, t := range s.tasks {
		s.Kill(t)
	}
	if s.balanceTimer != nil {
		s.balanceTimer.Cancel()
		s.balanceTimer = nil
	}
	for i, t := range s.tasks {
		if t.prog != nil {
			// Inline-program tasks never have a backing goroutine, so the
			// struct is quiescent the moment it is done and safe to reuse.
			t.recycle()
			s.taskPool = append(s.taskPool, t)
		}
		s.tasks[i] = nil
	}
	s.tasks = s.tasks[:0]
	for _, c := range s.cpus {
		c.curr = nil
		c.dl.reset()
		c.fifo.reset()
		c.fair.reset()
		c.minVruntime = 0
		c.inIRQ = false
		c.irqStart = 0
		c.irqClass = 0
		c.irqSource = ""
		c.irqWake = nil
		// Clear the consumed queue's stale payloads (sources, wake
		// pointers) so recycled tasks are not pinned by the backing array.
		for i := range c.irqQ {
			c.irqQ[i] = pendingIRQ{}
		}
		c.irqQ = c.irqQ[:0]
		c.irqHead = 0
		c.pendingSteal = 0
		// Timer handles are cancelled through the still-live engine; a
		// non-nil handle here is always pending (fired timers nil their
		// field in the callback), so Cancel cannot hit a recycled struct.
		if c.sliceTimer != nil {
			c.sliceTimer.Cancel()
			c.sliceTimer = nil
		}
		c.rtWindowStart = 0
		c.rtUsed = 0
		c.rtThrottled = false
		if c.throttleTimer != nil {
			c.throttleTimer.Cancel()
			c.throttleTimer = nil
		}
	}
	// Devices are per-rep state: each batched rep re-registers its own in
	// its body, exactly as it re-spawns its tasks. Their pending service
	// timers need no cancellation here — drop() already suppressed the
	// wakeups during the kill cascade, and the engine fork that must follow
	// recycles the timers wholesale.
	clear(s.devices)
	for i := range s.kindTime {
		s.kindTime[i] = [4]sim.Time{}
	}
	for i := range s.irqTime {
		s.irqTime[i] = 0
	}
	s.memStreams = 0
	s.nextID = 0
	s.seq = 0
	s.arrival = 0
	s.liveTasks = 0
	s.ContextSwitches = 0
	s.GoroutineHandoffs = 0
	s.InlineDispatches = 0
}
