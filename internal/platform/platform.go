// Package platform bundles everything that defines one experimental
// platform in the paper: the machine topology, its natural noise profile,
// the scheduler options, and per-platform workload problem sizes (the paper
// sizes its workloads per machine; we derive sizes from the baseline
// execution times its tables imply).
package platform

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/workloads"
)

// Platform is one experimental platform configuration.
type Platform struct {
	// Name is the preset name ("intel-9700kf", "amd-9950x3d",
	// "a64fx-reserved", "a64fx-noreserve").
	Name string
	// Topo is the machine model.
	Topo *machine.Topology
	// Noise is the natural background-noise profile.
	Noise noise.Profile
	// SchedOpt is the scheduler configuration.
	SchedOpt cpusched.Options
	// HasSMT reports whether SMT rows exist in the paper's tables for
	// this platform.
	HasSMT bool
}

// New returns the named platform.
func New(name string) (*Platform, error) {
	topo, err := machine.Preset(name)
	if err != nil {
		return nil, err
	}
	p := &Platform{Name: name, Topo: topo, SchedOpt: cpusched.Defaults()}
	switch name {
	case machine.AMD9950X3D:
		p.Noise = noise.Desktop()
		p.HasSMT = true
	case machine.Intel9700KF:
		p.Noise = noise.Desktop()
	case machine.A64FXRsv:
		p.Noise = noise.HPCReserved(topo)
	case machine.A64FXNoRsv:
		p.Noise = noise.HPC()
	case machine.TinyTest, machine.TinySMTTest:
		p.Noise = noise.Desktop()
		p.HasSMT = name == machine.TinySMTTest
	default:
		return nil, fmt.Errorf("platform: no profile for %q", name)
	}
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(name string) *Platform {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists platforms with full experiment support.
func Names() []string {
	return []string{machine.Intel9700KF, machine.AMD9950X3D, machine.A64FXRsv, machine.A64FXNoRsv}
}

// WorkloadSpec returns the platform-sized cost model for a workload name.
// Sizes are calibrated so simulated baseline execution times land near the
// paper's reported baselines (see EXPERIMENTS.md for the mapping).
func (p *Platform) WorkloadSpec(name string) (workloads.Workload, error) {
	switch name {
	case "nbody":
		s := workloads.DefaultNBodySpec()
		if p.Name == machine.AMD9950X3D {
			// AMD baseline ~0.67 s at 16x5.0 GHz.
			s.Bodies = 57344
		}
		return s, nil
	case "babelstream":
		s := workloads.DefaultStreamSpec()
		return s, nil
	case "minife":
		s := workloads.DefaultMiniFESpec()
		return s, nil
	case "schedbench":
		s := workloads.DefaultSchedBenchSpec()
		if p.Name == machine.A64FXRsv || p.Name == machine.A64FXNoRsv {
			// Motivation figure: modest per-run time on the 48-core part.
			s.Outer = 30
			s.N = 1536
		}
		return s, nil
	case "svcloop":
		s := workloads.DefaultSvcLoopSpec()
		return s, nil
	case "logwriter":
		s := workloads.DefaultLogWriterSpec()
		return s, nil
	default:
		return nil, fmt.Errorf("platform: unknown workload %q", name)
	}
}

// TinySpec returns a fast, CI-sized variant of a workload for the given
// platform, preserving structure but shrinking totals.
func (p *Platform) TinySpec(name string) (workloads.Workload, error) {
	return workloads.ByName(name, "small")
}
