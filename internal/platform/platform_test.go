package platform

import (
	"testing"

	"repro/internal/machine"
)

func TestNewAllPresets(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Topo == nil || p.Noise.TimerHz <= 0 {
			t.Fatalf("platform %q incomplete: %+v", name, p)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("cray-xe"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

func TestSMTFlag(t *testing.T) {
	if !MustNew(machine.AMD9950X3D).HasSMT {
		t.Fatal("AMD platform should have SMT rows")
	}
	if MustNew(machine.Intel9700KF).HasSMT {
		t.Fatal("Intel platform has no SMT")
	}
}

func TestReservedPlatformNoiseConfined(t *testing.T) {
	p := MustNew(machine.A64FXRsv)
	if p.Noise.ThreadMask.Empty() {
		t.Fatal("reserved A64FX must confine thread noise")
	}
	if !p.Noise.ThreadMask.Equal(p.Topo.ReservedMask()) {
		t.Fatal("thread mask should equal the reserved core mask")
	}
	if !MustNew(machine.A64FXNoRsv).Noise.ThreadMask.Empty() {
		t.Fatal("unreserved A64FX noise should roam")
	}
}

func TestWorkloadSpecs(t *testing.T) {
	for _, pname := range Names() {
		p := MustNew(pname)
		for _, w := range []string{"nbody", "babelstream", "minife", "schedbench"} {
			spec, err := p.WorkloadSpec(w)
			if err != nil {
				t.Fatalf("%s/%s: %v", pname, w, err)
			}
			if spec.Name() != w {
				t.Fatalf("%s/%s: spec named %q", pname, w, spec.Name())
			}
		}
		if _, err := p.WorkloadSpec("lulesh"); err == nil {
			t.Fatal("unknown workload should error")
		}
	}
}

func TestAMDNBodyLargerThanIntel(t *testing.T) {
	// Per-platform sizing: AMD's N-body is bigger (paper baselines imply
	// different problem sizes per machine).
	intel := MustNew(machine.Intel9700KF)
	amd := MustNew(machine.AMD9950X3D)
	wi, _ := intel.WorkloadSpec("nbody")
	wa, _ := amd.WorkloadSpec("nbody")
	type sized interface{ TotalCycles() float64 }
	if wa.(sized).TotalCycles() <= wi.(sized).TotalCycles() {
		t.Fatal("AMD nbody should be sized larger than Intel's")
	}
}

func TestTinySpec(t *testing.T) {
	p := MustNew(machine.Intel9700KF)
	w, err := p.TinySpec("minife")
	if err != nil || w.Name() != "minife" {
		t.Fatalf("TinySpec: %v %v", w, err)
	}
}
