package parmodel

import (
	"testing"
	"testing/quick"
)

func TestCostAdd(t *testing.T) {
	a := Cost{Cycles: 10, Bytes: 5}
	b := Cost{Cycles: 3, Bytes: 7}
	got := a.Add(b)
	if got.Cycles != 13 || got.Bytes != 12 {
		t.Fatalf("Add = %+v", got)
	}
}

func TestCostScale(t *testing.T) {
	c := Cost{Cycles: 10, Bytes: 4}.Scale(2.5)
	if c.Cycles != 25 || c.Bytes != 10 {
		t.Fatalf("Scale = %+v", c)
	}
}

// Property: Add is commutative and Scale distributes over Add.
func TestCostAlgebra(t *testing.T) {
	f := func(ac, ab, bc, bb int16, s uint8) bool {
		a := Cost{Cycles: float64(ac), Bytes: float64(ab)}
		b := Cost{Cycles: float64(bc), Bytes: float64(bb)}
		f := float64(s)
		if a.Add(b) != b.Add(a) {
			return false
		}
		lhs := a.Add(b).Scale(f)
		rhs := a.Scale(f).Add(b.Scale(f))
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
