// Package parmodel defines the interface between workload cost models and
// the parallel runtime models (omprt, syclrt): a workload is a function of
// a Model, and a Model executes parallel loops of costed work units on the
// simulated machine. The two runtime implementations differ exactly where
// the paper says OpenMP and SYCL differ: work distribution policy,
// synchronization style, and fixed runtime overheads.
package parmodel

// Cost is the machine demand of one work unit: CPU cycles and bytes of
// memory traffic. Work units are coarse by design (a block of iterations,
// a work-group), keeping the simulation event count tractable.
type Cost struct {
	Cycles float64
	Bytes  float64
}

// Add returns the sum of two costs.
func (c Cost) Add(o Cost) Cost { return Cost{c.Cycles + o.Cycles, c.Bytes + o.Bytes} }

// Scale returns the cost multiplied by f.
func (c Cost) Scale(f float64) Cost { return Cost{c.Cycles * f, c.Bytes * f} }

// Model is a parallel runtime executing work on the simulated machine. All
// methods must be called from the workload body function passed to the
// runtime's Start.
type Model interface {
	// ParallelFor executes n work units, unit i costing cost(i), across
	// the team, then synchronizes (implicit end-of-region barrier /
	// kernel completion wait).
	ParallelFor(n int, cost func(i int) Cost)
	// MasterCompute runs serial compute on the master/host thread.
	MasterCompute(cycles float64)
	// MasterMemory streams bytes on the master/host thread.
	MasterMemory(bytes float64)
	// Threads returns the team/worker-pool size.
	Threads() int
	// Name identifies the runtime ("omp" or "sycl").
	Name() string
}

// Body is a workload expressed against a runtime model.
type Body func(Model)
