// Package parmodel defines the interface between workload cost models and
// the parallel runtime models (omprt, syclrt): a workload is a function of
// a Model, and a Model executes parallel loops of costed work units on the
// simulated machine. The two runtime implementations differ exactly where
// the paper says OpenMP and SYCL differ: work distribution policy,
// synchronization style, and fixed runtime overheads.
package parmodel

// Cost is the machine demand of one work unit: CPU cycles, bytes of memory
// traffic, and optionally a blocking I/O request. Work units are coarse by
// design (a block of iterations, a work-group, one service request),
// keeping the simulation event count tractable.
type Cost struct {
	Cycles float64
	Bytes  float64
	// IOBytes, when positive, blocks the executing thread on the device
	// named by IODev after the unit's compute and memory phases complete
	// (cpusched BlockOn). The device must be registered on the scheduler
	// before the workload runs (workloads declare theirs via the
	// workloads.IOWorkload interface). Zero means a CPU-bound unit.
	IOBytes float64
	IODev   string
}

// Add returns the sum of two costs. I/O requests to the same device merge
// by volume; when only one side names a device, that name wins (work units
// aggregated into one chunk issue a single combined request, mirroring
// request coalescing in a real block layer).
func (c Cost) Add(o Cost) Cost {
	dev := c.IODev
	if dev == "" {
		dev = o.IODev
	}
	return Cost{c.Cycles + o.Cycles, c.Bytes + o.Bytes, c.IOBytes + o.IOBytes, dev}
}

// Scale returns the cost with CPU and memory demands multiplied by f. I/O
// volume is data, not work: runtime efficiency factors (omprt/syclrt
// CostFactor) change how fast a unit computes, not how many bytes it must
// move through a device, so IOBytes is deliberately left unscaled.
func (c Cost) Scale(f float64) Cost {
	return Cost{c.Cycles * f, c.Bytes * f, c.IOBytes, c.IODev}
}

// Model is a parallel runtime executing work on the simulated machine. All
// methods must be called from the workload body function passed to the
// runtime's Start.
type Model interface {
	// ParallelFor executes n work units, unit i costing cost(i), across
	// the team, then synchronizes (implicit end-of-region barrier /
	// kernel completion wait).
	ParallelFor(n int, cost func(i int) Cost)
	// MasterCompute runs serial compute on the master/host thread.
	MasterCompute(cycles float64)
	// MasterMemory streams bytes on the master/host thread.
	MasterMemory(bytes float64)
	// MasterBlockOn blocks the master/host thread on a request of the
	// given volume to the named device (fsync, synchronous read). Zero
	// bytes still blocks for the device's latency — an fsync barrier. The
	// device must be registered before the workload runs; referencing an
	// unregistered name panics.
	MasterBlockOn(dev string, bytes float64)
	// Threads returns the team/worker-pool size.
	Threads() int
	// Name identifies the runtime ("omp" or "sycl").
	Name() string
}

// Body is a workload expressed against a runtime model.
type Body func(Model)
