package experiment

// The kernel golden test: pins the exact outputs of the simulation kernel —
// execution times, trace contents (as a fingerprint), and injector
// accounting — for a matrix of platforms, workloads, runtimes, strategies,
// and injection configurations, at executor parallelism 1 and 8. The
// fixture was generated before the fast-path kernel work (inline task
// programs, timer pooling, ordered run queues) landed; the test proves
// every optimization preserves bit-identical simulation behaviour.
//
// Regenerate with REPRO_UPDATE_GOLDEN=1 go test ./internal/experiment
// -run TestGoldenKernel — but only when a deliberate, reviewed behaviour
// change is intended.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

const goldenPath = "testdata/golden_kernel.json"

type goldenCase struct {
	Name     string
	Platform string
	Workload string
	Small    bool // use the small workload preset instead of the platform's
	Model    string
	Strategy string
	Tracing  bool
	Inject   bool // build a config via the pipeline and replay it
	Throttle bool // enable RT throttling (fail-safe path coverage)
	Reps     int
	Seed     uint64
	// DLRuntimeNs/DLPeriodNs run workload threads under SCHED_DEADLINE
	// with this CBS reservation (0 = fair class).
	DLRuntimeNs int64
	DLPeriodNs  int64
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{Name: "tiny-nbody-omp-rm", Platform: "tiny-test", Workload: "nbody", Small: true,
			Model: "omp", Strategy: "Rm", Tracing: true, Reps: 3, Seed: 11},
		{Name: "tiny-nbody-sycl-rm", Platform: "tiny-test", Workload: "nbody", Small: true,
			Model: "sycl", Strategy: "Rm", Tracing: true, Reps: 3, Seed: 11},
		{Name: "tiny-stream-omp-hk", Platform: "tiny-test", Workload: "babelstream", Small: true,
			Model: "omp", Strategy: "RmHK2", Reps: 3, Seed: 12},
		{Name: "tiny-minife-sycl-hk", Platform: "tiny-test", Workload: "minife", Small: true,
			Model: "sycl", Strategy: "RmHK2", Tracing: true, Reps: 2, Seed: 13},
		{Name: "tiny-schedbench-omp-rm", Platform: "tiny-test", Workload: "schedbench", Small: true,
			Model: "omp", Strategy: "Rm", Reps: 2, Seed: 14},
		{Name: "tiny-nbody-omp-inject", Platform: "tiny-test", Workload: "nbody", Small: true,
			Model: "omp", Strategy: "Rm", Inject: true, Reps: 3, Seed: 15},
		{Name: "tiny-nbody-omp-inject-throttle", Platform: "tiny-test", Workload: "nbody", Small: true,
			Model: "omp", Strategy: "Rm", Inject: true, Throttle: true, Reps: 2, Seed: 16},
		{Name: "intel-nbody-omp-rm", Platform: "intel-9700kf", Workload: "nbody",
			Model: "omp", Strategy: "Rm", Tracing: true, Reps: 2, Seed: 21},
		{Name: "intel-stream-sycl-tphk", Platform: "intel-9700kf", Workload: "babelstream",
			Model: "sycl", Strategy: "TPHK", Reps: 2, Seed: 22},
		{Name: "amd-minife-omp-hk", Platform: "amd-9950x3d", Workload: "minife",
			Model: "omp", Strategy: "RmHK", Tracing: true, Reps: 2, Seed: 23},
		{Name: "a64fx-schedbench-omp-rm", Platform: "a64fx-noreserve", Workload: "schedbench",
			Model: "omp", Strategy: "Rm", Reps: 1, Seed: 24},
		// I/O-blocking workloads: device wait queues, completion IRQs, and
		// blocked-task wakeups must be as reproducible as pure compute.
		{Name: "tiny-svcloop-omp-rm", Platform: "tiny-test", Workload: "svcloop", Small: true,
			Model: "omp", Strategy: "Rm", Tracing: true, Reps: 3, Seed: 31},
		{Name: "tiny-svcloop-sycl-rm", Platform: "tiny-test", Workload: "svcloop", Small: true,
			Model: "sycl", Strategy: "Rm", Reps: 2, Seed: 32},
		{Name: "tiny-logwriter-omp-inject", Platform: "tiny-test", Workload: "logwriter", Small: true,
			Model: "omp", Strategy: "Rm", Inject: true, Reps: 2, Seed: 33},
		{Name: "tiny-logwriter-omp-inject-throttle", Platform: "tiny-test", Workload: "logwriter",
			Small: true, Model: "omp", Strategy: "Rm", Inject: true, Throttle: true, Reps: 2, Seed: 34},
		// SCHED_DEADLINE: EDF dispatch, CBS budget timers, and throttle/
		// replenish cycles across snapshot/fork and executor parallelism.
		{Name: "tiny-svcloop-omp-deadline", Platform: "tiny-test", Workload: "svcloop", Small: true,
			Model: "omp", Strategy: "Rm", Tracing: true, Reps: 2, Seed: 35,
			DLRuntimeNs: 400_000, DLPeriodNs: 1_000_000},
		{Name: "tiny-nbody-omp-deadline", Platform: "tiny-test", Workload: "nbody", Small: true,
			Model: "omp", Strategy: "Rm", Reps: 2, Seed: 36,
			DLRuntimeNs: 800_000, DLPeriodNs: 1_000_000},
	}
}

// goldenRecord is the pinned outcome of one case.
type goldenRecord struct {
	Times       []int64 `json:"times_ns"`
	TraceHash   string  `json:"trace_hash,omitempty"`
	TraceEvents int     `json:"trace_events,omitempty"`
	InjectorNs  int64   `json:"injector_ns,omitempty"`
	InjectedAll bool    `json:"injected_all,omitempty"`
}

// fingerprintTraces hashes every field of every event of every trace, in
// order, so any change to what the kernel records is caught.
func fingerprintTraces(traces []*trace.Trace) (string, int) {
	h := fnv.New64a()
	n := 0
	for _, tr := range traces {
		fmt.Fprintf(h, "%s/%s/%s/%s/%d/%d\n", tr.Platform, tr.Workload, tr.Model,
			tr.Strategy, tr.Seed, tr.ExecTime)
		for _, e := range tr.Events {
			fmt.Fprintf(h, "%d %d %s %d %d\n", e.CPU, e.Class, e.Source, e.Start, e.Duration)
			n++
		}
	}
	return fmt.Sprintf("%016x", h.Sum64()), n
}

func (c goldenCase) spec(t *testing.T) Spec {
	t.Helper()
	p, err := platform.New(c.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if c.Throttle {
		p.SchedOpt.RTThrottle = true
	}
	var w workloads.Workload
	if c.Small {
		w, err = workloads.ByName(c.Workload, "small")
	} else {
		w, err = p.WorkloadSpec(c.Workload)
	}
	if err != nil {
		t.Fatal(err)
	}
	strat, err := mitigate.Parse(c.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Platform: p, Workload: w, Model: c.Model, Strategy: strat,
		Seed: c.Seed, Tracing: c.Tracing,
		DLRuntime: sim.Time(c.DLRuntimeNs), DLPeriod: sim.Time(c.DLPeriodNs)}
}

// batchRunner returns a RunOnce equivalent that executes every run in a
// pooled batch world: fresh on a pool miss, forked back from a previous run
// otherwise. Golden tests drive it to prove a warm world is byte-identical
// to a cold one.
func batchRunner(pool *WorldPool) func(Spec) (Result, error) {
	return func(s Spec) (Result, error) {
		plan, err := mitigate.Apply(s.Strategy, s.Platform.Topo)
		if err != nil {
			return Result{}, err
		}
		k := worldKeyFor(s)
		w := pool.get(k)
		if w == nil {
			w = newWorld(k, true)
		}
		res, err := w.run(s, plan)
		pool.put(w)
		return res, err
	}
}

// runGoldenCase executes one case at the given parallelism. With withObs the
// passive observability recorder is attached to every run — the fixture must
// still match exactly, proving observability cannot perturb the kernel. With
// a non-nil pool every run executes in a pooled batch world (and the
// executor batches unconditionally), pinning the fork path to the same
// fixture as the build-from-scratch path.
func runGoldenCase(t *testing.T, c goldenCase, parallelism int, withObs bool, pool *WorldPool) goldenRecord {
	t.Helper()
	spec := c.spec(t)
	if withObs {
		spec.Obs = &obs.Options{Timeline: true}
	}
	exec := Executor{Parallelism: parallelism}
	runOne := RunOnce
	if pool != nil {
		exec.Batch = BatchOn
		exec.Worlds = pool
		runOne = batchRunner(pool)
	}
	if c.Inject {
		pr, err := Pipeline{Spec: spec, CollectRuns: 6, Improved: true, Exec: exec}.Run()
		if err != nil {
			t.Fatal(err)
		}
		spec.Inject = pr.Config
	}
	rec := goldenRecord{}
	times := make([]int64, c.Reps)
	injectorNs := make([]int64, c.Reps)
	injectedAll := make([]bool, c.Reps)
	var traces []*trace.Trace
	err := exec.run(context.Background(), c.Reps, func(i int) error {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		res, err := runOne(s)
		if err != nil {
			return err
		}
		times[i] = int64(res.ExecTime)
		injectorNs[i] = int64(res.InjectorCPUTime)
		injectedAll[i] = res.InjectedAll
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Times = times
	for _, ns := range injectorNs {
		rec.InjectorNs += ns
	}
	rec.InjectedAll = c.Reps > 0 && injectedAll[c.Reps-1]
	if c.Tracing {
		// Re-run traced sequentially so trace order is rep order.
		for i := 0; i < c.Reps; i++ {
			s := spec
			s.Seed = seedAt(spec.Seed, i)
			res, err := runOne(s)
			if err != nil {
				t.Fatal(err)
			}
			traces = append(traces, res.Trace)
		}
		rec.TraceHash, rec.TraceEvents = fingerprintTraces(traces)
	}
	return rec
}

// TestGoldenKernel verifies the simulation kernel reproduces the pinned
// outputs exactly, at executor parallelism 1 and 8.
func TestGoldenKernel(t *testing.T) {
	update := os.Getenv("REPRO_UPDATE_GOLDEN") != ""
	var golden map[string]goldenRecord
	if !update {
		raw, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden fixture (set REPRO_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]goldenRecord{}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			seq := runGoldenCase(t, c, 1, false, nil)
			par := runGoldenCase(t, c, 8, false, nil)
			if fmt.Sprint(seq) != fmt.Sprint(par) {
				t.Fatalf("parallelism changed outputs:\n  p=1: %+v\n  p=8: %+v", seq, par)
			}
			got[c.Name] = seq
			if update {
				return
			}
			want, ok := golden[c.Name]
			if !ok {
				t.Fatalf("case %q missing from golden fixture; regenerate with REPRO_UPDATE_GOLDEN=1", c.Name)
			}
			if fmt.Sprint(want) != fmt.Sprint(seq) {
				t.Errorf("kernel output diverged from golden fixture:\n  want %+v\n  got  %+v", want, seq)
			}
		})
	}
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(got))
	}
}

// TestGoldenKernelObs re-runs the golden matrix with the observability
// recorder attached (full timeline on every rep), at parallelism 1 and 8,
// and demands the outputs still match the fixture byte for byte. The
// recorder is a passive observer — unlike the tracer, which models its own
// overhead — so it must be invisible to the simulation.
func TestGoldenKernelObs(t *testing.T) {
	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		t.Skip("fixture is regenerated by TestGoldenKernel (obs must not define the baseline)")
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	var golden map[string]goldenRecord
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			want, ok := golden[c.Name]
			if !ok {
				t.Fatalf("case %q missing from golden fixture", c.Name)
			}
			for _, parallelism := range []int{1, 8} {
				got := runGoldenCase(t, c, parallelism, true, nil)
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Errorf("obs-enabled run diverged from fixture at parallelism %d:\n  want %+v\n  got  %+v",
						parallelism, want, got)
				}
			}
		})
	}
}

// TestGoldenKernelBatch re-runs the golden matrix through pooled batch
// worlds — every rep forked from a warm world when the pool has one — at
// parallelism 1 and 8, with and without the observability recorder, and
// demands the fixture still matches byte for byte. One pool is shared across
// all cases of a sub-test, so worlds cross spec boundaries (different
// workloads, models, seeds, injection configs reuse the same forked world
// whenever topology and scheduler options agree) — the strongest practical
// exercise of the fork path.
func TestGoldenKernelBatch(t *testing.T) {
	if os.Getenv("REPRO_UPDATE_GOLDEN") != "" {
		t.Skip("fixture is regenerated by TestGoldenKernel (the batch path must not define the baseline)")
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	var golden map[string]goldenRecord
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	for _, withObs := range []bool{false, true} {
		for _, parallelism := range []int{1, 8} {
			name := fmt.Sprintf("p%d", parallelism)
			if withObs {
				name += "-obs"
			}
			withObs, parallelism := withObs, parallelism
			t.Run(name, func(t *testing.T) {
				pool := NewWorldPool()
				for _, c := range goldenCases() {
					want, ok := golden[c.Name]
					if !ok {
						t.Fatalf("case %q missing from golden fixture", c.Name)
					}
					got := runGoldenCase(t, c, parallelism, withObs, pool)
					if fmt.Sprint(want) != fmt.Sprint(got) {
						t.Errorf("%s: batched run diverged from fixture:\n  want %+v\n  got  %+v",
							c.Name, want, got)
					}
				}
			})
		}
	}
}
