package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/stats"
)

// IntensityPoint is one (amplification, strategy) measurement of an
// intensity sweep.
type IntensityPoint struct {
	// Factor is the worst-case amplification (1.0 = the captured config).
	Factor float64
	// Strategy is the mitigation under test.
	Strategy mitigate.Strategy
	// MeanSec is the mean injected execution time.
	MeanSec float64
	// ChangePct is the increase vs the strategy's own baseline.
	ChangePct float64
}

// IntensitySweep quantifies the abstract's claim that "mitigation
// effectiveness varies with ... noise intensity": it captures one
// worst-case config, then replays amplified variants of it across
// mitigation strategies. At low intensity housekeeping's baseline cost
// dominates; as intensity grows, housekeeping wins.
type IntensitySweep struct {
	Platform   *platform.Platform
	Workload   string
	Model      string
	Strategies []mitigate.Strategy
	// Factors are the amplification levels (e.g. 0.5, 1, 2, 4).
	Factors []float64
	Reps    RepCounts
	Seed    uint64
	// Exec is the execution layer; the zero value runs with default
	// parallelism.
	Exec Executor
}

// Run executes the sweep. Points are ordered factor-major, strategy-minor.
func (sw IntensitySweep) Run() ([]IntensityPoint, error) {
	return sw.RunContext(context.Background())
}

// RunContext executes the sweep under ctx.
func (sw IntensitySweep) RunContext(ctx context.Context) ([]IntensityPoint, error) {
	if len(sw.Factors) == 0 || len(sw.Strategies) == 0 {
		return nil, fmt.Errorf("experiment: intensity sweep needs factors and strategies")
	}
	if sw.Model == "" {
		sw.Model = "omp"
	}
	// One pool for the whole sweep: the config hunt, the per-strategy
	// baselines, and every (factor, strategy) point share warm worlds.
	sw.Exec = sw.Exec.withWorlds()
	w, err := sw.Platform.WorkloadSpec(sw.Workload)
	if err != nil {
		return nil, err
	}
	prog := sw.Exec.cells(1 + len(sw.Strategies) + len(sw.Factors)*len(sw.Strategies))
	cfg, _, err := BuildConfigExec(ctx, sw.Exec, sw.Platform, sw.Workload,
		ConfigSource{Model: sw.Model, Strategy: mitigate.Rm, ID: 1},
		sw.Reps.Collect, true, sw.Seed)
	if err != nil {
		return nil, err
	}
	prog.finish("sweep config " + sw.Workload)

	// Per-strategy baselines.
	baselines := map[string]float64{}
	for _, strat := range sw.Strategies {
		times, _, err := sw.Exec.Series(ctx, Spec{
			Platform: sw.Platform, Workload: w, Model: sw.Model, Strategy: strat,
			Seed: seedFor(sw.Seed, "sweepbase", strat.Name()), Tracing: true,
		}, sw.Reps.Baseline)
		if err != nil {
			return nil, err
		}
		baselines[strat.Name()] = stats.SummarizeTimes(times).Mean
		prog.finish("sweep baseline " + strat.Name())
	}

	var out []IntensityPoint
	for _, f := range sw.Factors {
		amp, err := core.AmplifyConfig(cfg, f)
		if err != nil {
			return nil, err
		}
		for _, strat := range sw.Strategies {
			times, _, err := sw.Exec.Series(ctx, Spec{
				Platform: sw.Platform, Workload: w, Model: sw.Model, Strategy: strat,
				Seed:   seedFor(sw.Seed, "sweepinj", strat.Name(), fmt.Sprint(f)),
				Inject: amp,
			}, sw.Reps.Inject)
			if err != nil {
				return nil, err
			}
			prog.finish(fmt.Sprintf("sweep inject %s x%.2g", strat.Name(), f))
			mean := stats.SummarizeTimes(times).Mean
			out = append(out, IntensityPoint{
				Factor:    f,
				Strategy:  strat,
				MeanSec:   mean / 1000,
				ChangePct: stats.RelChange(baselines[strat.Name()], mean),
			})
		}
	}
	return out, nil
}

// CrossoverFactor returns the smallest swept factor at which strategy b's
// mean injected time beats strategy a's (the paper's average-vs-worst-case
// trade: e.g. when RmHK overtakes Rm), or 0 if it never does.
func CrossoverFactor(points []IntensityPoint, a, b mitigate.Strategy) float64 {
	byFactor := map[float64]map[string]float64{}
	for _, p := range points {
		m, ok := byFactor[p.Factor]
		if !ok {
			m = map[string]float64{}
			byFactor[p.Factor] = m
		}
		m[p.Strategy.Name()] = p.MeanSec
	}
	var factors []float64
	for f := range byFactor {
		factors = append(factors, f)
	}
	// Insertion sort: tiny slices.
	for i := 1; i < len(factors); i++ {
		for j := i; j > 0 && factors[j] < factors[j-1]; j-- {
			factors[j], factors[j-1] = factors[j-1], factors[j]
		}
	}
	for _, f := range factors {
		m := byFactor[f]
		va, oka := m[a.Name()]
		vb, okb := m[b.Name()]
		if oka && okb && vb < va {
			return f
		}
	}
	return 0
}
