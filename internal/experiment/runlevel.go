package experiment

import (
	"context"
	"fmt"

	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/stats"
)

// RunlevelRow compares one configuration's variability at runlevel 5
// (desktop, GUI) and runlevel 3 (no GUI), the §5.1 verification re-run.
type RunlevelRow struct {
	Workload string
	Model    string
	Strategy mitigate.Strategy
	// RL5 and RL3 summarize execution times (ms) with and without GUI
	// noise.
	RL5 stats.Summary
	RL3 stats.Summary
}

// SDReductionPct is how much runlevel 3 reduced the standard deviation.
func (r RunlevelRow) SDReductionPct() float64 {
	if r.RL5.SD == 0 {
		return 0
	}
	return (r.RL5.SD - r.RL3.SD) / r.RL5.SD * 100
}

// RunlevelStudy reproduces the paper's §5.1 check: re-running baselines at
// Linux runlevel 3 (GUI disabled) "generally reduced performance
// variability, [but] overall trends remain unchanged".
type RunlevelStudy struct {
	Platform   *platform.Platform
	Workloads  []string
	Model      string
	Strategies []mitigate.Strategy
	Reps       int
	Seed       uint64
	// Exec is the execution layer; the zero value runs with default
	// parallelism.
	Exec Executor
}

// Run measures each (workload, strategy) at both runlevels.
func (st RunlevelStudy) Run() ([]RunlevelRow, error) {
	return st.RunContext(context.Background())
}

// RunContext executes the study under ctx.
func (st RunlevelStudy) RunContext(ctx context.Context) ([]RunlevelRow, error) {
	st.Exec = st.Exec.withWorlds()
	if st.Model == "" {
		st.Model = "omp"
	}
	if len(st.Strategies) == 0 {
		st.Strategies = []mitigate.Strategy{mitigate.Rm}
	}
	var rows []RunlevelRow
	prog := st.Exec.cells(2 * len(st.Workloads) * len(st.Strategies))
	for _, wname := range st.Workloads {
		w, err := st.Platform.WorkloadSpec(wname)
		if err != nil {
			return nil, err
		}
		for _, strat := range st.Strategies {
			spec := Spec{
				Platform: st.Platform, Workload: w, Model: st.Model,
				Strategy: strat, Tracing: true,
				Seed: seedFor(st.Seed, "runlevel", wname, strat.Name()),
			}
			rl5, _, err := st.Exec.Series(ctx, spec, st.Reps)
			if err != nil {
				return nil, fmt.Errorf("runlevel5 %s/%s: %w", wname, strat.Name(), err)
			}
			prog.finish("runlevel5 " + wname + " " + strat.Name())
			spec.Runlevel3 = true
			rl3, _, err := st.Exec.Series(ctx, spec, st.Reps)
			if err != nil {
				return nil, fmt.Errorf("runlevel3 %s/%s: %w", wname, strat.Name(), err)
			}
			prog.finish("runlevel3 " + wname + " " + strat.Name())
			rows = append(rows, RunlevelRow{
				Workload: wname,
				Model:    st.Model,
				Strategy: strat,
				RL5:      stats.SummarizeTimes(rl5),
				RL3:      stats.SummarizeTimes(rl3),
			})
		}
	}
	return rows, nil
}
