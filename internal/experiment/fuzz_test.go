package experiment

import (
	"math"
	"testing"

	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// FuzzSeedAt pins the seed-derivation contract the fleet splitter depends
// on, including at the wrap boundary: arithmetic is modulo 2^64, the
// composition SeedAt(SeedAt(base, off), j) == SeedAt(base, off+j) holds
// wrapped or not, and because the stride is odd no two rep indices in a
// window ever share a seed.
func FuzzSeedAt(f *testing.F) {
	f.Add(uint64(0), uint16(0), uint8(4))
	f.Add(uint64(7), uint16(3), uint8(9))
	f.Add(uint64(math.MaxUint64), uint16(1), uint8(8))
	f.Add(uint64(math.MaxUint64)-seedStride, uint16(2), uint8(5))
	f.Add(uint64(math.MaxUint64)-3*seedStride+1, uint16(200), uint8(16))
	f.Fuzz(func(t *testing.T, base uint64, off uint16, n uint8) {
		if SeedAt(base, 0) != base {
			t.Fatalf("SeedAt(%d, 0) = %d", base, SeedAt(base, 0))
		}
		// Stride law under wrapping: each step adds exactly the stride
		// modulo 2^64.
		for i := 0; i < int(n); i++ {
			if got, want := SeedAt(base, i+1), SeedAt(base, i)+seedStride; got != want {
				t.Fatalf("step %d: SeedAt = %d, want %d", i+1, got, want)
			}
		}
		// Split/merge composition: a sub-series starting at the off-th seed
		// reproduces reps [off, off+n) of the parent series.
		sub := SeedAt(base, int(off))
		for j := 0; j < int(n); j++ {
			if got, want := SeedAt(sub, j), SeedAt(base, int(off)+j); got != want {
				t.Fatalf("composition: SeedAt(SeedAt(base,%d),%d) = %d, want %d",
					off, j, got, want)
			}
		}
		// Injectivity in a window: the stride is odd, so distinct indices
		// map to distinct seeds even when the values wrap.
		seen := make(map[uint64]int, n)
		for i := 0; i < int(n); i++ {
			s := SeedAt(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: reps %d and %d both get %d", prev, i, s)
			}
			seen[s] = i
		}
	})
}

// FuzzBatchEqualsFresh fuzzes the snapshot/fork contract: for a random
// small spec, a rep executed in a world warmed by a different-seed rep must
// produce exactly the result of a fresh world — execution time, scheduler
// counters, and the full trace. Any divergence means forked state leaked
// into a scheduling decision, which would silently poison every batched
// series (and the rescache content keys built on their determinism).
func FuzzBatchEqualsFresh(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint64(1), true, 0.0, false)
	f.Add(uint8(1), uint8(1), uint8(3), uint64(99), false, 2.5, true)
	f.Add(uint8(2), uint8(0), uint8(5), uint64(7), true, 0.5, false)
	f.Add(uint8(3), uint8(1), uint8(2), uint64(123456789), false, 0.0, true)
	f.Fuzz(func(t *testing.T, workloadSel, modelSel, stratSel uint8,
		seed uint64, tracing bool, noiseScale float64, runlevel3 bool) {
		works := []string{"nbody", "babelstream", "minife", "schedbench"}
		models := []string{"omp", "sycl"}
		strategies := mitigate.Columns()
		if noiseScale < 0 || noiseScale > 4 || noiseScale != noiseScale {
			t.Skip() // negative, huge, or NaN scales are rejected elsewhere
		}
		p, err := platform.New("tiny-test")
		if err != nil {
			t.Fatal(err)
		}
		w, err := workloads.ByName(works[int(workloadSel)%len(works)], "small")
		if err != nil {
			t.Fatal(err)
		}
		spec := Spec{
			Platform: p, Workload: w,
			Model:      models[int(modelSel)%len(models)],
			Strategy:   strategies[int(stratSel)%len(strategies)],
			Seed:       seed,
			Tracing:    tracing,
			NoiseScale: noiseScale,
			Runlevel3:  runlevel3,
		}
		plan, err := mitigate.Apply(spec.Strategy, spec.Platform.Topo)
		if err != nil {
			t.Skip() // strategy not applicable to this topology
		}
		key := worldKeyFor(spec)

		fresh, err := newWorld(key, true).run(spec, plan)
		if err != nil {
			t.Skip() // invalid spec fails identically either way
		}

		warm := newWorld(key, true)
		warmup := spec
		warmup.Seed = seed + 1
		if _, err := warm.run(warmup, plan); err != nil {
			t.Fatal(err)
		}
		got, err := warm.run(spec, plan)
		if err != nil {
			t.Fatalf("warm rep failed where fresh succeeded: %v", err)
		}

		if got.ExecTime != fresh.ExecTime {
			t.Fatalf("exec time diverged: warm %v, fresh %v", got.ExecTime, fresh.ExecTime)
		}
		if got.ContextSwitches != fresh.ContextSwitches ||
			got.GoroutineHandoffs != fresh.GoroutineHandoffs ||
			got.InlineDispatches != fresh.InlineDispatches {
			t.Fatalf("counters diverged: warm %d/%d/%d, fresh %d/%d/%d",
				got.ContextSwitches, got.GoroutineHandoffs, got.InlineDispatches,
				fresh.ContextSwitches, fresh.GoroutineHandoffs, fresh.InlineDispatches)
		}
		if spec.Tracing {
			gh, gn := fingerprintTraces([]*trace.Trace{got.Trace})
			fh, fn := fingerprintTraces([]*trace.Trace{fresh.Trace})
			if gh != fh || gn != fn {
				t.Fatalf("trace diverged: warm %s (%d events), fresh %s (%d events)", gh, gn, fh, fn)
			}
		}
	})
}
