package experiment

import (
	"context"
	"fmt"

	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/omprt"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// FigureSeries is one box in a motivation figure: execution-time
// distribution (ms) at one x position for one system.
type FigureSeries struct {
	System string // "A64FX:reserved" or "A64FX:w/o"
	X      string // x-axis label, e.g. "st:1" or "48"
	Box    stats.FiveNum
	SD     float64
	Mean   float64
}

// systemLabel maps a platform to the figure legend label.
func systemLabel(name string) string {
	switch name {
	case machine.A64FXRsv:
		return "A64FX:reserved"
	case machine.A64FXNoRsv:
		return "A64FX:w/o"
	default:
		return name
	}
}

// Figure1 reproduces the schedbench motivation figure: execution-time
// distributions across schedule×chunk combinations (x labels in the paper's
// "xy:number" format) on the A64FX with and without firmware-reserved OS
// cores.
func Figure1(reps int, seed uint64) ([]FigureSeries, error) {
	return Figure1Exec(context.Background(), Executor{}, reps, seed)
}

// Figure1Exec is Figure1 under an explicit executor and context.
func Figure1Exec(ctx context.Context, e Executor, reps int, seed uint64) ([]FigureSeries, error) {
	type combo struct {
		sched omprt.Schedule
		label string
		chunk int
	}
	var combos []combo
	for _, sc := range []struct {
		s     omprt.Schedule
		short string
	}{{omprt.Static, "st"}, {omprt.Dynamic, "dy"}, {omprt.Guided, "gd"}} {
		for _, chunk := range []int{1, 8, 64} {
			combos = append(combos, combo{sc.s, fmt.Sprintf("%s:%d", sc.short, chunk), chunk})
		}
	}
	var out []FigureSeries
	prog := e.cells(2 * len(combos))
	for _, pname := range []string{machine.A64FXRsv, machine.A64FXNoRsv} {
		p, err := platform.New(pname)
		if err != nil {
			return nil, err
		}
		w, err := p.WorkloadSpec("schedbench")
		if err != nil {
			return nil, err
		}
		for _, c := range combos {
			cfg := omprt.DefaultConfig()
			cfg.Schedule = c.sched
			cfg.Chunk = c.chunk
			spec := Spec{
				Platform: p, Workload: w, Model: "omp", Strategy: mitigate.Rm,
				Seed: seedFor(seed, "fig1", pname, c.label),
				OMP:  &cfg,
			}
			times, _, err := e.Series(ctx, spec, reps)
			if err != nil {
				return nil, fmt.Errorf("figure1 %s %s: %w", pname, c.label, err)
			}
			prog.finish("fig1 " + pname + " " + c.label)
			sum := stats.SummarizeTimes(times)
			ms := make([]float64, len(times))
			for i, t := range times {
				ms[i] = t.Millis()
			}
			out = append(out, FigureSeries{
				System: systemLabel(pname),
				X:      c.label,
				Box:    stats.FiveNumOf(ms),
				SD:     sum.SD,
				Mean:   sum.Mean,
			})
		}
	}
	return out, nil
}

// Figure2 reproduces the Babelstream dot-kernel motivation figure:
// execution-time distributions across thread counts on the two A64FX
// systems. Without reserved cores, variability blows up once all 48 cores
// are occupied by the workload and nothing is left to absorb OS activity.
func Figure2(reps int, seed uint64) ([]FigureSeries, error) {
	return Figure2Exec(context.Background(), Executor{}, reps, seed)
}

// Figure2Exec is Figure2 under an explicit executor and context.
func Figure2Exec(ctx context.Context, e Executor, reps int, seed uint64) ([]FigureSeries, error) {
	threadCounts := []int{8, 16, 24, 32, 40, 48}
	var out []FigureSeries
	prog := e.cells(2 * len(threadCounts))
	for _, pname := range []string{machine.A64FXRsv, machine.A64FXNoRsv} {
		p, err := platform.New(pname)
		if err != nil {
			return nil, err
		}
		spec := workloads.StreamSpec{
			ArrayBytes: 256 << 20,
			Iters:      60,
			Kernels:    []workloads.StreamKernel{workloads.KDot},
			SYCLFactor: 1.10,
		}
		for _, threads := range threadCounts {
			user := p.Topo.UserMask()
			cpus := user.List()
			if threads > len(cpus) {
				return nil, fmt.Errorf("figure2: %d threads > %d user cpus", threads, len(cpus))
			}
			plan := &mitigate.Plan{
				Strategy: mitigate.Rm,
				Threads:  threads,
				Allowed:  user,
			}
			sp := Spec{
				Platform: p, Workload: spec, Model: "omp",
				Seed: seedFor(seed, "fig2", pname, fmt.Sprint(threads)),
			}
			times, err := e.seriesWithPlan(ctx, sp, plan, reps)
			if err != nil {
				return nil, fmt.Errorf("figure2 %s %d: %w", pname, threads, err)
			}
			prog.finish(fmt.Sprintf("fig2 %s %d threads", pname, threads))
			sum := stats.SummarizeTimes(times)
			ms := make([]float64, len(times))
			for i, tt := range times {
				ms[i] = tt.Millis()
			}
			out = append(out, FigureSeries{
				System: systemLabel(pname),
				X:      fmt.Sprint(threads),
				Box:    stats.FiveNumOf(ms),
				SD:     sum.SD,
				Mean:   sum.Mean,
			})
		}
	}
	return out, nil
}
