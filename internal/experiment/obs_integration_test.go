package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mitigate"
	"repro/internal/obs"
)

// TestRunOnceObsByteIdentical is the tentpole determinism guarantee: the obs
// recorder is a passive observer (unlike the tracer it steals no simulated
// time), so a run produces byte-identical results with observability on or
// off.
func TestRunOnceObsByteIdentical(t *testing.T) {
	p := tinyPlatform(t)
	for _, model := range Models {
		base := Spec{
			Platform: p, Workload: tinyWorkload(t, "nbody"),
			Model: model, Strategy: mitigate.Rm, Seed: 42, Tracing: true,
		}
		plain, err := RunOnce(base)
		if err != nil {
			t.Fatal(err)
		}
		observed := base
		observed.Obs = &obs.Options{Timeline: true}
		got, err := RunOnce(observed)
		if err != nil {
			t.Fatal(err)
		}
		if got.ExecTime != plain.ExecTime {
			t.Fatalf("%s: ExecTime changed with obs on: %v vs %v", model, got.ExecTime, plain.ExecTime)
		}
		if got.ContextSwitches != plain.ContextSwitches {
			t.Fatalf("%s: ContextSwitches changed with obs on: %d vs %d",
				model, got.ContextSwitches, plain.ContextSwitches)
		}
		if !reflect.DeepEqual(got.Trace, plain.Trace) {
			t.Fatalf("%s: trace changed with obs on", model)
		}
		if got.Obs == nil || got.Obs.Total() == 0 {
			t.Fatalf("%s: observed run recorded no events", model)
		}
	}
}

// TestRunOnceObsTimelineContent checks that a recorded timeline actually
// holds the spans the paper's analysis needs: task-run spans for the
// workload, noise activity preempting it, and barrier-wait spans from the
// runtime's straggler accounting.
func TestRunOnceObsTimelineContent(t *testing.T) {
	p := tinyPlatform(t)
	// Inject FIFO noise on the workload's CPUs so the timeline is guaranteed
	// to show noise preempting the workload regardless of what the natural
	// profile produces at this seed; scale the natural noise up so the
	// generator's spawn instants appear too.
	inject := &core.Config{Window: 1 << 40, CPUs: []core.CPUEvents{
		{CPU: 1, Events: []core.NoiseEvent{
			{Start: 1000, Duration: 200000, Policy: "SCHED_FIFO", RTPrio: 50},
			{Start: 500000, Duration: 200000, Policy: "SCHED_FIFO", RTPrio: 50},
		}},
		{CPU: 2, Events: []core.NoiseEvent{
			{Start: 2000, Duration: 200000, Policy: "SCHED_FIFO", RTPrio: 50},
		}},
	}}
	res, err := RunOnce(Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 7,
		Inject: inject, NoiseScale: 50,
		Obs: &obs.Options{Timeline: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := map[string]int{}
	names := map[string]int{}
	for _, ev := range res.Obs.Events() {
		cats[ev.Cat]++
		names[ev.Name]++
	}
	for _, want := range []string{"workload", "noise", "barrier", "omp"} {
		if cats[want] == 0 {
			t.Errorf("timeline has no %q events; categories: %v", want, cats)
		}
	}
	if names["preempt"] == 0 {
		t.Errorf("timeline shows no preemptions; names: %v", names)
	}
	if names["barrier-wait"] == 0 {
		t.Errorf("timeline shows no barrier-wait spans; names: %v", names)
	}

	// The Chrome export must be valid JSON with the same event count plus
	// per-CPU thread-name metadata rows.
	var buf bytes.Buffer
	if err := res.Obs.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(rows) <= len(res.Obs.Events()) {
		t.Fatalf("chrome export has %d rows for %d events (missing metadata?)",
			len(rows), len(res.Obs.Events()))
	}
}

// TestRunOnceObsRegistryCounters: a run must publish its kernel counters to
// the shared registry, and two runs must accumulate (adds commute).
func TestRunOnceObsRegistryCounters(t *testing.T) {
	p := tinyPlatform(t)
	reg := obs.NewRegistry()
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "minife"),
		Model: "sycl", Strategy: mitigate.RmHK, Seed: 3,
		Obs: &obs.Options{Reg: reg},
	}
	for i := 0; i < 2; i++ {
		if _, err := RunOnce(spec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "repro_runs_total 2") {
		t.Fatalf("registry missed a run:\n%s", out)
	}
	for _, name := range []string{
		"repro_sim_steps_total", "repro_sched_context_switches_total",
		"repro_noise_tasks_spawned_total", "repro_obs_events_total",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("registry render missing %s", name)
		}
	}
}

// TestSeriesObsTimelineAndFlight exercises the executor fan-out: rep 0's
// timeline is delivered via OnTimeline after a successful series, and a
// failing series dumps the flight ring as JSON to FlightSink.
func TestSeriesObsTimelineAndFlight(t *testing.T) {
	p := tinyPlatform(t)
	var got *obs.Recorder
	e := Executor{Parallelism: 4, Obs: &ObsOptions{
		Timeline:   true,
		OnTimeline: func(r *obs.Recorder) { got = r },
	}}
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 5,
	}
	times, _, err := e.Series(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got.Events()) == 0 {
		t.Fatal("OnTimeline did not receive rep 0's recorder")
	}
	// Timeline recording must not perturb results: same series without obs.
	plainT, _, err := (Executor{Parallelism: 4}).Series(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(times, plainT) {
		t.Fatalf("series times changed with obs on:\nobs:   %v\nplain: %v", times, plainT)
	}

	// Failure path: every rep fails (unknown model) and rep 0's flight ring
	// lands in the sink as a JSON document naming the rep and the error.
	var sink bytes.Buffer
	ef := Executor{Parallelism: 2, Obs: &ObsOptions{FlightSink: &sink}}
	bad := spec
	bad.Model = "tbb"
	if _, _, err := ef.Series(context.Background(), bad, 2); err == nil {
		t.Fatal("expected series failure")
	}
	var flight obs.Flight
	if err := json.Unmarshal(sink.Bytes(), &flight); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, sink.String())
	}
	if !strings.HasPrefix(flight.Label, "rep ") {
		t.Fatalf("flight label = %q", flight.Label)
	}
	if !strings.Contains(flight.Err, "unknown model") {
		t.Fatalf("flight err = %q", flight.Err)
	}
}
