package experiment

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/platform"
)

func TestIntensitySweep(t *testing.T) {
	p := platform.MustNew(machine.TinyTest)
	points, err := IntensitySweep{
		Platform:   p,
		Workload:   "nbody",
		Strategies: []mitigate.Strategy{mitigate.Rm, mitigate.RmHK},
		Factors:    []float64{1, 8},
		Reps:       RepCounts{Collect: 12, Baseline: 3, Inject: 3},
		Seed:       9,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	// Impact should grow with the amplification factor for Rm.
	var rm1, rm8 float64
	for _, pt := range points {
		if pt.Strategy == mitigate.Rm {
			switch pt.Factor {
			case 1:
				rm1 = pt.MeanSec
			case 8:
				rm8 = pt.MeanSec
			}
		}
		if pt.MeanSec <= 0 {
			t.Fatalf("empty point: %+v", pt)
		}
	}
	if rm8 <= rm1 {
		t.Fatalf("amplified noise should hurt more: x1=%v x8=%v", rm1, rm8)
	}
}

func TestIntensitySweepValidation(t *testing.T) {
	p := platform.MustNew(machine.TinyTest)
	if _, err := (IntensitySweep{Platform: p, Workload: "nbody"}).Run(); err == nil {
		t.Fatal("sweep without factors/strategies should error")
	}
}

func TestCrossoverFactor(t *testing.T) {
	pts := []IntensityPoint{
		{Factor: 1, Strategy: mitigate.Rm, MeanSec: 1.0},
		{Factor: 1, Strategy: mitigate.RmHK, MeanSec: 1.1},
		{Factor: 2, Strategy: mitigate.Rm, MeanSec: 1.3},
		{Factor: 2, Strategy: mitigate.RmHK, MeanSec: 1.2},
	}
	if f := CrossoverFactor(pts, mitigate.Rm, mitigate.RmHK); f != 2 {
		t.Fatalf("crossover = %v, want 2", f)
	}
	noCross := pts[:2]
	if f := CrossoverFactor(noCross, mitigate.Rm, mitigate.RmHK); f != 0 {
		t.Fatalf("no crossover expected, got %v", f)
	}
}

func TestRunlevelStudy(t *testing.T) {
	p := platform.MustNew(machine.TinyTest)
	rows, err := RunlevelStudy{
		Platform:  p,
		Workloads: []string{"nbody"},
		Reps:      4,
		Seed:      3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.RL5.N != 4 || r.RL3.N != 4 || r.RL5.Mean <= 0 || r.RL3.Mean <= 0 {
		t.Fatalf("row: %+v", r)
	}
	// SDReductionPct must be finite and defined.
	_ = r.SDReductionPct()
	if (RunlevelRow{}).SDReductionPct() != 0 {
		t.Fatal("zero row reduction should be 0")
	}
}
