package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Pipeline bundles the full three-stage injector flow of §4 against a
// workload configuration.
type Pipeline struct {
	// Spec is the traced execution configuration (Tracing is forced on
	// during collection).
	Spec Spec
	// CollectRuns is the number of traced executions (the paper uses
	// 1000; scaled down by callers for CI).
	CollectRuns int
	// Improved selects the improved merge for config generation.
	Improved bool
	// Exec is the execution layer for the collection stage; the zero
	// value runs with default parallelism.
	Exec Executor
}

// PipelineResult carries every artifact of a pipeline run.
type PipelineResult struct {
	// Traces are all collected traces.
	Traces []*trace.Trace
	// Profile is the average inherent-noise profile.
	Profile *trace.Profile
	// Worst is the worst-case trace; WorstIndex its position.
	Worst      *trace.Trace
	WorstIndex int
	// Refined is the worst case minus the average noise.
	Refined *trace.Trace
	// Config is the generated injection configuration.
	Config *core.Config
	// BaselineMean is the mean execution time across collection runs.
	BaselineMean float64 // milliseconds
	// UpperOutliers counts collection runs above the upper Tukey fence —
	// the "significant outliers" the paper picks worst cases from.
	UpperOutliers int
}

// Run executes collection, averaging, worst-case selection, refinement and
// config generation.
func (p Pipeline) Run() (*PipelineResult, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the pipeline under ctx; the collection stage fans
// its traced runs over the executor's worker pool.
func (p Pipeline) RunContext(ctx context.Context) (*PipelineResult, error) {
	if p.CollectRuns <= 1 {
		return nil, fmt.Errorf("experiment: pipeline needs at least 2 collection runs")
	}
	p.Exec = p.Exec.withWorlds()
	spec := p.Spec
	spec.Tracing = true
	spec.Inject = nil
	_, traces, err := p.Exec.Series(ctx, spec, p.CollectRuns)
	if err != nil {
		return nil, err
	}
	profile := trace.BuildProfile(traces)
	worst, wi, err := trace.WorstCase(traces)
	if err != nil {
		return nil, err
	}
	refined := core.Refine(worst, profile)
	cfg := core.Generate(refined, p.Improved)
	execMs := make([]float64, len(traces))
	for i, tr := range traces {
		execMs[i] = tr.ExecTime.Millis()
	}
	return &PipelineResult{
		Traces:        traces,
		Profile:       profile,
		Worst:         worst,
		WorstIndex:    wi,
		Refined:       refined,
		Config:        cfg,
		BaselineMean:  stats.Summarize(execMs).Mean,
		UpperOutliers: stats.UpperOutlierCount(execMs, 1.5),
	}, nil
}

// Accuracy is the paper's §5.2 replication-accuracy metric:
// |avgExec/anomalyExec - 1|, where avgExec is the mean execution time under
// injection and anomalyExec the worst-case trace's execution time. The
// signed value is also returned (negative = replay faster than anomaly),
// matching the "(-)" annotations in Table 7.
func Accuracy(avgExec, anomalyExec float64) (abs, signed float64) {
	if anomalyExec == 0 {
		return 0, 0
	}
	signed = avgExec/anomalyExec - 1
	abs = signed
	if abs < 0 {
		abs = -abs
	}
	return abs, signed
}
