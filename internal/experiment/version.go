package experiment

// ModelVersion identifies the simulation semantics. Runs are pure functions
// of (spec, seed, ModelVersion): PR 1 made repetition fan-out bit-identical
// to sequential execution and PR 2 kept the fast-path kernel byte-identical
// to the coroutine path, so two executions of the same spec under the same
// ModelVersion produce the same bytes. The result cache (internal/rescache)
// folds this constant into every cache key; bump it whenever a change could
// alter any simulated output, and stale cached results become unreachable
// instead of silently wrong.
const ModelVersion = "noiselab-model-v2"
