package experiment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/omprt"
	"repro/internal/sim"
	"repro/internal/syclrt"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// BatchPolicy selects whether a series runs its reps through pooled batch
// worlds — engine + scheduler built once, forked back to their construction
// snapshots between reps — or builds every rep from scratch. Output is
// byte-identical either way (the golden fixtures pin this at parallelism 1
// and 8, with and without obs); the policy only decides where the
// construction cost is paid.
type BatchPolicy int

const (
	// BatchAuto batches when a series has at least BatchThreshold reps.
	BatchAuto BatchPolicy = iota
	// BatchOn always batches.
	BatchOn
	// BatchOff never batches — the noiselab -batch=off escape hatch.
	BatchOff
)

// BatchThreshold is the rep count at which BatchAuto turns batching on:
// below it a world is unlikely to be reused enough to amortize itself.
const BatchThreshold = 4

// ParseBatchPolicy parses a -batch flag value: "auto", "on", or "off".
func ParseBatchPolicy(s string) (BatchPolicy, error) {
	switch s {
	case "", "auto":
		return BatchAuto, nil
	case "on":
		return BatchOn, nil
	case "off":
		return BatchOff, nil
	}
	return BatchAuto, fmt.Errorf("experiment: unknown batch policy %q (want auto, on, or off)", s)
}

// batchReps applies the policy to a rep count.
func (e Executor) batchReps(reps int) bool {
	switch e.Batch {
	case BatchOn:
		return true
	case BatchOff:
		return false
	}
	return reps >= BatchThreshold
}

// batchEligible reports whether a series should run through pooled batch
// worlds. Specs missing platform or workload fall through to the legacy
// path so its validation error surfaces unchanged.
func (e Executor) batchEligible(spec Spec, reps int) bool {
	return spec.Platform != nil && spec.Workload != nil && e.batchReps(reps)
}

// worldKey identifies interchangeable worlds: same machine (by topology
// identity) and same scheduler options (by value — studies mutate
// Platform.SchedOpt between series, so the options cannot be keyed through
// the platform pointer).
type worldKey struct {
	topo *machine.Topology
	opt  cpusched.Options
}

func worldKeyFor(spec Spec) worldKey {
	return worldKey{topo: spec.Platform.Topo, opt: spec.Platform.SchedOpt}
}

// WorldPool caches warm batch worlds keyed by (topology, scheduler
// options), letting repeated series — sweep points, refinement iterations,
// config-candidate hunts — share the construction prefix instead of
// rebuilding it per rep. Worlds are pristine when obtained: the end-of-run
// teardown forks them back to their construction snapshots before they
// return to the pool. Safe for concurrent use; at most one world per
// in-flight rep is ever live.
type WorldPool struct {
	mu   sync.Mutex
	free map[worldKey][]*world
}

// NewWorldPool returns an empty world pool.
func NewWorldPool() *WorldPool { return &WorldPool{} }

func (p *WorldPool) get(k worldKey) *world {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.free[k]
	if len(ws) == 0 {
		return nil
	}
	w := ws[len(ws)-1]
	ws[len(ws)-1] = nil
	p.free[k] = ws[:len(ws)-1]
	return w
}

func (p *WorldPool) put(w *world) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free == nil {
		p.free = make(map[worldKey][]*world)
	}
	p.free[w.key] = append(p.free[w.key], w)
}

// world is one reusable simulation universe: an engine (via sim.Batch) and
// a scheduler for one (topology, options) pair, plus their construction
// snapshots. Everything seed-dependent — noise attachment, the replayer,
// the runtime, the workload body — is built per rep inside run, so a rep
// executed in a warm world is byte-identical to one in a fresh world: the
// fork restores every counter and clock the construction snapshot covers,
// and pooled storage (timer structs, task structs, heap arrays) never
// influences a scheduling decision.
type world struct {
	key       worldKey
	batch     *sim.Batch
	sched     *cpusched.Scheduler
	schedSnap cpusched.Snapshot
	// tracer is lazily created on the first traced rep and reused (its
	// buffer is detached into each rep's result and re-armed right-sized).
	tracer      *trace.Tracer
	dirtyTracer bool
	// pooled marks worlds that return to a WorldPool: their teardown forks
	// the state back. A one-shot world (the legacy RunOnce path) skips the
	// fork and hands out its internal trace directly, exactly as the
	// per-rep path always did.
	pooled bool
	warm   bool // a rep already ran here; the next one counts as batched
	// Pool-miss baselines, captured at run entry, for the cow-copies
	// counters.
	timerAllocs0 uint64
	taskAllocs0  uint64
}

// newWorld builds a world and captures its construction snapshots.
func newWorld(k worldKey, pooled bool) *world {
	b := sim.NewBatch()
	s := cpusched.New(b.Engine(), k.topo, k.opt)
	return &world{key: k, batch: b, sched: s, schedSnap: s.Snapshot(), pooled: pooled}
}

// run executes one rep in this world: the exact legacy sequence (attach
// noise and replayer, start the runtime, drive the engine, collect,
// shut down) plus — for pooled worlds — a fork of scheduler and engine back
// to their construction snapshots, so the world is pristine for the next
// rep.
func (w *world) run(spec Spec, plan *mitigate.Plan) (Result, error) {
	w.timerAllocs0 = w.batch.Engine().TimerAllocs
	w.taskAllocs0 = w.sched.TaskAllocs
	res, err := w.body(spec, plan)
	// Legacy teardown order: Shutdown runs with the tracer still attached,
	// so the kill cascade's final task spans land in the returned trace
	// exactly as the per-rep path records them (it shut down via defer,
	// after Finish).
	w.sched.Shutdown()
	if w.pooled {
		if w.dirtyTracer {
			detached := w.tracer.Detach()
			if res.Trace != nil {
				// Finish returned the tracer's internal trace; Detach hands
				// that same object over and re-arms the tracer for reuse.
				res.Trace = detached
			}
			w.dirtyTracer = false
		}
		w.sched.Fork(w.schedSnap)
		w.batch.Fork()
		w.warm = true
	}
	return res, err
}

// body is the run body shared by the legacy per-rep path and the batched
// path — the sequence previously inlined in runOnceWithPlan.
func (w *world) body(spec Spec, plan *mitigate.Plan) (Result, error) {
	eng, sched := w.batch.Engine(), w.sched

	var tracer *trace.Tracer
	if spec.Tracing {
		if w.tracer == nil {
			w.tracer = trace.NewTracer(0)
		}
		tracer = w.tracer
		sched.SetTracer(tracer)
		w.dirtyTracer = true
	}

	var rec *obs.Recorder
	if spec.Obs != nil {
		rec = obs.NewRecorder(*spec.Obs)
		sched.SetObserver(rec)
	}

	prof := spec.Platform.Noise
	if spec.Runlevel3 {
		prof = prof.WithRunlevel3()
	}
	if spec.NoiseScale > 0 && spec.NoiseScale != 1.0 {
		prof = prof.Scale(spec.NoiseScale)
	}
	if spec.NoiseSource != "" {
		prof = prof.ScaleSource(spec.NoiseSource, spec.SourceScale)
	}
	rng := sim.NewRNG(spec.Seed)
	gen := noise.Attach(sched, prof, rng.Stream("noise"), noiseHorizon)

	var replayer *core.Replayer
	if spec.Inject != nil {
		r, err := core.NewReplayer(sched, spec.Inject)
		if err != nil {
			return Result{}, err
		}
		r.PinInjectors = spec.PinInjectors
		replayer = r
	}

	// I/O workloads declare the devices they block on; register them before
	// the runtime starts. Devices are per-rep state: the end-of-run fork
	// clears the registry, so a pooled world re-registers every rep.
	if iow, ok := spec.Workload.(workloads.IOWorkload); ok {
		for _, d := range iow.Devices() {
			sched.AddDevice(d)
		}
	}

	var done *cpusched.Task
	switch spec.Model {
	case "omp":
		cfg := omprt.DefaultConfig()
		if spec.OMP != nil {
			cfg = *spec.OMP
		}
		if spec.DLRuntime > 0 {
			cfg.Policy = cpusched.PolicyDeadline
			cfg.DLRuntime = spec.DLRuntime
			cfg.DLPeriod = spec.DLPeriod
		}
		team := omprt.Start(sched, plan, cfg, spec.Workload.Body())
		done = team.Master()
	case "sycl":
		cfg := syclrt.DefaultConfig()
		if spec.SYCL != nil {
			cfg = *spec.SYCL
		}
		if spec.DLRuntime > 0 {
			cfg.Policy = cpusched.PolicyDeadline
			cfg.DLRuntime = spec.DLRuntime
			cfg.DLPeriod = spec.DLPeriod
		}
		q := syclrt.Start(sched, plan, cfg, spec.Workload.Body())
		done = q.Host()
	default:
		return Result{Obs: rec}, fmt.Errorf("experiment: unknown model %q", spec.Model)
	}

	if replayer != nil {
		// Injector processes synchronize with workload start (Listing 1's
		// barrier): both begin at t=0.
		replayer.Start()
		done.OnDone(func() { replayer.StopAll() })
	}

	eng.RunWhile(func() bool { return !done.Done() })
	snapshots, batched := uint64(1), uint64(0)
	if w.warm {
		snapshots, batched = 0, 1
	}
	cowCopies := (eng.TimerAllocs - w.timerAllocs0) + (sched.TaskAllocs - w.taskAllocs0)
	if rec != nil {
		publishRunCounters(rec.Registry(), eng, sched, gen, rec, snapshots, cowCopies, batched)
	}
	if !done.Done() {
		// Hand the recorder back with the error: the flight ring holds the
		// last scheduling events before the queue drained, which is exactly
		// the evidence a deadlock diagnosis needs.
		return Result{Obs: rec}, fmt.Errorf("experiment: workload deadlocked (event queue drained)")
	}
	res := Result{
		ExecTime:          eng.Now(),
		ContextSwitches:   sched.ContextSwitches,
		GoroutineHandoffs: sched.GoroutineHandoffs,
		InlineDispatches:  sched.InlineDispatches,
		Snapshots:         snapshots,
		CowCopies:         cowCopies,
		BatchedReps:       batched,
		Obs:               rec,
	}
	if replayer != nil {
		res.InjectedAll = replayer.Done()
		for cpu := 0; cpu < spec.Platform.Topo.NumCPUs(); cpu++ {
			t := sched.CPUTimeOf(cpu, cpusched.KindInjector)
			res.InjectorCPUTime += t
			if plan.Allowed.Has(cpu) {
				res.InjectorOnWorkload += t
			}
		}
	}
	if tracer != nil {
		res.Trace = tracer.Finish(res.ExecTime, spec.Platform.Name,
			spec.Workload.Name(), spec.Model, spec.Strategy.Name(), spec.Seed)
	}
	return res, nil
}

// withWorlds returns the executor with a world pool attached (a fresh one
// when none is set). Multi-series flows — pipelines, sweeps, studies — call
// it once at entry so every series they launch shares warm worlds across
// series boundaries, not just across the reps of one series.
func (e Executor) withWorlds() Executor {
	if e.Worlds == nil {
		e.Worlds = NewWorldPool()
	}
	return e
}

// batchedSeries is the pooled-world Series body: the plan, noise profile
// derivation, and world construction are shared across reps; each rep forks
// a pristine world from the pool (or builds one on a pool miss), runs, and
// returns the world forked-back for the next rep. Rep-to-world assignment
// is arbitrary under parallelism — which is only sound because a warm world
// is indistinguishable from a fresh one.
func (e Executor) batchedSeries(ctx context.Context, spec Spec, plan *mitigate.Plan,
	reps int, withTraces bool) ([]sim.Time, []*trace.Trace, error) {
	times := make([]sim.Time, reps)
	traces := make([]*trace.Trace, reps)
	pool := e.Worlds
	if pool == nil {
		pool = NewWorldPool()
	}
	key := worldKeyFor(spec)
	var rec0 *obs.Recorder
	err := e.run(ctx, reps, func(i int) error {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		e.applyObs(&s, i)
		w := pool.get(key)
		if w == nil {
			w = newWorld(key, true)
		}
		res, err := w.run(s, plan)
		pool.put(w)
		if err != nil {
			e.dumpFlight(i, res.Obs, err)
			return err
		}
		if i == 0 {
			rec0 = res.Obs
		}
		times[i] = res.ExecTime
		traces[i] = res.Trace
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	e.deliverTimeline(rec0)
	if !withTraces {
		return times, nil, nil
	}
	return times[:reps:reps], compactTraces(traces), nil
}
